(* Experiment harness.

   The paper (PODS'99) is a theory paper: its "evaluation" consists of the
   worked examples of figures 1-9.  Section E below regenerates every one
   of them as an executable check, printing the paper's claim next to the
   measured verdict.  Sections P1-P6 measure the protocol the paper says
   it implemented in the WISE system (an online PRED scheduler), against
   the baselines described in DESIGN.md.  Section P4 uses Bechamel for
   micro-benchmarks of the checker hot paths. *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Shard = Tpm_scheduler.Shard
module Generator = Tpm_workload.Generator
module Cim = Tpm_workload.Cim
module Travel = Tpm_workload.Travel
module Baseline = Tpm_baseline.Baseline
module Metrics = Tpm_sim.Metrics
module Faults = Tpm_sim.Faults
module Rm = Tpm_subsys.Rm
module Obs = Tpm_obs.Obs
module Wal = Tpm_wal.Wal

(* ------------------------------------------------------------------ *)
(* run metadata, embedded in every BENCH_*.json artifact: enough to tell
   exactly which tree produced the numbers and on what kind of clock *)

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    ignore (Unix.close_process_in ic);
    line
  with _ -> "unknown"

let meta_json ?(knobs = "") ~experiment () =
  Printf.sprintf
    "{\"git_commit\": %S, \"experiment\": %S, \"clock\": \
     \"virtual-discrete-event\", \"harness\": \"bench/main.exe\"%s}"
    (git_commit ()) experiment
    (if knobs = "" then "" else ", \"knobs\": " ^ knobs)

(* ------------------------------------------------------------------ *)
(* table printing *)

let rule = String.make 78 '-'

let section title =
  Format.printf "@.%s@.%s@.%s@." rule title rule

let print_table headers rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Format.printf "%-*s  " (List.nth widths i) cell)
      cells;
    Format.printf "@."
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let pct x = Printf.sprintf "%.0f%%" (100.0 *. x)
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x

(* ------------------------------------------------------------------ *)
(* Section E: the paper's figures and examples as executable checks *)

let paper_fixtures () =
  let act ~proc ~act:n ~service ~kind = Activity.make ~proc ~act:n ~service ~kind () in
  let p1 =
    Process.make_exn ~pid:1
      ~activities:
        [
          act ~proc:1 ~act:1 ~service:"s11" ~kind:Activity.Compensatable;
          act ~proc:1 ~act:2 ~service:"s12" ~kind:Activity.Pivot;
          act ~proc:1 ~act:3 ~service:"s13" ~kind:Activity.Compensatable;
          act ~proc:1 ~act:4 ~service:"s14" ~kind:Activity.Pivot;
          act ~proc:1 ~act:5 ~service:"s15" ~kind:Activity.Retriable;
          act ~proc:1 ~act:6 ~service:"s16" ~kind:Activity.Retriable;
        ]
      ~prec:[ (1, 2); (2, 3); (3, 4); (2, 5); (5, 6) ]
      ~pref:[ ((2, 3), (2, 5)) ]
  in
  let p2 =
    Process.make_exn ~pid:2
      ~activities:
        [
          act ~proc:2 ~act:1 ~service:"s21" ~kind:Activity.Compensatable;
          act ~proc:2 ~act:2 ~service:"s22" ~kind:Activity.Compensatable;
          act ~proc:2 ~act:3 ~service:"s23" ~kind:Activity.Pivot;
          act ~proc:2 ~act:4 ~service:"s24" ~kind:Activity.Retriable;
          act ~proc:2 ~act:5 ~service:"s25" ~kind:Activity.Retriable;
        ]
      ~prec:[ (1, 2); (2, 3); (3, 4); (4, 5) ]
      ~pref:[]
  in
  let p3 =
    Process.make_exn ~pid:3
      ~activities:
        [
          act ~proc:3 ~act:1 ~service:"s31" ~kind:Activity.Compensatable;
          act ~proc:3 ~act:2 ~service:"s32" ~kind:Activity.Pivot;
        ]
      ~prec:[ (1, 2) ]
      ~pref:[]
  in
  let spec =
    Conflict.of_pairs [ ("s11", "s21"); ("s12", "s24"); ("s15", "s25"); ("s11", "s31") ]
  in
  (p1, p2, p3, spec)

let section_e () =
  section "E — paper figures and worked examples (claim vs. measured)";
  let p1, p2, p3, spec = paper_fixtures () in
  let fwd p n = Schedule.Act (Activity.Forward (Process.find p n)) in
  let s_t2 =
    Schedule.make ~spec ~procs:[ p1; p2 ]
      [ fwd p1 1; fwd p2 1; fwd p2 2; fwd p2 3; fwd p1 2; fwd p2 4; fwd p1 3 ]
  in
  let s_t1 =
    Schedule.make ~spec ~procs:[ p1; p2 ] [ fwd p1 1; fwd p2 1; fwd p2 2; fwd p2 3 ]
  in
  let s'_t2 =
    Schedule.make ~spec ~procs:[ p1; p2 ]
      [ fwd p1 1; fwd p2 1; fwd p2 2; fwd p2 3; fwd p2 4; fwd p1 2; fwd p1 3 ]
  in
  let s''_t1 =
    Schedule.make ~spec ~procs:[ p1; p2 ]
      [ fwd p2 1; fwd p2 2; fwd p2 3; fwd p2 4; fwd p1 1; fwd p2 5; fwd p1 2; fwd p1 3 ]
  in
  let s_star =
    Schedule.make ~spec ~procs:[ p1; p3 ] [ fwd p1 1; fwd p1 2; fwd p3 1; fwd p3 2 ]
  in
  (* E9: run figure 1 through the scheduler and check the deferral *)
  let e9 () =
    let part = "boiler" in
    let parts = [ part ] in
    let rms = Cim.rms ~parts () in
    let config =
      {
        Scheduler.default_config with
        service_time = (fun s -> if s = "tech_doc:" ^ part then 5.0 else 1.0);
      }
    in
    let t = Scheduler.create ~config ~spec:(Cim.spec ~parts) ~rms () in
    Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part);
    Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part);
    Scheduler.run t;
    let h = Scheduler.history t in
    let pos pred =
      let rec go i = function [] -> max_int | ev :: r -> if pred ev then i else go (i + 1) r in
      go 0 (Schedule.events h)
    in
    let produce =
      pos (function
        | Schedule.Act (Activity.Forward a) -> a.Activity.service = "produce:" ^ part
        | _ -> false)
    in
    let c1 = pos (function Schedule.Commit 1 -> true | _ -> false) in
    Criteria.pred h && produce > c1
  in
  let checks =
    [
      ( "E1", "fig 3: P1 has exactly 4 valid executions",
        List.length (Execution.valid_executions p1) = 4 );
      ( "E2", "ex 2: C(P1) after a13 = {a13' << a15 << a16}",
        let st =
          List.fold_left Execution.exec (Execution.start p1) [ 1; 2; 3 ]
        in
        Execution.completion st
        = [ Activity.Inverse (Process.find p1 3); Activity.Forward (Process.find p1 5);
            Activity.Forward (Process.find p1 6) ] );
      ("E3", "fig 4b: S'_t2 not serializable", not (Criteria.serializable s'_t2));
      ("E4", "fig 4a: S_t2 serializable", Criteria.serializable s_t2);
      ("E5", "fig 6: completed(S_t2) serializable", Criteria.serializable (Completed.of_schedule s_t2));
      ("E5b", "ex 6: S_t2 is RED", Criteria.red s_t2);
      ("E6", "fig 7: S''_t1 is RED and PRED", Criteria.red s''_t1 && Criteria.pred s''_t1);
      ("E7", "ex 8: prefix S_t1 irreducible => S_t2 not PRED",
        (not (Criteria.red s_t1)) && not (Criteria.pred s_t2));
      ("E8", "fig 9: quasi-commit schedule S* is PRED", Criteria.pred s_star);
      ("E9", "fig 1: scheduler defers produce past C_1, PRED", e9 ());
    ]
  in
  print_table [ "id"; "claim"; "measured" ]
    (List.map (fun (id, claim, ok) -> [ id; claim; (if ok then "reproduced" else "FAILED") ]) checks);
  List.for_all (fun (_, _, ok) -> ok) checks

(* ------------------------------------------------------------------ *)
(* shared runner for the P experiments *)

type run_result = {
  makespan : float;
  committed : int;
  aborted : int;
  pred_ok : bool;
  m : Metrics.t;
}

let run_workload ?(params = Generator.default_params) ?(n = 10) ?(fail = 0.0)
    ?(config = Scheduler.default_config) ?(check_pred = false) ~seed () =
  let rms = Generator.rms params ~fail_prob:(fun _ -> fail) ~seed () in
  let spec = Generator.spec params in
  let t = Scheduler.create ~config:{ config with seed } ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
    (Generator.batch ~seed:(seed * 131) params ~n);
  Scheduler.run ~until:1e6 t;
  let h = Scheduler.history t in
  let count status =
    List.length (List.filter (fun pid -> Scheduler.status t pid = status) (Schedule.proc_ids h))
  in
  {
    makespan = Scheduler.now t;
    committed = count Schedule.Committed;
    aborted = count Schedule.Aborted;
    pred_ok = (if check_pred then Criteria.pred h else true);
    m = Scheduler.metrics t;
  }

let seeds = [ 2; 3; 5; 7; 11 ]

let avg f l = List.fold_left (fun a x -> a +. f x) 0.0 l /. float_of_int (List.length l)

(* P1: makespan/throughput vs conflict density, per scheduler variant *)
let section_p1 () =
  section "P1 — scheduler variants vs. conflict density (n=10 processes, 5 seeds)";
  let variants =
    [
      ("serial", `Serial);
      ("naive-SR", `Config Baseline.naive_sr_config);
      ("conservative", `Config Baseline.conservative_config);
      ("deferred (paper)", `Config Baseline.deferred_config);
      ("quasi (fig 9)", `Config Baseline.quasi_config);
    ]
  in
  let densities = [ 0.05; 0.15; 0.3; 0.5 ] in
  let rows =
    List.concat_map
      (fun density ->
        let params = { Generator.default_params with conflict_density = density } in
        List.map
          (fun (name, kind) ->
            match kind with
            | `Serial ->
                let span =
                  avg
                    (fun seed ->
                      Baseline.serial_makespan
                        ~make_rms:(fun () -> Generator.rms params ~seed ())
                        ~spec:(Generator.spec params)
                        (Generator.batch ~seed:(seed * 131) params ~n:10))
                    (List.map float_of_int seeds |> List.map int_of_float)
                in
                [ pct density; name; f1 span; "10.0"; "0.0"; "-"; "100%" ]
            | `Config config ->
                let results =
                  List.map (fun seed -> run_workload ~params ~config ~check_pred:true ~seed ()) seeds
                in
                [
                  pct density;
                  name;
                  f1 (avg (fun r -> r.makespan) results);
                  f1 (avg (fun r -> float_of_int r.committed) results);
                  f1 (avg (fun r -> float_of_int r.aborted) results);
                  string_of_int
                    (int_of_float
                       (avg (fun r -> float_of_int (Metrics.count r.m "admission_delays")) results));
                  pct (avg (fun r -> if r.pred_ok then 1.0 else 0.0) results);
                ])
          variants)
      densities
  in
  print_table
    [ "conflicts"; "scheduler"; "makespan"; "committed"; "aborted"; "delays"; "PRED ok" ]
    rows;
  Format.printf
    "@.shape: the deferred-2PC protocol (the paper's) commits everything at well@.";
  Format.printf
    "below serial makespan; conservative delaying deadlocks into stall aborts@.";
  Format.printf
    "under contention — the paper's argument for deferred commits via 2PC.@.";
  Format.printf
    "naive-SR is fast but its histories violate PRED (unrecoverable).@."

(* P2: pivot fraction / quasi-commit benefit *)
let section_p2 () =
  section "P2 — pivot fraction and the quasi-commit of figure 9 (5 seeds)";
  let rows =
    List.concat_map
      (fun pivot_prob ->
        let params =
          { Generator.default_params with pivot_prob; conflict_density = 0.3 }
        in
        List.map
          (fun (name, config) ->
            let results =
              List.map (fun seed -> run_workload ~params ~config ~seed ()) seeds
            in
            [
              f2 pivot_prob;
              name;
              f1 (avg (fun r -> r.makespan) results);
              f1 (avg (fun r -> float_of_int (Metrics.count r.m "prepared")) results);
              f1 (avg (fun r -> float_of_int (Metrics.count r.m "admission_delays")) results);
            ])
          [
            ("conservative", Baseline.conservative_config);
            ("deferred", Baseline.deferred_config);
            ("quasi", Baseline.quasi_config);
          ])
      [ 0.1; 0.3; 0.6 ]
  in
  print_table [ "pivot prob"; "scheduler"; "makespan"; "prepared"; "delays" ] rows;
  Format.printf
    "@.shape: more pivots => more deferred commits; quasi admits some of them@.";
  Format.printf "immediately once predecessors are forward-recoverable.@."

(* P3: weak vs strong order *)
let section_p3 () =
  section "P3 — weak vs. strong inter-process order (Section 3.6, 5 seeds)";
  let rows =
    List.concat_map
      (fun (density, fail) ->
        let params =
          {
            Generator.default_params with
            conflict_density = density;
            services = 6;
            subsystems = 2;
          }
        in
        List.map
          (fun (name, config) ->
            let config = { config with Scheduler.stochastic_times = true } in
            let results =
              List.map (fun seed -> run_workload ~params ~config ~fail ~seed ()) seeds
            in
            [
              pct density;
              pct fail;
              name;
              f1 (avg (fun r -> r.makespan) results);
              f1 (avg (fun r -> float_of_int (Metrics.count r.m "weak_commit_waits")) results);
              f1 (avg (fun r -> float_of_int (Metrics.count r.m "weak_restarts")) results);
            ])
          [
            ("strong", Scheduler.default_config);
            ("weak", Baseline.weak_order_config);
          ])
      [ (0.2, 0.0); (0.5, 0.0); (0.8, 0.0); (0.5, 0.2) ]
  in
  print_table [ "conflicts"; "failures"; "order"; "makespan"; "commit waits"; "restarts" ] rows;
  Format.printf "@.shape: the weak order overlaps conflicting executions, cutting the@.";
  Format.printf "makespan; the subsystem enforces the commit order instead.@."

(* P5: crash recovery *)
let section_p5 () =
  section "P5 — crash recovery (crash at t=3.0, varying load)";
  let rows =
    List.map
      (fun n ->
        let params = { Generator.default_params with conflict_density = 0.2 } in
        let seed = 17 in
        let rms = Generator.rms params ~seed () in
        let spec = Generator.spec params in
        let t = Scheduler.create ~config:{ Scheduler.default_config with seed } ~spec ~rms () in
        let procs = Generator.batch ~seed:(seed * 131) params ~n in
        List.iteri (fun i p -> Scheduler.submit t ~at:(0.1 *. float_of_int i) p) procs;
        Scheduler.run ~until:3.0 t;
        let records = Scheduler.crash t in
        let wal_size = List.length records in
        match Scheduler.recover ~spec ~rms ~procs records with
        | Error e -> [ string_of_int n; "recovery failed: " ^ e; "-"; "-"; "-"; "-" ]
        | Ok t2 ->
            Scheduler.run t2;
            let stitched = Scheduler.history t2 in
            let m = Scheduler.metrics t2 in
            [
              string_of_int n;
              string_of_int wal_size;
              string_of_int (Metrics.count m "recovered_processes");
              f1 (Scheduler.now t2);
              string_of_int (Metrics.count m "compensations" + Metrics.count m "completion_activities");
              (if Criteria.red stitched && Scheduler.finished t2 then "yes" else "NO");
            ])
      [ 4; 8; 16; 32 ]
  in
  print_table
    [ "processes"; "WAL records"; "interrupted"; "recovery time"; "recovery acts"; "recovered RED" ]
    rows;
  Format.printf "@.shape: recovery work grows linearly with the number of interrupted@.";
  Format.printf "processes; the stitched pre+post schedule is always reducible.@."

(* P6: failure handling / guaranteed termination *)
let section_p6 () =
  section "P6 — failure injection: alternatives instead of global aborts (5 seeds)";
  let rows =
    List.map
      (fun fail ->
        let params = { Generator.default_params with conflict_density = 0.2 } in
        let results =
          List.map (fun seed -> run_workload ~params ~fail ~n:10 ~seed ()) seeds
        in
        let stuck =
          avg
            (fun r -> float_of_int (10 - r.committed - r.aborted))
            results
        in
        [
          pct fail;
          f1 (avg (fun r -> float_of_int r.committed) results);
          f1 (avg (fun r -> float_of_int r.aborted) results);
          f1 (avg (fun r -> float_of_int (Metrics.count r.m "branch_failures")) results);
          f1 (avg (fun r -> float_of_int (Metrics.count r.m "compensations")) results);
          f1 (avg (fun r -> float_of_int (Metrics.count r.m "retries")) results);
          f1 stuck;
        ])
      [ 0.0; 0.1; 0.3; 0.5 ]
  in
  print_table
    [ "failure rate"; "committed"; "aborted"; "branch switches"; "compensations"; "retries";
      "stuck" ]
    rows;
  Format.printf "@.shape: failures are absorbed by alternatives and retries; the stuck@.";
  Format.printf "column stays at zero — guaranteed termination (Section 3.1).@."

(* P4: micro-benchmarks of the checker hot paths (Bechamel) *)
let section_p4 () =
  section "P4 — checker micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  (* pre-build schedules of growing size from scheduler runs *)
  let schedule_of_n n =
    let params = { Generator.default_params with conflict_density = 0.2 } in
    let rms = Generator.rms params ~seed:5 () in
    let spec = Generator.spec params in
    let t = Scheduler.create ~spec ~rms () in
    List.iteri
      (fun i p -> Scheduler.submit t ~at:(0.2 *. float_of_int i) p)
      (Generator.batch ~seed:42 params ~n);
    Scheduler.run t;
    Scheduler.history t
  in
  let tests =
    List.concat_map
      (fun n ->
        let s = schedule_of_n n in
        let events = Schedule.length s in
        [
          Test.make
            ~name:(Printf.sprintf "completed/%d-events" events)
            (Staged.stage (fun () -> ignore (Completed.of_schedule s)));
          Test.make
            ~name:(Printf.sprintf "red/%d-events" events)
            (Staged.stage (fun () -> ignore (Criteria.red s)));
          Test.make
            ~name:(Printf.sprintf "pred/%d-events" events)
            (Staged.stage (fun () -> ignore (Criteria.pred s)));
        ])
      [ 4; 8; 16 ]
  in
  let grouped = Test.make_grouped ~name:"checker" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 256) () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := [ name; Printf.sprintf "%.1f" est ] :: !rows
      | _ -> ())
    results;
  print_table [ "benchmark"; "ns/run" ]
    (List.sort compare !rows);
  Format.printf "@.shape: the graph-based RED check is polynomial; PRED re-checks every@.";
  Format.printf "prefix and grows accordingly (the online scheduler avoids this by@.";
  Format.printf "incremental dependency tracking).@."

(* P7: ablation — incremental dependency tracking vs exact per-admission
   reducibility checking (Section 3.5's "always consider S-tilde") *)
let section_p7 () =
  section "P7 — ablation: incremental admission vs. exact per-admission RED check";
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (name, exact) ->
            let params = { Generator.default_params with conflict_density = 0.25 } in
            let config = { Scheduler.default_config with exact_admission = exact } in
            let t0 = Sys.time () in
            let results =
              List.map (fun seed -> run_workload ~params ~config ~n ~seed ()) [ 2; 3; 5 ]
            in
            let cpu = (Sys.time () -. t0) /. 3.0 in
            [
              string_of_int n;
              name;
              f1 (avg (fun r -> r.makespan) results);
              f1 (avg (fun r -> float_of_int r.committed) results);
              Printf.sprintf "%.0f" (cpu *. 1000.0);
            ])
          [ ("incremental (default)", false); ("exact S-tilde check", true) ])
      [ 5; 10; 15 ]
  in
  print_table [ "processes"; "admission"; "makespan"; "committed"; "cpu ms/run" ] rows;
  Format.printf
    "@.shape: both admit essentially the same schedules (the incremental@.";
  Format.printf
    "tracker is a sound approximation), but the exact check re-runs the@.";
  Format.printf "reduction per admission and its cost grows quickly with history size.@."

(* P8: open system — Poisson-ish arrivals, throughput and latency vs load *)
let section_p8 () =
  section "P8 — open system: latency and throughput vs. arrival rate (3 seeds)";
  let rows =
    List.map
      (fun spacing ->
        let params = { Generator.default_params with conflict_density = 0.2 } in
        let n = 30 in
        let results =
          List.map
            (fun seed ->
              let rms = Generator.rms params ~seed () in
              let spec = Generator.spec params in
              let config =
                { Scheduler.default_config with seed; stochastic_times = true }
              in
              let t = Scheduler.create ~config ~spec ~rms () in
              List.iteri
                (fun i p -> Scheduler.submit t ~at:(spacing *. float_of_int i) p)
                (Generator.batch ~seed:(seed * 131) params ~n);
              Scheduler.run ~until:1e6 t;
              let m = Scheduler.metrics t in
              ( float_of_int (Metrics.count m "committed"
                              + Metrics.count m "committed_via_completion")
                /. Scheduler.now t,
                Metrics.mean m "latency",
                Metrics.quantile m "latency" 0.95 ))
            [ 2; 3; 5 ]
        in
        let avg3 f = avg f results in
        [
          f2 (1.0 /. spacing);
          f2 (avg3 (fun (tp, _, _) -> tp));
          f1 (avg3 (fun (_, lat, _) -> lat));
          f1 (avg3 (fun (_, _, p95) -> p95));
        ])
      [ 4.0; 2.0; 1.0; 0.5; 0.25 ]
  in
  print_table [ "arrival rate"; "throughput"; "mean latency"; "p95 latency" ] rows;
  Format.printf
    "@.shape: throughput follows the offered load until contention saturates@.";
  Format.printf "it; latency then grows sharply — a classic open-system knee.@."

(* P9: robustness — periodic subsystem outages; degrading to alternative
   branches vs. waiting the windows out *)
let section_p9 () =
  section "P9 — 20%-duty-cycle subsystem outages: degrade vs. wait (3 seeds)";
  let params = { Generator.default_params with conflict_density = 0.2 } in
  let n = 20 in
  let horizon = 60.0 in
  let plan rms =
    (* staggered periodic windows: at any instant roughly one fifth of
       every subsystem's timeline is dark, phases spread so the outages
       do not overlap across subsystems *)
    let subsystems = List.map Rm.name rms in
    let period = 10.0 in
    let k = float_of_int (List.length subsystems) in
    Faults.make
      ~outages:
        (List.concat
           (List.mapi
              (fun i ss ->
                Faults.periodic_outage ~subsystem:ss ~period ~duty:0.2
                  ~phase:(float_of_int i *. period /. k)
                  ~horizon ())
              subsystems))
      ()
  in
  let arms =
    [
      ("no faults", false, true);
      ("outage, degrade", true, true);
      ("outage, wait out", true, false);
    ]
  in
  let rows =
    List.map
      (fun (name, faulted, outage_degrade) ->
        let results =
          List.map
            (fun seed ->
              let rms = Generator.rms params ~seed () in
              let spec = Generator.spec params in
              let faults = if faulted then plan rms else Faults.none in
              let config = { Scheduler.default_config with seed; outage_degrade } in
              let t = Scheduler.create ~config ~faults ~spec ~rms () in
              List.iteri
                (fun i p -> Scheduler.submit t ~at:(0.5 *. float_of_int i) p)
                (Generator.batch ~seed:(seed * 131) params ~n);
              Scheduler.run ~until:1e6 t;
              let m = Scheduler.metrics t in
              ( float_of_int
                  (Metrics.count m "committed" + Metrics.count m "committed_via_completion")
                /. Scheduler.now t,
                Metrics.quantile m "latency" 0.95,
                float_of_int (Metrics.count m "outage_deflections"),
                float_of_int (Metrics.count m "retries"),
                float_of_int (Metrics.count m "aborted") ))
            [ 2; 3; 5 ]
        in
        let avg3 f = avg f results in
        [
          name;
          f2 (avg3 (fun (tp, _, _, _, _) -> tp));
          f1 (avg3 (fun (_, p95, _, _, _) -> p95));
          f1 (avg3 (fun (_, _, d, _, _) -> d));
          f1 (avg3 (fun (_, _, _, r, _) -> r));
          f1 (avg3 (fun (_, _, _, _, a) -> a));
        ])
      arms
  in
  print_table
    [ "faults"; "throughput"; "p95 latency"; "deflections"; "retries"; "aborted" ]
    rows;
  Format.printf
    "@.shape: waiting retries through the windows — every process still@.";
  Format.printf
    "commits, but the latency tail stretches by the outage length.@.";
  Format.printf
    "Degrading answers fast (deflections instead of retries) at the cost@.";
  Format.printf
    "of aborting processes whose alternative branches are exhausted.@."

(* P10: commit-path latency under message loss, with and without the
   participant-side termination protocol (in-doubt inquiries) *)
let section_p10 () =
  section "P10 — 2PC commit path under message loss: termination protocol on/off";
  let params =
    { Generator.default_params with conflict_density = 0.3; pivot_prob = 0.4 }
  in
  let n = 15 in
  let horizon = 50.0 in
  let p10_seeds = [ 2; 3; 5 ] in
  let rows =
    List.concat_map
      (fun loss ->
        List.map
          (fun (term_name, inquiry) ->
            let results =
              List.map
                (fun seed ->
                  let rms = Generator.rms params ~seed () in
                  let spec = Generator.spec params in
                  let faults =
                    if loss <= 0.0 then Faults.none
                    else
                      Faults.make
                        ~msg_faults:
                          (Faults.uniform_msg_faults ~drop:loss ~dup:loss
                             ~delay:0.5 ~horizon ())
                        ()
                  in
                  (* a deliberately sluggish coordinator (retransmission
                     every 4 t.u.) so the participant-side termination
                     protocol (inquiry after 1 t.u.) has something to beat *)
                  let config =
                    {
                      Baseline.deferred_config with
                      Scheduler.seed;
                      twopc_retransmit = 4.0;
                      twopc_inquiry = inquiry;
                    }
                  in
                  let t = Scheduler.create ~config ~faults ~spec ~rms () in
                  List.iteri
                    (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
                    (Generator.batch ~seed:(seed * 131) params ~n);
                  Scheduler.run ~until:1e6 t;
                  let m = Scheduler.metrics t in
                  ( float_of_int
                      (Metrics.count m "committed"
                      + Metrics.count m "committed_via_completion")
                    /. Scheduler.now t,
                    Metrics.quantile m "twopc_decide_latency" 0.95,
                    float_of_int (Metrics.count m "msg_retransmits"),
                    float_of_int (Metrics.count m "msg_inquiries") ))
                p10_seeds
            in
            let avg3 f = avg f results in
            [
              pct loss;
              term_name;
              f2 (avg3 (fun (tp, _, _, _) -> tp));
              f2 (avg3 (fun (_, p95, _, _) -> p95));
              f1 (avg3 (fun (_, _, rt, _) -> rt));
              f1 (avg3 (fun (_, _, _, res) -> res));
            ])
          [ ("inquiry on", Some 1.0); ("inquiry off", None) ])
      [ 0.0; 0.01; 0.05 ]
  in
  print_table
    [ "msg loss"; "termination"; "throughput"; "commit p95"; "retransmits";
      "inquiries" ]
    rows;
  Format.printf
    "@.shape: loss stretches the commit-path tail by retransmission rounds;@.";
  Format.printf
    "the termination protocol resolves in-doubt participants early (inquiries@.";
  Format.printf
    "pull the decision) instead of waiting for coordinator retransmission,@.";
  Format.printf "trimming the p95 without changing throughput or outcomes.@."

(* P11: the incremental admission engine (interned services, conflict
   bitmatrix, cached future/occurrence bitsets, Pearce–Kelly cycle
   detection, O(1) schedule append) against the string-based reference
   path it replaced.  Both engines take identical decisions — the
   differential stress (`tools/stress.exe --check-admission`) proves it —
   so the comparison is pure cost.  The admission path is timed per call
   via [admission_clock]; throughput is admissions per second of
   admission-path time. *)

type p11_point = {
  p_label : string;
  p_procs : int;
  p_hist : int;  (* final history length, events *)
  p_admissions : int;
  p_mean_us : float;
  p_p95_us : float;
  p_wall_s : float;
}

(* [until] truncates the simulated horizon: at the largest scales the
   reference engine cannot be run to completion in reasonable wall time
   (that is the point of the experiment), so both engines are measured on
   the identical virtual-time prefix of the identical workload — the
   per-admission statistics stay apples-to-apples.  [spacing] compresses
   submissions so every process is registered well inside the prefix. *)
let p11_measure ?(until = 1e6) ?(spacing = 0.3) ~engine ~n ~params ~seed () =
  let rms = Generator.rms params ~seed () in
  let spec = Generator.spec params in
  let config =
    {
      Scheduler.default_config with
      seed;
      admission_engine = engine;
      admission_clock = Some Unix.gettimeofday;
    }
  in
  let t = Scheduler.create ~config ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(spacing *. float_of_int i) p)
    (Generator.batch ~seed:(seed * 131) params ~n);
  let w0 = Unix.gettimeofday () in
  Scheduler.run ~until t;
  let wall = Unix.gettimeofday () -. w0 in
  let m = Scheduler.metrics t in
  {
    p_label = "";
    p_procs = n;
    p_hist = Schedule.length (Scheduler.history t);
    p_admissions = Metrics.count m "admissions";
    p_mean_us = 1e6 *. Metrics.mean m "admission_time";
    p_p95_us = 1e6 *. Metrics.quantile m "admission_time" 0.95;
    p_wall_s = wall;
  }

let p11_throughput p = if p.p_mean_us <= 0.0 then 0.0 else 1e6 /. p.p_mean_us

let p11_row p =
  [
    p.p_label;
    string_of_int p.p_procs;
    string_of_int p.p_hist;
    string_of_int p.p_admissions;
    f2 p.p_mean_us;
    f2 p.p_p95_us;
    Printf.sprintf "%.0f" (p11_throughput p);
    f2 p.p_wall_s;
  ]

let p11_json_point p =
  Printf.sprintf
    "{\"engine\": %S, \"procs\": %d, \"history_events\": %d, \"admissions\": %d, \
     \"mean_us\": %.3f, \"p95_us\": %.3f, \"throughput_per_s\": %.1f, \"wall_s\": %.3f}"
    p.p_label p.p_procs p.p_hist p.p_admissions p.p_mean_us p.p_p95_us
    (p11_throughput p) p.p_wall_s

(* Probe measurement: prepare a mid-run state with the default
   (incremental) engine — trajectories are engine-independent because
   both engines take identical decisions — then time the *pure* decision
   functions of both engines on that state over a bounded sample of
   (process, activity) candidates.  This is the only tractable way to
   measure the reference engine at scale: running it live amplifies its
   per-call cost by every dispatch wake (which is the point of the
   optimization). *)
let p11_probe ~n ~params ~seed =
  let rms = Generator.rms params ~seed () in
  let spec = Generator.spec params in
  let t = Scheduler.create ~config:{ Scheduler.default_config with seed } ~spec ~rms () in
  let procs = Generator.batch ~seed:(seed * 131) params ~n in
  List.iteri (fun i p -> Scheduler.submit t ~at:(0.05 *. float_of_int i) p) procs;
  (* just past full registration plus a slice of execution: nearly every
     process is live, with occurrences and in-flight work on the books *)
  Scheduler.run ~until:((0.05 *. float_of_int n) +. 1.5) t;
  let live =
    List.filter (fun p -> Scheduler.status t (Process.pid p) = Schedule.Active) procs
  in
  let cap = if n >= 256 then 150 else 400 in
  let samples =
    List.concat_map
      (fun p -> List.map (fun a -> (Process.pid p, a)) (Process.activity_ids p))
      live
    |> List.filteri (fun i _ -> i < cap)
  in
  let time_probe engine =
    let ts =
      List.map
        (fun (pid, act) ->
          let t0 = Unix.gettimeofday () in
          Scheduler.probe_admission t engine ~pid ~act;
          Unix.gettimeofday () -. t0)
        samples
    in
    let k = float_of_int (List.length ts) in
    let mean = List.fold_left ( +. ) 0.0 ts /. k in
    let sorted = List.sort compare ts in
    let p95 = List.nth sorted (min (List.length ts - 1) (int_of_float (0.95 *. k))) in
    (1e6 *. mean, 1e6 *. p95)
  in
  let rmean, rp95 = time_probe Scheduler.Reference in
  let imean, ip95 = time_probe Scheduler.Incremental in
  (List.length live, List.length samples, rmean, rp95, imean, ip95)

(* one seed per point: admission-path timing aggregates hundreds to
   thousands of calls per point, which does the averaging a seed sweep
   would *)
let section_p11 ?(quick = false) ?json () =
  section
    (if quick then "P11 — admission engine, perf smoke (quick scales)"
     else "P11 — incremental vs. reference admission engine");
  let params =
    {
      Generator.default_params with
      services = 12;
      conflict_density = 0.25;
      activities_min = 3;
      activities_max = 6;
    }
  in
  let seed = 7 in
  let measure label engine n ps =
    let p = { (p11_measure ~engine ~n ~params:ps ~seed ()) with p_label = label } in
    Printf.eprintf "  [p11] e2e %s n=%d: %.1fs wall\n%!" label n p.p_wall_s;
    p
  in
  let points = ref [] in
  (* end-to-end runs: the reference engine is only run live at the small
     scales (its cost at larger ones is the subject of the probe table) *)
  let rows_scale =
    List.concat_map
      (fun n ->
        let r = measure "reference" Scheduler.Reference n params in
        let i = measure "incremental" Scheduler.Incremental n params in
        points := !points @ [ r; i ];
        [ p11_row r; p11_row i ])
      [ 8; 16; 32 ]
    @
    if quick then []
    else
      (* past 128 even the end-to-end simulation is dominated by wake
         amplification (every event retries every waiting process); the
         256-process point lives on the probe axis below *)
      List.map
        (fun n ->
          let i = measure "incremental" Scheduler.Incremental n params in
          points := !points @ [ i ];
          p11_row i)
        [ 64; 128 ]
  in
  Format.printf "end-to-end runs (admission path timed in-run):@.";
  print_table
    [ "engine"; "procs"; "history"; "admissions"; "mean us"; "p95 us";
      "admissions/s"; "wall s" ]
    rows_scale;
  (* per-call probes on identical mid-run states *)
  let probe_scales = if quick then [ 8; 16; 32 ] else [ 8; 16; 32; 64; 128; 256 ] in
  let probes =
    List.map
      (fun n ->
        let live, k, rmean, rp95, imean, ip95 = p11_probe ~n ~params ~seed in
        Printf.eprintf "  [p11] probe n=%d: %d samples\n%!" n k;
        (n, live, k, rmean, rp95, imean, ip95))
      probe_scales
  in
  let speedups =
    List.map (fun (n, _, _, rmean, _, imean, _) -> (n, rmean /. imean)) probes
  in
  Format.printf "@.per-call probes (both engines on the identical mid-run state):@.";
  print_table
    [ "procs"; "live"; "samples"; "ref mean us"; "ref p95 us"; "inc mean us";
      "inc p95 us"; "speedup" ]
    (List.map
       (fun (n, live, k, rmean, rp95, imean, ip95) ->
         [
           string_of_int n; string_of_int live; string_of_int k; f2 rmean; f2 rp95;
           f2 imean; f2 ip95; Printf.sprintf "%.1fx" (rmean /. imean);
         ])
       probes);
  (* second axis: history length (activities per process) at fixed width *)
  let hist_points =
    if quick then []
    else
      List.concat_map
        (fun (lo, hi) ->
          let ps = { params with Generator.activities_min = lo; activities_max = hi } in
          let r = measure "reference" Scheduler.Reference 32 ps in
          let i = measure "incremental" Scheduler.Incremental 32 ps in
          [ r; i ])
        [ (2, 4); (4, 10); (10, 16) ]
  in
  if hist_points <> [] then begin
    Format.printf "@.history-length axis (32 processes, activities per process varied):@.";
    print_table
      [ "engine"; "procs"; "history"; "admissions"; "mean us"; "p95 us";
        "admissions/s"; "wall s" ]
      (List.map p11_row hist_points)
  end;
  Format.printf
    "@.shape: the reference path rescans every occurrence list and rebuilds the@.";
  Format.printf
    "dependency graph per admission — its per-admission cost grows with both@.";
  Format.printf
    "process count and history length.  The incremental engine's bitset@.";
  Format.printf
    "intersections and Pearce-Kelly maintenance keep the mean near-flat.@.";
  (match json with
  | None -> ()
  | Some path ->
      let probe_json (n, live, k, rmean, rp95, imean, ip95) =
        Printf.sprintf
          "{\"procs\": %d, \"live\": %d, \"samples\": %d, \"ref_mean_us\": %.3f, \
           \"ref_p95_us\": %.3f, \"inc_mean_us\": %.3f, \"inc_p95_us\": %.3f, \
           \"speedup\": %.1f}"
          n live k rmean rp95 imean ip95 (rmean /. imean)
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"P11 incremental admission engine\",\n\
        \  \"meta\": %s,\n\
        \  \"workload\": {\"services\": %d, \"conflict_density\": %.2f, \
         \"activities\": \"%d-%d\", \"seed\": %d},\n\
        \  \"scale_axis\": [\n    %s\n  ],\n\
        \  \"probe_axis\": [\n    %s\n  ],\n\
        \  \"history_axis\": [\n    %s\n  ],\n\
        \  \"speedup_mean\": {%s}\n}\n"
        (meta_json ~experiment:"P11" ())
        params.Generator.services params.Generator.conflict_density
        params.Generator.activities_min params.Generator.activities_max seed
        (String.concat ",\n    " (List.map p11_json_point !points))
        (String.concat ",\n    " (List.map probe_json probes))
        (String.concat ",\n    " (List.map p11_json_point hist_points))
        (String.concat ", "
           (List.map (fun (n, s) -> Printf.sprintf "\"%d\": %.1f" n s) speedups));
      close_out oc;
      Format.printf "@.wrote %s@." path);
  speedups

(* --profile-admission: break the incremental admission path down into
   its maintenance components (latent-base rebuilds vs. incremental
   patches vs. topological-order recomputation) so optimization targets
   the measured hotspot instead of the suspected one.  The scheduler
   emits these series whenever [admission_clock] is set. *)
let p11_profile ~scales () =
  let params =
    {
      Generator.default_params with
      services = 12;
      conflict_density = 0.25;
      activities_min = 3;
      activities_max = 6;
    }
  in
  let seed = 7 in
  Format.printf "admission-path breakdown (incremental engine, in-run):@.";
  let rows =
    List.map
      (fun n ->
        let rms = Generator.rms params ~seed () in
        let spec = Generator.spec params in
        let config =
          {
            Scheduler.default_config with
            seed;
            admission_clock = Some Unix.gettimeofday;
          }
        in
        let t = Scheduler.create ~config ~spec ~rms () in
        List.iteri
          (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
          (Generator.batch ~seed:(seed * 131) params ~n);
        let w0 = Unix.gettimeofday () in
        Scheduler.run ~until:1e6 t;
        let wall = Unix.gettimeofday () -. w0 in
        let m = Scheduler.metrics t in
        let total name = Metrics.total m name in
        let cnt name = Metrics.count m name in
        Printf.eprintf "  [p11] profile n=%d: %.1fs wall\n%!" n wall;
        [
          string_of_int n;
          string_of_int (cnt "admissions");
          f2 (1e6 *. Metrics.mean m "admission_time");
          f2 (total "admission_time");
          Printf.sprintf "%s/%.2fs" (string_of_int (cnt "latent_rebuilds"))
            (total "latent_rebuild_s");
          Printf.sprintf "%s/%.2fs" (string_of_int (cnt "latent_patches"))
            (total "latent_patch_s");
          Printf.sprintf "%s/%.2fs" (string_of_int (cnt "latent_order_rebuilds"))
            (total "latent_order_s");
          f1 (Metrics.mean m "latent_dirty");
          Printf.sprintf "%d/%d" (cnt "latent_probe_fast") (cnt "latent_probe_dfs");
          f1 (Metrics.mean m "latent_dfs_nodes");
          f2 wall;
        ])
      scales
  in
  print_table
    [ "procs"; "admissions"; "mean us"; "adm total s"; "rebuilds"; "patches";
      "order rebuilds"; "mean dirty"; "fast/dfs"; "dfs nodes"; "wall s" ]
    rows

let p11_main args =
  let quick = ref false in
  let json = ref None in
  let min_throughput = ref None in
  let profile = ref false in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--json" :: path :: rest -> json := Some path; parse rest
    | "--min-throughput" :: x :: rest ->
        min_throughput := Some (float_of_string x); parse rest
    | "--profile-admission" :: rest -> profile := true; parse rest
    | arg :: _ -> failwith (Printf.sprintf "p11: unknown argument %S" arg)
  in
  parse args;
  if !profile then begin
    p11_profile ~scales:(if !quick then [ 16; 32 ] else [ 32; 64; 128 ]) ();
    exit 0
  end;
  let speedups = section_p11 ~quick:!quick ?json:!json () in
  match !min_throughput with
  | None -> ()
  | Some floor ->
      (* perf-smoke gate: the incremental engine's admission throughput at
         the largest measured scale must stay above the floor *)
      let n = List.fold_left (fun a (n, _) -> max a n) 0 speedups in
      let p =
        {
          (p11_measure ~engine:Scheduler.Incremental ~n
             ~params:
               {
                 Generator.default_params with
                 services = 12;
                 conflict_density = 0.25;
                 activities_min = 3;
                 activities_max = 6;
               }
             ~seed:7 ())
          with p_label = "incremental";
        }
      in
      let tp = p11_throughput p in
      if tp < floor then begin
        Format.printf "P11 SMOKE FAILED: %.0f admissions/s < floor %.0f@." tp floor;
        exit 1
      end
      else Format.printf "P11 smoke ok: %.0f admissions/s >= floor %.0f@." tp floor

(* P12: observability overhead.  The same P11 admission workload is run
   with tracing disabled, with the in-memory ring sink only, and with
   ring + JSONL file sink; each arm is repeated and the minimum wall time
   taken (the noise-robust estimator for short runs).  The disabled arm
   must be bit-identical to a pre-observability scheduler — every
   instrumentation site is guarded by [Obs.Tracer.active] — so its wall
   time is the honest baseline, and the ring arm's overhead is the price
   of always-on forensics. *)

type p12_arm = {
  a_label : string;
  a_wall_s : float;  (* min over reps *)
  a_events : int;  (* trace events emitted by one run *)
  a_overhead : float;  (* a_wall_s / disabled wall - 1 *)
}

let p12_params =
  {
    Generator.default_params with
    services = 12;
    conflict_density = 0.25;
    activities_min = 3;
    activities_max = 6;
  }

let p12_run ~n ~seed ~mk_tracer =
  let rms = Generator.rms p12_params ~seed () in
  let spec = Generator.spec p12_params in
  let tracer = mk_tracer () in
  let t =
    Scheduler.create
      ~config:{ Scheduler.default_config with seed }
      ~tracer ~spec ~rms ()
  in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
    (Generator.batch ~seed:(seed * 131) p12_params ~n);
  (* start every timed run from the same heap state: the arms differ by
     ~100 KB of event allocations per run, which otherwise shifts GC
     scheduling between arms by more than the overhead being measured *)
  Gc.compact ();
  let w0 = Unix.gettimeofday () in
  Scheduler.run ~until:1e6 t;
  let wall = Unix.gettimeofday () -. w0 in
  Obs.Tracer.close tracer;
  (wall, Obs.Tracer.emitted tracer, Scheduler.metrics t)

let section_p12 ?(quick = false) ?json () =
  section
    "P12 — tracing overhead: disabled vs. ring sink vs. ring + JSONL (min of reps)";
  (* quick mode keeps the full batch size — the n=16 baseline is only a
     few milliseconds, too small to resolve a 10 % overhead against
     timer and GC noise — and economizes on rounds instead *)
  let n = 32 in
  let reps = if quick then 5 else 7 in
  let seed = 7 in
  let jsonl_path = Filename.temp_file "tpm_p12_trace" ".jsonl" in
  let arms =
    [
      ("disabled", fun () -> Obs.Tracer.disabled);
      ("ring", fun () -> Obs.Tracer.create ~ring_capacity:512 ());
      ( "ring+jsonl",
        fun () ->
          Obs.Tracer.create ~ring_capacity:512
            ~sinks:[ Obs.Sink.jsonl jsonl_path ] () );
    ]
  in
  let snapshot = ref None in
  (* interleave the arms round-robin so a transient load spike hits all
     of them alike, and discard one warmup round so no arm pays the
     one-time heap growth; per-arm minimum over the remaining rounds *)
  let walls = Array.make (List.length arms) infinity in
  let events = Array.make (List.length arms) 0 in
  List.iter (fun (_, mk) -> ignore (p12_run ~n ~seed ~mk_tracer:mk)) arms;
  for _ = 1 to reps do
    List.iteri
      (fun i (label, mk) ->
        let w, e, m = p12_run ~n ~seed ~mk_tracer:mk in
        if w < walls.(i) then walls.(i) <- w;
        events.(i) <- e;
        if label = "ring" then snapshot := Some m)
      arms
  done;
  let measured =
    List.mapi
      (fun i (label, _) ->
        Printf.eprintf "  [p12] %s: min %.3fs over %d reps\n%!" label walls.(i) reps;
        (label, walls.(i), events.(i)))
      arms
  in
  (try Sys.remove jsonl_path with Sys_error _ -> ());
  let base = match measured with (_, w, _) :: _ -> w | [] -> 1.0 in
  let arms =
    List.map
      (fun (label, w, e) ->
        {
          a_label = label;
          a_wall_s = w;
          a_events = e;
          a_overhead = (w /. base) -. 1.0;
        })
      measured
  in
  print_table
    [ "tracing"; "wall s (min)"; "events/run"; "overhead" ]
    (List.map
       (fun a ->
         [
           a.a_label;
           Printf.sprintf "%.3f" a.a_wall_s;
           string_of_int a.a_events;
           Printf.sprintf "%+.1f%%" (100.0 *. a.a_overhead);
         ])
       arms);
  Format.printf
    "@.shape: every instrumentation site is branch-guarded, so the disabled@.";
  Format.printf
    "arm pays nothing; the ring sink costs one array store per event; the@.";
  Format.printf "JSONL sink adds formatting and file I/O per event.@.";
  (match json with
  | None -> ()
  | Some path ->
      let arm_json a =
        Printf.sprintf
          "{\"arm\": %S, \"wall_s\": %.4f, \"events_per_run\": %d, \
           \"overhead\": %.4f}"
          a.a_label a.a_wall_s a.a_events a.a_overhead
      in
      let metrics_json =
        match !snapshot with Some m -> Metrics.json_string m | None -> "null"
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"P12 tracing overhead\",\n\
        \  \"meta\": %s,\n\
        \  \"workload\": {\"services\": %d, \"conflict_density\": %.2f, \
         \"activities\": \"%d-%d\", \"processes\": %d, \"seed\": %d, \
         \"reps\": %d},\n\
        \  \"arms\": [\n    %s\n  ],\n\
        \  \"metrics_snapshot\": %s\n}\n"
        (meta_json ~experiment:"P12" ())
        p12_params.Generator.services p12_params.Generator.conflict_density
        p12_params.Generator.activities_min p12_params.Generator.activities_max
        n seed reps
        (String.concat ",\n    " (List.map arm_json arms))
        metrics_json;
      close_out oc;
      Format.printf "@.wrote %s@." path);
  arms

let p12_main args =
  let quick = ref false in
  let json = ref None in
  let max_overhead = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--max-overhead" :: x :: rest ->
        max_overhead := Some (float_of_string x);
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "p12: unknown argument %S" arg)
  in
  parse args;
  let arms = section_p12 ~quick:!quick ?json:!json () in
  match !max_overhead with
  | None -> ()
  | Some ceiling -> (
      (* perf-smoke gate: the always-on forensics configuration (ring sink
         only) must stay within the ceiling of the disabled baseline *)
      match List.find_opt (fun a -> a.a_label = "ring") arms with
      | None -> ()
      | Some ring ->
          if ring.a_overhead > ceiling then begin
            Format.printf "P12 SMOKE FAILED: ring overhead %.1f%% > ceiling %.1f%%@."
              (100.0 *. ring.a_overhead) (100.0 *. ceiling);
            exit 1
          end
          else
            Format.printf "P12 smoke ok: ring overhead %.1f%% <= ceiling %.1f%%@."
              (100.0 *. ring.a_overhead) (100.0 *. ceiling))

(* P14: group commit — durable-commit throughput vs. decision latency.
   The same workload runs over a real on-disk WAL under each sync policy;
   wall time is dominated by fsyncs, so coalescing them into one fsync
   per batch window multiplies durable-record throughput, while the
   window delays 2PC DECISIONs (held until their commit record's fsync)
   and stretches the virtual makespan — the latency being traded away. *)

type p14_arm = {
  g_label : string;
  g_wall_s : float;  (* min over reps *)
  g_records : int;
  g_fsyncs : int;
  g_max_batch : int;
  g_makespan : float;  (* virtual completion time *)
  g_throughput : float;  (* durable records per wall second *)
}

let p14_params =
  {
    Generator.default_params with
    services = 10;
    conflict_density = 0.25;
    activities_min = 3;
    activities_max = 6;
    subsystems = 3;
  }

let p14_run ~n ~seed ~sync =
  let dir = Filename.temp_file "tpm_p14" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let path = Filename.concat dir "wal.log" in
      let rms = Generator.rms p14_params ~seed () in
      let spec = Generator.spec p14_params in
      let config = { Scheduler.default_config with seed; wal_sync = sync } in
      let t = Scheduler.create ~config ~spec ~rms ~wal_path:path () in
      let procs = Generator.batch ~seed:(seed * 100) p14_params ~n in
      List.iteri (fun i p -> Scheduler.submit t ~at:(0.2 *. float_of_int i) p) procs;
      Gc.compact ();
      let w0 = Unix.gettimeofday () in
      Scheduler.run ~until:1e6 t;
      ignore (Wal.sync (Scheduler.wal t));
      let wall = Unix.gettimeofday () -. w0 in
      if not (Scheduler.finished t) then failwith "p14: run did not finish";
      (wall, Wal.stats (Scheduler.wal t), Scheduler.now t))

(* storage-level axis: direct WAL appends with one fsync per [batch]
   records (batch = 1 is [Sync_each]; batch = records is sync-at-close).
   Here the work IS the logging, so the fsync coalescing factor shows up
   undiluted by simulation CPU. *)
let p14_storage_run ~records ~batch =
  let dir = Filename.temp_file "tpm_p14s" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let path = Filename.concat dir "wal.log" in
      let sync = if batch = 1 then Wal.Sync_each else Wal.No_sync in
      let wal = Wal.create ~path ~sync () in
      Gc.compact ();
      let w0 = Unix.gettimeofday () in
      for i = 1 to records do
        Wal.append wal (Wal.Invoked { pid = 1; act = i });
        if batch > 1 && i mod batch = 0 then ignore (Wal.sync wal)
      done;
      ignore (Wal.sync wal);
      let wall = Unix.gettimeofday () -. w0 in
      Wal.close wal;
      let st = Wal.stats wal in
      assert (st.Wal.durable_records = records);
      (wall, st.Wal.fsyncs))

let section_p14 ?(quick = false) ?json () =
  section "P14 — group commit: durable-commit throughput vs. decision latency";
  let n = if quick then 24 else 48 in
  let reps = if quick then 2 else 3 in
  let seed = 7 in
  let arms =
    [
      ("each", Wal.Sync_each);
      ("group:0.05", Wal.Group 0.05);
      ("group:0.2", Wal.Group 0.2);
      ("none", Wal.No_sync);
    ]
  in
  (* one discarded warmup round, then per-arm minimum over [reps]
     interleaved rounds (the noise-robust estimator for fsync-bound runs) *)
  List.iter (fun (_, sync) -> ignore (p14_run ~n ~seed ~sync)) arms;
  let walls = Array.make (List.length arms) infinity in
  let finals = Array.make (List.length arms) None in
  for _ = 1 to reps do
    List.iteri
      (fun i (_, sync) ->
        let w, st, mk = p14_run ~n ~seed ~sync in
        if w < walls.(i) then walls.(i) <- w;
        finals.(i) <- Some (st, mk))
      arms
  done;
  let measured =
    List.mapi
      (fun i (label, _) ->
        let st, mk = Option.get finals.(i) in
        Printf.eprintf "  [p14] %s: min %.3fs, %d fsyncs\n%!" label walls.(i)
          st.Wal.fsyncs;
        {
          g_label = label;
          g_wall_s = walls.(i);
          g_records = st.Wal.durable_records;
          g_fsyncs = st.Wal.fsyncs;
          g_max_batch = st.Wal.max_batch;
          g_makespan = mk;
          g_throughput = float_of_int st.Wal.durable_records /. walls.(i);
        })
      arms
  in
  print_table
    [ "policy"; "wall s (min)"; "records"; "fsyncs"; "max batch"; "virtual makespan";
      "durable rec/s" ]
    (List.map
       (fun a ->
         [
           a.g_label;
           Printf.sprintf "%.3f" a.g_wall_s;
           string_of_int a.g_records;
           string_of_int a.g_fsyncs;
           string_of_int a.g_max_batch;
           f2 a.g_makespan;
           Printf.sprintf "%.0f" a.g_throughput;
         ])
       measured);
  (* storage-level axis: the fsync-bound multiplier, undiluted *)
  let s_records = if quick then 2000 else 5000 in
  let s_reps = if quick then 2 else 3 in
  let s_batches = [ 1; 8; 32; s_records ] in
  List.iter (fun b -> ignore (p14_storage_run ~records:s_records ~batch:b)) s_batches;
  let s_walls = Array.make (List.length s_batches) infinity in
  let s_fsyncs = Array.make (List.length s_batches) 0 in
  for _ = 1 to s_reps do
    List.iteri
      (fun i b ->
        let w, f = p14_storage_run ~records:s_records ~batch:b in
        if w < s_walls.(i) then s_walls.(i) <- w;
        s_fsyncs.(i) <- f)
      s_batches
  done;
  let storage =
    List.mapi
      (fun i b ->
        let label = if b = s_records then "close-only" else Printf.sprintf "batch %d" b in
        (label, b, s_walls.(i), s_fsyncs.(i), float_of_int s_records /. s_walls.(i)))
      s_batches
  in
  Format.printf "@.storage-level durable-append throughput (%d records, min of %d):@."
    s_records s_reps;
  let s_base =
    match storage with (_, _, _, _, tp) :: _ -> tp | [] -> 1.0
  in
  print_table
    [ "fsync cadence"; "wall s (min)"; "fsyncs"; "records/s"; "vs each" ]
    (List.map
       (fun (label, _, w, f, tp) ->
         [
           label;
           Printf.sprintf "%.3f" w;
           string_of_int f;
           Printf.sprintf "%.0f" tp;
           Printf.sprintf "%.1fx" (tp /. s_base);
         ])
       storage);
  Format.printf
    "@.shape: [each] pays one fsync per record — durable and slow.  [group:W]@.";
  Format.printf
    "coalesces a window's appends into one fsync (same record stream, fewer@.";
  Format.printf
    "fsyncs, higher durable throughput) at the price of decisions waiting out@.";
  Format.printf
    "the window: the virtual makespan grows with W.  [none] is the upper bound@.";
  Format.printf
    "no durability story can beat.  The end-to-end table dilutes the effect@.";
  Format.printf
    "with simulation CPU; the storage axis shows the fsync-bound multiplier.@.";
  (match json with
  | None -> ()
  | Some path ->
      let arm_json a =
        Printf.sprintf
          "{\"policy\": %S, \"wall_s\": %.4f, \"records\": %d, \"fsyncs\": %d, \
           \"max_batch\": %d, \"virtual_makespan\": %.2f, \
           \"durable_records_per_s\": %.0f}"
          a.g_label a.g_wall_s a.g_records a.g_fsyncs a.g_max_batch a.g_makespan
          a.g_throughput
      in
      let storage_json (label, batch, w, f, tp) =
        Printf.sprintf
          "{\"cadence\": %S, \"batch\": %d, \"wall_s\": %.4f, \"fsyncs\": %d, \
           \"records_per_s\": %.0f, \"speedup_vs_each\": %.1f}"
          label batch w f tp (tp /. s_base)
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"P14 group commit\",\n\
        \  \"meta\": %s,\n\
        \  \"workload\": {\"services\": %d, \"conflict_density\": %.2f, \
         \"activities\": \"%d-%d\", \"subsystems\": %d, \"processes\": %d, \
         \"seed\": %d, \"reps\": %d},\n\
        \  \"end_to_end\": [\n    %s\n  ],\n\
        \  \"storage\": {\"records\": %d, \"reps\": %d, \"arms\": [\n    %s\n  ]}\n}\n"
        (meta_json ~experiment:"P14" ())
        p14_params.Generator.services p14_params.Generator.conflict_density
        p14_params.Generator.activities_min p14_params.Generator.activities_max
        p14_params.Generator.subsystems n seed reps
        (String.concat ",\n    " (List.map arm_json measured))
        s_records s_reps
        (String.concat ",\n    " (List.map storage_json storage));
      close_out oc;
      Format.printf "@.wrote %s@." path);
  (measured, storage)

let p14_main args =
  let quick = ref false in
  let json = ref None in
  let min_throughput = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--min-throughput" :: x :: rest ->
        min_throughput := Some (float_of_string x);
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "p14: unknown argument %S" arg)
  in
  parse args;
  let arms, storage = section_p14 ~quick:!quick ?json:!json () in
  ignore arms;
  match !min_throughput with
  | None -> ()
  | Some floor -> (
      (* perf-smoke gate on the fsync-bound storage axis: batched durable
         appends must stay above the floor and multiply the fsync-per-
         record throughput (the group-commit payoff itself) *)
      let tp_of label =
        List.find_opt (fun (l, _, _, _, _) -> l = label) storage
        |> Option.map (fun (_, _, _, _, tp) -> tp)
      in
      match (tp_of "batch 32", tp_of "batch 1") with
      | Some batched, Some each ->
          if batched < floor then begin
            Format.printf "P14 SMOKE FAILED: %.0f durable rec/s < floor %.0f@." batched
              floor;
            exit 1
          end
          else if batched < 2.0 *. each then begin
            Format.printf
              "P14 SMOKE FAILED: batched durable appends (%.0f rec/s) do not multiply \
               fsync-per-record (%.0f rec/s)@."
              batched each;
            exit 1
          end
          else
            Format.printf "P14 smoke ok: %.0f durable rec/s >= floor %.0f (%.1fx each)@."
              batched floor (batched /. each)
      | _ -> ())

(* P15: open-world serving under overload — saturation curves.  The
   offered load (open-loop Poisson arrivals per unit of virtual time) is
   swept across the server's capacity for each overload policy.  At every
   point the run must stay civilized: the shed-accounting invariant holds
   exactly, the queue is empty after drain, and every admitted process
   reaches a terminal state.  Goodput counts committed processes per unit
   of virtual time; admission latency is the virtual-time wait between a
   submission and its hand-off to the scheduler. *)

module Server = Tpm_server.Server

type p15_point = {
  s_policy : string;
  s_rate : float;
  s_offered : int;
  s_admitted : int;  (* preferred-branch admits *)
  s_degraded : int;
  s_rejected : int;
  s_expired : int;
  s_committed : int;
  s_goodput : float;  (* committed per unit virtual time *)
  s_shed_rate : float;  (* (rejected+expired) / offered *)
  s_p95_wait : float;  (* virtual-time admission wait, p95 *)
  s_p99_wait : float;
  s_ok : bool;  (* accounting exact, queue drained, scheduler finished *)
}

let p15_params =
  {
    Generator.default_params with
    services = 8;
    conflict_density = 0.4;
    alt_prob = 0.8;
    activities_min = 3;
    activities_max = 6;
  }

let p15_max_live = 4
let p15_queue_capacity = 8
let p15_deadline = 4.0
let p15_saturation = 2
let p15_seed = 7

let p15_knobs_json =
  Printf.sprintf
    "{\"max_live\": %d, \"queue_capacity\": %d, \"default_deadline\": %.1f, \
     \"saturation_limit\": %d, \"service_time\": 1.0, \"seed\": %d}"
    p15_max_live p15_queue_capacity p15_deadline p15_saturation p15_seed

let p15_run ~policy ~rate ~horizon =
  let seed = p15_seed in
  let spec = Generator.spec p15_params in
  let rms = Generator.rms p15_params ~seed () in
  let sched =
    Scheduler.create ~config:{ Scheduler.default_config with seed } ~spec ~rms ()
  in
  let srv =
    Server.create
      ~config:
        {
          Server.default_config with
          policy;
          max_live = p15_max_live;
          queue_capacity = p15_queue_capacity;
          default_deadline = p15_deadline;
          saturation_limit = p15_saturation;
        }
      sched
  in
  let script = Generator.arrivals p15_params ~seed:(seed * 100) ~rate ~horizon in
  Server.play srv script;
  Server.run srv;
  Server.drain srv;
  let c = Server.counters srv in
  let committed =
    List.length
      (List.filter
         (fun p -> Scheduler.status sched (Process.pid p) = Schedule.Committed)
         (Server.admitted_procs srv))
  in
  let m = Scheduler.metrics sched in
  {
    s_policy = Server.policy_label policy;
    s_rate = rate;
    s_offered = c.Server.offered;
    s_admitted = c.Server.admitted;
    s_degraded = c.Server.degraded;
    s_rejected = c.Server.rejected;
    s_expired = c.Server.expired;
    s_committed = committed;
    s_goodput = float_of_int committed /. horizon;
    s_shed_rate =
      (if c.Server.offered = 0 then 0.0
       else
         float_of_int (c.Server.rejected + c.Server.expired)
         /. float_of_int c.Server.offered);
    s_p95_wait = Metrics.hquantile m "srv_admission_wait" 0.95;
    s_p99_wait = Metrics.hquantile m "srv_admission_wait" 0.99;
    s_ok =
      Server.accounting_ok srv && Server.queue_depth srv = 0
      && Scheduler.finished sched;
  }

let section_p15 ?(quick = false) ?json () =
  section
    (if quick then "P15 — open-world serving under overload (quick)"
     else "P15 — open-world serving under overload: saturation curves");
  let loads = if quick then [ 2.0; 8.0; 16.0 ] else [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let horizon = if quick then 12.0 else 30.0 in
  let policies = [ Server.Reject; Server.Queue; Server.Degrade ] in
  let fnan f = if Float.is_nan f then "-" else Printf.sprintf "%.2f" f in
  let curves =
    List.map
      (fun policy ->
        let points =
          List.map
            (fun rate ->
              let p = p15_run ~policy ~rate ~horizon in
              Printf.eprintf "  [p15] %s load=%.1f: goodput %.2f, shed %.0f%%\n%!"
                p.s_policy rate p.s_goodput (100.0 *. p.s_shed_rate);
              p)
            loads
        in
        (Server.policy_label policy, points))
      policies
  in
  List.iter
    (fun (policy, points) ->
      Format.printf "@.policy %s (window %d, queue %d, deadline %.1f):@." policy
        p15_max_live p15_queue_capacity p15_deadline;
      print_table
        [ "offered/s"; "offered"; "admit"; "degrade"; "reject"; "expire";
          "committed"; "goodput/s"; "shed"; "p95 wait"; "p99 wait"; "ok" ]
        (List.map
           (fun p ->
             [
               Printf.sprintf "%.1f" p.s_rate; string_of_int p.s_offered;
               string_of_int p.s_admitted; string_of_int p.s_degraded;
               string_of_int p.s_rejected; string_of_int p.s_expired;
               string_of_int p.s_committed; Printf.sprintf "%.2f" p.s_goodput;
               Printf.sprintf "%.0f%%" (100.0 *. p.s_shed_rate);
               fnan p.s_p95_wait; fnan p.s_p99_wait;
               (if p.s_ok then "yes" else "NO");
             ])
           points))
    curves;
  Format.printf
    "@.shape: goodput climbs with offered load until the %d-deep admission window@."
    p15_max_live;
  Format.printf
    "saturates (multi-activity processes at unit service time under conflicts),@.";
  Format.printf
    "then plateaus while the shed rate absorbs the excess — the server degrades@.";
  Format.printf "by shedding, never by collapsing.@.";
  (match json with
  | None -> ()
  | Some path ->
      let jf f = if Float.is_nan f then "null" else Printf.sprintf "%.4f" f in
      let point_json p =
        Printf.sprintf
          "{\"offered_per_s\": %.2f, \"offered\": %d, \"admitted\": %d, \
           \"degraded\": %d, \"rejected\": %d, \"expired\": %d, \
           \"committed\": %d, \"goodput_per_s\": %.4f, \"shed_rate\": %.4f, \
           \"p95_wait\": %s, \"p99_wait\": %s, \"invariants_ok\": %b}"
          p.s_rate p.s_offered p.s_admitted p.s_degraded p.s_rejected p.s_expired
          p.s_committed p.s_goodput p.s_shed_rate (jf p.s_p95_wait)
          (jf p.s_p99_wait) p.s_ok
      in
      let curve_json (policy, points) =
        Printf.sprintf "{\"policy\": %S, \"points\": [\n      %s\n    ]}" policy
          (String.concat ",\n      " (List.map point_json points))
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"P15 open-world serving under overload\",\n\
        \  \"meta\": %s,\n\
        \  \"workload\": {\"services\": %d, \"conflict_density\": %.2f, \
         \"activities\": \"%d-%d\", \"arrivals\": \"poisson\", \
         \"horizon\": %.1f, \"seed\": %d},\n\
        \  \"curves\": [\n    %s\n  ]\n}\n"
        (meta_json ~experiment:"P15" ~knobs:p15_knobs_json ())
        p15_params.Generator.services p15_params.Generator.conflict_density
        p15_params.Generator.activities_min p15_params.Generator.activities_max
        horizon p15_seed
        (String.concat ",\n    " (List.map curve_json curves));
      close_out oc;
      Format.printf "@.wrote %s@." path);
  curves

let p15_main args =
  let quick = ref false in
  let json = ref None in
  let min_goodput = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--min-goodput" :: x :: rest ->
        min_goodput := Some (float_of_string x);
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "p15: unknown argument %S" arg)
  in
  parse args;
  let curves = section_p15 ~quick:!quick ?json:!json () in
  (* the shed-accounting invariant and drain/termination must hold at
     every measured point, whatever the load *)
  let all_ok =
    List.for_all (fun (_, points) -> List.for_all (fun p -> p.s_ok) points) curves
  in
  if not all_ok then begin
    Format.printf "P15 SMOKE FAILED: invariant violation at some load point@.";
    exit 1
  end;
  match !min_goodput with
  | None -> ()
  | Some floor ->
      (* saturation gate: at the highest offered load (deep overload),
         every policy must still push at least [floor] committed
         processes per unit of virtual time — shedding, not collapsing *)
      List.iter
        (fun (policy, points) ->
          let worst =
            List.fold_left
              (fun acc p -> if p.s_rate >= 8.0 then min acc p.s_goodput else acc)
              infinity points
          in
          if worst < floor then begin
            Format.printf
              "P15 SMOKE FAILED: policy %s goodput %.2f/s under overload < floor \
               %.2f/s@."
              policy worst floor;
            exit 1
          end
          else
            Format.printf "P15 smoke ok: policy %s goodput %.2f/s >= floor %.2f/s@."
              policy worst floor)
        curves

(* ------------------------------------------------------------------ *)
(* P16 — domain-sharded admission: conflict-component sharding vs the
   single engine at scale.  The workload is clustered (8 conflict-disjoint
   service universes), so the partition is exact and the sharded runs are
   decision-equivalent to the single engine (test/test_shard.ml proves
   that); what this experiment measures is the end-to-end cost.  Two
   effects compound: per-shard admission works on a live set 8x smaller
   (the per-call cost is superlinear in component size), and every
   dispatch wake rescans only shard-local waiters instead of the whole
   world.  The [domains] axis adds hardware parallelism on top when cores
   exist — on a single-core host it is flat by construction, which the
   recorded [cores] field makes explicit. *)

type p16_point = {
  q_label : string;
  q_procs : int;
  q_buckets : int;
  q_domains : int;
  q_admissions : int;
  q_mean_us : float;
  q_p95_us : float;
  q_wall_s : float;
}

let p16_params =
  {
    Generator.default_params with
    services = 6;
    subsystems = 2;
    conflict_density = 0.35;
    activities_min = 3;
    activities_max = 6;
  }

let p16_clusters = 8
let p16_seed = 11
let p16_throughput p = float_of_int p.q_procs /. p.q_wall_s

let p16_run ?(engine = Scheduler.Incremental) ~shards ~domains ~n () =
  let spec, make_rms, procs, _ =
    Generator.clustered ~seed:p16_seed p16_params ~clusters:p16_clusters ~n
  in
  let items = List.mapi (fun i p -> (0.3 *. float_of_int i, p)) procs in
  let config =
    {
      Scheduler.default_config with
      seed = p16_seed;
      admission_engine = engine;
      admission_clock = Some Unix.gettimeofday;
    }
  in
  let w0 = Unix.gettimeofday () in
  let scheds = Shard.run_parallel ~shards ~domains ~config ~spec ~make_rms items in
  let wall = Unix.gettimeofday () -. w0 in
  List.iter
    (fun t ->
      if not (Scheduler.finished t) then failwith "p16: shard did not finish")
    scheds;
  let samples =
    List.concat_map
      (fun t -> Metrics.samples (Scheduler.metrics t) "admission_time")
      scheds
  in
  let k = List.length samples in
  let sorted = List.sort compare samples in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int (max 1 k) in
  let p95 =
    if k = 0 then 0.0
    else List.nth sorted (min (k - 1) (int_of_float (0.95 *. float_of_int k)))
  in
  {
    q_label = (if shards <= 1 then "single" else "sharded");
    q_procs = n;
    q_buckets = List.length scheds;
    q_domains = domains;
    q_admissions =
      List.fold_left
        (fun acc t -> acc + Metrics.count (Scheduler.metrics t) "admissions")
        0 scheds;
    q_mean_us = 1e6 *. mean;
    q_p95_us = 1e6 *. p95;
    q_wall_s = wall;
  }

let section_p16 ?(quick = false) ?json () =
  section
    (if quick then "P16 — sharded admission, perf smoke (quick)"
     else "P16 — domain-sharded admission at scale");
  let measure ?engine ~shards ~domains ~n () =
    let p = p16_run ?engine ~shards ~domains ~n () in
    Printf.eprintf "  [p16] %s n=%d shards=%d domains=%d: %.1fs wall\n%!"
      p.q_label n shards domains p.q_wall_s;
    p
  in
  let cores = Domain.recommended_domain_count () in
  let points =
    if quick then
      (* oversubscribing domains on a small host only measures preemption;
         the quick profile sticks to domain counts the hardware backs *)
      [ measure ~shards:1 ~domains:1 ~n:256 ();
        measure ~shards:p16_clusters ~domains:1 ~n:256 ();
        measure ~shards:p16_clusters ~domains:1 ~n:1024 () ]
      @ (if cores >= 2 then
           [ measure ~shards:p16_clusters ~domains:(min 4 cores) ~n:1024 () ]
         else [])
    else
      (* the single-engine baseline stops at 1024: its cost is superlinear
         in the live set (that is the experiment's point) and the curve is
         established; the sharded axis continues to 2048.  The domain axis
         is swept at the large scales even past the core count — the
         [cores] field in the JSON is the context for those points. *)
      List.concat_map
        (fun n ->
          (if n <= 1024 then [ measure ~shards:1 ~domains:1 ~n () ] else [])
          @ List.map
              (fun domains -> measure ~shards:p16_clusters ~domains ~n ())
              (if n >= 1024 then [ 1; 2; 4; 8 ] else [ 1 ]))
        [ 64; 256; 1024; 2048 ]
  in
  (* the differential oracle survives sharding and real domains: a checked
     arm at moderate scale, every admission of every shard cross-checked
     against the reference engine *)
  let checked_ok =
    match
      measure ~engine:Scheduler.Checked ~shards:p16_clusters ~domains:2 ~n:256 ()
    with
    | p -> p.q_buckets > 0
    | exception e ->
        Printf.eprintf "  [p16] checked arm FAILED: %s\n%!" (Printexc.to_string e);
        false
  in
  print_table
    [ "engine"; "procs"; "buckets"; "domains"; "admissions"; "mean us";
      "p95 us"; "wall s"; "procs/s" ]
    (List.map
       (fun p ->
         [
           p.q_label; string_of_int p.q_procs; string_of_int p.q_buckets;
           string_of_int p.q_domains; string_of_int p.q_admissions;
           f2 p.q_mean_us; f2 p.q_p95_us; f2 p.q_wall_s;
           Printf.sprintf "%.0f" (p16_throughput p);
         ])
       points);
  let speedups =
    List.filter_map
      (fun n ->
        match
          List.find_opt (fun p -> p.q_label = "single" && p.q_procs = n) points
        with
        | None -> None
        | Some base ->
            let best =
              List.fold_left
                (fun acc p ->
                  if p.q_label = "sharded" && p.q_procs = n then
                    max acc (p16_throughput p /. p16_throughput base)
                  else acc)
                0.0 points
            in
            if best > 0.0 then Some (n, best) else None)
      [ 64; 256; 1024; 2048 ]
  in
  List.iter
    (fun (n, s) ->
      Format.printf "e2e speedup, sharded vs single engine at %d procs: %.1fx@." n s)
    speedups;
  Format.printf "checked arm (per-shard differential oracle, 2 domains): %s@."
    (if checked_ok then "ok" else "FAILED");
  (match json with
  | None -> ()
  | Some path ->
      let point_json p =
        Printf.sprintf
          "{\"engine\": %S, \"procs\": %d, \"buckets\": %d, \"domains\": %d, \
           \"admissions\": %d, \"mean_us\": %.3f, \"p95_us\": %.3f, \
           \"wall_s\": %.3f, \"throughput_per_s\": %.1f}"
          p.q_label p.q_procs p.q_buckets p.q_domains p.q_admissions p.q_mean_us
          p.q_p95_us p.q_wall_s (p16_throughput p)
      in
      let knobs =
        Printf.sprintf
          "{\"clusters\": %d, \"services_per_cluster\": %d, \
           \"conflict_density\": %.2f, \"activities\": \"%d-%d\", \
           \"seed\": %d, \"cores\": %d}"
          p16_clusters p16_params.Generator.services
          p16_params.Generator.conflict_density p16_params.Generator.activities_min
          p16_params.Generator.activities_max p16_seed
          (Domain.recommended_domain_count ())
      in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"P16 domain-sharded admission\",\n\
        \  \"meta\": %s,\n\
        \  \"workload\": %s,\n\
        \  \"points\": [\n    %s\n  ],\n\
        \  \"speedup_e2e_vs_single\": {%s},\n\
        \  \"checked_ok\": %b\n}\n"
        (meta_json ~experiment:"P16" ~knobs ())
        knobs
        (String.concat ",\n    " (List.map point_json points))
        (String.concat ", "
           (List.map (fun (n, s) -> Printf.sprintf "\"%d\": %.1f" n s) speedups))
        checked_ok;
      close_out oc;
      Format.printf "@.wrote %s@." path);
  (points, speedups, checked_ok)

let p16_main args =
  let quick = ref false in
  let json = ref None in
  let max_p95 = ref None in
  let min_speedup = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--max-p95-us" :: x :: rest ->
        max_p95 := Some (float_of_string x);
        parse rest
    | "--min-speedup" :: x :: rest ->
        min_speedup := Some (float_of_string x);
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "p16: unknown argument %S" arg)
  in
  parse args;
  let points, speedups, checked_ok = section_p16 ~quick:!quick ?json:!json () in
  if not checked_ok then begin
    Format.printf "P16 SMOKE FAILED: per-shard differential oracle@.";
    exit 1
  end;
  (match !max_p95 with
  | None -> ()
  | Some cap ->
      let cores = Domain.recommended_domain_count () in
      List.iter
        (fun p ->
          (* domains beyond the core count measure preemption, not
             admission latency — the gate applies to backed configs *)
          if
            p.q_label = "sharded" && p.q_procs >= 1024 && p.q_domains <= cores
            && p.q_p95_us >= cap
          then begin
            Format.printf
              "P16 SMOKE FAILED: sharded p95 %.1fus at %d procs >= cap %.1fus@."
              p.q_p95_us p.q_procs cap;
            exit 1
          end)
        points;
      Format.printf "P16 smoke ok: sharded p95 under %.0fus at 1k procs@." cap);
  match !min_speedup with
  | None -> ()
  | Some floor -> (
      match speedups with
      | [] ->
          Format.printf "P16 SMOKE FAILED: no single-engine baseline measured@.";
          exit 1
      | l ->
          let n, s = List.nth l (List.length l - 1) in
          if s < floor then begin
            Format.printf
              "P16 SMOKE FAILED: e2e speedup %.1fx at %d procs < floor %.1fx@." s
              n floor;
            exit 1
          end
          else
            Format.printf "P16 smoke ok: e2e speedup %.1fx at %d procs@." s n)

(* P17: buffer-pool paged store — larger-than-RAM behavior.  A dataset
   spanning many pages runs a mixed read/write stream through pools sized
   as fractions of the page count, over a real on-disk WAL with periodic
   fuzzy [Dirty_pages] snapshots.  Reported per pool size: hit rate,
   eviction and flush traffic, op throughput, then crash-recovery cost —
   wall time and how many log records the checkpoint-bounded redo plan
   replays vs. skips.  The bounded-redo oracle is always on: the rebuilt
   store must equal the full durable replay, and no replayed record may
   lie below the plan's own start bound. *)

module Bufpool = Tpm_kv.Bufpool
module Pager = Tpm_kv.Pager
module KvRecovery = Tpm_wal.Recovery

type p17_point = {
  b_label : string;  (* pool size as a fraction of the dataset's pages *)
  b_frames : int;
  b_pages : int;
  b_hit_rate : float;
  b_evictions : int;
  b_flushes : int;
  b_ops_s : float;
  b_recover_s : float;
  b_replayed : int;
  b_skipped : int;
  b_ok : bool;
}

let p17_rm = "bench"
let p17_page_size = 1024

let p17_value rng =
  Tpm_kv.Value.Text (String.init 48 (fun _ -> Char.chr (97 + Random.State.int rng 26)))

let p17_key i = Printf.sprintf "key%04d" i

let with_p17_dir f =
  let dir = Filename.temp_file "tpm_p17" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* the dataset's page count at a given page size: one warmup store with an
   unbounded pool, just to size the fraction axis *)
let p17_npages ~nkeys =
  with_p17_dir (fun dir ->
      let s =
        Tpm_kv.Store.create_paged ~frames:max_int ~page_size:p17_page_size
          (Filename.concat dir "probe.pages")
      in
      let rng = Random.State.make [| 0x17 |] in
      for i = 0 to nkeys - 1 do
        Tpm_kv.Store.set s (p17_key i) (p17_value rng)
      done;
      let pool = Option.get (Tpm_kv.Store.bufpool s) in
      let n = Pager.npages (Bufpool.pager pool) in
      Pager.close (Bufpool.pager pool);
      n)

let p17_run ~nkeys ~ops ~frames =
  with_p17_dir (fun dir ->
      let wal_path = Filename.concat dir "wal.log" in
      let page_path = Filename.concat dir "store.pages" in
      let wal = Wal.create ~path:wal_path ~sync:Wal.Sync_each () in
      let store = Tpm_kv.Store.create_paged ~frames ~page_size:p17_page_size page_path in
      Tpm_kv.Store.connect_wal store
        ~log:(fun key value ->
          Wal.append wal (Wal.Kv_write { rm = p17_rm; key; value });
          Wal.size wal)
        ~durable_lsn:(fun () -> (Wal.stats wal).Wal.durable_records)
        ~force_durable:(fun () -> ignore (Wal.sync wal));
      let rng = Random.State.make [| 0x1700 + frames |] in
      for i = 0 to nkeys - 1 do
        Tpm_kv.Store.set store (p17_key i) (p17_value rng)
      done;
      let pool = Option.get (Tpm_kv.Store.bufpool store) in
      let s0 = Bufpool.stats pool in
      (* measured phase: uniform 70/30 read/write stream with a fuzzy
         dirty-page snapshot every 500 ops (what a checkpoint logs) *)
      Gc.compact ();
      let w0 = Unix.gettimeofday () in
      for op = 1 to ops do
        let key = p17_key (Random.State.int rng nkeys) in
        if Random.State.int rng 10 < 3 then Tpm_kv.Store.set store key (p17_value rng)
        else ignore (Tpm_kv.Store.get store key);
        if op mod 500 = 0 then
          Wal.append wal
            (Wal.Dirty_pages { rm = p17_rm; pages = Bufpool.dirty_page_table pool })
      done;
      let wall = Unix.gettimeofday () -. w0 in
      let s1 = Bufpool.stats pool in
      let npages = Pager.npages (Bufpool.pager pool) in
      (* crash: freeze the pool, then rebuild from page file + durable log *)
      Tpm_kv.Store.freeze store;
      Wal.close wal;
      Pager.close (Bufpool.pager pool);
      let image = (Wal.load wal_path).Wal.records in
      let plan = KvRecovery.kv_redo ~rm:p17_rm image in
      let r0 = Unix.gettimeofday () in
      let recovered, anomalies = Tpm_kv.Store.open_paged ~frames:max_int page_path in
      let bound_ok = ref (anomalies = []) in
      List.iter
        (fun (lsn, key, v) ->
          if lsn < plan.KvRecovery.start_lsn then bound_ok := false;
          Tpm_kv.Store.redo recovered ~lsn key v)
        plan.KvRecovery.ops;
      let recover_s = Unix.gettimeofday () -. r0 in
      let twin = Tpm_kv.Store.create () in
      List.iteri
        (fun i r ->
          match r with
          | Wal.Kv_write { rm; key; value } when String.equal rm p17_rm ->
              Tpm_kv.Store.redo twin ~lsn:(i + 1) key value
          | _ -> ())
        image;
      let ok = !bound_ok && Tpm_kv.Store.equal_state recovered twin in
      let skipped = ref 0 in
      List.iteri
        (fun i r ->
          match r with
          | Wal.Kv_write { rm; _ }
            when String.equal rm p17_rm && i + 1 < plan.KvRecovery.start_lsn ->
              incr skipped
          | _ -> ())
        image;
      (match Tpm_kv.Store.bufpool recovered with
      | Some p -> Pager.close (Bufpool.pager p)
      | None -> ());
      let hits = s1.Bufpool.hits - s0.Bufpool.hits in
      let misses = s1.Bufpool.misses - s0.Bufpool.misses in
      {
        b_label = "";
        b_frames = frames;
        b_pages = npages;
        b_hit_rate =
          (if hits + misses = 0 then 1.0
           else float_of_int hits /. float_of_int (hits + misses));
        b_evictions = s1.Bufpool.evictions - s0.Bufpool.evictions;
        b_flushes = s1.Bufpool.flushes - s0.Bufpool.flushes;
        b_ops_s = (if wall <= 0.0 then 0.0 else float_of_int ops /. wall);
        b_recover_s = recover_s;
        b_replayed = List.length plan.KvRecovery.ops;
        b_skipped = !skipped;
        b_ok = ok;
      })

(* the Tx read-set guard: one transaction reading [reads] distinct keys.
   The read set is tracked per read, so this is quadratic if the tracking
   regresses to a membership scan — the floor below catches that. *)
let p17_tx_reads ~reads =
  let store = Tpm_kv.Store.create () in
  for i = 0 to reads - 1 do
    Tpm_kv.Store.set store (Printf.sprintf "r%06d" i) (Tpm_kv.Value.Int i)
  done;
  Gc.compact ();
  let w0 = Unix.gettimeofday () in
  let tx = Tpm_kv.Tx.begin_ store in
  for i = 0 to reads - 1 do
    ignore (Tpm_kv.Tx.get tx (Printf.sprintf "r%06d" i))
  done;
  let n = List.length (Tpm_kv.Tx.read_set tx) in
  let wall = Unix.gettimeofday () -. w0 in
  Tpm_kv.Tx.abort tx;
  assert (n = reads);
  if wall <= 0.0 then infinity else float_of_int reads /. wall

let section_p17 ?(quick = false) ?json () =
  section
    (if quick then "P17 — buffer-pool paged store (quick scales)"
     else "P17 — buffer-pool paged store: larger-than-RAM datasets");
  let nkeys = if quick then 240 else 600 in
  let ops = if quick then 1500 else 4000 in
  let reads = if quick then 8_000 else 20_000 in
  let npages = p17_npages ~nkeys in
  let fractions =
    [ ("1/8", 0.125); ("1/4", 0.25); ("1/2", 0.5); ("1x", 1.0); ("2x", 2.0) ]
  in
  let points =
    List.map
      (fun (label, frac) ->
        let frames = max 1 (int_of_float (frac *. float_of_int npages)) in
        let p = { (p17_run ~nkeys ~ops ~frames) with b_label = label } in
        Printf.eprintf "  [p17] pool=%s (%d frames): hit %.0f%%, recover %.3fs\n%!" label
          frames (100.0 *. p.b_hit_rate) p.b_recover_s;
        p)
      fractions
  in
  print_table
    [ "pool"; "frames"; "pages"; "hit rate"; "evictions"; "flushes"; "ops/s";
      "recover s"; "replayed"; "skipped"; "ok" ]
    (List.map
       (fun p ->
         [
           p.b_label; string_of_int p.b_frames; string_of_int p.b_pages;
           pct p.b_hit_rate; string_of_int p.b_evictions; string_of_int p.b_flushes;
           Printf.sprintf "%.0f" p.b_ops_s; Printf.sprintf "%.4f" p.b_recover_s;
           string_of_int p.b_replayed; string_of_int p.b_skipped;
           (if p.b_ok then "yes" else "NO");
         ])
       points);
  Format.printf "With the pool a fraction of the dataset the store pages: hit rate and@.";
  Format.printf "throughput fall, eviction writeback rises, and recovery replays only@.";
  Format.printf "the records past the last dirty-page snapshot's bound.@.";
  let tx_rate = p17_tx_reads ~reads in
  Format.printf "@.Tx read-set: %d reads in one transaction, %.0f reads/s@." reads tx_rate;
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"P17 buffer-pool paged store\",\n  \"meta\": %s,\n\
        \  \"knobs\": {\"page_size\": %d, \"keys\": %d, \"dataset_pages\": %d, \
         \"ops\": %d, \"tx_reads\": %d},\n\
        \  \"pool_axis\": [\n    %s\n  ],\n\
        \  \"tx_read_axis\": {\"reads\": %d, \"reads_per_s\": %.1f}\n}\n"
        (meta_json ~experiment:"P17" ())
        p17_page_size nkeys npages ops reads
        (String.concat ",\n    "
           (List.map
              (fun p ->
                Printf.sprintf
                  "{\"pool\": %S, \"frames\": %d, \"pages\": %d, \"hit_rate\": %.4f, \
                   \"evictions\": %d, \"flushes\": %d, \"ops_per_s\": %.1f, \
                   \"recover_s\": %.4f, \"replayed\": %d, \"skipped\": %d, \"ok\": %b}"
                  p.b_label p.b_frames p.b_pages p.b_hit_rate p.b_evictions p.b_flushes
                  p.b_ops_s p.b_recover_s p.b_replayed p.b_skipped p.b_ok)
              points))
        reads tx_rate;
      close_out oc;
      Format.printf "@.JSON written to %s@." path);
  (points, tx_rate)

let p17_main args =
  let quick = ref false in
  let json = ref None in
  let min_hit_rate = ref None in
  let min_tx_reads = ref None in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | "--min-hit-rate" :: x :: rest ->
        min_hit_rate := Some (float_of_string x);
        parse rest
    | "--min-tx-reads" :: x :: rest ->
        min_tx_reads := Some (float_of_string x);
        parse rest
    | arg :: _ -> failwith (Printf.sprintf "p17: unknown argument %S" arg)
  in
  parse args;
  let points, tx_rate = section_p17 ~quick:!quick ?json:!json () in
  (* always-on: the bounded-redo oracle holds at every pool size *)
  List.iter
    (fun p ->
      if not p.b_ok then begin
        Format.printf "P17 SMOKE FAILED: bounded-redo oracle at pool %s@." p.b_label;
        exit 1
      end)
    points;
  (match !min_hit_rate with
  | None -> ()
  | Some floor -> (
      (* a pool at least as large as the working set must stop paging *)
      match List.find_opt (fun p -> p.b_frames >= p.b_pages) points with
      | None ->
          Format.printf "P17 SMOKE FAILED: no pool >= dataset measured@.";
          exit 1
      | Some p ->
          if p.b_hit_rate < floor then begin
            Format.printf "P17 SMOKE FAILED: hit rate %.3f at pool %s < floor %.3f@."
              p.b_hit_rate p.b_label floor;
            exit 1
          end
          else
            Format.printf "P17 smoke ok: hit rate %.3f at pool %s >= floor %.3f@."
              p.b_hit_rate p.b_label floor));
  match !min_tx_reads with
  | None -> ()
  | Some floor ->
      if tx_rate < floor then begin
        Format.printf "P17 SMOKE FAILED: %.0f tx reads/s < floor %.0f@." tx_rate floor;
        exit 1
      end
      else Format.printf "P17 smoke ok: %.0f tx reads/s >= floor %.0f@." tx_rate floor

(* ------------------------------------------------------------------ *)
(* P18 — PRED vs. classical concurrency control (strict 2PL, TSO) and
   the Section 3.6 weak order, across conflict densities.  All four arms
   run the same generated workloads over the same Rm substrate on the
   virtual clock: the paper's process-aware scheduler (Deferred mode)
   against real classical activity schedulers that treat a whole process
   as one transaction, plus PRED with the enforced weak order — the
   parallelism multiplier of overlapping conflicting local transactions
   under subsystem-enforced commit orders. *)

type p18_point = {
  e_arm : string;
  e_density : float;
  e_makespan : float;
  e_committed : int;
  e_aborted : int;
  e_throughput : float;  (* committed processes per unit virtual time *)
  e_abort_rate : float;
  e_compensations : int;
  e_restarts : int;  (* whole-process rollback+restart events (classical) *)
  e_local_restarts : int;  (* retriable local re-invocations (weak order) *)
}

let p18_fail = 0.10
let p18_horizon = 100000.0

(* a tight transient budget (2 attempts before degradation) so injected
   failures actually reach the degradation/abort paths — and, under the
   weak order, the retriable re-invocation of dependent locals *)
let p18_backoff = { Scheduler.default_backoff with max_attempts = Some 2 }

let p18_params density =
  {
    Generator.default_params with
    activities_min = 4;
    activities_max = 7;
    services = 6;
    subsystems = 3;
    conflict_density = density;
  }

let p18_zero label density =
  {
    e_arm = label;
    e_density = density;
    e_makespan = 0.0;
    e_committed = 0;
    e_aborted = 0;
    e_throughput = 0.0;
    e_abort_rate = 0.0;
    e_compensations = 0;
    e_restarts = 0;
    e_local_restarts = 0;
  }

let p18_add a b =
  {
    a with
    e_makespan = a.e_makespan +. b.e_makespan;
    e_committed = a.e_committed + b.e_committed;
    e_aborted = a.e_aborted + b.e_aborted;
    e_compensations = a.e_compensations + b.e_compensations;
    e_restarts = a.e_restarts + b.e_restarts;
    e_local_restarts = a.e_local_restarts + b.e_local_restarts;
  }

let p18_finalize ~n_total p =
  {
    p with
    e_throughput = (if p.e_makespan > 0.0 then float_of_int p.e_committed /. p.e_makespan else 0.0);
    e_abort_rate = float_of_int p.e_aborted /. float_of_int n_total;
  }

let p18_pred ~label ~config ~density ~seed ~n =
  let params = p18_params density in
  let rms = Generator.rms params ~fail_prob:(fun _ -> p18_fail) ~seed () in
  let spec = Generator.spec params in
  let t =
    Scheduler.create
      ~config:{ config with Scheduler.seed; backoff = p18_backoff }
      ~spec ~rms ()
  in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.1 *. float_of_int i) p)
    (Generator.batch ~seed:(seed * 100) params ~n);
  Scheduler.run ~until:p18_horizon t;
  if not (Scheduler.finished t) then
    failwith (Printf.sprintf "p18: %s density=%.2f seed=%d did not finish" label density seed);
  let m = Scheduler.metrics t in
  {
    (p18_zero label density) with
    e_makespan = Scheduler.now t;
    e_committed = Metrics.count m "committed";
    e_aborted = Metrics.count m "aborted";
    e_compensations = Metrics.count m "compensations";
    e_local_restarts = Metrics.count m "local_restarts";
  }

let p18_classical ~kind ~label ~density ~seed ~n =
  let params = p18_params density in
  let rms = Generator.rms params ~fail_prob:(fun _ -> p18_fail) ~seed () in
  let spec = Generator.spec params in
  let procs = Generator.batch ~seed:(seed * 100) params ~n in
  let r =
    Baseline.run kind ~spec ~rms ~horizon:p18_horizon
      ~submit_at:(fun i -> 0.1 *. float_of_int i)
      procs
  in
  if not r.Baseline.finished then
    failwith (Printf.sprintf "p18: %s density=%.2f seed=%d did not finish" label density seed);
  {
    (p18_zero label density) with
    e_makespan = r.Baseline.makespan;
    e_committed = r.Baseline.committed;
    e_aborted = r.Baseline.aborted;
    e_compensations = r.Baseline.compensations;
    e_restarts = r.Baseline.restarts;
  }

let p18_weak_config =
  { Scheduler.default_config with weak_order = true; order_enforcement = true }

let p18_row p =
  [
    p.e_arm;
    Printf.sprintf "%.2f" p.e_density;
    Printf.sprintf "%.1f" p.e_makespan;
    string_of_int p.e_committed;
    string_of_int p.e_aborted;
    Printf.sprintf "%.4f" p.e_throughput;
    Printf.sprintf "%.3f" p.e_abort_rate;
    string_of_int p.e_compensations;
    string_of_int p.e_restarts;
    string_of_int p.e_local_restarts;
  ]

let p18_json_point p =
  Printf.sprintf
    "{\"arm\": %S, \"conflict_density\": %.2f, \"makespan\": %.2f, \"committed\": %d, \
     \"aborted\": %d, \"throughput\": %.5f, \"abort_rate\": %.4f, \"compensations\": %d, \
     \"process_restarts\": %d, \"local_restarts\": %d}"
    p.e_arm p.e_density p.e_makespan p.e_committed p.e_aborted p.e_throughput p.e_abort_rate
    p.e_compensations p.e_restarts p.e_local_restarts

let section_p18 ?(quick = false) ?json () =
  section
    (if quick then "P18 — PRED vs classical baselines, smoke scales"
     else "P18 — PRED vs strict 2PL / TSO, and the weak-order multiplier");
  let densities = [ 0.1; 0.3; 0.6 ] in
  let seeds = if quick then [ 11; 12 ] else [ 11; 12; 13 ] in
  let n = if quick then 12 else 24 in
  let n_total = n * List.length seeds in
  let arm label runner density =
    p18_finalize ~n_total
      (List.fold_left
         (fun acc seed -> p18_add acc (runner ~density ~seed ~n))
         (p18_zero label density) seeds)
  in
  let points =
    List.concat_map
      (fun density ->
        let pred =
          arm "pred" (p18_pred ~label:"pred" ~config:Scheduler.default_config) density
        in
        let weak =
          arm "pred+weak" (p18_pred ~label:"pred+weak" ~config:p18_weak_config) density
        in
        let tpl =
          arm "2pl" (p18_classical ~kind:Baseline.Two_pl ~label:"2pl") density
        in
        let tso = arm "tso" (p18_classical ~kind:Baseline.Tso ~label:"tso") density in
        Printf.eprintf "  [p18] density %.2f done\n%!" density;
        [ pred; weak; tpl; tso ])
      densities
  in
  print_table
    [ "arm"; "density"; "makespan"; "committed"; "aborted"; "throughput"; "abort rate";
      "compens"; "restarts"; "local restarts" ]
    (List.map p18_row points);
  let find arm density =
    List.find (fun p -> p.e_arm = arm && p.e_density = density) points
  in
  (* the weak-order parallelism multiplier: same scheduler, same
     workloads; the only delta is overlapping conflicting locals under
     subsystem-enforced commit orders *)
  let speedups =
    List.map
      (fun d -> (d, (find "pred" d).e_makespan /. (find "pred+weak" d).e_makespan))
      densities
  in
  Format.printf "@.weak-order parallelism multiplier (PRED makespan / PRED+weak makespan):@.";
  List.iter
    (fun (d, s) -> Format.printf "  density %.2f: %.2fx@." d s)
    speedups;
  let d_hi = List.fold_left max 0.0 densities in
  let weak_hi = find "pred+weak" d_hi in
  Format.printf
    "@.at density %.2f: pred+weak throughput %.4f vs 2PL %.4f vs TSO %.4f; %d local \
     restarts over the bench@."
    d_hi weak_hi.e_throughput (find "2pl" d_hi).e_throughput (find "tso" d_hi).e_throughput
    (List.fold_left (fun acc p -> acc + p.e_local_restarts) 0 points);
  Format.printf
    "shape: the classical schedulers hold whole-process footprints — locks (2PL) or@.";
  Format.printf
    "timestamp windows (TSO) — so rising conflict density turns into blocking and@.";
  Format.printf
    "whole-process restarts.  PRED admits at activity granularity, and the weak@.";
  Format.printf
    "order overlaps even conflicting locals, re-invoking (not restarting) on a@.";
  Format.printf "predecessor abort.@.";
  (match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"P18 PRED vs classical baselines\",\n\
        \  \"meta\": %s,\n\
        \  \"workload\": {\"services\": 8, \"subsystems\": 3, \"activities\": \"3-6\", \
         \"procs_per_seed\": %d, \"seeds\": %d, \"fail_prob\": %.2f},\n\
        \  \"arms\": [\n    %s\n  ],\n\
        \  \"weak_order_speedup\": {%s}\n}\n"
        (meta_json ~experiment:"P18" ())
        n (List.length seeds) p18_fail
        (String.concat ",\n    " (List.map p18_json_point points))
        (String.concat ", "
           (List.map (fun (d, s) -> Printf.sprintf "\"%.2f\": %.3f" d s) speedups));
      close_out oc;
      Format.printf "@.wrote %s@." path);
  (points, speedups)

let p18_main args =
  let quick = ref false in
  let json = ref None in
  let min_weak_speedup = ref None in
  let check_baselines = ref false in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        go rest
    | "--json" :: path :: rest ->
        json := Some path;
        go rest
    | "--min-weak-speedup" :: v :: rest ->
        min_weak_speedup := Some (float_of_string v);
        go rest
    | "--check-baselines" :: rest ->
        check_baselines := true;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "p18: unknown argument %S" arg)
  in
  go args;
  let points, speedups = section_p18 ~quick:!quick ?json:!json () in
  let d_hi = List.fold_left (fun acc (d, _) -> max acc d) 0.0 speedups in
  let hi_speedup = List.assoc d_hi speedups in
  let total_local_restarts =
    List.fold_left (fun acc p -> acc + p.e_local_restarts) 0 points
  in
  (match !min_weak_speedup with
  | None -> ()
  | Some floor ->
      if hi_speedup < floor then begin
        Format.printf "P18 SMOKE FAILED: weak-order speedup %.2fx < floor %.2fx at density %.2f@."
          hi_speedup floor d_hi;
        exit 1
      end
      else
        Format.printf "P18 smoke ok: weak-order speedup %.2fx >= floor %.2fx at density %.2f@."
          hi_speedup floor d_hi);
  if !check_baselines then begin
    let find arm = List.find (fun p -> p.e_arm = arm && p.e_density = d_hi) points in
    let weak = find "pred+weak" and tpl = find "2pl" and tso = find "tso" in
    if weak.e_throughput <= tpl.e_throughput || weak.e_throughput <= tso.e_throughput
    then begin
      Format.printf
        "P18 SMOKE FAILED: pred+weak throughput %.4f must beat 2PL %.4f and TSO %.4f at \
         density %.2f@."
        weak.e_throughput tpl.e_throughput tso.e_throughput d_hi;
      exit 1
    end;
    if total_local_restarts = 0 then begin
      Format.printf "P18 SMOKE FAILED: no retriable local re-invocations observed@.";
      exit 1
    end;
    Format.printf
      "P18 smoke ok: pred+weak %.4f > 2PL %.4f, > TSO %.4f at density %.2f; %d local \
       restarts@."
      weak.e_throughput tpl.e_throughput tso.e_throughput d_hi total_local_restarts
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "p11" then begin
    Format.printf "Transactional Process Management — experiment harness@.";
    p11_main (List.tl (List.tl (Array.to_list Sys.argv)));
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "p12" then begin
    Format.printf "Transactional Process Management — experiment harness@.";
    p12_main (List.tl (List.tl (Array.to_list Sys.argv)));
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "p14" then begin
    Format.printf "Transactional Process Management — experiment harness@.";
    p14_main (List.tl (List.tl (Array.to_list Sys.argv)));
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "p15" then begin
    Format.printf "Transactional Process Management — experiment harness@.";
    p15_main (List.tl (List.tl (Array.to_list Sys.argv)));
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "p16" then begin
    Format.printf "Transactional Process Management — experiment harness@.";
    p16_main (List.tl (List.tl (Array.to_list Sys.argv)));
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "p17" then begin
    Format.printf "Transactional Process Management — experiment harness@.";
    p17_main (List.tl (List.tl (Array.to_list Sys.argv)));
    exit 0
  end;
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "p18" then begin
    Format.printf "Transactional Process Management — experiment harness@.";
    p18_main (List.tl (List.tl (Array.to_list Sys.argv)));
    exit 0
  end;
  Format.printf "Transactional Process Management — experiment harness@.";
  Format.printf "(reproduction of Schuldt, Alonso, Schek: PODS'99)@.";
  let ok = section_e () in
  section_p1 ();
  section_p2 ();
  section_p3 ();
  section_p4 ();
  section_p5 ();
  section_p6 ();
  section_p7 ();
  section_p8 ();
  section_p9 ();
  section_p10 ();
  ignore (section_p11 ~json:"bench/BENCH_P11.json" ());
  ignore (section_p12 ~json:"bench/BENCH_P12.json" ());
  ignore (section_p14 ~json:"bench/BENCH_P14.json" ());
  ignore (section_p15 ~json:"bench/BENCH_P15.json" ());
  ignore (section_p16 ~json:"bench/BENCH_P16.json" ());
  ignore (section_p17 ~json:"bench/BENCH_P17.json" ());
  ignore (section_p18 ~json:"bench/BENCH_P18.json" ());
  Format.printf "@.%s@." rule;
  Format.printf "scenario reproduction: %s@." (if ok then "ALL REPRODUCED" else "FAILURES ABOVE");
  if not ok then exit 1

open Tpm_core
module Rm = Tpm_subsys.Rm
module Value = Tpm_kv.Value
module Store = Tpm_kv.Store
module Des = Tpm_sim.Des
module Prng = Tpm_sim.Prng
module Metrics = Tpm_sim.Metrics
module Faults = Tpm_sim.Faults
module Bus = Tpm_sim.Bus
module Wal = Tpm_wal.Wal
module Recovery = Tpm_wal.Recovery
module Coordinator = Tpm_twopc.Coordinator
module Obs = Tpm_obs.Obs
module Choice = Tpm_sim.Choice
module Enforce = Tpm_composite.Enforce
module Compose = Tpm_composite.Compose

type mode =
  | Conservative
  | Deferred
  | Quasi

type backoff = {
  base : float;
  multiplier : float;
  cap : float;
  jitter : float;
  max_attempts : int option;
      (* transient-failure attempts granted to a non-retriable activity
         before the scheduler degrades to the next alternative branch;
         [None] derives the bound from the RM's finite-retry bound
         (max_failures - 1, i.e. strictly before Definition 3 would force
         the injected success of a retriable) *)
}

let default_backoff =
  { base = 0.5; multiplier = 2.0; cap = 8.0; jitter = 0.0; max_attempts = None }

type admission_engine =
  | Incremental
      (* interned-service bitmatrix + cached per-process service bitsets +
         Pearce-Kelly cycle detection (the default) *)
  | Reference
      (* the pre-incremental path: string-keyed conflict tests, per-pair
         future recomputation, full-graph cycle detection.  Kept as the
         comparison oracle and as the old arm of bench P11. *)
  | Checked
      (* run both on every admission and fail loudly unless the decisions
         (and recorded dependency edges) are bit-identical *)

type config = {
  mode : mode;
  exact_admission : bool;
      (* ablation: before admitting, additionally check that the history
         extended by the candidate is still reducible (Definition 9 on the
         completed schedule) — the literal "always consider S-tilde" rule
         of Section 3.5.  Definitionally exact but expensive; the default
         incremental dependency tracking approximates it. *)
  naive_sr : bool;
      (* baseline: classical serializability-only scheduling that ignores
         recovery — no Lemma-1 gating of non-compensatable activities and
         no anticipation of completion conflicts.  Exhibits exactly the
         figure-1 anomaly; used by the benchmarks as a comparator. *)
  weak_order : bool;
      (* Section 3.6: conflicting activities of different processes may
         execute overlapping in their subsystem as long as their commit
         order follows the intended (weak) order; a retriable re-invocation
         restarts the dependent local transaction *)
  order_enforcement : bool;
      (* Section 3.6, enforced end to end: route the prescribed weak order
         through per-subsystem local executors ({!Tpm_composite.Enforce})
         that hold each local commit until every prescribed predecessor's
         local transaction committed, and restart the dependent local
         transactions when a predecessor aborts.  Also lets dependents
         overlap *prepared* (2PC-pending) predecessors — the admission
         edges order them instead.  Only meaningful with [weak_order];
         off by default. *)
  seed : int;
  service_time : string -> float;
  stochastic_times : bool;
  backoff : backoff;
  invocation_timeout : float option;
      (* client-side timeout: an invocation whose (spiked) duration exceeds
         it is abandoned after the timeout and counted as a failed attempt *)
  outage_degrade : bool;
      (* degrade a non-retriable activity to its next alternative branch
         when its subsystem answers Unavailable; when off, wait out the
         outage retrying (ablation for the robustness experiments) *)
  twopc_retransmit : float;
      (* retransmission timer period of the 2PC coordinator: unanswered
         PREPARE/DECISION messages are re-sent this often *)
  twopc_inquiry : float option;
      (* participant-side termination protocol: an in-doubt participant
         re-inquires the coordinator after this long without a decision;
         [None] disables inquiries (the participant waits passively for
         coordinator retransmission) *)
  admission_engine : admission_engine;
  admission_clock : (unit -> float) option;
      (* wall-clock source for admission-latency metrics ("admission_time"
         observations); [None] (default) skips the measurement *)
  wal_sync : Wal.sync_policy;
      (* durability of the mirrored log: [Sync_each] (default) fsyncs
         every append; [Group w] coalesces concurrent durable appends —
         2PC commit decisions, process commits — into one fsync per
         [w]-long batch window; [No_sync] never fsyncs.  Irrelevant
         without [wal_path]. *)
  wal_segment_bytes : int;  (* segment roll size of the mirrored log *)
  debug_no_lemma1 : bool;
      (* MUTATION FLAG, tests only: skip the Lemma-1 gating of
         non-compensatable activities entirely (commit them immediately
         even with uncommitted conflicting predecessors).  Exists to prove
         the explorer finds the resulting PRED violation; never set it in
         real configurations. *)
}

let default_config =
  {
    mode = Deferred;
    exact_admission = false;
    naive_sr = false;
    weak_order = false;
    order_enforcement = false;
    seed = 1;
    service_time = (fun _ -> 1.0);
    stochastic_times = false;
    backoff = default_backoff;
    invocation_timeout = None;
    outage_degrade = true;
    twopc_retransmit = 1.0;
    twopc_inquiry = Some 3.0;
    admission_engine = Incremental;
    admission_clock = None;
    wal_sync = Wal.Sync_each;
    wal_segment_bytes = 1 lsl 20;
    debug_no_lemma1 = false;
  }

type phase =
  | Running
  | Blocked_2pc of {
      act : int;
      token : int;
    }
  | Deciding_2pc of {
      act : int;
      token : int;
      cid : int;
    }
      (* a 2PC coordinator instance is deciding the prepared activity: the
         process's fate for this activity is in the protocol's hands (the
         commit decision may already be durable), so abort paths must not
         touch the token *)
  | Recovering
  | Awaiting_commit
  | Done

(* Cached view of the services a process may still execute
   ([remaining_services] of the reference path), keyed on the engine
   state that determines it: recomputed only when the execution state,
   the in-flight activity or the prepared activity changed since. *)
type future_cache = {
  f_exec : Execution.t;  (* compared physically: every step makes a new value *)
  f_inflight : int option;
  f_placed : int option;
  f_bits : Tpm_core.Bitset.t;  (* interned services still executable *)
  f_conf : Tpm_core.Bitset.t;  (* their conflict closure (union of rows) *)
}

type pstate = {
  proc : Process.t;
  args_of : Activity.t -> Value.t;
  groups : Compose.group list;
      (* declared subprocesses (Section 3.6, multi-level composition):
         each admits as ONE activity at the parent level, against the
         union of its members' conflict rows *)
  admitted_groups : (string, unit) Hashtbl.t;  (* gname -> footprint claimed *)
  mutable claimed_services : string list;
      (* services claimed by admitted groups but not yet executed — the
         reference engine's string-level mirror of the claimed occ bits *)
  svc_ids : (int, int) Hashtbl.t;  (* activity number -> interned service id *)
  occ_bits : Tpm_core.Bitset.t;  (* interned services of [occurrences] *)
  occ_conf : Tpm_core.Bitset.t;  (* their conflict closure *)
  pending_bits : Tpm_core.Bitset.t;  (* services of [pending_completion] *)
  mutable future_cache : future_cache option;
  mutable exec : Execution.t;
  mutable phase : phase;
  mutable inflight : int option;
  mutable occurrences : Activity.instance list;  (* chronological, reversed *)
  mutable pending_completion : Activity.instance list;
  mutable resume_exec : Execution.t option;  (* for branch-switch rollbacks *)
  mutable completion_cache : (bool * string) list option;  (* C(P) services (is_inverse, name), invalidated on exec change *)
  mutable weak_wait : (int * int * int) option;
      (* weakly ordered behind (process, activity, attempts seen): our local
         commit must follow theirs *)
  mutable aborting : bool;
  mutable term : Schedule.status;  (* meaningful once phase = Done *)
  mutable arrived : float;
  mutable done_at : float option;
}

(* Candidate-independent part of the latent-edge computation (Section
   3.5): per-source conflict closures and per-source latent out-edge
   sets, maintained *incrementally*.  A mutation of process [p]'s
   admission-relevant state marks [p] dirty ([bump_pid]); the next
   admission re-derives only [p]'s closure, [p]'s out-edges and [p]'s
   membership in every other source's out-set — O(dirty × procs) bitset
   probes instead of the old drop-everything-and-rescan O(procs²).
   Structural events that invalidate cached bitsets wholesale (a new
   service growing the conflict matrix, recovery) set [lt_full].

   The topological order of the combined graph (stored dependency edges
   ∪ base latent edges) is kept as a Pearce–Kelly-style state machine:
   [Order_valid pos] survives edge *removals* unconditionally (removing
   an edge never invalidates a topological order) and survives additions
   that run forward in [pos]; a backward addition degrades to
   [Order_stale], resolved by one DFS on the next cycle query.
   [Order_cyclic] survives additions and degrades to [Order_stale] on
   removals. *)
type order_state =
  | Order_stale  (* recompute on next cycle query *)
  | Order_cyclic  (* combined graph known cyclic; removals invalidate *)
  | Order_valid of (int, int) Hashtbl.t
      (* topological position of every non-aborted process; forward
         additions keep it, removals keep it, new nodes append at the end *)

type latent = {
  lt_dirty : (int, unit) Hashtbl.t;  (* pids whose state changed since the last patch *)
  mutable lt_full : bool;  (* structural invalidation: rebuild everything *)
  lt_qconf : (int, Tpm_core.Bitset.t) Hashtbl.t;
      (* per-source conflict closure (occurrences ∪ in-flight ∪ prepared);
         key set = exactly the current sources (live ∪ committed) *)
  lt_out : (int, (int, unit) Hashtbl.t) Hashtbl.t;
      (* per-source latent out-edges into live targets; same key set *)
  mutable lt_edges : (int * int) list option;  (* memoized flat view of [lt_out] *)
  mutable lt_ends : int list option;
      (* memoized sorted endpoint set of the base edges — the Delay path
         reports blockers as an endpoint set, which must not cost O(edges)
         per delayed admission *)
  mutable lt_order : order_state;
  mutable lt_next_pos : int;  (* append position for newly registered pids *)
}

let latent_create () =
  {
    lt_dirty = Hashtbl.create 16;
    lt_full = true;
    lt_qconf = Hashtbl.create 32;
    lt_out = Hashtbl.create 32;
    lt_edges = None;
    lt_ends = None;
    lt_order = Order_stale;
    lt_next_pos = 0;
  }

type t = {
  cfg : config;
  spec : Conflict.t;
  cspec : Conflict.Compiled.t;  (* interned bit-compiled conflict matrix *)
  faults : Faults.t;
  rms : (string, Rm.t) Hashtbl.t;
  sim : Des.t;
  rng : Prng.t;
  deps : Deps.t;
  wal : Wal.t;
  procs : (int, pstate) Hashtbl.t;
  mutable plist : pstate list;  (* the pstates sorted by pid, maintained at register *)
  mutable hist : Schedule.t;  (* the emitted schedule, appended at [emit] *)
  scratch : Tpm_core.Bitset.t;  (* per-admission working set (single-threaded) *)
  latent : latent;  (* incrementally maintained latent base *)
  mutable rev_events : Schedule.event list;
  metrics : Metrics.t;
  attempts : (int * int, int) Hashtbl.t;
  enforce : Enforce.t option;
      (* the Section-3.6 enforcement layer, present iff
         [weak_order && order_enforcement]: per-subsystem local executors
         holding local commits to the prescribed weak order *)
  enf_how : (int, [ `Invoke | `Prepare ]) Hashtbl.t;
      (* dispatch mode per token, for re-invocation after a weak-order
         restart *)
  mutable rollback_queue : (int * Activity.instance) list;
  mutable rollback_running : bool;
  crashed : bool ref;
      (* a ref, not a mutable field: the bus crash hook and the
         coordinator's halted probe capture it before [t] exists *)
  bus : Coordinator.msg Bus.t;
  coord : Coordinator.t;
  logf : Wal.record -> unit;
  mutable ckpt_seq : int;  (* fuzzy checkpoint ids, unique per scheduler *)
  obs : Obs.Tracer.t;  (* per-instance tracer: no state leaks across schedulers *)
  mutable subsys_observer : (subsystem:string -> ok:bool -> unit) option;
      (* availability feedback for the serving layer's circuit breakers:
         [ok:false] on Unavailable / invocation timeout, [ok:true] on a
         successful subsystem answer *)
}

let tracer t = t.obs

(* Free-form protocol trace lines become [Note] events on the tracer:
   with tracing disabled the format arguments are consumed without
   rendering (one branch, no allocation).  With tracing active,
   [kdprintf] captures the arguments in a printer closure without
   formatting them — the lazy renders only when a sink or forensics
   dump reads the note. *)
let tracef t fmt =
  if Obs.Tracer.active t.obs then
    Format.kdprintf
      (fun printer ->
        Obs.Tracer.emit t.obs (Obs.Note (lazy (Format.asprintf "%t" printer))))
      fmt
  else Format.ikfprintf ignore Format.err_formatter fmt

(* Compat for the removed global [trace] flag: [TPM_TRACE] (non-empty,
   non-"0") gives every scheduler created without an explicit tracer a
   stderr pretty-printing sink. *)
let tracer_from_env () =
  match Sys.getenv_opt "TPM_TRACE" with
  | Some v when v <> "" && v <> "0" ->
      Obs.Tracer.create ~sinks:[ Obs.Sink.stderr_pretty () ] ()
  | Some _ | None -> Obs.Tracer.disabled

let activity_token ~pid ~act =
  assert (act < 1_000_000);
  (pid * 1_000_000) + act

let create ?(config = default_config) ?(faults = Faults.none)
    ?(choice = Choice.passive) ?tracer ?wal_path ~spec ~rms () =
  let obs = match tracer with Some tr -> tr | None -> tracer_from_env () in
  let table = Hashtbl.create 8 in
  List.iter
    (fun rm ->
      if Hashtbl.mem table (Rm.name rm) then
        invalid_arg (Printf.sprintf "Scheduler.create: duplicate subsystem %s" (Rm.name rm));
      Hashtbl.replace table (Rm.name rm) rm;
      (* the scheduler is the single plug point for the fault plan and the
         decision strategy: every registered subsystem consults the same
         script and the same choice stream *)
      Rm.set_faults rm faults;
      Rm.set_choice rm choice)
    rms;
  let sim = Des.create () in
  Obs.Tracer.set_clock obs (fun () -> Des.now sim);
  let metrics = Metrics.create () in
  let wal =
    Wal.create ?path:wal_path ~sync:config.wal_sync ~segment_bytes:config.wal_segment_bytes ()
  in
  Wal.set_on_sync wal (fun batch ->
      Metrics.incr metrics "wal_fsyncs";
      Metrics.observe metrics "wal_batch" (float_of_int batch);
      if Obs.Tracer.active obs then Obs.Tracer.emit obs (Obs.Wal_fsync { batch }));
  Wal.set_lie_probe wal (fun () -> Faults.lying_fsync faults ~now:(Des.now sim));
  let crashed = ref false in
  (* the message layer draws from its own stream so enabling message
     faults never perturbs the scheduler's service-time / backoff draws *)
  let msg_rng = Prng.create ((config.seed * 31) + 7) in
  let bus = Bus.create ~sim ~rng:msg_rng ~metrics ~faults ~choice () in
  Bus.set_crash_hook bus (fun () -> crashed := true);
  if Obs.Tracer.active obs then
    Bus.set_tracer bus obs ~pp:(fun msg -> Format.asprintf "%a" Coordinator.pp_msg msg);
  (* delivery-order options are labelled "<dst>:c<cid>" — the explorer's
     dependence heuristic treats messages of distinct endpoints AND
     distinct 2PC instances as commuting *)
  Bus.set_choice_descr bus (fun ~dst msg ->
      let cid =
        match (msg : Coordinator.msg) with
        | Prepare { cid; _ }
        | Vote { cid; _ }
        | Decision { cid; _ }
        | Ack { cid; _ }
        | Inquiry { cid; _ } ->
            cid
      in
      Printf.sprintf "%s:c%d" dst cid);
  if Obs.Tracer.active obs then
    Choice.set_observer choice (fun (d : Choice.decision) ->
        Obs.Tracer.emit obs
          (Obs.Choice { tag = d.Choice.tag; arity = d.Choice.arity; chosen = d.Choice.chosen }));
  (* Every WAL append goes through here so the fault plan's crash trigger
     ("die right after the Nth append") fires at an exact, reproducible
     point.  The record that trips the trigger is still written — the
     crash happens after the append — and a crash silences the bus so no
     message outlives the scheduler. *)
  (* Group commit: under [Group w] appends buffer in the OS and one Des
     event per window fsyncs the whole batch, releasing every durability
     continuation (waiter) that accumulated meanwhile.  The flush event
     is armed at the first buffered append of a window, so quiescence
     always drains it. *)
  let waiters = ref [] in
  let flush_armed = ref false in
  let group_window =
    match (config.wal_sync, wal_path) with Wal.Group w, Some _ -> Some w | _ -> None
  in
  let rec arm_flush () =
    match group_window with
    | Some w when not !flush_armed ->
        flush_armed := true;
        Des.at sim (Des.now sim +. w) (fun _ ->
            flush_armed := false;
            if not !crashed then begin
              ignore (Wal.sync wal);
              let ks = List.rev !waiters in
              waiters := [];
              List.iter (fun k -> k ()) ks;
              (* a continuation may have appended again *)
              if Wal.pending wal > 0 || !waiters <> [] then arm_flush ()
            end)
    | Some _ | None -> ()
  in
  let logf record =
    if not !crashed then begin
      Wal.append wal record;
      if group_window <> None && Wal.pending wal > 0 then arm_flush ();
      if Obs.Tracer.active obs then
        Obs.Tracer.emit obs
          (Obs.Wal_append
             {
               index = Wal.size wal - 1;
               record = lazy (Format.asprintf "%a" Wal.pp_record record);
             });
      match Faults.crash_after faults with
      | Some n when Wal.size wal >= n ->
          crashed := true;
          Bus.halt bus
      | Some _ | None ->
          (* systematic crash placement: under a driven strategy with
             [crash_explore] set, every append is a potential crash point
             (the record just written survives, like the counted trigger) *)
          if
            Faults.crash_explore faults
            && (not (Choice.is_passive choice))
            && Choice.flag choice
                 ~tag:(Printf.sprintf "crash:%d" (Wal.size wal - 1))
                 ~default:(fun () -> false)
          then begin
            crashed := true;
            Bus.halt bus
          end
    end
  in
  (* [log_durable record k]: append and run [k] once the record is
     durable.  Synchronous policies are durable (or declaredly unsafe)
     when [append] returns; under group commit [k] waits for the batch
     window's fsync.  A crash drops pending continuations — their effects
     must not outlive the scheduler, exactly like undelivered messages. *)
  let log_durable record k =
    if not !crashed then begin
      logf record;
      match group_window with
      | Some _ ->
          if not !crashed then begin
            waiters := k :: !waiters;
            arm_flush ()
          end
      | None -> k ()
    end
  in
  (* Paged resource-manager stores plug into the same log: every store
     mutation appends a [Kv_write] through [logf] — so crash triggers,
     systematic crash placement and tracing all see it — and gets the
     record's LSN back to stamp its page.  The buffer pool's flush rule
     reads the honest durable marker (never the acked count: a lying
     fsync must not unlock a page write) and may force a sync when
     eviction finds only unflushable victims. *)
  List.iter
    (fun rm ->
      let store = Rm.store rm in
      if Store.is_paged store then
        Store.connect_wal store
          ~log:(fun key value ->
            logf (Wal.Kv_write { rm = Rm.name rm; key; value });
            Wal.size wal)
          ~durable_lsn:(fun () -> (Wal.stats wal).Wal.durable_records)
          ~force_durable:(fun () -> ignore (Wal.sync wal)))
    rms;
  let halted () = !crashed in
  Metrics.incr metrics ~by:0 "indoubt_resolved";
  let coord =
    Coordinator.create ~sim ~bus ~log:logf ~log_durable ~metrics ~tracer:obs
      ~retransmit_after:config.twopc_retransmit ~halted ()
  in
  List.iter
    (fun rm ->
      Coordinator.Participant.attach ~sim ~bus ~rm ~metrics
        ?inquiry_after:config.twopc_inquiry
        ~on_resolved:(fun ~token ~commit ->
          (* participant-side durable mark, written in the same synchronous
             block as the subsystem commit/abort of the token *)
          logf
            (Wal.Prepared_decided
               { pid = token / 1_000_000; act = token mod 1_000_000; commit }))
        ~halted ())
    rms;
  let deps = Deps.create () in
  if config.admission_engine = Checked then Deps.set_check deps true;
  {
    cfg = config;
    spec;
    cspec = Conflict.Compiled.make spec;
    faults;
    rms = table;
    sim;
    rng = Prng.create config.seed;
    deps;
    wal;
    procs = Hashtbl.create 16;
    plist = [];
    hist = Schedule.make ~spec ~procs:[] [];
    scratch = Bitset.create ();
    latent = latent_create ();
    rev_events = [];
    metrics;
    attempts = Hashtbl.create 64;
    enforce =
      (if config.weak_order && config.order_enforcement then Some (Enforce.create ())
       else None);
    enf_how = Hashtbl.create 32;
    rollback_queue = [];
    rollback_running = false;
    crashed;
    bus;
    coord;
    logf;
    ckpt_seq = 0;
    obs;
    subsys_observer = None;
  }

let now t = Des.now t.sim
let sim t = t.sim
let metrics t = t.metrics
let set_subsystem_observer t f = t.subsys_observer <- Some f
let wal_records t = Wal.records t.wal
let is_crashed t = !(t.crashed)
let msg_deliveries t = Bus.deliveries t.bus
let log t record = t.logf record

let rm_of t (a : Activity.t) =
  match Hashtbl.find_opt t.rms a.subsystem with
  | Some rm -> rm
  | None -> invalid_arg (Printf.sprintf "Scheduler: unknown subsystem %s" a.subsystem)

let subsystems t =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.rms [])

let notify_subsys t rm ~ok =
  match t.subsys_observer with
  | None -> ()
  | Some f -> f ~subsystem:(Rm.name rm) ~ok

let pstates t = t.plist

(* Every mutation of admission-relevant state (occurrences, in-flight /
   prepared activities, execution steps, pending completions, phases,
   terminations, registrations) must mark the mutated process dirty —
   the next admission re-derives exactly its latent contribution.  The
   differential stress (--check-admission) and {!latent_self_check}
   would catch a missed site as an engine divergence. *)
let bump_pid t pid =
  if not t.latent.lt_full then Hashtbl.replace t.latent.lt_dirty pid ()

(* structural invalidation: cached closures embed conflict-matrix rows,
   so anything that mutates existing rows (late service interning) or
   rebuilds the world (recovery) must drop the whole base *)
let bump t = t.latent.lt_full <- true

(* A dependency edge joined the combined graph the topological order is
   maintained over.  Forward in a valid order: nothing to do.  Backward
   (or an endpoint unknown): the order is stale.  A parked cycle-closing
   edge always runs backward — deps alone already contain the opposite
   path — so it degrades to stale here and the next resolution answers
   cyclic, matching the from-scratch build. *)
let latent_dep_added t i j =
  match t.latent.lt_order with
  | Order_stale | Order_cyclic -> ()  (* additions cannot uncycle *)
  | Order_valid pos -> (
      match (Hashtbl.find_opt pos i, Hashtbl.find_opt pos j) with
      | Some pi, Some pj when pi < pj -> ()
      | _ -> t.latent.lt_order <- Order_stale)

(* A dependency edge left the combined graph (process abort, parked-edge
   GC).  A valid topological order survives any removal; a known-cyclic
   verdict does not. *)
let latent_dep_removed t =
  match t.latent.lt_order with
  | Order_cyclic -> t.latent.lt_order <- Order_stale
  | Order_stale | Order_valid _ -> ()

let add_dep_edge t i j =
  Deps.add_edge t.deps i j;
  latent_dep_added t i j

let live ps = ps.phase <> Done

let live_count t =
  List.fold_left (fun n ps -> if live ps then n + 1 else n) 0 t.plist

let duration t (a : Activity.t) =
  let mean = t.cfg.service_time a.Activity.service in
  let mean =
    mean *. Faults.latency_factor t.faults ~subsystem:a.Activity.subsystem ~now:(now t)
  in
  if t.cfg.stochastic_times then Prng.exponential t.rng ~mean else mean

(* Capped exponential backoff: attempt 1 waits [base], doubling (by
   [multiplier]) up to [cap], with optional symmetric jitter.  The jitter
   draw is skipped entirely at [jitter = 0] so the default config perturbs
   no rng stream. *)
let backoff_delay t ~pid ~act ~attempt =
  let b = t.cfg.backoff in
  let d = Float.min b.cap (b.base *. (b.multiplier ** float_of_int (attempt - 1))) in
  let d =
    if b.jitter > 0.0 then
      d *. (1.0 -. b.jitter +. (2.0 *. b.jitter *. Prng.float t.rng 1.0))
    else d
  in
  Metrics.observe t.metrics "backoff_wait" d;
  if Obs.Tracer.active t.obs then
    Obs.Tracer.emit t.obs (Obs.Backoff { pid; act; attempt; delay = d });
  d

(* Transient-failure attempts granted to a non-retriable activity before
   the scheduler degrades to an alternative branch.  The derived default
   stays strictly below the RM's finite retry bound (Definition 3), so a
   persistently failing pivot is decided by degradation, never by the
   bound's forced success. *)
let max_transient_attempts t rm =
  match t.cfg.backoff.max_attempts with
  | Some n -> max 1 n
  | None -> max 1 (Rm.max_failures rm - 1)

let sid t s = Conflict.Compiled.intern t.cspec s
let instance_service inst = (Activity.instance_base inst).Activity.service

let emit t ev =
  (match ev with
  | Schedule.Act inst -> bump_pid t (Activity.instance_proc inst)
  | Schedule.Commit pid | Schedule.Abort pid -> bump_pid t pid
  | Schedule.Group_abort pids -> List.iter (bump_pid t) pids);
  t.rev_events <- ev :: t.rev_events;
  t.hist <- Schedule.append t.hist ev;
  if Obs.Tracer.active t.obs then
    Obs.Tracer.emit t.obs
      (match ev with
      | Schedule.Act inst ->
          let a = Activity.instance_base inst in
          Obs.Occurrence
            {
              pid = a.Activity.id.Activity.proc;
              act = a.Activity.id.Activity.act;
              service = a.Activity.service;
              inverse = Activity.is_inverse inst;
            }
      | Schedule.Commit pid -> Obs.Commit pid
      | Schedule.Abort pid -> Obs.Abort pid
      | Schedule.Group_abort pids -> Obs.Group_abort pids);
  match ev with
  | Schedule.Act inst -> (
      match Hashtbl.find_opt t.procs (Activity.instance_proc inst) with
      | Some ps ->
          ps.occurrences <- inst :: ps.occurrences;
          let k = sid t (instance_service inst) in
          Bitset.set ps.occ_bits k;
          Bitset.union ~into:ps.occ_conf (Conflict.Compiled.row t.cspec k)
      | None -> ())
  | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ()

let history t = t.hist

(* the maintained topological order of the dependency graph (aborted
   processes dropped), a valid serialization order at any instant *)
let serialization_order t = Deps.order t.deps

(* the enforcement layer's live per-subsystem local schedules (empty
   without [order_enforcement]) — what the composite checkers consume *)
let local_histories t =
  match t.enforce with Some e -> Enforce.locals e | None -> []

let enforcement_held t =
  match t.enforce with Some e -> Enforce.held_count e | None -> 0

let status t pid =
  match Hashtbl.find_opt t.procs pid with
  | None -> Schedule.Active
  | Some ps -> if ps.phase = Done then ps.term else Schedule.Active

let finished t = List.for_all (fun ps -> ps.phase = Done) (pstates t)

(* Canonical rendering of the explorable state: per-process phase,
   in-flight / pending work and execution position, the rollback queue,
   attempt counters, every subsystem's {!Rm.fingerprint}, the 2PC
   coordinator's protocol state, and the bus's undelivered pool.  Two
   branches with equal fingerprints behave identically under identical
   future decisions, so the explorer prunes the second — with one
   deliberate coarsening: virtual time is excluded (states differing
   only in clock value are merged; sound for the oracles checked, which
   are all time-independent). *)
let state_fingerprint t =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  List.iter
    (fun ps ->
      add "P%d:" (Process.pid ps.proc);
      (match ps.phase with
      | Running -> add "run"
      | Blocked_2pc { act; token } -> add "b2pc(%d,%d)" act token
      | Deciding_2pc { act; token; cid } -> add "d2pc(%d,%d,%d)" act token cid
      | Recovering -> add "rec"
      | Awaiting_commit -> add "await"
      | Done ->
          add "done(%s)"
            (match ps.term with
            | Schedule.Committed -> "C"
            | Schedule.Aborted -> "A"
            | Schedule.Active -> "?"));
      (match ps.inflight with None -> () | Some act -> add ",in%d" act);
      if ps.aborting then add ",ab";
      add ",x[";
      List.iter
        (fun inst -> add "%s;" (Format.asprintf "%a" Activity.pp_instance inst))
        (List.rev ps.occurrences);
      add "],e[";
      List.iter
        (fun step -> add "%s;" (Format.asprintf "%a" Execution.pp_step step))
        (Execution.trace ps.exec);
      add "],c[";
      List.iter
        (fun inst -> add "%s;" (Format.asprintf "%a" Activity.pp_instance inst))
        ps.pending_completion;
      add "]|")
    (pstates t);
  add "rb[";
  List.iter
    (fun (pid, inst) ->
      add "%d:%s;" pid (Format.asprintf "%a" Activity.pp_instance inst))
    t.rollback_queue;
  add "]at[";
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.attempts []
  |> List.sort compare
  |> List.iter (fun ((pid, act), n) -> add "%d.%d=%d;" pid act n);
  add "]";
  Hashtbl.fold (fun _ rm acc -> rm :: acc) t.rms []
  |> List.sort (fun a b -> compare (Rm.name a) (Rm.name b))
  |> List.iter (fun rm -> add "{%s}" (Rm.fingerprint rm));
  add "{%s}" (Coordinator.fingerprint t.coord);
  add "bus[%s]" (Bus.pending_summary t.bus);
  add ";q%d" (Des.pending t.sim);
  if !(t.crashed) then add ";CRASHED";
  Buffer.contents b

let next_attempt t pid act =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.attempts (pid, act)) in
  Hashtbl.replace t.attempts (pid, act) n;
  n

(* ------------------------------------------------------------------ *)
(* Conflict queries — interned services, bitmatrix rows, cached bitsets *)

let services_conflict t s s' = Conflict.Compiled.conflict t.cspec (sid t s) (sid t s')

let occurrence_conflicts t ps service =
  Bitset.inter_nonempty (Conflict.Compiled.row t.cspec (sid t service)) ps.occ_bits

let inflight_conflict t ps service =
  match ps.inflight with
  | None -> false
  | Some act -> services_conflict t service (Process.find ps.proc act).Activity.service

(* How many live processes hold state conflicting with [service]: an
   occurrence (tested against the cached conflict closure) or a
   conflicting in-flight invocation.  The serving layer probes this to
   decide whether a submission's preferred branch is saturated. *)
let service_pressure t service =
  let id = sid t service in
  List.fold_left
    (fun n ps ->
      if live ps && (Bitset.mem ps.occ_conf id || inflight_conflict t ps service) then
        n + 1
      else n)
    0 t.plist

let placed_act ps =
  match ps.phase with
  | Blocked_2pc { act; _ } | Deciding_2pc { act; _ } -> Some act
  | Running | Recovering | Awaiting_commit | Done -> None

let inflight_sid ps = Option.map (Hashtbl.find ps.svc_ids) ps.inflight
let prepared_sid ps = Option.map (Hashtbl.find ps.svc_ids) (placed_act ps)

let enforcing t = t.enforce <> None

(* busy test against the candidate's conflict row: one bit probe per
   in-flight / prepared activity, one intersection for the pending set *)
let busy_conflicts_bits t ps ~row =
  (* under the weak order (Section 3.6) a conflicting in-flight invocation
     does not block: the subsystem orders the commits instead.  With the
     enforcement layer on, a *prepared* (2PC-pending) activity does not
     block either — the dependent's local commit is held behind the
     prepared token's decision by the enforcer. *)
  ((not t.cfg.weak_order)
  && match inflight_sid ps with Some k -> Bitset.mem row k | None -> false)
  || Bitset.inter_nonempty row ps.pending_bits
  || ((not (enforcing t))
     && match prepared_sid ps with Some k -> Bitset.mem row k | None -> false)

(* Exact conflict-pair footprint of a service for the enforcement-layer
   Local histories: one shared item per conflicting service pair (the
   name "s|s'" with the sides sorted), written by both sides — so two
   local transactions conflict at their subsystem iff their services
   conflict in the global specification. *)
let enf_ops t service =
  let row = Conflict.Compiled.row t.cspec (sid t service) in
  List.rev_map
    (fun j ->
      let s' = Conflict.Compiled.name t.cspec j in
      let item = if service <= s' then service ^ "|" ^ s' else s' ^ "|" ^ service in
      (item, `Write))
    (Bitset.elements row)

(* the pending-completion services mirror [pending_completion]; every
   assignment site goes through here *)
let set_pending t ps insts =
  bump_pid t (Process.pid ps.proc);
  ps.pending_completion <- insts;
  Bitset.clear ps.pending_bits;
  List.iter (fun inst -> Bitset.set ps.pending_bits (sid t (instance_service inst))) insts

(* the services this process may still execute (and their conflict
   closure), recomputed only when the determining state changed: the
   in-flight / prepared activity is already accounted for as an
   occurrence-to-be, it is not part of the open future *)
let future_of t ps =
  let placed = placed_act ps in
  match ps.future_cache with
  | Some c when c.f_exec == ps.exec && c.f_inflight = ps.inflight && c.f_placed = placed
    ->
      c
  | Some _ | None ->
      let bits = Bitset.create () and conf = Bitset.create () in
      let executed = Execution.executed ps.exec in
      List.iter
        (fun n ->
          if
            (not (List.mem n executed))
            && ps.inflight <> Some n
            && placed <> Some n
          then begin
            let k = Hashtbl.find ps.svc_ids n in
            Bitset.set bits k;
            Bitset.union ~into:conf (Conflict.Compiled.row t.cspec k)
          end)
        (Process.activity_ids ps.proc);
      let c =
        { f_exec = ps.exec; f_inflight = ps.inflight; f_placed = placed; f_bits = bits; f_conf = conf }
      in
      ps.future_cache <- Some c;
      c

(* services of C(P), tagged by direction; cached until the engine state
   changes *)
let potential_completion ps =
  match ps.completion_cache with
  | Some l -> l
  | None ->
      let l =
        match Execution.status ps.exec with
        | Execution.Finished _ -> []
        | Execution.Running ->
            List.map
              (fun inst -> (Activity.is_inverse inst, instance_service inst))
              (Execution.completion ps.exec)
      in
      ps.completion_cache <- Some l;
      l

(* Quasi-commit condition (figure 9): every uncommitted predecessor is
   forward-recoverable and its possible completion does not conflict with
   anything this process may still execute.  The candidate's closure is
   unioned into the future closure; each predecessor then costs one bit
   probe per completion service. *)
let quasi_ok_bits t preds ~row ps =
  let my_conf = t.scratch in
  Bitset.assign ~into:my_conf (future_of t ps).f_conf;
  Bitset.union ~into:my_conf row;
  List.for_all
    (fun i ->
      match Hashtbl.find_opt t.procs i with
      | None -> false
      | Some qs ->
          Execution.recovery_state qs.exec = Execution.F_rec
          && (not
                (List.exists (fun (_, s) -> Bitset.mem my_conf (sid t s)) (potential_completion qs)))
          && not (Bitset.inter_nonempty my_conf qs.pending_bits))
    preds

(* ------------------------------------------------------------------ *)
(* Latent base — incremental maintenance *)

let latent_sources t =
  List.filter (fun q -> live q || q.term = Schedule.Committed) (pstates t)

(* a source's conflict closure: occurrences ∪ in-flight row ∪ prepared
   row, written over [into] (surplus bits zeroed by [Bitset.assign]) *)
let latent_qconf_into t q ~into =
  Bitset.assign ~into q.occ_conf;
  (match inflight_sid q with
  | Some k -> Bitset.union ~into (Conflict.Compiled.row t.cspec k)
  | None -> ());
  match prepared_sid q with
  | Some k -> Bitset.union ~into (Conflict.Compiled.row t.cspec k)
  | None -> ()

(* the latent-edge predicate: does [qconf] meet target [r]'s open future
   or pending completions? *)
let latent_hits t qconf r =
  Bitset.inter_nonempty qconf (future_of t r).f_bits
  || Bitset.inter_nonempty qconf r.pending_bits

(* profiling hook: the same opt-in monotonic clock the admission path
   uses; without it the breakdown costs nothing but the counters *)
let latent_timed t key f =
  match t.cfg.admission_clock with
  | None -> f ()
  | Some clock ->
      let t0 = clock () in
      let r = f () in
      Metrics.observe t.metrics key (clock () -. t0);
      r

(* full rebuild: O(sources × targets) bitset probes; only after
   structural invalidation ([lt_full]) or when the dirty set covers most
   of the world anyway *)
let latent_rebuild t lt =
  Metrics.incr t.metrics "latent_rebuilds";
  Hashtbl.reset lt.lt_qconf;
  Hashtbl.reset lt.lt_out;
  lt.lt_edges <- None;
  lt.lt_ends <- None;
  let targets = List.filter live (pstates t) in
  List.iter
    (fun q ->
      let qid = Process.pid q.proc in
      let qconf = Bitset.create () in
      latent_qconf_into t q ~into:qconf;
      Hashtbl.replace lt.lt_qconf qid qconf;
      let out = Hashtbl.create 8 in
      List.iter
        (fun r ->
          let rid = Process.pid r.proc in
          if rid <> qid && latent_hits t qconf r then Hashtbl.replace out rid ())
        targets;
      Hashtbl.replace lt.lt_out qid out)
    (latent_sources t);
  lt.lt_order <- Order_stale;
  Hashtbl.reset lt.lt_dirty;
  lt.lt_full <- false

(* Patch the base for the dirty pids only.  Pass 1 re-derives each dirty
   pid's source side (closure + out-edges against all live targets, or
   removal if no longer a source); pass 2 reconciles each dirty pid's
   target side against every source's closure.  Edges with no dirty
   endpoint are untouched: their predicate inputs did not change (that is
   the invalidation contract of [bump_pid]).  The order state machine
   absorbs the diff: removals keep a valid order valid, additions keep it
   if they run forward. *)
let latent_patch t lt =
  Metrics.incr t.metrics "latent_patches";
  Metrics.observe t.metrics "latent_dirty" (float_of_int (Hashtbl.length lt.lt_dirty));
  let lives = List.filter live (pstates t) in
  let removed = ref false in
  let added = ref [] in
  Hashtbl.iter
    (fun p () ->
      match Hashtbl.find_opt t.procs p with
      | None -> ()
      | Some ps ->
          if live ps || ps.term = Schedule.Committed then begin
            let qconf =
              match Hashtbl.find_opt lt.lt_qconf p with
              | Some b -> b
              | None ->
                  let b = Bitset.create () in
                  Hashtbl.replace lt.lt_qconf p b;
                  b
            in
            latent_qconf_into t ps ~into:qconf;
            let old =
              match Hashtbl.find_opt lt.lt_out p with
              | Some h -> h
              | None -> Hashtbl.create 1
            in
            let fresh = Hashtbl.create (max 4 (Hashtbl.length old)) in
            List.iter
              (fun r ->
                let rid = Process.pid r.proc in
                if rid <> p && latent_hits t qconf r then begin
                  Hashtbl.replace fresh rid ();
                  if not (Hashtbl.mem old rid) then added := (p, rid) :: !added
                end)
              lives;
            if not !removed then
              Hashtbl.iter
                (fun rid () -> if not (Hashtbl.mem fresh rid) then removed := true)
                old;
            Hashtbl.replace lt.lt_out p fresh
          end
          else begin
            (match Hashtbl.find_opt lt.lt_out p with
            | Some h -> if Hashtbl.length h > 0 then removed := true
            | None -> ());
            Hashtbl.remove lt.lt_out p;
            Hashtbl.remove lt.lt_qconf p
          end)
    lt.lt_dirty;
  Hashtbl.iter
    (fun p () ->
      match Hashtbl.find_opt t.procs p with
      | None -> ()
      | Some ps ->
          let is_target = live ps in
          Hashtbl.iter
            (fun qid qconf ->
              if qid <> p then begin
                let out = Hashtbl.find lt.lt_out qid in
                if is_target && latent_hits t qconf ps then begin
                  if not (Hashtbl.mem out p) then begin
                    Hashtbl.replace out p ();
                    added := (qid, p) :: !added
                  end
                end
                else if Hashtbl.mem out p then begin
                  Hashtbl.remove out p;
                  removed := true
                end
              end)
            lt.lt_qconf)
    lt.lt_dirty;
  Hashtbl.reset lt.lt_dirty;
  if !removed || !added <> [] then begin
    lt.lt_edges <- None;
    lt.lt_ends <- None
  end;
  match lt.lt_order with
  | Order_stale -> ()
  | Order_cyclic -> if !removed then lt.lt_order <- Order_stale
  | Order_valid pos ->
      let forward (i, j) =
        match (Hashtbl.find_opt pos i, Hashtbl.find_opt pos j) with
        | Some pi, Some pj -> pi < pj
        | _ -> false
      in
      if not (List.for_all forward !added) then lt.lt_order <- Order_stale

(* bring the base up to date; O(1) when nothing changed since the last
   admission (the common case inside a burst) *)
let latent_base t =
  let lt = t.latent in
  let dirty = Hashtbl.length lt.lt_dirty in
  if (not lt.lt_full) && dirty > 0 && 2 * dirty > List.length t.plist then
    lt.lt_full <- true;
  if lt.lt_full then latent_timed t "latent_rebuild_s" (fun () -> latent_rebuild t lt)
  else if dirty > 0 then latent_timed t "latent_patch_s" (fun () -> latent_patch t lt);
  lt

(* flat edge list of the base (memoized): only materialized for Delay
   blocker reporting, never on the admit fast path *)
let latent_edges lt =
  match lt.lt_edges with
  | Some l -> l
  | None ->
      let l =
        Hashtbl.fold
          (fun q out acc -> Hashtbl.fold (fun r () acc -> (q, r) :: acc) out acc)
          lt.lt_out []
      in
      lt.lt_edges <- Some l;
      l

(* sorted endpoint set of the base edges (memoized): the Delay path
   reports the endpoints of [new_edges @ latent] as blockers, and the
   base contribution to that set only changes when the base does —
   flattening and sorting the full edge list per delayed admission was
   the dominant cost of the whole admission path at scale *)
let latent_endpoints lt =
  match lt.lt_ends with
  | Some e -> e
  | None ->
      let h = Hashtbl.create 64 in
      Hashtbl.iter
        (fun q out ->
          if Hashtbl.length out > 0 then begin
            Hashtbl.replace h q ();
            Hashtbl.iter (fun r () -> Hashtbl.replace h r ()) out
          end)
        lt.lt_out;
      let e = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) h []) in
      lt.lt_ends <- Some e;
      e

(* combined-graph adjacency, walked live: stored dependency edges
   (parked ones included — a parked edge is a cycle, exactly
   [Deps.would_cycle]'s verdict) ∪ base latent edges *)
let latent_succ_iter t lt n f =
  Deps.iter_succs t.deps n f;
  match Hashtbl.find_opt lt.lt_out n with
  | Some h -> Hashtbl.iter (fun r () -> f r) h
  | None -> ()

(* resolve [Order_stale]: one DFS over deps ∪ base from every source.
   Every non-aborted process is a source, so every node ends up with a
   position — newly registered pids are appended at [lt_next_pos]. *)
let latent_resolve_order t lt =
  match lt.lt_order with
  | Order_valid pos -> Some pos
  | Order_cyclic -> None
  | Order_stale ->
      latent_timed t "latent_order_s" (fun () ->
          Metrics.incr t.metrics "latent_order_rebuilds";
          let color = Hashtbl.create 64 in
          let rev = ref [] in
          let cyclic = ref false in
          let rec visit n =
            match Hashtbl.find_opt color n with
            | Some `Gray -> cyclic := true
            | Some `Black -> ()
            | None ->
                Hashtbl.replace color n `Gray;
                latent_succ_iter t lt n visit;
                Hashtbl.replace color n `Black;
                rev := n :: !rev
          in
          List.iter (fun q -> visit (Process.pid q.proc)) (latent_sources t);
          if !cyclic then begin
            lt.lt_order <- Order_cyclic;
            None
          end
          else begin
            let pos = Hashtbl.create 64 in
            let i = ref 0 in
            List.iter
              (fun n ->
                Hashtbl.replace pos n !i;
                incr i)
              !rev;
            lt.lt_next_pos <- !i;
            lt.lt_order <- Order_valid pos;
            Some pos
          end)

(* Is deps ∪ base ∪ extras cyclic?  Every extra edge is incident to the
   candidate [pid], so when the combined graph is acyclic a new cycle
   must pass through [pid]: all-forward extras in the maintained order is
   an O(extras) "no", otherwise one DFS from [pid]'s successors decides. *)
let latent_would_cycle t lt ~pid extras =
  match latent_resolve_order t lt with
  | None -> true
  | Some pos ->
      let posv n = Option.value ~default:max_int (Hashtbl.find_opt pos n) in
      if List.for_all (fun (i, j) -> posv i < posv j) extras then begin
        Metrics.incr t.metrics "latent_probe_fast";
        false
      end
      else begin
        Metrics.incr t.metrics "latent_probe_dfs";
        let into = Hashtbl.create 8 in
        List.iter (fun (i, j) -> if j = pid && i <> pid then Hashtbl.replace into i ()) extras;
        let seen = Hashtbl.create 32 in
        let exception Found in
        let rec go n =
          if n = pid then raise Found;
          if not (Hashtbl.mem seen n) then begin
            Hashtbl.replace seen n ();
            if Hashtbl.mem into n then raise Found;
            latent_succ_iter t lt n go
          end
        in
        let r =
          try
            List.iter (fun (i, j) -> if i = pid then go j) extras;
            latent_succ_iter t lt pid go;
            false
          with Found -> true
        in
        Metrics.observe t.metrics "latent_dfs_nodes" (float_of_int (Hashtbl.length seen));
        r
      end

type admission =
  | Admit_invoke
  | Admit_prepare
  | Delay of int list  (* the processes we wait for *)

(* the candidate occurrence appended to the history must leave the prefix
   reducible (its completed schedule serializable after cancellation);
   O(1) to build thanks to the incremental [hist] *)
let exact_ok t (a : Activity.t) =
  Criteria.red (Schedule.append t.hist (Schedule.Act (Activity.Forward a)))

(* Admission is split into pure decision functions returning the decision
   plus the dependency edges to record, applied by [admission] below only
   when the activity is admitted — so the incremental engine and the
   reference oracle can be run side by side on identical state.  The
   incremental engine additionally returns the {!Obs.reason} code of its
   decision (the explain payload); the reference oracle is kept verbatim
   and the [Checked] engine compares decisions and edges only. *)

let admission_decision t pid act =
  let ps = Hashtbl.find t.procs pid in
  let a = Process.find ps.proc act in
  let sidc = Hashtbl.find ps.svc_ids act in
  let group = Compose.group_of ps.groups act in
  let member_admitted =
    match group with
    | Some g -> Hashtbl.mem ps.admitted_groups g.Compose.gname
    | None -> false
  in
  (* The admission footprint: the activity's own conflict row — or, for
     the first member of a not-yet-admitted subprocess group, the union
     of every member's row (Section 3.6: the subprocess admits as ONE
     activity at the parent level).  Members of an already-admitted group
     skip the busy / cycle checks entirely: the group's footprint was
     claimed atomically at admission, so its serialization position is
     fixed and the inner engine schedules the children freely. *)
  let gsids =
    match group with
    | Some g when not member_admitted ->
        List.map (fun s -> sid t s) (Compose.services ps.proc g)
    | Some _ | None -> [ sidc ]
  in
  let crow =
    match gsids with
    | [ k ] -> Conflict.Compiled.row t.cspec k
    | ks ->
        let b = Bitset.create () in
        List.iter (fun k -> Bitset.union ~into:b (Conflict.Compiled.row t.cspec k)) ks;
        b
  in
  let others = List.filter (fun q -> Process.pid q.proc <> pid) (pstates t) in
  let busy_blockers =
    if member_admitted then []
    else
      List.filter_map
        (fun q ->
          if live q && busy_conflicts_bits t q ~row:crow then Some (Process.pid q.proc)
          else None)
        others
  in
  if busy_blockers <> [] then (Delay busy_blockers, [], Obs.Busy)
  else begin
    let new_edges =
      if member_admitted then []
      else
        List.filter_map
          (fun q ->
            let qid = Process.pid q.proc in
            (* committed processes still constrain the serialization order;
               aborted ones left no effects *)
            if
              ((live q || q.term = Schedule.Committed)
              && Bitset.inter_nonempty crow q.occ_bits)
              || (t.cfg.weak_order && live q
                 && match inflight_sid q with Some k -> Bitset.mem crow k | None -> false)
              || (enforcing t && live q
                 && match prepared_sid q with Some k -> Bitset.mem crow k | None -> false)
            then Some (qid, pid)
            else None)
          others
    in
    let admit_reason () = if new_edges = [] then Obs.Clear else Obs.Ordered in
    (* Latent edges (Section 3.5): an occurrence of [q] conflicting with a
       service [r] may still execute (remaining activities of any branch,
       which include the forward completion activities) will order [q]
       before [r] in the completed schedule.  Admission must keep the
       graph acyclic including these inevitable-future edges — no
       SOT-like criterion exists, the completed schedule must be
       considered.  The candidate-independent bulk comes from the cached
       [latent_base]; only the edges the candidate itself induces (its
       conflict row against other futures, its service against other
       closures) are computed here, O(n) bitset probes per admission. *)
    let would, all_latent =
      if member_admitted then (false, lazy [])
      else if t.cfg.naive_sr then (Deps.would_cycle t.deps new_edges, lazy [])
      else begin
        let c = latent_base t in
        (* the candidate's row widens its process's closure: extra edges
           pid -> r wherever crow meets r's future or pending services *)
        let extra_out =
          List.filter_map
            (fun r ->
              let rid = Process.pid r.proc in
              if rid = pid || not (live r) then None
              else if
                Bitset.inter_nonempty crow (future_of t r).f_bits
                || Bitset.inter_nonempty crow r.pending_bits
              then Some (pid, rid)
              else None)
            (pstates t)
        in
        (* the candidate's service joins its process's future: extra edges
           q -> pid wherever q's closure contains it *)
        let extra_in =
          Hashtbl.fold
            (fun qid qconf acc ->
              if qid <> pid && List.exists (fun k -> Bitset.mem qconf k) gsids then
                (qid, pid) :: acc
              else acc)
            c.lt_qconf []
        in
        ( latent_would_cycle t c ~pid (new_edges @ extra_out @ extra_in),
          (* endpoint set only, materialized for blocker reporting on the
             Delay path; the base contribution is memoized *)
          lazy
            (latent_endpoints c
            @ List.concat_map (fun (i, j) -> [ i; j ]) (extra_out @ extra_in)) )
      end
    in
    if would then begin
      (* wait for the live processes involved in the would-be cycle *)
      let blockers =
        List.concat_map (fun (i, j) -> [ i; j ]) new_edges @ Lazy.force all_latent
        |> List.filter (fun q -> q <> pid)
        |> List.sort_uniq compare
      in
      (Delay blockers, [], Obs.Would_cycle)
    end
    else if t.cfg.naive_sr then
      (* serializability-only: admit immediately, never gate on recovery *)
      (Admit_invoke, new_edges, admit_reason ())
    else if Activity.non_compensatable a && not t.cfg.debug_no_lemma1 then begin
      let preds =
        List.sort_uniq compare
          (Deps.uncommitted_preds t.deps pid @ List.map fst new_edges)
      in
      if t.cfg.exact_admission && not (exact_ok t a) then
        (Delay (List.sort_uniq compare (List.map fst new_edges)), [], Obs.Exact_reject)
      else if preds = [] then (Admit_invoke, new_edges, admit_reason ())
      else
        match t.cfg.mode with
        | Conservative -> (Delay preds, [], Obs.Conservative_wait)
        | Deferred -> (Admit_prepare, new_edges, Obs.Deferred_prepare)
        | Quasi ->
            if quasi_ok_bits t preds ~row:crow ps then
              (Admit_invoke, new_edges, Obs.Quasi_commit)
            else (Admit_prepare, new_edges, Obs.Deferred_prepare)
    end
    else if t.cfg.exact_admission && not (exact_ok t a) then
      (Delay (List.sort_uniq compare (List.map fst new_edges)), [], Obs.Exact_reject)
    else (Admit_invoke, new_edges, admit_reason ())
  end

(* The pre-incremental admission path, kept verbatim (string-keyed
   conflict tests over the raw spec, per-pair future recomputation,
   full-graph cycle detection) as the differential-testing oracle and the
   "old" arm of bench P11.  Pure like [admission_decision]. *)
module Reference = struct
  let services_conflict t s s' = Conflict.services_conflict t.spec s s'

  let occurrence_conflicts t ps service =
    List.exists (fun inst -> services_conflict t service (instance_service inst)) ps.occurrences
    || List.exists (fun cs -> services_conflict t service cs) ps.claimed_services

  let inflight_conflict t ps service =
    match ps.inflight with
    | None -> false
    | Some act -> services_conflict t service (Process.find ps.proc act).Activity.service

  let prepared_conflict t ps service =
    match ps.phase with
    | Blocked_2pc { act; _ } | Deciding_2pc { act; _ } ->
        services_conflict t service (Process.find ps.proc act).Activity.service
    | Running | Recovering | Awaiting_commit | Done -> false

  let busy_conflicts t ps service =
    let inflight_conflict = (not t.cfg.weak_order) && inflight_conflict t ps service in
    let pending_conflict =
      List.exists
        (fun inst -> services_conflict t service (instance_service inst))
        ps.pending_completion
    in
    inflight_conflict || pending_conflict
    || ((not (enforcing t)) && prepared_conflict t ps service)

  let remaining_services ps =
    let executed = Execution.executed ps.exec in
    let placed n =
      ps.inflight = Some n
      ||
      match ps.phase with
      | Blocked_2pc { act; _ } | Deciding_2pc { act; _ } -> act = n
      | _ -> false
    in
    Process.activity_ids ps.proc
    |> List.filter (fun n -> (not (List.mem n executed)) && not (placed n))
    |> List.map (fun n -> (Process.find ps.proc n).Activity.service)

  let completion_services ps =
    List.map snd (potential_completion ps) @ List.map instance_service ps.pending_completion

  let quasi_ok t preds pid service =
    let my_future =
      match Hashtbl.find_opt t.procs pid with
      | None -> [ service ]
      | Some ps -> service :: remaining_services ps
    in
    List.for_all
      (fun i ->
        match Hashtbl.find_opt t.procs i with
        | None -> false
        | Some qs ->
            Execution.recovery_state qs.exec = Execution.F_rec
            && not
                 (List.exists
                    (fun cs -> List.exists (fun ms -> services_conflict t cs ms) my_future)
                    (completion_services qs)))
      preds

  let exact_ok t (a : Activity.t) =
    let hypothetical =
      Schedule.make ~spec:t.spec
        ~procs:(List.map (fun ps -> ps.proc) (pstates t))
        (List.rev (Schedule.Act (Activity.Forward a) :: t.rev_events))
    in
    Criteria.red hypothetical

  let admission_decision t pid act =
    let ps = Hashtbl.find t.procs pid in
    let a = Process.find ps.proc act in
    let service = a.Activity.service in
    let group = Compose.group_of ps.groups act in
    let member_admitted =
      match group with
      | Some g -> Hashtbl.mem ps.admitted_groups g.Compose.gname
      | None -> false
    in
    (* string-level mirror of the incremental engine's group handling:
       an un-admitted group's candidate footprint is every member service *)
    let gservices =
      match group with
      | Some g when not member_admitted -> Compose.services ps.proc g
      | Some _ | None -> [ service ]
    in
    let others = List.filter (fun q -> Process.pid q.proc <> pid) (pstates t) in
    let busy_blockers =
      if member_admitted then []
      else
        List.filter_map
          (fun q ->
            if live q && List.exists (fun s -> busy_conflicts t q s) gservices then
              Some (Process.pid q.proc)
            else None)
          others
    in
    if busy_blockers <> [] then (Delay busy_blockers, [])
    else begin
      let new_edges =
        if member_admitted then []
        else
          List.filter_map
            (fun q ->
              let qid = Process.pid q.proc in
              if
                List.exists
                  (fun s ->
                    ((live q || q.term = Schedule.Committed)
                    && occurrence_conflicts t q s)
                    || (t.cfg.weak_order && live q && inflight_conflict t q s)
                    || (enforcing t && live q && prepared_conflict t q s))
                  gservices
              then Some (qid, pid)
              else None)
            others
      in
      let latent_edges =
        if member_admitted || t.cfg.naive_sr then []
        else begin
          let lives = List.filter live (pstates t) in
          List.concat_map
            (fun q ->
              let qid = Process.pid q.proc in
              let q_occurrences =
                let base =
                  List.map instance_service q.occurrences @ q.claimed_services
                in
                let base =
                  match q.inflight with
                  | Some act -> (Process.find q.proc act).Activity.service :: base
                  | None -> base
                in
                let base =
                  match q.phase with
                  | Blocked_2pc { act; _ } | Deciding_2pc { act; _ } ->
                      (Process.find q.proc act).Activity.service :: base
                  | Running | Recovering | Awaiting_commit | Done -> base
                in
                if qid = pid then gservices @ base else base
              in
              List.filter_map
                (fun r ->
                  let rid = Process.pid r.proc in
                  if rid = qid then None
                  else
                    let future =
                      remaining_services r
                      @ List.map instance_service r.pending_completion
                    in
                    let future = if rid = pid then gservices @ future else future in
                    if
                      List.exists
                        (fun x -> List.exists (fun f -> services_conflict t x f) future)
                        q_occurrences
                    then Some (qid, rid)
                    else None)
                lives)
            (List.filter (fun q -> live q || q.term = Schedule.Committed) (pstates t))
        end
      in
      if Deps.would_cycle_reference t.deps (new_edges @ latent_edges) then begin
        let blockers =
          List.concat_map (fun (i, j) -> [ i; j ]) (new_edges @ latent_edges)
          |> List.filter (fun q -> q <> pid)
          |> List.sort_uniq compare
        in
        (Delay blockers, [])
      end
      else if t.cfg.naive_sr then (Admit_invoke, new_edges)
      else if Activity.non_compensatable a && not t.cfg.debug_no_lemma1 then begin
        let preds =
          List.sort_uniq compare
            (Deps.uncommitted_preds t.deps pid @ List.map fst new_edges)
        in
        if t.cfg.exact_admission && not (exact_ok t a) then
          (Delay (List.sort_uniq compare (List.map fst new_edges)), [])
        else if preds = [] then (Admit_invoke, new_edges)
        else
          match t.cfg.mode with
          | Conservative -> (Delay preds, [])
          | Deferred -> (Admit_prepare, new_edges)
          | Quasi ->
              ( (if quasi_ok t preds pid service then Admit_invoke else Admit_prepare),
                new_edges )
      end
      else if t.cfg.exact_admission && not (exact_ok t a) then
        (Delay (List.sort_uniq compare (List.map fst new_edges)), [])
      else (Admit_invoke, new_edges)
    end
end

let admission_to_string = function
  | Admit_invoke -> "invoke"
  | Admit_prepare -> "prepare"
  | Delay l -> Printf.sprintf "delay[%s]" (String.concat "," (List.map string_of_int l))

let same_admission a b =
  match (a, b) with
  | Admit_invoke, Admit_invoke | Admit_prepare, Admit_prepare -> true
  | Delay xs, Delay ys -> xs = ys
  | (Admit_invoke | Admit_prepare | Delay _), _ -> false

(* benchmarking hook: compute and discard the pure decision with a chosen
   engine — no state is mutated, no edges applied (bench P11 probes both
   engines on identical mid-run states) *)
let probe_admission t engine ~pid ~act =
  match engine with
  | Incremental | Checked -> ignore (admission_decision t pid act)
  | Reference -> ignore (Reference.admission_decision t pid act)

(* A subprocess group is admitted the moment its first member is: the
   whole union footprint is claimed atomically (occurrence bits AND the
   reference engine's string mirror), so every conflicting outside
   activity is ordered entirely before or entirely after the subprocess
   — it admits as one unit, the inner engine schedules the children. *)
let claim_group_footprint t ps g =
  Hashtbl.replace ps.admitted_groups g.Compose.gname ();
  let svcs = Compose.services ps.proc g in
  List.iter
    (fun s ->
      let k = sid t s in
      Bitset.set ps.occ_bits k;
      Bitset.union ~into:ps.occ_conf (Conflict.Compiled.row t.cspec k))
    svcs;
  ps.claimed_services <- svcs @ ps.claimed_services;
  bump_pid t (Process.pid ps.proc)

let admission t pid act =
  let t0 = match t.cfg.admission_clock with Some f -> f () | None -> 0.0 in
  let decision, edges, reason =
    match t.cfg.admission_engine with
    | Incremental -> admission_decision t pid act
    | Reference ->
        (* the oracle computes no reason code; classify its decision *)
        let d, e = Reference.admission_decision t pid act in
        ( d,
          e,
          match d with
          | Admit_invoke -> if e = [] then Obs.Clear else Obs.Ordered
          | Admit_prepare -> Obs.Deferred_prepare
          | Delay _ -> Obs.Busy )
    | Checked ->
        let d_inc, e_inc, r_inc = admission_decision t pid act in
        let d_ref, e_ref = Reference.admission_decision t pid act in
        if not (same_admission d_inc d_ref && e_inc = e_ref) then
          failwith
            (Printf.sprintf
               "Scheduler.admission: engine mismatch on P%d a%d: incremental %s \
                edges=[%s] vs reference %s edges=[%s]"
               pid act (admission_to_string d_inc)
               (String.concat ";"
                  (List.map (fun (i, j) -> Printf.sprintf "%d->%d" i j) e_inc))
               (admission_to_string d_ref)
               (String.concat ";"
                  (List.map (fun (i, j) -> Printf.sprintf "%d->%d" i j) e_ref)));
        (d_inc, e_inc, r_inc)
  in
  (match t.cfg.admission_clock with
  | Some f -> Metrics.observe t.metrics "admission_time" (f () -. t0)
  | None -> ());
  Metrics.incr t.metrics "admissions";
  (* the explain payload: decision, blocking edges and reason code of this
     admission, straight from the pure decision function *)
  if Obs.Tracer.active t.obs then begin
    let ps = Hashtbl.find t.procs pid in
    Obs.Tracer.emit t.obs
      (Obs.Admission
         {
           pid;
           act;
           service = (Process.find ps.proc act).Activity.service;
           decision =
             (match decision with
             | Admit_invoke -> Obs.Invoke
             | Admit_prepare -> Obs.Prepare
             | Delay blockers -> Obs.Delay blockers);
           reason;
           edges;
         })
  end;
  (match decision with
  | Admit_invoke | Admit_prepare -> (
      let ps = Hashtbl.find t.procs pid in
      match Compose.group_of ps.groups act with
      | Some g when not (Hashtbl.mem ps.admitted_groups g.Compose.gname) ->
          Metrics.incr t.metrics "subprocess_admissions";
          tracef t "subprocess %s of P%d admitted as one unit" g.Compose.gname pid;
          claim_group_footprint t ps g
      | Some _ | None -> ())
  | Delay _ -> ());
  List.iter (fun (i, j) -> add_dep_edge t i j) edges;
  decision

(* ------------------------------------------------------------------ *)
(* Forward progress *)

let rec wake t =
  if not !(t.crashed) then begin
    let changed = ref false in
    let waiting : (int, int list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun ps ->
        (* the crash trigger may fire mid-iteration: once crashed, no
           further subsystem mutation or dispatch is allowed *)
        if !(t.crashed) then ()
        else
        let pid = Process.pid ps.proc in
        match ps.phase with
        | Done | Recovering -> ()
        | Deciding_2pc _ -> ()  (* the coordinator instance drives it *)
        | Blocked_2pc { act; token } ->
            let preds = Deps.uncommitted_preds t.deps pid in
            if preds <> [] then Hashtbl.replace waiting pid preds
            else begin
              (* every conflicting predecessor committed: hand the prepared
                 activity to the crash-tolerant coordinator.  The commit is
                 applied (and the history event emitted) in [on_twopc_done]
                 once the decision round-trips the message bus. *)
              let a = Process.find ps.proc act in
              tracef t "2pc-start P%d a%d" pid act;
              (* enter the deciding phase before starting the instance:
                 under synchronous (fault-free) delivery [on_done] fires
                 inside [start], and it must find the phase in place.  The
                 instance id is patched in afterwards if still deciding. *)
              bump_pid t pid;
              ps.phase <- Deciding_2pc { act; token; cid = 0 };
              let cid =
                Coordinator.start t.coord ~pid ~act
                  ~participants:[ (rm_of t a, token) ]
                  ~on_done:(fun ~commit -> on_twopc_done t pid act ~commit)
              in
              (match ps.phase with
              | Deciding_2pc { act = act'; token = token'; cid = 0 } when act' = act ->
                  ps.phase <- Deciding_2pc { act = act'; token = token'; cid }
              | _ -> ());
              changed := true
            end
        | Awaiting_commit ->
            if try_commit t ps then changed := true
            else Hashtbl.replace waiting pid (Deps.uncommitted_preds t.deps pid)
        | Running ->
            if ps.inflight = None then begin
              if Execution.can_commit ps.exec then begin
                if try_commit t ps then changed := true
              end
              else begin
                let enabled = Execution.enabled ps.exec in
                let blockers = ref [] in
                let admitted =
                  List.find_map
                    (fun act ->
                      match admission t pid act with
                      | Admit_invoke -> Some (act, `Invoke)
                      | Admit_prepare -> Some (act, `Prepare)
                      | Delay bs ->
                          blockers := bs @ !blockers;
                          None)
                    enabled
                in
                match admitted with
                | Some (act, how) ->
                    (* no trace line here: the [Admission] event already
                       carries the decision plus its explain payload *)
                    dispatch t ps act how;
                    changed := true
                | None ->
                    if enabled <> [] then begin
                      Metrics.incr t.metrics "admission_delays";
                      Hashtbl.replace waiting pid (List.sort_uniq compare !blockers)
                    end
              end
            end)
      (pstates t);
    if !changed then wake t else if not !(t.crashed) then detect_stall t waiting
  end

(* Decision callback of a coordinator instance: fires once every
   participant acknowledged.  On commit the activity's effects are already
   durable in its subsystem (the participant applied them before acking);
   on abort the token was rolled back everywhere and the activity counts
   as a failed attempt. *)
and on_twopc_done t pid act ~commit =
  if !(t.crashed) then ()
  else
    match Hashtbl.find_opt t.procs pid with
    | None -> ()
    | Some ps -> (
        match ps.phase with
        | Deciding_2pc { act = act'; _ } when act' = act ->
            let a = Process.find ps.proc act in
            if commit then begin
              tracef t "2pc-commit P%d a%d" pid act;
              emit t (Schedule.Act (Activity.Forward a));
              ps.exec <- Execution.exec ps.exec act;
              ps.completion_cache <- None;
              ps.phase <- Running;
              Metrics.incr t.metrics "twopc_commits";
              (match t.enforce with
              | Some e
                when Enforce.state e ~token:(activity_token ~pid ~act) = Some `Open ->
                  (* the 2PC commit decision is the prepared token's local
                     commit: release the dependents held behind it *)
                  Enforce.committed e ~token:(activity_token ~pid ~act)
              | Some _ | None -> ());
              wake t
            end
            else begin
              tracef t "2pc-abort P%d a%d" pid act;
              Metrics.incr t.metrics "twopc_aborts";
              bump_pid t pid;
              ps.phase <- Running;
              handle_failure t ps act
            end
        | Running | Blocked_2pc _ | Deciding_2pc _ | Recovering | Awaiting_commit
        | Done ->
            ()  (* stale decision for a process that moved on *))

(* A stall occurs when live processes remain but nothing is executing:
   every pending admission waits on a commit that can never happen (the
   serialization order already contradicts the required commit order).
   Resolution: abort the youngest stalled process; its completion restores
   progress (guaranteed termination). *)
and detect_stall t waiting =
  let ps_list = pstates t in
  let lives = List.filter live ps_list in
  let busy =
    t.rollback_running
    || List.exists (fun ps -> ps.inflight <> None) ps_list
    || List.exists (fun ps -> ps.aborting && ps.phase <> Done) ps_list
    (* a 2PC decision in flight counts as progress: its messages and
       retransmission timers are pending DES events *)
    || List.exists
         (fun ps -> match ps.phase with Deciding_2pc _ -> true | _ -> false)
         ps_list
  in
  if lives <> [] && not busy then begin
    (* build the wait-for graph and abort one cycle jointly, so that the
       Lemma 2/3 ordering of Completed.completion_order applies across the
       knot; waiters outside the cycle resume once it clears *)
    let edges =
      Hashtbl.fold
        (fun pid blockers acc -> List.map (fun b -> (pid, b)) blockers @ acc)
        waiting []
    in
    let g = Digraph.make ~nodes:[] ~edges in
    let victims =
      match Digraph.find_cycle g with
      | Some cycle ->
          List.filter_map (fun pid -> Hashtbl.find_opt t.procs pid) cycle
          |> List.filter live
      | None -> (
          (* no cycle: the knot is anchored on something that cannot move
             (e.g. a latent mutual conflict); abort the youngest waiter *)
          match
            List.filter (fun ps -> Hashtbl.mem waiting (Process.pid ps.proc)) lives
          with
          | [] -> lives
          | waiters ->
              [ List.fold_left
                  (fun best ps ->
                    if Process.pid ps.proc > Process.pid best.proc then ps else best)
                  (List.hd waiters) waiters ])
    in
    if victims <> [] then begin
      Metrics.incr t.metrics "stall_aborts" ~by:(List.length victims);
      tracef t "stall-abort group [%s]"
        (String.concat ","
           (List.map (fun ps -> string_of_int (Process.pid ps.proc)) victims));
      abort_group t victims
    end
  end

and try_commit t ps =
  let pid = Process.pid ps.proc in
  if Deps.uncommitted_preds t.deps pid = [] then begin
    log t (Wal.Commit_requested pid);
    if not (Execution.can_commit ps.exec) then
      invalid_arg (Printf.sprintf "Scheduler: commit of incomplete process %d" pid);
    ps.exec <- Execution.commit ps.exec;
    tracef t "commit P%d" pid;
    emit t (Schedule.Commit pid);
    log t (Wal.Process_committed pid);
    Deps.mark_committed t.deps pid;
    ps.phase <- Done;
    ps.term <- Schedule.Committed;
    ps.done_at <- Some (now t);
    Metrics.incr t.metrics "committed";
    Metrics.observe t.metrics "latency" (now t -. ps.arrived);
    true
  end
  else begin
    ps.phase <- Awaiting_commit;
    false
  end

and dispatch t ps act how =
  let pid = Process.pid ps.proc in
  let a = Process.find ps.proc act in
  (match t.enforce with
  | Some e ->
      (* Section 3.6 enforcement: register the prescribed weak-order
         obligations against every conflicting in-flight or prepared
         activity of another live process — their local commits must
         precede ours.  Obligations are keyed by token and survive
         re-invocations on both sides. *)
      let token = activity_token ~pid ~act in
      Hashtbl.replace t.enf_how token how;
      List.iter
        (fun q ->
          if Process.pid q.proc <> pid && live q then begin
            let qid = Process.pid q.proc in
            let obligation qact =
              if
                services_conflict t a.Activity.service
                  (Process.find q.proc qact).Activity.service
              then Enforce.order e ~pred:(activity_token ~pid:qid ~act:qact) ~dep:token
            in
            (match q.inflight with Some qact -> obligation qact | None -> ());
            match placed_act q with Some qact -> obligation qact | None -> ()
          end)
        (pstates t)
  | None ->
      if t.cfg.weak_order then
        ps.weak_wait <-
          List.find_map
            (fun q ->
              if
                Process.pid q.proc <> pid && live q
                && inflight_conflict t q a.Activity.service
              then
                match q.inflight with
                | Some qact ->
                    let qid = Process.pid q.proc in
                    let att =
                      Option.value ~default:0 (Hashtbl.find_opt t.attempts (qid, qact))
                    in
                    Some (qid, qact, att)
                | None -> None
              else None)
            (pstates t));
  Metrics.incr t.metrics "dispatched";
  if Obs.Tracer.active t.obs then
    Obs.Tracer.emit t.obs
      (Obs.Dispatch
         { pid; act; service = a.Activity.service; prepare_only = how = `Prepare });
  redispatch t ps act how ~a ~delay:0.0

(* (Re-)submit an invocation after [delay] of backoff wait.  When the
   (possibly latency-spiked) service duration exceeds the client-side
   timeout, the invocation is abandoned at the timeout instead and counted
   as a failed attempt. *)
and redispatch t ps act how ~a ~delay =
  let pid = Process.pid ps.proc in
  bump_pid t pid;
  ps.inflight <- Some act;
  (match t.enforce with
  | Some e -> (
      (* open (or re-open after a weak-order restart) the token's local
         transaction: its footprint enters the subsystem's live history.
         A transient retry of the same attempt chain keeps the open
         transaction — failed attempts happen inside it. *)
      let token = activity_token ~pid ~act in
      match Enforce.state e ~token with
      | None ->
          Enforce.begin_tx e ~subsystem:a.Activity.subsystem ~token
            ~ops:(enf_ops t a.Activity.service)
      | Some `Aborted -> Enforce.rebegin e ~token
      | Some (`Open | `Committed) -> ())
  | None -> ());
  let d = duration t a in
  match t.cfg.invocation_timeout with
  | Some timeout when d > timeout ->
      Des.after t.sim (delay +. timeout) (fun _ -> on_activity_timeout t pid act how)
  | Some _ | None ->
      Des.after t.sim (delay +. d) (fun _ -> on_activity_done t pid act how)

and on_activity_timeout t pid act how =
  if !(t.crashed) then ()
  else
    match Hashtbl.find_opt t.procs pid with
    | None -> ()
    | Some ps -> (
        if ps.inflight = Some act then begin
          bump_pid t pid;
          ps.inflight <- None
        end;
        match ps.phase with
        | Recovering | Done | Deciding_2pc _ ->
            Metrics.incr t.metrics "cancelled_inflight";
            enf_fail t (activity_token ~pid ~act)
        | Running | Awaiting_commit | Blocked_2pc _ ->
            let a = Process.find ps.proc act in
            let rm = rm_of t a in
            let attempt = next_attempt t pid act in
            tracef t "timeout P%d a%d" pid act;
            Metrics.incr t.metrics "timeouts";
            notify_subsys t rm ~ok:false;
            retry_or_degrade t ps act how ~rm ~a ~attempt)

(* A transient failure (injected failure or timeout): retriables always
   retry with backoff; non-retriables retry up to the transient-attempt
   bound, then degrade to the next alternative branch. *)
and retry_or_degrade t ps act how ~rm ~a ~attempt =
  let pid = Process.pid ps.proc in
  if Activity.retriable a || attempt < max_transient_attempts t rm then begin
    Metrics.incr t.metrics "retries";
    redispatch t ps act how ~a ~delay:(backoff_delay t ~pid ~act ~attempt)
  end
  else begin
    (* transient attempts exhausted: degrade to the next alternative branch *)
    if Obs.Tracer.active t.obs then
      Obs.Tracer.emit t.obs
        (Obs.Deflect { pid; act; service = a.Activity.service; outage = false });
    handle_failure t ps act
  end

and on_activity_done t pid act how =
  if !(t.crashed) then ()
  else
  match Hashtbl.find_opt t.procs pid with
  | None -> ()
  | Some ps -> (
      (match ps.weak_wait with
      | Some _ when ps.phase = Recovering || ps.phase = Done ->
          (* our process was aborted while weakly waiting *)
          ps.weak_wait <- None
      | Some (qid, qact, att) -> (
          match Hashtbl.find_opt t.procs qid with
          | Some q when live q && q.inflight = Some qact ->
              let att_now = Option.value ~default:0 (Hashtbl.find_opt t.attempts (qid, qact)) in
              if att_now > att then begin
                (* the predecessor was re-invoked: restart our local
                   transaction behind it (Section 3.6) *)
                Metrics.incr t.metrics "weak_restarts";
                ps.weak_wait <- Some (qid, qact, att_now);
                let a = Process.find ps.proc act in
                Des.after t.sim (duration t a) (fun _ -> on_activity_done t pid act how)
              end
              else begin
                Metrics.incr t.metrics "weak_commit_waits";
                Des.after t.sim 0.05 (fun _ -> on_activity_done t pid act how)
              end
          | Some _ | None -> ps.weak_wait <- None)
      | None -> ());
      (* Section 3.6 enforcement: the subsystem call below IS the local
         commit of the token's open transaction, so it must wait until
         every prescribed predecessor's local transaction committed.  On
         [`Held] the in-flight marker stays and the enforcer re-enters
         this function when the last predecessor commits (or withdraws us
         for re-invocation when one aborts). *)
      let enf_held =
        match t.enforce with
        | Some e
          when (match ps.phase with
               | Running | Awaiting_commit | Blocked_2pc _ -> true
               | Recovering | Deciding_2pc _ | Done -> false)
               && ps.weak_wait = None
               && Enforce.state e ~token:(activity_token ~pid ~act) = Some `Open -> (
            match
              Enforce.request_commit e ~token:(activity_token ~pid ~act)
                ~ready:(fun () -> on_activity_done t pid act how)
            with
            | `Held ->
                Metrics.incr t.metrics "weak_commit_waits";
                tracef t "enforce-hold P%d a%d (weak order)" pid act;
                true
            | `Granted -> false)
        | Some _ | None -> false
      in
      if ps.weak_wait <> None || enf_held then ()
      else begin
      if ps.inflight = Some act then begin
        bump_pid t pid;
        ps.inflight <- None
      end;
      match ps.phase with
      | Recovering | Done | Deciding_2pc _ ->
          (* the process was aborted (or its fate handed to a 2PC
             coordinator) while this invocation was in flight: the
             invocation is considered never submitted *)
          Metrics.incr t.metrics "cancelled_inflight";
          enf_fail t (activity_token ~pid ~act)
      | Running | Awaiting_commit | Blocked_2pc _ -> (
          let a = Process.find ps.proc act in
          let rm = rm_of t a in
          let token = activity_token ~pid ~act in
          let attempt = next_attempt t pid act in
          let args = ps.args_of a in
          let outcome =
            match how with
            | `Invoke ->
                Rm.invoke rm ~token ~service:a.Activity.service ~args ~attempt
                  ~now:(now t) ()
            | `Prepare ->
                Rm.prepare rm ~token ~service:a.Activity.service ~args ~attempt
                  ~now:(now t) ()
          in
          match outcome with
          | Rm.Committed _ ->
              notify_subsys t rm ~ok:true;
              log t (Wal.Invoked { pid; act });
              emit t (Schedule.Act (Activity.Forward a));
              ps.exec <- Execution.exec ps.exec act;
              ps.completion_cache <- None;
              Metrics.incr t.metrics "activities";
              (match t.enforce with
              | Some e ->
                  (* the local commit is recorded and every held dependent
                     whose obligations are now satisfied re-enters *)
                  Enforce.committed e ~token
              | None -> ());
              wake t
          | Rm.Prepared _ ->
              notify_subsys t rm ~ok:true;
              log t (Wal.Prepared { pid; act });
              bump_pid t pid;
              ps.phase <- Blocked_2pc { act; token };
              Metrics.incr t.metrics "prepared";
              if Obs.Tracer.active t.obs then
                Obs.Tracer.emit t.obs (Obs.Prepared { pid; act });
              wake t
          | Rm.Failed ->
              tracef t "failed P%d a%d" pid act;
              Metrics.incr t.metrics "invocation_failures";
              retry_or_degrade t ps act how ~rm ~a ~attempt
          | Rm.Unavailable ->
              tracef t "unavailable P%d a%d" pid act;
              Metrics.incr t.metrics "unavailable";
              notify_subsys t rm ~ok:false;
              if Activity.retriable a || not t.cfg.outage_degrade then begin
                (* a retriable activity is guaranteed to succeed
                   eventually (Definition 3): ride out the outage with
                   capped backoff *)
                Metrics.incr t.metrics "retries";
                redispatch t ps act how ~a ~delay:(backoff_delay t ~pid ~act ~attempt)
              end
              else begin
                (* non-retriable during a declared outage: deflect to the
                   next alternative branch of the flex process instead of
                   gambling on the window closing *)
                Metrics.incr t.metrics "outage_deflections";
                if Obs.Tracer.active t.obs then
                  Obs.Tracer.emit t.obs
                    (Obs.Deflect
                       { pid; act; service = a.Activity.service; outage = true });
                handle_failure t ps act
              end
          | Rm.Blocked owners ->
              Metrics.incr t.metrics "lock_blocked";
              (* after repeated blocks, break the tie by aborting the
                 holders of the prepared locks *)
              if attempt > 20 then
                List.iter
                  (fun owner ->
                    let qid = owner / 1_000_000 in
                    match Hashtbl.find_opt t.procs qid with
                    | Some q when live q && not q.aborting ->
                        tracef t "P%d blocked on P%d's prepared lock: aborting holder" pid qid;
                        abort_now t q
                    | Some _ | None -> ())
                  owners;
              redispatch t ps act how ~a ~delay:(backoff_delay t ~pid ~act ~attempt))
      end)

(* Weakly-ordered local abort (Section 3.6): withdraw the token's open
   local transaction and restart the dependent local transactions that
   were prescribed to commit after it — the retriable re-invocation
   restarts the locals, never their processes.  Restarting a dependent
   re-emits its footprint, so ITS open dependents must restart too: the
   cascade runs breadth-first (each transaction is re-opened before its
   dependents re-emit), deduplicated on first sight — the first abort to
   list a dependent saw the authoritative held/pending distinction.
   Dependents whose process is no longer running collapse into plain
   withdrawals (and cascade further). *)
and enf_fail t token =
  match t.enforce with
  | None -> ()
  | Some e ->
      let queue = Queue.create () in
      let seen = Hashtbl.create 8 in
      let enqueue l =
        List.iter
          (fun (dtok, was_held) ->
            if not (Hashtbl.mem seen dtok) then begin
              Hashtbl.replace seen dtok ();
              Queue.add (dtok, was_held) queue
            end)
          l
      in
      enqueue (Enforce.abort_tx e ~token);
      while not (Queue.is_empty queue) do
        let dtok, was_held = Queue.pop queue in
        let dpid = dtok / 1_000_000 and dact = dtok mod 1_000_000 in
        let sub = Enforce.abort_tx e ~token:dtok in
        (match Hashtbl.find_opt t.procs dpid with
        | Some dps
          when dps.inflight = Some dact
               && (match dps.phase with
                  | Running | Awaiting_commit | Blocked_2pc _ -> true
                  | Recovering | Deciding_2pc _ | Done -> false) ->
            Metrics.incr t.metrics "local_restarts";
            Enforce.rebegin e ~token:dtok;
            tracef t "weak-order restart P%d a%d (predecessor P%d aborted locally)"
              dpid dact (token / 1_000_000);
            if was_held then begin
              (* its completion event already fired (the commit grant was
                 held): re-invoke after a fresh service time *)
              let da = Process.find dps.proc dact in
              let how =
                Option.value ~default:`Invoke (Hashtbl.find_opt t.enf_how dtok)
              in
              Des.after t.sim (duration t da) (fun _ -> on_activity_done t dpid dact how)
            end
            (* not held: its own completion event is still pending and will
               request the commit of the restarted transaction *)
        | Some _ | None -> ());
        enqueue sub
      done

and handle_failure t ps act =
  let pid = Process.pid ps.proc in
  (* the activity is abandoned on this branch: a weakly-ordered local
     abort — withdraw its local transaction and re-invoke the dependents
     prescribed to commit after it (Section 3.6) *)
  enf_fail t (activity_token ~pid ~act);
  let before_len = List.length (Execution.trace ps.exec) in
  match Execution.fail ps.exec act with
  | exception Execution.Stuck msg ->
      failwith (Printf.sprintf "Scheduler: process %d stuck: %s" pid msg)
  | new_exec ->
      let added = List.filteri (fun i _ -> i >= before_len) (Execution.trace new_exec) in
      let compensations =
        List.filter_map
          (function
            | Execution.Compensated a -> Some (Activity.Inverse a)
            | Execution.Invoked _ | Execution.Attempt_failed _ -> None)
          added
      in
      Metrics.incr t.metrics "branch_failures";
      if compensations = [] then begin
        bump_pid t pid;
        ps.exec <- new_exec;
        ps.completion_cache <- None;
        (match Execution.status new_exec with
        | Execution.Finished Execution.Aborted -> finish_terminal t ps Schedule.Aborted
        | Execution.Finished Execution.Committed | Execution.Running -> ());
        wake t
      end
      else begin
        let resume =
          match Execution.status new_exec with
          | Execution.Running -> Some new_exec
          | Execution.Finished _ -> None
        in
        start_group_rollback t ~initiators:[ (ps, compensations, resume) ]
      end

and cascade_victims t ~exclude ~seed_instances =
  (* A live process must abort as well iff one of its occurrences conflicts
     with a compensation about to run AND lies after the compensated
     original: compensating across it would create an inter-process cycle.
     Occurrences before the original are harmless (the pair cancels around
     them).  The victims' own compensations cascade further. *)
  let indexed =
    List.mapi (fun i ev -> (i, ev)) (List.rev t.rev_events)
    |> List.filter_map (function
         | i, Schedule.Act inst -> Some (i, inst)
         | _, (Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _) -> None)
  in
  let forward_pos id =
    List.fold_left
      (fun acc (i, inst) ->
        match inst with
        | Activity.Forward a when Activity.id_equal a.Activity.id id -> Some i
        | Activity.Forward _ | Activity.Inverse _ -> acc)
      None indexed
  in
  let threat_of inst =
    match inst with
    | Activity.Inverse a ->
        Some (a.Activity.service, forward_pos a.Activity.id)
    | Activity.Forward _ -> None
  in
  let victims = ref [] in
  let frontier = ref (List.filter_map threat_of seed_instances) in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    List.iter
      (fun q ->
        let qid = Process.pid q.proc in
        let threatened =
          List.exists
            (fun (service, fpos) ->
              List.exists
                (fun (i, inst) ->
                  Activity.instance_proc inst = qid
                  && services_conflict t service (instance_service inst)
                  && match fpos with Some f -> i > f | None -> true)
                indexed
              ||
              (* a conflicting in-flight invocation may commit between the
                 original and its compensation: pessimistically cascade
                 (its outcome is then discarded as never-submitted) *)
              match q.inflight with
              | Some act ->
                  services_conflict t service (Process.find q.proc act).Activity.service
              | None -> false)
            !frontier
        in
        if
          (not (List.mem qid exclude))
          && live q
          && q.phase <> Recovering (* already completing, do not re-plan *)
          (* a process whose activity is mid-decision cannot be a cascade
             victim: any conflicting earlier occurrence of a live process
             would have created a dependency edge at admission, so the
             process would still have uncommitted predecessors and never
             have entered 2PC.  Excluded defensively — its locks clear the
             moment the decision lands. *)
          && (match q.phase with Deciding_2pc _ -> false | _ -> true)
          && (not (List.mem_assoc qid !victims))
          && threatened
        then begin
          let completion = Execution.completion q.exec in
          victims := (qid, completion) :: !victims;
          frontier := List.filter_map threat_of completion @ !frontier;
          continue_ := true
        end)
      (pstates t)
  done;
  !victims

and start_group_rollback t ~initiators =
  (* initiators: (pstate, instances to execute, resume state).  A [Some]
     resume state means the process survives (branch switch); [None] means
     the process terminates through these completion activities. *)
  let initiator_pids = List.map (fun (ps, _, _) -> Process.pid ps.proc) initiators in
  let seed_instances = List.concat_map (fun (_, insts, _) -> insts) initiators in
  let victims = cascade_victims t ~exclude:initiator_pids ~seed_instances in
  tracef t "group-rollback initiators=[%s] victims=[%s]"
    (String.concat "," (List.map string_of_int initiator_pids))
    (String.concat "," (List.map (fun (q, _) -> string_of_int q) victims));
  List.iter
    (fun (qid, _) ->
      let q = Hashtbl.find t.procs qid in
      Metrics.incr t.metrics "cascaded_aborts";
      log t (Wal.Abort_requested qid);
      q.aborting <- true;
      abort_prepared_of t q;
      bump_pid t qid;
      q.phase <- Recovering)
    victims;
  List.iter
    (fun (ps, _, resume) ->
      bump_pid t (Process.pid ps.proc);
      ps.phase <- Recovering;
      ps.resume_exec <- resume;
      if resume = None then ps.aborting <- true)
    initiators;
  let entries =
    victims @ List.map (fun (ps, insts, _) -> (Process.pid ps.proc, insts)) initiators
  in
  let ordered = Completed.completion_order (history t) entries in
  List.iter
    (fun (qid, insts) ->
      match Hashtbl.find_opt t.procs qid with
      | Some q -> set_pending t q insts
      | None -> ())
    entries;
  t.rollback_queue <-
    t.rollback_queue @ List.map (fun inst -> (Activity.instance_proc inst, inst)) ordered;
  if not t.rollback_running then run_rollback_queue t

and abort_prepared_of t q =
  match q.phase with
  | Blocked_2pc { act; token } ->
      let a = Process.find q.proc act in
      Rm.abort_prepared (rm_of t a) ~token;
      log t (Wal.Prepared_decided { pid = Process.pid q.proc; act; commit = false });
      Metrics.incr t.metrics "twopc_aborts";
      enf_fail t token
  | Deciding_2pc _ ->
      (* unreachable: abort paths exclude deciding processes (the commit
         decision may already be durable at the coordinator).  Never touch
         the token behind the protocol's back. *)
      ()
  | Running | Recovering | Awaiting_commit | Done -> ()

and run_rollback_queue t =
  if !(t.crashed) then ()
  else
  (* Pick the next executable completion instance.  Per-process order is
     preserved (an item is eligible only if no earlier queue item belongs
     to the same process), but across processes items may be reordered:
     a forward (retriable) completion activity must not execute while a
     live process still holds a conflicting compensatable occurrence — its
     possible compensation would be sandwiched (Lemma 3).  Such items wait
     for the holder to commit or abort. *)
  let holder_blocks inst pid =
    let service = (Activity.instance_base inst).Activity.service in
    List.filter_map
      (fun q ->
        let qid = Process.pid q.proc in
        if
          qid <> pid && live q && q.phase <> Recovering
          && List.exists
               (fun n ->
                 let a = Process.find q.proc n in
                 Activity.compensatable a
                 && services_conflict t service a.Activity.service)
               (Execution.executed q.exec)
        then Some q
        else None)
      (pstates t)
  in
  (* Lemma 3 inside the queue: a forward completion activity yields to any
     conflicting compensation queued for another process *)
  let inverse_in_queue_conflicts inst pid =
    let service = (Activity.instance_base inst).Activity.service in
    List.exists
      (fun (qid, qinst) ->
        qid <> pid && Activity.is_inverse qinst
        && services_conflict t service ((Activity.instance_base qinst).Activity.service))
      t.rollback_queue
  in
  let rec select seen_pids acc = function
    | [] -> None
    | ((pid, inst) as item) :: rest ->
        if List.mem pid seen_pids then select seen_pids (item :: acc) rest
        else if
          Activity.is_inverse inst
          || (holder_blocks inst pid = [] && not (inverse_in_queue_conflicts inst pid))
        then Some (item, List.rev_append acc rest)
        else select (pid :: seen_pids) (item :: acc) rest
  in
  match t.rollback_queue with
  | [] ->
      t.rollback_running <- false;
      (* finalize every process whose pending completion drained, in
         dependency order so that terminal events respect [C_i << C_j]
         (Definition 11.1) *)
      let ready =
        List.filter
          (fun ps -> ps.phase = Recovering && ps.pending_completion = [])
          (pstates t)
      in
      let ready_pids = List.map (fun ps -> Process.pid ps.proc) ready in
      let order =
        let g =
          Digraph.make ~nodes:ready_pids
            ~edges:
              (List.filter
                 (fun (i, j) -> List.mem i ready_pids && List.mem j ready_pids)
                 (Deps.edges t.deps))
        in
        match Digraph.topo_sort g with
        | Some order -> order
        | None -> ready_pids
      in
      List.iter
        (fun pid ->
          match Hashtbl.find_opt t.procs pid with
          | Some ps when ps.phase = Recovering -> finalize_rollback t ps
          | Some _ | None -> ())
        order;
      wake t
  | queue -> (
      t.rollback_running <- true;
      match select [] [] queue with
      | None ->
          (* every eligible item waits on a live compensatable holder: let
             the system run (holders may commit); if nothing at all is in
             flight, cascade the holders of the first item *)
          Metrics.incr t.metrics "rollback_waits";
          let idle =
            List.for_all (fun ps -> ps.inflight = None) (pstates t)
          in
          (if idle then
             match queue with
             | (pid, inst) :: _ ->
                 List.iter
                   (fun q ->
                     if not q.aborting then begin
                       tracef t "completion of P%d blocked by P%d: cascading" pid
                         (Process.pid q.proc);
                       abort_now t q
                     end)
                   (holder_blocks inst pid)
             | [] -> ());
          Des.after t.sim t.cfg.backoff.base (fun _ -> run_rollback_queue t)
      | Some ((_, inst), _) ->
          let a = Activity.instance_base inst in
          let d = duration t a in
          Des.after t.sim d (fun _ ->
              (* re-select at execution time: the queue may have grown and
                 eligibility may have changed *)
              if !(t.crashed) then ()
              else
                match select [] [] t.rollback_queue with
                | None ->
                    Des.after t.sim t.cfg.backoff.base (fun _ -> run_rollback_queue t)
                | Some ((pid, inst), rest) -> apply_rollback_item t pid inst rest))

and apply_rollback_item t pid inst rest =
  let a = Activity.instance_base inst in
  let rm = rm_of t a in
  let token = activity_token ~pid ~act:a.Activity.id.Activity.act in
  let outcome =
    if Activity.is_inverse inst then Rm.compensate rm ~token ~now:(now t) ()
    else
      Rm.invoke rm ~token ~service:a.Activity.service
        ~args:
          (match Hashtbl.find_opt t.procs pid with
          | Some ps -> ps.args_of a
          | None -> Value.Nil)
        ~attempt:max_int ~now:(now t) ()
  in
  match outcome with
  | Rm.Committed _ ->
      t.rollback_queue <- rest;
      (* completion activities introduce new conflicts (paper,
         Section 3.5): record the resulting dependency edges *)
      List.iter
        (fun q ->
          let qid = Process.pid q.proc in
          if
            qid <> pid && q.term <> Schedule.Aborted
            && occurrence_conflicts t q (Activity.instance_base inst).Activity.service
          then add_dep_edge t qid pid)
        (pstates t);
      (if Activity.is_inverse inst then begin
         log t (Wal.Compensated { pid; act = a.Activity.id.Activity.act });
         Metrics.incr t.metrics "compensations"
       end
       else begin
         log t (Wal.Invoked { pid; act = a.Activity.id.Activity.act });
         Metrics.incr t.metrics "completion_activities"
       end);
      emit t (Schedule.Act inst);
      (match Hashtbl.find_opt t.procs pid with
      | Some ps ->
          set_pending t ps
            (match ps.pending_completion with [] -> [] | _ :: tl -> tl)
      | None -> ());
      run_rollback_queue t
  | Rm.Blocked owners ->
      (* the blocking prepared invocation belongs to a process that
         transitively waits for this rollback: abort it (2PC gives
         the scheduler this option, cf. Section 3.5) *)
      Metrics.incr t.metrics "rollback_retries";
      List.iter
        (fun owner ->
          let qid = owner / 1_000_000 in
          match Hashtbl.find_opt t.procs qid with
          | Some q when live q && not q.aborting ->
              tracef t "rollback blocked by P%d: aborting it" qid;
              abort_now t q
          | Some _ | None -> ())
        owners;
      Des.after t.sim t.cfg.backoff.base (fun _ -> run_rollback_queue t)
  | Rm.Failed ->
      Metrics.incr t.metrics "rollback_retries";
      Des.after t.sim t.cfg.backoff.base (fun _ -> run_rollback_queue t)
  | Rm.Unavailable ->
      (* completion activities are retriable by definition: wait out the
         outage window and try again *)
      Metrics.incr t.metrics "unavailable";
      Metrics.incr t.metrics "rollback_retries";
      Des.after t.sim t.cfg.backoff.cap (fun _ -> run_rollback_queue t)
  | Rm.Prepared _ -> assert false

and finalize_rollback t ps =
  bump_pid t (Process.pid ps.proc);
  match ps.resume_exec with
  | Some exec ->
      ps.exec <- exec;
      ps.completion_cache <- None;
      ps.resume_exec <- None;
      ps.phase <- Running
  | None ->
      (* terminal completion: apply it to the engine state to learn the
         terminal status *)
      let final =
        match Execution.status ps.exec with
        | Execution.Finished _ -> ps.exec
        | Execution.Running -> Execution.abort ps.exec
      in
      ps.exec <- final;
      let term =
        match Execution.status final with
        | Execution.Finished Execution.Aborted -> Schedule.Aborted
        | Execution.Finished Execution.Committed | Execution.Running -> Schedule.Committed
      in
      finish_terminal t ps term

and abort_now t ps = abort_group t [ ps ]

(* Abort several processes jointly (the group abort of Definition 8): all
   their completions are ordered together, compensations in reverse order
   and before conflicting retriable completion activities (Lemmas 2-3). *)
and abort_group t group =
  let to_abort =
    List.filter
      (fun ps ->
        match ps.phase with
        | Done | Recovering -> false
        (* mid-decision: the coordinator owns the token's fate and the
           commit may already be durably logged, so the process cannot be
           aborted here.  Callers that must make progress (blocked waiters,
           the rollback queue) retry with backoff; the window closes as
           soon as the decision lands. *)
        | Deciding_2pc _ -> false
        | Running | Awaiting_commit | Blocked_2pc _ -> true)
      group
  in
  if to_abort <> [] then begin
    let initiators =
      List.map
        (fun ps ->
          let pid = Process.pid ps.proc in
          log t (Wal.Abort_requested pid);
          Metrics.incr t.metrics "abort_requests";
          abort_prepared_of t ps;
          ps.aborting <- true;
          (ps, Execution.completion ps.exec, None))
        to_abort
    in
    start_group_rollback t ~initiators
  end

and finish_terminal t ps term =
  let pid = Process.pid ps.proc in
  ps.phase <- Done;
  ps.term <- term;
  ps.done_at <- Some (now t);
  (match term with
  | Schedule.Aborted ->
      emit t (Schedule.Abort pid);
      log t (Wal.Process_aborted pid);
      Deps.mark_aborted t.deps pid;
      (* the abort dropped (and possibly un-parked) dependency edges *)
      latent_dep_removed t;
      Metrics.incr t.metrics "aborted"
  | Schedule.Committed ->
      emit t (Schedule.Commit pid);
      log t (Wal.Process_committed pid);
      Deps.mark_committed t.deps pid;
      Metrics.incr t.metrics "committed_via_completion"
  | Schedule.Active -> assert false);
  Metrics.observe t.metrics "latency" (now t -. ps.arrived)

(* ------------------------------------------------------------------ *)

let register t ?(args_of = fun _ -> Value.Nil) ?(groups = []) proc =
  let pid = Process.pid proc in
  if Hashtbl.mem t.procs pid then
    invalid_arg (Printf.sprintf "Scheduler.submit: duplicate process %d" pid);
  Compose.validate_exn proc groups;
  List.iter (fun a -> ignore (rm_of t a)) (Process.activities proc);
  (* intern every service of the process once, so the hot admission path
     never touches a string again *)
  let matrix_size = Conflict.Compiled.size t.cspec in
  let svc_ids = Hashtbl.create 16 in
  List.iter
    (fun (a : Activity.t) ->
      Hashtbl.replace svc_ids a.Activity.id.Activity.act
        (Conflict.Compiled.intern t.cspec a.Activity.service))
    (Process.activities proc);
  let ps =
    {
      proc;
      args_of;
      groups;
      admitted_groups = Hashtbl.create 4;
      claimed_services = [];
      exec = Execution.start proc;
      phase = Running;
      inflight = None;
      occurrences = [];
      pending_completion = [];
      resume_exec = None;
      completion_cache = None;
      weak_wait = None;
      aborting = false;
      term = Schedule.Active;
      arrived = now t;
      done_at = None;
      svc_ids;
      occ_bits = Bitset.create ();
      occ_conf = Bitset.create ();
      pending_bits = Bitset.create ();
      future_cache = None;
    }
  in
  Hashtbl.replace t.procs pid ps;
  (* A genuinely new service grew the conflict matrix: [intern] sets bits
     in *existing* rows, so every cached closure snapshot is stale — full
     invalidation.  Otherwise the newcomer only contributes its own
     source/target side (dirty) and takes the last topological position
     (it has no edges yet, so appending keeps a valid order valid). *)
  if Conflict.Compiled.size t.cspec > matrix_size then bump t
  else begin
    bump_pid t pid;
    match t.latent.lt_order with
    | Order_valid pos ->
        Hashtbl.replace pos pid t.latent.lt_next_pos;
        t.latent.lt_next_pos <- t.latent.lt_next_pos + 1
    | Order_stale | Order_cyclic -> ()
  end;
  t.plist <-
    List.merge
      (fun a b -> compare (Process.pid a.proc) (Process.pid b.proc))
      [ ps ] t.plist;
  t.hist <- Schedule.add_proc t.hist proc;
  Deps.add_process t.deps pid;
  log t (Wal.Process_registered pid);
  ps

let submit t ?at ?args_of ?groups proc =
  let when_ = Option.value ~default:(now t) at in
  Des.at t.sim when_ (fun _ ->
      if not !(t.crashed) then begin
        let ps = register t ?args_of ?groups proc in
        ps.arrived <- now t;
        Metrics.incr t.metrics "submitted";
        wake t
      end)

let rec request_abort t ?at pid =
  let when_ = Option.value ~default:(now t) at in
  Des.at t.sim when_ (fun _ ->
      if not !(t.crashed) then
        match Hashtbl.find_opt t.procs pid with
        | None -> ()
        | Some ps -> (
            match ps.phase with
            | Deciding_2pc _ ->
                (* the decision window is short (it closes when the 2PC
                   round completes): retry the abort after it *)
                request_abort t ~at:(now t +. t.cfg.backoff.base) pid
            | _ -> abort_now t ps))

let run ?until t = Des.run ?until t.sim

let closed_pids t term =
  List.filter_map
    (fun ps ->
      if ps.phase = Done && ps.term = term then Some (Process.pid ps.proc) else None)
    (pstates t)

(* Checkpoint-time page bookkeeping: write back every dirty page the
   durable marker covers (after forcing a sync), then log what is still
   dirty as a [Dirty_pages] snapshot per paged store.  Page redo after a
   crash starts at the snapshot's minimum rec_lsn instead of the whole
   log.  Under a lying-fsync window pages can stay dirty — the snapshot
   is taken after the flush, so the bound remains honest. *)
let log_dirty_pages t =
  Hashtbl.iter
    (fun name rm ->
      let store = Rm.store rm in
      match Store.bufpool store with
      | None -> ()
      | Some pool ->
          Store.flush store;
          t.logf (Wal.Dirty_pages { rm = name; pages = Tpm_kv.Bufpool.dirty_page_table pool }))
    t.rms

let checkpoint t =
  log t
    (Wal.Checkpoint
       { committed = closed_pids t Schedule.Committed; aborted = closed_pids t Schedule.Aborted });
  (* after the checkpoint record: compaction cuts at the [Checkpoint]
     position and keeps only later page snapshots *)
  log_dirty_pages t

(* Fuzzy checkpoint: log [Ckpt_begin] now and seal the span with a
   [Ckpt_end] one [window] later, naming the processes closed at {e end}
   time.  Appends keep flowing between the two records — compaction cuts
   at the begin of the last complete span, so the records written while
   the checkpoint was being taken survive. *)
let checkpoint_fuzzy ?(window = 0.5) t =
  if window < 0.0 then invalid_arg "Scheduler.checkpoint_fuzzy: negative window";
  t.ckpt_seq <- t.ckpt_seq + 1;
  let ckpt = t.ckpt_seq in
  log t (Wal.Ckpt_begin { ckpt });
  Des.at t.sim (now t +. window) (fun _ ->
      if not !(t.crashed) then begin
        (* inside the span, like the rest of the fuzzy checkpoint's
           records, so compaction (which cuts at the begin) keeps it *)
        log_dirty_pages t;
        log t
          (Wal.Ckpt_end
             {
               ckpt;
               committed = closed_pids t Schedule.Committed;
               aborted = closed_pids t Schedule.Aborted;
             })
      end)

let wal t = t.wal

let crash t =
  t.crashed := true;
  Bus.halt t.bus;
  (* paged stores share the host's fate: their page files stop changing
     at this instant (no-op for in-memory stores, which model subsystems
     on machines that survive the scheduler crash) *)
  Hashtbl.iter (fun _ rm -> Store.freeze (Rm.store rm)) t.rms;
  (* power loss at the disk too: the mirrored segments are truncated to
     the honest durable point (a no-op for in-memory logs), so a harness
     reloading from disk sees exactly what a real restart would *)
  Wal.crash_image t.wal;
  Wal.records t.wal

let recover ?(config = default_config) ?(amnesia = false) ?tracer ?(groups = []) ~spec
    ~rms ~procs records =
  let obs = match tracer with Some tr -> tr | None -> tracer_from_env () in
  (* subprocess declarations per pid, re-attached to the rebuilt pstates
     (interrupted processes only roll back and never admit again, so no
     admitted-group state needs re-deriving — the declaration is kept for
     validation and API symmetry) *)
  let groups_of pid =
    match List.assoc_opt pid groups with Some gs -> gs | None -> []
  in
  (* Coordinator amnesia: the coordinator's side of the log is declared
     lost.  Strip its records and fall back to cooperative termination —
     an in-doubt participant's instance commits iff some sibling resource
     manager remembers the commit decision; only then is abort presumed.
     A remembered commit is synthesized into the log as the participant's
     own decided record so analysis treats it like a delivered decision. *)
  let records, termination_commits =
    if not amnesia then (records, [])
    else begin
      let stripped =
        List.filter
          (function
            | Wal.Coord_begin _ | Wal.Coord_committed _ | Wal.Coord_forgotten _ ->
                false
            | _ -> true)
          records
      in
      let commits =
        List.concat_map
          (fun rm ->
            List.filter_map
              (fun (token, cid) ->
                if Coordinator.cooperative_decision ~rms ~cid then
                  Some (token / 1_000_000, token mod 1_000_000)
                else None)
              (Rm.in_doubt rm))
          rms
        |> List.sort_uniq compare
      in
      ( stripped
        @ List.map
            (fun (pid, act) -> Wal.Prepared_decided { pid; act; commit = true })
            commits,
        commits )
    end
  in
  let on_step step =
    if Obs.Tracer.active obs then Obs.Tracer.emit obs (Obs.Recovery_step step)
  in
  if amnesia then on_step "coordinator amnesia: cooperative termination";
  match Recovery.analyze ~on_step ~procs records with
  | Error e -> Error e
  | Ok plan ->
      let t = create ~config ~tracer:obs ~spec ~rms () in
      let find_proc pid = List.find_opt (fun pr -> Process.pid pr = pid) procs in
      (* apply the cooperatively recovered commit decisions to the tokens
         still prepared at the resource managers *)
      List.iter
        (fun (pid, act) ->
          match find_proc pid with
          | None -> ()
          | Some proc ->
              let rm = rm_of t (Process.find proc act) in
              let token = activity_token ~pid ~act in
              if Rm.is_prepared rm ~token then begin
                Rm.commit_prepared rm ~token;
                Metrics.incr t.metrics "indoubt_resolved";
                Metrics.incr t.metrics "twopc_commits"
              end)
        termination_commits;
      (* Resolve in-doubt prepared invocations.  Durably committed ones
         (the coordinator logged [Coord_committed] but the DECISION message
         was lost in the crash) are re-delivered: committed at their
         subsystems, never aborted.  All others are presumed aborted. *)
      List.iter
        (fun (p : Recovery.process_plan) ->
          let pid = p.Recovery.pid in
          let proc = List.find (fun pr -> Process.pid pr = pid) procs in
          let resolve act ~commit =
            let rm = rm_of t (Process.find proc act) in
            let token = activity_token ~pid ~act in
            (if Rm.is_prepared rm ~token then
               if commit then begin
                 Rm.commit_prepared rm ~token;
                 Metrics.incr t.metrics "indoubt_resolved";
                 Metrics.incr t.metrics "twopc_commits"
               end
               else begin
                 Rm.abort_prepared rm ~token;
                 Metrics.incr t.metrics "twopc_aborts"
               end);
            log t (Wal.Prepared_decided { pid; act; commit })
          in
          List.iter (fun act -> resolve act ~commit:true) p.Recovery.in_doubt_commit;
          List.iter (fun act -> resolve act ~commit:false) p.Recovery.in_doubt)
        plan.Recovery.interrupted;
      (* the pre-crash coordination state is now fully resolved: clear the
         in-doubt tags and remembered decisions so the fresh coordinator's
         instance ids cannot be confused with pre-crash ones *)
      List.iter Rm.reset_coordination rms;
      (* processes that already terminated keep their outcome *)
      List.iter
        (fun (pid, term) ->
          match List.find_opt (fun pr -> Process.pid pr = pid) procs with
          | None -> ()
          | Some proc ->
              let ps = register t ~groups:(groups_of pid) proc in
              ps.phase <- Done;
              ps.term <- term)
        (List.map (fun pid -> (pid, Schedule.Committed)) plan.Recovery.committed
        @ List.map (fun pid -> (pid, Schedule.Aborted)) plan.Recovery.aborted);
      (* rebuild interrupted processes and queue their completions *)
      let entries =
        List.map
          (fun (p : Recovery.process_plan) ->
            let proc = List.find (fun pr -> Process.pid pr = p.Recovery.pid) procs in
            let ps = register t ~groups:(groups_of p.Recovery.pid) proc in
            let exec =
              List.fold_left
                (fun st inst ->
                  match Execution.replay_instance st inst with
                  | Ok st -> st
                  | Error e ->
                      failwith (Printf.sprintf "Scheduler.recover: replay: %s" e))
                (Execution.start proc) p.Recovery.executed
            in
            bump t;
            ps.exec <- exec;
            ps.aborting <- true;
            ps.phase <- Recovering;
            log t (Wal.Abort_requested p.Recovery.pid);
            (p.Recovery.pid, p.Recovery.completion))
          plan.Recovery.interrupted
      in
      (* replay the pre-crash events into the new history in their global
         (WAL) order, so that the recovered history is self-contained and
         the completion ordering below sees every pre-crash conflict.
         The re-appends also make the new log self-contained. *)
      let aborted_in_doubt pid act =
        List.exists
          (fun (p : Recovery.process_plan) ->
            p.Recovery.pid = pid && List.mem act p.Recovery.in_doubt)
          plan.Recovery.interrupted
      in
      let in_doubt_commit pid act =
        List.exists
          (fun (p : Recovery.process_plan) ->
            p.Recovery.pid = pid && List.mem act p.Recovery.in_doubt_commit)
          plan.Recovery.interrupted
      in
      (* [Coord_begin] names the activity each instance decides, so the
         re-delivered commit of an in-doubt token can be emitted at the
         position where its decision became durable *)
      let coord_acts : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun record ->
          let emit_act pid act inverse =
            match find_proc pid with
            | None -> ()
            | Some proc ->
                let a = Process.find proc act in
                emit t
                  (Schedule.Act (if inverse then Activity.Inverse a else Activity.Forward a));
                log t
                  (if inverse then Wal.Compensated { pid; act } else Wal.Invoked { pid; act })
          in
          match record with
          | Wal.Invoked { pid; act } -> emit_act pid act false
          | Wal.Compensated { pid; act } -> emit_act pid act true
          | Wal.Prepared_decided { pid; act; commit = true } -> emit_act pid act false
          | Wal.Prepared { pid; act } ->
              (* in-doubt prepared resolved to commit appear via their later
                 progress; trailing ones were aborted above; durably
                 committed ones are emitted at their [Coord_committed]
                 position (the commit happened there, after the
                 predecessors' process commits, never at prepare time) *)
              if
                (not (aborted_in_doubt pid act))
                && (not (in_doubt_commit pid act))
                && not
                     (List.exists
                        (function
                          | Wal.Prepared_decided { pid = p'; act = a'; _ } ->
                              p' = pid && a' = act
                          | _ -> false)
                        records)
              then emit_act pid act false
          | Wal.Coord_begin { cid; pid; act; _ } ->
              Hashtbl.replace coord_acts cid (pid, act)
          | Wal.Coord_committed { cid; _ } -> (
              match Hashtbl.find_opt coord_acts cid with
              | Some (pid, act) when in_doubt_commit pid act -> emit_act pid act false
              | Some _ | None -> ())
          | Wal.Process_committed pid ->
              emit t (Schedule.Commit pid);
              log t (Wal.Process_committed pid)
          | Wal.Process_aborted pid ->
              emit t (Schedule.Abort pid);
              log t (Wal.Process_aborted pid)
          | Wal.Prepared_decided _ | Wal.Process_registered _ | Wal.Commit_requested _
          | Wal.Abort_requested _ | Wal.Checkpoint _ | Wal.Ckpt_begin _ | Wal.Ckpt_end _
          | Wal.Coord_forgotten _ | Wal.Kv_write _ | Wal.Dirty_pages _ -> ())
        records;
      if entries <> [] then begin
        emit t (Schedule.Group_abort (List.map fst entries));
        let ordered = Completed.completion_order (history t) entries in
        List.iter
          (fun (qid, insts) ->
            let q = Hashtbl.find t.procs qid in
            set_pending t q insts)
          entries;
        t.rollback_queue <-
          List.map (fun inst -> (Activity.instance_proc inst, inst)) ordered;
        Des.after t.sim 0.0 (fun _ -> run_rollback_queue t)
      end;
      Metrics.incr t.metrics "recovered_processes" ~by:(List.length entries);
      Ok t

(* Parked-edge GC: drop parked cycle-closing edges whose endpoints both
   terminated (see {!Deps.compact}) so a long-lived server's admissions
   are not wedged by the ghosts of retired processes.  The removal feeds
   the latent order state machine like any other edge removal. *)
let gc_deps t =
  let n = Deps.compact t.deps in
  if n > 0 then latent_dep_removed t;
  n

(* Self-check for the incremental latent base (tests only): rebuild the
   base from scratch with the PR-3 one-shot algorithm and compare edge
   sets, source sets, closures, and the order state's cyclicity verdict
   against a fresh DFS. *)
let latent_self_check t =
  let lt = latent_base t in
  let sources = latent_sources t in
  let targets = List.filter live (pstates t) in
  let scratch_edges =
    List.concat_map
      (fun q ->
        let qid = Process.pid q.proc in
        let qconf = Bitset.create () in
        latent_qconf_into t q ~into:qconf;
        List.filter_map
          (fun r ->
            let rid = Process.pid r.proc in
            if rid <> qid && latent_hits t qconf r then Some (qid, rid) else None)
          targets)
      sources
  in
  let inc = List.sort_uniq compare (latent_edges lt) in
  let scratch = List.sort_uniq compare scratch_edges in
  let pp_edges l =
    String.concat ";" (List.map (fun (i, j) -> Printf.sprintf "%d->%d" i j) l)
  in
  if inc <> scratch then
    Error
      (Printf.sprintf "latent edges differ: incremental [%s] vs scratch [%s]"
         (pp_edges inc) (pp_edges scratch))
  else begin
    let inc_sources =
      List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) lt.lt_qconf [])
    in
    let ref_sources =
      List.sort compare (List.map (fun q -> Process.pid q.proc) sources)
    in
    if inc_sources <> ref_sources then
      Error
        (Printf.sprintf "source sets differ: incremental [%s] vs scratch [%s]"
           (String.concat "," (List.map string_of_int inc_sources))
           (String.concat "," (List.map string_of_int ref_sources)))
    else
      match
        List.find_opt
          (fun q ->
            let qid = Process.pid q.proc in
            let b = Bitset.create () in
            latent_qconf_into t q ~into:b;
            Bitset.elements b <> Bitset.elements (Hashtbl.find lt.lt_qconf qid))
          sources
      with
      | Some q ->
          Error (Printf.sprintf "stale closure for P%d" (Process.pid q.proc))
      | None -> (
          let combined = Deps.edges t.deps @ inc in
          let scratch_cyclic =
            let succ = Hashtbl.create 64 in
            List.iter
              (fun (i, j) ->
                Hashtbl.replace succ i
                  (j :: Option.value ~default:[] (Hashtbl.find_opt succ i)))
              combined;
            let color = Hashtbl.create 64 in
            let cyc = ref false in
            let rec visit n =
              match Hashtbl.find_opt color n with
              | Some `Gray -> cyc := true
              | Some `Black -> ()
              | None ->
                  Hashtbl.replace color n `Gray;
                  List.iter visit (Option.value ~default:[] (Hashtbl.find_opt succ n));
                  Hashtbl.replace color n `Black
            in
            List.iter (fun q -> visit (Process.pid q.proc)) sources;
            !cyc
          in
          match latent_resolve_order t lt with
          | None ->
              if scratch_cyclic then Ok ()
              else Error "order state says cyclic; scratch DFS finds no cycle"
          | Some pos -> (
              if scratch_cyclic then
                Error "order state valid; scratch DFS finds a cycle"
              else
                match
                  List.find_opt
                    (fun (i, j) ->
                      match (Hashtbl.find_opt pos i, Hashtbl.find_opt pos j) with
                      | Some pi, Some pj -> pi >= pj
                      | _ -> true)
                    combined
                with
                | Some (i, j) ->
                    Error
                      (Printf.sprintf "edge %d->%d not forward in maintained order" i j)
                | None -> Ok ()))
  end

(* Failure forensics: the last [n] ring-buffer events plus the metrics
   snapshot, in one block a CI log can be diagnosed from.  With an
   inactive tracer the event section records that tracing was off. *)
let forensics ?(n = 40) fmt t =
  Format.fprintf fmt "=== forensics: last trace events (t=%.2f) ===@." (now t);
  if Obs.Tracer.active t.obs then begin
    let events = Obs.Tracer.recent ~n t.obs in
    if events = [] then Format.fprintf fmt "(no events recorded)@."
    else
      List.iter
        (fun (ts, ev) -> Format.fprintf fmt "[%8.2f] %a@." ts Obs.pp_event ev)
        events
  end
  else Format.fprintf fmt "(tracing disabled; enable the ring sink for event history)@.";
  Format.fprintf fmt "=== forensics: metrics snapshot ===@.%a@." Metrics.pp_summary
    t.metrics

let dump fmt t =
  List.iter
    (fun ps ->
      let phase =
        match ps.phase with
        | Running -> "running"
        | Blocked_2pc { act; _ } -> Printf.sprintf "blocked-2pc(a%d)" act
        | Deciding_2pc { act; cid; _ } -> Printf.sprintf "deciding-2pc(a%d,c%d)" act cid
        | Recovering -> "recovering"
        | Awaiting_commit -> "awaiting-commit"
        | Done -> "done"
      in
      Format.fprintf fmt "P%d: %s inflight=%s pending=%d aborting=%b enabled=[%s] preds=[%s]@."
        (Process.pid ps.proc) phase
        (match ps.inflight with Some a -> string_of_int a | None -> "-")
        (List.length ps.pending_completion) ps.aborting
        (String.concat "," (List.map string_of_int (Execution.enabled ps.exec)))
        (String.concat ","
           (List.map string_of_int (Deps.uncommitted_preds t.deps (Process.pid ps.proc)))))
    (pstates t);
  Format.fprintf fmt "rollback_queue=%d running=%b@." (List.length t.rollback_queue)
    t.rollback_running

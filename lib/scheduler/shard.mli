(** Domain-sharded admission: partition processes by conflict-connected
    components of the compiled bitmatrix and run one admission engine per
    shard (DESIGN.md §13).

    Soundness of the partition: every dependency edge the scheduler
    records — admission order, weak order, latent (Section 3.5) —
    requires a service conflict, and the component relation closes over
    both declared conflicts and co-occurrence of services in one process.
    Processes of different components therefore never share an edge; each
    shard's graph is the full graph restricted to its component, and
    per-shard acyclicity (PRED) implies global acyclicity (PRED). *)

(** The component map: union-find over interned service ids, closed over
    conflict-matrix rows and per-process service bundles; maintained
    incrementally on admit and retire (retirement re-sharpens by periodic
    rebuild — union-find cannot split). *)
module Map : sig
  type t

  val create : Tpm_core.Conflict.t -> t

  val admit : t -> Tpm_core.Process.t -> int
  (** Interns the process's services, merges their components (the merge
      protocol: a submission whose conflict closure spans components
      unifies them), records the pid as live, and returns the component
      root.  [-1] for a process with no activities. *)

  val retire : t -> int -> unit
  (** Forget a terminated pid's bundle.  Coarsening is healed lazily: once
      retirements outnumber the live set the map is rebuilt from the
      static conflict rows plus the live bundles. *)

  val service_ids : t -> Tpm_core.Process.t -> int list
  (** The process's distinct interned service ids, sorted — the key a
      router assigns shard ownership by. *)

  val component : t -> Tpm_core.Process.t -> int
  (** Query without recording: the component root the process would land
      in, [-2] if its services currently span several components (the
      caller decides whether to merge via {!admit} or to route to an
      owner), [-1] if it has no activities. *)

  val same_component : t -> int -> int -> bool
  (** Whether two interned service ids currently share a component.  A
      router must claim ownership component-wise: a service conflicting
      with a claimed one belongs to the claimant even if never seen. *)

  val live_count : t -> int
end

val partition :
  shards:int ->
  spec:Tpm_core.Conflict.t ->
  (float * Tpm_core.Process.t) list ->
  (float * Tpm_core.Process.t) list list
(** Deterministic closed-batch partition: components assigned round-robin
    to [shards] buckets in order of first appearance; empty buckets are
    dropped, submission order is preserved within each bucket.  Depends
    only on [(spec, procs)], never on domain scheduling. *)

val components : spec:Tpm_core.Conflict.t -> Tpm_core.Process.t list -> int
(** Number of conflict-connected components the process set spans. *)

val run_parallel :
  ?domains:int ->
  ?shards:int ->
  ?until:float ->
  ?wal_path:string ->
  config:Scheduler.config ->
  spec:Tpm_core.Conflict.t ->
  make_rms:(unit -> Tpm_subsys.Rm.t list) ->
  (float * Tpm_core.Process.t) list ->
  Scheduler.t list
(** Partition the batch into at most [shards] buckets and run one
    scheduler per bucket, [domains] workers pulling buckets from a shared
    queue.  [make_rms] must build fresh resource managers on every call
    (each scheduler owns its instances; they are not domain-safe).
    [wal_path] mirrors each shard's log to ["<path>.shard<i>"].  Returns
    the per-shard schedulers in bucket order, after all domains joined.

    [domains = 1] spawns no domain and runs the buckets inline in order;
    with [shards = 1] that is exactly the historical create/submit/run
    loop — bit-identical histories, decisions and stores. *)

open Tpm_core

(* Sharded admission (DESIGN.md §13).

   Processes are partitioned by the conflict-connected components of the
   compiled bitmatrix: two services in the same component iff joined by a
   chain of declared conflicts or co-occurrence in one process.  Edges of
   every kind the scheduler records — admission order, weak order,
   latent (§3.5) — require a conflict, so a dependency edge can never
   join processes of different components: each component is a closed
   admission world, and per-component PRED implies PRED of any
   interleaving (the union of component-wise acyclic graphs with no
   cross-component edges is acyclic). *)

module Map = struct
  type t = {
    cspec : Conflict.Compiled.t;
    mutable uf : Unionfind.t;  (* over service ids of [cspec] *)
    mutable synced : int;  (* service ids whose matrix row has been unioned *)
    procs : (int, int list) Hashtbl.t;  (* live pid -> its service ids *)
    mutable retired : int;  (* retirements since the last rebuild *)
  }

  (* union the matrix rows interned since the last sync.  The matrix is
     symmetric and rows only gain services, so folding each new row over
     its bits covers every pair incident to a new service; old-old pairs
     were covered by earlier syncs. *)
  let sync t =
    let n = Conflict.Compiled.size t.cspec in
    for i = t.synced to n - 1 do
      List.iter (fun j -> Unionfind.union t.uf i j)
        (Bitset.elements (Conflict.Compiled.row t.cspec i))
    done;
    t.synced <- n

  let create spec =
    let t =
      {
        cspec = Conflict.Compiled.make spec;
        uf = Unionfind.create ();
        synced = 0;
        procs = Hashtbl.create 64;
        retired = 0;
      }
    in
    sync t;
    t

  let service_ids t proc =
    List.sort_uniq compare
      (List.map
         (fun act -> Conflict.Compiled.intern t.cspec (Process.find proc act).Activity.service)
         (Process.activity_ids proc))

  let services = service_ids

  (* a process bundles its services into one component: its own
     dependency edges reach every component any of its services lives in *)
  let bundle t sids =
    match sids with
    | [] -> ()
    | s0 :: rest -> List.iter (fun s -> Unionfind.union t.uf s0 s) rest

  let admit t proc =
    let sids = services t proc in
    sync t;  (* interning may have grown the matrix *)
    bundle t sids;
    Hashtbl.replace t.procs (Process.pid proc) sids;
    match sids with [] -> -1 | s0 :: _ -> Unionfind.find t.uf s0

  (* rebuild from scratch: static conflict edges plus the bundles of the
     processes still live.  Union-find cannot split, so retirement can
     only coarsen lazily — the periodic rebuild re-sharpens the partition
     once enough bundles died. *)
  let rebuild t =
    t.uf <- Unionfind.create ();
    t.synced <- 0;
    sync t;
    Hashtbl.iter (fun _ sids -> bundle t sids) t.procs;
    t.retired <- 0

  let retire t pid =
    if Hashtbl.mem t.procs pid then begin
      Hashtbl.remove t.procs pid;
      t.retired <- t.retired + 1;
      if t.retired > max 16 (Hashtbl.length t.procs) then rebuild t
    end

  let component t proc =
    match services t proc with
    | [] -> -1
    | s0 :: rest ->
        sync t;
        (* query only: the candidate's bundle is not recorded, but its
           span decides which components it would merge *)
        let r0 = Unionfind.find t.uf s0 in
        if List.for_all (fun s -> Unionfind.find t.uf s = r0) rest then r0 else -2

  let same_component t i j =
    sync t;
    Unionfind.same t.uf i j

  let live_count t = Hashtbl.length t.procs
end

(* Deterministic partition of a closed batch: components are assigned to
   buckets round-robin in order of first appearance, so the partition
   depends only on (spec, procs) — never on domain scheduling. *)
let partition ~shards ~spec procs =
  let shards = max 1 shards in
  let map = Map.create spec in
  (* first pass: union the whole closed batch, so roots are final —
     a later submission can merge components assigned earlier, and only
     the fixpoint partition is conflict-closed *)
  List.iter (fun (_, proc) -> ignore (Map.admit map proc)) procs;
  let bucket_of_root = Hashtbl.create 16 in
  let next = ref 0 in
  let buckets = Array.make shards [] in
  List.iter
    (fun ((_, proc) as item) ->
      let root = Map.component map proc in
      let b =
        match Hashtbl.find_opt bucket_of_root root with
        | Some b -> b
        | None ->
            let b = !next mod shards in
            incr next;
            Hashtbl.add bucket_of_root root b;
            b
      in
      buckets.(b) <- item :: buckets.(b))
    procs;
  (* drop empty buckets (fewer components than shards), keep order *)
  Array.to_list buckets
  |> List.filter_map (fun l -> match l with [] -> None | l -> Some (List.rev l))

let components ~spec procs =
  List.length (partition ~shards:max_int ~spec (List.map (fun p -> (0.0, p)) procs))

(* One scheduler per bucket, buckets pulled from a shared atomic counter
   by [domains] workers.  Every scheduler is domain-local: [make_rms]
   builds fresh resource managers per call, [spec] is immutable, results
   land in distinct array slots, and [Domain.join] publishes them.  With
   [domains = 1] no domain is ever spawned and the buckets run inline in
   order — a [shards = 1] single-domain run is the plain
   create/submit/run loop, bit for bit. *)
let run_parallel ?(domains = 1) ?(shards = 1) ?until ?wal_path ~config ~spec ~make_rms
    procs =
  let buckets = Array.of_list (partition ~shards ~spec procs) in
  let k = Array.length buckets in
  let results = Array.make k None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < k then begin
        let rms = make_rms () in
        let wal_path = Option.map (fun p -> Printf.sprintf "%s.shard%d" p i) wal_path in
        let t = Scheduler.create ~config ?wal_path ~spec ~rms () in
        List.iter (fun (at, p) -> Scheduler.submit t ~at p) buckets.(i);
        Scheduler.run ?until t;
        results.(i) <- Some t;
        loop ()
      end
    in
    loop ()
  in
  if domains <= 1 then worker ()
  else begin
    let spawned = List.init (min (domains - 1) (max 0 (k - 1))) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  Array.to_list results |> List.filter_map Fun.id

(** Process dependency tracking for the online scheduler.

    An edge [i -> j] records that some activity of [P_i] preceded a
    conflicting activity of [P_j] in the emerging schedule.  The scheduler
    keeps this graph acyclic (serializability), delays commits so that
    [C_i] precedes [C_j] along edges, and uses the uncommitted
    predecessors of a process to decide when its non-compensatable
    activities may commit (Lemma 1).

    The implementation maintains a dynamic topological order
    (Pearce–Kelly): edge inserts are O(1) amortized and {!would_cycle}
    usually answers from the order alone, without graph traversal. *)

type t

val create : unit -> t
val add_process : t -> int -> unit

val add_edge : t -> int -> int -> unit
(** O(1) amortized (hash-set duplicate detection; a bounded local reorder
    when the edge runs against the maintained order).  An edge that
    closes a cycle — only rollback completions insert unchecked — is
    parked and reflected by {!would_cycle} until an abort clears it. *)

val edges : t -> (int * int) list
(** Sorted view, memoized until the next mutation. *)

val would_cycle : t -> (int * int) list -> bool
(** Would adding all the given edges create a cycle among live
    (uncommitted, unaborted) processes?  Fast path: every extra edge
    running forward in the maintained topological order proves
    acyclicity; otherwise a DFS bounded to the violating region decides. *)

val would_cycle_reference : t -> (int * int) list -> bool
(** The pre-incremental oracle — rebuilds a {!Tpm_core.Digraph} from
    scratch and runs full-graph cycle detection.  Kept as the reference
    implementation for differential checking ({!set_check},
    [tools/stress.exe --check-admission]). *)

val set_check : t -> bool -> unit
(** Cross-check every {!would_cycle} verdict against
    {!would_cycle_reference}, failing loudly on divergence. *)

val mark_committed : t -> int -> unit
val mark_aborted : t -> int -> unit
(** Aborted processes left no effects: their edges are dropped. *)

val committed : t -> int -> bool

val uncommitted_preds : t -> int -> int list
(** Live predecessors of a process (direct or transitive). *)

val live_succs : t -> int -> int list
(** Live direct successors. *)

val succs : t -> int -> int list
(** Every direct successor, parked cycle-closing edges included — the
    adjacency the scheduler's combined-graph (deps ∪ latent base) DFS
    walks.  May contain duplicates; no status filter. *)

val iter_succs : t -> int -> (int -> unit) -> unit
(** Allocation-free {!succs} — the admission DFS walks adjacency once per
    visited node, so it must not build a list per visit. *)

val compact : t -> int
(** Drop parked cycle-closing edges both of whose endpoints terminated.
    A terminated process never gains in-edges again, so such an edge can
    no longer participate in a new cycle — but while parked it forces
    {!would_cycle} to answer [true] for every admission.  Returns the
    number of edges dropped; [0] almost always (the parked table is
    normally empty). *)

val order : t -> int list
(** The maintained topological order over non-aborted processes —
    serialization-order queries read it off directly.  Meaningful while
    the graph is acyclic (no parked cycle-closing edges). *)

(* Incremental dependency graph.

   The scheduler asks [would_cycle] on every admission; rebuilding a
   [Digraph] and running DFS from scratch made that O(V + E) per query.
   Instead we maintain a dynamic topological order over the acyclic part
   of the graph (Pearce & Kelly, "A Dynamic Topological Sort Algorithm
   for Directed Acyclic Graphs", JEA 2006): inserting an edge that
   already respects the order is O(1); otherwise only the affected
   region — nodes between the endpoints in the order — is discovered by
   two bounded DFS passes and locally reindexed.  [would_cycle extra]
   then has a constant-time fast path: if every extra edge runs forward
   in the maintained order, the union is acyclic by construction.

   One caller inserts edges without asking first: completion activities
   of a rolling-back process ([apply_rollback_item]) may legitimately
   close a cycle — the victim is already aborting, and its abort event
   will erase the edges.  Such cycle-closing inserts cannot enter the
   DAG (they have no valid position in the order); they are parked in
   [back] and retried whenever an abort removes edges.  While [back] is
   non-empty the graph *is* cyclic, and [would_cycle] answers [true]
   outright, which keeps its verdicts exact. *)

type status =
  | Live
  | Committed
  | Aborted

type t = {
  status : (int, status) Hashtbl.t;
  succ : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (* DAG adjacency *)
  pred : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  ord : (int, int) Hashtbl.t;  (* topological index; DAG edges increase it *)
  back : (int * int, unit) Hashtbl.t;  (* parked cycle-closing edges *)
  mutable next_ord : int;
  mutable sorted_edges : (int * int) list option;  (* memoized [edges] view *)
  mutable check : bool;  (* cross-check every verdict against the oracle *)
}

let create () =
  {
    status = Hashtbl.create 16;
    succ = Hashtbl.create 16;
    pred = Hashtbl.create 16;
    ord = Hashtbl.create 16;
    back = Hashtbl.create 4;
    next_ord = 0;
    sorted_edges = None;
    check = false;
  }

let set_check t b = t.check <- b

let adj tbl n =
  match Hashtbl.find_opt tbl n with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.add tbl n h;
      h

let ensure_node t n =
  if not (Hashtbl.mem t.ord n) then begin
    Hashtbl.replace t.ord n t.next_ord;
    t.next_ord <- t.next_ord + 1
  end

let add_process t pid =
  ensure_node t pid;
  if not (Hashtbl.mem t.status pid) then Hashtbl.replace t.status pid Live

let status t pid = Option.value ~default:Live (Hashtbl.find_opt t.status pid)
let live t pid = status t pid = Live
let committed t pid = status t pid = Committed
let mark_committed t pid = Hashtbl.replace t.status pid Committed

let dag_mem t i j =
  match Hashtbl.find_opt t.succ i with Some h -> Hashtbl.mem h j | None -> false

let mem_edge t i j = dag_mem t i j || Hashtbl.mem t.back (i, j)
let ord t n = Hashtbl.find t.ord n

let insert_dag t i j =
  Hashtbl.replace (adj t.succ i) j ();
  Hashtbl.replace (adj t.pred j) i ()

exception Cycle

(* nodes reachable from [start] along DAG edges within ord < ub;
   raises [Cycle] on reaching [target] (whose ord is ub) *)
let discover_forward t ~target ~ub start =
  let seen = Hashtbl.create 8 in
  let rec go n =
    Hashtbl.replace seen n ();
    match Hashtbl.find_opt t.succ n with
    | None -> ()
    | Some h ->
        Hashtbl.iter
          (fun k () ->
            if k = target then raise Cycle;
            if ord t k < ub && not (Hashtbl.mem seen k) then go k)
          h
  in
  go start;
  seen

(* nodes reaching [start] along DAG edges within ord > lb *)
let discover_backward t ~lb start =
  let seen = Hashtbl.create 8 in
  let rec go n =
    Hashtbl.replace seen n ();
    match Hashtbl.find_opt t.pred n with
    | None -> ()
    | Some h ->
        Hashtbl.iter (fun k () -> if ord t k > lb && not (Hashtbl.mem seen k) then go k) h
  in
  go start;
  seen

let rec add_edge t i j =
  (* aborted processes left no effects and never rejoin: such edges would
     be filtered by every query, so never store them *)
  if i <> j && status t i <> Aborted && status t j <> Aborted && not (mem_edge t i j)
  then begin
    t.sorted_edges <- None;
    ensure_node t i;
    ensure_node t j;
    let oi = ord t i and oj = ord t j in
    if oi < oj then insert_dag t i j
    else
      (* the edge runs against the order: discover the affected region
         (forward from j, backward from i, both bounded by [oj, oi]) and
         reallocate its index pool so the region becomes order-consistent *)
      match discover_forward t ~target:i ~ub:oi j with
      | exception Cycle -> Hashtbl.replace t.back (i, j) ()
      | fwd ->
          let bwd = discover_backward t ~lb:oj i in
          let by_ord seen =
            Hashtbl.fold (fun n () acc -> n :: acc) seen []
            |> List.sort (fun a b -> compare (ord t a) (ord t b))
          in
          let chain = by_ord bwd @ by_ord fwd in
          let pool = List.sort compare (List.map (ord t) chain) in
          List.iter2 (fun n o -> Hashtbl.replace t.ord n o) chain pool;
          insert_dag t i j
  end

and mark_aborted t pid =
  Hashtbl.replace t.status pid Aborted;
  t.sorted_edges <- None;
  (* aborted processes left no effects: drop their edges *)
  (match Hashtbl.find_opt t.succ pid with
  | Some h ->
      Hashtbl.iter (fun k () -> Hashtbl.remove (adj t.pred k) pid) h;
      Hashtbl.reset h
  | None -> ());
  (match Hashtbl.find_opt t.pred pid with
  | Some h ->
      Hashtbl.iter (fun k () -> Hashtbl.remove (adj t.succ k) pid) h;
      Hashtbl.reset h
  | None -> ());
  (* with edges gone, parked cycle-closing edges may have become
     insertable: retry them all (the table is almost always empty) *)
  if Hashtbl.length t.back > 0 then begin
    let parked =
      Hashtbl.fold (fun e () acc -> e :: acc) t.back [] |> List.sort compare
    in
    Hashtbl.reset t.back;
    List.iter (fun (i, j) -> if i <> pid && j <> pid then add_edge t i j) parked
  end

let all_edges_unsorted t =
  let acc = Hashtbl.fold (fun e () acc -> e :: acc) t.back [] in
  Hashtbl.fold
    (fun i h acc -> Hashtbl.fold (fun j () acc -> (i, j) :: acc) h acc)
    t.succ acc

let edges t =
  match t.sorted_edges with
  | Some l -> l
  | None ->
      let l = List.sort compare (all_edges_unsorted t) in
      t.sorted_edges <- Some l;
      l

(* Committed processes stay in the cycle check: their serialization
   position is fixed, so a cycle through them is just as fatal.  Only
   aborted processes (whose effects were compensated) drop out. *)
let would_cycle_reference t extra =
  let gone pid = status t pid = Aborted in
  let es =
    List.filter
      (fun (i, j) -> (not (gone i)) && not (gone j))
      (extra @ all_edges_unsorted t)
  in
  Tpm_core.Digraph.has_cycle (Tpm_core.Digraph.make ~nodes:[] ~edges:es)

let would_cycle_incremental t extra =
  (* a parked edge means the stored graph is already cyclic *)
  if Hashtbl.length t.back > 0 then true
  else begin
    let gone pid = status t pid = Aborted in
    let extra =
      List.filter
        (fun (i, j) -> i <> j && (not (gone i)) && (not (gone j)) && not (dag_mem t i j))
        extra
    in
    let ordv n = Option.value ~default:max_int (Hashtbl.find_opt t.ord n) in
    if List.for_all (fun (i, j) -> ordv i < ordv j) extra then
      (* every extra edge runs forward in the maintained order, and so
         does every stored edge: the union is acyclic *)
      false
    else begin
      (* any cycle must traverse an order-violating extra edge (stored
         and forward extra edges strictly increase ord): 3-color DFS over
         DAG ∪ extra from the tails of the violating edges *)
      let xsucc = Hashtbl.create 8 in
      List.iter
        (fun (i, j) ->
          Hashtbl.replace xsucc i (j :: Option.value ~default:[] (Hashtbl.find_opt xsucc i)))
        extra;
      let color = Hashtbl.create 16 in
      let exception Found in
      let rec visit n =
        match Hashtbl.find_opt color n with
        | Some `Gray -> raise Found
        | Some `Black -> ()
        | None ->
            Hashtbl.replace color n `Gray;
            (match Hashtbl.find_opt t.succ n with
            | Some h -> Hashtbl.iter (fun k () -> visit k) h
            | None -> ());
            List.iter visit (Option.value ~default:[] (Hashtbl.find_opt xsucc n));
            Hashtbl.replace color n `Black
      in
      try
        List.iter (fun (i, j) -> if ordv i >= ordv j then visit i) extra;
        false
      with Found -> true
    end
  end

let would_cycle t extra =
  let v = would_cycle_incremental t extra in
  if t.check then begin
    let r = would_cycle_reference t extra in
    if v <> r then
      failwith (Printf.sprintf "Deps.would_cycle: incremental=%b reference=%b" v r)
  end;
  v

(* Reverse reachability from [pid] over exactly the edges the reference
   implementation kept: (i, j) participates iff [live i || j = pid] —
   committed processes relay only as the last hop into [pid]. *)
let uncommitted_preds t pid =
  let seen = Hashtbl.create 8 in
  Hashtbl.replace seen pid ();
  let acc = ref [] in
  let preds_of j =
    let base =
      match Hashtbl.find_opt t.pred j with
      | Some h -> Hashtbl.fold (fun i () l -> i :: l) h []
      | None -> []
    in
    if Hashtbl.length t.back = 0 then base
    else Hashtbl.fold (fun (bi, bj) () l -> if bj = j then bi :: l else l) t.back base
  in
  let rec go j =
    List.iter
      (fun i ->
        if (live t i || j = pid) && not (Hashtbl.mem seen i) then begin
          Hashtbl.replace seen i ();
          if live t i then acc := i :: !acc;
          go i
        end)
      (preds_of j)
  in
  go pid;
  List.sort compare !acc

(* every stored successor of [pid], parked cycle-closing edges included —
   the scheduler's combined-graph (deps ∪ latent base) DFS walks the live
   tables instead of copying the adjacency *)
let iter_succs t pid f =
  (match Hashtbl.find_opt t.succ pid with
  | Some h -> Hashtbl.iter (fun j () -> f j) h
  | None -> ());
  if Hashtbl.length t.back > 0 then
    Hashtbl.iter (fun (bi, bj) () -> if bi = pid then f bj) t.back

let succs t pid =
  let l = ref [] in
  iter_succs t pid (fun j -> l := j :: !l);
  !l

(* GC for parked cycle-closing edges both of whose endpoints terminated.
   Such an edge records a serialization-order violation that is now pure
   history: a terminated process never gains in-edges again (admission and
   completion edges always target a live process), so no *new* cycle can
   route through it — but while parked it forces [would_cycle] to answer
   [true] for every admission, wedging a long-lived server.  Edges with a
   live endpoint are kept: they still constrain future admissions.
   (Aborted endpoints never reach here — [mark_aborted] already drops
   their edges.)  Returns the number of edges dropped. *)
let compact t =
  if Hashtbl.length t.back = 0 then 0
  else begin
    let dead pid = status t pid <> Live in
    let victims =
      Hashtbl.fold
        (fun (i, j) () acc -> if dead i && dead j then (i, j) :: acc else acc)
        t.back []
    in
    if victims <> [] then begin
      List.iter (fun e -> Hashtbl.remove t.back e) victims;
      t.sorted_edges <- None
    end;
    List.length victims
  end

let live_succs t pid =
  let base =
    match Hashtbl.find_opt t.succ pid with
    | Some h -> Hashtbl.fold (fun j () l -> j :: l) h []
    | None -> []
  in
  let all =
    if Hashtbl.length t.back = 0 then base
    else Hashtbl.fold (fun (bi, bj) () l -> if bi = pid then bj :: l else l) t.back base
  in
  List.filter (live t) all |> List.sort_uniq compare

let order t =
  Hashtbl.fold
    (fun n o acc -> if status t n <> Aborted then (o, n) :: acc else acc)
    t.ord []
  |> List.sort compare |> List.map snd

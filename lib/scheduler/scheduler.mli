(** The transactional process scheduler: an online protocol guaranteeing
    prefix-reducible (PRED) schedules (paper, Sections 3.4–3.5).

    Processes are submitted and executed over simulated transactional
    subsystems ({!Tpm_subsys.Rm}) under a discrete-event clock.  The
    scheduler enforces, per the paper:

    - {b serializability}: a conflicting activity is only admitted if the
      process dependency graph stays acyclic;
    - {b Lemma 1}: a non-compensatable activity of [P_j] does not commit
      while a process [P_i] with a conflicting earlier activity is still
      uncommitted.  Depending on {!mode}, the activity is delayed entirely
      ([Conservative]), or executed with its subsystem commit {e deferred}
      and decided by two-phase commit once the predecessors commit
      ([Deferred]), or additionally admitted immediately when the paper's
      quasi-commit condition of figure 9 holds ([Quasi]);
    - {b Lemmas 2–3}: recovery executes compensations in reverse order of
      their originals and before conflicting retriable completion
      activities (via {!Tpm_core.Completed.completion_order});
    - {b guaranteed termination}: failed activities trigger alternative
      branches; aborts of processes in [F-REC] terminate through the
      retriable forward path; aborts of dependents cascade when a
      compensation would otherwise conflict (the CIM scenario of
      Section 2.2).

    Every effect is written ahead to the {!Tpm_wal.Wal}; {!recover} replays
    the log after a crash and finishes every interrupted process. *)

(** Handling of non-compensatable activities with uncommitted conflicting
    predecessors (Lemma 1). *)
type mode =
  | Conservative  (** delay the activity until all predecessors committed *)
  | Deferred
      (** execute it, defer its subsystem commit, decide by 2PC when the
          predecessors commit (the paper's protocol) *)
  | Quasi
      (** [Deferred], plus immediate commit when the quasi-commit condition
          of figure 9 holds (predecessors forward-recoverable with
          conflict-free completions) *)

(** Retry policy for transient invocation failures (injected failures,
    timeouts, outage polls): capped exponential backoff with optional
    jitter.  Attempt [n] waits [min cap (base * multiplier^(n-1))],
    multiplied by a factor drawn uniformly from [1 - jitter, 1 + jitter]
    (the draw is skipped at [jitter = 0], keeping default runs
    bit-identical to jitter-free ones). *)
type backoff = {
  base : float;
  multiplier : float;
  cap : float;
  jitter : float;  (** in [0, 1); 0 disables jitter *)
  max_attempts : int option;
      (** transient-failure attempts granted to a {e non-retriable}
          activity before the scheduler degrades to the next alternative
          branch; [None] derives [max_failures - 1] from the activity's
          resource manager — strictly below the finite retry bound of
          Definition 3, so a persistently failing pivot is decided by
          degradation rather than by the bound's forced success.
          Retriables are unaffected: they retry until they succeed. *)
}

val default_backoff : backoff
(** [base 0.5, multiplier 2, cap 8, no jitter, derived max_attempts] —
    the first retry waits exactly the historical fixed backoff. *)

(** Which implementation decides admissions.  Both compute identical
    decisions; they differ only in cost. *)
type admission_engine =
  | Incremental
      (** interned services, conflict bitmatrix, cached future/occurrence
          bitsets, Pearce–Kelly incremental cycle detection (default) *)
  | Reference
      (** the pre-optimization path: string conflict tests over the raw
          spec and full-graph cycle checks — the oracle and the "old" arm
          of bench P11 *)
  | Checked
      (** run both on every admission and [failwith] on any divergence in
          the decision or the recorded dependency edges (differential
          testing; also cross-checks every [Deps.would_cycle] verdict) *)

type config = {
  mode : mode;
  exact_admission : bool;
      (** ablation: additionally verify, per admission, that the extended
          history remains reducible — the literal "consider the completed
          schedule" rule of Section 3.5.  Exact but expensive. *)
  naive_sr : bool;
      (** baseline comparator: serializability-only scheduling that ignores
          recovery (no Lemma-1 gating, no completion anticipation) — it
          reproduces the figure-1 anomaly and its histories may violate
          PRED. *)
  weak_order : bool;
      (** Section 3.6: conflicting activities of different processes may
          execute overlapping in their subsystems; the subsystem enforces
          the weak (intended) order on their commits, and a retriable
          re-invocation restarts the dependent local transaction.  Off by
          default (strong order: sequential execution). *)
  order_enforcement : bool;
      (** Section 3.6 end to end: realize the weak order through
          per-subsystem local executors ({!Tpm_composite.Enforce}) — each
          activity opens a local transaction at dispatch, its local commit
          (the subsystem call) is {e held} until every prescribed
          predecessor's local transaction committed, and a predecessor's
          local abort restarts the dependent local transactions (not
          their processes).  Also lets dependents overlap {e prepared}
          (2PC-pending) predecessors; the admission edges order them.
          Only meaningful together with [weak_order].  The live local
          schedules are exposed via {!local_histories}.  Off by
          default. *)
  seed : int;
  service_time : string -> float;  (** mean duration of a service invocation *)
  stochastic_times : bool;  (** exponential durations instead of deterministic *)
  backoff : backoff;  (** retry policy for transient failures *)
  invocation_timeout : float option;
      (** client-side timeout: an invocation whose (latency-spiked)
          duration exceeds it is abandoned at the timeout and counted as a
          failed attempt.  [None] (default) waits invocations out. *)
  outage_degrade : bool;
      (** degrade a non-retriable activity to its next alternative branch
          as soon as its subsystem reports an outage ([true], default);
          [false] waits the outage out retrying — the ablation arm of the
          robustness experiments. *)
  twopc_retransmit : float;
      (** retransmission period of the 2PC coordinator: unanswered PREPARE
          and DECISION messages are re-sent this often (default 1.0).  Only
          observable under message faults — a fault-free exchange completes
          instantly in virtual time. *)
  twopc_inquiry : float option;
      (** the participant-side termination protocol: a resource manager
          left in doubt this long re-inquires the coordinator until the
          decision arrives (default [Some 3.0]).  [None] disables
          inquiries; the participant then waits passively for coordinator
          retransmission — the ablation arm of the message-fault
          experiments. *)
  admission_engine : admission_engine;
      (** which admission implementation runs (default [Incremental]) *)
  admission_clock : (unit -> float) option;
      (** wall-clock source for the ["admission_time"] metric (e.g.
          [Unix.gettimeofday]); [None] (default) skips the measurement *)
  wal_sync : Tpm_wal.Wal.sync_policy;
      (** durability of the mirrored log ([wal_path]): [Sync_each]
          (default) fsyncs every append; [Group w] coalesces concurrent
          durable appends — 2PC commit decisions, process commits — into
          one fsync per [w]-long batch window, with DECISION messages
          held until their record's fsync; [No_sync] never fsyncs.
          Irrelevant without [wal_path]. *)
  wal_segment_bytes : int;
      (** segment roll size of the mirrored log (default 1 MiB) *)
  debug_no_lemma1 : bool;
      (** MUTATION FLAG, tests only: skip the Lemma-1 gating of
          non-compensatable activities entirely, committing them
          immediately even while conflicting predecessors are uncommitted.
          Exists so the explorer's self-test can prove it detects the
          resulting PRED violation; never set it in real configurations. *)
}

val default_config : config
(** [Deferred] mode, seed 1, unit service times, deterministic,
    {!default_backoff}, no timeout, outage degradation on, 2PC
    retransmission every 1.0, in-doubt inquiry after 3.0. *)

type t

val create : ?config:config -> ?faults:Tpm_sim.Faults.t ->
  ?choice:Tpm_sim.Choice.t ->
  ?tracer:Tpm_obs.Obs.Tracer.t -> ?wal_path:string ->
  spec:Tpm_core.Conflict.t -> rms:Tpm_subsys.Rm.t list -> unit -> t
(** [faults] (default {!Tpm_sim.Faults.none}) is installed into every
    registered resource manager and consulted by the scheduler for latency
    spikes and the WAL crash trigger.

    [choice] (default {!Tpm_sim.Choice.passive}) is the controlled-
    nondeterminism strategy, installed into every resource manager and
    the message bus: under the passive strategy all randomness comes from
    the PRNGs exactly as before (bit-identical streams); under a driven
    strategy failure injection, message delivery order and — with
    {!Tpm_sim.Faults.t} [crash_explore] — crash placement become recorded
    choice points the explorer enumerates.

    [tracer] is this scheduler's private observability plane: admissions
    (with explain payloads), dispatches, occurrences, backoff waits,
    deflections, 2PC bus traffic, WAL appends and recovery steps are
    emitted as typed {!Tpm_obs.Obs.event}s on the simulation's virtual
    clock.  Defaults to {!Tpm_obs.Obs.Tracer.disabled} — unless the
    [TPM_TRACE] environment variable is set non-empty (and not ["0"]),
    which enables a stderr pretty-printing tracer (the compat form of
    the removed global [trace] flag).
    @raise Invalid_argument if two resource managers share a name. *)

val submit :
  t ->
  ?at:float ->
  ?args_of:(Tpm_core.Activity.t -> Tpm_kv.Value.t) ->
  ?groups:Tpm_composite.Compose.group list ->
  Tpm_core.Process.t ->
  unit
(** Registers a process for execution at virtual time [at] (default: now).

    [groups] declares subprocesses (Section 3.6, multi-level
    composition): each group is a prec-convex set of the process's
    activities that admits as ONE activity at the parent level — the
    union of its members' conflict rows is checked (and its footprint
    claimed) atomically at the first member's admission; the remaining
    members then dispatch without further parent-level admission, driven
    by the process's own precedence order (the inner engine).
    @raise Invalid_argument on duplicate pids, activities whose
    subsystem is unknown, or an ill-formed grouping
    ({!Tpm_composite.Compose.validate}). *)

val request_abort : t -> ?at:float -> int -> unit
(** External abort [A_i]: the process terminates through its completion. *)

val run : ?until:float -> t -> unit
(** Drives the simulation until quiescence (or the time horizon). *)

val now : t -> float

val sim : t -> Tpm_sim.Des.t
(** The scheduler's discrete-event simulation.  The serving layer
    ({!Tpm_server.Server}) schedules its own arrival, shed-scan and
    drain events on the same virtual clock, so server runs stay
    deterministic and explorable. *)

val live_count : t -> int
(** Processes submitted but not yet terminal — the server's in-flight
    window occupancy. *)

val service_pressure : t -> string -> int
(** How many live processes hold state conflicting with the service: a
    committed occurrence (tested against the cached conflict closure) or
    a conflicting in-flight invocation.  The serving layer's saturation
    probe for the [Degrade] overload policy. *)

val subsystems : t -> string list
(** Names of the registered resource managers, sorted — the server
    validates untrusted submissions against it before admission. *)

val set_subsystem_observer : t -> (subsystem:string -> ok:bool -> unit) -> unit
(** Installs an availability observer: called with [ok:false] on every
    [Rm.Unavailable] answer and client-side invocation timeout, and
    [ok:true] on every successful (committed or prepared) answer.  The
    server's per-subsystem circuit breakers feed on it. *)

val history : t -> Tpm_core.Schedule.t
(** The schedule emitted so far: committed occurrences, compensations,
    completion activities, and terminal events. *)

val serialization_order : t -> int list
(** The maintained topological order of the process dependency graph
    (aborted processes excluded) — a valid serialization order at any
    instant, read off the Pearce–Kelly ordering in O(n log n) without a
    graph traversal. *)

val status : t -> int -> Tpm_core.Schedule.status
val finished : t -> bool
(** All submitted processes reached a terminal state. *)

val local_histories : t -> (string * Tpm_composite.Local.t) list
(** The enforcement layer's live per-subsystem local schedules, sorted
    by subsystem name — what the {!Tpm_composite.Fork} and
    {!Tpm_composite.Local} checkers consume.  They record the {e
    forward} weak-order transactions only (one per activity attempt
    chain: footprint at dispatch, commit at the subsystem call,
    restarts as abort + re-emission); compensations and completion
    activities are deliberately outside them.  Empty unless
    [order_enforcement] is on. *)

val enforcement_held : t -> int
(** Local commits the enforcement layer delayed at least once. *)

val metrics : t -> Tpm_sim.Metrics.t
val wal_records : t -> Tpm_wal.Wal.record list

val tracer : t -> Tpm_obs.Obs.Tracer.t
(** The scheduler's tracer (possibly {!Tpm_obs.Obs.Tracer.disabled}).
    Close it after the run to flush file sinks. *)

val forensics : ?n:int -> Format.formatter -> t -> unit
(** Failure forensics: the last [n] (default 40) ring-buffer trace
    events plus the metrics snapshot — dumped by the stress and
    crash-sweep harnesses on any invariant failure so CI logs alone
    suffice to diagnose it. *)

val msg_deliveries : t -> int
(** 2PC messages delivered so far on the scheduler's bus — the axis along
    which the crash sweep places delivery-point crashes. *)

val state_fingerprint : t -> string
(** Canonical rendering of the explorable state: per-process phase,
    in-flight and pending work, execution position, the rollback queue,
    attempt counters, every subsystem's {!Tpm_subsys.Rm.fingerprint}, the
    2PC coordinator's protocol state ({!Tpm_twopc.Coordinator.fingerprint})
    and the bus's undelivered message pool.  Equal fingerprints mean the
    two states behave identically under identical future decisions — the
    explorer's state-deduplication key.  Virtual time is deliberately
    excluded (states differing only in clock value are merged; sound for
    the time-independent oracles the explorer checks). *)

val checkpoint : t -> unit
(** Appends a checkpoint naming every terminated process; {!Tpm_wal.Wal.compact}
    can then drop their records from the log.  For every paged
    resource-manager store it also flushes what the durable marker
    covers and logs a [Dirty_pages] snapshot, bounding page redo after a
    crash to the snapshot's minimum rec_lsn. *)

val checkpoint_fuzzy : ?window:float -> t -> unit
(** Fuzzy checkpoint: appends [Ckpt_begin] now and seals the span with a
    [Ckpt_end] after [window] (default 0.5) of virtual time, naming the
    processes closed by then.  Appends keep flowing in between; a crash
    before the end record leaves the span incomplete and compaction falls
    back to the previous complete checkpoint.  Paged stores get the same
    flush-then-[Dirty_pages] treatment as {!checkpoint}, logged inside
    the span just before [Ckpt_end]. *)

val wal : t -> Tpm_wal.Wal.t
(** The scheduler's write-ahead log (for stats, sync and crash imaging
    by test/sweep harnesses). *)

val crash : t -> Tpm_wal.Wal.record list
(** Simulates a scheduler failure: drops all volatile state and returns
    the persistent log.  Paged stores share the host's fate — their page
    files are frozen at the crash instant and must be rebuilt with
    {!Tpm_kv.Store.open_paged} plus {!Tpm_wal.Recovery.kv_redo}.
    In-memory subsystems survive (they are independent
    transactional systems); in-doubt prepared invocations stay pending
    until recovery decides them. *)

val is_crashed : t -> bool
(** True once {!crash} was called or the fault plan's
    [crash_after_appends] trigger fired.  A crashed scheduler stops
    logging and dispatching; drive {!run} to quiescence, then feed
    {!wal_records} to {!recover}. *)

val recover :
  ?config:config ->
  ?amnesia:bool ->
  ?tracer:Tpm_obs.Obs.Tracer.t ->
  ?groups:(int * Tpm_composite.Compose.group list) list ->
  spec:Tpm_core.Conflict.t ->
  rms:Tpm_subsys.Rm.t list ->
  procs:Tpm_core.Process.t list ->
  Tpm_wal.Wal.record list ->
  (t, string) result
(** Builds a new scheduler from the log: decides in-doubt prepared
    invocations at the subsystems (presumed abort — except tokens whose
    coordinator durably logged [Coord_committed], whose lost DECISION is
    re-delivered as a commit), replays the pre-crash events into the new
    history (which is therefore self-contained), and schedules the
    completion of every interrupted process (the group abort of
    Definition 8).  Run it with {!run} to finish recovery.

    [amnesia] declares the coordinator's log records lost: recovery then
    ignores them and resolves in-doubt tokens by cooperative termination —
    commit iff a sibling resource manager remembers the commit decision,
    presumed abort otherwise. *)

val activity_token : pid:int -> act:int -> int
(** The deterministic subsystem token of an activity occurrence (stable
    across crashes, so recovery can address prepared invocations). *)

(**/**)

val probe_admission : t -> admission_engine -> pid:int -> act:int -> unit
(** Computes and discards the pure admission decision of the given engine
    on the current state — nothing is mutated, no dependency edges are
    recorded.  Benchmarking hook: bench P11 times both engines on
    identical mid-run states this way (running the reference engine live
    at large scales is exactly what the optimization removed).
    @raise Not_found if [pid] is unknown, [Invalid_argument] if [act] is
    not an activity of the process. *)

val latent_self_check : t -> (unit, string) result
(** Testing hook for the incrementally maintained latent base: rebuilds
    the candidate-independent base (edges, per-source conflict closures)
    from scratch with the one-shot algorithm and compares it against the
    maintained state, including the combined-graph order's cyclicity
    verdict.  [Error msg] names the first divergence. *)

val gc_deps : t -> int
(** Drop parked cycle-closing dependency edges both of whose endpoints
    terminated (see {!Deps.compact}); returns the number dropped.  Safe
    at any point; intended for long-lived serving loops. *)

val dump : Format.formatter -> t -> unit
(** One line of internal state per process (debugging aid). *)

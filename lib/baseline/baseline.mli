(** Baseline comparators for the evaluation:

    - {!serial_makespan} — strictly serial execution: every process runs
      alone; the makespan is the sum of the individual makespans.  The
      lower bound on safety, the upper bound on time.
    - {!naive_sr_config} — classical serializability-only scheduling
      (Section 1's "analyzing concurrency control without considering
      recovery"): fast, but its histories may be unrecoverable; the
      benchmarks count the PRED violations it produces.
    - {!conservative_config} — Lemma 1 applied by delaying (no deferred
      2PC commits).
    - {!run} — real classical activity schedulers (strict 2PL with
      deadlock detection and victim abort; timestamp ordering with
      wts/rts validation aborts) over the same {!Tpm_subsys.Rm}
      substrate, treating a whole process as one transaction.  Both
      record per-subsystem local schedules for differential checking
      against {!Tpm_composite.Local.commit_order_serializable}. *)

val serial_makespan :
  make_rms:(unit -> Tpm_subsys.Rm.t list) ->
  spec:Tpm_core.Conflict.t ->
  ?config:Tpm_scheduler.Scheduler.config ->
  ?args_of:(Tpm_core.Activity.t -> Tpm_kv.Value.t) ->
  Tpm_core.Process.t list ->
  float
(** Runs every process in its own scheduler over fresh resource managers
    and sums the makespans. *)

val naive_sr_config : Tpm_scheduler.Scheduler.config
val conservative_config : Tpm_scheduler.Scheduler.config
val deferred_config : Tpm_scheduler.Scheduler.config
val quasi_config : Tpm_scheduler.Scheduler.config
val weak_order_config : Tpm_scheduler.Scheduler.config

(** Which classical protocol {!run} schedules with. *)
type kind =
  | Two_pl  (** strict two-phase locking, conflict-relation granularity *)
  | Tso  (** timestamp ordering with wts/rts validation *)

type result = {
  makespan : float;
  finished : bool;  (** all processes reached a terminal state *)
  committed : int;
  aborted : int;  (** permanently aborted (restart budget exhausted) *)
  restarts : int;  (** whole-process rollback + restart events *)
  deadlocks : int;  (** 2PL: waits-for cycles broken *)
  validation_aborts : int;  (** TSO: wts/rts validation failures *)
  compensations : int;
  invocations : int;  (** committed forward invocations *)
  locals : (string * Tpm_composite.Local.t) list;
      (** per-subsystem local schedules, for the differential oracle *)
}

val run :
  kind ->
  spec:Tpm_core.Conflict.t ->
  rms:Tpm_subsys.Rm.t list ->
  ?service_time:float ->
  ?backoff:float ->
  ?retry_delay:float ->
  ?max_restarts:int ->
  ?horizon:float ->
  ?submit_at:(int -> float) ->
  Tpm_core.Process.t list ->
  result
(** Runs the given processes to termination under the chosen classical
    protocol.  A process is one transaction: under 2PL every activity
    locks its service (at the granularity of the conflict relation) until
    the whole process finishes, waits-for cycles abort the youngest
    rollbackable member; under TSO processes are timestamped at
    (re)submission and every activity validates against per-service
    wts/rts tables, aborting the process on out-of-order access.  Aborted
    processes roll back through the engine's completion (compensations
    run via {!Tpm_subsys.Rm.compensate}; a committed pivot forces forward
    completion instead) and restart after [backoff] (growing linearly
    with the restart count) with a fresh timestamp, up to [max_restarts].
    Injected invocation failures are retried in place after
    [retry_delay]. *)

val run_2pl :
  spec:Tpm_core.Conflict.t ->
  rms:Tpm_subsys.Rm.t list ->
  ?service_time:float ->
  ?backoff:float ->
  ?retry_delay:float ->
  ?max_restarts:int ->
  ?horizon:float ->
  ?submit_at:(int -> float) ->
  Tpm_core.Process.t list ->
  result

val run_tso :
  spec:Tpm_core.Conflict.t ->
  rms:Tpm_subsys.Rm.t list ->
  ?service_time:float ->
  ?backoff:float ->
  ?retry_delay:float ->
  ?max_restarts:int ->
  ?horizon:float ->
  ?submit_at:(int -> float) ->
  Tpm_core.Process.t list ->
  result

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Local = Tpm_composite.Local
module Rm = Tpm_subsys.Rm
module Des = Tpm_sim.Des

let serial_makespan ~make_rms ~spec ?(config = Scheduler.default_config)
    ?(args_of = fun _ -> Tpm_kv.Value.Nil) procs =
  List.fold_left
    (fun total proc ->
      let t = Scheduler.create ~config ~spec ~rms:(make_rms ()) () in
      Scheduler.submit t ~args_of proc;
      Scheduler.run t;
      total +. Scheduler.now t)
    0.0 procs

let naive_sr_config = { Scheduler.default_config with naive_sr = true }
let conservative_config = { Scheduler.default_config with mode = Scheduler.Conservative }
let deferred_config = { Scheduler.default_config with mode = Scheduler.Deferred }
let quasi_config = { Scheduler.default_config with mode = Scheduler.Quasi }
let weak_order_config = { Scheduler.default_config with weak_order = true }

(* ------------------------------------------------------------------ *)
(* Classical activity schedulers over the same Rm substrate.

   Both treat a whole process as one transaction whose operations are its
   activity invocations, scheduled at the granularity of the conflict
   relation: the lockable/timestamped items are the service names, an
   activity on service [s] "writes" [s] (when [s] self-conflicts) and
   "reads" every other service conflicting with [s].  Strict 2PL grants
   an activity only while no other live process holds a conflicting
   service, holds everything to the end of the process, detects waits-for
   cycles and aborts the youngest rollbackable victim; TSO stamps each
   process at (re)start and validates every access against the per-item
   wts/rts tables, aborting the process on any out-of-order access.

   Aborted processes are rolled back through the engine's completion
   C(P) — compensations run against the subsystems via {!Rm.compensate},
   committed pivots force a forward completion instead — and restarted
   after backoff, exactly the paper's comparison point: the classical
   protocols pay whole-process rollbacks and lock-to-the-end waits where
   the transactional process scheduler commits activities early.

   Injected invocation failures are retried in place up to the Rm's
   finite bound; the classical baselines have no alternative paths, so
   [Execution.fail] is never consulted.  Every subsystem interaction is
   recorded as a local transaction (ops at dispatch, local commit at
   completion) so a run's per-subsystem histories can be checked against
   {!Local.commit_order_serializable} — the differential oracle. *)

type kind = Two_pl | Tso

type result = {
  makespan : float;
  finished : bool;  (** all processes reached a terminal state *)
  committed : int;
  aborted : int;  (** permanently aborted (restart budget exhausted) *)
  restarts : int;  (** whole-process rollback + restart events *)
  deadlocks : int;  (** 2PL: waits-for cycles broken *)
  validation_aborts : int;  (** TSO: wts/rts validation failures *)
  compensations : int;
  invocations : int;  (** committed forward invocations (attempts excluded) *)
  locals : (string * Local.t) list;  (** per-subsystem local schedules *)
}

type doom = Restart | Terminal

type pstate = {
  pid : int;
  proc : Process.t;
  mutable exec : Execution.t;
  mutable arrived : bool;
  mutable finished_p : bool;
  mutable ts : int;  (* TSO timestamp; also the 2PL age for victim choice *)
  mutable epoch : int;  (* bumped on rollback; stale timers check it *)
  mutable inflight : (int * int) list;  (* (act, token), dispatch order *)
  mutable tokens : (int * int) list;  (* (act, token) newest first, incl. inflight *)
  mutable held : Bitset.t;  (* 2PL: service ids locked *)
  mutable blocked : (int * int) list;  (* (act, wanted sid) from the last pump *)
  mutable attempts : (int, int) Hashtbl.t;
  mutable restarts_p : int;
  mutable doomed : doom option;
  mutable parked : bool;  (* in restart backoff: no dispatching *)
}

let run kind ~spec ~rms ?(service_time = 1.0) ?(backoff = 0.4) ?(retry_delay = 0.1)
    ?(max_restarts = 25) ?(horizon = 100000.0) ?(submit_at = fun _ -> 0.0) procs =
  let comp = Conflict.Compiled.make spec in
  let sim = Des.create () in
  let token_ctr = ref 0 in
  let ts_ctr = ref 0 in
  let restarts = ref 0 in
  let deadlocks = ref 0 in
  let validation_aborts = ref 0 in
  let compensations = ref 0 in
  let invocations = ref 0 in
  let rm_of =
    let tbl = Hashtbl.create 8 in
    List.iter (fun rm -> Hashtbl.replace tbl (Rm.name rm) rm) rms;
    fun subsystem ->
      match Hashtbl.find_opt tbl subsystem with
      | Some rm -> rm
      | None -> invalid_arg ("Baseline.run: unknown subsystem " ^ subsystem)
  in
  (* per-subsystem local schedules, built in emission order *)
  let local_evs : (string, Local.event list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun rm -> Hashtbl.replace local_evs (Rm.name rm) (ref [])) rms;
  let emit subsystem ev =
    let r = Hashtbl.find local_evs subsystem in
    r := ev :: !r
  in
  let sid_of service = Conflict.Compiled.intern comp service in
  let item sid = Conflict.Compiled.name comp sid in
  let self_conf sid = Bitset.mem (Conflict.Compiled.row comp sid) sid in
  let conf_others sid =
    List.filter (fun s' -> s' <> sid) (Bitset.elements (Conflict.Compiled.row comp sid))
  in
  (* the op model: own service written (when self-conflicting), every
     other conflicting service read — this encodes exactly the declared
     conflict relation as item-level r/w conflicts *)
  let ops_of ~tx sid =
    Local.Op { Local.tx; item = item sid; mode = (if self_conf sid then `Write else `Read) }
    :: List.map (fun s' -> Local.Op { Local.tx; item = item s'; mode = `Read }) (conf_others sid)
  in
  let emit_ops subsystem ~tx sid = List.iter (emit subsystem) (ops_of ~tx sid) in
  (* TSO timestamp tables over service ids *)
  let wts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let get tbl sid = Option.value ~default:0 (Hashtbl.find_opt tbl sid) in
  let bump tbl sid ts = if ts > get tbl sid then Hashtbl.replace tbl sid ts in
  let fresh_ts () =
    incr ts_ctr;
    !ts_ctr
  in
  let ps =
    List.mapi
      (fun i proc ->
        {
          pid = Process.pid proc;
          proc;
          exec = Execution.start proc;
          arrived = submit_at i <= 0.0;
          finished_p = false;
          ts = 0;
          epoch = 0;
          inflight = [];
          tokens = [];
          held = Bitset.create ();
          blocked = [];
          attempts = Hashtbl.create 8;
          restarts_p = 0;
          doomed = None;
          parked = false;
        })
      procs
  in
  let live p = p.arrived && not p.finished_p in
  let fresh_token () =
    incr token_ctr;
    !token_ctr
  in
  let token_of p act =
    match List.assoc_opt act p.tokens with
    | Some tok -> tok
    | None -> invalid_arg "Baseline.run: no token for compensated activity"
  in
  (* 2PL: does granting service [sid] to [p] conflict with another
     process's held set? *)
  let lock_blockers p sid =
    let row = Conflict.Compiled.row comp sid in
    List.filter (fun q -> q != p && live q && Bitset.inter_nonempty row q.held) ps
  in
  (* TSO: validate an access by [p] to service [sid]; on success the
     tables are updated (same-timestamp accesses — the process itself —
     always pass) *)
  let tso_validate p sid =
    let ok =
      p.ts >= get rts sid
      && ((not (self_conf sid)) || p.ts >= get wts sid)
      && List.for_all (fun s' -> p.ts >= get wts s') (conf_others sid)
    in
    if ok then begin
      bump wts sid p.ts;
      List.iter (fun s' -> bump rts s' p.ts) (conf_others sid)
    end;
    ok
  in
  let rec pump () =
    List.iter
      (fun p ->
        if live p && p.doomed = None && not p.parked then begin
          p.blocked <- [];
          List.iter
            (fun act ->
              if p.doomed = None && not (List.mem_assoc act p.inflight) then
                try_dispatch p act)
            (List.sort compare (Execution.enabled p.exec))
        end)
      ps;
    check_deadlock ()
  and try_dispatch p act =
    let a = Process.find p.proc act in
    let sid = sid_of a.Activity.service in
    match kind with
    | Two_pl -> (
        match lock_blockers p sid with
        | [] ->
            Bitset.set p.held sid;
            invoke p a sid
        | _ :: _ -> p.blocked <- (act, sid) :: p.blocked)
    | Tso ->
        if tso_validate p sid then invoke p a sid
        else begin
          incr validation_aborts;
          doom p
        end
  and invoke p a sid =
    let act = a.Activity.id.Activity.act in
    let rm = rm_of a.Activity.subsystem in
    let attempt = 1 + Option.value ~default:0 (Hashtbl.find_opt p.attempts act) in
    Hashtbl.replace p.attempts act attempt;
    let token = fresh_token () in
    match Rm.invoke rm ~token ~service:a.Activity.service ~attempt ~now:(Des.now sim) () with
    | Rm.Committed _ ->
        incr invocations;
        emit_ops a.Activity.subsystem ~tx:token sid;
        p.tokens <- (act, token) :: p.tokens;
        p.inflight <- p.inflight @ [ (act, token) ];
        let epoch = p.epoch in
        Des.after sim service_time (fun _ -> if p.epoch = epoch then complete p act token)
    | Rm.Failed | Rm.Blocked _ | Rm.Unavailable ->
        (* an effect-free aborted local transaction; retry in place *)
        emit_ops a.Activity.subsystem ~tx:token sid;
        emit a.Activity.subsystem (Local.Abort token);
        let epoch = p.epoch in
        Des.after sim retry_delay (fun _ ->
            if p.epoch = epoch && not p.finished_p then pump ())
    | Rm.Prepared _ -> assert false
  and complete p act token =
    let a = Process.find p.proc act in
    p.inflight <- List.filter (fun (ac, _) -> ac <> act) p.inflight;
    emit a.Activity.subsystem (Local.Commit token);
    p.exec <- Execution.exec p.exec act;
    if p.doomed <> None then begin
      if p.inflight = [] then rollback p
    end
    else if Execution.can_commit p.exec && p.inflight = [] then begin
      p.exec <- Execution.commit p.exec;
      finish p
    end
    else pump ()
  and finish p =
    p.finished_p <- true;
    Bitset.clear p.held;
    p.blocked <- [];
    pump ()
  and doom p =
    if p.doomed = None then begin
      p.doomed <-
        Some
          (if
             Execution.recovery_state p.exec = Execution.B_rec
             && List.for_all (fun (act, _) -> Activity.compensatable (Process.find p.proc act)) p.tokens
             && p.restarts_p < max_restarts
           then Restart
           else Terminal);
      p.blocked <- [];
      if p.inflight = [] then rollback p
    end
  and rollback p =
    (* apply the completion C(P): compensations of the committed prefix,
       plus — for forward recovery — the retriable completion path *)
    List.iter
      (fun inst ->
        let a = Activity.instance_base inst in
        let rm = rm_of a.Activity.subsystem in
        let sid = sid_of a.Activity.service in
        if Activity.is_inverse inst then begin
          let token = token_of p a.Activity.id.Activity.act in
          (match Rm.compensate rm ~token ~now:(Des.now sim) () with
          | Rm.Committed _ -> ()
          | _ -> invalid_arg "Baseline.run: compensation did not commit");
          incr compensations;
          let tx = fresh_token () in
          emit_ops a.Activity.subsystem ~tx sid;
          (* the completion transaction occupies a service time like any
             other local transaction; emitting its local commit early
             would invert the commit order against in-flight conflicting
             transactions *)
          Des.after sim service_time (fun _ -> emit a.Activity.subsystem (Local.Commit tx))
        end
        else begin
          (* retriable completion activity: runs to commit by definition *)
          let tx = fresh_token () in
          (match
             Rm.invoke rm ~token:tx ~service:a.Activity.service ~attempt:(Rm.max_failures rm)
               ~now:(Des.now sim) ()
           with
          | Rm.Committed _ -> incr invocations
          | _ -> invalid_arg "Baseline.run: completion invocation did not commit");
          emit_ops a.Activity.subsystem ~tx sid;
          Des.after sim service_time (fun _ -> emit a.Activity.subsystem (Local.Commit tx))
        end)
      (Execution.completion p.exec);
    let how = p.doomed in
    p.doomed <- None;
    Bitset.clear p.held;
    p.blocked <- [];
    p.tokens <- [];
    p.epoch <- p.epoch + 1;
    Hashtbl.reset p.attempts;
    match how with
    | Some Restart ->
        incr restarts;
        p.restarts_p <- p.restarts_p + 1;
        p.exec <- Execution.start p.proc;
        p.parked <- true;
        let epoch = p.epoch in
        Des.after sim
          (backoff *. float_of_int p.restarts_p)
          (fun _ ->
            if p.epoch = epoch && not p.finished_p then begin
              p.parked <- false;
              p.ts <- fresh_ts ();
              pump ()
            end);
        pump ()
    | Some Terminal | None ->
        p.exec <- Execution.abort p.exec;
        finish p
  and check_deadlock () =
    (* waits-for graph over the blocked processes; break any cycle by
       aborting its youngest rollbackable member *)
    let edges =
      List.concat_map
        (fun p ->
          if live p && p.blocked <> [] then
            List.concat_map
              (fun (_, sid) -> List.map (fun q -> (p.pid, q.pid)) (lock_blockers p sid))
              p.blocked
          else [])
        ps
    in
    if edges <> [] then begin
      let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
      let g = Digraph.make ~nodes ~edges:(List.sort_uniq compare edges) in
      if Digraph.has_cycle g then begin
        (* victim: youngest (largest ts stamp, then pid) blocked process
           whose rollback is possible, else youngest blocked overall *)
        let blocked_ps = List.filter (fun p -> live p && p.blocked <> []) ps in
        let rollbackable p =
          Execution.recovery_state p.exec = Execution.B_rec
          && List.for_all
               (fun (act, _) -> Activity.compensatable (Process.find p.proc act))
               p.tokens
        in
        let age p = (p.ts, p.pid) in
        let youngest l =
          List.fold_left (fun best p ->
              match best with
              | None -> Some p
              | Some b -> if compare (age p) (age b) > 0 then Some p else best)
            None l
        in
        let victim =
          match youngest (List.filter rollbackable blocked_ps) with
          | Some v -> Some v
          | None -> youngest blocked_ps
        in
        match victim with
        | Some v ->
            incr deadlocks;
            doom v
        | None -> ()
      end
    end
  in
  (* stamp and release the processes at their submission times *)
  List.iteri
    (fun i p ->
      let at = submit_at i in
      if at <= 0.0 then begin
        p.arrived <- true;
        p.ts <- fresh_ts ()
      end
      else
        Des.at sim at (fun _ ->
            p.arrived <- true;
            p.ts <- fresh_ts ();
            pump ()))
    ps;
  pump ();
  Des.run ~until:horizon sim;
  let committed, aborted =
    List.fold_left
      (fun (c, a) p ->
        match Execution.status p.exec with
        | Execution.Finished Execution.Committed -> (c + 1, a)
        | Execution.Finished Execution.Aborted -> (c, a + 1)
        | Execution.Running -> (c, a))
      (0, 0) ps
  in
  {
    makespan = Des.now sim;
    finished = List.for_all (fun p -> p.finished_p) ps;
    committed;
    aborted;
    restarts = !restarts;
    deadlocks = !deadlocks;
    validation_aborts = !validation_aborts;
    compensations = !compensations;
    invocations = !invocations;
    locals =
      List.map
        (fun rm -> (Rm.name rm, Local.make (List.rev !(Hashtbl.find local_evs (Rm.name rm)))))
        rms;
  }

let run_2pl = run Two_pl
let run_tso = run Tso

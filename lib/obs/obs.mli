(** Structured observability: typed trace events stamped with the
    simulation's virtual clock, recorded in a bounded ring buffer and
    fanned out to pluggable sinks.

    The tracer replaces the old global [Scheduler.trace] flag: each
    scheduler owns one, so tracing state cannot leak across instances.
    A {!Tracer.disabled} tracer costs one branch per call site; an
    active ring-only tracer costs two array stores per event (the ring
    is parallel stamp/event arrays, so nothing is allocated beyond the
    event itself). *)

(** The admission verdict recorded in an explain payload. *)
type decision =
  | Invoke  (** admitted for immediate invocation *)
  | Prepare  (** admitted, subsystem commit deferred behind 2PC (Lemma 1) *)
  | Delay of int list  (** delayed behind the listed blocking pids *)

(** Why the admission decision came out the way it did. *)
type reason =
  | Clear  (** no conflicting state anywhere: admit *)
  | Ordered  (** admit; the recorded dependency edges order it *)
  | Busy  (** a conflicting activity is still in flight *)
  | Would_cycle  (** admission would close a dependency cycle *)
  | Conservative_wait  (** Lemma 1, [Conservative] mode: wait for predecessors *)
  | Deferred_prepare  (** Lemma 1: execute now, defer the commit behind 2PC *)
  | Quasi_commit  (** figure 9's quasi-commit condition held: commit immediately *)
  | Exact_reject  (** [exact_admission] ablation: extension not reducible *)

type msg_dir = Send | Deliver | Drop | Duplicate | Retransmit

type event =
  | Admission of {
      pid : int;
      act : int;
      service : string;
      decision : decision;
      reason : reason;
      edges : (int * int) list;  (** dependency edges the admission records *)
    }  (** the explain payload of one admission decision *)
  | Dispatch of { pid : int; act : int; service : string; prepare_only : bool }
  | Occurrence of { pid : int; act : int; service : string; inverse : bool }
  | Prepared of { pid : int; act : int }
  | Commit of int
  | Abort of int
  | Group_abort of int list
  | Backoff of { pid : int; act : int; attempt : int; delay : float }
  | Deflect of { pid : int; act : int; service : string; outage : bool }
      (** a non-retriable activity degraded to its next alternative branch *)
  | Msg of { dir : msg_dir; src : string; dst : string; payload : string Lazy.t }
      (** 2PC bus traffic, including drops, duplicates and retransmissions.
          [payload] is lazy: the pretty-printed message is only rendered
          when a sink or forensics dump actually reads it, so ring-only
          tracing stays cheap. *)
  | Wal_append of { index : int; record : string Lazy.t }
      (** [record] lazy for the same reason as [Msg.payload] *)
  | Wal_fsync of { batch : int }
      (** the log fsynced; [batch] records became durable together (the
          group-commit coalescing observable) *)
  | Wal_salvage of { segment : int; bytes : int }
      (** a salvage load quarantined [bytes] of a damaged segment *)
  | Recovery_step of string
  | Note of string Lazy.t
      (** free-form protocol trace line; lazy for the same reason as
          [Msg.payload] *)
  | Choice of { tag : string; arity : int; chosen : int }
      (** a recorded controlled-nondeterminism decision
          ({!Tpm_sim.Choice} under a driven strategy): which of [arity]
          options the strategy selected at the named choice point *)
  | Arrival of { pid : int }
      (** an open-world submission reached the server front door *)
  | Shed of { pid : int; why : string }
      (** the server refused the submission ([why] is the typed reject /
          expiry reason label) *)
  | Degraded of { pid : int; pruned : int }
      (** the server admitted the submission via its alternative branch,
          pruning [pruned] preferred activities *)
  | Breaker of { subsystem : string; state : string }
      (** a per-subsystem circuit breaker changed state
          (closed / open / half-open) *)
  | Drain of { stage : string }
      (** graceful-drain progress (intake stopped, in-flight settled,
          WAL sealed) *)

val pp_event : Format.formatter -> event -> unit
val pid_of : event -> int option
val kind_label : event -> string
val reason_label : reason -> string

val event_json : float -> event -> string
(** One JSON object (no trailing newline) for a timestamped event. *)

val chrome_json : (float * event) list -> string
(** A Chrome [trace_event] / Perfetto JSON document: one timeline lane
    per process id ([tid] = pid), dispatch/occurrence pairs rendered as
    complete spans, everything else as instant events.  Virtual-clock
    seconds map to trace microseconds. *)

module Sink : sig
  type t

  val make : ?close:(unit -> unit) -> (float -> event -> unit) -> t
  val stderr_pretty : unit -> t
  val formatter : Format.formatter -> t
  val jsonl : string -> t
  (** Appends {!event_json} lines to [path]; the file closes with the
      tracer. *)

  val chrome : string -> t
  (** Buffers every event and writes {!chrome_json} to [path] on close. *)
end

module Tracer : sig
  type t

  val disabled : t
  (** Inert tracer: {!emit} is a single branch, nothing is recorded. *)

  val create : ?ring_capacity:int -> ?sinks:Sink.t list -> unit -> t
  (** An active tracer with a bounded ring of the last [ring_capacity]
      events (default 512; 0 disables the ring but keeps the sinks). *)

  val set_clock : t -> (unit -> float) -> unit
  (** Installs the virtual-clock source (the scheduler points it at its
      simulation's [Des.now]).  Defaults to a constant 0. *)

  val active : t -> bool
  val emit : t -> event -> unit
  val emitted : t -> int
  (** Events emitted so far (including those the ring already evicted). *)

  val recent : ?n:int -> t -> (float * event) list
  (** The last [n] (default: all) retained events, oldest first. *)

  val close : t -> unit
  (** Flushes and closes every sink (file sinks write out here). *)

  val pp_recent : ?n:int -> Format.formatter -> t -> unit
end

(* Typed trace events over the simulation's virtual clock, with pluggable
   sinks.  The tracer itself is a bounded ring buffer (cheap enough to
   leave on); sinks fan every event out to stderr, a JSONL file, or a
   Chrome trace_event export. *)

type decision =
  | Invoke
  | Prepare
  | Delay of int list

type reason =
  | Clear
  | Ordered
  | Busy
  | Would_cycle
  | Conservative_wait
  | Deferred_prepare
  | Quasi_commit
  | Exact_reject

type msg_dir = Send | Deliver | Drop | Duplicate | Retransmit

type event =
  | Admission of {
      pid : int;
      act : int;
      service : string;
      decision : decision;
      reason : reason;
      edges : (int * int) list;
    }
  | Dispatch of { pid : int; act : int; service : string; prepare_only : bool }
  | Occurrence of { pid : int; act : int; service : string; inverse : bool }
  | Prepared of { pid : int; act : int }
  | Commit of int
  | Abort of int
  | Group_abort of int list
  | Backoff of { pid : int; act : int; attempt : int; delay : float }
  | Deflect of { pid : int; act : int; service : string; outage : bool }
  | Msg of { dir : msg_dir; src : string; dst : string; payload : string Lazy.t }
      (** [payload] is lazy: formatting a 2PC message is far more
          expensive than storing the event, and ring-only tracing never
          reads it unless forensics fire *)
  | Wal_append of { index : int; record : string Lazy.t }
  | Wal_fsync of { batch : int }
  | Wal_salvage of { segment : int; bytes : int }
  | Recovery_step of string
  | Note of string Lazy.t
      (** free-form protocol trace line; lazy for the same reason as
          [Msg.payload] — ring-only tracing never renders it *)
  | Choice of { tag : string; arity : int; chosen : int }
  | Arrival of { pid : int }
  | Shed of { pid : int; why : string }
  | Degraded of { pid : int; pruned : int }
  | Breaker of { subsystem : string; state : string }
  | Drain of { stage : string }

let reason_label = function
  | Clear -> "clear"
  | Ordered -> "ordered"
  | Busy -> "busy"
  | Would_cycle -> "would-cycle"
  | Conservative_wait -> "conservative-wait"
  | Deferred_prepare -> "lemma1-defer"
  | Quasi_commit -> "quasi-commit"
  | Exact_reject -> "exact-reject"

let dir_label = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Duplicate -> "dup"
  | Retransmit -> "retransmit"

let pp_ints fmt l =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ",")
    Format.pp_print_int fmt l

let pp_decision fmt = function
  | Invoke -> Format.pp_print_string fmt "invoke"
  | Prepare -> Format.pp_print_string fmt "prepare"
  | Delay blockers -> Format.fprintf fmt "delay[%a]" pp_ints blockers

let pp_edges fmt edges =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt ",")
    (fun fmt (i, j) -> Format.fprintf fmt "%d->%d" i j)
    fmt edges

let pp_event fmt = function
  | Admission { pid; act; service; decision; reason; edges } ->
      Format.fprintf fmt "admission P_%d a%d (%s): %a reason=%s edges=[%a]" pid act
        service pp_decision decision (reason_label reason) pp_edges edges
  | Dispatch { pid; act; service; prepare_only } ->
      Format.fprintf fmt "dispatch P_%d a%d (%s)%s" pid act service
        (if prepare_only then " [prepare]" else "")
  | Occurrence { pid; act; service; inverse } ->
      Format.fprintf fmt "%s P_%d a%d (%s)"
        (if inverse then "compensated" else "executed")
        pid act service
  | Prepared { pid; act } -> Format.fprintf fmt "prepared P_%d a%d" pid act
  | Commit pid -> Format.fprintf fmt "commit P_%d" pid
  | Abort pid -> Format.fprintf fmt "abort P_%d" pid
  | Group_abort pids -> Format.fprintf fmt "group-abort [%a]" pp_ints pids
  | Backoff { pid; act; attempt; delay } ->
      Format.fprintf fmt "backoff P_%d a%d attempt=%d delay=%.3f" pid act attempt delay
  | Deflect { pid; act; service; outage } ->
      Format.fprintf fmt "deflect P_%d a%d (%s)%s" pid act service
        (if outage then " [outage]" else "")
  | Msg { dir; src; dst; payload } ->
      Format.fprintf fmt "msg %s %s->%s %s" (dir_label dir) src dst
        (Lazy.force payload)
  | Wal_append { index; record } ->
      Format.fprintf fmt "wal[%d] %s" index (Lazy.force record)
  | Wal_fsync { batch } -> Format.fprintf fmt "wal fsync (batch %d)" batch
  | Wal_salvage { segment; bytes } ->
      Format.fprintf fmt "wal salvage: quarantined %d bytes of segment %d" bytes segment
  | Recovery_step step -> Format.fprintf fmt "recovery %s" step
  | Note s -> Format.pp_print_string fmt (Lazy.force s)
  | Choice { tag; arity; chosen } ->
      Format.fprintf fmt "choice %s %d/%d" tag chosen arity
  | Arrival { pid } -> Format.fprintf fmt "arrival P_%d" pid
  | Shed { pid; why } -> Format.fprintf fmt "shed P_%d (%s)" pid why
  | Degraded { pid; pruned } ->
      Format.fprintf fmt "degraded P_%d (pruned %d preferred activities)" pid pruned
  | Breaker { subsystem; state } ->
      Format.fprintf fmt "breaker %s -> %s" subsystem state
  | Drain { stage } -> Format.fprintf fmt "drain: %s" stage

(* the process a timeline event belongs to, for the Chrome export lanes *)
let pid_of = function
  | Admission { pid; _ }
  | Dispatch { pid; _ }
  | Occurrence { pid; _ }
  | Prepared { pid; _ }
  | Backoff { pid; _ }
  | Deflect { pid; _ }
  | Arrival { pid; _ }
  | Shed { pid; _ }
  | Degraded { pid; _ } ->
      Some pid
  | Commit pid | Abort pid -> Some pid
  | Group_abort _ | Msg _ | Wal_append _ | Wal_fsync _ | Wal_salvage _ | Recovery_step _
  | Note _ | Choice _ | Breaker _ | Drain _ ->
      None

let kind_label = function
  | Admission _ -> "admission"
  | Dispatch _ -> "dispatch"
  | Occurrence _ -> "occurrence"
  | Prepared _ -> "prepared"
  | Commit _ -> "commit"
  | Abort _ -> "abort"
  | Group_abort _ -> "group_abort"
  | Backoff _ -> "backoff"
  | Deflect _ -> "deflect"
  | Msg _ -> "msg"
  | Wal_append _ -> "wal_append"
  | Wal_fsync _ -> "wal_fsync"
  | Wal_salvage _ -> "wal_salvage"
  | Recovery_step _ -> "recovery_step"
  | Note _ -> "note"
  | Choice _ -> "choice"
  | Arrival _ -> "arrival"
  | Shed _ -> "shed"
  | Degraded _ -> "degraded"
  | Breaker _ -> "breaker"
  | Drain _ -> "drain"

(* --- minimal JSON emission (no external dependency) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_fields ev =
  let str k v = Printf.sprintf "%S:\"%s\"" k (json_escape v) in
  let int k v = Printf.sprintf "%S:%d" k v in
  let ints k l =
    Printf.sprintf "%S:[%s]" k (String.concat "," (List.map string_of_int l))
  in
  let base = [ str "ev" (kind_label ev) ] in
  base
  @
  match ev with
  | Admission { pid; act; service; decision; reason; edges } ->
      [
        int "pid" pid;
        int "act" act;
        str "service" service;
        str "decision"
          (match decision with
          | Invoke -> "invoke"
          | Prepare -> "prepare"
          | Delay _ -> "delay");
        (match decision with
        | Delay blockers -> ints "blockers" blockers
        | Invoke | Prepare -> ints "blockers" []);
        str "reason" (reason_label reason);
        Printf.sprintf "\"edges\":[%s]"
          (String.concat ","
             (List.map (fun (i, j) -> Printf.sprintf "[%d,%d]" i j) edges));
      ]
  | Dispatch { pid; act; service; prepare_only } ->
      [
        int "pid" pid;
        int "act" act;
        str "service" service;
        Printf.sprintf "\"prepare_only\":%b" prepare_only;
      ]
  | Occurrence { pid; act; service; inverse } ->
      [
        int "pid" pid;
        int "act" act;
        str "service" service;
        Printf.sprintf "\"inverse\":%b" inverse;
      ]
  | Prepared { pid; act } -> [ int "pid" pid; int "act" act ]
  | Commit pid | Abort pid -> [ int "pid" pid ]
  | Group_abort pids -> [ ints "pids" pids ]
  | Backoff { pid; act; attempt; delay } ->
      [
        int "pid" pid;
        int "act" act;
        int "attempt" attempt;
        Printf.sprintf "\"delay\":%.9g" delay;
      ]
  | Deflect { pid; act; service; outage } ->
      [
        int "pid" pid;
        int "act" act;
        str "service" service;
        Printf.sprintf "\"outage\":%b" outage;
      ]
  | Msg { dir; src; dst; payload } ->
      [
        str "dir" (dir_label dir);
        str "src" src;
        str "dst" dst;
        str "payload" (Lazy.force payload);
      ]
  | Wal_append { index; record } ->
      [ int "index" index; str "record" (Lazy.force record) ]
  | Wal_fsync { batch } -> [ int "batch" batch ]
  | Wal_salvage { segment; bytes } -> [ int "segment" segment; int "bytes" bytes ]
  | Recovery_step step -> [ str "step" step ]
  | Note s -> [ str "note" (Lazy.force s) ]
  | Choice { tag; arity; chosen } ->
      [ str "tag" tag; int "arity" arity; int "chosen" chosen ]
  | Arrival { pid } -> [ int "pid" pid ]
  | Shed { pid; why } -> [ int "pid" pid; str "why" why ]
  | Degraded { pid; pruned } -> [ int "pid" pid; int "pruned" pruned ]
  | Breaker { subsystem; state } -> [ str "subsystem" subsystem; str "state" state ]
  | Drain { stage } -> [ str "stage" stage ]

let event_json ts ev =
  Printf.sprintf "{\"ts\":%.9g,%s}" ts (String.concat "," (json_fields ev))

(* --- Chrome trace_event / Perfetto export ---

   Events are keyed by process id: each process is a Chrome "thread"
   (tid = pid) inside one synthetic "process" (pid 1), so a schedule
   renders as one timeline lane per transactional process.  Dispatch and
   the matching occurrence of the same activity become a complete-span
   ["ph":"X"] event; everything else is an instant event.  The virtual
   clock (seconds) maps to trace microseconds. *)
let chrome_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  let first = ref true in
  let emit_obj s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf s
  in
  let lane ev = match pid_of ev with Some pid -> pid | None -> 0 in
  let us ts = ts *. 1e6 in
  let starts : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ts, ev) ->
      match ev with
      | Dispatch { pid; act; _ } -> Hashtbl.replace starts (pid, act) ts
      | Occurrence { pid; act; service; inverse } ->
          let t0 =
            match Hashtbl.find_opt starts (pid, act) with
            | Some t0 ->
                Hashtbl.remove starts (pid, act);
                t0
            | None -> ts
          in
          emit_obj
            (Printf.sprintf
               "{\"name\":\"%s%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
               (if inverse then "undo " else "")
               (json_escape service) pid (us t0)
               (us (ts -. t0)))
      | ev ->
          emit_obj
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"detail\":\"%s\"}}"
               (kind_label ev) (lane ev) (us ts)
               (json_escape (Format.asprintf "%a" pp_event ev))))
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

module Sink = struct
  type t = {
    emit : float -> event -> unit;
    close : unit -> unit;
  }

  let make ?(close = fun () -> ()) emit = { emit; close }

  let stderr_pretty () =
    make (fun ts ev -> Format.eprintf "[%8.2f] %a@." ts pp_event ev)

  let formatter fmt = make (fun ts ev -> Format.fprintf fmt "[%8.2f] %a@." ts pp_event ev)

  let jsonl path =
    let oc = open_out path in
    make
      ~close:(fun () -> close_out oc)
      (fun ts ev ->
        output_string oc (event_json ts ev);
        output_char oc '\n')

  let chrome path =
    let events = ref [] in
    make
      ~close:(fun () ->
        let oc = open_out path in
        output_string oc (chrome_json (List.rev !events));
        close_out oc)
      (fun ts ev -> events := (ts, ev) :: !events)
end

module Tracer = struct
  (* the ring is two parallel arrays — an unboxed float array for the
     stamps and an event array — so an emit into the ring allocates
     nothing beyond the event itself (no tuple, no boxed float) *)
  type t = {
    active : bool;
    cap : int;
    ts_ring : float array;
    ev_ring : event array;
    mutable total : int;
    mutable clock : unit -> float;
    sinks : Sink.t list;
    has_sinks : bool;
  }

  let disabled =
    {
      active = false;
      cap = 0;
      ts_ring = [||];
      ev_ring = [||];
      total = 0;
      clock = (fun () -> 0.0);
      sinks = [];
      has_sinks = false;
    }

  let create ?(ring_capacity = 512) ?(sinks = []) () =
    let cap = max 0 ring_capacity in
    {
      active = true;
      cap;
      ts_ring = (if cap = 0 then [||] else Array.make cap 0.0);
      ev_ring = (if cap = 0 then [||] else Array.make cap (Note (lazy "")));
      total = 0;
      clock = (fun () -> 0.0);
      sinks;
      has_sinks = sinks <> [];
    }

  let active t = t.active
  let emitted t = t.total
  let set_clock t clock = if t.active then t.clock <- clock

  let emit t ev =
    if t.active then begin
      let ts = t.clock () in
      if t.cap > 0 then begin
        let i = t.total mod t.cap in
        t.ts_ring.(i) <- ts;
        t.ev_ring.(i) <- ev
      end;
      t.total <- t.total + 1;
      if t.has_sinks then List.iter (fun (s : Sink.t) -> s.emit ts ev) t.sinks
    end

  let recent ?n t =
    let avail = min t.total t.cap in
    let n = match n with None -> avail | Some n -> max 0 (min n avail) in
    List.init n (fun i ->
        let j = (t.total - n + i) mod t.cap in
        (t.ts_ring.(j), t.ev_ring.(j)))

  let close t = List.iter (fun (s : Sink.t) -> s.close ()) t.sinks

  let pp_recent ?n fmt t =
    let events = recent ?n t in
    Format.fprintf fmt "@[<v>";
    List.iter (fun (ts, ev) -> Format.fprintf fmt "[%8.2f] %a@," ts pp_event ev) events;
    Format.fprintf fmt "@]"
end

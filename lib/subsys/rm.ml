open Tpm_kv

type outcome =
  | Committed of Value.t
  | Prepared of Value.t
  | Failed
  | Blocked of int list
  | Unavailable

type invocation_record = {
  service : string;
  args : Value.t;
  undo : (string * Value.t) list;
}

type t = {
  rm_name : string;
  rm_store : Store.t;
  rm_registry : Service.Registry.t;
  locks : Locks.t;
  rng : Tpm_sim.Prng.t;
  fail_prob : string -> float;
  max_failures : int;
  mutable faults : Tpm_sim.Faults.t;
  mutable choice : Tpm_sim.Choice.t;
  pending : (int, Tx.t) Hashtbl.t;  (* prepared token -> open transaction *)
  indoubt : (int, int) Hashtbl.t;  (* prepared token -> 2PC coordinator id *)
  decisions : (int, bool) Hashtbl.t;  (* coordinator id -> applied decision *)
  log : (int, invocation_record) Hashtbl.t;  (* committed token -> record *)
  mutable committed_count : int;
}

let create ~name ~registry ?(fail_prob = fun _ -> 0.0) ?(max_failures = 10)
    ?(faults = Tpm_sim.Faults.none) ?(seed = 1) ?store () =
  {
    rm_name = name;
    rm_store = (match store with Some s -> s | None -> Store.create ());
    rm_registry = registry;
    locks = Locks.create ();
    rng = Tpm_sim.Prng.create seed;
    fail_prob;
    max_failures;
    faults;
    choice = Tpm_sim.Choice.passive;
    pending = Hashtbl.create 16;
    indoubt = Hashtbl.create 16;
    decisions = Hashtbl.create 16;
    log = Hashtbl.create 64;
    committed_count = 0;
  }

let name rm = rm.rm_name
let store rm = rm.rm_store
let registry rm = rm.rm_registry
let max_failures rm = rm.max_failures
let set_faults rm faults = rm.faults <- faults
let set_choice rm choice = rm.choice <- choice

let acquire_footprint rm ~token (svc : Service.t) =
  let try_all mode keys =
    List.fold_left
      (fun acc key ->
        match acc with
        | Error _ as e -> e
        | Ok () -> Locks.acquire rm.locks ~owner:token ~mode key)
      (Ok ()) keys
  in
  match try_all Locks.Shared svc.Service.reads with
  | Error owners -> Error owners
  | Ok () -> try_all Locks.Exclusive svc.Service.writes

let run rm ~token ~service ~args ~attempt ~now ~hold =
  if Tpm_sim.Faults.outage_active rm.faults ~subsystem:rm.rm_name ~now then Unavailable
  else
  let svc = Service.Registry.find rm.rm_registry service in
  (* only prepared invocations of *other* tokens block us *)
  match acquire_footprint rm ~token svc with
  | Error owners ->
      Locks.release_all rm.locks ~owner:token;
      Blocked owners
  | Ok () ->
      let p =
        Float.max (rm.fail_prob service)
          (Tpm_sim.Faults.burst_probability rm.faults ~service ~now)
      in
      let inject =
        (* passive: the exact historical draw (streams stay bit-identical);
           driven: a binary choice point, offered only where a failure is
           actually possible so the explorer's branching stays bounded *)
        if Tpm_sim.Choice.is_passive rm.choice then
          attempt < rm.max_failures && Tpm_sim.Prng.chance rm.rng p
        else
          attempt < rm.max_failures && p > 0.0
          && Tpm_sim.Choice.flag rm.choice
               ~tag:(Printf.sprintf "fail:%s:%d" rm.rm_name token)
               ~default:(fun () -> false)
      in
      if inject then begin
        if not (Hashtbl.mem rm.pending token) then Locks.release_all rm.locks ~owner:token;
        Failed
      end
      else begin
        let tx = Tx.begin_ rm.rm_store in
        let ret = svc.Service.body tx ~args in
        if hold then begin
          Hashtbl.replace rm.pending token tx;
          Prepared ret
        end
        else begin
          Tx.commit tx;
          Hashtbl.replace rm.log token { service; args; undo = Tx.undo_entries tx };
          rm.committed_count <- rm.committed_count + 1;
          Locks.release_all rm.locks ~owner:token;
          Committed ret
        end
      end

let invoke rm ~token ~service ?(args = Value.Nil) ?(attempt = 1) ?(now = 0.0) () =
  run rm ~token ~service ~args ~attempt ~now ~hold:false

let prepare rm ~token ~service ?(args = Value.Nil) ?(attempt = 1) ?(now = 0.0) () =
  run rm ~token ~service ~args ~attempt ~now ~hold:true

let commit_prepared rm ~token =
  match Hashtbl.find_opt rm.pending token with
  | None -> invalid_arg (Printf.sprintf "Rm.commit_prepared: unknown token %d" token)
  | Some tx ->
      Tx.commit tx;
      rm.committed_count <- rm.committed_count + 1;
      Hashtbl.remove rm.pending token;
      Hashtbl.remove rm.indoubt token;
      Locks.release_all rm.locks ~owner:token

let abort_prepared rm ~token =
  match Hashtbl.find_opt rm.pending token with
  | None -> invalid_arg (Printf.sprintf "Rm.abort_prepared: unknown token %d" token)
  | Some tx ->
      Tx.abort tx;
      Hashtbl.remove rm.pending token;
      Hashtbl.remove rm.indoubt token;
      Locks.release_all rm.locks ~owner:token

let prepared_tokens rm =
  Hashtbl.fold (fun token _ acc -> token :: acc) rm.pending [] |> List.sort compare

let is_prepared rm ~token = Hashtbl.mem rm.pending token

let mark_in_doubt rm ~token ~cid =
  if is_prepared rm ~token then Hashtbl.replace rm.indoubt token cid

let in_doubt rm =
  Hashtbl.fold (fun token cid acc -> (token, cid) :: acc) rm.indoubt [] |> List.sort compare

let in_doubt_cid rm ~token = Hashtbl.find_opt rm.indoubt token

let in_doubt_token rm ~cid =
  (* early exit: stop at the first match instead of folding the whole
     table (participants call this on every DECISION and inquiry tick) *)
  let exception Found of int in
  try
    Hashtbl.iter (fun token c -> if c = cid then raise (Found token)) rm.indoubt;
    None
  with Found token -> Some token

let record_decision rm ~cid ~commit = Hashtbl.replace rm.decisions cid commit
let known_decision rm ~cid = Hashtbl.find_opt rm.decisions cid

let resolve_prepared rm ~token ~commit =
  (match Hashtbl.find_opt rm.indoubt token with
  | Some cid -> record_decision rm ~cid ~commit
  | None -> ());
  if is_prepared rm ~token then begin
    if commit then commit_prepared rm ~token else abort_prepared rm ~token;
    true
  end
  else false

let reset_coordination rm =
  Hashtbl.reset rm.indoubt;
  Hashtbl.reset rm.decisions

let compensate rm ~token ?(now = 0.0) () =
  match Hashtbl.find_opt rm.log token with
  | None -> invalid_arg (Printf.sprintf "Rm.compensate: unknown token %d" token)
  | Some record -> (
      let svc = Service.Registry.find rm.rm_registry record.service in
      match svc.Service.compensation with
      | Service.No_compensation ->
          invalid_arg (Printf.sprintf "Rm.compensate: %s is not compensatable" record.service)
      | Service.Inverse_service inv -> (
          let r =
            run rm ~token:(-token - 1) ~service:inv ~args:record.args
              ~attempt:rm.max_failures ~now ~hold:false
          in
          match r with
          | Committed _ ->
              Hashtbl.remove rm.log token;
              r
          | Prepared _ | Failed | Blocked _ | Unavailable -> r)
      | Service.Snapshot_undo ->
          (* same discipline as the inverse-service path: refuse during an
             outage window and take exclusive locks on the undo footprint,
             so the undo cannot clobber keys a concurrent prepared
             transaction holds *)
          if Tpm_sim.Faults.outage_active rm.faults ~subsystem:rm.rm_name ~now then
            Unavailable
          else
            let owner = -token - 1 in
            let acquire =
              List.fold_left
                (fun acc (key, _) ->
                  match acc with
                  | Error _ as e -> e
                  | Ok () -> Locks.acquire rm.locks ~owner ~mode:Locks.Exclusive key)
                (Ok ()) record.undo
            in
            (match acquire with
            | Error owners ->
                Locks.release_all rm.locks ~owner;
                Blocked owners
            | Ok () ->
                List.iter
                  (fun (key, v) ->
                    match v with
                    | Value.Nil -> Store.delete rm.rm_store key
                    | v -> Store.set rm.rm_store key v)
                  record.undo;
                Hashtbl.remove rm.log token;
                Locks.release_all rm.locks ~owner;
                Committed Value.Nil))

let invocations rm = rm.committed_count

let fingerprint rm =
  let b = Buffer.create 128 in
  Buffer.add_string b rm.rm_name;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "|%s=%s" k (Value.to_string v)))
    (Store.snapshot rm.rm_store);
  Buffer.add_string b "|p:";
  List.iter (fun tk -> Buffer.add_string b (Printf.sprintf "%d," tk)) (prepared_tokens rm);
  Buffer.add_string b "|d:";
  List.iter
    (fun (tk, cid) -> Buffer.add_string b (Printf.sprintf "%d@%d," tk cid))
    (in_doubt rm);
  Buffer.add_string b "|k:";
  Hashtbl.fold (fun cid commit acc -> (cid, commit) :: acc) rm.decisions []
  |> List.sort compare
  |> List.iter (fun (cid, commit) ->
         Buffer.add_string b (Printf.sprintf "%d=%b," cid commit));
  Buffer.add_string b "|l:";
  Hashtbl.fold (fun tk _ acc -> tk :: acc) rm.log []
  |> List.sort compare
  |> List.iter (fun tk -> Buffer.add_string b (Printf.sprintf "%d," tk));
  Buffer.add_string b (Printf.sprintf "|c%d" rm.committed_count);
  Buffer.contents b

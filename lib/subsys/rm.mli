(** Resource managers: the simulated transactional subsystems of the paper
    (Section 2.3).

    Each invocation runs as a local transaction over the subsystem's
    store.  Invocations either commit immediately ({!invoke}) or are
    {e prepared} ({!prepare}): executed with their effects buffered and
    their key locks held, to be committed or rolled back later by the
    two-phase-commit protocol — the deferred commit of non-compensatable
    activities required by Lemma 1.

    The manager logs, per invocation token, the service, its arguments and
    the pre-images of written keys, enabling both semantic compensation
    (re-invoking the declared inverse service) and agent-style snapshot
    undo.  Failures are injected per service with configurable
    probability; an invocation is guaranteed to succeed once its attempt
    number reaches [max_failures] (Definition 3's finite retry bound).

    A {!Tpm_sim.Faults} plan models dynamic failure regimes: during a
    declared outage window the whole subsystem answers {!Unavailable}
    (effect-free, before any locking), and active failure bursts raise the
    per-service transient failure probability.  Invocations carry the
    virtual time [now] so the manager can consult the plan. *)

type outcome =
  | Committed of Tpm_kv.Value.t
  | Prepared of Tpm_kv.Value.t
  | Failed  (** local transaction aborted (effect-free) *)
  | Blocked of int list  (** lock conflict with the given prepared tokens *)
  | Unavailable
      (** the subsystem is inside an outage window: the invocation was
          never submitted (effect-free, no locks taken) *)

type t

val create :
  name:string ->
  registry:Service.Registry.t ->
  ?fail_prob:(string -> float) ->
  ?max_failures:int ->
  ?faults:Tpm_sim.Faults.t ->
  ?seed:int ->
  ?store:Tpm_kv.Store.t ->
  unit ->
  t
(** [store] (default: a fresh in-memory store) lets a harness back the
    subsystem with a paged store ({!Tpm_kv.Store.create_paged}); the
    scheduler then wires its WAL to it at construction. *)

val name : t -> string
val store : t -> Tpm_kv.Store.t
val registry : t -> Service.Registry.t

val max_failures : t -> int
(** The finite retry bound of Definition 3. *)

val set_faults : t -> Tpm_sim.Faults.t -> unit
(** Installs (or clears, with {!Tpm_sim.Faults.none}) the fault plan. *)

val set_choice : t -> Tpm_sim.Choice.t -> unit
(** Installs the decision strategy for failure injection.  Under the
    default {!Tpm_sim.Choice.passive} strategy failures are drawn from
    the manager's PRNG exactly as before; a driven strategy turns each
    possible injection (probability > 0, attempt below the retry bound)
    into a binary choice point tagged ["fail:<rm>:<token>"]. *)

val invoke :
  t ->
  token:int ->
  service:string ->
  ?args:Tpm_kv.Value.t ->
  ?attempt:int ->
  ?now:float ->
  unit ->
  outcome
(** Executes the service as a local transaction and commits it.  [token]
    identifies the activity occurrence (used later for compensation).
    Returns {!Failed} on an injected failure ([attempt] counts from 1),
    {!Blocked} when a needed key is locked by a prepared invocation, and
    {!Unavailable} when the fault plan declares an outage at virtual time
    [now] (default 0). *)

val prepare :
  t ->
  token:int ->
  service:string ->
  ?args:Tpm_kv.Value.t ->
  ?attempt:int ->
  ?now:float ->
  unit ->
  outcome
(** Like {!invoke}, but holds the transaction open (deferred commit): its
    writes stay invisible and its locks held until {!commit_prepared} or
    {!abort_prepared}. *)

val commit_prepared : t -> token:int -> unit
(** @raise Invalid_argument if the token is not prepared. *)

val abort_prepared : t -> token:int -> unit
val prepared_tokens : t -> int list

val is_prepared : t -> token:int -> bool
(** Constant-time membership test on the prepared set (replaces scanning
    {!prepared_tokens}). *)

val mark_in_doubt : t -> token:int -> cid:int -> unit
(** Tags a prepared token with the 2PC coordinator instance it voted in:
    from the participant's yes-vote until the decision arrives, the token
    is {e in doubt} and its locks stay held.  No-op if the token is not
    prepared. *)

val in_doubt : t -> (int * int) list
(** All [(token, cid)] pairs currently in doubt, sorted. *)

val in_doubt_cid : t -> token:int -> int option
val in_doubt_token : t -> cid:int -> int option

val record_decision : t -> cid:int -> commit:bool -> unit
(** Remembers the decision applied for a coordinator instance, making
    duplicate DECISION messages idempotent and letting sibling
    participants answer cooperative-termination inquiries. *)

val known_decision : t -> cid:int -> bool option

val resolve_prepared : t -> token:int -> commit:bool -> bool
(** Idempotent decision application: commits or aborts the token if it is
    still prepared (returning [true]), records the decision for its
    in-doubt cid, and is a no-op returning [false] otherwise. *)

val reset_coordination : t -> unit
(** Clears in-doubt tags and remembered decisions — called once recovery
    has resolved every in-doubt token, so a recovered scheduler's fresh
    coordinator can reuse instance ids. *)

val compensate : t -> token:int -> ?now:float -> unit -> outcome
(** Undoes the committed invocation identified by [token], according to
    the service's compensation strategy.  Compensating activities are
    retriable by definition: this never injects failures, but it does
    answer {!Unavailable} during an outage window (retry once the window
    closes) and {!Blocked} when the undo footprint is locked by a
    concurrent prepared transaction — both compensation paths
    (inverse service and snapshot undo) share this lock/outage
    discipline.
    @raise Invalid_argument if the token is unknown or the service is not
    compensatable. *)

val invocations : t -> int
(** Number of committed invocations so far. *)

val fingerprint : t -> string
(** Canonical rendering of the manager's model-relevant state: store
    contents, prepared and in-doubt tokens, remembered decisions,
    compensation log keys and the commit counter.  Equal fingerprints
    mean observably equal managers — the explorer's state-deduplication
    key. *)

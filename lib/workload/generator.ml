open Tpm_core
module Prng = Tpm_sim.Prng
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm
module Value = Tpm_kv.Value
module Tx = Tpm_kv.Tx

type params = {
  activities_min : int;
  activities_max : int;
  pivot_prob : float;
  alt_prob : float;
  services : int;
  conflict_density : float;
  subsystems : int;
}

let default_params =
  {
    activities_min = 4;
    activities_max = 10;
    pivot_prob = 0.25;
    alt_prob = 0.3;
    services = 20;
    conflict_density = 0.15;
    subsystems = 4;
  }

(* [prefix] namespaces every generated name (services, inverses,
   subsystems, keys): prefixed universes are disjoint, so workloads built
   with distinct prefixes never conflict — the raw material of the
   sharded-admission experiments.  The default [""] keeps every
   historical name (and every historical PRNG stream) unchanged. *)
let service_name ?(prefix = "") i = Printf.sprintf "%ssvc%d" prefix i
let inverse_name ?(prefix = "") i = Printf.sprintf "%ssvc%d_inv" prefix i

let service_universe ?(prefix = "") params =
  List.init params.services (service_name ~prefix)

let subsystem_name ?(prefix = "") params i =
  Printf.sprintf "%sss%d" prefix (i mod params.subsystems)

let spec ?(seed = 11) ?(prefix = "") params =
  let rng = Prng.create seed in
  let names = Array.of_list (service_universe ~prefix params) in
  let n = Array.length names in
  let pairs = ref [] in
  (* every service physically conflicts with itself and its inverse (they
     share a key): the formal relation must be at least as conservative *)
  for i = 0 to n - 1 do
    pairs := (names.(i), names.(i)) :: (names.(i), inverse_name ~prefix i) :: !pairs;
    for j = i + 1 to n - 1 do
      if Prng.chance rng params.conflict_density then
        pairs := (names.(i), names.(j)) :: !pairs
    done
  done;
  Conflict.of_pairs !pairs

let registry ?(prefix = "") params =
  let reg = Service.Registry.create () in
  for i = 0 to params.services - 1 do
    let key = Printf.sprintf "%sk%d" prefix i in
    Service.Registry.register reg
      (Service.make ~name:(service_name ~prefix i)
         ~compensation:(Service.Inverse_service (inverse_name ~prefix i))
         ~reads:[ key ] ~writes:[ key ]
         (fun tx ~args:_ ->
           let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
           Tx.set tx key (Value.Int (v + 1));
           Value.Int (v + 1)));
    Service.Registry.register reg
      (Service.make ~name:(inverse_name ~prefix i) ~reads:[ key ] ~writes:[ key ]
         (fun tx ~args:_ ->
           let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
           Tx.set tx key (Value.Int (v - 1));
           Value.Int (v - 1)))
  done;
  reg

let rms params ?(fail_prob = fun _ -> 0.0) ?(seed = 5) ?(prefix = "") () =
  let reg = registry ~prefix params in
  List.init params.subsystems (fun i ->
      Rm.create ~name:(subsystem_name ~prefix params i) ~registry:reg ~fail_prob
        ~seed:(seed + i) ())

(* A random tree with well-formed flex structure, mirroring the recursive
   rule of Flex.well_formed:
   - compensatable steps may open alternatives (non-last branches are full
     flex structures, failures fall through to the next branch);
   - a pivot is followed either by a retriable-only tail or by a nested
     flex structure guarded by a retriable-only lowest-priority
     alternative;
   - once a non-compensatable step executed, only retriables follow. *)
let process ?(seed = 3) ?(prefix = "") params ~pid =
  let rng = Prng.create (seed + (1_000 * pid)) in
  let budget =
    ref
      (params.activities_min
      + Prng.int rng (max 1 (params.activities_max - params.activities_min + 1)))
  in
  let acts = ref [] and prec = ref [] and pref = ref [] in
  let counter = ref 0 in
  let add kind =
    incr counter;
    let i = Prng.int rng params.services in
    let a =
      Activity.make ~proc:pid ~act:!counter ~service:(service_name ~prefix i) ~kind
        ~subsystem:(subsystem_name ~prefix params i) ()
    in
    acts := a :: !acts;
    !counter
  in
  let link a b = prec := (a, b) :: !prec in
  (* retriable-only chain; [force] guarantees at least one node *)
  let rec retr_tail ~force =
    if !budget > 0 || force then begin
      decr budget;
      let r = add Activity.Retriable in
      (if !budget > 0 && Prng.chance rng 0.5 then
         match retr_tail ~force:false with
         | Some h -> link r h
         | None -> ());
      Some r
    end
    else None
  in
  let rec build ~abortable =
    if !budget <= 0 then None
    else if not abortable then retr_tail ~force:false
    else if Prng.chance rng params.pivot_prob then begin
      decr budget;
      let p = add Activity.Pivot in
      if !budget >= 2 && Prng.chance rng params.alt_prob then begin
        (* nested flex structure, guarded by a retriable-only fallback *)
        match build ~abortable:true with
        | Some h1 ->
            let h2 = Option.get (retr_tail ~force:true) in
            link p h1;
            link p h2;
            pref := ((p, h1), (p, h2)) :: !pref
        | None -> ( match retr_tail ~force:false with Some h -> link p h | None -> ())
      end
      else (match retr_tail ~force:false with Some h -> link p h | None -> ());
      Some p
    end
    else begin
      decr budget;
      let c = add Activity.Compensatable in
      if !budget >= 2 && Prng.chance rng params.alt_prob then begin
        match build ~abortable:true with
        | Some h1 -> (
            match build ~abortable:true with
            | Some h2 ->
                link c h1;
                link c h2;
                pref := ((c, h1), (c, h2)) :: !pref
            | None -> link c h1)
        | None -> ()
      end
      else (match build ~abortable:true with Some h -> link c h | None -> ());
      Some c
    end
  in
  (match build ~abortable:true with
  | Some _ -> ()
  | None ->
      decr budget;
      ignore (add Activity.Compensatable));
  Process.make_exn ~pid ~activities:(List.rev !acts) ~prec:!prec ~pref:!pref

let batch ?(seed = 3) ?(prefix = "") params ~n =
  List.init n (fun i -> process ~seed ~prefix params ~pid:(i + 1))

(* --- clustered workloads (sharded-admission experiments) --- *)

let cluster_prefix c = Printf.sprintf "c%d_" c

let clustered ?(seed = 3) params ~clusters ~n =
  if clusters <= 0 then invalid_arg "Generator.clustered: clusters must be positive";
  let cluster_of pid = (pid - 1) mod clusters in
  let spec_u =
    List.fold_left
      (fun acc c -> Conflict.union acc (spec ~seed:(11 + seed + c) ~prefix:(cluster_prefix c) params))
      Conflict.empty
      (List.init clusters Fun.id)
  in
  (* a thunk, not a value: every scheduler (every shard, every domain)
     needs its own resource-manager instances — Rm state is mutable and
     not domain-safe.  Seeds are per cluster, so an Rm's PRNG stream is
     the same whether it serves a sharded or a single-engine run. *)
  let make_rms ?(fail_prob = fun _ -> 0.0) () =
    List.concat_map
      (fun c -> rms params ~fail_prob ~seed:(5 + seed + (100 * c)) ~prefix:(cluster_prefix c) ())
      (List.init clusters Fun.id)
  in
  let procs =
    List.init n (fun i ->
        let pid = i + 1 in
        process ~seed ~prefix:(cluster_prefix (cluster_of pid)) params ~pid)
  in
  (spec_u, make_rms, procs, cluster_of)

(* --- open-loop arrivals --- *)

type arrival_pattern =
  | Poisson
  | Bursty of { burst : int; spread : float }

(* The arrival stream draws from its own PRNG so the offered-load script
   is independent of the per-process structure seeds: the same (seed,
   rate, horizon, pattern) always yields the same submission script, and
   process [pid] is the same process it would be in a closed [batch]. *)
let arrivals ?(seed = 3) ?(pattern = Poisson) params ~rate ~horizon =
  if rate <= 0.0 then invalid_arg "Generator.arrivals: rate must be positive";
  if horizon < 0.0 then invalid_arg "Generator.arrivals: negative horizon";
  let rng = Prng.create (seed + 771_237) in
  let acc = ref [] and pid = ref 0 and t = ref 0.0 in
  let push at =
    incr pid;
    acc := (at, process ~seed params ~pid:!pid) :: !acc
  in
  (match pattern with
  | Poisson ->
      let mean = 1.0 /. rate in
      let rec loop () =
        t := !t +. Prng.exponential rng ~mean;
        if !t <= horizon then begin
          push !t;
          loop ()
        end
      in
      loop ()
  | Bursty { burst; spread } ->
      (* same average offered load, delivered as back-to-back volleys of
         [burst] submissions [spread] apart — the tail-stress pattern *)
      let burst = max 1 burst in
      if spread < 0.0 then invalid_arg "Generator.arrivals: negative spread";
      let mean = float_of_int burst /. rate in
      let rec loop () =
        t := !t +. Prng.exponential rng ~mean;
        if !t <= horizon then begin
          for k = 0 to burst - 1 do
            let at = !t +. (spread *. float_of_int k) in
            if at <= horizon then push at
          done;
          loop ()
        end
      in
      loop ());
  List.rev !acc

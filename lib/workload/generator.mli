(** Random workload generation: processes with well-formed flex structure
    (guaranteed termination by construction), a shared service universe
    with tunable conflict density, and the resource managers to run them
    on.  Used by the property-based tests and by every benchmark sweep. *)

type params = {
  activities_min : int;
  activities_max : int;  (** target process size range *)
  pivot_prob : float;  (** probability that a step is a pivot (with fallback) *)
  alt_prob : float;  (** probability that a compensatable step opens alternatives *)
  services : int;  (** size of the service universe *)
  conflict_density : float;  (** probability that two services conflict *)
  subsystems : int;
}

val default_params : params

val service_universe : ?prefix:string -> params -> string list
(** [prefix] (default [""]) namespaces every generated name — services,
    inverses, subsystems, store keys.  Distinct prefixes yield disjoint
    universes that never conflict; the empty prefix reproduces every
    historical name and PRNG stream bit-identically. *)

val spec : ?seed:int -> ?prefix:string -> params -> Tpm_core.Conflict.t
(** Random symmetric conflict relation over the universe (self-conflicts
    included at the same density). *)

val registry : ?prefix:string -> params -> Tpm_subsys.Service.Registry.t
(** One increment-style service per universe entry, each with a semantic
    inverse; footprints chosen so that the derived conflicts are
    per-service only (the random {!spec} is used instead for scheduling
    experiments). *)

val rms :
  params ->
  ?fail_prob:(string -> float) ->
  ?seed:int ->
  ?prefix:string ->
  unit ->
  Tpm_subsys.Rm.t list

val process : ?seed:int -> ?prefix:string -> params -> pid:int -> Tpm_core.Process.t
(** A random tree-shaped process with well-formed flex structure. *)

val batch : ?seed:int -> ?prefix:string -> params -> n:int -> Tpm_core.Process.t list
(** [n] processes with pids [1..n]. *)

val clustered :
  ?seed:int ->
  params ->
  clusters:int ->
  n:int ->
  Tpm_core.Conflict.t
  * (?fail_prob:(string -> float) -> unit -> Tpm_subsys.Rm.t list)
  * Tpm_core.Process.t list
  * (int -> int)
(** [(spec, make_rms, procs, cluster_of)]: [n] processes spread
    round-robin over [clusters] independent workload clusters, each
    cluster a full prefixed universe of its own ([params] applies per
    cluster).  [spec] is the union relation; clusters never conflict
    with each other, so the sharded admission map decomposes the run
    into at most [clusters] components.  [make_rms] builds {e fresh}
    resource managers on every call — each shard (each domain) must own
    its instances.  [cluster_of pid] names the process's cluster. *)

(** Shape of an open-loop arrival stream. *)
type arrival_pattern =
  | Poisson  (** exponential inter-arrival times at the offered rate *)
  | Bursty of { burst : int; spread : float }
      (** volleys of [burst] submissions [spread] apart, burst gaps
          exponential — same average offered load, heavier tail *)

val arrivals :
  ?seed:int ->
  ?pattern:arrival_pattern ->
  params ->
  rate:float ->
  horizon:float ->
  (float * Tpm_core.Process.t) list
(** Open-loop submission script at fixed offered load [rate] (processes
    per unit of virtual time) up to [horizon]: arrival times paired with
    the process to submit, pids assigned 1.. in arrival order.  The
    stream draws from its own PRNG stream, so it is deterministic in
    [(seed, pattern, rate, horizon)] and — unlike a closed loop — never
    slows down when the server backs up. *)

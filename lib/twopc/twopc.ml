type decision =
  | Committed
  | Aborted

type participant = {
  id : string;
  vote : unit -> bool;
  commit : unit -> unit;
  abort : unit -> unit;
}

type log_entry =
  | Began of string list
  | Voted of string * bool
  | Decided of decision
  | Finished

let run ?(on_log = fun _ -> ()) participants =
  on_log (Began (List.map (fun p -> p.id) participants));
  (* collect every vote: a refusal must not silence later participants
     (their votes are part of the audit trail) *)
  let votes =
    List.map
      (fun p ->
        let v = p.vote () in
        on_log (Voted (p.id, v));
        v)
      participants
  in
  let all_yes = List.for_all Fun.id votes in
  let decision = if all_yes then Committed else Aborted in
  on_log (Decided decision);
  List.iter (fun p -> match decision with Committed -> p.commit () | Aborted -> p.abort ()) participants;
  on_log Finished;
  decision

let participant_of_rm rm ~token =
  {
    id = Printf.sprintf "%s#%d" (Tpm_subsys.Rm.name rm) token;
    vote = (fun () -> Tpm_subsys.Rm.is_prepared rm ~token);
    commit = (fun () -> Tpm_subsys.Rm.commit_prepared rm ~token);
    abort =
      (fun () ->
        if Tpm_subsys.Rm.is_prepared rm ~token then
          Tpm_subsys.Rm.abort_prepared rm ~token);
  }

let pp_decision fmt = function
  | Committed -> Format.pp_print_string fmt "committed"
  | Aborted -> Format.pp_print_string fmt "aborted"

let pp_log_entry fmt = function
  | Began ids ->
      Format.fprintf fmt "2pc-begin(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_string)
        ids
  | Voted (id, v) -> Format.fprintf fmt "vote(%s, %b)" id v
  | Decided d -> Format.fprintf fmt "decided(%a)" pp_decision d
  | Finished -> Format.pp_print_string fmt "2pc-done"

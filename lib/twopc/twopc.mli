(** Two-phase commit.

    The paper requires that all deferred (non-compensatable) activities of
    a process commit atomically in their subsystems once the process is
    allowed to commit: "the commitment of all non-compensatable activities
    of [P_j] has to be performed atomically by exploiting a two phase
    commit protocol" (Section 3.5).  The coordinator gathers votes from
    all participants, decides, and applies the decision everywhere. *)

type decision =
  | Committed
  | Aborted

type participant = {
  id : string;
  vote : unit -> bool;  (** phase 1: true = ready to commit *)
  commit : unit -> unit;  (** phase 2 on global commit *)
  abort : unit -> unit;  (** phase 2 on global abort *)
}

type log_entry =
  | Began of string list  (** participant ids *)
  | Voted of string * bool
  | Decided of decision
  | Finished

val run : ?on_log:(log_entry -> unit) -> participant list -> decision
(** Executes the protocol synchronously (the legacy single-call form; the
    message-driven, crash-tolerant protocol lives in {!Coordinator}).  An
    empty participant list commits trivially.  Every participant votes and
    every vote is logged, even after a refusal has already forced the
    abort decision. *)

val participant_of_rm : Tpm_subsys.Rm.t -> token:int -> participant
(** Adapter for a prepared invocation held by a resource manager: it votes
    yes iff the token is still prepared. *)

val pp_log_entry : Format.formatter -> log_entry -> unit
val pp_decision : Format.formatter -> decision -> unit

module Rm = Tpm_subsys.Rm
module Des = Tpm_sim.Des
module Bus = Tpm_sim.Bus
module Metrics = Tpm_sim.Metrics
module Wal = Tpm_wal.Wal
module Obs = Tpm_obs.Obs

type msg =
  | Prepare of {
      cid : int;
      token : int;
    }
  | Vote of {
      cid : int;
      rm : string;
      yes : bool;
    }
  | Decision of {
      cid : int;
      commit : bool;
    }
  | Ack of {
      cid : int;
      rm : string;
    }
  | Inquiry of {
      cid : int;
      rm : string;
    }

let pp_msg fmt = function
  | Prepare { cid; token } -> Format.fprintf fmt "PREPARE(c%d,#%d)" cid token
  | Vote { cid; rm; yes } -> Format.fprintf fmt "VOTE(c%d,%s,%b)" cid rm yes
  | Decision { cid; commit } ->
      Format.fprintf fmt "DECISION(c%d,%s)" cid (if commit then "commit" else "abort")
  | Ack { cid; rm } -> Format.fprintf fmt "ACK(c%d,%s)" cid rm
  | Inquiry { cid; rm } -> Format.fprintf fmt "INQUIRY(c%d,%s)" cid rm

type part = {
  p_name : string;
  p_token : int;
  mutable p_vote : bool option;
  mutable p_acked : bool;
}

type phase =
  | Voting
  | Deciding of bool  (* the decision, while acks are outstanding *)

type instance = {
  i_cid : int;
  i_pid : int;
  i_act : int;
  i_parts : part list;
  i_started : float;
  mutable i_phase : phase;
  mutable i_durable : bool;
      (* the decision may be (re)sent: true once the commit record's fsync
         completed (aborts are presumed — durable immediately).  Under
         group commit an instance sits in [Deciding] undurable until the
         batch window closes; retransmission and inquiry replies must
         stay silent meanwhile or a DECISION could outrun its record. *)
  i_on_done : commit:bool -> unit;
  mutable i_cancel : unit -> unit;
}

type t = {
  name : string;
  sim : Des.t;
  bus : msg Bus.t;
  log : Wal.record -> unit;
  log_durable : Wal.record -> (unit -> unit) -> unit;
  halted : unit -> bool;
  metrics : Metrics.t option;
  tracer : Obs.Tracer.t;
  retransmit_after : float;
  instances : (int, instance) Hashtbl.t;
  mutable next_cid : int;
}

let mincr t name = match t.metrics with None -> () | Some m -> Metrics.incr m name

let mobserve t name v =
  match t.metrics with None -> () | Some m -> Metrics.observe m name v

let send t ~dst msg = Bus.send t.bus ~src:t.name ~dst msg

let trace_retransmit t ~dst msg =
  if Obs.Tracer.active t.tracer then
    Obs.Tracer.emit t.tracer
      (Obs.Msg
         {
           dir = Obs.Retransmit;
           src = t.name;
           dst;
           payload = lazy (Format.asprintf "%a" pp_msg msg);
         })

let retransmit t inst =
  List.iter
    (fun p ->
      match inst.i_phase with
      | Voting ->
          if p.p_vote = None then begin
            mincr t "msg_retransmits";
            let msg = Prepare { cid = inst.i_cid; token = p.p_token } in
            trace_retransmit t ~dst:p.p_name msg;
            send t ~dst:p.p_name msg
          end
      | Deciding commit ->
          if inst.i_durable && not p.p_acked then begin
            mincr t "msg_retransmits";
            let msg = Decision { cid = inst.i_cid; commit } in
            trace_retransmit t ~dst:p.p_name msg;
            send t ~dst:p.p_name msg
          end)
    inst.i_parts

let rec arm_timer t inst =
  inst.i_cancel <-
    Des.after_cancellable t.sim t.retransmit_after (fun _ ->
        if (not (t.halted ())) && Hashtbl.mem t.instances inst.i_cid then begin
          retransmit t inst;
          arm_timer t inst
        end)

let finish t inst commit =
  inst.i_cancel ();
  Hashtbl.remove t.instances inst.i_cid;
  (* every participant has applied and acknowledged the decision: the
     instance needs no recovery attention any more *)
  t.log (Wal.Coord_forgotten { cid = inst.i_cid; pid = inst.i_pid });
  mobserve t "twopc_decide_latency" (Des.now t.sim -. inst.i_started);
  inst.i_on_done ~commit

let decide t inst commit =
  (* presumed abort: only the commit decision is made durable — and it is
     durable *before* any DECISION message leaves the coordinator.  The
     phase flips to [Deciding] at once (late votes are no-ops), but under
     group commit the messages wait in the continuation the WAL runs when
     the batch's fsync covers the record; until then [i_durable] keeps
     retransmission and inquiry replies silent. *)
  inst.i_phase <- Deciding commit;
  let deliver () =
    inst.i_durable <- true;
    List.iter (fun p -> send t ~dst:p.p_name (Decision { cid = inst.i_cid; commit }))
      inst.i_parts;
    (* no participants: trivially complete, nothing to deliver or await *)
    if inst.i_parts = [] then finish t inst commit
  in
  if commit then
    t.log_durable (Wal.Coord_committed { cid = inst.i_cid; pid = inst.i_pid }) deliver
  else deliver ()

let on_vote t cid rm yes =
  match Hashtbl.find_opt t.instances cid with
  | None -> ()  (* late duplicate of a forgotten instance *)
  | Some inst -> (
      match inst.i_phase with
      | Deciding _ -> ()  (* votes already counted; duplicates are no-ops *)
      | Voting -> (
          (match List.find_opt (fun p -> p.p_name = rm) inst.i_parts with
          | Some p -> p.p_vote <- Some yes
          | None -> ());
          match List.filter_map (fun p -> p.p_vote) inst.i_parts with
          | votes when List.length votes = List.length inst.i_parts ->
              decide t inst (List.for_all Fun.id votes)
          | _ -> ()))

let on_ack t cid rm =
  match Hashtbl.find_opt t.instances cid with
  | None -> ()
  | Some inst -> (
      match inst.i_phase with
      | Voting -> ()
      | Deciding commit ->
          (match List.find_opt (fun p -> p.p_name = rm) inst.i_parts with
          | Some p -> p.p_acked <- true
          | None -> ());
          if List.for_all (fun p -> p.p_acked) inst.i_parts then finish t inst commit)

let on_inquiry t cid rm =
  match Hashtbl.find_opt t.instances cid with
  | Some { i_phase = Deciding commit; i_durable = true; _ } ->
      send t ~dst:rm (Decision { cid; commit })
  | Some { i_phase = Deciding _; i_durable = false; _ } ->
      ()  (* decision not yet durable: answering now could outrun its record *)
  | Some { i_phase = Voting; _ } -> ()  (* still undecided; retransmission will drive it *)
  | None ->
      (* no durable trace of this instance: the presumed-abort answer *)
      send t ~dst:rm (Decision { cid; commit = false })

let handle t ~src:_ msg =
  if not (t.halted ()) then
    match msg with
    | Vote { cid; rm; yes } -> on_vote t cid rm yes
    | Ack { cid; rm } -> on_ack t cid rm
    | Inquiry { cid; rm } -> on_inquiry t cid rm
    | Prepare _ | Decision _ -> ()  (* participant-addressed; not for us *)

let create ~sim ~bus ~log ?log_durable ?metrics ?(tracer = Obs.Tracer.disabled)
    ?(retransmit_after = 1.0) ?(halted = fun () -> false) ?(name = "coord") () =
  if retransmit_after <= 0.0 then
    invalid_arg "Coordinator.create: retransmit_after must be positive";
  let log_durable =
    match log_durable with
    | Some f -> f
    | None ->
        (* without a group-commit scheduler the plain log is synchronous:
           the record is durable when [log] returns *)
        fun record k ->
          log record;
          k ()
  in
  let t =
    {
      name;
      sim;
      bus;
      log;
      log_durable;
      halted;
      metrics;
      tracer;
      retransmit_after;
      instances = Hashtbl.create 16;
      next_cid = 1;
    }
  in
  Bus.register bus name (handle t);
  t

let name t = t.name
let open_instances t = Hashtbl.length t.instances
let set_first_cid t cid = t.next_cid <- max t.next_cid cid

let fingerprint t =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "next=%d" t.next_cid);
  Hashtbl.fold (fun cid inst acc -> (cid, inst) :: acc) t.instances []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (cid, inst) ->
         Buffer.add_string b
           (Printf.sprintf "|c%d:a_{%d_%d}:%s" cid inst.i_pid inst.i_act
              (match inst.i_phase with
              | Voting -> "V"
              | Deciding true -> if inst.i_durable then "DC" else "DCu"
              | Deciding false -> "DA"));
         List.iter
           (fun p ->
             Buffer.add_string b
               (Printf.sprintf ";%s%s%s" p.p_name
                  (match p.p_vote with None -> "?" | Some true -> "y" | Some false -> "n")
                  (if p.p_acked then "+" else "-")))
           inst.i_parts);
  Buffer.contents b

let start t ~pid ~act ~participants ~on_done =
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  let parts =
    List.map
      (fun (rm, token) ->
        { p_name = Rm.name rm; p_token = token; p_vote = None; p_acked = false })
      participants
  in
  let inst =
    {
      i_cid = cid;
      i_pid = pid;
      i_act = act;
      i_parts = parts;
      i_started = Des.now t.sim;
      i_phase = Voting;
      i_durable = false;
      i_on_done = on_done;
      i_cancel = ignore;
    }
  in
  t.log
    (Wal.Coord_begin { cid; pid; act; parts = List.map (fun p -> p.p_name) parts });
  Hashtbl.replace t.instances cid inst;
  (match parts with
  | [] ->
      (* no participants: trivially committed; [decide]'s durable
         continuation closes the instance out *)
      decide t inst true
  | _ ->
      List.iter (fun p -> send t ~dst:p.p_name (Prepare { cid; token = p.p_token })) parts;
      (* under synchronous (fault-free) delivery the whole round may have
         completed inside the sends: only arm the retransmission timer for
         an instance that is still open *)
      if Hashtbl.mem t.instances cid then arm_timer t inst);
  cid

let cooperative_decision ~rms ~cid =
  List.exists (fun rm -> Rm.known_decision rm ~cid = Some true) rms

module Participant = struct
  let attach ~sim ~bus ~rm ?metrics ?inquiry_after
      ?(on_resolved = fun ~token:_ ~commit:_ -> ()) ?(halted = fun () -> false) () =
    let name = Rm.name rm in
    let mincr n = match metrics with None -> () | Some m -> Metrics.incr m n in
    let inquiry_cancels : (int, unit -> unit) Hashtbl.t = Hashtbl.create 8 in
    let cancel_inquiry cid =
      match Hashtbl.find_opt inquiry_cancels cid with
      | Some cancel ->
          cancel ();
          Hashtbl.remove inquiry_cancels cid
      | None -> ()
    in
    let arm_inquiry cid coord =
      match inquiry_after with
      | None -> ()
      | Some d ->
          let rec arm () =
            let cancel =
              Des.after_cancellable sim d (fun _ ->
                  if
                    (not (halted ()))
                    && Rm.known_decision rm ~cid = None
                    && Rm.in_doubt_token rm ~cid <> None
                  then begin
                    (* in doubt for too long: run the termination protocol
                       by re-inquiring the coordinator *)
                    mincr "msg_inquiries";
                    Bus.send bus ~src:name ~dst:coord (Inquiry { cid; rm = name });
                    arm ()
                  end
                  else Hashtbl.remove inquiry_cancels cid)
            in
            Hashtbl.replace inquiry_cancels cid cancel
          in
          arm ()
    in
    let handle ~src msg =
      if not (halted ()) then
        match msg with
        | Prepare { cid; token } -> (
            match Rm.known_decision rm ~cid with
            | Some _ ->
                (* duplicate PREPARE arriving after the decision was applied:
                   the coordinator can only be missing our ack *)
                Bus.send bus ~src:name ~dst:src (Ack { cid; rm = name })
            | None ->
                let yes = Rm.is_prepared rm ~token in
                if yes then begin
                  Rm.mark_in_doubt rm ~token ~cid;
                  if not (Hashtbl.mem inquiry_cancels cid) then arm_inquiry cid src
                end;
                Bus.send bus ~src:name ~dst:src (Vote { cid; rm = name; yes }))
        | Decision { cid; commit } ->
            cancel_inquiry cid;
            (match Rm.known_decision rm ~cid with
            | Some _ -> ()  (* duplicate DECISION: already applied *)
            | None -> (
                match Rm.in_doubt_token rm ~cid with
                | Some token ->
                    if Rm.resolve_prepared rm ~token ~commit then begin
                      mincr "indoubt_resolved";
                      on_resolved ~token ~commit
                    end
                | None ->
                    (* we voted no (or never prepared): nothing to apply,
                       but remember the decision for idempotence *)
                    Rm.record_decision rm ~cid ~commit));
            Bus.send bus ~src:name ~dst:src (Ack { cid; rm = name })
        | Vote _ | Ack _ | Inquiry _ -> ()  (* coordinator-addressed *)
    in
    Bus.register bus name handle
end

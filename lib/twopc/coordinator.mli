(** Message-driven, durably-logged, presumed-abort two-phase commit.

    This is the crash-tolerant form of the protocol Lemma 1 relies on:
    the commit of a non-compensatable (prepared) activity is driven by an
    explicit coordinator exchanging [PREPARE] / [VOTE] / [DECISION] /
    [ACK] messages with the owning resource managers over an unreliable
    {!Tpm_sim.Bus}, on the virtual clock.

    {b Presumed abort.}  The coordinator write-ahead-logs only three
    records: [Coord_begin] when an instance opens, [Coord_committed] when
    all votes are yes — {e before} any DECISION message is sent — and
    [Coord_forgotten] once every participant acknowledged.  Abort
    decisions are never logged: recovery (and the coordinator answering
    an {!msg.Inquiry} for an unknown instance) presumes abort exactly
    when no commit record exists.

    {b Fault tolerance.}  Messages may be dropped, duplicated, delayed
    and reordered by the bus fault plan.  A per-instance retransmission
    timer re-sends PREPARE to unvoted and DECISION to unacknowledged
    participants; every handler is idempotent (duplicate votes, decisions
    and acks are absorbed), so the protocol terminates under any fault
    plan that eventually delivers.  Participants that stay in doubt too
    long re-inquire the coordinator (the termination protocol);
    cooperative termination across sibling participants covers
    coordinator amnesia during recovery ({!cooperative_decision}). *)

type msg =
  | Prepare of {
      cid : int;
      token : int;
    }
  | Vote of {
      cid : int;
      rm : string;
      yes : bool;
    }
  | Decision of {
      cid : int;
      commit : bool;
    }
  | Ack of {
      cid : int;
      rm : string;
    }
  | Inquiry of {
      cid : int;
      rm : string;
    }  (** participant-initiated termination protocol probe *)

val pp_msg : Format.formatter -> msg -> unit

type t

val create :
  sim:Tpm_sim.Des.t ->
  bus:msg Tpm_sim.Bus.t ->
  log:(Tpm_wal.Wal.record -> unit) ->
  ?log_durable:(Tpm_wal.Wal.record -> (unit -> unit) -> unit) ->
  ?metrics:Tpm_sim.Metrics.t ->
  ?tracer:Tpm_obs.Obs.Tracer.t ->
  ?retransmit_after:float ->
  ?halted:(unit -> bool) ->
  ?name:string ->
  unit ->
  t
(** Registers the coordinator endpoint (default name ["coord"]) on the
    bus.  [log] must append durably (it is the scheduler's WAL append).
    [log_durable record k] appends [record] and runs [k] once the record
    is actually durable — the group-commit scheduler passes a batching
    implementation so DECISION messages only leave after the decision
    record's fsync; the default runs [k] synchronously (a plain [log] is
    durable on return).
    [retransmit_after] is the timer period for re-sending unanswered
    messages (default 1.0 virtual time units); [halted] silences the
    coordinator after a crash.  [tracer] (default disabled) records a
    retransmission event for every re-sent PREPARE/DECISION — ordinary
    traffic is traced by the bus itself ({!Tpm_sim.Bus.set_tracer}). *)

val start :
  t ->
  pid:int ->
  act:int ->
  participants:(Tpm_subsys.Rm.t * int) list ->
  on_done:(commit:bool -> unit) ->
  int
(** Opens an instance for the prepared activity [(pid, act)] whose tokens
    are held by the given resource managers, logs [Coord_begin], sends
    PREPAREs and returns the instance id.  [on_done] fires (once) when
    every participant has acknowledged the decision — for a commit, after
    the activity's effects are durable at every participant.  An empty
    participant list commits immediately. *)

val name : t -> string
val open_instances : t -> int

val fingerprint : t -> string
(** Canonical rendering of the coordinator's protocol state: every open
    instance with its phase (voting / deciding), per-participant votes
    and acknowledgements, plus the next instance id.  Part of the
    explorer's state-deduplication key. *)

val set_first_cid : t -> int -> unit
(** Raises the next instance id (never lowers it): a recovered scheduler
    skips the id range of the pre-crash coordinator so stale remembered
    decisions cannot be confused with new instances. *)

val cooperative_decision : rms:Tpm_subsys.Rm.t list -> cid:int -> bool
(** Cooperative termination under coordinator amnesia: an in-doubt
    participant's instance commits iff {e some} sibling resource manager
    remembers a commit decision for [cid]; otherwise abort is presumed.
    Sound because a commit decision reaches participants only after it
    was durably logged, and complete up to the genuinely undecidable case
    (no participant ever saw the decision), where presuming abort agrees
    with every participant's subsequent behaviour. *)

module Participant : sig
  val attach :
    sim:Tpm_sim.Des.t ->
    bus:msg Tpm_sim.Bus.t ->
    rm:Tpm_subsys.Rm.t ->
    ?metrics:Tpm_sim.Metrics.t ->
    ?inquiry_after:float ->
    ?on_resolved:(token:int -> commit:bool -> unit) ->
    ?halted:(unit -> bool) ->
    unit ->
    unit
  (** Registers the resource manager's participant endpoint (named
      {!Tpm_subsys.Rm.name}).  On PREPARE it votes yes iff the token is
      still prepared, marking it in doubt; on DECISION it applies the
      outcome idempotently ({!Tpm_subsys.Rm.resolve_prepared}), invokes
      [on_resolved] in the same synchronous block (the scheduler logs the
      participant-side [Prepared_decided] record there), and
      acknowledges.  With [inquiry_after] set, a participant left in
      doubt that long sends INQUIRY probes to the coordinator until the
      decision arrives — the termination protocol. *)
end

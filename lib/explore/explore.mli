(** Systematic interleaving exploration (DPOR-lite).

    Stateless replay-based depth-first search over the simulation's
    recorded choice points ({!Tpm_sim.Choice}): a branch is identified by
    its decision prefix (a script of option indices); running a branch
    replays the prefix deterministically and takes canonical defaults
    beyond it, recording every decision with its per-option descriptors
    and a state fingerprint.  Alternatives at each recorded decision
    spawn new branches; three prunings bound the tree:

    - {b sibling symmetry}: an option whose descriptor equals an
      already-scheduled sibling's is skipped (identical pending messages
      are interchangeable);
    - {b sleep-set / persistent-set heuristic}: a delivery-order option
      that commutes with every option it would jump over — different
      endpoint {e and} different 2PC instance, read off the
      ["dst:c<cid>:<kind>"] descriptors — is skipped, since some explored
      order already covers it.  Failure, crash, drop and duplication
      choices are always treated as dependent;
    - {b state-fingerprint deduplication}: a (fingerprint, option) pair
      already expanded elsewhere in the tree is not expanded again
      ({!Tpm_scheduler.Scheduler.state_fingerprint} excludes virtual
      time, deliberately — see its doc).

    Every branch is checked against the full oracle suite (termination,
    schedule legality, PRED, commit serializability, Proc-REC, leaked
    prepared tokens, presumed-abort soundness across a crash, store
    explainability, fault-free-twin store equality).  A violating branch
    is greedily minimized and can be serialized to a trace file that
    [tpm explore --replay] reproduces.

    The prunings are heuristic (hence DPOR-{e lite}); [explore
    ~prune:false] enumerates the unpruned tree, and the self-test
    cross-validates the two on the small built-in scenarios. *)

type scenario = {
  name : string;
  descr : string;
  spec : Tpm_core.Conflict.t;
  make_rms : unit -> Tpm_subsys.Rm.t list;
  procs : Tpm_core.Process.t list;
  submit_at : int -> float;  (** submission time of the i-th process *)
  config : Tpm_scheduler.Scheduler.config;
  crash_explore : bool;
      (** offer a crash choice point after every WAL append *)
}

val scenarios : scenario list
(** The built-in configurations:
    - ["lemma1"]: the figure-1 shape — a compensatable activity of one
      process conflicting with another process's pivot, the first
      process's own pivot failable.  Lemma 1 defers the second pivot's
      commit; every interleaving satisfies every oracle.
    - ["lemma1-mut"]: the same with the
      {!Tpm_scheduler.Scheduler.config.debug_no_lemma1} mutation: the
      pivot commits immediately and the explorer must find the branch
      where the first process aborts and compensates {e after} it — the
      PRED violation of figure 1 (the mutation self-test).
    - ["twopc3"]: three processes, two concurrent 2PC instances against
      a long-running conflicting predecessor — real delivery-order
      branching.
    - ["twopc3-crash"]: ["twopc3"] with systematic crash placement after
      every WAL append, each crash followed by recovery and the
      post-crash oracles. *)

val find_scenario : string -> scenario option

type outcome = {
  decisions : Tpm_sim.Choice.decision list;  (** the branch's full trace *)
  violations : string list;  (** empty iff every oracle passed *)
  crashed : bool;  (** a crash choice fired (recovery ran) *)
  forensics : string lazy_t;
      (** rendered {!Tpm_scheduler.Scheduler.forensics} of the final
          scheduler; forced only when a violation is reported *)
}

val run_branch : scenario -> script:int list -> outcome
(** Runs one branch: scripted decisions first, canonical defaults beyond
    (option 0: no failure, no crash, oldest pending message first).  If a
    crash choice fires, recovery runs passively to completion and the
    oracles judge the recovered execution. *)

type stats = {
  mutable explored : int;  (** branches actually run *)
  mutable pruned_symmetry : int;
  mutable pruned_sleep : int;
  mutable pruned_visited : int;
  mutable max_depth : int;  (** longest decision trace seen *)
  mutable truncated : bool;  (** the branch cap cut the search short *)
}

type found = {
  script : int list;  (** the violating branch as first discovered *)
  minimized : int list;  (** greedily minimized equivalent *)
  violations : string list;
}

type report = {
  stats : stats;
  found : found list;
}

val explore :
  ?prune:bool ->
  ?max_branches:int ->
  ?log:(string -> unit) ->
  scenario ->
  report
(** Exhausts the scenario's interleaving tree (depth first, pruned
    unless [prune:false]; default branch cap 20000).  Violating branches
    are minimized before being reported. *)

val minimize : scenario -> int list -> int list
(** Greedy trace minimization: each non-default decision is reset to the
    canonical option in turn and the reset kept whenever the re-run
    branch still violates some oracle; trailing defaults are dropped. *)

val save_trace : path:string -> scenario -> int list -> unit
(** Serializes a (minimized) script: re-runs it to recover the decision
    tags and writes one [choice <tag> <arity> <chosen>] line per
    decision, prefixed by the scenario name and the violations the run
    produced. *)

val load_trace : string -> (string * int list, string) result
(** Parses a {!save_trace} file back into (scenario name, script). *)

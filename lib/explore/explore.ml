open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Choice = Tpm_sim.Choice
module Faults = Tpm_sim.Faults
module Rm = Tpm_subsys.Rm
module Service = Tpm_subsys.Service
module Store = Tpm_kv.Store
module Tx = Tpm_kv.Tx
module Value = Tpm_kv.Value
module Wal = Tpm_wal.Wal
module Obs = Tpm_obs.Obs

type scenario = {
  name : string;
  descr : string;
  spec : Conflict.t;
  make_rms : unit -> Rm.t list;
  procs : Process.t list;
  submit_at : int -> float;
  config : Scheduler.config;
  crash_explore : bool;
}

(* ------------------------------------------------------------------ *)
(* Built-in scenarios: tiny process configurations whose interleaving
   trees are exhaustible, each exercising a distinct slice of the
   protocol (Lemma-1 deferral, concurrent 2PC, crash recovery).  All
   service bodies are per-key counters with disjoint key footprints:
   conflicts are declared semantically in the spec, never through lock
   contention, and any committed-activity set explains the stores
   order-independently (the fault-free-twin oracle relies on this). *)

let inc key tx ~args:_ =
  let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
  Tx.set tx key (Value.Int (v + 1));
  Value.Int (v + 1)

let dec key tx ~args:_ =
  let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
  Tx.set tx key (Value.Int (v - 1));
  Value.Int (v - 1)

let act = Activity.make

let lemma1_registry () =
  let reg = Service.Registry.create () in
  List.iter
    (Service.Registry.register reg)
    [
      Service.make ~name:"resv"
        ~compensation:(Service.Inverse_service "resv_undo")
        ~writes:[ "a.r" ] (inc "a.r");
      Service.make ~name:"resv_undo" ~writes:[ "a.r" ] (dec "a.r");
      Service.make ~name:"bill" ~writes:[ "a.b" ] (inc "a.b");
      Service.make ~name:"ship" ~writes:[ "b.s" ] (inc "b.s");
    ];
  reg

let lemma1_rms () =
  let reg = lemma1_registry () in
  [
    Rm.create ~name:"A" ~registry:reg ();
    (* P1's pivot is the failable activity: one injected failure exhausts
       the transient-attempt budget (max_failures - 1 = 1) and degrades
       P1 to abort + compensation of its compensatable predecessor *)
    Rm.create ~name:"B" ~registry:reg
      ~fail_prob:(fun s -> if s = "ship" then 0.5 else 0.0)
      ~max_failures:2 ();
  ]

(* P1: resv (compensatable, A) << ship (pivot, B, failable);
   P2: bill (pivot, A), conflicting with resv in the spec only — the
   key footprints are disjoint, so nothing blocks at the lock level and
   the scheduler's admission decision alone orders the two.  The
   figure-1 shape: if bill commits while P1 is still alive and P1 then
   aborts, resv is compensated after the conflicting commit. *)
let lemma1_procs =
  [
    Process.make_exn ~pid:1
      ~activities:
        [
          act ~proc:1 ~act:1 ~service:"resv" ~kind:Activity.Compensatable
            ~subsystem:"A" ();
          act ~proc:1 ~act:2 ~service:"ship" ~kind:Activity.Pivot ~subsystem:"B" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[];
    Process.make_exn ~pid:2
      ~activities:
        [ act ~proc:2 ~act:1 ~service:"bill" ~kind:Activity.Pivot ~subsystem:"A" () ]
      ~prec:[] ~pref:[];
  ]

let lemma1_spec = Conflict.of_pairs [ ("resv", "bill") ]

let lemma1 =
  {
    name = "lemma1";
    descr = "2 processes, conflicting pivot behind Lemma-1 deferral";
    spec = lemma1_spec;
    make_rms = lemma1_rms;
    procs = lemma1_procs;
    submit_at = (fun i -> 0.5 *. float_of_int i);
    (* bill is faster than ship, so in the failure branch P2 commits
       strictly before P1's pivot fails — without the Lemma-1 deferral
       (the mutation below) the commit is immediate and the subsequent
       compensation of resv violates PRED; with the deferral the commit
       waits for P1's fate and every branch stays clean *)
    config =
      {
        Scheduler.default_config with
        seed = 5;
        service_time = (fun s -> if s = "bill" then 0.4 else 1.0);
      };
    crash_explore = false;
  }

let lemma1_mut =
  {
    lemma1 with
    name = "lemma1-mut";
    descr = "lemma1 with the Lemma-1 gate disabled (must violate PRED)";
    config = { lemma1.config with debug_no_lemma1 = true };
  }

let twopc3_registry () =
  let reg = Service.Registry.create () in
  List.iter
    (Service.Registry.register reg)
    [
      Service.make ~name:"hold"
        ~compensation:(Service.Inverse_service "hold_undo")
        ~writes:[ "a.h" ] (inc "a.h");
      Service.make ~name:"hold_undo" ~writes:[ "a.h" ] (dec "a.h");
      Service.make ~name:"chk" ~writes:[ "a.c" ] (inc "a.c");
      Service.make ~name:"pay2" ~writes:[ "b.p" ] (inc "b.p");
      Service.make ~name:"pay3" ~writes:[ "c.p" ] (inc "c.p");
    ];
  reg

let twopc3_rms () =
  let reg = twopc3_registry () in
  [
    Rm.create ~name:"A" ~registry:reg ();
    Rm.create ~name:"B" ~registry:reg ();
    Rm.create ~name:"C" ~registry:reg ();
  ]

(* P1 holds a compensatable and then a slow retriable, staying
   uncommitted long enough that P2's and P3's pivots — both conflicting
   with the hold, not with each other — are prepared behind two
   concurrent 2PC instances whose messages genuinely interleave. *)
let twopc3_procs =
  [
    Process.make_exn ~pid:1
      ~activities:
        [
          act ~proc:1 ~act:1 ~service:"hold" ~kind:Activity.Compensatable
            ~subsystem:"A" ();
          act ~proc:1 ~act:2 ~service:"chk" ~kind:Activity.Retriable ~subsystem:"A" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[];
    Process.make_exn ~pid:2
      ~activities:
        [ act ~proc:2 ~act:1 ~service:"pay2" ~kind:Activity.Pivot ~subsystem:"B" () ]
      ~prec:[] ~pref:[];
    Process.make_exn ~pid:3
      ~activities:
        [ act ~proc:3 ~act:1 ~service:"pay3" ~kind:Activity.Pivot ~subsystem:"C" () ]
      ~prec:[] ~pref:[];
  ]

let twopc3_spec = Conflict.of_pairs [ ("hold", "pay2"); ("hold", "pay3") ]

let twopc3 =
  {
    name = "twopc3";
    descr = "3 processes, two concurrent 2PC instances";
    spec = twopc3_spec;
    make_rms = twopc3_rms;
    procs = twopc3_procs;
    submit_at = (fun i -> 0.3 *. float_of_int i);
    config =
      {
        Scheduler.default_config with
        seed = 9;
        service_time = (fun s -> if s = "chk" then 6.0 else 1.0);
      };
    crash_explore = false;
  }

let twopc3_crash =
  {
    twopc3 with
    name = "twopc3-crash";
    descr = "twopc3 with a crash choice after every WAL append";
    crash_explore = true;
  }

(* ------------------------------------------------------------------ *)
(* Section 3.6 scenarios: the enforced weak order racing a group abort
   and an in-doubt 2PC instance. *)

let weakabort_registry () =
  let reg = Service.Registry.create () in
  List.iter
    (Service.Registry.register reg)
    [
      Service.make ~name:"resv"
        ~compensation:(Service.Inverse_service "resv_undo")
        ~writes:[ "a.r" ] (inc "a.r");
      Service.make ~name:"resv_undo" ~writes:[ "a.r" ] (dec "a.r");
      Service.make ~name:"bill"
        ~compensation:(Service.Inverse_service "bill_undo")
        ~writes:[ "a.b" ] (inc "a.b");
      Service.make ~name:"bill_undo" ~writes:[ "a.b" ] (dec "a.b");
      Service.make ~name:"ship" ~writes:[ "b.s" ] (inc "b.s");
    ];
  reg

let weakabort_rms () =
  let reg = weakabort_registry () in
  [
    Rm.create ~name:"A" ~registry:reg ();
    Rm.create ~name:"B" ~registry:reg
      ~fail_prob:(fun s -> if s = "ship" then 0.5 else 0.0)
      ~max_failures:3 ();
  ]

(* P1: a slow compensatable resv (A) then a failable pivot ship (B);
   P2: a fast compensatable bill (A) conflicting with resv.  Under the
   enforced weak order bill executes overlapping resv and its local
   commit is held behind resv's; the failure branch group-aborts P1
   while P2 sits weakly ordered behind it — the re-invocation and the
   compensation of resv must still leave every branch PRED and the
   local schedule commit-order serializable. *)
let weakabort_procs =
  [
    Process.make_exn ~pid:1
      ~activities:
        [
          act ~proc:1 ~act:1 ~service:"resv" ~kind:Activity.Compensatable
            ~subsystem:"A" ();
          act ~proc:1 ~act:2 ~service:"ship" ~kind:Activity.Pivot ~subsystem:"B" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[];
    Process.make_exn ~pid:2
      ~activities:
        [
          act ~proc:2 ~act:1 ~service:"bill" ~kind:Activity.Compensatable
            ~subsystem:"A" ();
        ]
      ~prec:[] ~pref:[];
  ]

let weakabort =
  {
    name = "weak-abort";
    descr = "enforced weak order racing a group abort";
    spec = Conflict.of_pairs [ ("resv", "bill") ];
    make_rms = weakabort_rms;
    procs = weakabort_procs;
    submit_at = (fun i -> 0.3 *. float_of_int i);
    config =
      {
        Scheduler.default_config with
        seed = 7;
        weak_order = true;
        order_enforcement = true;
        service_time = (fun s -> if s = "resv" then 2.0 else if s = "bill" then 0.4 else 1.0);
      };
    crash_explore = false;
  }

let weakindoubt_registry () =
  let reg = Service.Registry.create () in
  List.iter
    (Service.Registry.register reg)
    [
      Service.make ~name:"hold"
        ~compensation:(Service.Inverse_service "hold_undo")
        ~writes:[ "a.h" ] (inc "a.h");
      Service.make ~name:"hold_undo" ~writes:[ "a.h" ] (dec "a.h");
      Service.make ~name:"chk" ~writes:[ "a.c" ] (inc "a.c");
      Service.make ~name:"pay2" ~writes:[ "b.p" ] (inc "b.p");
      Service.make ~name:"pay3" ~writes:[ "c.p" ] (inc "c.p");
      Service.make ~name:"audit"
        ~compensation:(Service.Inverse_service "audit_undo")
        ~writes:[ "b.a" ] (inc "b.a");
      Service.make ~name:"audit_undo" ~writes:[ "b.a" ] (dec "b.a");
    ];
  reg

let weakindoubt_rms () =
  let reg = weakindoubt_registry () in
  [
    Rm.create ~name:"A" ~registry:reg ();
    Rm.create ~name:"B" ~registry:reg ();
    Rm.create ~name:"C" ~registry:reg ();
  ]

(* P1 holds a compensatable then a slow retriable, keeping P2's and
   P3's conflicting pivots prepared (in doubt) behind two concurrent
   2PC instances whose messages interleave; P4's compensatable audit
   conflicts with pay2 and — under the enforced weak order — executes
   overlapping the in-doubt pivot, its local commit held until the 2PC
   decision.  The message interleavings race the enforcement grants. *)
let weakindoubt_procs =
  [
    Process.make_exn ~pid:1
      ~activities:
        [
          act ~proc:1 ~act:1 ~service:"hold" ~kind:Activity.Compensatable
            ~subsystem:"A" ();
          act ~proc:1 ~act:2 ~service:"chk" ~kind:Activity.Retriable ~subsystem:"A" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[];
    Process.make_exn ~pid:2
      ~activities:
        [ act ~proc:2 ~act:1 ~service:"pay2" ~kind:Activity.Pivot ~subsystem:"B" () ]
      ~prec:[] ~pref:[];
    Process.make_exn ~pid:3
      ~activities:
        [ act ~proc:3 ~act:1 ~service:"pay3" ~kind:Activity.Pivot ~subsystem:"C" () ]
      ~prec:[] ~pref:[];
    Process.make_exn ~pid:4
      ~activities:
        [
          act ~proc:4 ~act:1 ~service:"audit" ~kind:Activity.Compensatable
            ~subsystem:"B" ();
        ]
      ~prec:[] ~pref:[];
  ]

let weakindoubt =
  {
    name = "weak-indoubt";
    descr = "enforced weak order overlapping in-doubt 2PC pivots";
    spec =
      Conflict.of_pairs [ ("hold", "pay2"); ("hold", "pay3"); ("pay2", "audit") ];
    make_rms = weakindoubt_rms;
    procs = weakindoubt_procs;
    submit_at = (fun i -> 0.3 *. float_of_int i);
    config =
      {
        Scheduler.default_config with
        seed = 13;
        weak_order = true;
        order_enforcement = true;
        service_time = (fun s -> if s = "chk" then 6.0 else 1.0);
      };
    crash_explore = false;
  }

let weakindoubt_crash =
  {
    weakindoubt with
    name = "weak-indoubt-crash";
    descr = "weak-indoubt with a crash choice after every WAL append";
    crash_explore = true;
  }

let scenarios =
  [ lemma1; lemma1_mut; twopc3; twopc3_crash; weakabort; weakindoubt; weakindoubt_crash ]
let find_scenario name = List.find_opt (fun s -> s.name = name) scenarios

(* ------------------------------------------------------------------ *)
(* Oracles *)

type outcome = {
  decisions : Choice.decision list;
  violations : string list;
  crashed : bool;
  forensics : string lazy_t;
}

let horizon = 10_000.0

(* (pid, act) pairs whose coordinator durably logged the commit decision
   before the crash (presumed-abort soundness axis) *)
let durable_commits records =
  let acts = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Coord_begin { cid; pid; act; _ } -> Hashtbl.replace acts cid (pid, act)
      | _ -> ())
    records;
  List.filter_map
    (function
      | Wal.Coord_committed { cid; _ } -> Hashtbl.find_opt acts cid
      | _ -> None)
    records
  |> List.sort_uniq compare

let aborted_after_recovery t2 pid act =
  List.exists
    (function
      | Wal.Prepared_decided { pid = p; act = a; commit = false } -> p = pid && a = act
      | _ -> false)
    (Scheduler.wal_records t2)

let forward_in_history h pid act =
  List.exists
    (function
      | Schedule.Act inst ->
          (not (Activity.is_inverse inst))
          && Activity.instance_proc inst = pid
          && (Activity.instance_base inst).Activity.id.Activity.act = act
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> false)
    (Schedule.events h)

(* Replay every occurrence of the history, in emission order, into fresh
   subsystems; equal stores mean the surviving state is exactly
   explained by the recovered history. *)
let replay_explains scenario history rms =
  let fresh = scenario.make_rms () in
  let find name l = List.find (fun rm -> Rm.name rm = name) l in
  let token = ref 0 in
  let ok = ref true in
  List.iter
    (function
      | Schedule.Act inst ->
          let a = Activity.instance_base inst in
          let rm = find a.Activity.subsystem fresh in
          let service =
            if Activity.is_inverse inst then
              match
                (Service.Registry.find (Rm.registry rm) a.Activity.service)
                  .Service.compensation
              with
              | Service.Inverse_service inv -> inv
              | Service.No_compensation | Service.Snapshot_undo ->
                  failwith "explore: history replay needs inverse services"
            else a.Activity.service
          in
          incr token;
          (match Rm.invoke rm ~token:!token ~service ~attempt:max_int () with
          | Rm.Committed _ -> ()
          | Rm.Prepared _ | Rm.Failed | Rm.Blocked _ | Rm.Unavailable -> ok := false)
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ())
    (Schedule.events history);
  !ok
  && List.for_all
       (fun rm -> Store.equal_state (Rm.store rm) (Rm.store (find (Rm.name rm) fresh)))
       rms

let store_images rms =
  List.map
    (fun rm ->
      ( Rm.name rm,
        List.map (fun (k, v) -> (k, Value.to_string v)) (Store.snapshot (Rm.store rm))
      ))
    rms
  |> List.sort compare

(* a branch is fault-free when no failure, crash, drop or duplication
   choice was taken — only delivery order may differ from the canonical
   root branch, whose final stores such a branch must reproduce *)
let fault_free decisions crashed =
  (not crashed)
  && List.for_all
       (fun (d : Choice.decision) ->
         d.Choice.chosen = 0
         || not
              (List.exists
                 (fun p -> String.length d.Choice.tag >= String.length p
                           && String.sub d.Choice.tag 0 (String.length p) = p)
                 [ "fail:"; "crash:"; "drop:"; "dup:" ]))
       decisions

(* final stores of the canonical (empty-script) branch, memoized per
   scenario; [None] while being computed or when the root itself is
   unusable as a twin *)
let twin_tbl : (string, (string * (string * string) list) list option) Hashtbl.t =
  Hashtbl.create 8

let rec twin scenario =
  match Hashtbl.find_opt twin_tbl scenario.name with
  | Some v -> v
  | None ->
      Hashtbl.replace twin_tbl scenario.name None;
      let out, stores = run_raw scenario ~script:[] in
      let v =
        if out.violations = [] && not out.crashed then Some stores else None
      in
      Hashtbl.replace twin_tbl scenario.name v;
      v

(* Runs one branch and judges it against every oracle.  Returns the
   outcome plus the final store images (for the twin comparison). *)
and run_raw scenario ~script =
  let choice = Choice.driven ~script () in
  let rms = scenario.make_rms () in
  let faults =
    if scenario.crash_explore then Faults.make ~crash_explore:true () else Faults.none
  in
  let tracer = Obs.Tracer.create ~ring_capacity:256 () in
  let t =
    Scheduler.create ~config:scenario.config ~faults ~choice ~tracer
      ~spec:scenario.spec ~rms ()
  in
  Choice.set_fingerprinter choice (fun () -> Scheduler.state_fingerprint t);
  List.iteri (fun i p -> Scheduler.submit t ~at:(scenario.submit_at i) p) scenario.procs;
  Scheduler.run ~until:horizon t;
  let crashed = Scheduler.is_crashed t in
  let violations = ref [] in
  let check name cond = if not cond then violations := name :: !violations in
  let final =
    if not crashed then Some t
    else begin
      let records = Scheduler.wal_records t in
      match
        Scheduler.recover ~config:scenario.config ~spec:scenario.spec ~rms
          ~procs:scenario.procs records
      with
      | Error e ->
          check (Printf.sprintf "recovery failed: %s" e) false;
          None
      | Ok t2 ->
          Scheduler.run ~until:horizon t2;
          (* presumed-abort soundness: decisions durable before the crash
             must survive it *)
          List.iter
            (fun (pid, act) ->
              check
                (Printf.sprintf "durably committed a_{%d,%d} aborted by recovery" pid
                   act)
                (not (aborted_after_recovery t2 pid act));
              check
                (Printf.sprintf "durably committed a_{%d,%d} missing from history" pid
                   act)
                (forward_in_history (Scheduler.history t2) pid act))
            (durable_commits records);
          Some t2
    end
  in
  let decisions = Choice.trace choice in
  (match final with
  | None -> ()
  | Some f ->
      let h = Scheduler.history f in
      check "did not finish" (Scheduler.finished f);
      check "illegal history" (Schedule.legal h);
      check "PRED violated" (Criteria.pred h);
      check "not commit-order serializable" (Criteria.committed_serializable h);
      check "Proc-REC violated" (Criteria.process_recoverable h);
      check "leaked prepared token"
        (List.for_all (fun rm -> Rm.prepared_tokens rm = []) rms);
      (* under order enforcement the subsystem-local schedules must be
         commit-order serializable (vacuous otherwise) *)
      check "locals not commit-order serializable"
        (List.for_all
           (fun (_, l) -> Tpm_composite.Local.commit_order_serializable l)
           (Scheduler.local_histories f));
      check "stores not explained by history replay" (replay_explains scenario h rms));
  let stores = store_images rms in
  (if !violations = [] && fault_free decisions crashed then
     match twin scenario with
     | Some tw -> check "stores differ from fault-free twin" (stores = tw)
     | None -> ());
  let forensics =
    lazy
      (match final with
      | Some f -> Format.asprintf "%a" (fun fmt f -> Scheduler.forensics fmt f) f
      | None -> "(no scheduler survived the branch)")
  in
  ({ decisions; violations = List.rev !violations; crashed; forensics }, stores)

let run_branch scenario ~script = fst (run_raw scenario ~script)

(* ------------------------------------------------------------------ *)
(* DFS with DPOR-lite pruning *)

type stats = {
  mutable explored : int;
  mutable pruned_symmetry : int;
  mutable pruned_sleep : int;
  mutable pruned_visited : int;
  mutable max_depth : int;
  mutable truncated : bool;
}

type found = {
  script : int list;
  minimized : int list;
  violations : string list;
}

type report = {
  stats : stats;
  found : found list;
}

(* dependence of two pending-delivery options, read off their
   "dst:c<cid>:<kind>" descriptors: messages of distinct endpoints AND
   distinct 2PC instances commute; anything unparseable is conservatively
   dependent *)
let delivery_independent d1 d2 =
  match (String.split_on_char ':' d1, String.split_on_char ':' d2) with
  | dst1 :: cid1 :: _, dst2 :: cid2 :: _ -> dst1 <> dst2 && cid1 <> cid2
  | _ -> false

let minimize scenario script =
  let violating s = (run_branch scenario ~script:s).violations <> [] in
  let arr = Array.of_list script in
  (* greedy: reset each non-default decision to the canonical option and
     keep the reset whenever the branch still violates some oracle *)
  for i = 0 to Array.length arr - 1 do
    if arr.(i) <> 0 then begin
      let saved = arr.(i) in
      arr.(i) <- 0;
      if not (violating (Array.to_list arr)) then arr.(i) <- saved
    end
  done;
  let rec drop_trailing = function
    | 0 :: rest -> drop_trailing rest
    | l -> l
  in
  List.rev (drop_trailing (List.rev (Array.to_list arr)))

let explore ?(prune = true) ?(max_branches = 20000) ?(log = fun _ -> ()) scenario =
  let stats =
    {
      explored = 0;
      pruned_symmetry = 0;
      pruned_sleep = 0;
      pruned_visited = 0;
      max_depth = 0;
      truncated = false;
    }
  in
  let visited : (string * string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let found = ref [] in
  let stack = ref [ [] ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | script :: rest ->
        stack := rest;
        if stats.explored >= max_branches then begin
          stats.truncated <- true;
          continue := false
        end
        else begin
          stats.explored <- stats.explored + 1;
          if stats.explored mod 500 = 0 then
            log
              (Printf.sprintf "explored %d branches, %d queued, %d violations"
                 stats.explored (List.length !stack) (List.length !found));
          let out = run_branch scenario ~script in
          let ds = Array.of_list out.decisions in
          let depth = Array.length ds in
          if depth > stats.max_depth then stats.max_depth <- depth;
          if out.violations <> [] then begin
            let minimized = minimize scenario script in
            log
              (Printf.sprintf "VIOLATION [%s] at branch %d: %s"
                 (String.concat "," (List.map string_of_int script))
                 stats.explored
                 (String.concat "; " out.violations));
            found := { script; minimized; violations = out.violations } :: !found
          end;
          (* expand alternatives strictly beyond the scripted prefix: the
             prefix positions were expanded when their parents ran *)
          let children = ref [] in
          for i = depth - 1 downto List.length script do
            let d = ds.(i) in
            let arity = d.Choice.arity in
            let dkey = (d.Choice.fp, d.Choice.options.(0)) in
            if prune && d.Choice.fp <> "" && Hashtbl.mem visited dkey then
              stats.pruned_visited <- stats.pruned_visited + 1
            else begin
              if prune && d.Choice.fp <> "" then Hashtbl.replace visited dkey ();
              let prefix =
                Array.to_list (Array.sub ds 0 i)
                |> List.map (fun (d : Choice.decision) -> d.Choice.chosen)
              in
              for c = arity - 1 downto 1 do
                let descr = d.Choice.options.(c) in
                let earlier j = d.Choice.options.(j) in
                let symmetric =
                  prune
                  && (let rec any j = j < c && (earlier j = descr || any (j + 1)) in
                      any 0)
                in
                let asleep =
                  prune && (not symmetric) && d.Choice.tag = "deliver"
                  && (let rec all j =
                        j >= c || (delivery_independent (earlier j) descr && all (j + 1))
                      in
                      all 0)
                in
                if symmetric then stats.pruned_symmetry <- stats.pruned_symmetry + 1
                else if asleep then stats.pruned_sleep <- stats.pruned_sleep + 1
                else begin
                  let ckey = (d.Choice.fp, descr) in
                  if prune && d.Choice.fp <> "" && Hashtbl.mem visited ckey then
                    stats.pruned_visited <- stats.pruned_visited + 1
                  else begin
                    if prune && d.Choice.fp <> "" then Hashtbl.replace visited ckey ();
                    children := (prefix @ [ c ]) :: !children
                  end
                end
              done
            end
          done;
          stack := !children @ !stack
        end
  done;
  { stats; found = List.rev !found }

(* ------------------------------------------------------------------ *)
(* Trace files *)

let save_trace ~path scenario script =
  let out = run_branch scenario ~script in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# tpm explore trace; replay: tpm explore --replay %s\n" path;
      Printf.fprintf oc "scenario %s\n" scenario.name;
      List.iter (fun v -> Printf.fprintf oc "# violation: %s\n" v) out.violations;
      let n = List.length script in
      List.iteri
        (fun i (d : Choice.decision) ->
          if i < n then
            Printf.fprintf oc "choice %s %d %d\n" d.Choice.tag d.Choice.arity
              d.Choice.chosen)
        out.decisions)

let load_trace path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let scenario = ref None in
      let rev_script = ref [] in
      let error = ref None in
      (try
         let line_no = ref 0 in
         while true do
           let line = input_line ic in
           incr line_no;
           match String.split_on_char ' ' (String.trim line) with
           | [ "" ] -> ()
           | hd :: _ when String.length hd > 0 && hd.[0] = '#' -> ()
           | [ "scenario"; name ] -> scenario := Some name
           | [ "choice"; _tag; _arity; chosen ] -> (
               match int_of_string_opt chosen with
               | Some c -> rev_script := c :: !rev_script
               | None ->
                   error :=
                     Some (Printf.sprintf "line %d: bad option index %S" !line_no chosen)
               )
           | _ -> error := Some (Printf.sprintf "line %d: unparseable: %s" !line_no line)
         done
       with End_of_file -> ());
      match (!error, !scenario) with
      | Some e, _ -> Error e
      | None, None -> Error "no scenario line"
      | None, Some name -> Ok (name, List.rev !rev_script))

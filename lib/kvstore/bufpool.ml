exception Flush_ahead_of_durable of {
  page : int;
  page_lsn : int;
  durable : int;
}

let () =
  Printexc.register_printer (function
    | Flush_ahead_of_durable { page; page_lsn; durable } ->
        Some
          (Printf.sprintf "Bufpool.Flush_ahead_of_durable(page %d: page_lsn %d > durable %d)"
             page page_lsn durable)
    | _ -> None)

type frame = {
  f_pid : int;
  buf : Bytes.t;
  mutable pins : int;
  mutable dirty : bool;
  mutable rec_lsn : int;  (* first LSN that dirtied the page since clean; 0 when clean *)
  mutable refbit : bool;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  overflows : int;
  wal_syncs : int;
  resident : int;
  dirty : int;
  pinned : int;
}

type t = {
  pgr : Pager.t;
  budget : int;
  tbl : (int, frame) Hashtbl.t;
  clock : int Queue.t;  (* rotation order; may hold stale pids of evicted frames *)
  mutable durable_lsn : unit -> int;
  mutable force_durable : unit -> unit;
  mutable on_flush : int -> unit;
  mutable is_frozen : bool;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flushes : int;
  mutable overflows : int;
  mutable wal_syncs : int;
}

let create ?(frames = 64) pgr =
  if frames < 1 then invalid_arg "Bufpool.create: frames must be >= 1";
  {
    pgr;
    budget = frames;
    tbl = Hashtbl.create (2 * frames);
    clock = Queue.create ();
    durable_lsn = (fun () -> max_int);
    force_durable = ignore;
    on_flush = ignore;
    is_frozen = false;
    hits = 0;
    misses = 0;
    evictions = 0;
    flushes = 0;
    overflows = 0;
    wal_syncs = 0;
  }

let pager t = t.pgr
let frames t = t.budget

let set_wal t ~durable_lsn ~force_durable =
  t.durable_lsn <- durable_lsn;
  t.force_durable <- force_durable

let set_on_flush t f = t.on_flush <- f
let freeze t = t.is_frozen <- true
let frozen t = t.is_frozen

let page_lsn f = Pager.Page.lsn f.buf

let flush_frame t f =
  (* the WAL rule, enforced at the last possible moment: every caller
     checks flushability first, so this raise firing means a pool bug —
     the sweep and the unit tests treat it as an invariant violation *)
  let durable = t.durable_lsn () in
  if page_lsn f > durable then
    raise (Flush_ahead_of_durable { page = f.f_pid; page_lsn = page_lsn f; durable });
  Pager.write t.pgr f.f_pid f.buf;
  f.dirty <- false;
  f.rec_lsn <- 0;
  t.flushes <- t.flushes + 1;
  t.on_flush t.flushes

let flushable t f = (not t.is_frozen) && page_lsn f <= t.durable_lsn ()

(* One clock sweep: pop-inspect-requeue until an unpinned frame with a
   clear reference bit turns up that is either clean or flushable.
   Bounded by twice the queue length (every frame's refbit can be
   cleared at most once per sweep). *)
let try_evict_once t =
  let steps = ref (2 * Queue.length t.clock) in
  let victim = ref None in
  while !victim = None && !steps > 0 do
    decr steps;
    match Queue.take_opt t.clock with
    | None -> steps := 0
    | Some pid -> (
        match Hashtbl.find_opt t.tbl pid with
        | None -> ()  (* stale entry of an already-evicted frame *)
        | Some f ->
            if f.pins > 0 then Queue.add pid t.clock
            else if f.refbit then begin
              f.refbit <- false;
              Queue.add pid t.clock
            end
            else if (not f.dirty) || flushable t f then victim := Some f
            else Queue.add pid t.clock)
  done;
  match !victim with
  | None -> false
  | Some f ->
      if f.dirty then flush_frame t f;
      Hashtbl.remove t.tbl f.f_pid;
      t.evictions <- t.evictions + 1;
      true

let make_room t =
  if Hashtbl.length t.tbl >= t.budget then
    if not (try_evict_once t) then begin
      (* every frame is pinned or sits behind the durable marker: force a
         sync once and retry; if the marker still does not cover them
         (a lying-fsync window, or a frozen pool) admit an extra frame —
         the flush rule is absolute, liveness is preserved by memory *)
      if not t.is_frozen then begin
        t.force_durable ();
        t.wal_syncs <- t.wal_syncs + 1
      end;
      if not (try_evict_once t) then t.overflows <- t.overflows + 1
    end

let admit t pid buf =
  let f = { f_pid = pid; buf; pins = 0; dirty = false; rec_lsn = 0; refbit = true } in
  Hashtbl.replace t.tbl pid f;
  Queue.add pid t.clock;
  f

let get_frame t pid =
  match Hashtbl.find_opt t.tbl pid with
  | Some f ->
      t.hits <- t.hits + 1;
      f.refbit <- true;
      f
  | None ->
      t.misses <- t.misses + 1;
      make_room t;
      admit t pid (Pager.read t.pgr pid)

let alloc t =
  let pid = Pager.alloc t.pgr in
  make_room t;
  let buf = Bytes.create (Pager.page_size t.pgr) in
  Pager.Page.init buf;
  ignore (admit t pid buf);
  pid

let with_page t pid f =
  let fr = get_frame t pid in
  fr.pins <- fr.pins + 1;
  Fun.protect ~finally:(fun () -> fr.pins <- fr.pins - 1) (fun () -> f fr.buf)

let with_page_w t pid ~lsn f =
  let fr = get_frame t pid in
  fr.pins <- fr.pins + 1;
  (* mark before running [f]: if it raises midway the buffer may already
     be mutated, and an unmarked mutated frame would silently diverge
     from disk — a spurious dirty bit only costs a redundant flush *)
  if not fr.dirty then begin
    fr.dirty <- true;
    fr.rec_lsn <- lsn
  end;
  if lsn > page_lsn fr then Pager.Page.set_lsn fr.buf lsn;
  Fun.protect ~finally:(fun () -> fr.pins <- fr.pins - 1) (fun () -> f fr.buf)

let flush t =
  if not t.is_frozen then
    Hashtbl.iter (fun _ (f : frame) -> if f.dirty && flushable t f then flush_frame t f) t.tbl

let flush_all t =
  if not t.is_frozen then begin
    t.force_durable ();
    t.wal_syncs <- t.wal_syncs + 1;
    flush t
  end

let dirty_page_table t =
  Hashtbl.fold
    (fun pid (f : frame) acc -> if f.dirty then (pid, f.rec_lsn) :: acc else acc)
    t.tbl []
  |> List.sort compare

let min_rec_lsn t =
  Hashtbl.fold
    (fun _ (f : frame) acc ->
      if f.dirty then Some (match acc with None -> f.rec_lsn | Some m -> min m f.rec_lsn)
      else acc)
    t.tbl None

let stats t =
  let dirty = ref 0 and pinned = ref 0 in
  Hashtbl.iter
    (fun _ (f : frame) ->
      if f.dirty then incr dirty;
      if f.pins > 0 then incr pinned)
    t.tbl;
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    flushes = t.flushes;
    overflows = t.overflows;
    wal_syncs = t.wal_syncs;
    resident = Hashtbl.length t.tbl;
    dirty = !dirty;
    pinned = !pinned;
  }

module String_map = Map.Make (String)
module String_set = Set.Make (String)

type status =
  | Active
  | Committed
  | Aborted

type t = {
  store : Store.t;
  mutable writes : Value.t option String_map.t;  (* None = delete *)
  mutable reads : String_set.t;
      (* a set, not a list: the old [List.mem] membership test made n
         reads O(n²) and read_set fell back on polymorphic compare *)
  mutable undo : Value.t String_map.t;  (* pre-images, first-write wins *)
  mutable status : status;
}

let begin_ store =
  {
    store;
    writes = String_map.empty;
    reads = String_set.empty;
    undo = String_map.empty;
    status = Active;
  }

let check_active tx op =
  if tx.status <> Active then invalid_arg (Printf.sprintf "Tx.%s: transaction terminated" op)

let get tx key =
  check_active tx "get";
  tx.reads <- String_set.add key tx.reads;
  match String_map.find_opt key tx.writes with
  | Some (Some v) -> v
  | Some None -> Value.Nil
  | None -> Store.get tx.store key

let record_undo tx key =
  if not (String_map.mem key tx.undo) then
    tx.undo <- String_map.add key (Store.get tx.store key) tx.undo

let set tx key value =
  check_active tx "set";
  record_undo tx key;
  tx.writes <- String_map.add key (Some value) tx.writes

let delete tx key =
  check_active tx "delete";
  record_undo tx key;
  tx.writes <- String_map.add key None tx.writes

let read_set tx = String_set.elements tx.reads
let write_set tx = List.map fst (String_map.bindings tx.writes)

let commit tx =
  check_active tx "commit";
  String_map.iter
    (fun key w ->
      match w with
      | Some v -> Store.set tx.store key v
      | None -> Store.delete tx.store key)
    tx.writes;
  tx.status <- Committed

let abort tx =
  check_active tx "abort";
  tx.status <- Aborted

let undo_entries tx = String_map.bindings tx.undo
let active tx = tx.status = Active

(** Bounded buffer pool over a {!Pager} page file.

    Pages are cached in a fixed budget of frames with pin counts and
    clock (second-chance) eviction.  Dirty frames carry two LSNs: the
    [rec_lsn] of the mutation that first dirtied the page since it was
    last clean, and the [page_lsn] of the latest mutation applied — the
    dirty-page table of ARIES-style recovery.

    The one invariant the pool enforces unconditionally is the WAL rule:
    {b no dirty page reaches disk while its [page_lsn] exceeds the WAL's
    honest durable marker} ({!Flush_ahead_of_durable} would be raised at
    the write, and the page-crash sweep asserts it never is).  When
    eviction finds only unflushable victims it first forces a WAL sync;
    if the marker still does not cover them — a lying-fsync window — the
    pool over-commits an extra frame rather than violate the rule or
    deadlock, so a 1-frame pool stays live under any workload.

    The pool is WAL-agnostic: the durable marker and the sync force are
    injected as closures ({!set_wal}), keeping [tpm_kv] free of a
    dependency on the log library.  Without them every page is
    considered flushable (a standalone store without a log). *)

type t

exception Flush_ahead_of_durable of {
  page : int;
  page_lsn : int;
  durable : int;
}

val create : ?frames:int -> Pager.t -> t
(** [frames] (default 64, min 1) is the cache budget; pinned or
    unflushable pages can push residency above it (counted in
    [stats.overflows]). *)

val pager : t -> Pager.t
val frames : t -> int

val set_wal :
  t -> durable_lsn:(unit -> int) -> force_durable:(unit -> unit) -> unit
(** [durable_lsn ()] must return the WAL's {e honest} durable record
    count (lying fsyncs do not advance it); [force_durable ()] requests
    a sync.  The pool calls the latter at most once per eviction pass. *)

val set_on_flush : t -> (int -> unit) -> unit
(** Called after every page write with the cumulative flush count — the
    crash sweep's page-level trigger. *)

val with_page : t -> int -> (Bytes.t -> 'a) -> 'a
(** Read access under a pin: the frame cannot be evicted while [f]
    runs.  Loads (and possibly evicts) on a miss. *)

val with_page_w : t -> int -> lsn:int -> (Bytes.t -> 'a) -> 'a
(** Write access under a pin.  Marks the frame dirty before [f] runs
    (recording [rec_lsn] if it was clean) and stamps
    [page_lsn := max page_lsn lsn]. *)

val alloc : t -> int
(** Fresh page from the pager, cached as a clean empty frame. *)

val flush : t -> unit
(** Writes back every dirty page the durable marker already covers;
    leaves the rest dirty.  Never syncs the WAL. *)

val flush_all : t -> unit
(** [force_durable] once, then {!flush}.  Pages a lying fsync left
    uncovered remain dirty — the rule is never traded for completeness. *)

val freeze : t -> unit
(** Crash semantics: no further page write will happen (flushes become
    no-ops, eviction stops considering dirty victims and over-commits
    instead).  The page file is frozen at its current bytes. *)

val frozen : t -> bool

val dirty_page_table : t -> (int * int) list
(** [(page id, rec_lsn)] of every dirty frame, sorted by page id — what
    a fuzzy checkpoint logs as {!Wal.Dirty_pages}. *)

val min_rec_lsn : t -> int option

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  overflows : int;  (** frames admitted beyond the budget *)
  wal_syncs : int;  (** [force_durable] calls issued by eviction *)
  resident : int;
  dirty : int;
  pinned : int;
}

val stats : t -> stats

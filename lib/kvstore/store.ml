type paged = {
  pool : Bufpool.t;
  dir : (string, int) Hashtbl.t;  (* key -> page holding its cell *)
  space : (int, int) Hashtbl.t;  (* page -> free bytes (post-compaction) *)
  mutable hook : (string -> string option -> int) option;
      (* WAL append for a mutation: (key, marshaled value or None) -> LSN *)
  redone : (string, int) Hashtbl.t;
      (* key -> highest LSN applied through {!redo}.  Redo may re-home a
         key onto a page whose page_lsn is already high from unrelated
         keys, so for redone keys the page-LSN guard is unsound; this
         table is the authoritative guard for them.  Unused (and
         harmless) once normal operation resumes. *)
}

type backend =
  | Mem of (string, Value.t) Hashtbl.t
  | Paged of paged

type t = {
  backend : backend;
  mutable version : int;
}

let create () = { backend = Mem (Hashtbl.create 64); version = 0 }

let encode (v : Value.t) = Marshal.to_string v []
let decode s : Value.t = Marshal.from_string s 0

let get store key =
  match store.backend with
  | Mem data -> Option.value ~default:Value.Nil (Hashtbl.find_opt data key)
  | Paged p -> (
      match Hashtbl.find_opt p.dir key with
      | None -> Value.Nil
      | Some pid -> (
          match Bufpool.with_page p.pool pid (fun buf -> Pager.Page.find buf key) with
          | Some vs -> decode vs
          | None ->
              (* the directory is rebuilt from the pages themselves, so a
                 dangling entry is a store bug, not a data state *)
              invalid_arg (Printf.sprintf "Store.get: directory names page %d for %S but the page has no such cell" pid key)))

let mem store key =
  match store.backend with
  | Mem data -> Hashtbl.mem data key
  | Paged p -> Hashtbl.mem p.dir key

let log_mut p key value = match p.hook with Some h -> h key value | None -> 0
let note_space p pid buf = Hashtbl.replace p.space pid (Pager.Page.free_space buf)

(* Home for a new cell: the first known page with room, else a fresh
   page.  Deletions feed freed bytes back into [space], so holes get
   reused instead of growing the file forever. *)
let place p ~need =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun pid free ->
         if free >= need then begin
           found := Some pid;
           raise Exit
         end)
       p.space
   with Exit -> ());
  match !found with
  | Some pid -> pid
  | None ->
      let pid = Bufpool.alloc p.pool in
      Hashtbl.replace p.space pid (Pager.Page.capacity (Pager.page_size (Bufpool.pager p.pool)));
      pid

let paged_set p key vs ~lsn =
  let page_size = Pager.page_size (Bufpool.pager p.pool) in
  let need = String.length key + String.length vs + Pager.Page.slot_size in
  if need > Pager.Page.capacity page_size then
    invalid_arg
      (Printf.sprintf "Store.set: entry for %S needs %d bytes, page capacity is %d" key need
         (Pager.Page.capacity page_size));
  let in_place =
    match Hashtbl.find_opt p.dir key with
    | None -> false
    | Some pid ->
        let fit =
          Bufpool.with_page_w p.pool pid ~lsn (fun buf ->
              let fit = Pager.Page.insert buf key vs in
              note_space p pid buf;
              fit)
        in
        (* on a failed fit the old cell is already gone (Page.insert
           removes it first): fall through to re-home the key *)
        if not fit then Hashtbl.remove p.dir key;
        fit
  in
  if not in_place then begin
    let pid = place p ~need in
    Bufpool.with_page_w p.pool pid ~lsn (fun buf ->
        if not (Pager.Page.insert buf key vs) then
          invalid_arg (Printf.sprintf "Store.set: page %d advertised room it does not have" pid);
        note_space p pid buf);
    Hashtbl.replace p.dir key pid
  end

let paged_delete p key ~lsn =
  match Hashtbl.find_opt p.dir key with
  | None -> ()
  | Some pid ->
      Bufpool.with_page_w p.pool pid ~lsn (fun buf ->
          ignore (Pager.Page.remove buf key);
          note_space p pid buf);
      Hashtbl.remove p.dir key

let set store key value =
  (* a write of the value already present is a no-op: it must not bump
     the version (the counter backs the effect-freeness checks of
     Definitions 1 and 6) and, in paged mode, must not log or dirty *)
  let current = if mem store key then Some (get store key) else None in
  match current with
  | Some c when Value.equal c value -> ()
  | _ -> (
      store.version <- store.version + 1;
      match store.backend with
      | Mem data -> Hashtbl.replace data key value
      | Paged p ->
          let vs = encode value in
          let lsn = log_mut p key (Some vs) in
          paged_set p key vs ~lsn)

let delete store key =
  (* deleting an absent key is equally a no-op *)
  if mem store key then begin
    store.version <- store.version + 1;
    match store.backend with
    | Mem data -> Hashtbl.remove data key
    | Paged p ->
        let lsn = log_mut p key None in
        paged_delete p key ~lsn
  end

let keys store =
  match store.backend with
  | Mem data -> Hashtbl.fold (fun k _ acc -> k :: acc) data [] |> List.sort compare
  | Paged p -> Hashtbl.fold (fun k _ acc -> k :: acc) p.dir [] |> List.sort compare

let version store = store.version

let snapshot store =
  match store.backend with
  | Mem data -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) data [] |> List.sort compare
  | Paged _ -> List.map (fun k -> (k, get store k)) (keys store)

module String_map = Map.Make (String)

let restore store entries =
  (* [entries] may hold duplicate keys (later wins, matching the old
     replace-in-order semantics): normalize before comparing *)
  let effective =
    List.fold_left (fun m (k, v) -> String_map.add k v m) String_map.empty entries
    |> String_map.bindings
  in
  let current = snapshot store in
  let same =
    List.length current = List.length effective
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && Value.equal v v')
         current effective
  in
  if not same then begin
    (match store.backend with
    | Mem data ->
        Hashtbl.reset data;
        List.iter (fun (k, v) -> Hashtbl.replace data k v) effective
    | Paged p ->
        List.iter
          (fun (k, _) -> paged_delete p k ~lsn:(log_mut p k None))
          current;
        List.iter
          (fun (k, v) ->
            let vs = encode v in
            paged_set p k vs ~lsn:(log_mut p k (Some vs)))
          effective);
    store.version <- store.version + 1
  end

let copy store =
  (* a faithful copy: same content *and* same version, so version-based
     observational comparisons hold across a copy.  Always an in-memory
     store — copies are scratch state for oracles and baselines, never
     the durable one. *)
  let data = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace data k v) (snapshot store);
  { backend = Mem data; version = store.version }

let equal_state a b =
  let sa = snapshot a and sb = snapshot b in
  List.length sa = List.length sb
  && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && Value.equal v v') sa sb

let pp fmt store =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list (fun fmt (k, v) -> Format.fprintf fmt "%s = %a" k Value.pp v))
    (snapshot store)

(* ------------------------------------------------------------------ *)
(* Paged construction, WAL wiring and recovery. *)

let create_paged ?frames ?page_size path =
  let pager = Pager.create ?page_size path in
  let pool = Bufpool.create ?frames pager in
  {
    backend =
      Paged
        {
          pool;
          dir = Hashtbl.create 64;
          space = Hashtbl.create 16;
          hook = None;
          redone = Hashtbl.create 16;
        };
    version = 0;
  }

let open_paged ?(policy = `Fail_stop) ?frames path =
  let pager = Pager.open_ path in
  let pool = Bufpool.create ?frames pager in
  let p =
    {
      pool;
      dir = Hashtbl.create 64;
      space = Hashtbl.create 16;
      hook = None;
      redone = Hashtbl.create 16;
    }
  in
  let anomalies = ref [] in
  let page_lsns : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* stale duplicates to scrub: a crash between two flushes can leave a
     moved key on both its old and new page; the copy on the page with
     the higher page_lsn is current *)
  let scrub : (int * string) list ref = ref [] in
  for pid = 0 to Pager.npages pager - 1 do
    match Pager.read_result pager pid with
    | Error reason -> (
        match policy with
        | `Fail_stop -> raise (Pager.Corrupt_page { page = pid; reason })
        | `Salvage ->
            (* quarantined: not offered for reuse, its keys (if any) are
               lost here and must come back via redo from the log *)
            anomalies := (pid, reason) :: !anomalies)
    | Ok buf ->
        let lsn = Pager.Page.lsn buf in
        Hashtbl.replace page_lsns pid lsn;
        Hashtbl.replace p.space pid (Pager.Page.free_space buf);
        List.iter
          (fun (k, _) ->
            match Hashtbl.find_opt p.dir k with
            | None -> Hashtbl.replace p.dir k pid
            | Some prev ->
                let prev_lsn = Hashtbl.find page_lsns prev in
                if lsn > prev_lsn then begin
                  scrub := (prev, k) :: !scrub;
                  Hashtbl.replace p.dir k pid
                end
                else scrub := (pid, k) :: !scrub)
          (Pager.Page.entries buf)
  done;
  List.iter
    (fun (pid, k) ->
      (* preserve the page's own LSN: scrubbing repairs the image, it is
         not a new mutation *)
      let lsn = Hashtbl.find page_lsns pid in
      Bufpool.with_page_w pool pid ~lsn (fun buf ->
          ignore (Pager.Page.remove buf k);
          Hashtbl.replace p.space pid (Pager.Page.free_space buf)))
    !scrub;
  ({ backend = Paged p; version = 0 }, List.rev !anomalies)

let is_paged store = match store.backend with Paged _ -> true | Mem _ -> false

let connect_wal store ~log ~durable_lsn ~force_durable =
  match store.backend with
  | Mem _ -> invalid_arg "Store.connect_wal: in-memory store has no pages to coordinate"
  | Paged p ->
      p.hook <- Some log;
      Bufpool.set_wal p.pool ~durable_lsn ~force_durable

let bufpool store = match store.backend with Mem _ -> None | Paged p -> Some p.pool

let flush store =
  match store.backend with Mem _ -> () | Paged p -> Bufpool.flush_all p.pool

let freeze store =
  match store.backend with Mem _ -> () | Paged p -> Bufpool.freeze p.pool

let redo store ~lsn key value =
  match store.backend with
  | Mem data -> (
      store.version <- store.version + 1;
      match value with
      | Some vs -> Hashtbl.replace data key (decode vs)
      | None -> Hashtbl.remove data key)
  | Paged p ->
      (* Page-LSN guard: during normal operation every mutation of a key
         stamps the page(s) whose cell situation it changes, so if the
         page holding the key in the image *as recovered from disk*
         carries this LSN or a later one, that image already reflects
         every operation on the key up to that LSN — replaying would be
         redundant at best and would clobber a later value at worst.
         The guard is only sound for that disk image: redo itself may
         re-home a key onto a page whose page_lsn is already high from
         unrelated keys, so once a key has been redone the [redone]
         table (its highest applied LSN) is the guard instead.  A key
         with no cell anywhere has nothing to vouch for the operation:
         apply it (deletes of absent keys are no-ops). *)
      let covered =
        match Hashtbl.find_opt p.redone key with
        | Some applied -> lsn <= applied
        | None -> (
            match Hashtbl.find_opt p.dir key with
            | None -> false
            | Some pid ->
                Bufpool.with_page p.pool pid (fun buf -> Pager.Page.lsn buf >= lsn))
      in
      if not covered then begin
        store.version <- store.version + 1;
        Hashtbl.replace p.redone key lsn;
        match value with
        | Some vs -> paged_set p key vs ~lsn
        | None -> paged_delete p key ~lsn
      end

(** Slotted pages and the on-disk page file beneath the paged {!Store}.

    A page file is a fixed 16-byte header followed by [page_size]-byte
    pages.  Each page carries its own CRC32 (over everything but the
    checksum field itself) and its [page_lsn] — the log position of the
    last mutation applied to it — so a torn or bit-damaged page write is
    a {e detected} corruption on the next read, mirroring the WAL's
    fail-stop/salvage posture: never a silent misread.

    Page layout ([page_size] bytes):
    {v
    0..3    crc32 of bytes 4..page_size-1 (LE)
    4..11   page_lsn (int64 LE)
    12..13  slot count (u16 LE)
    14..15  cell_start (u16 LE): cells occupy [cell_start, page_size)
    16..    slot directory, 6 bytes per slot: off u16, klen u16, vlen u16
    v}
    Cells (key bytes followed by value bytes) grow downward from the end
    of the page; removal leaves a hole that an insert reclaims by
    compacting the page in place when contiguous space runs out.

    The pager itself is policy-free: it never decides {e when} a page is
    written.  Write ordering against the WAL's durable marker is the
    buffer pool's job ({!Bufpool}). *)

exception Corrupt_page of {
  page : int;
  reason : string;
}

(** In-memory page operations over a [page_size]-byte buffer. *)
module Page : sig
  val header : int
  (** Bytes reserved for checksum, LSN and slot-directory bookkeeping. *)

  val slot_size : int

  val init : Bytes.t -> unit
  (** Format the buffer as an empty page (LSN 0, no slots). *)

  val lsn : Bytes.t -> int
  val set_lsn : Bytes.t -> int -> unit
  val nslots : Bytes.t -> int

  val find : Bytes.t -> string -> string option
  (** Value bytes of a key, if present. *)

  val insert : Bytes.t -> string -> string -> bool
  (** Replaces an existing cell for the key, else adds one; compacts the
      page in place if the hole space suffices.  [false] when the entry
      does not fit even after compaction — any replaced cell was removed
      first, so the key is then absent from this page and the caller must
      re-home it. *)

  val remove : Bytes.t -> string -> bool
  (** [false] when the key is absent. *)

  val entries : Bytes.t -> (string * string) list
  (** All (key, value bytes) cells, in slot order. *)

  val free_space : Bytes.t -> int
  (** Bytes available to future inserts after a compaction: counts both
      the contiguous gap and the holes left by removals.  An entry of
      [k]+[v] bytes needs [k + v + slot_size] of it. *)

  val capacity : int -> int
  (** Usable bytes of an empty page of the given size. *)
end

type t

val create : ?page_size:int -> string -> t
(** Fresh page file at the path (truncates an existing one).
    [page_size] defaults to 4096 bytes; bounds: 128..32768. *)

val open_ : string -> t
(** Opens an existing page file.  Validates the header magic and reads
    the page size back; raises {!Corrupt_page} (page -1) on a damaged
    header.  Page contents are {e not} validated here — {!read} checks
    each page's CRC on access, and a trailing partial page (a torn file
    extension) reads as corrupt rather than being silently dropped. *)

val page_size : t -> int
val npages : t -> int
(** Pages the file extends to, including never-written holes. *)

val path : t -> string

val page_offset : t -> int -> int
(** Byte offset of a page in the file — the injection map for byte-level
    fault sweeps. *)

val alloc : t -> int
(** A fresh page id past the current extent.  Nothing is written: until
    the first {!write}, the page reads back as empty. *)

val read : t -> int -> Bytes.t
(** The page's bytes, CRC-checked.  A never-written page (an [alloc]
    that was not yet flushed, or a hole from writes past it) and an
    all-zero page both read as a fresh empty page.  Anything else that
    fails the checksum — including a short read inside the file extent —
    raises {!Corrupt_page}. *)

val read_result : t -> int -> (Bytes.t, string) result
(** [read] with the corruption reason as a value, for salvage-style
    scans that quarantine damaged pages instead of failing stop. *)

val write : t -> int -> Bytes.t -> unit
(** Seals the buffer's checksum and writes the page in place.  The
    caller (the buffer pool) must have established that the page's LSN
    is covered by the WAL's honest durable marker. *)

val close : t -> unit

(** A versioned key-value store, the state each simulated subsystem acts
    on.  Every {e effective} write bumps a global version; snapshots allow
    observational comparisons (used to validate effect-freeness and
    commutativity of services, Definitions 1 and 6).

    Two backends share the exact same interface: the default in-memory
    hash table, and a paged store ({!create_paged}/{!open_paged}) whose
    cells live on slotted pages cached by a bounded {!Bufpool} over a
    {!Pager} file — datasets larger than the frame budget spill to disk,
    with writeback coordinated against the WAL's honest durable marker
    once {!connect_wal} wires the store to a log. *)

type t

val create : unit -> t
(** In-memory store. *)

val get : t -> string -> Value.t
(** [Nil] for absent keys. *)

val set : t -> string -> Value.t -> unit
(** No-op (no version bump, no log record, no page dirtied) when the key
    already holds an equal value: a genuinely effect-free service must
    not be misclassified as effectful by the version counter. *)

val delete : t -> string -> unit
(** No-op on an absent key, for the same reason. *)

val mem : t -> string -> bool
val keys : t -> string list

val version : t -> int
(** Monotone counter of effective writes. *)

val snapshot : t -> (string * Value.t) list
(** Sorted key-value pairs. *)

val restore : t -> (string * Value.t) list -> unit
(** Replaces the whole content.  Contract: duplicate keys in the list
    resolve to the last occurrence; the version counter advances by
    {e exactly one} for the whole replacement — and not at all when the
    effective content equals what the store already holds. *)

val copy : t -> t
(** Version-faithful value copy: same content {e and} same version, so
    version-based comparisons hold across a copy.  Always an in-memory
    store, whatever the source's backend. *)

val equal_state : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Paged backend} *)

val create_paged : ?frames:int -> ?page_size:int -> string -> t
(** Fresh paged store whose page file lives at the path.  [frames]
    bounds the buffer pool (default 64, min 1 — a 1-frame pool works,
    over-committing when it must); [page_size] as in {!Pager.create}. *)

val open_paged :
  ?policy:[ `Fail_stop | `Salvage ] ->
  ?frames:int ->
  string ->
  t * (int * string) list
(** Reopens a page file after a crash: scans every page, rebuilds the
    key directory and free-space map, and scrubs stale duplicates (a
    crash between two flushes can leave a moved key on both its old and
    new page; the cell on the page with the higher [page_lsn] wins).
    Under [`Fail_stop] (default) a damaged page raises
    {!Pager.Corrupt_page}; under [`Salvage] damaged pages are
    quarantined and reported as [(page, reason)] — their keys must come
    back through {!redo} against the full log.  The result holds only
    what the crash left on disk; drive {!Recovery.kv_redo} output
    through {!redo} to catch up to the durable log. *)

val is_paged : t -> bool

val connect_wal :
  t ->
  log:(string -> string option -> int) ->
  durable_lsn:(unit -> int) ->
  force_durable:(unit -> unit) ->
  unit
(** Wires a paged store to a write-ahead log. [log key value] must
    append a {!Wal.Kv_write} and return its LSN (the record's 1-based
    position); [durable_lsn]/[force_durable] feed the buffer pool's
    flush rule ({!Bufpool.set_wal}).  Every mutation is logged {e before}
    it touches a page, so the page's [page_lsn] is always covered by the
    log.  @raise Invalid_argument on an in-memory store. *)

val bufpool : t -> Bufpool.t option
(** The paged backend's pool ([None] for in-memory stores): stats,
    dirty-page table, flush hooks. *)

val flush : t -> unit
(** {!Bufpool.flush_all} on a paged store; no-op on in-memory. *)

val freeze : t -> unit
(** Crash semantics for the paged backend: no further page writes
    ({!Bufpool.freeze}); no-op on in-memory. *)

val redo : t -> lsn:int -> string -> string option -> unit
(** Replays one logged mutation ([None] = delete, [Some v] = marshaled
    value) during recovery.  On a paged store the page-LSN guard skips
    operations whose effect already reached disk; ops must be fed in log
    order.  Never logs — the operation is already in the log. *)

exception Corrupt_page of {
  page : int;
  reason : string;
}

let () =
  Printexc.register_printer (function
    | Corrupt_page { page; reason } ->
        Some (Printf.sprintf "Pager.Corrupt_page(page %d: %s)" page reason)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE polynomial), private to the pager: the kv layer stays
   independent of the WAL library, so it carries its own checksum. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 buf pos len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)

module Page = struct
  let header = 16
  let slot_size = 6
  let lsn b = Int64.to_int (Bytes.get_int64_le b 4)
  let set_lsn b l = Bytes.set_int64_le b 4 (Int64.of_int l)
  let nslots b = Bytes.get_uint16_le b 12
  let set_nslots b n = Bytes.set_uint16_le b 12 n
  let cell_start b = Bytes.get_uint16_le b 14
  let set_cell_start b v = Bytes.set_uint16_le b 14 v

  let init b =
    Bytes.fill b 0 (Bytes.length b) '\000';
    set_cell_start b (Bytes.length b)

  let slot_pos i = header + (i * slot_size)

  let slot b i =
    let p = slot_pos i in
    (Bytes.get_uint16_le b p, Bytes.get_uint16_le b (p + 2), Bytes.get_uint16_le b (p + 4))

  let set_slot b i off klen vlen =
    let p = slot_pos i in
    Bytes.set_uint16_le b p off;
    Bytes.set_uint16_le b (p + 2) klen;
    Bytes.set_uint16_le b (p + 4) vlen

  let key_at b i =
    let off, klen, _ = slot b i in
    Bytes.sub_string b off klen

  let value_at b i =
    let off, klen, vlen = slot b i in
    Bytes.sub_string b (off + klen) vlen

  let find_slot b key =
    let n = nslots b in
    let rec go i = if i >= n then None else if String.equal (key_at b i) key then Some i else go (i + 1) in
    go 0

  let find b key = Option.map (value_at b) (find_slot b key)
  let entries b = List.init (nslots b) (fun i -> (key_at b i, value_at b i))

  let live_bytes b =
    let n = nslots b in
    let total = ref 0 in
    for i = 0 to n - 1 do
      let _, klen, vlen = slot b i in
      total := !total + klen + vlen
    done;
    !total

  let free_space b = Bytes.length b - header - (nslots b * slot_size) - live_bytes b
  let contiguous b = cell_start b - header - (nslots b * slot_size)
  let capacity page_size = page_size - header

  let compact b =
    (* materialize the cells first: blitting in place while iterating the
       slot directory would overwrite cells not yet moved *)
    let es = entries b in
    let pos = ref (Bytes.length b) in
    List.iteri
      (fun i (k, v) ->
        let kl = String.length k and vl = String.length v in
        pos := !pos - kl - vl;
        Bytes.blit_string k 0 b !pos kl;
        Bytes.blit_string v 0 b (!pos + kl) vl;
        set_slot b i !pos kl vl)
      es;
    set_cell_start b !pos

  let remove b key =
    match find_slot b key with
    | None -> false
    | Some i ->
        let n = nslots b in
        (* last slot fills the hole (order is not part of the contract);
           the cell bytes become a hole reclaimed by the next compaction *)
        if i < n - 1 then begin
          let off, kl, vl = slot b (n - 1) in
          set_slot b i off kl vl
        end;
        set_nslots b (n - 1);
        true

  let insert b key value =
    ignore (remove b key);
    let kl = String.length key and vl = String.length value in
    let need = kl + vl in
    if need + slot_size > free_space b then false
    else begin
      if need + slot_size > contiguous b then compact b;
      let n = nslots b in
      let pos = cell_start b - need in
      Bytes.blit_string key 0 b pos kl;
      Bytes.blit_string value 0 b (pos + kl) vl;
      set_slot b n pos kl vl;
      set_nslots b (n + 1);
      set_cell_start b pos;
      true
    end
end

(* ------------------------------------------------------------------ *)
(* The page file. *)

let file_header = 16
let magic = "TPMPAGE1"

type t = {
  fd : Unix.file_descr;
  fpath : string;
  psize : int;
  mutable next_page : int;  (* allocation high-water mark, >= disk extent *)
  mutable closed : bool;
}

let check_open t op = if t.closed then invalid_arg (Printf.sprintf "Pager.%s: file is closed" op)
let page_size t = t.psize
let path t = t.fpath
let page_offset t pid = file_header + (pid * t.psize)

let file_bytes t = (Unix.fstat t.fd).Unix.st_size

let disk_pages t =
  let data = file_bytes t - file_header in
  if data <= 0 then 0 else (data + t.psize - 1) / t.psize

let npages t =
  check_open t "npages";
  max t.next_page (disk_pages t)

let alloc t =
  check_open t "alloc";
  let pid = npages t in
  t.next_page <- pid + 1;
  pid

let pwrite_all fd off bytes =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes !written (len - !written)
  done

let pread_upto fd off bytes =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length bytes in
  let got = ref 0 and eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd bytes !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let create ?(page_size = 4096) fpath =
  if page_size < 128 || page_size > 32768 then
    invalid_arg "Pager.create: page_size must be within 128..32768";
  let fd = Unix.openfile fpath [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  let hdr = Bytes.make file_header '\000' in
  Bytes.blit_string magic 0 hdr 0 (String.length magic);
  Bytes.set_uint16_le hdr 8 page_size;
  pwrite_all fd 0 hdr;
  { fd; fpath; psize = page_size; next_page = 0; closed = false }

let open_ fpath =
  let fd = Unix.openfile fpath [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644 in
  let hdr = Bytes.create file_header in
  let got = pread_upto fd 0 hdr in
  if got < file_header || not (String.equal (Bytes.sub_string hdr 0 (String.length magic)) magic)
  then begin
    Unix.close fd;
    raise (Corrupt_page { page = -1; reason = "damaged page-file header" })
  end;
  let psize = Bytes.get_uint16_le hdr 8 in
  if psize < 128 || psize > 32768 then begin
    Unix.close fd;
    raise (Corrupt_page { page = -1; reason = Printf.sprintf "implausible page size %d" psize })
  end;
  let t = { fd; fpath; psize; next_page = 0; closed = false } in
  t.next_page <- disk_pages t;
  t

let all_zero b =
  let n = Bytes.length b in
  let rec go i = i >= n || (Bytes.get b i = '\000' && go (i + 1)) in
  go 0

let read_result t pid =
  check_open t "read";
  let buf = Bytes.create t.psize in
  let got = pread_upto t.fd (page_offset t pid) buf in
  if got = 0 then begin
    (* past the extent: an [alloc] never flushed, legitimately empty *)
    Page.init buf;
    Ok buf
  end
  else if got < t.psize then Error "short page (torn write or truncated file)"
  else if all_zero buf then begin
    (* a hole left by writes past this page: also never flushed *)
    Page.init buf;
    Ok buf
  end
  else begin
    let stored = Bytes.get_int32_le buf 0 in
    if crc32 buf 4 (t.psize - 4) <> stored then Error "page crc mismatch"
    else
      let ns = Page.nslots buf and cs = Page.cell_start buf in
      if Page.header + (ns * Page.slot_size) > cs || cs > t.psize then
        Error "implausible page header"
      else Ok buf
  end

let read t pid =
  match read_result t pid with
  | Ok buf -> buf
  | Error reason -> raise (Corrupt_page { page = pid; reason })

let write t pid buf =
  check_open t "write";
  if Bytes.length buf <> t.psize then invalid_arg "Pager.write: buffer is not one page";
  Bytes.set_int32_le buf 0 (crc32 buf 4 (t.psize - 4));
  pwrite_all t.fd (page_offset t pid) buf;
  if pid >= t.next_page then t.next_page <- pid + 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

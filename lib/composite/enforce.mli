(** The enforcement half of Section 3.6: per-subsystem local executors
    realizing the weak commit order the global scheduler prescribes.

    A local transaction opens at activity dispatch ({!begin_tx} records
    its operation footprint in the subsystem's live {!Local.t} history)
    and asks to commit when its invocation completes
    ({!request_commit}).  The enforcer {e holds} the commit while a
    prescribed predecessor's local transaction is still open, granting it
    (via the stored callback) as soon as the predecessor commits.  When a
    predecessor aborts instead, {!abort_tx} withdraws the dependents'
    open local transactions and returns them for {e retriable
    re-invocation}: the scheduler restarts the local transactions — not
    the processes — through its ordinary retry and backoff paths
    ({!rebegin} opens the fresh attempt under a new transaction id,
    keeping the token's obligations).

    The module is time-free: the scheduler owns the clock and the
    resource managers; the enforcer owns the obligation table and the
    histories the {!Fork} checkers consume. *)

type t

val create : unit -> t

val begin_tx :
  t -> subsystem:string -> token:int -> ops:(string * [ `Read | `Write ]) list -> unit
(** Opens the token's local transaction at the subsystem and records its
    operation footprint.
    @raise Invalid_argument if the token already has a transaction. *)

val rebegin : t -> token:int -> unit
(** Opens a fresh attempt of the token's (aborted) local transaction:
    the footprint is re-emitted under a new transaction id and the
    token's obligations carry over.
    @raise Invalid_argument unless the token's transaction is aborted. *)

val order : t -> pred:int -> dep:int -> unit
(** Prescribes [pred]'s local commit before [dep]'s.  A no-op when
    [pred]'s transaction already committed (or never existed). *)

val request_commit : t -> token:int -> ready:(unit -> unit) -> [ `Granted | `Held ]
(** [`Granted]: every prescribed predecessor committed — the caller
    commits the local transaction now and must then call {!committed}.
    [`Held]: a predecessor is still open; [ready] fires once the last
    one commits (it is dropped if the transaction is withdrawn by
    {!abort_tx} first). *)

val committed : t -> token:int -> unit
(** Records the local commit and releases every held dependent whose
    obligations are now all satisfied.
    @raise Invalid_argument if the token has no open transaction. *)

val abort_tx : t -> token:int -> (int * bool) list
(** Withdraws the token's open local transaction (own failure, group
    abort, predecessor cascade).  Returns the dependent tokens whose open
    local transactions must be re-invoked, each flagged [true] when its
    commit grant was held here (the scheduler owes it a fresh
    re-invocation event; [false] means its own completion event is still
    pending).  A no-op (returning []) when the token has no open
    transaction. *)

val state : t -> token:int -> [ `Open | `Committed | `Aborted ] option
val committed_tx : t -> token:int -> int option
(** The Local transaction id of the token's committed attempt. *)

val held_count : t -> int
(** Local commits delayed at least once (the enforcement counter). *)

val locals : t -> (string * Local.t) list
(** The live per-subsystem local schedules, sorted by subsystem name. *)

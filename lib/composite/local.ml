type op = {
  tx : int;
  item : string;
  mode : [ `Read | `Write ];
}

type event =
  | Op of op
  | Commit of int
  | Abort of int

type t = { evs : event list }

let make evs =
  let closed = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let tx = match ev with Op o -> o.tx | Commit tx | Abort tx -> tx in
      if Hashtbl.mem closed tx then
        invalid_arg (Printf.sprintf "Local.make: event after terminal event of tx %d" tx);
      match ev with Commit _ | Abort _ -> Hashtbl.replace closed tx () | Op _ -> ())
    evs;
  { evs }

let events l = l.evs

let transactions l =
  List.filter_map (function Op o -> Some o.tx | Commit tx | Abort tx -> Some tx) l.evs
  |> List.sort_uniq compare

let committed l =
  List.filter_map (function Commit tx -> Some tx | Op _ | Abort _ -> None) l.evs
  |> List.sort_uniq compare

let ops_conflict a b =
  a.tx <> b.tx && String.equal a.item b.item && (a.mode = `Write || b.mode = `Write)

(* the committed transactions as a hash set, for O(1) membership in the
   hot passes below *)
let committed_set l =
  let s = Hashtbl.create 16 in
  List.iter (function Commit tx -> Hashtbl.replace s tx () | Op _ | Abort _ -> ()) l.evs;
  s

let committed_ops l =
  let c = committed_set l in
  List.filter_map
    (function Op o when Hashtbl.mem c o.tx -> Some o | Op _ | Commit _ | Abort _ -> None)
    l.evs

(* Item-indexed single pass: per item, the sets of transactions that have
   read resp. written it so far; each new operation pairs with exactly the
   prior transactions it conflicts with, deduplicated as emitted.  Work is
   O(events x distinct transactions per item) instead of the former
   all-pairs O(n^2) walk. *)
let conflict_pairs l =
  let txs_of tbl item =
    match Hashtbl.find_opt tbl item with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.add tbl item s;
        s
  in
  let readers = Hashtbl.create 16 in
  let writers = Hashtbl.create 16 in
  let emitted = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun o ->
      let rs = txs_of readers o.item and ws = txs_of writers o.item in
      let pair t' =
        if t' <> o.tx && not (Hashtbl.mem emitted (t', o.tx)) then begin
          Hashtbl.add emitted (t', o.tx) ();
          out := (t', o.tx) :: !out
        end
      in
      (match o.mode with
      | `Write ->
          Hashtbl.iter (fun t' () -> pair t') rs;
          Hashtbl.iter (fun t' () -> pair t') ws
      | `Read -> Hashtbl.iter (fun t' () -> pair t') ws);
      Hashtbl.replace (match o.mode with `Read -> rs | `Write -> ws) o.tx ())
    (committed_ops l);
  List.sort_uniq compare !out

let serializable_with l pairs =
  not (Tpm_core.Digraph.has_cycle (Tpm_core.Digraph.make ~nodes:(committed l) ~edges:pairs))

let serializable l = serializable_with l (conflict_pairs l)

(* one pass builds the tx -> commit position table consulted per pair
   (formerly an O(n) list scan recomputed for every pair) *)
let commit_positions l =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i ev -> match ev with Commit tx -> Hashtbl.replace tbl tx i | Op _ | Abort _ -> ())
    l.evs;
  tbl

let pos_in tbl tx = match Hashtbl.find_opt tbl tx with Some i -> i | None -> max_int

let commit_order_serializable l =
  let pairs = conflict_pairs l in
  serializable_with l pairs
  &&
  let pos = commit_positions l in
  List.for_all (fun (t1, t2) -> pos_in pos t1 < pos_in pos t2) pairs

let respects_weak_order l pairs =
  let committed = committed_set l in
  let pos = commit_positions l in
  List.for_all
    (fun (t1, t2) ->
      (not (Hashtbl.mem committed t1 && Hashtbl.mem committed t2))
      || pos_in pos t1 < pos_in pos t2)
    pairs

let pp fmt l =
  let pp_event fmt = function
    | Op { tx; item; mode } ->
        Format.fprintf fmt "%s%d[%s]" (match mode with `Read -> "r" | `Write -> "w") tx item
    | Commit tx -> Format.fprintf fmt "c%d" tx
    | Abort tx -> Format.fprintf fmt "a%d" tx
  in
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_event)
    l.evs

(** Multi-level composition (Section 3.6; Börger et al.'s multi-level
    transaction control): a prec-convex sub-DAG of a process's activities
    declared a {e subprocess}.  The parent scheduler admits the whole
    group as one unit against the union of its members' conflict
    footprints; the inner engine (the process's own precedence order)
    schedules the children without further parent-level admission. *)

type group = {
  gname : string;
  members : int list;  (** activity ids of the owning process *)
}

val validate : Tpm_core.Process.t -> group list -> (unit, string) result
(** Members exist and are pairwise disjoint across groups; no outside
    activity lies on a [≪]-path between two members (prec-convexity); no
    outside choice point branches into the group. *)

val validate_exn : Tpm_core.Process.t -> group list -> unit
(** @raise Invalid_argument on a violation. *)

val services : Tpm_core.Process.t -> group -> string list
(** The union admission footprint: the members' services, deduplicated. *)

val group_of : group list -> int -> group option
(** The group containing the activity, if any. *)

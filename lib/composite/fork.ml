open Tpm_core

type t = {
  global : Schedule.t;
  locals : (string * Local.t) list;
  token_of : Activity.t -> int;
}

(* One filtering pass narrows the schedule to this subsystem's
   occurrences (service names interned once into the compiled conflict
   matrix); a second pass groups prior occurrences by service id and
   pairs each occurrence only with the conflicting groups, via bit
   probes — replacing the former all-pairs walk over the whole global
   schedule with its per-pair string conflict tests. *)
let prescribed_weak_order f subsystem =
  let comp = Conflict.Compiled.make (Schedule.spec f.global) in
  let here =
    List.filter_map
      (fun inst ->
        let a = Activity.instance_base inst in
        if String.equal a.Activity.subsystem subsystem then
          Some
            ( Activity.instance_proc inst,
              Conflict.Compiled.intern comp a.Activity.service,
              f.token_of a )
        else None)
      (Schedule.activities f.global)
  in
  let prior = Hashtbl.create 8 in
  let emitted = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun (proc, sid, token) ->
      let row = Conflict.Compiled.row comp sid in
      Hashtbl.iter
        (fun sid' occs ->
          if Bitset.mem row sid' then
            List.iter
              (fun (proc', token') ->
                if proc' <> proc && not (Hashtbl.mem emitted (token', token)) then begin
                  Hashtbl.add emitted (token', token) ();
                  out := (token', token) :: !out
                end)
              occs)
        prior;
      Hashtbl.replace prior sid
        ((proc, token) :: (match Hashtbl.find_opt prior sid with Some l -> l | None -> [])))
    here;
  List.sort_uniq compare !out

let locals_commit_order_serializable f =
  List.for_all (fun (_, l) -> Local.commit_order_serializable l) f.locals

let weak_order_realized f =
  List.for_all
    (fun (name, l) -> Local.respects_weak_order l (prescribed_weak_order f name))
    f.locals

let consistent f =
  Criteria.pred f.global && locals_commit_order_serializable f && weak_order_realized f

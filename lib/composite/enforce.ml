(* The enforcement half of Section 3.6: per-subsystem local executors
   that receive the prescribed (weak) commit order from the global
   scheduler and realize it.  A local transaction opens at dispatch (its
   operation footprint is recorded), and its local commit is *held* until
   every prescribed predecessor's local transaction committed.  When a
   predecessor aborts instead, the dependents' open local transactions
   are withdrawn and reported back for retriable re-invocation — the
   scheduler restarts the local transactions, not the processes.

   The module is time-free and callback-driven: the scheduler owns the
   clock and the resource managers; the enforcer owns the obligation
   table and the live per-subsystem {!Local.t} histories the fork
   checkers consume. *)

type tx_state =
  | Open
  | Committed
  | Aborted

type txrec = {
  subsystem : string;
  ops : (string * [ `Read | `Write ]) list;  (* footprint, re-emitted on re-invocation *)
  mutable id : int;  (* Local tx id of the current attempt *)
  mutable state : tx_state;
}

type t = {
  mutable next_id : int;
  by_token : (int, txrec) Hashtbl.t;
  events : (string, Local.event list ref) Hashtbl.t;  (* per subsystem, reversed *)
  preds : (int, int list) Hashtbl.t;  (* dep token -> predecessor tokens *)
  succs : (int, int list) Hashtbl.t;  (* pred token -> dependent tokens *)
  waiting : (int, unit -> unit) Hashtbl.t;  (* dep token -> held commit grant *)
  mutable held : int;  (* local commits delayed at least once *)
}

let create () =
  {
    next_id = 0;
    by_token = Hashtbl.create 32;
    events = Hashtbl.create 8;
    preds = Hashtbl.create 32;
    succs = Hashtbl.create 32;
    waiting = Hashtbl.create 8;
    held = 0;
  }

let evlist t subsystem =
  match Hashtbl.find_opt t.events subsystem with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.events subsystem r;
      r

let emit_ops t (r : txrec) =
  let evs = evlist t r.subsystem in
  List.iter
    (fun (item, mode) -> evs := Local.Op { tx = r.id; item; mode } :: !evs)
    r.ops

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let begin_tx t ~subsystem ~token ~ops =
  if Hashtbl.mem t.by_token token then
    invalid_arg (Printf.sprintf "Enforce.begin_tx: token %d already has a transaction" token);
  let r = { subsystem; ops; id = fresh_id t; state = Open } in
  Hashtbl.replace t.by_token token r;
  emit_ops t r

(* a fresh attempt of the same activity: the previous local transaction
   of the token must be aborted; the footprint is re-emitted under a new
   transaction id, the obligations (keyed by token) carry over *)
let rebegin t ~token =
  match Hashtbl.find_opt t.by_token token with
  | None -> invalid_arg (Printf.sprintf "Enforce.rebegin: unknown token %d" token)
  | Some r -> (
      match r.state with
      | Open | Committed ->
          invalid_arg
            (Printf.sprintf "Enforce.rebegin: token %d has a live transaction" token)
      | Aborted ->
          r.id <- fresh_id t;
          r.state <- Open;
          emit_ops t r)

let state t ~token =
  Option.map
    (fun r ->
      match r.state with Open -> `Open | Committed -> `Committed | Aborted -> `Aborted)
    (Hashtbl.find_opt t.by_token token)

(* register the prescribed order: [pred]'s local commit before [dep]'s.
   Only meaningful while [pred]'s transaction is open — a committed
   predecessor already satisfies the obligation, an absent or aborted one
   no longer constrains (its re-invocation, if any, re-queues the
   dependent at commit-request time because the obligation persists). *)
let order t ~pred ~dep =
  match Hashtbl.find_opt t.by_token pred with
  | Some { state = Open; _ } | Some { state = Aborted; _ } ->
      let ps = Option.value ~default:[] (Hashtbl.find_opt t.preds dep) in
      if not (List.mem pred ps) then begin
        Hashtbl.replace t.preds dep (pred :: ps);
        Hashtbl.replace t.succs pred
          (dep :: Option.value ~default:[] (Hashtbl.find_opt t.succs pred))
      end
  | Some { state = Committed; _ } | None -> ()

let pred_blocks t token =
  match Hashtbl.find_opt t.by_token token with
  | Some { state = Open; _ } -> true
  | Some { state = Committed | Aborted; _ } | None -> false

let blocked t ~token =
  List.exists (pred_blocks t) (Option.value ~default:[] (Hashtbl.find_opt t.preds token))

let request_commit t ~token ~ready =
  if blocked t ~token then begin
    Hashtbl.replace t.waiting token ready;
    t.held <- t.held + 1;
    `Held
  end
  else `Granted

let release_waiters t pred =
  let deps = Option.value ~default:[] (Hashtbl.find_opt t.succs pred) in
  List.iter
    (fun dep ->
      match Hashtbl.find_opt t.waiting dep with
      | Some k when not (blocked t ~token:dep) ->
          Hashtbl.remove t.waiting dep;
          k ()
      | Some _ | None -> ())
    deps

let committed t ~token =
  (match Hashtbl.find_opt t.by_token token with
  | Some ({ state = Open; _ } as r) ->
      r.state <- Committed;
      let evs = evlist t r.subsystem in
      evs := Local.Commit r.id :: !evs
  | Some _ | None ->
      invalid_arg (Printf.sprintf "Enforce.committed: token %d has no open transaction" token));
  release_waiters t token

(* Withdraw the token's open local transaction (its own failure, a group
   abort, or a predecessor cascade).  Returns the dependent tokens whose
   open local transactions must be restarted — the weakly ordered
   dependents of Section 3.6 — with their held commit grants dropped (the
   scheduler re-invokes them afresh). *)
let abort_tx t ~token =
  match Hashtbl.find_opt t.by_token token with
  | Some ({ state = Open; _ } as r) ->
      r.state <- Aborted;
      let evs = evlist t r.subsystem in
      evs := Local.Abort r.id :: !evs;
      let deps =
        List.filter
          (fun dep ->
            match Hashtbl.find_opt t.by_token dep with
            | Some { state = Open; _ } -> true
            | Some _ | None -> false)
          (Option.value ~default:[] (Hashtbl.find_opt t.succs token))
      in
      List.map
        (fun dep ->
          let was_held = Hashtbl.mem t.waiting dep in
          Hashtbl.remove t.waiting dep;
          (dep, was_held))
        deps
  | Some _ | None -> []

let committed_tx t ~token =
  match Hashtbl.find_opt t.by_token token with
  | Some { state = Committed; id; _ } -> Some id
  | Some _ | None -> None

let held_count t = t.held

let locals t =
  Hashtbl.fold (fun name evs acc -> (name, Local.make (List.rev !evs)) :: acc) t.events []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

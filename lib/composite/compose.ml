(* Multi-level composition (Section 3.6, after Börger et al.'s
   multi-level transaction control): a contiguous sub-DAG of a process's
   activities is declared a {e subprocess} and becomes one schedulable
   unit at the parent level.  The parent scheduler admits the whole group
   at once — against the union of its members' conflict footprints — and
   the inner engine (the process's own precedence order) then schedules
   the children without further parent-level admission.  Parent/child
   order obligations reconcile because the group claims its full
   footprint atomically at admission: any conflicting outside activity is
   ordered entirely before or entirely after the subprocess. *)

open Tpm_core

type group = {
  gname : string;
  members : int list;  (* activity ids of the owning process *)
}

let members_mem g n = List.mem n g.members

(* Well-formedness of a grouping over one process (wired into the
   scheduler's submit-time validation next to {!Tpm_core.Flex}):
   - every member exists in the process, groups are non-empty and
     pairwise disjoint;
   - prec-convexity: no activity outside the group lies on a [≪]-path
     between two members (otherwise the subprocess cannot execute as one
     unit — the outsider would have to run in its middle);
   - no member is an alternative target of a choice point outside the
     group (a branch switch would enter the subprocess halfway). *)
let validate proc groups =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_disjoint seen = function
    | [] -> Ok ()
    | g :: rest -> (
        match List.find_opt (fun n -> List.mem n seen) g.members with
        | Some n -> err "group %s: activity %d already grouped" g.gname n
        | None -> check_disjoint (g.members @ seen) rest)
  in
  let check_group g =
    if g.members = [] then err "group %s: empty" g.gname
    else
      match List.find_opt (fun n -> not (Process.mem proc n)) g.members with
      | Some n -> err "group %s: unknown activity %d" g.gname n
      | None -> (
          let outside =
            List.filter (fun n -> not (members_mem g n)) (Process.activity_ids proc)
          in
          match
            List.find_opt
              (fun x ->
                List.exists (fun a -> Process.before proc a x) g.members
                && List.exists (fun b -> Process.before proc x b) g.members)
              outside
          with
          | Some x -> err "group %s: activity %d interleaves the subprocess" g.gname x
          | None -> (
              match
                List.find_opt
                  (fun x ->
                    List.exists (members_mem g) (Process.alternatives proc x)
                    && List.length (Process.alternatives proc x) > 1)
                  outside
              with
              | Some x ->
                  err "group %s: choice point %d branches into the subprocess" g.gname x
              | None -> Ok ()))
  in
  match check_disjoint [] groups with
  | Error _ as e -> e
  | Ok () ->
      List.fold_left
        (fun acc g -> match acc with Error _ -> acc | Ok () -> check_group g)
        (Ok ()) groups

let validate_exn proc groups =
  match validate proc groups with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "Compose: process %d: %s" (Process.pid proc) msg)

(* the union footprint the group admits with: its members' services *)
let services proc g =
  List.map (fun n -> (Process.find proc n).Activity.service) g.members
  |> List.sort_uniq compare

let group_of groups n = List.find_opt (fun g -> members_mem g n) groups

type 'a entry = {
  key : float;
  seq : int;
  value : 'a;
}

(* Slots at or beyond [len] are [None]: a popped entry (and the closure
   it holds) must not stay reachable from the backing array. *)
type 'a t = {
  mutable data : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let size h = h.len
let is_empty h = h.len = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let get h i = match h.data.(i) with Some e -> e | None -> assert false

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get h i) (get h parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less (get h l) (get h !smallest) then smallest := l;
  if r < h.len && less (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if h.len = Array.length h.data then begin
    let cap = max 16 (2 * Array.length h.data) in
    let data = Array.make cap None in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- Some entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = get h 0 in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      h.data.(h.len) <- None;
      sift_down h 0
    end
    else h.data.(0) <- None;
    Some (top.key, top.value)
  end

let peek_key h = if h.len = 0 then None else Some (get h 0).key

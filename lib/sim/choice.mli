(** Controlled nondeterminism: pluggable decision strategies for the
    simulation's branch points.

    Every place the simulation branches on something other than its
    inputs — an injected RM failure, the delivery order of bus messages,
    the placement of a crash trigger — is a {e choice point}.  A choice
    point names itself with a [tag], states how many options it has, and
    supplies a [default] thunk that reproduces the historical randomized
    behaviour.

    Two strategies exist:

    - {!passive} (the default everywhere): every choice point runs its
      [default] thunk.  Since the thunks contain the exact pre-existing
      PRNG draws, a passive run is bit-identical to the code before
      choice points existed — seeded stress runs reproduce unchanged.
    - {!driven}: decisions come from a prescribed script (a list of
      option indices).  Once the script is exhausted, every further
      choice takes option 0 (the canonical default: no failure, no
      crash, oldest pending message first).  Every decision of arity
      [>= 2] is recorded with its tag, arity, per-option descriptors and
      an optional state fingerprint — the raw material of the DFS
      explorer ([lib/explore]): re-running with a recorded prefix
      replays that branch of the execution tree deterministically.

    Arity-1 choice points are taken silently in both modes: they cannot
    branch, so recording them would only bloat traces. *)

type decision = {
  tag : string;  (** choice-point identity, e.g. ["fail:ss0:2000001"] *)
  arity : int;  (** number of options (>= 2 for recorded decisions) *)
  chosen : int;  (** selected option, in [[0, arity)] *)
  options : string array;
      (** per-option descriptors (used by the explorer's dependence
          heuristics); length [arity] *)
  fp : string;
      (** state fingerprint at the decision point, [""] unless a
          fingerprinter is installed *)
}

type t

val passive : t
(** The strategy that changes nothing: all defaults, nothing recorded. *)

val is_passive : t -> bool

val driven : ?script:int list -> unit -> t
(** A fresh driven strategy.  The first [List.length script] recorded
    decisions take the scripted option (clamped into [[0, arity)]);
    later ones take option 0. *)

val flag : t -> tag:string -> default:(unit -> bool) -> bool
(** A binary choice point ([false] = option 0).  Driven default:
    [false]. *)

val index :
  t ->
  tag:string ->
  arity:int ->
  ?descr:(int -> string) ->
  default:(unit -> int) ->
  unit ->
  int
(** An [arity]-way choice point.  [descr] labels each option for the
    recorded trace (defaults to the option number).  Driven default:
    option 0.
    @raise Invalid_argument if [arity <= 0]. *)

val trace : t -> decision list
(** Recorded decisions, chronological.  Empty for {!passive}. *)

val decisions : t -> int
(** [List.length (trace t)] without the allocation. *)

val set_observer : t -> (decision -> unit) -> unit
(** Called on every recorded decision (e.g. to emit an
    {!Tpm_obs.Obs.event}).  No-op on {!passive}. *)

val set_fingerprinter : t -> (unit -> string) -> unit
(** Installed by the explorer: called {e before} each recorded decision
    to stamp it with the current model state.  No-op on {!passive}. *)

module Obs = Tpm_obs.Obs

type 'msg t = {
  sim : Des.t;
  rng : Prng.t;
  metrics : Metrics.t option;
  faults : Faults.t;
  choice : Choice.t;
  sync : bool;
      (* no message fault, no delivery-crash trigger and no driven choice
         strategy configured: deliver synchronously inside [send], so a
         fault-free exchange is indistinguishable (event order included)
         from direct calls *)
  handlers : (string, src:string -> 'msg -> unit) Hashtbl.t;
  mutable halted : bool;
  mutable delivered : int;
  mutable crash_hook : unit -> unit;
  (* the bus is polymorphic in 'msg, so the owner injects the tracer
     together with a message formatter *)
  mutable obs : (Obs.Tracer.t * ('msg -> string)) option;
  (* driven mode: sends wait here until the strategy picks them *)
  mutable pending : (string * string * 'msg) list;
  mutable pump_scheduled : bool;
  mutable descr : dst:string -> 'msg -> string;
}

let mincr ?by t name =
  match t.metrics with None -> () | Some m -> Metrics.incr ?by m name

let trace_msg t dir ~src ~dst msg =
  match t.obs with
  | Some (tracer, pp) when Obs.Tracer.active tracer ->
      Obs.Tracer.emit tracer (Obs.Msg { dir; src; dst; payload = lazy (pp msg) })
  | _ -> ()

let create ~sim ~rng ?metrics ?(faults = Faults.none) ?(choice = Choice.passive) () =
  let t =
    {
      sim;
      rng;
      metrics;
      faults;
      choice;
      sync =
        faults.Faults.msg_faults = []
        && Faults.crash_after_delivery faults = None
        && Choice.is_passive choice;
      handlers = Hashtbl.create 16;
      halted = false;
      delivered = 0;
      crash_hook = ignore;
      obs = None;
      pending = [];
      pump_scheduled = false;
      descr = (fun ~dst _ -> dst);
    }
  in
  (* Seed the message counters so they always show in summaries. *)
  mincr ~by:0 t "msg_sent";
  mincr ~by:0 t "msg_dropped";
  mincr ~by:0 t "msg_retransmits";
  t

let register t name handler =
  if Hashtbl.mem t.handlers name then
    invalid_arg (Printf.sprintf "Bus.register: duplicate endpoint %S" name);
  Hashtbl.replace t.handlers name handler

let set_crash_hook t hook = t.crash_hook <- hook
let set_tracer t tracer ~pp = t.obs <- Some (tracer, pp)
let set_choice_descr t descr = t.descr <- descr

let halt t =
  t.halted <- true;
  t.pending <- []

let halted t = t.halted
let deliveries t = t.delivered

let pending_summary t =
  String.concat ","
    (List.map (fun (_, dst, msg) -> t.descr ~dst msg) t.pending)

let deliver t ~src ~dst msg _sim =
  if not t.halted then begin
    match Hashtbl.find_opt t.handlers dst with
    | None -> ()
    | Some handler ->
        t.delivered <- t.delivered + 1;
        mincr t "msg_delivered";
        trace_msg t Obs.Deliver ~src ~dst msg;
        handler ~src msg;
        (match Faults.crash_after_delivery t.faults with
        | Some n when t.delivered >= n && not t.halted ->
            (* Crash right after the Nth delivery: its handler has run (and
               its sends are queued), nothing later is delivered. *)
            t.halted <- true;
            t.crash_hook ()
        | _ -> ())
  end

(* Driven delivery: pending sends drain one per simulation event; each
   event asks the strategy which pending message goes next, so the DFS
   explorer enumerates delivery orders.  A choice point with a single
   pending message has arity 1 and is taken silently. *)
let rec schedule_pump t =
  if (not t.pump_scheduled) && not t.halted then begin
    t.pump_scheduled <- true;
    Des.after t.sim 0.0 (fun _ -> pump t)
  end

and pump t =
  t.pump_scheduled <- false;
  if (not t.halted) && t.pending <> [] then begin
    let arr = Array.of_list t.pending in
    let n = Array.length arr in
    let k =
      Choice.index t.choice ~tag:"deliver" ~arity:n
        ~descr:(fun i ->
          let _, dst, msg = arr.(i) in
          t.descr ~dst msg)
        ~default:(fun () -> 0) ()
    in
    let src, dst, msg = arr.(k) in
    t.pending <- List.filteri (fun i _ -> i <> k) t.pending;
    deliver t ~src ~dst msg t.sim;
    if t.pending <> [] then schedule_pump t
  end

let send t ~src ~dst msg =
  if not t.halted then begin
    mincr t "msg_sent";
    trace_msg t Obs.Send ~src ~dst msg;
    if t.sync then deliver t ~src ~dst msg t.sim
    else if not (Choice.is_passive t.choice) then begin
      let drop, dup, _delay = Faults.msg_plan t.faults ~src ~dst ~now:(Des.now t.sim) in
      let enqueue () =
        t.pending <- t.pending @ [ (src, dst, msg) ];
        schedule_pump t
      in
      let dropped =
        drop > 0.0
        && Choice.flag t.choice
             ~tag:(Printf.sprintf "drop:%s->%s" src dst)
             ~default:(fun () -> false)
      in
      if dropped then begin
        mincr t "msg_dropped";
        trace_msg t Obs.Drop ~src ~dst msg
      end
      else begin
        enqueue ();
        if
          dup > 0.0
          && Choice.flag t.choice
               ~tag:(Printf.sprintf "dup:%s->%s" src dst)
               ~default:(fun () -> false)
        then begin
          mincr t "msg_duplicated";
          trace_msg t Obs.Duplicate ~src ~dst msg;
          enqueue ()
        end
      end
    end
    else begin
      let drop, dup, max_delay =
        Faults.msg_plan t.faults ~src ~dst ~now:(Des.now t.sim)
      in
      let enqueue () =
        let delay = if max_delay > 0.0 then Prng.float t.rng max_delay else 0.0 in
        Des.after t.sim delay (deliver t ~src ~dst msg)
      in
      if drop > 0.0 && Prng.chance t.rng drop then begin
        mincr t "msg_dropped";
        trace_msg t Obs.Drop ~src ~dst msg
      end
      else begin
        enqueue ();
        if dup > 0.0 && Prng.chance t.rng dup then begin
          mincr t "msg_duplicated";
          trace_msg t Obs.Duplicate ~src ~dst msg;
          enqueue ()
        end
      end
    end
  end

module Obs = Tpm_obs.Obs

type 'msg t = {
  sim : Des.t;
  rng : Prng.t;
  metrics : Metrics.t option;
  faults : Faults.t;
  sync : bool;
      (* no message fault and no delivery-crash trigger configured: deliver
         synchronously inside [send], so a fault-free exchange is
         indistinguishable (event order included) from direct calls *)
  handlers : (string, src:string -> 'msg -> unit) Hashtbl.t;
  mutable halted : bool;
  mutable delivered : int;
  mutable crash_hook : unit -> unit;
  (* the bus is polymorphic in 'msg, so the owner injects the tracer
     together with a message formatter *)
  mutable obs : (Obs.Tracer.t * ('msg -> string)) option;
}

let mincr ?by t name =
  match t.metrics with None -> () | Some m -> Metrics.incr ?by m name

let trace_msg t dir ~src ~dst msg =
  match t.obs with
  | Some (tracer, pp) when Obs.Tracer.active tracer ->
      Obs.Tracer.emit tracer (Obs.Msg { dir; src; dst; payload = lazy (pp msg) })
  | _ -> ()

let create ~sim ~rng ?metrics ?(faults = Faults.none) () =
  let t =
    {
      sim;
      rng;
      metrics;
      faults;
      sync =
        faults.Faults.msg_faults = [] && Faults.crash_after_delivery faults = None;
      handlers = Hashtbl.create 16;
      halted = false;
      delivered = 0;
      crash_hook = ignore;
      obs = None;
    }
  in
  (* Seed the message counters so they always show in summaries. *)
  mincr ~by:0 t "msg_sent";
  mincr ~by:0 t "msg_dropped";
  mincr ~by:0 t "msg_retransmits";
  t

let register t name handler =
  if Hashtbl.mem t.handlers name then
    invalid_arg (Printf.sprintf "Bus.register: duplicate endpoint %S" name);
  Hashtbl.replace t.handlers name handler

let set_crash_hook t hook = t.crash_hook <- hook
let set_tracer t tracer ~pp = t.obs <- Some (tracer, pp)
let halt t = t.halted <- true
let halted t = t.halted
let deliveries t = t.delivered

let deliver t ~src ~dst msg _sim =
  if not t.halted then begin
    match Hashtbl.find_opt t.handlers dst with
    | None -> ()
    | Some handler ->
        t.delivered <- t.delivered + 1;
        mincr t "msg_delivered";
        trace_msg t Obs.Deliver ~src ~dst msg;
        handler ~src msg;
        (match Faults.crash_after_delivery t.faults with
        | Some n when t.delivered >= n && not t.halted ->
            (* Crash right after the Nth delivery: its handler has run (and
               its sends are queued), nothing later is delivered. *)
            t.halted <- true;
            t.crash_hook ()
        | _ -> ())
  end

let send t ~src ~dst msg =
  if not t.halted then begin
    mincr t "msg_sent";
    trace_msg t Obs.Send ~src ~dst msg;
    if t.sync then deliver t ~src ~dst msg t.sim
    else begin
      let drop, dup, max_delay =
        Faults.msg_plan t.faults ~src ~dst ~now:(Des.now t.sim)
      in
      let enqueue () =
        let delay = if max_delay > 0.0 then Prng.float t.rng max_delay else 0.0 in
        Des.after t.sim delay (deliver t ~src ~dst msg)
      in
      if drop > 0.0 && Prng.chance t.rng drop then begin
        mincr t "msg_dropped";
        trace_msg t Obs.Drop ~src ~dst msg
      end
      else begin
        enqueue ();
        if dup > 0.0 && Prng.chance t.rng dup then begin
          mincr t "msg_duplicated";
          trace_msg t Obs.Duplicate ~src ~dst msg;
          enqueue ()
        end
      end
    end
  end

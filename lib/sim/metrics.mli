(** Simulation metrics: named counters and value series with summary
    statistics, used by the benchmark harness to report experiment rows.

    Each series maintains O(1) running aggregates (count, sum, min, max)
    and a fixed-bucket log-scale histogram (4 buckets per decade over
    [1e-9, 1e6), with underflow and overflow buckets) updated in O(1)
    per {!observe}.  The exact samples are kept too: exact quantiles
    sort once per call, and {!pp_summary}/{!pp_json} sort each series
    exactly once per snapshot. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
val count : t -> string -> int

val observe : t -> string -> float -> unit
(** Appends a sample to a named series: O(1) (aggregates + histogram
    bucket + cons). *)

val samples : t -> string -> float list
(** Chronological samples of a series (empty if unknown). *)

val mean : t -> string -> float
val total : t -> string -> float

val quantile : t -> string -> float -> float
(** [quantile m name q] with [q] in [0, 1]: the exact nearest-rank
    sample (one nan-safe sort per call); [nan] on an empty series. *)

val hquantile : t -> string -> float -> float
(** Bucketed quantile estimate from the histogram, O(buckets) and
    allocation-free: the geometric midpoint of the bucket holding the
    nearest-rank sample, clamped into the observed [min, max] range (so
    the estimate is within one bucket width — a factor [10^0.125] —
    of {!quantile}); [nan] on an empty series. *)

val max_value : t -> string -> float
(** Largest observed sample; [nan] on an empty/unknown series (like
    {!mean} and {!quantile}). *)

val min_value : t -> string -> float
(** Smallest observed sample; [nan] on an empty/unknown series. *)

val hist_buckets : t -> string -> (float * float * int) list
(** Non-empty histogram buckets of a series as [(lo, hi, count)], in
    increasing order; intervals are right-open [lo, hi), the underflow
    bucket reports [lo = 0.], the overflow bucket [hi = infinity]. *)

val counters : t -> (string * int) list
val series_names : t -> string list
val pp_summary : Format.formatter -> t -> unit

val pp_json : Format.formatter -> t -> unit
(** Machine-readable snapshot: counters, per-series aggregates with
    exact p50/p90/p99, and the non-empty histogram buckets.  Strictly
    valid JSON ([nan]/infinite values map to [null]). *)

val json_string : t -> string

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L
let chance t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log (max u 1e-300)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let mix64 = mix

let shuffle t l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

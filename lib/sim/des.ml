type t = {
  mutable clock : float;
  queue : cell Heap.t;
}

and cell = {
  mutable live : bool;
  fn : t -> unit;
}

let create () = { clock = 0.0; queue = Heap.create () }
let now sim = sim.clock

let at sim time f =
  if time < sim.clock then invalid_arg "Des.at: time lies in the past";
  Heap.push sim.queue ~key:time { live = true; fn = f }

let after sim delay f =
  if delay < 0.0 then invalid_arg "Des.after: negative delay";
  at sim (sim.clock +. delay) f

let after_cancellable sim delay f =
  if delay < 0.0 then invalid_arg "Des.after_cancellable: negative delay";
  let cell = { live = true; fn = f } in
  Heap.push sim.queue ~key:(sim.clock +. delay) cell;
  fun () -> cell.live <- false

let every sim ~period f =
  if period <= 0.0 then invalid_arg "Des.every: period must be positive";
  let rec tick sim = if f sim then at sim (sim.clock +. period) tick in
  at sim (sim.clock +. period) tick

let run ?(until = infinity) sim =
  let rec loop () =
    match Heap.peek_key sim.queue with
    | None -> ()
    | Some t when t > until -> ()
    | Some _ -> (
        match Heap.pop sim.queue with
        | None -> ()
        | Some (time, cell) ->
            (* Cancelled events are skipped without advancing the clock, so
               a defused retransmission timer leaves no trace in the run. *)
            if cell.live then begin
              sim.clock <- max sim.clock time;
              cell.fn sim
            end;
            loop ())
  in
  loop ()

let pending sim = Heap.size sim.queue

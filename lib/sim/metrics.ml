(* Named counters and value series.  Each series keeps the exact samples
   (for exact quantiles, one sort per snapshot) alongside O(1) running
   aggregates and a fixed-bucket log-scale histogram (O(1) observe,
   constant-time bucketed quantile estimates). *)

(* Shared histogram geometry: 4 buckets per decade over [1e-9, 1e6),
   right-open [lo, hi) intervals, plus an underflow bucket (everything
   below 1e-9, including 0 and negatives) and an overflow bucket. *)
let bounds = Array.init 61 (fun i -> 10.0 ** ((float_of_int i /. 4.0) -. 9.0))
let nbuckets = Array.length bounds + 1

(* smallest [i] with [v < bounds.(i)]; [Array.length bounds] if none
   (overflow).  Bucket [i >= 1] therefore holds [bounds.(i-1) <= v <
   bounds.(i)]. *)
let bucket_index v =
  let n = Array.length bounds in
  if v < bounds.(0) then 0
  else if not (v < bounds.(n - 1)) then n
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: bounds.(!lo) <= v < bounds.(!hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v < bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let bucket_lo i = if i = 0 then 0.0 else bounds.(i - 1)
let bucket_hi i = if i = nbuckets - 1 then infinity else bounds.(i)

type series = {
  mutable rev : float list;  (* reverse chronological, exact *)
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
  hist : int array;
}

type t = {
  counters : (string, int) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; series = Hashtbl.create 16 }

let incr ?(by = 1) m name =
  let cur = Option.value ~default:0 (Hashtbl.find_opt m.counters name) in
  Hashtbl.replace m.counters name (cur + by)

let count m name = Option.value ~default:0 (Hashtbl.find_opt m.counters name)

let observe m name v =
  let s =
    match Hashtbl.find_opt m.series name with
    | Some s -> s
    | None ->
        let s =
          { rev = []; n = 0; sum = 0.0; mn = nan; mx = nan; hist = Array.make nbuckets 0 }
        in
        Hashtbl.replace m.series name s;
        s
  in
  s.rev <- v :: s.rev;
  s.n <- s.n + 1;
  s.sum <- s.sum +. v;
  if s.n = 1 || v < s.mn then s.mn <- v;
  if s.n = 1 || v > s.mx then s.mx <- v;
  let b = bucket_index v in
  s.hist.(b) <- s.hist.(b) + 1

let find m name = Hashtbl.find_opt m.series name
let samples m name = match find m name with Some s -> List.rev s.rev | None -> []
let total m name = match find m name with Some s -> s.sum | None -> 0.0

let mean m name =
  match find m name with
  | Some s when s.n > 0 -> s.sum /. float_of_int s.n
  | _ -> nan

(* the historical (and deliberately simple) nearest-rank estimator *)
let rank q n = max 0 (min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

let sorted_samples s =
  let arr = Array.of_list s.rev in
  Array.sort Float.compare arr;
  arr

let quantile_of_sorted arr q =
  let n = Array.length arr in
  if n = 0 then nan else arr.(rank q n)

let quantile m name q =
  match find m name with
  | Some s when s.n > 0 -> quantile_of_sorted (sorted_samples s) q
  | _ -> nan

let hquantile m name q =
  match find m name with
  | None -> nan
  | Some s when s.n = 0 -> nan
  | Some s ->
      let target = rank q s.n in
      let i = ref 0 and cum = ref 0 in
      while !cum + s.hist.(!i) <= target do
        cum := !cum + s.hist.(!i);
        i := !i + 1
      done;
      (* geometric midpoint of the bucket, clamped into the observed
         range so degenerate distributions stay exact *)
      let est =
        if !i = 0 then s.mn
        else if !i = nbuckets - 1 then s.mx
        else sqrt (bucket_lo !i *. bucket_hi !i)
      in
      Float.max s.mn (Float.min s.mx est)

let max_value m name =
  match find m name with Some s when s.n > 0 -> s.mx | _ -> nan

let min_value m name =
  match find m name with Some s when s.n > 0 -> s.mn | _ -> nan

let hist_buckets m name =
  match find m name with
  | None -> []
  | Some s ->
      let acc = ref [] in
      for i = nbuckets - 1 downto 0 do
        if s.hist.(i) > 0 then acc := (bucket_lo i, bucket_hi i, s.hist.(i)) :: !acc
      done;
      !acc

let counters m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m.counters [] |> List.sort compare

let series_names m =
  Hashtbl.fold (fun k _ acc -> k :: acc) m.series [] |> List.sort compare

let pp_summary fmt m =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf fmt "%-32s %d@," k v) (counters m);
  List.iter
    (fun name ->
      (* materialize (and sort) each series exactly once per summary *)
      let s = Hashtbl.find m.series name in
      let arr = sorted_samples s in
      Format.fprintf fmt "%-32s mean=%.3f p50=%.3f p99=%.3f n=%d@," name
        (if s.n = 0 then nan else s.sum /. float_of_int s.n)
        (quantile_of_sorted arr 0.5) (quantile_of_sorted arr 0.99) s.n)
    (series_names m);
  Format.fprintf fmt "@]"

(* --- JSON snapshot --- *)

let json_float fmt v =
  if Float.is_nan v then Format.pp_print_string fmt "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf fmt "%.0f" v
  else Format.fprintf fmt "%.9g" v

let pp_json fmt m =
  Format.fprintf fmt "{\"counters\":{";
  List.iteri
    (fun i (k, v) -> Format.fprintf fmt "%s\"%s\":%d" (if i > 0 then "," else "") k v)
    (counters m);
  Format.fprintf fmt "},\"series\":{";
  List.iteri
    (fun i name ->
      let s = Hashtbl.find m.series name in
      let arr = sorted_samples s in
      Format.fprintf fmt
        "%s\"%s\":{\"n\":%d,\"sum\":%a,\"mean\":%a,\"min\":%a,\"max\":%a,\"p50\":%a,\"p90\":%a,\"p99\":%a,\"hist\":["
        (if i > 0 then "," else "")
        name s.n json_float s.sum json_float
        (if s.n = 0 then nan else s.sum /. float_of_int s.n)
        json_float s.mn json_float s.mx json_float
        (quantile_of_sorted arr 0.5)
        json_float
        (quantile_of_sorted arr 0.9)
        json_float
        (quantile_of_sorted arr 0.99);
      List.iteri
        (fun j (lo, hi, n) ->
          Format.fprintf fmt "%s{\"lo\":%a,\"hi\":%s,\"n\":%d}"
            (if j > 0 then "," else "")
            json_float lo
            (if Float.is_integer hi && hi < 1e15 then Printf.sprintf "%.0f" hi
             else if hi = infinity then "null"
             else Printf.sprintf "%.9g" hi)
            n)
        (hist_buckets m name);
      Format.fprintf fmt "]}")
    (series_names m);
  Format.fprintf fmt "}}"

let json_string m = Format.asprintf "%a" pp_json m

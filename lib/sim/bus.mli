(** Unreliable message bus on the DES virtual clock.

    Named endpoints register handlers; {!send} routes a message through
    the fault plan's {!Faults.link_fault}s, which may drop, duplicate or
    delay it (delays reorder deliveries).  When the plan has no message
    fault and no delivery-crash trigger, {!send} invokes the destination
    handler synchronously — a fault-free run is indistinguishable, event
    order included, from direct calls.

    The bus counts deliveries and supports the plan's
    [crash_after_deliveries] trigger: the handler of the Nth delivery
    still runs, then the bus halts and invokes the crash hook.  A halted
    bus silently discards sends and queued deliveries — the moral
    equivalent of the process hosting all endpoints dying. *)

type 'msg t

val create :
  sim:Des.t ->
  rng:Prng.t ->
  ?metrics:Metrics.t ->
  ?faults:Faults.t ->
  ?choice:Choice.t ->
  unit ->
  'msg t
(** Message-fault draws come from [rng]; counters [msg_sent],
    [msg_dropped], [msg_delivered], [msg_duplicated] are maintained when
    [metrics] is given.

    With a {e driven} [choice] strategy (default {!Choice.passive}) the
    bus switches to explored delivery: sends park in a pending pool and
    one message is delivered per simulation event, picked by a
    ["deliver"] choice point over the pool (drop/duplication become
    binary choice points where the fault plan allows them; delays are
    subsumed by order choice).  Under the passive strategy behaviour is
    bit-identical to a bus without the parameter. *)

val register : 'msg t -> string -> (src:string -> 'msg -> unit) -> unit
(** Attach the handler for an endpoint name.  Raises [Invalid_argument]
    on a duplicate name. *)

val send : 'msg t -> src:string -> dst:string -> 'msg -> unit
(** Fire-and-forget.  Sends to unregistered endpoints are dropped at
    delivery time; sends on a halted bus are dropped immediately. *)

val set_crash_hook : 'msg t -> (unit -> unit) -> unit
(** Invoked (once) when [crash_after_deliveries] fires, after the bus
    halted itself. *)

val set_tracer : 'msg t -> Tpm_obs.Obs.Tracer.t -> pp:('msg -> string) -> unit
(** Installs a trace sink for bus traffic: every send, delivery, drop
    and duplication emits an {!Tpm_obs.Obs.Msg} event.  The bus is
    polymorphic in its message type, so the owner supplies the message
    formatter [pp]. *)

val halt : 'msg t -> unit
val halted : 'msg t -> bool

val deliveries : 'msg t -> int
(** Messages delivered so far — the crash-sweep axis for delivery-point
    crashes. *)

val set_choice_descr : 'msg t -> (dst:string -> 'msg -> string) -> unit
(** Installs the per-message descriptor used to label delivery-order
    options in recorded choice traces (default: the destination name).
    The explorer's dependence heuristics parse these labels. *)

val pending_summary : 'msg t -> string
(** Descriptors of the messages currently parked in the driven-mode
    pending pool (empty string outside driven mode) — part of the
    explorer's state fingerprint. *)

(** Deterministic fault plans ("chaos scripts") for the simulation.

    A plan is pure data describing {e when} and {e where} the environment
    misbehaves: subsystem outage windows, per-service transient failure
    bursts, invocation latency spikes, and a scheduler crash trigger
    ("crash after the Nth WAL append").  Components consult the plan
    against the virtual clock; the plan itself never mutates, so a seeded
    run is exactly reproducible and every plan can be printed as a repro
    line.

    Windows are half-open intervals [[from_, until_)] of virtual time. *)

type window = {
  from_ : float;
  until_ : float;
}

type outage = {
  out_subsystem : string;
  out_window : window;
}
(** The whole subsystem refuses invocations during the window. *)

type burst = {
  burst_service : string;
  burst_window : window;
  burst_prob : float;  (** transient failure probability inside the window *)
}

type spike = {
  spike_subsystem : string;
  spike_window : window;
  spike_factor : float;  (** multiplier on invocation durations, >= 1 *)
}

type link_fault = {
  lf_src : string option;  (** sending endpoint; [None] matches any *)
  lf_dst : string option;  (** receiving endpoint; [None] matches any *)
  lf_window : window;
  lf_drop : float;  (** per-message drop probability in [0,1] *)
  lf_dup : float;  (** per-message duplication probability in [0,1] *)
  lf_delay : float;
      (** max extra delivery delay; each affected message is delayed by a
          uniform draw in [[0, lf_delay)], which also reorders messages *)
}
(** Message-layer misbehaviour on a (src, dst) link during a window:
    PREPARE/VOTE/DECISION/ACK traffic on the bus is dropped, duplicated
    and delayed (hence reordered) according to the active faults. *)

(** Scripted byte-level damage to the mirrored WAL.  Purely declarative:
    a sweep or test harness applies each fault to the log's segment files
    (via [Tpm_wal.Wal.Chaos]) at its chosen point and then exercises
    load/recovery.  Offsets are bytes into the named segment. *)
type disk_fault =
  | Torn_write of {
      segment : int;
      byte : int;
    }  (** cut the segment at the offset, as a crash mid-append would *)
  | Bit_flip of {
      segment : int;
      byte : int;
      bit : int;
    }  (** flip one bit in place *)
  | Short_read of {
      segment : int;
      byte : int;
    }  (** the segment's tail is unreadable: same image as a cut *)
  | Truncate_segment of { segment : int }  (** the whole segment file is gone *)

type t = {
  outages : outage list;
  bursts : burst list;
  spikes : spike list;
  msg_faults : link_fault list;
  crash_after_appends : int option;
      (** scheduler crash trigger: die right after the Nth WAL append *)
  crash_after_deliveries : int option;
      (** scheduler crash trigger: die right after the Nth bus message
          delivery (the handler for delivery N still runs) *)
  crash_explore : bool;
      (** systematic crash placement: under a {e driven} {!Choice}
          strategy, the scheduler offers a binary crash choice point at
          every WAL append instead of (or in addition to) the counted
          triggers above.  Inert under the passive strategy. *)
  disk_faults : disk_fault list;
  lying_fsync_windows : window list;
      (** while the clock is inside one of these, the WAL's fsync
          acknowledges its batch without persisting it
          ({!Tpm_wal.Wal.set_lie_probe}); a subsequent crash image
          exposes the loss *)
}

val none : t
(** The empty plan: nothing ever fails. *)

val is_none : t -> bool

val make :
  ?outages:outage list ->
  ?bursts:burst list ->
  ?spikes:spike list ->
  ?msg_faults:link_fault list ->
  ?crash_after_appends:int ->
  ?crash_after_deliveries:int ->
  ?crash_explore:bool ->
  ?disk_faults:disk_fault list ->
  ?lying_fsync:window list ->
  unit ->
  t

val outage : subsystem:string -> from_:float -> until_:float -> outage
val burst : service:string -> from_:float -> until_:float -> prob:float -> burst
val spike : subsystem:string -> from_:float -> until_:float -> factor:float -> spike

val link_fault :
  ?src:string ->
  ?dst:string ->
  from_:float ->
  until_:float ->
  ?drop:float ->
  ?dup:float ->
  ?delay:float ->
  unit ->
  link_fault
(** Omitted [src]/[dst] match every endpoint; probabilities default to 0
    and [delay] to 0 (no effect). *)

val uniform_msg_faults :
  ?drop:float -> ?dup:float -> ?delay:float -> horizon:float -> unit -> link_fault list
(** One fault covering every link over [[0, horizon)] — the "5% loss with
    duplication and reordering" stress plan.  Empty when all knobs are 0. *)

val in_window : window -> float -> bool

val outage_active : t -> subsystem:string -> now:float -> bool
(** Is the subsystem inside a declared outage window at [now]? *)

val burst_probability : t -> service:string -> now:float -> float
(** Largest failure probability among the service's active bursts
    (0 when none is active). *)

val latency_factor : t -> subsystem:string -> now:float -> float
(** Largest duration multiplier among the subsystem's active spikes
    (1 when none is active). *)

val msg_plan : t -> src:string -> dst:string -> now:float -> float * float * float
(** [(drop, dup, max_delay)] for a message leaving [src] for [dst] at
    [now]: the component-wise maximum over the active matching link
    faults, [(0, 0, 0)] when none match. *)

val crash_after : t -> int option
val crash_after_delivery : t -> int option
val crash_explore : t -> bool
val disk_faults : t -> disk_fault list

val lying_fsync : t -> now:float -> bool
(** Is [now] inside a lying-fsync window? *)

val pp_disk_fault : Format.formatter -> disk_fault -> unit

val periodic_outage :
  subsystem:string ->
  period:float ->
  duty:float ->
  ?phase:float ->
  horizon:float ->
  unit ->
  outage list
(** Regular outage windows [[k*period + phase, k*period + phase +
    duty*period)] for every period start below [horizon] — the
    "20%-duty-cycle outage" of the robustness experiments.  [duty] in
    [[0, 1)]. *)

val random :
  Prng.t ->
  subsystems:string list ->
  ?services:string list ->
  horizon:float ->
  ?outage_duty:float ->
  ?outage_mean:float ->
  ?burst_prob:float ->
  ?burst_mean:float ->
  ?spike_factor:float ->
  ?spike_mean:float ->
  unit ->
  t
(** A randomized plan drawn from the given stream (deterministic per
    seed).  Each subsystem alternates up-time and outages so that roughly
    an [outage_duty] fraction of [[0, horizon)] is covered, with
    exponentially distributed outage lengths of mean [outage_mean]
    (default 4).  When [burst_prob] > 0 each listed service receives one
    failure burst of mean length [burst_mean] (default 5) at a random
    start; when [spike_factor] > 1 each subsystem receives one latency
    spike of mean length [spike_mean] (default 5).  Defaults leave bursts
    and spikes off. *)

val pp : Format.formatter -> t -> unit
(** Compact single-plan rendering for repro lines, e.g.
    [outage(ss0,[2.0,7.5)) burst(svc3,[1.0,4.0),p=0.80) crash@12]. *)

val to_string : t -> string

(** Discrete-event simulation engine: a virtual clock and an event queue.

    Callbacks scheduled with {!at} or {!after} run at their virtual time,
    in deterministic order (time, then scheduling order).  {!run} drives
    the queue until it drains or a horizon is reached. *)

type t

val create : unit -> t
val now : t -> float

val after : t -> float -> (t -> unit) -> unit
(** [after sim delay f] schedules [f] at [now sim +. delay]; [delay >= 0]. *)

val at : t -> float -> (t -> unit) -> unit
(** Absolute-time variant; the time must not lie in the past. *)

val after_cancellable : t -> float -> (t -> unit) -> unit -> unit
(** Like {!after}, but returns a cancel thunk.  A cancelled event is
    discarded without running and without advancing the clock, so
    speculative timers (retransmission, in-doubt inquiry) do not stretch
    the virtual timeline of runs that never need them. *)

val every : t -> period:float -> (t -> bool) -> unit
(** [every sim ~period f] runs [f] once per [period] of virtual time
    (first firing one period from now) for as long as [f] returns [true].
    Returning [false] stops the series; no event stays queued, so a
    stopped ticker never holds the simulation away from quiescence. *)

val run : ?until:float -> t -> unit
(** Processes events until the queue is empty or virtual time would exceed
    [until]. *)

val pending : t -> int

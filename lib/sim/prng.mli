(** Deterministic pseudo-random number generation (SplitMix64).

    Every simulation component draws from its own stream so that runs are
    reproducible regardless of the order in which components consume
    randomness. *)

type t

val create : int -> t
(** [create seed] builds an independent stream. *)

val split : t -> t
(** A new independent stream derived from (and advancing) [t]. *)

val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list

val mix64 : int64 -> int64
(** The stateless SplitMix64 finalizer — a strong 64-bit mixing function,
    usable as a standalone hash (the explorer fingerprints states with
    it). *)

type window = {
  from_ : float;
  until_ : float;
}

type outage = {
  out_subsystem : string;
  out_window : window;
}

type burst = {
  burst_service : string;
  burst_window : window;
  burst_prob : float;
}

type spike = {
  spike_subsystem : string;
  spike_window : window;
  spike_factor : float;
}

type link_fault = {
  lf_src : string option;
  lf_dst : string option;
  lf_window : window;
  lf_drop : float;
  lf_dup : float;
  lf_delay : float;
}

(* Scripted byte-level damage to the mirrored WAL.  The plan is purely
   declarative: the sweep/test harness applies each fault to the log's
   segment files (via [Tpm_wal.Wal.Chaos]) at its chosen point and then
   exercises load/recovery.  Offsets are bytes into the named segment. *)
type disk_fault =
  | Torn_write of {
      segment : int;
      byte : int;
    }  (* cut the segment at the offset, as a crash mid-append would *)
  | Bit_flip of {
      segment : int;
      byte : int;
      bit : int;
    }
  | Short_read of {
      segment : int;
      byte : int;
    }  (* the tail of the segment is unreadable: same image as a cut *)
  | Truncate_segment of { segment : int }  (* the whole segment file is gone *)

type t = {
  outages : outage list;
  bursts : burst list;
  spikes : spike list;
  msg_faults : link_fault list;
  crash_after_appends : int option;
  crash_after_deliveries : int option;
  crash_explore : bool;
  disk_faults : disk_fault list;
  lying_fsync_windows : window list;
      (* while inside a window, fsync acknowledges without persisting *)
}

let none =
  {
    outages = [];
    bursts = [];
    spikes = [];
    msg_faults = [];
    crash_after_appends = None;
    crash_after_deliveries = None;
    crash_explore = false;
    disk_faults = [];
    lying_fsync_windows = [];
  }

let is_none t =
  t.outages = [] && t.bursts = [] && t.spikes = [] && t.msg_faults = []
  && t.crash_after_appends = None
  && t.crash_after_deliveries = None
  && (not t.crash_explore)
  && t.disk_faults = []
  && t.lying_fsync_windows = []

let window ~from_ ~until_ =
  if until_ < from_ then invalid_arg "Faults: window ends before it starts";
  { from_; until_ }

let make ?(outages = []) ?(bursts = []) ?(spikes = []) ?(msg_faults = [])
    ?crash_after_appends ?crash_after_deliveries ?(crash_explore = false)
    ?(disk_faults = []) ?(lying_fsync = []) () =
  {
    outages;
    bursts;
    spikes;
    msg_faults;
    crash_after_appends;
    crash_after_deliveries;
    crash_explore;
    disk_faults;
    lying_fsync_windows = lying_fsync;
  }

let outage ~subsystem ~from_ ~until_ =
  { out_subsystem = subsystem; out_window = window ~from_ ~until_ }

let burst ~service ~from_ ~until_ ~prob =
  { burst_service = service; burst_window = window ~from_ ~until_; burst_prob = prob }

let spike ~subsystem ~from_ ~until_ ~factor =
  if factor < 1.0 then invalid_arg "Faults.spike: factor must be >= 1";
  { spike_subsystem = subsystem; spike_window = window ~from_ ~until_; spike_factor = factor }

let in_window w now = now >= w.from_ && now < w.until_

let outage_active t ~subsystem ~now =
  List.exists
    (fun o -> o.out_subsystem = subsystem && in_window o.out_window now)
    t.outages

let burst_probability t ~service ~now =
  List.fold_left
    (fun acc b ->
      if b.burst_service = service && in_window b.burst_window now then
        Float.max acc b.burst_prob
      else acc)
    0.0 t.bursts

let latency_factor t ~subsystem ~now =
  List.fold_left
    (fun acc s ->
      if s.spike_subsystem = subsystem && in_window s.spike_window now then
        Float.max acc s.spike_factor
      else acc)
    1.0 t.spikes

let prob p name = if p < 0.0 || p > 1.0 then invalid_arg name else p

let link_fault ?src ?dst ~from_ ~until_ ?(drop = 0.0) ?(dup = 0.0) ?(delay = 0.0) () =
  if delay < 0.0 then invalid_arg "Faults.link_fault: negative delay";
  {
    lf_src = src;
    lf_dst = dst;
    lf_window = window ~from_ ~until_;
    lf_drop = prob drop "Faults.link_fault: drop probability";
    lf_dup = prob dup "Faults.link_fault: dup probability";
    lf_delay = delay;
  }

let uniform_msg_faults ?(drop = 0.0) ?(dup = 0.0) ?(delay = 0.0) ~horizon () =
  if drop <= 0.0 && dup <= 0.0 && delay <= 0.0 then []
  else [ link_fault ~from_:0.0 ~until_:horizon ~drop ~dup ~delay () ]

let link_matches lf ~src ~dst ~now =
  (match lf.lf_src with None -> true | Some s -> s = src)
  && (match lf.lf_dst with None -> true | Some d -> d = dst)
  && in_window lf.lf_window now

let msg_plan t ~src ~dst ~now =
  List.fold_left
    (fun (drop, dup, delay) lf ->
      if link_matches lf ~src ~dst ~now then
        (Float.max drop lf.lf_drop, Float.max dup lf.lf_dup, Float.max delay lf.lf_delay)
      else (drop, dup, delay))
    (0.0, 0.0, 0.0) t.msg_faults

let crash_after t = t.crash_after_appends
let crash_after_delivery t = t.crash_after_deliveries
let crash_explore t = t.crash_explore
let disk_faults t = t.disk_faults
let lying_fsync t ~now = List.exists (fun w -> in_window w now) t.lying_fsync_windows

let periodic_outage ~subsystem ~period ~duty ?(phase = 0.0) ~horizon () =
  if period <= 0.0 then invalid_arg "Faults.periodic_outage: period must be positive";
  if duty < 0.0 || duty >= 1.0 then invalid_arg "Faults.periodic_outage: duty in [0, 1)";
  if duty = 0.0 then []
  else
    let rec windows k acc =
      let from_ = (float_of_int k *. period) +. phase in
      if from_ >= horizon then List.rev acc
      else windows (k + 1) (outage ~subsystem ~from_ ~until_:(from_ +. (duty *. period)) :: acc)
    in
    windows 0 []

let random rng ~subsystems ?(services = []) ~horizon ?(outage_duty = 0.0)
    ?(outage_mean = 4.0) ?(burst_prob = 0.0) ?(burst_mean = 5.0) ?(spike_factor = 1.0)
    ?(spike_mean = 5.0) () =
  let outages =
    if outage_duty <= 0.0 then []
    else
      let mean_gap = outage_mean *. (1.0 -. outage_duty) /. outage_duty in
      List.concat_map
        (fun subsystem ->
          let rec walk t acc =
            if t >= horizon then List.rev acc
            else
              let gap = Prng.exponential rng ~mean:mean_gap in
              let len = Prng.exponential rng ~mean:outage_mean in
              let from_ = t +. gap in
              if from_ >= horizon then List.rev acc
              else
                let until_ = Float.min horizon (from_ +. len) in
                walk until_ (outage ~subsystem ~from_ ~until_ :: acc)
          in
          walk 0.0 [])
        subsystems
  in
  let bursts =
    if burst_prob <= 0.0 then []
    else
      List.map
        (fun service ->
          let from_ = Prng.float rng horizon in
          let until_ = Float.min horizon (from_ +. Prng.exponential rng ~mean:burst_mean) in
          burst ~service ~from_ ~until_ ~prob:burst_prob)
        services
  in
  let spikes =
    if spike_factor <= 1.0 then []
    else
      List.map
        (fun subsystem ->
          let from_ = Prng.float rng horizon in
          let until_ = Float.min horizon (from_ +. Prng.exponential rng ~mean:spike_mean) in
          spike ~subsystem ~from_ ~until_ ~factor:spike_factor)
        subsystems
  in
  {
    outages;
    bursts;
    spikes;
    msg_faults = [];
    crash_after_appends = None;
    crash_after_deliveries = None;
    crash_explore = false;
    disk_faults = [];
    lying_fsync_windows = [];
  }

let pp_disk_fault fmt = function
  | Torn_write { segment; byte } -> Format.fprintf fmt "torn-write(seg %d @%d)" segment byte
  | Bit_flip { segment; byte; bit } ->
      Format.fprintf fmt "bit-flip(seg %d @%d.%d)" segment byte bit
  | Short_read { segment; byte } -> Format.fprintf fmt "short-read(seg %d @%d)" segment byte
  | Truncate_segment { segment } -> Format.fprintf fmt "truncate-segment(%d)" segment

let pp fmt t =
  if is_none t then Format.fprintf fmt "no-faults"
  else begin
    let sep = ref false in
    let item f =
      if !sep then Format.fprintf fmt " ";
      sep := true;
      f ()
    in
    List.iter
      (fun o ->
        item (fun () ->
            Format.fprintf fmt "outage(%s,[%.2f,%.2f))" o.out_subsystem o.out_window.from_
              o.out_window.until_))
      t.outages;
    List.iter
      (fun b ->
        item (fun () ->
            Format.fprintf fmt "burst(%s,[%.2f,%.2f),p=%.2f)" b.burst_service
              b.burst_window.from_ b.burst_window.until_ b.burst_prob))
      t.bursts;
    List.iter
      (fun s ->
        item (fun () ->
            Format.fprintf fmt "spike(%s,[%.2f,%.2f),x%.1f)" s.spike_subsystem
              s.spike_window.from_ s.spike_window.until_ s.spike_factor))
      t.spikes;
    List.iter
      (fun lf ->
        item (fun () ->
            Format.fprintf fmt "msg(%s->%s,[%.2f,%.2f),drop=%.2f,dup=%.2f,delay=%.2f)"
              (Option.value lf.lf_src ~default:"*")
              (Option.value lf.lf_dst ~default:"*")
              lf.lf_window.from_ lf.lf_window.until_ lf.lf_drop lf.lf_dup lf.lf_delay))
      t.msg_faults;
    (match t.crash_after_appends with
    | Some n -> item (fun () -> Format.fprintf fmt "crash@%d" n)
    | None -> ());
    (match t.crash_after_deliveries with
    | Some n -> item (fun () -> Format.fprintf fmt "crash-delivery@%d" n)
    | None -> ());
    if t.crash_explore then item (fun () -> Format.fprintf fmt "crash-explore");
    List.iter (fun d -> item (fun () -> pp_disk_fault fmt d)) t.disk_faults;
    List.iter
      (fun w ->
        item (fun () -> Format.fprintf fmt "lying-fsync([%.2f,%.2f))" w.from_ w.until_))
      t.lying_fsync_windows
  end

let to_string t = Format.asprintf "%a" pp t

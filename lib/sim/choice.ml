type decision = {
  tag : string;
  arity : int;
  chosen : int;
  options : string array;
  fp : string;
}

type driven_state = {
  mutable script : int list;
  mutable rev_trace : decision list;
  mutable count : int;
  mutable observer : decision -> unit;
  mutable fingerprinter : (unit -> string) option;
}

type t =
  | Passive
  | Driven of driven_state

let passive = Passive
let is_passive = function Passive -> true | Driven _ -> false

let driven ?(script = []) () =
  Driven { script; rev_trace = []; count = 0; observer = ignore; fingerprinter = None }

let record d ~tag ~arity ~options =
  let chosen =
    match d.script with
    | c :: rest ->
        d.script <- rest;
        if c < 0 then 0 else if c >= arity then arity - 1 else c
    | [] -> 0
  in
  let fp = match d.fingerprinter with None -> "" | Some f -> f () in
  let dec = { tag; arity; chosen; options; fp } in
  d.rev_trace <- dec :: d.rev_trace;
  d.count <- d.count + 1;
  d.observer dec;
  chosen

let flag t ~tag ~default =
  match t with
  | Passive -> default ()
  | Driven d -> record d ~tag ~arity:2 ~options:[| "no"; "yes" |] = 1

let index t ~tag ~arity ?descr ~default () =
  if arity <= 0 then invalid_arg "Choice.index: arity must be positive";
  match t with
  | Passive -> default ()
  | Driven d ->
      if arity = 1 then 0
      else
        let options =
          match descr with
          | Some f -> Array.init arity f
          | None -> Array.init arity string_of_int
        in
        record d ~tag ~arity ~options

let trace = function Passive -> [] | Driven d -> List.rev d.rev_trace
let decisions = function Passive -> 0 | Driven d -> d.count

let set_observer t f =
  match t with Passive -> () | Driven d -> d.observer <- f

let set_fingerprinter t f =
  match t with Passive -> () | Driven d -> d.fingerprinter <- Some f

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
   Every WAL frame carries one over its payload: a single flipped bit
   anywhere in the record is guaranteed to be detected (CRC-32 detects
   all 1- and 2-bit errors and any burst up to 32 bits), so a damaged
   record can never unmarshal into a wrong-but-valid value. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s ~pos ~len =
  let t = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = (Int32.to_int (Int32.logand !c 0xFFl) lxor Char.code s.[i]) land 0xFF in
    c := Int32.logxor t.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string s = update 0l s ~pos:0 ~len:(String.length s)

open Tpm_core

type process_plan = {
  pid : int;
  state : Execution.recovery_state;
  executed : Activity.instance list;
  in_doubt : int list;
  in_doubt_commit : int list;
  completion : Activity.instance list;
}

type t = {
  committed : int list;
  aborted : int list;
  interrupted : process_plan list;
}

(* chronological per-process effect timeline *)
type effect =
  | Fwd of int
  | Inv of int
  | Pending of int  (* prepared, decision unknown so far *)

let analyze ?(on_step = fun _ -> ()) ~procs records =
  on_step (Printf.sprintf "analyze: %d log records, %d process definitions"
       (List.length records) (List.length procs));
  let find_proc pid = List.find_opt (fun p -> Process.pid p = pid) procs in
  let timelines : (int, effect list ref) Hashtbl.t = Hashtbl.create 16 in
  let terminal : (int, [ `Committed | `Aborted ]) Hashtbl.t = Hashtbl.create 16 in
  let registered = ref [] in
  (* presumed-abort coordinator state: cid -> (pid, act), plus the cids
     whose commit decision is durable *)
  let coord_acts : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let coord_committed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let durably_committed pid act =
    Hashtbl.fold
      (fun cid () acc ->
        acc
        ||
        match Hashtbl.find_opt coord_acts cid with
        | Some (p, a) -> p = pid && a = act
        | None -> false)
      coord_committed false
  in
  let timeline pid =
    match Hashtbl.find_opt timelines pid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace timelines pid r;
        r
  in
  let decide pid act commit =
    let r = timeline pid in
    r :=
      List.filter_map
        (function
          | Pending a when a = act -> if commit then Some (Fwd a) else None
          | e -> Some e)
        !r
  in
  List.iter
    (fun record ->
      match record with
      | Wal.Process_registered pid -> registered := pid :: !registered
      | Wal.Invoked { pid; act } -> timeline pid := Fwd act :: !(timeline pid)
      | Wal.Prepared { pid; act } -> timeline pid := Pending act :: !(timeline pid)
      | Wal.Prepared_decided { pid; act; commit } -> decide pid act commit
      | Wal.Compensated { pid; act } -> timeline pid := Inv act :: !(timeline pid)
      | Wal.Process_committed pid -> Hashtbl.replace terminal pid `Committed
      | Wal.Process_aborted pid -> Hashtbl.replace terminal pid `Aborted
      | Wal.Checkpoint { committed; aborted } | Wal.Ckpt_end { committed; aborted; _ } ->
          List.iter (fun pid -> Hashtbl.replace terminal pid `Committed) committed;
          List.iter (fun pid -> Hashtbl.replace terminal pid `Aborted) aborted
      | Wal.Coord_begin { cid; pid; act; _ } -> Hashtbl.replace coord_acts cid (pid, act)
      | Wal.Coord_committed { cid; _ } -> Hashtbl.replace coord_committed cid ()
      | Wal.Ckpt_begin _ | Wal.Coord_forgotten _ | Wal.Commit_requested _
      | Wal.Abort_requested _
      (* page-store records carry no process state: the process-level plan
         on a log with and without them is identical by construction *)
      | Wal.Kv_write _ | Wal.Dirty_pages _ -> ())
    records;
  let committed = ref [] and aborted = ref [] and interrupted = ref [] in
  let error = ref None in
  List.iter
    (fun pid ->
      match Hashtbl.find_opt terminal pid with
      | Some `Committed -> committed := pid :: !committed
      | Some `Aborted -> aborted := pid :: !aborted
      | None -> (
          match find_proc pid with
          | None -> error := Some (Printf.sprintf "process %d not re-registered for recovery" pid)
          | Some proc ->
              let effects = List.rev !(timeline pid) in
              (* resolve in-doubt, presumed abort: a surviving [Pending]
                 commits iff its coordinator durably logged the commit
                 decision.  Every Pending is resolved this way regardless
                 of its timeline position — an earlier revision treated
                 any non-final Pending as committed merely because later
                 effects followed it, which is unsound: with two
                 concurrent prepares the first one's 2PC may still be
                 undecided when a later activity logs, and replaying it
                 forward would resurrect an effect the subsystem will
                 presume aborted. *)
              let in_doubt = ref [] in
              let in_doubt_commit = ref [] in
              let resolved =
                List.filter
                  (fun e ->
                    match e with
                    | Pending act ->
                        if durably_committed pid act then begin
                          on_step
                            (Printf.sprintf
                               "P_%d a%d in doubt: durable Coord_committed, re-deliver commit"
                               pid act);
                          in_doubt_commit := act :: !in_doubt_commit;
                          true
                        end
                        else begin
                          on_step
                            (Printf.sprintf "P_%d a%d in doubt: presume abort" pid act);
                          in_doubt := act :: !in_doubt;
                          false
                        end
                    | Fwd _ | Inv _ -> true)
                  effects
              in
              let instances =
                List.map
                  (fun e ->
                    match e with
                    | Fwd act | Pending act -> Activity.Forward (Process.find proc act)
                    | Inv act -> Activity.Inverse (Process.find proc act))
                  resolved
              in
              let replayed =
                List.fold_left
                  (fun acc inst ->
                    Result.bind acc (fun st -> Execution.replay_instance st inst))
                  (Ok (Execution.start proc))
                  instances
              in
              (match replayed with
              | Error e ->
                  error := Some (Printf.sprintf "P_%d: log replay failed: %s" pid e)
              | Ok st ->
                  on_step
                    (Printf.sprintf "P_%d interrupted (%s): completion of %d activities"
                       pid
                       (match Execution.recovery_state st with
                       | Execution.B_rec -> "B-REC"
                       | Execution.F_rec -> "F-REC")
                       (List.length (Execution.completion st)));
                  interrupted :=
                    {
                      pid;
                      state = Execution.recovery_state st;
                      executed = Execution.effective_trace st;
                      in_doubt = List.rev !in_doubt;
                      in_doubt_commit = List.rev !in_doubt_commit;
                      completion = Execution.completion st;
                    }
                    :: !interrupted)))
    (List.sort_uniq compare
       (!registered @ Hashtbl.fold (fun pid _ acc -> pid :: acc) terminal []));
  match !error with
  | Some e -> Error e
  | None ->
      on_step
        (Printf.sprintf "analyze done: %d committed, %d aborted, %d interrupted"
           (List.length !committed) (List.length !aborted)
           (List.length !interrupted));
      Ok
        {
          committed = List.rev !committed;
          aborted = List.rev !aborted;
          interrupted = List.rev !interrupted;
        }

type kv_redo_plan = {
  start_lsn : int;
  ops : (int * string * string option) list;
}

let kv_redo ~rm records =
  (* The last Dirty_pages snapshot for [rm] bounds redo on its own,
     complete checkpoint or not: at the instant it was appended, every
     page absent from it was clean, so no mutation with an LSN below the
     minimum rec_lsn can be missing from disk.  An empty table says the
     whole store was clean as of the record's own position.  With no
     snapshot at all, redo starts at the beginning of the log. *)
  let start = ref 1 in
  List.iteri
    (fun i r ->
      match r with
      | Wal.Dirty_pages { rm = rm'; pages } when String.equal rm' rm ->
          start :=
            List.fold_left (fun acc (_, rec_lsn) -> min acc rec_lsn) (i + 1) pages
      | _ -> ())
    records;
  let ops = ref [] in
  List.iteri
    (fun i r ->
      match r with
      | Wal.Kv_write { rm = rm'; key; value } when String.equal rm' rm && i + 1 >= !start ->
          ops := (i + 1, key, value) :: !ops
      | _ -> ())
    records;
  { start_lsn = !start; ops = List.rev !ops }

let pp fmt t =
  let pp_ints fmt l =
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
      Format.pp_print_int fmt l
  in
  Format.fprintf fmt "@[<v>committed: [%a]@ aborted: [%a]@ " pp_ints t.committed pp_ints t.aborted;
  List.iter
    (fun plan ->
      Format.fprintf fmt "P_%d (%s): completion = [%a]@ " plan.pid
        (match plan.state with Execution.B_rec -> "B-REC" | Execution.F_rec -> "F-REC")
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.fprintf fmt " ")
           Activity.pp_instance)
        plan.completion)
    t.interrupted;
  Format.fprintf fmt "@]"

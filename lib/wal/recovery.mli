(** Crash recovery of the process scheduler.

    From the write-ahead log and the (re-registered) process definitions,
    recovery reconstructs the execution state of every process that was
    interrupted, decides the fate of in-doubt prepared activities (abort:
    their subsystem transactions never committed), and derives the
    completion [C(P)] each interrupted process must execute — backward
    compensation for processes in [B-REC], local compensation plus the
    retriable forward path for processes in [F-REC].  This realizes the
    group abort [A(P_{n_1}, ..., P_{n_s})] of Definition 8 after a
    scheduler failure. *)

type process_plan = {
  pid : int;
  state : Tpm_core.Execution.recovery_state;
  executed : Tpm_core.Activity.instance list;  (** effects present at crash time *)
  in_doubt : int list;
      (** prepared activity ids with no logged 2PC decision that recovery
          resolves to {e abort} (their subsystem transactions are rolled
          back) — the presumed-abort rule.  Every undecided prepare is
          resolved this way regardless of its position in the process's
          timeline: with two concurrent prepares an earlier one may still
          be undecided when a later activity logs, so "later effects
          exist" is no evidence of commit. *)
  in_doubt_commit : int list;
      (** prepared activity ids whose coordinator durably logged
          [Coord_committed] before the crash: the decision message must be
          re-delivered — recovery commits them at their subsystems, never
          aborts them.  They also appear in [executed]. *)
  completion : Tpm_core.Activity.instance list;  (** what recovery must execute *)
}

type t = {
  committed : int list;  (** processes already terminated (committed) *)
  aborted : int list;  (** processes already fully rolled back *)
  interrupted : process_plan list;  (** processes needing completion *)
}

val analyze :
  ?on_step:(string -> unit) ->
  procs:Tpm_core.Process.t list ->
  Wal.record list ->
  (t, string) result
(** Rebuilds every process state by replaying the logged instances through
    the execution engine.  Fails if the log is inconsistent with the
    process definitions.  [on_step] (default: ignore) receives a
    human-readable line per analysis step — in-doubt resolutions and
    per-process plans — which the scheduler forwards to its tracer as
    [Recovery_step] events. *)

val pp : Format.formatter -> t -> unit

(** {2 Page-store redo} *)

type kv_redo_plan = {
  start_lsn : int;
      (** first LSN whose effect may be missing from the page file: the
          minimum [rec_lsn] of the last {!Wal.Dirty_pages} snapshot for
          the resource manager (its own position when the table was
          empty), or 1 with no snapshot at all *)
  ops : (int * string * string option) list;
      (** every [(lsn, key, value)] mutation of the resource manager at or
          past [start_lsn], in log order — feed to [Store.redo], whose
          page-LSN guard skips the ones already on disk *)
}

val kv_redo : rm:string -> Wal.record list -> kv_redo_plan
(** Bounded-redo plan for one resource manager's paged store.  Must run
    on the log {e as loaded from disk} — never a compacted copy, whose
    renumbered positions would break the LSN↔page_lsn correspondence. *)

type record =
  | Process_registered of int
  | Invoked of {
      pid : int;
      act : int;
    }
  | Prepared of {
      pid : int;
      act : int;
    }
  | Prepared_decided of {
      pid : int;
      act : int;
      commit : bool;
    }
  | Compensated of {
      pid : int;
      act : int;
    }
  | Commit_requested of int
  | Process_committed of int
  | Abort_requested of int
  | Process_aborted of int
  | Checkpoint of {
      committed : int list;
      aborted : int list;
    }
  | Ckpt_begin of { ckpt : int }
  | Ckpt_end of {
      ckpt : int;
      committed : int list;
      aborted : int list;
    }
  | Coord_begin of {
      cid : int;
      pid : int;
      act : int;
      parts : string list;
    }
  | Coord_committed of {
      cid : int;
      pid : int;
    }
  | Coord_forgotten of {
      cid : int;
      pid : int;
    }
  (* The two page-store record kinds are appended at the end of the
     variant on purpose: Marshal encodes constructors by tag, so adding
     them anywhere else would silently re-tag every record kind after
     the insertion point and make existing on-disk logs unreadable. *)
  | Kv_write of {
      rm : string;
      key : string;
      value : string option;  (* marshaled Value.t; None = delete *)
    }
  | Dirty_pages of {
      rm : string;
      pages : (int * int) list;  (* (page id, rec_lsn) *)
    }

type sync_policy =
  | No_sync
  | Sync_each
  | Group of float

(* ------------------------------------------------------------------ *)
(* On-disk frame format: len(4, LE) ∥ crc32(payload)(4, LE) ∥ payload.
   Record boundaries come from the explicit length prefix — never from
   the marshal header — and the CRC makes a bit-flipped payload a
   detected corruption instead of a wrong-but-valid record.  The log is
   a sequence of segment files [base.NNNN.seg]; appends never span a
   segment boundary, so an incomplete record can only legitimately sit
   at the tail of the *last* segment (a torn write: the crash cut the
   append short).  Anywhere else it is damage. *)

let frame_header = 8
let max_record_bytes = 1 lsl 28

(* Segment seal: 8 trailer bytes (len = -1 sentinel ∥ magic) written when
   a segment rolls.  A non-final segment that does not end in its seal
   lost bytes — without the seal, truncating a middle segment exactly at
   a frame boundary would load cleanly and silently drop the records
   between the cut and the next segment. *)
let seal_magic = "TPMS"
let seal_bytes = "\xff\xff\xff\xff" ^ seal_magic

let get_u32_le s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let put_u32_le b pos v =
  let byte i = Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v (8 * i)) 0xFFl)) in
  for i = 0 to 3 do
    Bytes.set b (pos + i) (byte i)
  done

let frame record =
  let payload = Marshal.to_string record [] in
  let len = String.length payload in
  let b = Bytes.create (frame_header + len) in
  put_u32_le b 0 (Int32.of_int len);
  put_u32_le b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b frame_header len;
  Bytes.unsafe_to_string b

let seg_path base i = Printf.sprintf "%s.%04d.seg" base i

let existing_segments base =
  let dir = Filename.dirname base and name = Filename.basename base in
  let prefix = name ^ "." and suffix = ".seg" in
  let plen = String.length prefix and slen = String.length suffix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             if
               String.length e > plen + slen
               && String.sub e 0 plen = prefix
               && Filename.check_suffix e suffix
             then
               match int_of_string_opt (String.sub e plen (String.length e - plen - slen)) with
               | Some i -> Some (i, Filename.concat dir e)
               | None -> None
             else None)
      |> List.sort compare

let segment_files base = List.map snd (existing_segments base)

let file_size p =
  let ic = open_in_bin p in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)

type disk = {
  base : string;
  segment_bytes : int;
  mutable seg : int;
  mutable oc : out_channel;
  mutable seg_bytes : int;  (* bytes written (possibly still buffered) to the current segment *)
  mutable pending : int;  (* records appended since the last fsync *)
  mutable acked_records : int;  (* records some fsync claimed durable *)
  mutable durable_records : int;  (* records an honest disk actually holds *)
  mutable durable_seg : int;  (* honest durable byte position: a lying *)
  mutable durable_off : int;  (* fsync acks without advancing it *)
  mutable fsyncs : int;
  mutable max_batch : int;
  mutable lie : unit -> bool;
  mutable on_sync : int -> unit;
  mutable closed : bool;
}

type t = {
  mutable rev_records : record list;
  mutable count : int;
  policy : sync_policy;
  disk : disk option;
}

type stats = {
  fsyncs : int;
  acked_records : int;
  durable_records : int;
  max_batch : int;
  segments : int;
}

let open_segment base i =
  (* O_APPEND, never O_TRUNC: even a buggy double-open cannot clobber
     bytes already written *)
  open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 (seg_path base i)

let create ?path ?(sync = Sync_each) ?(segment_bytes = 1 lsl 20) ?(fresh = false) () =
  (match sync with
  | Group w when w < 0.0 -> invalid_arg "Wal.create: negative group-commit window"
  | _ -> ());
  if segment_bytes < 64 then invalid_arg "Wal.create: segment_bytes must be >= 64";
  let disk =
    Option.map
      (fun base ->
        let existing = existing_segments base in
        if fresh then List.iter (fun (_, p) -> Sys.remove p) existing
        else begin
          (* Reopening a path that already holds durable records would
             destroy the only copy of the log.  Refuse loudly: recovery
             reads the old log first, and a genuinely new log belongs at
             a new path (or behind an explicit [~fresh:true]). *)
          if List.exists (fun (_, p) -> file_size p > 0) existing then
            invalid_arg
              (Printf.sprintf
                 "Wal.create: %s already holds a log (%d segment(s)); pass ~fresh:true to \
                  discard it deliberately, or recover from it first"
                 base (List.length existing));
          if Sys.file_exists base && not (Sys.is_directory base) && file_size base > 0 then
            invalid_arg
              (Printf.sprintf "Wal.create: %s is nonempty (pre-existing log?); refusing to reuse"
                 base);
          (* stale empty segments from an aborted create are harmless *)
          List.iter (fun (_, p) -> Sys.remove p) existing
        end;
        {
          base;
          segment_bytes;
          seg = 0;
          oc = open_segment base 0;
          seg_bytes = 0;
          pending = 0;
          acked_records = 0;
          durable_records = 0;
          durable_seg = 0;
          durable_off = 0;
          fsyncs = 0;
          max_batch = 0;
          lie = (fun () -> false);
          on_sync = ignore;
          closed = false;
        })
      path
  in
  { rev_records = []; count = 0; policy = sync; disk }

let sync_disk ?(force = false) d =
  if d.closed || (d.pending = 0 && not force) then 0
  else begin
    flush d.oc;
    Unix.fsync (Unix.descr_of_out_channel d.oc);
    let batch = d.pending in
    d.pending <- 0;
    d.fsyncs <- d.fsyncs + 1;
    d.acked_records <- d.acked_records + batch;
    if batch > d.max_batch then d.max_batch <- batch;
    (* a lying fsync acknowledges the batch without the bytes actually
       reaching stable storage: the honest durable marker stays put, and
       [crash_image] will truncate back to it *)
    if not (d.lie ()) then begin
      d.durable_records <- d.acked_records;
      d.durable_seg <- d.seg;
      d.durable_off <- d.seg_bytes
    end;
    d.on_sync batch;
    batch
  end

let roll d =
  (* seal, then force the sync even if no records are pending: the seal
     itself must be durable before the next segment opens, or a crash
     image could present a clean-looking but short middle segment *)
  output_string d.oc seal_bytes;
  d.seg_bytes <- d.seg_bytes + String.length seal_bytes;
  ignore (sync_disk ~force:true d);
  close_out d.oc;
  d.seg <- d.seg + 1;
  d.oc <- open_segment d.base d.seg;
  d.seg_bytes <- 0

let append t record =
  (* durability first: the framed record reaches the log — and, under
     [Sync_each] (the default), an fsync — before it is applied in
     memory.  [No_sync] and [Group _] deliberately trade that away:
     the record is buffered and the caller is acknowledged only when a
     later batched fsync covers it. *)
  (match t.disk with
  | Some d ->
      if d.closed then invalid_arg "Wal.append: log is closed";
      let f = frame record in
      let n = String.length f in
      if d.seg_bytes > 0 && d.seg_bytes + n > d.segment_bytes then roll d;
      output_string d.oc f;
      d.seg_bytes <- d.seg_bytes + n;
      d.pending <- d.pending + 1;
      (match t.policy with Sync_each -> ignore (sync_disk d) | No_sync | Group _ -> ())
  | None -> ());
  t.rev_records <- record :: t.rev_records;
  t.count <- t.count + 1

let sync t = match t.disk with None -> 0 | Some d -> sync_disk d
let pending t = match t.disk with None -> 0 | Some d -> d.pending
let set_on_sync t f = match t.disk with None -> () | Some d -> d.on_sync <- f
let set_lie_probe t f = match t.disk with None -> () | Some d -> d.lie <- f

let stats t =
  match t.disk with
  | None ->
      { fsyncs = 0; acked_records = t.count; durable_records = t.count; max_batch = 0; segments = 0 }
  | Some d ->
      {
        fsyncs = d.fsyncs;
        acked_records = d.acked_records;
        durable_records = d.durable_records;
        max_batch = d.max_batch;
        segments = d.seg + 1;
      }

let records t = List.rev t.rev_records
let size t = t.count

let close t =
  match t.disk with
  | None -> ()
  | Some d ->
      if not d.closed then begin
        ignore (sync_disk d);
        close_out d.oc;
        d.closed <- true
      end

let crash_image t =
  match t.disk with
  | None -> ()
  | Some d ->
      if not d.closed then begin
        (try close_out d.oc with Sys_error _ -> ());
        d.closed <- true
      end;
      (* power loss: everything past the honest durable point vanishes,
         including batches a lying fsync acknowledged *)
      List.iter
        (fun (i, p) ->
          if i > d.durable_seg then Sys.remove p
          else if i = d.durable_seg && file_size p > d.durable_off then
            Unix.truncate p d.durable_off)
        (existing_segments d.base)

(* ------------------------------------------------------------------ *)
(* Loading and anomaly classification. *)

type anomaly =
  | Torn_tail of {
      segment : int;
      offset : int;
    }
  | Corrupt_record of {
      segment : int;
      index : int;
      offset : int;
      reason : string;
    }
  | Missing_segment of { segment : int }
  | Short_segment of {
      segment : int;
      offset : int;
    }

let pp_anomaly fmt = function
  | Torn_tail { segment; offset } ->
      Format.fprintf fmt "torn-tail(seg %d @%d)" segment offset
  | Corrupt_record { segment; index; offset; reason } ->
      Format.fprintf fmt "corrupt(seg %d, record %d @%d: %s)" segment index offset reason
  | Missing_segment { segment } -> Format.fprintf fmt "missing-segment(%d)" segment
  | Short_segment { segment; offset } ->
      Format.fprintf fmt "short-segment(%d @%d)" segment offset

type load_policy =
  | Fail_stop
  | Salvage

type load_report = {
  records : record list;
  anomalies : anomaly list;
  quarantined_bytes : int;
  extents : (int * int * int) list;
}

exception Corrupt of {
  segment : int;
  index : int;
  reason : string;
}

let () =
  Printexc.register_printer (function
    | Corrupt { segment; index; reason } ->
        Some (Printf.sprintf "Wal.Corrupt(segment %d, record %d: %s)" segment index reason)
    | _ -> None)

let load ?(policy = Fail_stop) base =
  let segs = existing_segments base in
  let last_seg = List.fold_left (fun _ (i, _) -> i) (-1) segs in
  let records = ref [] and extents = ref [] in
  let anomalies = ref [] and quarantined = ref 0 in
  let index = ref 0 in
  let anomaly a = anomalies := a :: !anomalies in
  (* Corrupt-class damage (anything but a torn tail of the last segment):
     fail-stop raises immediately — truncating there would silently
     shrink the recovery plan; salvage records the anomaly, quarantines
     the rest of the segment and resumes at the next segment boundary
     (the only place re-synchronization is sound: a damaged length
     prefix poisons every frame boundary after it). *)
  let damage ~segment ~bytes_lost a =
    (match (policy, a) with
    | Fail_stop, Corrupt_record { index; reason; _ } -> raise (Corrupt { segment; index; reason })
    | Fail_stop, Missing_segment _ ->
        raise (Corrupt { segment; index = !index; reason = "segment file missing" })
    | Fail_stop, Short_segment _ ->
        raise
          (Corrupt
             { segment; index = !index; reason = "segment ends mid-record (not the log tail)" })
    | Fail_stop, Torn_tail _ | Salvage, _ -> ());
    anomaly a;
    quarantined := !quarantined + bytes_lost
  in
  let next = ref 0 in
  List.iter
    (fun (s, path) ->
      for missing = !next to s - 1 do
        damage ~segment:missing ~bytes_lost:0 (Missing_segment { segment = missing })
      done;
      next := s + 1;
      let bytes = read_file path in
      let n = String.length bytes in
      let is_last = s = last_seg in
      let pos = ref 0 and stop = ref false and sealed = ref false in
      let tail reason_offset =
        (* an incomplete frame: a torn write if this is the log's tail,
           damage anywhere else *)
        if is_last then anomaly (Torn_tail { segment = s; offset = reason_offset })
        else
          damage ~segment:s ~bytes_lost:(n - reason_offset)
            (Short_segment { segment = s; offset = reason_offset });
        stop := true
      in
      let corrupt reason =
        damage ~segment:s ~bytes_lost:(n - !pos)
          (Corrupt_record { segment = s; index = !index; offset = !pos; reason });
        stop := true
      in
      while (not !stop) && !pos < n do
        if n - !pos < frame_header then tail !pos
        else if get_u32_le bytes !pos = -1l then
          (* candidate segment seal (the -1 length sentinel can never be a
             record: real lengths are bounded by [max_record_bytes]) *)
          if String.sub bytes (!pos + 4) 4 = seal_magic then begin
            sealed := true;
            pos := !pos + frame_header;
            if !pos < n then corrupt "bytes after segment seal" else stop := true
          end
          else corrupt "damaged segment seal"
        else
          let len = Int32.to_int (get_u32_le bytes !pos) in
          let crc = get_u32_le bytes (!pos + 4) in
          if len < 0 || len > max_record_bytes then
            (* a length this implausible cannot be a torn write of ours:
               frames are written length-first and atomically buffered *)
            corrupt (Printf.sprintf "implausible record length %d" len)
          else if n - !pos - frame_header < len then tail !pos
          else
            let payload = String.sub bytes (!pos + frame_header) len in
            if Crc32.string payload <> crc then corrupt "crc mismatch"
            else
              match (Marshal.from_string payload 0 : record) with
              | exception _ -> corrupt "crc ok but payload does not unmarshal"
              | r ->
                  records := r :: !records;
                  extents := (s, !pos, frame_header + len) :: !extents;
                  incr index;
                  pos := !pos + frame_header + len
      done;
      (* every segment that was rolled past ends in its seal; a non-final
         segment without one lost its tail — even if every surviving
         frame parses, records between the cut and the next segment are
         gone, and that must never look clean *)
      if (not is_last) && (not !sealed) && not !stop then
        damage ~segment:s ~bytes_lost:0 (Short_segment { segment = s; offset = n }))
    segs;
  {
    records = List.rev !records;
    anomalies = List.rev !anomalies;
    quarantined_bytes = !quarantined;
    extents = List.rev !extents;
  }

let load_records path = (load ~policy:Fail_stop path).records

(* ------------------------------------------------------------------ *)
(* Byte-level disk-fault injection primitives (test/sweep harnesses). *)

module Chaos = struct
  let flip_bit ~path ~byte ~bit =
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let b = Bytes.create 1 in
        ignore (Unix.lseek fd byte Unix.SEEK_SET);
        if Unix.read fd b 0 1 <> 1 then invalid_arg "Chaos.flip_bit: offset past end of file";
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl (bit land 7))));
        ignore (Unix.lseek fd byte Unix.SEEK_SET);
        ignore (Unix.write fd b 0 1))

  let truncate ~path ~bytes = Unix.truncate path bytes

  let copy ~src ~dst =
    let data = read_file src in
    let oc = open_out_bin dst in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data)
end

(* ------------------------------------------------------------------ *)

let pp_record fmt = function
  | Process_registered pid -> Format.fprintf fmt "register(P_%d)" pid
  | Invoked { pid; act } -> Format.fprintf fmt "invoked(a_{%d_%d})" pid act
  | Prepared { pid; act } -> Format.fprintf fmt "prepared(a_{%d_%d})" pid act
  | Prepared_decided { pid; act; commit } ->
      Format.fprintf fmt "decided(a_{%d_%d}, %s)" pid act (if commit then "commit" else "abort")
  | Compensated { pid; act } -> Format.fprintf fmt "compensated(a_{%d_%d})" pid act
  | Commit_requested pid -> Format.fprintf fmt "commit-requested(P_%d)" pid
  | Process_committed pid -> Format.fprintf fmt "C_%d" pid
  | Abort_requested pid -> Format.fprintf fmt "abort-requested(P_%d)" pid
  | Process_aborted pid -> Format.fprintf fmt "A_%d" pid
  | Checkpoint { committed; aborted } ->
      let pp_ints =
        Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_int
      in
      Format.fprintf fmt "checkpoint(committed: %a; aborted: %a)" pp_ints committed pp_ints
        aborted
  | Ckpt_begin { ckpt } -> Format.fprintf fmt "ckpt-begin(#%d)" ckpt
  | Ckpt_end { ckpt; committed; aborted } ->
      let pp_ints =
        Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_int
      in
      Format.fprintf fmt "ckpt-end(#%d; committed: %a; aborted: %a)" ckpt pp_ints committed
        pp_ints aborted
  | Coord_begin { cid; pid; act; parts } ->
      Format.fprintf fmt "coord-begin(c%d, a_{%d_%d}, [%s])" cid pid act
        (String.concat "," parts)
  | Coord_committed { cid; pid } -> Format.fprintf fmt "coord-committed(c%d, P_%d)" cid pid
  | Coord_forgotten { cid; pid } -> Format.fprintf fmt "coord-forgotten(c%d, P_%d)" cid pid
  | Kv_write { rm; key; value } ->
      Format.fprintf fmt "kv-write(%s, %s%s)" rm key
        (match value with Some _ -> "" | None -> ", delete")
  | Dirty_pages { rm; pages } ->
      Format.fprintf fmt "dirty-pages(%s, [%s])" rm
        (String.concat ","
           (List.map (fun (page, rec_lsn) -> Printf.sprintf "%d@%d" page rec_lsn) pages))

let record_pids = function
  | Process_registered pid
  | Commit_requested pid
  | Process_committed pid
  | Abort_requested pid
  | Process_aborted pid -> [ pid ]
  | Invoked { pid; _ } | Prepared { pid; _ } | Prepared_decided { pid; _ }
  | Compensated { pid; _ } -> [ pid ]
  | Coord_begin { pid; _ } | Coord_committed { pid; _ } | Coord_forgotten { pid; _ } ->
      [ pid ]
  | Checkpoint _ | Ckpt_begin _ | Ckpt_end _ | Kv_write _ | Dirty_pages _ -> []

let compact records =
  (* The last *complete* checkpoint decides the cut.  An atomic
     [Checkpoint] cuts at its own position; a fuzzy [Ckpt_end] cuts at
     its matching [Ckpt_begin] — records appended while the checkpoint
     was being taken sit inside the span and must survive compaction.
     A dangling [Ckpt_end] with no surviving begin degrades to an
     atomic cut at its own position. *)
  let begins = Hashtbl.create 4 in
  let last =
    List.fold_left
      (fun (i, acc) r ->
        (match r with Ckpt_begin { ckpt } -> Hashtbl.replace begins ckpt i | _ -> ());
        let acc =
          match r with
          | Checkpoint { committed; aborted } -> Some (i, committed @ aborted)
          | Ckpt_end { ckpt; committed; aborted } ->
              Some (Option.value ~default:i (Hashtbl.find_opt begins ckpt), committed @ aborted)
          | _ -> acc
        in
        (i + 1, acc))
      (0, None) records
    |> snd
  in
  match last with
  | None -> records
  | Some (cut, closed) ->
      (* hash-set membership: the old per-record [List.mem] over the
         closed pids made compaction quadratic in checkpoint width *)
      let closed_set = Hashtbl.create (List.length closed) in
      List.iter (fun pid -> Hashtbl.replace closed_set pid ()) closed;
      List.filteri
        (fun i r ->
          match r with
          (* [Dirty_pages] describes the buffer pool at the instant it was
             logged; only the latest one matters and it rides with the
             checkpoint that emitted it, so stale ones compact away like
             the checkpoint-kind records.  [Kv_write] falls to the default
             branch: its pid set is empty, so it is always kept — page
             redo needs positional LSNs, which only the uncompacted log
             preserves (see the [compact] doc). *)
          | Checkpoint _ | Ckpt_begin _ | Ckpt_end _ | Dirty_pages _ -> i >= cut
          | _ ->
              i > cut
              || not (List.exists (fun pid -> Hashtbl.mem closed_set pid) (record_pids r)))
        records

type record =
  | Process_registered of int
  | Invoked of {
      pid : int;
      act : int;
    }
  | Prepared of {
      pid : int;
      act : int;
    }
  | Prepared_decided of {
      pid : int;
      act : int;
      commit : bool;
    }
  | Compensated of {
      pid : int;
      act : int;
    }
  | Commit_requested of int
  | Process_committed of int
  | Abort_requested of int
  | Process_aborted of int
  | Checkpoint of {
      committed : int list;
      aborted : int list;
    }
  | Coord_begin of {
      cid : int;
      pid : int;
      act : int;
      parts : string list;
    }
  | Coord_committed of {
      cid : int;
      pid : int;
    }
  | Coord_forgotten of {
      cid : int;
      pid : int;
    }

type t = {
  mutable rev_records : record list;
  mutable count : int;
  channel : out_channel option;
}

let create ?path () =
  let channel = Option.map (fun p -> open_out_bin p) path in
  { rev_records = []; count = 0; channel }

let append t record =
  (* durability first: mirror to disk before applying in memory *)
  (match t.channel with
  | Some oc ->
      Marshal.to_channel oc record [];
      flush oc
  | None -> ());
  t.rev_records <- record :: t.rev_records;
  t.count <- t.count + 1

let records t = List.rev t.rev_records
let size t = t.count
let close t = Option.iter close_out t.channel

exception Corrupt of {
  index : int;
  reason : string;
}

let () =
  Printexc.register_printer (function
    | Corrupt { index; reason } ->
        Some (Printf.sprintf "Wal.Corrupt(record %d: %s)" index reason)
    | _ -> None)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let total = in_channel_length ic in
      (* Record boundaries are recovered from the marshal headers, so a
         record cut short by the crash (torn tail: fewer bytes remain than
         the header, or than the header's declared payload) is
         distinguishable from corruption *within* a fully present record —
         the former is tolerated, the latter reported with its index. *)
      let rec read i acc =
        let pos = pos_in ic in
        if pos >= total then List.rev acc
        else if total - pos < Marshal.header_size then List.rev acc (* torn tail *)
        else
          let header = really_input_string ic Marshal.header_size in
          match Marshal.data_size (Bytes.of_string header) 0 with
          | exception Failure reason -> raise (Corrupt { index = i; reason })
          | data_size ->
              if total - pos - Marshal.header_size < data_size then List.rev acc
                (* torn tail: payload cut short by the crash *)
              else
                let payload = really_input_string ic data_size in
                match (Marshal.from_string (header ^ payload) 0 : record) with
                | record -> read (i + 1) (record :: acc)
                | exception Failure reason -> raise (Corrupt { index = i; reason })
      in
      read 0 [])

let pp_record fmt = function
  | Process_registered pid -> Format.fprintf fmt "register(P_%d)" pid
  | Invoked { pid; act } -> Format.fprintf fmt "invoked(a_{%d_%d})" pid act
  | Prepared { pid; act } -> Format.fprintf fmt "prepared(a_{%d_%d})" pid act
  | Prepared_decided { pid; act; commit } ->
      Format.fprintf fmt "decided(a_{%d_%d}, %s)" pid act (if commit then "commit" else "abort")
  | Compensated { pid; act } -> Format.fprintf fmt "compensated(a_{%d_%d})" pid act
  | Commit_requested pid -> Format.fprintf fmt "commit-requested(P_%d)" pid
  | Process_committed pid -> Format.fprintf fmt "C_%d" pid
  | Abort_requested pid -> Format.fprintf fmt "abort-requested(P_%d)" pid
  | Process_aborted pid -> Format.fprintf fmt "A_%d" pid
  | Checkpoint { committed; aborted } ->
      let pp_ints =
        Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") Format.pp_print_int
      in
      Format.fprintf fmt "checkpoint(committed: %a; aborted: %a)" pp_ints committed pp_ints
        aborted
  | Coord_begin { cid; pid; act; parts } ->
      Format.fprintf fmt "coord-begin(c%d, a_{%d_%d}, [%s])" cid pid act
        (String.concat "," parts)
  | Coord_committed { cid; pid } -> Format.fprintf fmt "coord-committed(c%d, P_%d)" cid pid
  | Coord_forgotten { cid; pid } -> Format.fprintf fmt "coord-forgotten(c%d, P_%d)" cid pid

let record_pids = function
  | Process_registered pid
  | Commit_requested pid
  | Process_committed pid
  | Abort_requested pid
  | Process_aborted pid -> [ pid ]
  | Invoked { pid; _ } | Prepared { pid; _ } | Prepared_decided { pid; _ }
  | Compensated { pid; _ } -> [ pid ]
  | Coord_begin { pid; _ } | Coord_committed { pid; _ } | Coord_forgotten { pid; _ } ->
      [ pid ]
  | Checkpoint _ -> []

let compact records =
  (* position of the last checkpoint, if any *)
  let last =
    List.fold_left
      (fun (i, acc) r ->
        match r with
        | Checkpoint { committed; aborted } -> (i + 1, Some (i, committed @ aborted))
        | _ -> (i + 1, acc))
      (0, None) records
    |> snd
  in
  match last with
  | None -> records
  | Some (cp_pos, closed) ->
      (* hash-set membership: the old per-record [List.mem] over the
         closed pids made compaction quadratic in checkpoint width *)
      let closed_set = Hashtbl.create (List.length closed) in
      List.iter (fun pid -> Hashtbl.replace closed_set pid ()) closed;
      List.filteri
        (fun i r ->
          match r with
          | Checkpoint _ -> i >= cp_pos
          | _ ->
              i > cp_pos
              || not (List.exists (fun pid -> Hashtbl.mem closed_set pid) (record_pids r)))
        records

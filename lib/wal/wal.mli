(** Write-ahead log of the transactional process scheduler.

    Every state transition relevant for recovery is appended before it is
    applied: activity invocations (committed or prepared/deferred),
    compensations, 2PC decisions, and process terminations.  After a crash
    {!Recovery} rebuilds the state of every interrupted process from the
    log and derives the completions to execute.

    The log lives in memory and can optionally be mirrored to disk as a
    sequence of segment files [path.NNNN.seg], each a run of CRC-framed
    records: [len (4 bytes LE) ∥ crc32(payload) (4 bytes LE) ∥ payload].
    Record boundaries come from the explicit length prefix, and the
    checksum turns bit damage into a {e detected} corruption rather than
    a wrong-but-valid record.  {!load} classifies every anomaly: a torn
    tail (the crash cut the final append short) is tolerated; anything
    else is corruption, reported with segment and record index. *)

type record =
  | Process_registered of int
  | Invoked of {
      pid : int;
      act : int;
    }  (** forward activity committed in its subsystem *)
  | Prepared of {
      pid : int;
      act : int;
    }  (** deferred-commit activity executed, locks held *)
  | Prepared_decided of {
      pid : int;
      act : int;
      commit : bool;
    }  (** 2PC outcome for a prepared activity *)
  | Compensated of {
      pid : int;
      act : int;
    }
  | Commit_requested of int
  | Process_committed of int
  | Abort_requested of int
  | Process_aborted of int  (** backward recovery completed: no effects remain *)
  | Checkpoint of {
      committed : int list;
      aborted : int list;
    }  (** processes closed at checkpoint time (atomic checkpoint) *)
  | Ckpt_begin of { ckpt : int }
      (** fuzzy checkpoint [ckpt] opened: records until the matching
          {!Ckpt_end} belong to the span and survive compaction *)
  | Ckpt_end of {
      ckpt : int;
      committed : int list;
      aborted : int list;
    }
      (** fuzzy checkpoint [ckpt] sealed with the processes closed by the
          time it completed; only a {e complete} span bounds replay *)
  | Coord_begin of {
      cid : int;
      pid : int;
      act : int;
      parts : string list;
    }
      (** presumed-abort 2PC coordinator opened instance [cid] for the
          prepared activity [(pid, act)] with the named participants *)
  | Coord_committed of {
      cid : int;
      pid : int;
    }
      (** the commit decision is durable; it must be (re)delivered to all
          participants, never reversed.  Aborts are presumed: no decision
          record means abort. *)
  | Coord_forgotten of {
      cid : int;
      pid : int;
    }
      (** every participant acknowledged the decision; the instance needs
          no recovery attention *)
  | Kv_write of {
      rm : string;
      key : string;
      value : string option;
    }
      (** physical store mutation of resource manager [rm]: [value] is a
          marshaled {!Tpm_kv.Value.t} ([None] = delete), kept opaque here
          so the log stays independent of the kv layer.  The record's
          1-based position in the log is the LSN that stamps the page it
          lands on; paged stores replay these on recovery
          ({!Recovery.kv_redo}).  Ignored by {!Recovery.analyze}. *)
  | Dirty_pages of {
      rm : string;
      pages : (int * int) list;
    }
      (** checkpoint-time snapshot of [rm]'s dirty-page table as
          [(page id, rec_lsn)] pairs: every page not listed was clean
          (on disk) when this record was appended, so page redo may start
          at the minimum [rec_lsn] — or at this record's own position
          when the table was empty.  Ignored by {!Recovery.analyze}. *)

type sync_policy =
  | No_sync  (** never fsync: fast and explicitly unsafe *)
  | Sync_each  (** flush + fsync on every append (the default) *)
  | Group of float
      (** group commit: appends buffer in the OS, one fsync per batch
          window (virtual-time seconds); a record is durable only once a
          {!sync} covers it *)

type t

val create :
  ?path:string -> ?sync:sync_policy -> ?segment_bytes:int -> ?fresh:bool -> unit -> t
(** With [path], every record is also framed to segment files.  Refuses
    a [path] that already holds records — reopening would destroy the
    only durable copy — unless [fresh:true] discards them explicitly.
    [segment_bytes] (default 1 MiB) bounds each segment; a record never
    spans two segments. *)

val append : t -> record -> unit
(** Durability first: the framed record reaches the log — and, under
    [Sync_each], an fsync — before it is applied in memory.  Under
    [No_sync]/[Group _] the frame is written but not yet synced. *)

val sync : t -> int
(** Force an fsync covering every buffered append; returns the batch
    size (0 if nothing was pending).  The group-commit scheduler calls
    this once per window. *)

val pending : t -> int
(** Appends buffered since the last fsync. *)

val set_on_sync : t -> (int -> unit) -> unit
(** Callback invoked after each fsync with the size of the batch it
    covered — the hook group commit uses to release durability waiters. *)

val set_lie_probe : t -> (unit -> bool) -> unit
(** Fault injection: when the probe returns [true], the next fsync
    acknowledges its batch without making it durable (a lying disk);
    {!crash_image} exposes the loss. *)

type stats = {
  fsyncs : int;
  acked_records : int;  (** records some fsync acknowledged *)
  durable_records : int;  (** records an honest disk actually holds *)
  max_batch : int;  (** largest batch a single fsync covered *)
  segments : int;
}

val stats : t -> stats
val records : t -> record list
val size : t -> int
val close : t -> unit

val crash_image : t -> unit
(** Simulate power loss: truncate the on-disk segments back to the
    honest durable point, erasing buffered appends and any batches a
    lying fsync acknowledged.  The log is closed. *)

val segment_files : string -> string list
(** Existing segment files of a log base path, in order. *)

(** {2 Loading and anomaly classification} *)

type anomaly =
  | Torn_tail of {
      segment : int;
      offset : int;
    }
      (** incomplete final record of the final segment: the crash cut
          the append short; the intact prefix is the log *)
  | Corrupt_record of {
      segment : int;
      index : int;
      offset : int;
      reason : string;
    }  (** CRC mismatch, implausible length, or undecodable payload *)
  | Missing_segment of { segment : int }  (** a gap in the segment sequence *)
  | Short_segment of {
      segment : int;
      offset : int;
    }  (** a non-final segment ends mid-record: damage, not a torn write *)

val pp_anomaly : Format.formatter -> anomaly -> unit

type load_policy =
  | Fail_stop  (** raise {!Corrupt} on any corrupt-class anomaly *)
  | Salvage
      (** quarantine from the damage to the end of that segment and
          resume at the next segment boundary — the only place frame
          re-synchronization is sound *)

type load_report = {
  records : record list;  (** every intact record, in order *)
  anomalies : anomaly list;
  quarantined_bytes : int;  (** bytes skipped by salvage *)
  extents : (int * int * int) list;
      (** per returned record: (segment, byte offset, frame length) —
          the injection map for byte-level fault sweeps *)
}

exception Corrupt of {
  segment : int;  (** segment file holding the damage *)
  index : int;  (** zero-based index of the unreadable record *)
  reason : string;
}
(** Raised by {!load} under [Fail_stop] on corruption strictly inside
    the log — bytes that are present but not a well-formed record.
    Distinct from a torn tail, which is expected after a crash and
    tolerated: truncating at mid-log corruption would discard
    arbitrarily many valid records after it and unsoundly shrink the
    recovery plan. *)

val load : ?policy:load_policy -> string -> load_report
(** Reads a mirrored log back from its segment files.  A torn tail is
    tolerated under both policies; any other anomaly raises {!Corrupt}
    under [Fail_stop] (the default) and is quarantined under
    [Salvage]. *)

val load_records : string -> record list
(** [Fail_stop] load returning just the records. *)

(** Byte-level disk-fault primitives for test and sweep harnesses. *)
module Chaos : sig
  val flip_bit : path:string -> byte:int -> bit:int -> unit
  val truncate : path:string -> bytes:int -> unit
  val copy : src:string -> dst:string -> unit
end

val pp_record : Format.formatter -> record -> unit

val record_pids : record -> int list
(** Processes a record mentions (empty for checkpoint-kind records). *)

val compact : record list -> record list
(** Drops every record that the last {e complete} checkpoint makes
    redundant: an atomic [Checkpoint] cuts at its own position, a fuzzy
    [Ckpt_end] cuts at its matching [Ckpt_begin] (records inside the
    span survive).  Records of processes the checkpoint did not close
    are kept wherever they appear.  {!Recovery.analyze} yields the same
    plan on the compacted log.

    Page-store records: stale [Dirty_pages] snapshots compact away with
    the checkpoint-kind records; [Kv_write] records are always kept.
    Note that compaction renumbers positions, while page LSNs name
    positions in the {e uncompacted} log — {!Recovery.kv_redo} must run
    against the log as loaded from disk, never a compacted copy. *)

(** Write-ahead log of the transactional process scheduler.

    Every state transition relevant for recovery is appended before it is
    applied: activity invocations (committed or prepared/deferred),
    compensations, 2PC decisions, and process terminations.  After a crash
    {!Recovery} rebuilds the state of every interrupted process from the
    log and derives the completions to execute.

    The log lives in memory and can optionally be mirrored to a file (one
    marshalled record per append, flushed immediately). *)

type record =
  | Process_registered of int
  | Invoked of {
      pid : int;
      act : int;
    }  (** forward activity committed in its subsystem *)
  | Prepared of {
      pid : int;
      act : int;
    }  (** deferred-commit activity executed, locks held *)
  | Prepared_decided of {
      pid : int;
      act : int;
      commit : bool;
    }  (** 2PC outcome for a prepared activity *)
  | Compensated of {
      pid : int;
      act : int;
    }
  | Commit_requested of int
  | Process_committed of int
  | Abort_requested of int
  | Process_aborted of int  (** backward recovery completed: no effects remain *)
  | Checkpoint of {
      committed : int list;
      aborted : int list;
    }  (** processes closed at checkpoint time *)
  | Coord_begin of {
      cid : int;
      pid : int;
      act : int;
      parts : string list;
    }
      (** presumed-abort 2PC coordinator opened instance [cid] for the
          prepared activity [(pid, act)] with the named participants *)
  | Coord_committed of {
      cid : int;
      pid : int;
    }
      (** the commit decision is durable; it must be (re)delivered to all
          participants, never reversed.  Aborts are presumed: no decision
          record means abort. *)
  | Coord_forgotten of {
      cid : int;
      pid : int;
    }
      (** every participant acknowledged the decision; the instance needs
          no recovery attention *)

type t

val create : ?path:string -> unit -> t
(** With [path], every record is also marshalled to the file. *)

val append : t -> record -> unit
val records : t -> record list
val size : t -> int
val close : t -> unit

exception Corrupt of {
  index : int;  (** zero-based index of the unreadable record *)
  reason : string;
}
(** Raised by {!load} on corruption strictly inside the log — bytes that
    are present but not a well-formed record.  Distinct from a torn tail,
    which is expected after a crash and silently tolerated. *)

val load : string -> record list
(** Reads a mirrored log back.  A torn final record — the crash cut the
    write short, so fewer bytes remain than its marshal header declares —
    is tolerated: the intact prefix is returned.  Corruption {e within}
    the log (a fully present record that does not unmarshal) is never
    silently dropped: it raises {!Corrupt} with the record's index, since
    truncating there would discard arbitrarily many valid records after
    it and unsoundly shrink the recovery plan. *)

val compact : record list -> record list
(** Drops every record that precedes the last checkpoint and concerns a
    process the checkpoint closed (and the stale earlier checkpoints).
    {!Recovery.analyze} yields the same plan on the compacted log. *)

val pp_record : Format.formatter -> record -> unit

(** CRC-32 (IEEE 802.3) checksums guarding every WAL frame. *)

val string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> string -> pos:int -> len:int -> int32
(** Incremental update: [update (update 0l a ...) b ...] equals the
    checksum of [a ^ b]. *)

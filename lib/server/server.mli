(** Open-world process serving: a front door over the scheduler.

    The closed-batch harnesses submit a fixed process set and run to
    quiescence.  [Server] instead accepts submissions continuously — over
    an in-process offer call, an arrival script, or the Lang textual
    format on a file descriptor — and decides {e whether} each submission
    enters the system at all, under an explicit overload policy:

    - {!Reject}: any overload condition fast-fails the submission with a
      typed reason;
    - {!Queue}: overloaded submissions wait in a bounded, deadline-aware
      admission queue and are shed on expiry;
    - {!Degrade}: when the preferred branch's conflict set is saturated,
      the submission is admitted via its alternative/compensable branch
      (the preferred alternatives pruned away), falling back to a typed
      reject when no well-formed degraded variant exists.

    Per-subsystem circuit breakers (open on consecutive
    [Rm.Unavailable]/timeout answers, half-open probe, close on success)
    keep a dying subsystem from eating the admission window, and
    {!drain} implements graceful shutdown: stop intake, settle in-flight
    work, seal the WAL.

    Everything runs on the scheduler's discrete-event clock, so a server
    run is exactly as deterministic and explorable as a batch run: the
    same seed and the same arrival script yield a bit-identical decision
    sequence ({!decision_log}). *)

(** What to do with a submission the fast path cannot admit. *)
type overload_policy =
  | Reject
  | Queue
  | Degrade

val policy_label : overload_policy -> string
val policy_of_string : string -> overload_policy option

(** Typed fast-fail reasons (the serving layer's analogue of the
    admission explain payload's {!Tpm_obs.Obs.reason}). *)
type reject_reason =
  | Window_full  (** in-flight window at [max_live] *)
  | Queue_full  (** bounded admission queue at capacity *)
  | Deadline_expired  (** shed from the queue past its submission deadline *)
  | Breaker_open of string  (** a required subsystem's circuit breaker is open *)
  | Saturated  (** [Degrade]: no admissible variant, conflict set saturated *)
  | Draining  (** intake stopped by {!drain} *)
  | Duplicate_pid
  | Unknown_subsystem of string
      (** the submission names a subsystem the server does not run
          (malformed/unroutable input — caught at the front door so it can
          never detonate inside a simulation event) *)

val reason_label : reject_reason -> string

type decision =
  | Admitted
  | Queued  (** waiting in the admission queue; the terminal decision follows *)
  | Degraded_admit of int  (** admitted via the fallback branch; [n] preferred activities pruned *)
  | Rejected of reject_reason

val decision_label : decision -> string

type config = {
  policy : overload_policy;
  max_live : int;  (** in-flight window: live processes admitted at once *)
  queue_capacity : int;
  default_deadline : float;
      (** virtual-time budget a queued submission may wait before it is
          shed ([Queue] policy) *)
  scan_period : float;
      (** period of the shed-scan/pump ticker (armed only while the
          queue is non-empty, so an idle server still quiesces) *)
  breaker_threshold : int;
      (** consecutive Unavailable/timeout answers that open a breaker *)
  breaker_cooldown : float;  (** open → half-open after this long *)
  saturation_limit : int;
      (** [Degrade]: a preferred branch is saturated when some service on
          it has at least this many live conflicting processes *)
}

val default_config : config
(** [Queue] policy, window 32, queue 64, deadline 10.0, scan 0.25,
    breaker threshold 3 / cooldown 5.0, saturation limit 8. *)

type counters = {
  offered : int;
  admitted : int;  (** via the preferred branch *)
  rejected : int;  (** typed fast-fails, including drain-time queue flush *)
  expired : int;  (** shed from the queue past their deadline *)
  degraded : int;  (** admitted via the fallback branch *)
}

type t

val create : ?config:config -> Tpm_scheduler.Scheduler.t -> t
(** Wraps a scheduler (installing its subsystem observer for the circuit
    breakers).  The server shares the scheduler's virtual clock, metrics
    and tracer. *)

val scheduler : t -> Tpm_scheduler.Scheduler.t
val config : t -> config

val offer : t -> ?deadline:float -> Tpm_core.Process.t -> decision
(** One submission at the current virtual time.  [deadline] overrides
    [default_deadline] ([Queue] policy).  [Queued] is not terminal: the
    entry is later admitted or shed by the ticker. *)

val submit_at : t -> at:float -> ?deadline:float -> Tpm_core.Process.t -> unit
(** Schedules [offer] at virtual time [at]. *)

val play : t -> (float * Tpm_core.Process.t) list -> unit
(** Schedules a whole arrival script ({!Tpm_workload.Generator.arrivals}). *)

val offer_text : t -> string -> ((int * decision) list, string) result
(** Parses a {!Tpm_core.Lang} document and offers every process in it,
    in order; returns the per-pid decisions or a parse error. *)

val run : ?until:float -> t -> unit
(** Drives the shared simulation (arrivals, queue scans, execution). *)

val drain : t -> unit
(** Graceful shutdown: stop intake (subsequent offers are rejected
    [Draining]), flush the admission queue as [Draining] rejects, run
    in-flight work to quiescence (finish or compensate), then seal the
    WAL with a final checkpoint and sync.  Idempotent. *)

val draining : t -> bool

val counters : t -> counters
val queue_depth : t -> int

val accounting_ok : t -> bool
(** The shed-accounting invariant:
    offered = admitted + rejected + expired + degraded + queue_depth —
    with equality and an empty queue once drained or quiescent. *)

val admitted_procs : t -> Tpm_core.Process.t list
(** The processes actually handed to the scheduler, in admission order —
    degraded variants included (under [Degrade] the admitted process is
    {e not} the offered one).  Recovery of a crashed server image must
    replay against exactly these definitions. *)

val decision_log : t -> string list
(** Chronological ["P<pid> <decision>"] lines, one per terminal decision
    plus one per enqueue — the determinism oracle: equal seeds and
    arrival scripts must yield equal logs. *)

val breaker_state : t -> string -> string
(** ["closed"], ["open"] or ["half-open"] for a subsystem (unknown
    subsystems are closed). *)

val steps : t -> int
(** Server-loop steps executed so far (arrival decisions, enqueues,
    sheds, pump admissions, drain stages) — the crash-sweep axis. *)

val set_step_hook : t -> (stage:string -> step:int -> unit) -> unit
(** Called after every server-loop step with its stage label
    ([arrival], [enqueue], [shed], [pump], [drain-start], [drain-queue],
    [drain-quiesce], [drain-seal]) and the step ordinal.  The crash sweep
    installs a hook that kills the scheduler at an exact step. *)

val handle_connection : t -> Unix.file_descr -> unit
(** Serves one connection of the line-oriented wire protocol: the client
    sends Lang documents terminated by a ["."] line; each document is
    answered with one [decision <pid> <label>] line per process, then the
    simulation runs to quiescence and a [status <pid> <committed|aborted>]
    line per admitted process plus one [counters ...] summary line are
    sent.  Returns at EOF.  The [tpm serve] loop and the socketpair tests
    drive this directly. *)

(** Shard-routing front door: one {!Server} per shard, submissions routed
    by the conflict-component of their service set (DESIGN.md §13).

    The partition invariant — no dependency edge between processes on
    different shards — is maintained at every instant: shard ownership is
    claimed per service at first sight, a submission spanning only dead
    owners transfers their claims (component merge), and a submission
    spanning two or more {e live} owners is deflected rather than
    admitted, because admitting it anywhere would create a cross-shard
    edge no engine can see.  Per-shard PRED is then global PRED, and each
    shard's reference oracle and [Checked] differential engine remain
    valid unmodified. *)

type route =
  | Routed of int * Server.decision
      (** the shard index it was routed to, and that server's decision *)
  | Deflected
      (** the submission's services span two or more live shards; retry
          after the contended shards drain *)

val route_label : route -> string

type t

val create :
  ?config:Server.config ->
  ?shards:int ->
  spec:Tpm_core.Conflict.t ->
  make_scheduler:(unit -> Tpm_scheduler.Scheduler.t) ->
  unit ->
  t
(** [shards] servers (default 2), each over a fresh scheduler from
    [make_scheduler] (which must build fresh resource managers per call —
    scheduler state is never shared between shards). *)

val shards : t -> int
val server : t -> int -> Server.t

val offer : t -> ?deadline:float -> Tpm_core.Process.t -> route
(** Route one submission: terminated pids are swept from the component
    map first, then ownership decides the target shard as described
    above.  The routed server's own overload policy produces the final
    decision. *)

val run : ?domains:int -> ?until:float -> t -> unit
(** Drive every shard's simulation to quiescence (or [until]).  Shards
    share no state, so [domains > 1] runs them on separate OCaml domains
    behind a work queue; the default [domains = 1] runs them in index
    order on the calling domain. *)

val drain : t -> unit
(** {!Server.drain} on every shard. *)

val counters : t -> Server.counters
(** Component-wise sum over the shards. *)

val deflected : t -> int
(** Submissions turned away because their services spanned several live
    shards. *)

val decision_log : t -> string list
(** Per-shard decision logs, each line prefixed ["s<i> "], concatenated
    in shard order — the sharded determinism oracle. *)

val accounting_ok : t -> bool
(** {!Server.accounting_ok} on every shard. *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Shard = Tpm_scheduler.Shard

(* Shard-routing front door (DESIGN.md §13).

   One [Server] per shard, each over its own scheduler; submissions are
   routed by the conflict-component of their service set, so no two
   shards ever share a dependency edge and every shard's admission
   engine — oracle and differential checker included — stays valid
   unmodified.

   Merge protocol for spanning submissions: shard ownership is assigned
   per service at first sight.  A submission whose services span several
   owners is routed to the unique owner that still has live processes
   (the dead owners' claims are transferred — their components merged);
   if two or more spanned owners are live, the submission is deflected:
   admitting it anywhere would create a cross-shard dependency edge the
   engines cannot see.  Deflection is an overload-style outcome, not an
   error — the caller retries after the contended shards drain.  The
   [tpm_core] partition invariant (no cross-component edges) therefore
   holds at every instant, which is what keeps per-shard PRED equal to
   global PRED. *)

type route =
  | Routed of int * Server.decision  (* shard index, its server's decision *)
  | Deflected  (* services span >= 2 live shards; retry after drain *)

let route_label = function
  | Routed (s, d) -> Printf.sprintf "s%d %s" s (Server.decision_label d)
  | Deflected -> "deflected"

type t = {
  map : Shard.Map.t;
  servers : Server.t array;
  owner : (int, int) Hashtbl.t;  (* service id -> shard index *)
  placed : (int, int) Hashtbl.t;  (* routed pid -> shard index *)
  mutable next : int;  (* round-robin cursor for unowned components *)
  mutable deflected : int;
}

let create ?config ?(shards = 2) ~spec ~make_scheduler () =
  if shards <= 0 then invalid_arg "Router.create: shards must be positive";
  {
    map = Shard.Map.create spec;
    servers = Array.init shards (fun _ -> Server.create ?config (make_scheduler ()));
    owner = Hashtbl.create 64;
    placed = Hashtbl.create 64;
    next = 0;
    deflected = 0;
  }

let shards t = Array.length t.servers
let server t i = t.servers.(i)

(* lazily retire terminated processes from the component map, so a dead
   cluster's services can be re-owned by a later spanning submission *)
let sweep t =
  Hashtbl.iter
    (fun pid s ->
      match Scheduler.status (Server.scheduler t.servers.(s)) pid with
      | Schedule.Committed | Schedule.Aborted ->
          Shard.Map.retire t.map pid;
          Hashtbl.remove t.placed pid
      | Schedule.Active -> ())
    (Hashtbl.copy t.placed)

let offer t ?deadline proc =
  sweep t;
  let sids = Shard.Map.service_ids t.map proc in
  (* ownership is component-wise: a claimed service owns every service in
     its conflict component, or an edge could cross shards through a
     conflicting-but-never-claimed name *)
  let owners =
    Hashtbl.fold
      (fun sid' s acc ->
        if List.exists (fun sid -> Shard.Map.same_component t.map sid sid') sids
        then s :: acc
        else acc)
      t.owner []
    |> List.sort_uniq compare
  in
  (* an owner is live iff it still holds an unterminated placement —
     [sweep] just dropped everything terminal, and a freshly routed
     process counts even before its shard's simulation has run *)
  let busy = Hashtbl.create 8 in
  Hashtbl.iter (fun _ s -> Hashtbl.replace busy s ()) t.placed;
  let live_owners = List.filter (Hashtbl.mem busy) owners in
  match live_owners with
  | _ :: _ :: _ ->
      t.deflected <- t.deflected + 1;
      Deflected
  | _ ->
      let target =
        match live_owners with
        | [ s ] -> s
        | _ -> (
            (* no live claim: reuse the first past owner, else open the
               next shard round-robin *)
            match owners with
            | s :: _ -> s
            | [] ->
                let s = t.next mod Array.length t.servers in
                t.next <- t.next + 1;
                s)
      in
      List.iter (fun sid -> Hashtbl.replace t.owner sid target) sids;
      ignore (Shard.Map.admit t.map proc);
      let d = Server.offer t.servers.(target) ?deadline proc in
      (match d with
      | Server.Admitted | Server.Degraded_admit _ | Server.Queued ->
          Hashtbl.replace t.placed (Process.pid proc) target
      | Server.Rejected _ -> Shard.Map.retire t.map (Process.pid proc));
      Routed (target, d)

(* Drive every shard's simulation.  Shards share no state (that is the
   partition invariant), so with [domains > 1] they run on separate
   OCaml domains; [domains = 1] (default) runs them in index order on
   the calling domain — bit-identical to independent sequential runs. *)
let run ?(domains = 1) ?until t =
  let k = Array.length t.servers in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < k then begin
        Server.run ?until t.servers.(i);
        loop ()
      end
    in
    loop ()
  in
  if domains <= 1 then worker ()
  else begin
    let spawned =
      List.init (min (domains - 1) (max 0 (k - 1))) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned
  end

let drain t = Array.iter Server.drain t.servers

let counters t =
  Array.fold_left
    (fun (acc : Server.counters) s ->
      let c = Server.counters s in
      {
        Server.offered = acc.Server.offered + c.Server.offered;
        admitted = acc.Server.admitted + c.Server.admitted;
        rejected = acc.Server.rejected + c.Server.rejected;
        expired = acc.Server.expired + c.Server.expired;
        degraded = acc.Server.degraded + c.Server.degraded;
      })
    { Server.offered = 0; admitted = 0; rejected = 0; expired = 0; degraded = 0 }
    t.servers

let deflected t = t.deflected

let decision_log t =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun i s -> List.map (Printf.sprintf "s%d %s" i) (Server.decision_log s))
          t.servers))

let accounting_ok t = Array.for_all Server.accounting_ok t.servers

(* The open-world front door: every submission is decided — admit, queue,
   degrade or shed — before it can touch the scheduler, and every decision
   is a deterministic function of the virtual-time event order.  The
   server owns no clock and no randomness of its own: arrivals, shed
   scans and drain all run as events on the wrapped scheduler's
   simulation, which is what makes overload runs replayable and the
   decision log bit-identical across runs of the same script. *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Des = Tpm_sim.Des
module Metrics = Tpm_sim.Metrics
module Obs = Tpm_obs.Obs
module Wal = Tpm_wal.Wal

type overload_policy =
  | Reject
  | Queue
  | Degrade

let policy_label = function
  | Reject -> "reject"
  | Queue -> "queue"
  | Degrade -> "degrade"

let policy_of_string = function
  | "reject" -> Some Reject
  | "queue" -> Some Queue
  | "degrade" -> Some Degrade
  | _ -> None

type reject_reason =
  | Window_full
  | Queue_full
  | Deadline_expired
  | Breaker_open of string
  | Saturated
  | Draining
  | Duplicate_pid
  | Unknown_subsystem of string

let reason_label = function
  | Window_full -> "window-full"
  | Queue_full -> "queue-full"
  | Deadline_expired -> "deadline-expired"
  | Breaker_open ss -> "breaker-open:" ^ ss
  | Saturated -> "saturated"
  | Draining -> "draining"
  | Duplicate_pid -> "duplicate-pid"
  | Unknown_subsystem ss -> "unknown-subsystem:" ^ ss

type decision =
  | Admitted
  | Queued
  | Degraded_admit of int
  | Rejected of reject_reason

let decision_label = function
  | Admitted -> "admit"
  | Queued -> "queue"
  | Degraded_admit n -> Printf.sprintf "degrade:%d" n
  | Rejected r -> "reject:" ^ reason_label r

type config = {
  policy : overload_policy;
  max_live : int;
  queue_capacity : int;
  default_deadline : float;
  scan_period : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  saturation_limit : int;
}

let default_config =
  {
    policy = Queue;
    max_live = 32;
    queue_capacity = 64;
    default_deadline = 10.0;
    scan_period = 0.25;
    breaker_threshold = 3;
    breaker_cooldown = 5.0;
    saturation_limit = 8;
  }

type counters = {
  offered : int;
  admitted : int;
  rejected : int;
  expired : int;
  degraded : int;
}

type bstate =
  | B_closed
  | B_open of float  (* reopens to half-open at this virtual time *)
  | B_half

type breaker = {
  mutable bstate : bstate;
  mutable fails : int;  (* consecutive Unavailable/timeout answers *)
}

type entry = {
  e_proc : Process.t;
  e_deadline : float;  (* absolute virtual time *)
  e_offered : float;
}

type t = {
  cfg : config;
  sched : Scheduler.t;
  subsystems : (string, unit) Hashtbl.t;  (* valid routing targets *)
  breakers : (string, breaker) Hashtbl.t;
  mutable q : entry list;  (* FIFO, arrival order; bounded by queue_capacity *)
  mutable qlen : int;
  seen : (int, unit) Hashtbl.t;  (* pids ever admitted or queued *)
  live_pids : (int, unit) Hashtbl.t;  (* admitted, possibly still live *)
  mutable c_offered : int;
  mutable c_admitted : int;
  mutable c_rejected : int;
  mutable c_expired : int;
  mutable c_degraded : int;
  mutable decisions_rev : string list;
  mutable admitted_rev : Process.t list;  (* what the scheduler actually runs *)
  mutable draining : bool;
  mutable ticker_on : bool;
  mutable nsteps : int;
  mutable hook : (stage:string -> step:int -> unit) option;
}

let create ?(config = default_config) sched =
  if config.max_live <= 0 then invalid_arg "Server.create: max_live must be positive";
  if config.queue_capacity < 0 then invalid_arg "Server.create: negative queue_capacity";
  let t =
    {
      cfg = config;
      sched;
      subsystems = Hashtbl.create 8;
      breakers = Hashtbl.create 8;
      q = [];
      qlen = 0;
      seen = Hashtbl.create 64;
      live_pids = Hashtbl.create 64;
      c_offered = 0;
      c_admitted = 0;
      c_rejected = 0;
      c_expired = 0;
      c_degraded = 0;
      decisions_rev = [];
      admitted_rev = [];
      draining = false;
      ticker_on = false;
      nsteps = 0;
      hook = None;
    }
  in
  List.iter (fun ss -> Hashtbl.replace t.subsystems ss ()) (Scheduler.subsystems sched);
  (* the breakers feed on the scheduler's availability signal: consecutive
     Unavailable/timeout answers open, any success closes *)
  Scheduler.set_subsystem_observer sched (fun ~subsystem ~ok ->
      let b =
        match Hashtbl.find_opt t.breakers subsystem with
        | Some b -> b
        | None ->
            let b = { bstate = B_closed; fails = 0 } in
            Hashtbl.replace t.breakers subsystem b;
            b
      in
      let obs = Scheduler.tracer sched in
      let emit state =
        if Obs.Tracer.active obs then Obs.Tracer.emit obs (Obs.Breaker { subsystem; state })
      in
      if ok then begin
        b.fails <- 0;
        match b.bstate with
        | B_closed -> ()
        | B_open _ | B_half ->
            b.bstate <- B_closed;
            Metrics.incr (Scheduler.metrics sched) "srv_breaker_closes";
            emit "closed"
      end
      else begin
        b.fails <- b.fails + 1;
        match b.bstate with
        | B_half ->
            (* the probe failed: back to open for another cooldown *)
            b.bstate <- B_open (Scheduler.now sched +. config.breaker_cooldown);
            Metrics.incr (Scheduler.metrics sched) "srv_breaker_opens";
            emit "open"
        | B_closed when b.fails >= config.breaker_threshold ->
            b.bstate <- B_open (Scheduler.now sched +. config.breaker_cooldown);
            Metrics.incr (Scheduler.metrics sched) "srv_breaker_opens";
            emit "open"
        | B_closed | B_open _ -> ()
      end);
  t

let scheduler t = t.sched
let config t = t.cfg
let draining t = t.draining
let queue_depth t = t.qlen
let steps t = t.nsteps
let set_step_hook t f = t.hook <- Some f
let decision_log t = List.rev t.decisions_rev
let admitted_procs t = List.rev t.admitted_rev

let counters t =
  {
    offered = t.c_offered;
    admitted = t.c_admitted;
    rejected = t.c_rejected;
    expired = t.c_expired;
    degraded = t.c_degraded;
  }

let accounting_ok t =
  t.c_offered = t.c_admitted + t.c_rejected + t.c_expired + t.c_degraded + t.qlen

let breaker_state t ss =
  match Hashtbl.find_opt t.breakers ss with
  | None | Some { bstate = B_closed; _ } -> "closed"
  | Some { bstate = B_open _; _ } -> "open"
  | Some { bstate = B_half; _ } -> "half-open"

let step t stage =
  t.nsteps <- t.nsteps + 1;
  match t.hook with None -> () | Some f -> f ~stage ~step:t.nsteps

let crashed t = Scheduler.is_crashed t.sched

let logd t pid label = t.decisions_rev <- Printf.sprintf "P%d %s" pid label :: t.decisions_rev

let emit t ev =
  let obs = Scheduler.tracer t.sched in
  if Obs.Tracer.active obs then Obs.Tracer.emit obs ev

(* In-flight window occupancy.  Registration of an admitted process is
   itself a simulation event, so the scheduler's own live count lags the
   decision by one event; the server counts its admissions directly and
   retires them once the scheduler reports them terminal. *)
let occupancy t =
  let dead = ref [] in
  let n =
    Hashtbl.fold
      (fun pid () n ->
        match Scheduler.status t.sched pid with
        | Schedule.Committed | Schedule.Aborted ->
            dead := pid :: !dead;
            n
        | Schedule.Active -> n + 1)
      t.live_pids 0
  in
  List.iter (Hashtbl.remove t.live_pids) !dead;
  n

(* --- admission predicates --- *)

let unknown_subsystem t proc =
  List.find_map
    (fun (a : Activity.t) ->
      if Hashtbl.mem t.subsystems a.Activity.subsystem then None
      else Some a.Activity.subsystem)
    (Process.activities proc)

(* First open breaker on the preferred execution path.  Reading the
   breaker doubles as the half-open transition: an elapsed cooldown turns
   the next interested submission into the probe. *)
let breaker_block t proc =
  List.find_map
    (fun aid ->
      let a = Process.find proc aid in
      match Hashtbl.find_opt t.breakers a.Activity.subsystem with
      | None | Some { bstate = B_closed; _ } | Some { bstate = B_half; _ } -> None
      | Some ({ bstate = B_open until; _ } as b) ->
          if Scheduler.now t.sched >= until then begin
            b.bstate <- B_half;
            emit t (Obs.Breaker { subsystem = a.Activity.subsystem; state = "half-open" });
            None
          end
          else Some a.Activity.subsystem)
    (Process.preferred_path proc)

let saturated t proc =
  List.exists
    (fun aid ->
      let a = Process.find proc aid in
      Scheduler.service_pressure t.sched a.Activity.service >= t.cfg.saturation_limit)
    (Process.preferred_path proc)

(* The degraded variant: resolve every choice point to its least-preferred
   alternative (the compensable/retriable fallback the flex structure
   guarantees), dropping the preferred subtrees.  Only a variant that
   still validates and keeps a well-formed flex structure is usable —
   anything else refuses to degrade rather than admitting a process whose
   termination is no longer guaranteed. *)
let degrade_variant proc =
  let drop_heads =
    List.concat_map
      (fun s ->
        match Process.alternatives proc s with
        | [] | [ _ ] -> []
        | alts ->
            let rec all_but_last = function
              | [] | [ _ ] -> []
              | x :: tl -> x :: all_but_last tl
            in
            all_but_last alts)
      (Process.choice_points proc)
  in
  if drop_heads = [] then None
  else begin
    let dropped = Hashtbl.create 16 in
    let rec dfs a =
      if not (Hashtbl.mem dropped a) then begin
        Hashtbl.replace dropped a ();
        List.iter dfs (Process.succs proc a)
      end
    in
    List.iter dfs drop_heads;
    let keep a = not (Hashtbl.mem dropped a) in
    let activities =
      List.filter (fun (a : Activity.t) -> keep a.Activity.id.Activity.act)
        (Process.activities proc)
    in
    let prec = List.filter (fun (x, y) -> keep x && keep y) (Process.prec_edges proc) in
    let pref =
      List.filter
        (fun ((s1, d1), (s2, d2)) -> keep s1 && keep d1 && keep s2 && keep d2)
        (Process.pref_pairs proc)
    in
    match Process.make ~pid:(Process.pid proc) ~activities ~prec ~pref with
    | Error _ -> None
    | Ok p -> (
        match Flex.well_formed p with
        | Ok () -> Some (p, Hashtbl.length dropped)
        | Error _ -> None)
  end

(* --- decision bookkeeping --- *)

let reject t pid r =
  t.c_rejected <- t.c_rejected + 1;
  Metrics.incr (Scheduler.metrics t.sched) "srv_rejected";
  emit t (Obs.Shed { pid; why = reason_label r });
  logd t pid (decision_label (Rejected r));
  Rejected r

let expire t pid =
  t.c_expired <- t.c_expired + 1;
  Metrics.incr (Scheduler.metrics t.sched) "srv_expired";
  emit t (Obs.Shed { pid; why = reason_label Deadline_expired });
  logd t pid (decision_label (Rejected Deadline_expired))

let admit t ?(pruned = 0) proc ~offered_at =
  let pid = Process.pid proc in
  Hashtbl.replace t.seen pid ();
  Hashtbl.replace t.live_pids pid ();
  t.admitted_rev <- proc :: t.admitted_rev;
  Scheduler.submit t.sched proc;
  let m = Scheduler.metrics t.sched in
  Metrics.observe m "srv_admission_wait" (Scheduler.now t.sched -. offered_at);
  if pruned > 0 then begin
    t.c_degraded <- t.c_degraded + 1;
    Metrics.incr m "srv_degraded";
    emit t (Obs.Degraded { pid; pruned });
    logd t pid (decision_label (Degraded_admit pruned));
    Degraded_admit pruned
  end
  else begin
    t.c_admitted <- t.c_admitted + 1;
    Metrics.incr m "srv_admitted";
    logd t pid (decision_label Admitted);
    Admitted
  end

(* --- the queue: shed expired entries, pump admissible heads --- *)

let scan_and_pump t =
  let now = Scheduler.now t.sched in
  (* shed every entry past its deadline, wherever it sits in the queue *)
  let kept =
    List.filter
      (fun e ->
        if crashed t then true
        else if now >= e.e_deadline then begin
          t.qlen <- t.qlen - 1;
          expire t (Process.pid e.e_proc);
          step t "shed";
          false
        end
        else true)
      t.q
  in
  t.q <- kept;
  (* admit from the head while the window has room and no breaker blocks *)
  let rec pump () =
    if (not (crashed t)) && occupancy t < t.cfg.max_live then
      match t.q with
      | [] -> ()
      | e :: tl -> (
          match breaker_block t e.e_proc with
          | Some _ -> ()  (* head-of-line waits for the breaker's cooldown *)
          | None ->
              t.q <- tl;
              t.qlen <- t.qlen - 1;
              ignore (admit t e.e_proc ~offered_at:e.e_offered);
              step t "pump";
              pump ())
  in
  pump ();
  Metrics.observe (Scheduler.metrics t.sched) "srv_queue_depth" (float_of_int t.qlen)

(* The ticker is armed only while the queue is non-empty: an idle or
   fully-drained server schedules nothing, so the simulation can reach
   quiescence. *)
let rec arm_ticker t =
  if (not t.ticker_on) && not (crashed t) then begin
    t.ticker_on <- true;
    Des.every (Scheduler.sim t.sched) ~period:t.cfg.scan_period (fun _ ->
        if crashed t || t.q = [] then begin
          t.ticker_on <- false;
          false
        end
        else begin
          scan_and_pump t;
          if t.q = [] then begin
            t.ticker_on <- false;
            false
          end
          else true
        end)
  end

and enqueue t ?deadline proc =
  let pid = Process.pid proc in
  if t.qlen >= t.cfg.queue_capacity then reject t pid Queue_full
  else begin
    let now = Scheduler.now t.sched in
    let e =
      {
        e_proc = proc;
        e_offered = now;
        e_deadline = now +. Option.value ~default:t.cfg.default_deadline deadline;
      }
    in
    t.q <- t.q @ [ e ];
    t.qlen <- t.qlen + 1;
    Hashtbl.replace t.seen pid ();
    Metrics.incr (Scheduler.metrics t.sched) "srv_queued";
    logd t pid (decision_label Queued);
    arm_ticker t;
    step t "enqueue";
    Queued
  end

(* --- the front door --- *)

let offer t ?deadline proc =
  let pid = Process.pid proc in
  t.c_offered <- t.c_offered + 1;
  Metrics.incr (Scheduler.metrics t.sched) "srv_offered";
  emit t (Obs.Arrival { pid });
  let decision =
    if t.draining || crashed t then reject t pid Draining
    else if Hashtbl.mem t.seen pid then reject t pid Duplicate_pid
    else
      match unknown_subsystem t proc with
      | Some ss -> reject t pid (Unknown_subsystem ss)
      | None -> (
          let window_ok = occupancy t < t.cfg.max_live in
          let blocked = breaker_block t proc in
          let sat = t.cfg.policy = Degrade && saturated t proc in
          if window_ok && blocked = None && not sat then
            admit t proc ~offered_at:(Scheduler.now t.sched)
          else
            match t.cfg.policy with
            | Reject -> (
                match blocked with
                | Some ss -> reject t pid (Breaker_open ss)
                | None -> reject t pid Window_full)
            | Queue -> enqueue t ?deadline proc
            | Degrade ->
                if not window_ok then
                  (* no variant shrinks the window: shed explicitly *)
                  reject t pid Window_full
                else (
                  match degrade_variant proc with
                  | Some (p, pruned) -> (
                      match breaker_block t p with
                      | Some ss -> reject t pid (Breaker_open ss)
                      | None ->
                          admit t p ~pruned ~offered_at:(Scheduler.now t.sched))
                  | None -> (
                      match blocked with
                      | Some ss -> reject t pid (Breaker_open ss)
                      | None -> reject t pid Saturated)))
  in
  step t "arrival";
  decision

let submit_at t ~at ?deadline proc =
  Des.at (Scheduler.sim t.sched) at (fun _ ->
      if not (crashed t) then ignore (offer t ?deadline proc))

let play t script = List.iter (fun (at, proc) -> submit_at t ~at proc) script

let run ?until t = Scheduler.run ?until t.sched

(* --- graceful drain --- *)

let drain t =
  if not t.draining then begin
    t.draining <- true;
    emit t (Obs.Drain { stage = "intake-stopped" });
    step t "drain-start";
    (* the queue is flushed as explicit drain-time rejects: nothing may
       enter the system once intake stopped.  A crashed server leaves its
       queue untouched — those entries are still accounted as queued in
       the crash image, never silently dropped *)
    if not (crashed t) then begin
      let q = t.q in
      t.q <- [];
      t.qlen <- 0;
      List.iter (fun e -> ignore (reject t (Process.pid e.e_proc) Draining)) q
    end;
    step t "drain-queue";
    (* settle in-flight work: every admitted process finishes or
       compensates (guaranteed termination) before the log is sealed *)
    if not (crashed t) then run t;
    emit t (Obs.Drain { stage = "in-flight-settled" });
    step t "drain-quiesce";
    if not (crashed t) then begin
      Scheduler.checkpoint t.sched;
      ignore (Wal.sync (Scheduler.wal t.sched));
      emit t (Obs.Drain { stage = "wal-sealed" })
    end;
    step t "drain-seal"
  end

(* --- Lang front-end and the wire protocol --- *)

let offer_text t text =
  match Lang.parse text with
  | Error e -> Error (Format.asprintf "%a" Lang.pp_error e)
  | Ok (doc : Lang.document) ->
      Ok
        (List.map
           (fun proc -> (Process.pid proc, offer t proc))
           doc.Lang.processes)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send line =
    output_string oc line;
    output_char oc '\n'
  in
  let buf = Buffer.create 256 in
  let answer () =
    let text = Buffer.contents buf in
    Buffer.clear buf;
    (match offer_text t text with
    | Error e -> send ("error " ^ e)
    | Ok decisions ->
        List.iter
          (fun (pid, d) -> send (Printf.sprintf "decision %d %s" pid (decision_label d)))
          decisions;
        (* bridge to virtual time: each document runs to quiescence, so
           queued entries resolve and statuses are final *)
        run t;
        List.iter
          (fun (pid, d) ->
            match d with
            | Rejected _ -> ()
            | Admitted | Queued | Degraded_admit _ ->
                let st =
                  match Scheduler.status t.sched pid with
                  | Schedule.Committed -> "committed"
                  | Schedule.Aborted -> "aborted"
                  | Schedule.Active -> "shed"  (* queued entry expired unregistered *)
                in
                send (Printf.sprintf "status %d %s" pid st))
          decisions;
        let c = counters t in
        send
          (Printf.sprintf "counters offered=%d admitted=%d rejected=%d expired=%d degraded=%d queued=%d"
             c.offered c.admitted c.rejected c.expired c.degraded t.qlen));
    send ".";
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> if Buffer.length buf > 0 then answer ()
    | "." ->
        answer ();
        loop ()
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        loop ()
  in
  loop ();
  flush oc

let rebuild like events = Schedule.make ~spec:(Schedule.spec like) ~procs:(Schedule.procs like) events

let remove_effect_free ~original s =
  let spec = Schedule.spec s in
  let committed = Schedule.committed original in
  let keep = function
    | Schedule.Act i ->
        not
          (Conflict.instance_effect_free spec i
          && not (List.mem (Activity.instance_proc i) committed))
    | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> true
  in
  rebuild s (List.filter keep (Schedule.events s))

(* Match Forward/Inverse occurrences of the same activity LIFO-wise,
   returning (position of forward, position of inverse) pairs. *)
let matched_pairs events =
  let stacks : (Activity.id, int list) Hashtbl.t = Hashtbl.create 16 in
  let pairs = ref [] in
  List.iteri
    (fun pos ev ->
      match ev with
      | Schedule.Act (Activity.Forward a) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt stacks a.Activity.id) in
          Hashtbl.replace stacks a.Activity.id (pos :: cur)
      | Schedule.Act (Activity.Inverse a) -> (
          match Hashtbl.find_opt stacks a.Activity.id with
          | Some (p :: rest) ->
              Hashtbl.replace stacks a.Activity.id rest;
              pairs := (p, pos) :: !pairs
          | Some [] | None -> ())
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ())
    events;
  !pairs

let cancel_compensation_pairs s =
  let spec = Schedule.spec s in
  (* conflict adjacency on service names, built once from the declared
     pairs: the services whose occurrences can block a cancellation *)
  let neighbors : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let add_neighbor a b =
    let cur = Option.value ~default:[] (Hashtbl.find_opt neighbors a) in
    if not (List.mem b cur) then Hashtbl.replace neighbors a (b :: cur)
  in
  List.iter
    (fun (a, b) ->
      add_neighbor a b;
      add_neighbor b a)
    (Conflict.pairs spec);
  (* Each pass decides every matched pair against the pass-start event
     sequence, then removes all removable pairs at once (the historical
     simultaneous-removal semantics).  A pair (p, q) is blocked iff some
     occurrence of a conflicting service with a different base activity
     lies strictly between them — found via the per-service position
     index (binary search to the interval) instead of scanning every
     event of the interval. *)
  let rec fixpoint events =
    let arr = Array.of_list events in
    let m = Array.length arr in
    let index : (string, (int * Activity.id) list ref) Hashtbl.t = Hashtbl.create 16 in
    for k = m - 1 downto 0 do
      match arr.(k) with
      | Schedule.Act inst ->
          let a = Activity.instance_base inst in
          let cell =
            match Hashtbl.find_opt index a.Activity.service with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add index a.Activity.service c;
                c
          in
          cell := (k, a.Activity.id) :: !cell
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ()
    done;
    let positions : (string, (int * Activity.id) array) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter (fun svc cell -> Hashtbl.replace positions svc (Array.of_list !cell)) index;
    let blocked_between p q ~service ~id =
      List.exists
        (fun svc' ->
          match Hashtbl.find_opt positions svc' with
          | None -> false
          | Some a ->
              (* first indexed position strictly after p *)
              let lo = ref 0 and hi = ref (Array.length a) in
              while !lo < !hi do
                let mid = (!lo + !hi) / 2 in
                if fst a.(mid) <= p then lo := mid + 1 else hi := mid
              done;
              let rec scan i =
                i < Array.length a
                && fst a.(i) < q
                && ((not (Activity.id_equal (snd a.(i)) id)) || scan (i + 1))
              in
              scan !lo)
        (Option.value ~default:[] (Hashtbl.find_opt neighbors service))
    in
    let remove = Array.make (max 1 m) false in
    let any = ref false in
    List.iter
      (fun (p, q) ->
        let a =
          match arr.(p) with
          | Schedule.Act i -> Activity.instance_base i
          | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> assert false
        in
        if not (blocked_between p q ~service:a.Activity.service ~id:a.Activity.id) then begin
          remove.(p) <- true;
          remove.(q) <- true;
          any := true
        end)
      (matched_pairs events);
    if not !any then events
    else begin
      let keep = ref [] in
      for k = m - 1 downto 0 do
        if not remove.(k) then keep := arr.(k) :: !keep
      done;
      fixpoint !keep
    end
  in
  rebuild s (fixpoint (Schedule.events s))

let reduce ~original s = cancel_compensation_pairs (remove_effect_free ~original s)

let reducible ~original s =
  not (Digraph.has_cycle (Schedule.conflict_graph (reduce ~original s)))

(* Explicit rewrite search over activity sequences, for cross-validation. *)
let reducible_by_search ?(max_steps = 200_000) ~original s =
  let spec = Schedule.spec s in
  let start = Schedule.activities (remove_effect_free ~original s) in
  let serial seq =
    let rec blocks last seen = function
      | [] -> true
      | i :: rest ->
          let p = Activity.instance_proc i in
          if Some p = last then blocks last seen rest
          else if List.mem p seen then false
          else blocks (Some p) (p :: seen) rest
    in
    blocks None [] seq
  in
  let seen = Hashtbl.create 1024 in
  let steps = ref 0 in
  let exception Found in
  let exception Out_of_budget in
  let rec explore seq =
    incr steps;
    if !steps > max_steps then raise Out_of_budget;
    if Hashtbl.mem seen seq then ()
    else begin
      Hashtbl.replace seen seq ();
      if serial seq then raise Found;
      (* all single-step rewrites *)
      let rec moves prefix_rev = function
        | x :: (y :: rest as tail) ->
            (match (x, y) with
            | Activity.Forward a, Activity.Inverse b when Activity.equal a b ->
                explore (List.rev_append prefix_rev rest)
            | _ -> ());
            if
              Activity.instance_proc x <> Activity.instance_proc y
              && not (Conflict.conflicts spec x y)
            then explore (List.rev_append prefix_rev (y :: x :: rest));
            moves (x :: prefix_rev) tail
        | [ _ ] | [] -> ()
      in
      moves [] seq
    end
  in
  match explore start with
  | () -> Some false
  | exception Found -> Some true
  | exception Out_of_budget -> None

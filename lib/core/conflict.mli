(** Commutativity / conflict specification (paper, Definition 6).

    Two activities commute if swapping them never changes any return value;
    they conflict otherwise.  Following the paper we assume {e perfect}
    commutativity: an activity conflicts with another iff their inverses do
    as well, in all combinations.  We therefore key conflicts on the
    {e service name} of the underlying forward activity, making the perfect
    closure hold by construction. *)

type t

val empty : t
(** No service conflicts with any other (everything commutes). *)

val add : string -> string -> t -> t
(** [add s s' spec] declares services [s] and [s'] to be in conflict.
    The relation is kept symmetric; [add s s] declares a self-conflict. *)

val of_pairs : (string * string) list -> t

val union : t -> t -> t
(** Pointwise union of two specs (conflict pairs and effect-free sets) —
    composing the specs of independent workload clusters into the one
    relation a sharded run partitions by connected component. *)

val services_conflict : t -> string -> string -> bool

val conflicts : t -> Activity.instance -> Activity.instance -> bool
(** Perfect-commutativity conflict test between two schedule occurrences.
    An activity never conflicts with its own occurrences (the pair
    [(a, a^{-1})] is handled by the compensation rule, not the conflict
    relation), but distinct activities of the {e same} process may conflict. *)

val activities_conflict : t -> Activity.t -> Activity.t -> bool
(** Conflict test on forward activities (used for process-internal
    reasoning); distinct ids with conflicting services. *)

val declare_effect_free : string -> t -> t
(** Marks a service as effect-free (Definition 1): its invocations never
    change the return values of surrounding activities.  Note that an
    effect-free service (e.g. a query) may still conflict with others,
    because commutativity (Definition 6) also protects the service's own
    return values. *)

val effect_free : t -> string -> bool
val instance_effect_free : t -> Activity.instance -> bool

val pairs : t -> (string * string) list
(** The declared conflict pairs, each returned once with sides ordered. *)

val effect_free_services : t -> string list
(** The services declared effect-free, sorted. *)

val pp : Format.formatter -> t -> unit

(** Interned, bit-compiled view of the relation: service names mapped to
    dense ints, conflict matrix materialized as one {!Bitset} row per
    service.  Compiled once per scheduler; services first seen later
    (dynamic workloads) are interned on demand, with their row computed
    against the string spec so both views always agree. *)
module Compiled : sig
  type spec := t
  type t

  val make : spec -> t
  (** Interns every service the spec mentions (conflict pairs and
      effect-free declarations), in sorted order. *)

  val intern : t -> string -> int
  (** The dense id of a service name, allocating (and filling the new
      matrix row/column) on first sight. *)

  val find_opt : t -> string -> int option
  val size : t -> int
  val name : t -> int -> string

  val conflict : t -> int -> int -> bool
  (** One bit probe; agrees with {!services_conflict} on the names. *)

  val row : t -> int -> Bitset.t
  (** The set of services conflicting with [i].  Shared, do not mutate;
      the union of rows over a service set is its "conflict closure",
      letting set-vs-set conflict tests run as one intersection. *)

  val effect_free : t -> int -> bool
end

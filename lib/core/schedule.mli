(** Process schedules (paper, Definition 7).

    A schedule records the interleaved execution of a set of processes as a
    chronological event sequence: committed activity occurrences (forward or
    compensating), process commits [C_i], process aborts [A_i] (the abort
    {e request}; its completion is made explicit by {!Completed}), and group
    aborts [A(P_1, ..., P_n)].

    The partial order [≪_S] of the paper is recovered from the sequence: it
    is the union of every process's own order and the observed order of every
    inter-process conflicting pair. *)

type event =
  | Act of Activity.instance
  | Commit of int
  | Abort of int
  | Group_abort of int list

type status =
  | Active
  | Committed
  | Aborted

type t

val make : spec:Conflict.t -> procs:Process.t list -> event list -> t
(** @raise Invalid_argument if an event refers to an unknown process or
    activity, if a process has events after its terminal event, or if two
    processes share an id. *)

val spec : t -> Conflict.t
val procs : t -> Process.t list
val proc_ids : t -> int list
val find_proc : t -> int -> Process.t
val events : t -> event list
val length : t -> int

val append : t -> event -> t
(** O(1) amortized: only the appended event is validated (the prefix is
    already a valid schedule).  Raises as {!make} does. *)

val add_proc : t -> Process.t -> t
(** Extends the process set without revalidating events.
    @raise Invalid_argument on a duplicate pid. *)

val activities : t -> Activity.instance list
(** Activity occurrences, chronological. *)

val proc_activities : t -> int -> Activity.instance list
val status_of : t -> int -> status
val active : t -> int list
val committed : t -> int list
val aborted : t -> int list

val replay : t -> int -> (Execution.t, string) result
(** Replays the events of one process through the execution engine,
    reconstructing its state (recovery state, completion, ...).  Fails if
    the event sequence is not a legal execution of the process. *)

val legal : t -> bool
(** Every per-process projection is a legal execution (Definition 7.1). *)

val conflict_pairs : t -> (Activity.instance * Activity.instance) list
(** Ordered inter-process conflicting pairs [(x, y)] with [x] before [y]. *)

val conflict_graph : t -> Digraph.t
(** Process-level serialization graph: an edge [i -> j] iff some activity
    of [P_i] precedes a conflicting activity of [P_j]. *)

val prefixes : t -> t list
(** All proper and improper prefixes, shortest first, including the empty
    and the full schedule. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

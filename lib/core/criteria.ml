(* Conflict graph over a subset of the processes.  Aborted processes left
   no effects (their do/undo pairs cancel), so they never participate;
   Theorem 1 judges serializability on the committed projection only,
   while the examples of Section 3.2 include still-active processes. *)
let projected_conflict_graph ~keep s =
  let acts =
    List.filter (fun i -> keep (Schedule.status_of s (Activity.instance_proc i))) (Schedule.activities s)
  in
  let spec = Schedule.spec s in
  let rec edges = function
    | [] -> []
    | x :: rest ->
        List.filter_map
          (fun y ->
            if
              Activity.instance_proc x <> Activity.instance_proc y
              && Conflict.conflicts spec x y
            then Some (Activity.instance_proc x, Activity.instance_proc y)
            else None)
          rest
        @ edges rest
  in
  Digraph.make
    ~nodes:(List.filter (fun p -> keep (Schedule.status_of s p)) (Schedule.proc_ids s))
    ~edges:(edges acts)

let not_aborted = function
  | Schedule.Aborted -> false
  | Schedule.Active | Schedule.Committed -> true

let only_committed = function
  | Schedule.Committed -> true
  | Schedule.Active | Schedule.Aborted -> false

(* do/undo pairs that cancel (a branch retried inside an otherwise
   successful process) are effect-free and must not create serialization
   edges: project, cancel pairs, then build the graph *)
let projected_schedule ~keep s =
  let events =
    List.filter
      (fun ev ->
        match ev with
        | Schedule.Act i -> keep (Schedule.status_of s (Activity.instance_proc i))
        | Schedule.Commit p | Schedule.Abort p -> keep (Schedule.status_of s p)
        | Schedule.Group_abort _ -> false)
      (Schedule.events s)
  in
  let sub = Schedule.make ~spec:(Schedule.spec s) ~procs:(Schedule.procs s) events in
  Reduction.cancel_compensation_pairs sub

let serializable s =
  not (Digraph.has_cycle (projected_conflict_graph ~keep:not_aborted (projected_schedule ~keep:not_aborted s)))

let committed_serializable s =
  not
    (Digraph.has_cycle
       (projected_conflict_graph ~keep:only_committed (projected_schedule ~keep:only_committed s)))

let serialization_order s =
  Digraph.topo_sort (projected_conflict_graph ~keep:not_aborted (projected_schedule ~keep:not_aborted s))
let red s = Reduction.reducible ~original:s (Completed.of_schedule s)
let pred s = List.for_all red (Schedule.prefixes s)

let first_irreducible_prefix s =
  List.find_opt (fun prefix -> not (red prefix)) (Schedule.prefixes s)

(* indexed activity occurrences *)
let indexed_activities s =
  List.mapi (fun i ev -> (i, ev)) (Schedule.events s)
  |> List.filter_map (fun (i, ev) ->
         match ev with
         | Schedule.Act inst -> Some (i, inst)
         | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> None)

let next_non_compensatable s pid ~after =
  indexed_activities s
  |> List.find_opt (fun (i, inst) ->
         i > after
         && Activity.instance_proc inst = pid
         && (not (Activity.is_inverse inst))
         && Activity.non_compensatable (Activity.instance_base inst))

let ordered_conflict_pairs s =
  let acts = indexed_activities s in
  let spec = Schedule.spec s in
  List.concat_map
    (fun (p, x) ->
      List.filter_map
        (fun (q, y) ->
          if
            q > p
            && Activity.instance_proc x <> Activity.instance_proc y
            && Conflict.conflicts spec x y
          then Some ((p, x), (q, y))
          else None)
        acts)
    acts

let process_recoverable s =
  (* commit positions indexed once: the per-pair lookups below would
     otherwise rescan the event list quadratically *)
  let commit_tbl = Hashtbl.create 16 in
  List.iteri
    (fun i ev ->
      match ev with
      | Schedule.Commit j -> Hashtbl.replace commit_tbl j i
      | Schedule.Act _ | Schedule.Abort _ | Schedule.Group_abort _ -> ())
    (Schedule.events s);
  let commit_pos pid = Hashtbl.find_opt commit_tbl pid in
  ordered_conflict_pairs s
  |> List.for_all (fun ((p, x), (q, y)) ->
         let pi = Activity.instance_proc x and pj = Activity.instance_proc y in
         if Schedule.status_of s pi = Schedule.Aborted || Schedule.status_of s pj = Schedule.Aborted
         then true
         else
         let commits_ok =
           match commit_pos pj with
           | None -> true
           | Some cj -> ( match commit_pos pi with None -> false | Some ci -> ci < cj)
         in
         let pivots_ok =
           (* vacuous when either next non-compensatable activity does not
              exist, exactly as in the four cases of Theorem 1's proof *)
           match next_non_compensatable s pj ~after:q with
           | None -> true
           | Some (jm, _) -> (
               match next_non_compensatable s pi ~after:p with
               | Some (im, _) -> im < jm
               | None -> true)
         in
         commits_ok && pivots_ok)

let lemma1_holds s =
  ordered_conflict_pairs s
  |> List.for_all (fun ((_, x), (q, y)) ->
         let pi = Activity.instance_proc x and pj = Activity.instance_proc y in
         if Schedule.status_of s pi <> Schedule.Active then true
         else
           Activity.compensatable (Activity.instance_base y)
           && next_non_compensatable s pj ~after:q = None)

let lemma2_holds s =
  let acts = indexed_activities s in
  let spec = Schedule.spec s in
  let forward_pos inst =
    acts
    |> List.find_map (fun (i, x) ->
           match x with
           | Activity.Forward a
             when Activity.id_equal a.Activity.id (Activity.instance_id inst) ->
               Some i
           | Activity.Forward _ | Activity.Inverse _ -> None)
  in
  let inverses =
    List.filter (fun (_, inst) -> Activity.is_inverse inst) acts
  in
  List.for_all
    (fun (p, x) ->
      List.for_all
        (fun (q, y) ->
          if
            p < q
            && Activity.instance_proc x <> Activity.instance_proc y
            && Conflict.conflicts spec x y
          then
            match (forward_pos x, forward_pos y) with
            | Some fx, Some fy ->
                (* only overlapping do/undo spans are constrained: a pair
                   completed before the other's original executed cancels
                   independently *)
                let overlap = fx < q && fy < p in
                (not overlap) || fx > fy
            | None, _ | _, None -> true
          else true)
        inverses)
    inverses

let lemma3_holds s =
  (* restrict to the completion zone: events after the group abort *)
  let events = Schedule.events s in
  let rec split = function
    | [] -> []
    | Schedule.Group_abort _ :: rest -> rest
    | _ :: rest -> split rest
  in
  let zone = split events in
  match zone with
  | [] -> true
  | _ ->
      let spec = Schedule.spec s in
      let acts =
        List.mapi (fun i ev -> (i, ev)) zone
        |> List.filter_map (fun (i, ev) ->
               match ev with Schedule.Act inst -> Some (i, inst) | _ -> None)
      in
      List.for_all
        (fun (p, x) ->
          List.for_all
            (fun (q, y) ->
              if
                Activity.is_inverse x
                && (not (Activity.is_inverse y))
                && Activity.non_compensatable (Activity.instance_base y)
                && Activity.instance_proc x <> Activity.instance_proc y
                && Conflict.conflicts spec x y
              then p < q
              else true)
            acts)
        acts

let sot s =
  let terminal_tbl = Hashtbl.create 16 in
  List.iteri
    (fun i ev ->
      match ev with
      | Schedule.Commit j | Schedule.Abort j ->
          if not (Hashtbl.mem terminal_tbl j) then Hashtbl.replace terminal_tbl j i
      | Schedule.Act _ | Schedule.Group_abort _ -> ())
    (Schedule.events s);
  let terminal_pos pid = Hashtbl.find_opt terminal_tbl pid in
  committed_serializable s
  && ordered_conflict_pairs s
     |> List.for_all (fun ((_, x), (_, y)) ->
            let pi = Activity.instance_proc x and pj = Activity.instance_proc y in
            match (terminal_pos pi, terminal_pos pj) with
            | Some ti, Some tj -> ti < tj
            | None, _ | _, None -> true)

let joint_compensation_respected s sphere =
  match sphere with
  | [] -> true
  | first :: _ ->
      let pid =
        (* sphere members are ids within one process; find it *)
        List.find_map
          (fun p -> if Process.mem p first then Some (Process.pid p) else None)
          (Schedule.procs s)
      in
      (match pid with
      | None -> invalid_arg "Criteria.joint_compensation_respected: unknown sphere member"
      | Some pid ->
          let occurrences kind =
            Schedule.activities s
            |> List.filter (fun i ->
                   Activity.instance_proc i = pid
                   && List.mem (Activity.instance_id i).Activity.act sphere
                   && Activity.is_inverse i = kind)
            |> List.map (fun i -> (Activity.instance_id i).Activity.act)
            |> List.sort_uniq compare
          in
          let executed = occurrences false and compensated = occurrences true in
          compensated = [] || executed = compensated)

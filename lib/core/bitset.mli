(** Growable bit sets over small dense integer ids (interned service
    names, process ids).  All operations treat bits beyond a set's
    current capacity as 0, so sets of different capacities mix freely;
    mutating operations grow the backing [Bytes] by doubling. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty set; [capacity] is in bits (default 64). *)

val capacity : t -> int
val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit
val is_empty : t -> bool

val assign : into:t -> t -> unit
(** [assign ~into:dst src] makes [dst] equal to [src] (reusing [dst]'s
    storage when large enough). *)

val union : into:t -> t -> unit
(** [union ~into:dst src] adds every element of [src] to [dst]. *)

val inter_nonempty : t -> t -> bool
(** Do the two sets share an element?  The hot-loop primitive: one word
    test per 8 ids, no allocation. *)

val elements : t -> int list
(** Sorted elements (diagnostics and tests). *)

module String_pair = struct
  type t = string * string

  let compare = Stdlib.compare
end

module Pair_set = Set.Make (String_pair)
module String_set = Set.Make (String)

type t = {
  conflicting : Pair_set.t;
  effect_free_services : String_set.t;
}

let norm s s' = if String.compare s s' <= 0 then (s, s') else (s', s)

let empty = { conflicting = Pair_set.empty; effect_free_services = String_set.empty }

let add s s' spec = { spec with conflicting = Pair_set.add (norm s s') spec.conflicting }
let of_pairs l = List.fold_left (fun spec (s, s') -> add s s' spec) empty l
let services_conflict spec s s' = Pair_set.mem (norm s s') spec.conflicting

let activities_conflict spec (a : Activity.t) (b : Activity.t) =
  (not (Activity.equal a b)) && services_conflict spec a.service b.service

let conflicts spec x y =
  let a = Activity.instance_base x and b = Activity.instance_base y in
  activities_conflict spec a b

let declare_effect_free s spec =
  { spec with effect_free_services = String_set.add s spec.effect_free_services }

let effect_free spec s = String_set.mem s spec.effect_free_services

let instance_effect_free spec i =
  effect_free spec (Activity.instance_base i).Activity.service

let pairs spec = Pair_set.elements spec.conflicting
let effect_free_services spec = String_set.elements spec.effect_free_services

let union a b =
  {
    conflicting = Pair_set.union a.conflicting b.conflicting;
    effect_free_services = String_set.union a.effect_free_services b.effect_free_services;
  }

(* Interned, bit-compiled view of the relation: service names are mapped
   to dense ints and the symmetric conflict matrix is materialized as one
   bitset row per service.  [services_conflict] then costs one bit probe
   instead of a set lookup on a normalized string pair, and set-vs-set
   conflict tests become word-wise intersections.  New services may be
   interned after [make]; their row is computed once against the string
   spec, so the compiled view always agrees with it. *)
module Compiled = struct
  type spec = t

  type t = {
    spec : spec;
    ids : (string, int) Hashtbl.t;
    mutable names : string array;  (* id -> name; capacity >= n *)
    mutable rows : Bitset.t array;
    mutable n : int;
    effect_free : Bitset.t;
  }

  let size c = c.n
  let name c i = c.names.(i)
  let find_opt c s = Hashtbl.find_opt c.ids s
  let row c i = c.rows.(i)
  let conflict c i j = Bitset.mem c.rows.(i) j
  let effect_free c i = Bitset.mem c.effect_free i

  let grow c =
    let cap = Array.length c.names in
    if c.n >= cap then begin
      let cap' = max 8 (2 * cap) in
      let names' = Array.make cap' "" in
      let rows' = Array.make cap' (Bitset.create ~capacity:0 ()) in
      Array.blit c.names 0 names' 0 cap;
      Array.blit c.rows 0 rows' 0 cap;
      c.names <- names';
      c.rows <- rows'
    end

  let intern c s =
    match Hashtbl.find_opt c.ids s with
    | Some i -> i
    | None ->
        let i = c.n in
        grow c;
        c.names.(i) <- s;
        c.rows.(i) <- Bitset.create ~capacity:(i + 1) ();
        Hashtbl.add c.ids s i;
        c.n <- i + 1;
        for k = 0 to i do
          if services_conflict c.spec s c.names.(k) then begin
            Bitset.set c.rows.(i) k;
            Bitset.set c.rows.(k) i
          end
        done;
        if String_set.mem s c.spec.effect_free_services then Bitset.set c.effect_free i;
        i

  let make spec =
    let c =
      {
        spec;
        ids = Hashtbl.create 32;
        names = Array.make 8 "";
        rows = Array.make 8 (Bitset.create ~capacity:0 ());
        n = 0;
        effect_free = Bitset.create ();
      }
    in
    (* dense ids for every service the spec mentions, in sorted order *)
    List.iter
      (fun (s, s') ->
        ignore (intern c s);
        ignore (intern c s'))
      (pairs spec);
    List.iter (fun s -> ignore (intern c s)) (effect_free_services spec);
    c
end

let pp fmt spec =
  let pp_pair fmt (s, s') = Format.fprintf fmt "(%s, %s)" s s' in
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ") pp_pair)
    (pairs spec)

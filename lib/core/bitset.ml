type t = { mutable bits : Bytes.t }

let create ?(capacity = 64) () =
  let nbytes = max 1 ((capacity + 7) / 8) in
  { bits = Bytes.make nbytes '\000' }

let capacity b = Bytes.length b.bits * 8

(* grow (doubling) so that bit [i] is addressable; new bytes are zero *)
let ensure b i =
  let need = (i / 8) + 1 in
  let len = Bytes.length b.bits in
  if need > len then begin
    let len' = max need (2 * len) in
    let bits' = Bytes.make len' '\000' in
    Bytes.blit b.bits 0 bits' 0 len;
    b.bits <- bits'
  end

let set b i =
  ensure b i;
  let byte = i / 8 and bit = i land 7 in
  Bytes.unsafe_set b.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get b.bits byte) lor (1 lsl bit)))

let unset b i =
  if i / 8 < Bytes.length b.bits then begin
    let byte = i / 8 and bit = i land 7 in
    Bytes.unsafe_set b.bits byte
      (Char.chr (Char.code (Bytes.unsafe_get b.bits byte) land lnot (1 lsl bit)))
  end

(* out-of-range bits read as 0, so sets of different capacities compare
   as if padded with zeros *)
let mem b i =
  let byte = i / 8 in
  byte < Bytes.length b.bits
  && Char.code (Bytes.unsafe_get b.bits byte) land (1 lsl (i land 7)) <> 0

let clear b = Bytes.fill b.bits 0 (Bytes.length b.bits) '\000'

let is_empty b =
  let n = Bytes.length b.bits in
  let rec go i = i >= n || (Bytes.unsafe_get b.bits i = '\000' && go (i + 1)) in
  go 0

(* dst := src (dst grows if needed; surplus dst bytes are zeroed) *)
let assign ~into:dst src =
  let n = Bytes.length src.bits in
  if Bytes.length dst.bits < n then dst.bits <- Bytes.make n '\000';
  Bytes.blit src.bits 0 dst.bits 0 n;
  if Bytes.length dst.bits > n then
    Bytes.fill dst.bits n (Bytes.length dst.bits - n) '\000'

(* dst := dst ∪ src *)
let union ~into:dst src =
  let n = Bytes.length src.bits in
  if n > 0 then ensure dst ((n * 8) - 1);
  for i = 0 to n - 1 do
    Bytes.unsafe_set dst.bits i
      (Char.chr
         (Char.code (Bytes.unsafe_get dst.bits i)
         lor Char.code (Bytes.unsafe_get src.bits i)))
  done

let inter_nonempty a b =
  let n = min (Bytes.length a.bits) (Bytes.length b.bits) in
  let rec go i =
    i < n
    && (Char.code (Bytes.unsafe_get a.bits i) land Char.code (Bytes.unsafe_get b.bits i)
        <> 0
       || go (i + 1))
  in
  go 0

let elements b =
  let acc = ref [] in
  for i = (Bytes.length b.bits * 8) - 1 downto 0 do
    if mem b i then acc := i :: !acc
  done;
  !acc

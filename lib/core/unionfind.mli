(** Growable disjoint-set forest (union by rank, path halving).

    Elements are dense non-negative ints and spring into existence as
    singletons on first touch — the structure grows transparently, so
    callers interning new services never pre-size it.  Union-only: the
    shard map layered on top handles retirement by periodic rebuild. *)

type t

val create : ?capacity:int -> unit -> t
val ensure : t -> int -> unit
(** Grow to cover element [i]. Implicit in {!find}/{!union}/{!same}. *)

val find : t -> int -> int
(** Canonical representative of [i]'s set; effectively O(α). *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

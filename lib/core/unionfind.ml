(* Growable disjoint-set forest with union by rank and path halving.
   Elements are dense non-negative ints; an element is implicitly a
   singleton until the first union touching it.  The shard map unions
   conflict-matrix rows and per-process service bundles with it, so both
   operations must stay effectively O(α). *)

type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable cap : int;  (* parent.(i) meaningful for i < cap *)
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  { parent = Array.init capacity Fun.id; rank = Array.make capacity 0; cap = capacity }

let ensure t i =
  if i < 0 then invalid_arg "Unionfind.ensure: negative element";
  if i >= t.cap then begin
    let cap' = max (i + 1) (2 * t.cap) in
    let parent' = Array.init cap' Fun.id in
    let rank' = Array.make cap' 0 in
    Array.blit t.parent 0 parent' 0 t.cap;
    Array.blit t.rank 0 rank' 0 t.cap;
    t.parent <- parent';
    t.rank <- rank';
    t.cap <- cap'
  end

let rec find t i =
  ensure t i;
  let p = t.parent.(i) in
  if p = i then i
  else begin
    (* path halving: point at the grandparent on the way up *)
    let g = t.parent.(p) in
    t.parent.(i) <- g;
    if g = p then p else find t g
  end

let union t i j =
  let ri = find t i and rj = find t j in
  if ri <> rj then
    if t.rank.(ri) < t.rank.(rj) then t.parent.(ri) <- rj
    else if t.rank.(ri) > t.rank.(rj) then t.parent.(rj) <- ri
    else begin
      t.parent.(rj) <- ri;
      t.rank.(ri) <- t.rank.(ri) + 1
    end

let same t i j = find t i = find t j

module Int_map = Map.Make (Int)

type event =
  | Act of Activity.instance
  | Commit of int
  | Abort of int
  | Group_abort of int list

type status =
  | Active
  | Committed
  | Aborted

(* Events are held newest-first so [append] is O(1) amortized: only the
   new event is validated, and the terminal map gives [status_of] an
   indexed lookup.  The chronological views ([events], [activities],
   [proc_activities]) are memoized lazily per value — a schedule is
   immutable, so each is computed at most once. *)
type t = {
  spec : Conflict.t;
  proc_map : Process.t Int_map.t;
  rev_events : event list;  (* newest first *)
  n_events : int;
  terminals : status Int_map.t;  (* Commit/Abort seen, per process *)
  events_memo : event list Lazy.t;  (* chronological *)
  acts_memo : Activity.instance list Lazy.t;
  proc_acts_memo : Activity.instance list Int_map.t Lazy.t;
}

let event_procs = function
  | Act i -> [ Activity.instance_proc i ]
  | Commit i | Abort i -> [ i ]
  | Group_abort is -> is

let build spec proc_map rev_events n_events terminals =
  let events_memo = lazy (List.rev rev_events) in
  let acts_memo =
    lazy
      (List.filter_map
         (function Act i -> Some i | Commit _ | Abort _ | Group_abort _ -> None)
         (Lazy.force events_memo))
  in
  let proc_acts_memo =
    lazy
      (List.fold_left
         (fun m i ->
           let pid = Activity.instance_proc i in
           Int_map.update pid
             (fun l -> Some (i :: Option.value ~default:[] l))
             m)
         Int_map.empty (Lazy.force acts_memo)
      |> Int_map.map List.rev)
  in
  { spec; proc_map; rev_events; n_events; terminals; events_memo; acts_memo; proc_acts_memo }

let validate s ev =
  List.iter
    (fun pid ->
      match Int_map.find_opt pid s.proc_map with
      | None -> invalid_arg (Printf.sprintf "Schedule.make: unknown process %d" pid)
      | Some p -> (
          if Int_map.mem pid s.terminals then
            invalid_arg
              (Printf.sprintf "Schedule.make: event after terminal event of P_%d" pid);
          match ev with
          | Act inst ->
              let n = (Activity.instance_id inst).act in
              if not (Process.mem p n) then
                invalid_arg
                  (Printf.sprintf "Schedule.make: unknown activity %d of P_%d" n pid)
          | Commit _ | Abort _ | Group_abort _ -> ()))
    (event_procs ev)

(* terminal statuses recorded by the event (validation already ran) *)
let extend_terminals terminals ev =
  match ev with
  | Commit i -> Int_map.add i Committed terminals
  | Abort i -> Int_map.add i Aborted terminals
  | Act _ | Group_abort _ -> terminals

let unsafe_append s ev =
  build s.spec s.proc_map (ev :: s.rev_events) (s.n_events + 1)
    (extend_terminals s.terminals ev)

let append s ev =
  validate s ev;
  unsafe_append s ev

let empty ~spec ~procs =
  let proc_map =
    List.fold_left
      (fun m p ->
        let pid = Process.pid p in
        if Int_map.mem pid m then
          invalid_arg (Printf.sprintf "Schedule.make: duplicate process id %d" pid)
        else Int_map.add pid p m)
      Int_map.empty procs
  in
  build spec proc_map [] 0 Int_map.empty

let make ~spec ~procs events = List.fold_left append (empty ~spec ~procs) events

let add_proc s p =
  let pid = Process.pid p in
  if Int_map.mem pid s.proc_map then
    invalid_arg (Printf.sprintf "Schedule.add_proc: duplicate process id %d" pid)
  else { s with proc_map = Int_map.add pid p s.proc_map }

let spec s = s.spec
let procs s = List.map snd (Int_map.bindings s.proc_map)
let proc_ids s = List.map fst (Int_map.bindings s.proc_map)
let find_proc s i = Int_map.find i s.proc_map
let events s = Lazy.force s.events_memo
let length s = s.n_events
let activities s = Lazy.force s.acts_memo

let proc_activities s pid =
  Option.value ~default:[] (Int_map.find_opt pid (Lazy.force s.proc_acts_memo))

let status_of s pid = Option.value ~default:Active (Int_map.find_opt pid s.terminals)

let with_status s st = List.filter (fun pid -> status_of s pid = st) (proc_ids s)
let active s = with_status s Active
let committed s = with_status s Committed
let aborted s = with_status s Aborted

let replay s pid =
  match Int_map.find_opt pid s.proc_map with
  | None -> Error (Printf.sprintf "unknown process %d" pid)
  | Some p ->
      let step acc ev =
        Result.bind acc (fun state ->
            match ev with
            | Act inst when Activity.instance_proc inst = pid ->
                Result.map_error
                  (fun e -> Printf.sprintf "P_%d: %s" pid e)
                  (Execution.replay_instance state inst)
            | Commit i when i = pid ->
                if Execution.can_commit state then Ok (Execution.commit state)
                else Error (Printf.sprintf "P_%d: commit while plan incomplete" pid)
            | Act _ | Commit _ | Abort _ | Group_abort _ -> Ok state)
      in
      List.fold_left step (Ok (Execution.start p)) (events s)

let legal s = List.for_all (fun pid -> Result.is_ok (replay s pid)) (proc_ids s)

let conflict_pairs s =
  let acts = activities s in
  let rec walk = function
    | [] -> []
    | x :: rest ->
        List.filter_map
          (fun y ->
            if
              Activity.instance_proc x <> Activity.instance_proc y
              && Conflict.conflicts s.spec x y
            then Some (x, y)
            else None)
          rest
        @ walk rest
  in
  walk acts

let conflict_graph s =
  let edges =
    List.map
      (fun (x, y) -> (Activity.instance_proc x, Activity.instance_proc y))
      (conflict_pairs s)
  in
  Digraph.make ~nodes:(proc_ids s) ~edges

let prefixes s =
  (* events are already valid: rebuild incrementally, sharing nothing but
     the (persistent) proc map *)
  let base = build s.spec s.proc_map [] 0 Int_map.empty in
  let rec take acc cur = function
    | [] -> List.rev acc
    | ev :: rest ->
        let cur = unsafe_append cur ev in
        take (cur :: acc) cur rest
  in
  take [ base ] base (events s)

let pp_event fmt = function
  | Act i -> Activity.pp_instance fmt i
  | Commit i -> Format.fprintf fmt "C_%d" i
  | Abort i -> Format.fprintf fmt "A_%d" i
  | Group_abort is ->
      Format.fprintf fmt "A(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") (fun fmt i ->
             Format.fprintf fmt "P_%d" i))
        is

let pp fmt s =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_event)
    (events s)

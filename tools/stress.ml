(* Randomized stress of the scheduler: many seeds, modes, failure rates,
   outage plans and message-fault plans; checks termination, legality and
   PRED of every emitted history.  Under pure message faults (loss,
   duplication, reordering — no invocation failures) the final subsystem
   stores must additionally be identical to a fault-free run of the same
   seed: the 2PC retransmission and termination protocol may delay
   commits but never change outcomes.  With --amnesia each run is crashed
   mid-log and recovered with the coordinator records declared lost
   (cooperative termination).  Every failing combination prints a
   one-line repro including the fault plan.

   dune exec tools/stress.exe -- \
     --seeds 41-120 --modes deferred,quasi --fail-rates 0.1 --outages 0.2 \
     --msg-faults 0.05 *)
open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Shard = Tpm_scheduler.Shard
module Server = Tpm_server.Server
module Generator = Tpm_workload.Generator
module Faults = Tpm_sim.Faults
module Prng = Tpm_sim.Prng
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Obs = Tpm_obs.Obs
module Wal = Tpm_wal.Wal

let mode_of_name = function
  | "conservative" -> Scheduler.Conservative
  | "deferred" -> Scheduler.Deferred
  | "quasi" -> Scheduler.Quasi
  | s -> raise (Arg.Bad (Printf.sprintf "unknown mode %S" s))

let split_commas s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let parse_floats s =
  List.map
    (fun x ->
      match float_of_string_opt x with
      | Some f -> f
      | None -> raise (Arg.Bad (Printf.sprintf "bad number %S" x)))
    (split_commas s)

(* "41-120" (inclusive range) or "3,7,11" *)
let parse_seeds s =
  let bad () = raise (Arg.Bad (Printf.sprintf "bad seed spec %S" s)) in
  let int x = match int_of_string_opt x with Some n -> n | None -> bad () in
  match String.index_opt s '-' with
  | Some i ->
      let lo = int (String.sub s 0 i) in
      let hi = int (String.sub s (i + 1) (String.length s - i - 1)) in
      if hi < lo then bad ();
      List.init (hi - lo + 1) (fun k -> lo + k)
  | None -> List.map int (split_commas s)

let serve_mode = ref false
let offered_loads = ref [ 2.0; 8.0 ]
let overload_policies = ref [ "reject"; "queue"; "degrade" ]
let seeds = ref (parse_seeds "41-120")
let modes = ref [ "conservative"; "deferred"; "quasi" ]
let fail_rates = ref [ 0.0; 0.1; 0.3 ]
let outages = ref [ 0.0 ]
let msg_rates = ref [ 0.0 ]
let amnesia = ref false
let check_admission = ref false
let n_procs = ref 8
let horizon = ref 50.0
let trace_ring = ref false
let inject_failure = ref false
let shards_opt = ref 0
let domains_opt = ref 1
let churn_mode = ref false

(* [None] = in-memory log only (the historical default); [Some policy]
   mirrors every run's WAL to a scratch directory under that sync policy
   and cross-checks the on-disk image against memory after the run *)
let sync_policy : (string * Wal.sync_policy) option ref = ref None

let parse_sync_policy s =
  let policy =
    match s with
    | "none" -> Wal.No_sync
    | "each" -> Wal.Sync_each
    | _ when String.length s > 6 && String.sub s 0 6 = "group:" -> (
        match float_of_string_opt (String.sub s 6 (String.length s - 6)) with
        | Some w when w >= 0.0 -> Wal.Group w
        | _ -> raise (Arg.Bad (Printf.sprintf "bad group window in %S" s)))
    | _ -> raise (Arg.Bad (Printf.sprintf "unknown sync policy %S (none|each|group:W)" s))
  in
  sync_policy := Some (s, policy)

let parse_probs name s =
  let l = parse_floats s in
  List.iter
    (fun p ->
      if p < 0.0 || p >= 1.0 then
        raise (Arg.Bad (Printf.sprintf "%s: probability %g out of [0,1)" name p)))
    l;
  l

let speclist =
  [
    ( "--seeds",
      Arg.String (fun s -> seeds := parse_seeds s),
      "RANGE workload seeds, \"41-120\" or \"3,7,11\" (default 41-120)" );
    ( "--modes",
      Arg.String
        (fun s ->
          let l = split_commas s in
          List.iter (fun m -> ignore (mode_of_name m)) l;
          modes := l),
      "LIST scheduler modes among conservative,deferred,quasi (default all)" );
    ( "--fail-rates",
      Arg.String (fun s -> fail_rates := parse_floats s),
      "LIST per-invocation failure probabilities (default 0.0,0.1,0.3)" );
    ( "--outages",
      Arg.String (fun s -> outages := parse_probs "--outages" s),
      "LIST outage duty cycles in [0,1); 0 disables the plan (default 0.0)" );
    ( "--msg-faults",
      Arg.String (fun s -> msg_rates := parse_probs "--msg-faults" s),
      "LIST message loss/duplication rates in [0,1) applied to every 2PC \
       link over the horizon, with delay-induced reordering; 0 disables \
       (default 0.0)" );
    ( "--amnesia",
      Arg.Set amnesia,
      " crash each run mid-log and recover with the coordinator records \
       declared lost (cooperative termination)" );
    ( "--check-admission",
      Arg.Set check_admission,
      " differential admission testing: run the incremental engine and the \
       string-based reference oracle side by side on every admission and \
       fail on any divergence in decisions, dependency edges, or \
       would-cycle verdicts" );
    ("--procs", Arg.Set_int n_procs, "N processes per run (default 8)");
    ( "--horizon",
      Arg.Set_float horizon,
      "T virtual-time span the random fault plans cover (default 50)" );
    ( "--trace-ring",
      Arg.Set trace_ring,
      " run every scheduler with a ring-buffer tracer; any invariant \
       failure then dumps the last trace events and the metrics snapshot \
       (failure forensics)" );
    ( "--inject-failure",
      Arg.Set inject_failure,
      " artificially fail the first run's invariant check (CI self-test: \
       asserts the forensics dump machinery fires)" );
    ( "--sync-policy",
      Arg.String parse_sync_policy,
      "P mirror every run's WAL to disk under sync policy none|each|group:W \
       (e.g. group:0.2) and cross-check the on-disk image against memory \
       after each run (default: in-memory log only)" );
    ( "--serve",
      Arg.Set serve_mode,
      " server-mode stress: drive the open-world server with open-loop \
       arrival scripts instead of closed batches; checks the shed-accounting \
       invariant, drain, and that the final stores equal a closed-batch run \
       of exactly the admitted subset" );
    ( "--offered-load",
      Arg.String
        (fun s ->
          let l = parse_floats s in
          List.iter
            (fun r -> if r <= 0.0 then raise (Arg.Bad "offered load must be positive"))
            l;
          offered_loads := l),
      "LIST offered loads (arrivals per unit virtual time) for --serve \
       (default 2.0,8.0)" );
    ( "--shards",
      Arg.Set_int shards_opt,
      "N sharded stress: partition clustered workloads by conflict \
       component via Shard.run_parallel into at most N shards, check \
       per-shard invariants (termination, legality, PRED, admission \
       oracle under --check-admission) and that the union of the shard \
       histories equals a single-engine run of the same workload \
       (default 0 = off)" );
    ( "--domains",
      Arg.Set_int domains_opt,
      "D OCaml domains driving the shards in --shards mode (default 1)" );
    ( "--churn",
      Arg.Set churn_mode,
      " mixed-churn stress: staggered submissions interleaved with random \
       abort requests, the run advanced in time slices with the \
       incremental latent base cross-checked against the from-scratch \
       algorithm at every slice (dirty-set invalidation exercise)" );
    ( "--overload-policy",
      Arg.String
        (fun s ->
          let l = split_commas s in
          List.iter
            (fun p ->
              if Server.policy_of_string p = None then
                raise (Arg.Bad (Printf.sprintf "unknown overload policy %S" p)))
            l;
          overload_policies := l),
      "LIST overload policies among reject,queue,degrade for --serve \
       (default all)" );
  ]

(* --- server-mode stress ---

   Open-loop arrivals against the bounded-admission server.  Fault-free on
   purpose: the oracle is that serving is {e transparent} — the subsystem
   stores after a served run must equal a closed-batch run of exactly the
   processes the server admitted (degraded variants included).  Overload
   may shed work; it must never corrupt what was admitted. *)
let serve_stress () =
  let failures = ref 0 in
  let runs = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun policy_name ->
          let policy = Option.get (Server.policy_of_string policy_name) in
          List.iter
            (fun rate ->
              incr runs;
              let params =
                { Generator.default_params with services = 8; conflict_density = 0.4 }
              in
              let spec = Generator.spec params in
              let config = { Scheduler.default_config with seed } in
              let mk_tracer () =
                if !trace_ring then Obs.Tracer.create ~ring_capacity:256 ()
                else Obs.Tracer.disabled
              in
              let rms = Generator.rms params ~seed () in
              let sched =
                Scheduler.create ~config ~tracer:(mk_tracer ()) ~spec ~rms ()
              in
              let srv =
                Server.create
                  ~config:
                    {
                      Server.default_config with
                      policy;
                      max_live = 4;
                      queue_capacity = 8;
                      default_deadline = 4.0;
                    }
                  sched
              in
              let horizon = 20.0 in
              let script =
                Generator.arrivals params ~seed:(seed * 100) ~rate ~horizon
              in
              let repro () =
                Printf.sprintf "seed=%d serve policy=%s load=%.1f" seed policy_name
                  rate
              in
              let dump_forensics () =
                if !trace_ring then Scheduler.forensics Format.std_formatter sched
              in
              (try
                 Server.play srv script;
                 Server.run srv;
                 Server.drain srv
               with e ->
                 incr failures;
                 Format.printf "%s EXCEPTION %s@." (repro ()) (Printexc.to_string e);
                 dump_forensics ());
              let c = Server.counters srv in
              let h = Scheduler.history sched in
              let ok_finished = Scheduler.finished sched in
              let ok_legal = Schedule.legal h in
              let ok_pred = Criteria.pred h in
              let ok_account = Server.accounting_ok srv in
              let ok_offered = c.Server.offered = List.length script in
              let ok_tokens = List.for_all (fun rm -> Rm.prepared_tokens rm = []) rms in
              if
                not
                  (ok_finished && ok_legal && ok_pred && ok_account && ok_offered
                 && ok_tokens)
              then begin
                incr failures;
                Format.printf
                  "%s finished=%b legal=%b pred=%b accounting=%b offered=%b tokens=%b@."
                  (repro ()) ok_finished ok_legal ok_pred ok_account ok_offered
                  ok_tokens;
                dump_forensics ()
              end;
              (* the transparency oracle: closed-batch twin of the admitted
                 subset (fault-free, so every admitted process commits in
                 both worlds and the stores must agree exactly) *)
              let admitted = Server.admitted_procs srv in
              let rms0 = Generator.rms params ~seed () in
              let t0 = Scheduler.create ~config ~spec ~rms:rms0 () in
              List.iteri
                (fun i p -> Scheduler.submit t0 ~at:(0.4 *. float_of_int i) p)
                admitted;
              (try Scheduler.run ~until:100000.0 t0
               with e ->
                 incr failures;
                 Format.printf "%s TWIN-EXCEPTION %s@." (repro ())
                   (Printexc.to_string e));
              let same =
                List.for_all2
                  (fun rm rm0 -> Store.equal_state (Rm.store rm) (Rm.store rm0))
                  rms rms0
              in
              if not same then begin
                incr failures;
                Format.printf "%s STORE-DIVERGENCE from closed-batch twin (%d admitted)@."
                  (repro ()) (List.length admitted);
                dump_forensics ()
              end)
            !offered_loads)
        !overload_policies)
    !seeds;
  Format.printf "stress --serve: %d runs, %d failures@." !runs !failures;
  exit (if !failures = 0 then 0 else 1)

(* --- sharded stress ---

   Clustered (conflict-disjoint) workloads through [Shard.run_parallel]:
   every shard must terminate with a legal, PRED history (the per-shard
   admission oracle runs too under --check-admission), and the union of
   the shard histories, filtered per pid set, must equal a single-engine
   run of the same workload — decision equivalence, not just safety. *)
let sharded_stress () =
  let failures = ref 0 in
  let runs = ref 0 in
  let event_str ev = Format.asprintf "%a" Schedule.pp_event ev in
  List.iter
    (fun seed ->
      incr runs;
      let params =
        { Generator.default_params with services = 8; conflict_density = 0.3 }
      in
      let clusters = max 2 !shards_opt in
      let spec, make_rms, procs, _ =
        Generator.clustered ~seed params ~clusters ~n:!n_procs
      in
      let items = List.mapi (fun i p -> (0.4 *. float_of_int i, p)) procs in
      let config =
        {
          Scheduler.default_config with
          seed;
          admission_engine =
            (if !check_admission then Scheduler.Checked else Scheduler.Incremental);
        }
      in
      let repro () =
        Printf.sprintf "seed=%d sharded shards=%d domains=%d procs=%d%s" seed
          !shards_opt !domains_opt !n_procs
          (if !check_admission then " check-admission" else "")
      in
      let wal_dir =
        let dir = Filename.temp_file "tpm_shardstress" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        dir
      in
      let wal_path = Filename.concat wal_dir "wal.log" in
      match
        Shard.run_parallel ~shards:!shards_opt ~domains:!domains_opt ~config ~spec
          ~make_rms ~wal_path items
      with
      | exception e ->
          incr failures;
          Format.printf "%s EXCEPTION %s@." (repro ()) (Printexc.to_string e)
      | scheds ->
          List.iteri
            (fun i t ->
              let h = Scheduler.history t in
              let ok_finished = Scheduler.finished t in
              let ok_legal = Schedule.legal h in
              let ok_pred = Criteria.pred h in
              if not (ok_finished && ok_legal && ok_pred) then begin
                incr failures;
                Format.printf "%s shard=%d finished=%b legal=%b pred=%b@."
                  (repro ()) i ok_finished ok_legal ok_pred
              end)
            scheds;
          let covered =
            List.concat_map
              (fun t -> Schedule.proc_ids (Scheduler.history t))
              scheds
            |> List.sort compare
          in
          if covered <> List.sort compare (List.map Process.pid procs) then begin
            incr failures;
            Format.printf "%s COVERAGE: shards ran %d of %d processes@." (repro ())
              (List.length covered) (List.length procs)
          end;
          let solo =
            Scheduler.create ~config ~spec ~rms:(make_rms ()) ()
          in
          List.iter (fun (at, p) -> Scheduler.submit solo ~at p) items;
          (match Scheduler.run ~until:100000.0 solo with
          | exception e ->
              incr failures;
              Format.printf "%s SOLO-EXCEPTION %s@." (repro ())
                (Printexc.to_string e)
          | () ->
              List.iter
                (fun t ->
                  let pids = Schedule.proc_ids (Scheduler.history t) in
                  let touches pid = List.mem pid pids in
                  let filtered =
                    List.filter
                      (fun ev ->
                        match ev with
                        | Schedule.Act inst -> touches (Activity.instance_proc inst)
                        | Schedule.Commit p | Schedule.Abort p -> touches p
                        | Schedule.Group_abort ps -> List.exists touches ps)
                      (Schedule.events (Scheduler.history solo))
                  in
                  if
                    List.map event_str (Schedule.events (Scheduler.history t))
                    <> List.map event_str filtered
                  then begin
                    incr failures;
                    Format.printf "%s HISTORY-DIVERGENCE from single engine@."
                      (repro ())
                  end)
                scheds);
          (* recovery from the sharded run's WALs: each shard's on-disk log
             ["wal.log.shard<i>"] must load clean and recover, with that
             shard's submissions, to the same terminal statuses the live
             shard reached *)
          let buckets =
            Array.of_list (Shard.partition ~shards:!shards_opt ~spec items)
          in
          List.iteri
            (fun i t ->
              ignore (Wal.sync (Scheduler.wal t));
              let path = Printf.sprintf "%s.shard%d" wal_path i in
              let bucket_procs = List.map snd (Array.get buckets i) in
              match Wal.load path with
              | exception e ->
                  incr failures;
                  Format.printf "%s shard=%d WAL-LOAD-EXCEPTION %s@." (repro ()) i
                    (Printexc.to_string e)
              | report -> (
                  if report.Wal.anomalies <> [] then begin
                    incr failures;
                    Format.printf "%s shard=%d WAL-ANOMALIES@." (repro ()) i
                  end;
                  match
                    Scheduler.recover ~config ~spec ~rms:(make_rms ())
                      ~procs:bucket_procs report.Wal.records
                  with
                  | Error e ->
                      incr failures;
                      Format.printf "%s shard=%d RECOVERY-ERROR %s@." (repro ()) i e
                  | Ok t2 ->
                      (try Scheduler.run ~until:100000.0 t2
                       with e ->
                         incr failures;
                         Format.printf "%s shard=%d RECOVERY-RUN-EXCEPTION %s@."
                           (repro ()) i (Printexc.to_string e));
                      let h2 = Scheduler.history t2 in
                      if
                        not
                          (Scheduler.finished t2 && Schedule.legal h2
                         && Criteria.pred h2)
                      then begin
                        incr failures;
                        Format.printf "%s shard=%d RECOVERED-INVARIANTS@."
                          (repro ()) i
                      end;
                      List.iter
                        (fun p ->
                          let pid = Process.pid p in
                          if Scheduler.status t pid <> Scheduler.status t2 pid
                          then begin
                            incr failures;
                            Format.printf "%s shard=%d P%d STATUS-DIVERGENCE@."
                              (repro ()) i pid
                          end)
                        bucket_procs))
            scheds;
          Array.iter
            (fun e ->
              try Sys.remove (Filename.concat wal_dir e) with Sys_error _ -> ())
            (Sys.readdir wal_dir);
          (try Unix.rmdir wal_dir with Unix.Unix_error _ -> ()))
    !seeds;
  Format.printf "stress --shards: %d runs, %d failures@." !runs !failures;
  exit (if !failures = 0 then 0 else 1)

(* --- mixed-churn stress ---

   Staggered submissions with random abort requests in between, the run
   advanced slice by slice; at every slice boundary the incrementally
   maintained latent base (dirty-set invalidation, patched order) is
   cross-checked against the from-scratch algorithm. *)
let churn_stress () =
  let failures = ref 0 in
  let runs = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun mode_name ->
          incr runs;
          let mode = mode_of_name mode_name in
          let params =
            { Generator.default_params with services = 8; conflict_density = 0.4 }
          in
          let rng = Prng.create (seed * 31 + 17) in
          let spec = Generator.spec params in
          let rms = Generator.rms params ~seed () in
          let config =
            {
              Scheduler.default_config with
              mode;
              seed;
              admission_engine =
                (if !check_admission then Scheduler.Checked
                 else Scheduler.Incremental);
            }
          in
          let t = Scheduler.create ~config ~spec ~rms () in
          let procs = Generator.batch ~seed:(seed * 100) params ~n:!n_procs in
          List.iteri
            (fun i p -> Scheduler.submit t ~at:(0.6 *. float_of_int i) p)
            procs;
          let repro () =
            Printf.sprintf "seed=%d churn mode=%s procs=%d%s" seed mode_name
              !n_procs
              (if !check_admission then " check-admission" else "")
          in
          let slices = 8 in
          let span = 0.6 *. float_of_int !n_procs in
          (try
             for k = 1 to slices do
               Scheduler.run ~until:(span *. float_of_int k /. float_of_int slices) t;
               if Prng.chance rng 0.5 then begin
                 let victim = 1 + Prng.int rng !n_procs in
                 if Scheduler.status t victim = Schedule.Active then
                   Scheduler.request_abort t victim
               end;
               match Scheduler.latent_self_check t with
               | Ok () -> ()
               | Error msg ->
                   incr failures;
                   Format.printf "%s slice=%d LATENT-DIVERGENCE %s@." (repro ()) k
                     msg
             done;
             Scheduler.run ~until:100000.0 t
           with e ->
             incr failures;
             Format.printf "%s EXCEPTION %s@." (repro ()) (Printexc.to_string e));
          ignore (Scheduler.gc_deps t);
          let h = Scheduler.history t in
          let ok_finished = Scheduler.finished t in
          let ok_legal = Schedule.legal h in
          let ok_pred = Criteria.pred h in
          let ok_latent =
            match Scheduler.latent_self_check t with Ok () -> true | Error _ -> false
          in
          if not (ok_finished && ok_legal && ok_pred && ok_latent) then begin
            incr failures;
            Format.printf "%s finished=%b legal=%b pred=%b latent=%b@." (repro ())
              ok_finished ok_legal ok_pred ok_latent
          end)
        !modes)
    !seeds;
  Format.printf "stress --churn: %d runs, %d failures@." !runs !failures;
  exit (if !failures = 0 then 0 else 1)

let () =
  Arg.parse speclist
    (fun s -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" s)))
    "stress [options]";
  if !serve_mode then serve_stress ();
  if !shards_opt > 0 then sharded_stress ();
  if !churn_mode then churn_stress ();
  let failures = ref 0 in
  let runs = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun mode_name ->
          let mode = mode_of_name mode_name in
          List.iter
            (fun fail_rate ->
              List.iter
                (fun outage_duty ->
                  List.iter
                    (fun msg_rate ->
                      incr runs;
                      let params =
                        {
                          Generator.default_params with
                          services = 8;
                          conflict_density = 0.4;
                        }
                      in
                      let rms =
                        Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed ()
                      in
                      let base =
                        if outage_duty <= 0.0 then Faults.none
                        else
                          Faults.random
                            (Prng.create (seed * 7919))
                            ~subsystems:(List.map Rm.name rms) ~horizon:!horizon
                            ~outage_duty ()
                      in
                      (* message faults cover [0, horizon): traffic past the
                         horizon is clean, so every 2PC round eventually
                         terminates via retransmission *)
                      let faults =
                        {
                          base with
                          Faults.msg_faults =
                            (if msg_rate <= 0.0 then []
                             else
                               Faults.uniform_msg_faults ~drop:msg_rate ~dup:msg_rate
                                 ~delay:0.5 ~horizon:!horizon ());
                          crash_after_appends =
                            (if !amnesia then Some 12 else base.Faults.crash_after_appends);
                        }
                      in
                      let spec = Generator.spec params in
                      let config =
                        {
                          Scheduler.default_config with
                          mode;
                          seed;
                          admission_engine =
                            (if !check_admission then Scheduler.Checked
                             else Scheduler.Incremental);
                          wal_sync =
                            (match !sync_policy with
                            | Some (_, p) -> p
                            | None -> Scheduler.default_config.Scheduler.wal_sync);
                        }
                      in
                      let wal_dir =
                        Option.map
                          (fun _ ->
                            let dir = Filename.temp_file "tpm_stress" "" in
                            Sys.remove dir;
                            Unix.mkdir dir 0o755;
                            dir)
                          !sync_policy
                      in
                      let wal_path =
                        Option.map (fun d -> Filename.concat d "wal.log") wal_dir
                      in
                      let procs = Generator.batch ~seed:(seed * 100) params ~n:!n_procs in
                      let mk_tracer () =
                        if !trace_ring then Obs.Tracer.create ~ring_capacity:256 ()
                        else Obs.Tracer.disabled
                      in
                      let t =
                        Scheduler.create ~config ~faults ~tracer:(mk_tracer ()) ~spec
                          ~rms ?wal_path ()
                      in
                      List.iteri
                        (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p)
                        procs;
                      let repro () =
                        Printf.sprintf "seed=%d mode=%s fail=%.2f outage=%.2f msg=%.2f%s plan=%s"
                          seed mode_name fail_rate outage_duty msg_rate
                          (if !amnesia then " amnesia" else "")
                          (Faults.to_string faults)
                        ^ (if !check_admission then " check-admission" else "")
                        ^
                        match !sync_policy with
                        | Some (name, _) -> " sync=" ^ name
                        | None -> ""
                      in
                      let dump_forensics sched =
                        if !trace_ring then
                          Scheduler.forensics Format.std_formatter sched
                      in
                      let guarded sched f =
                        try f ()
                        with e ->
                          incr failures;
                          Format.printf "%s EXCEPTION %s@." (repro ())
                            (Printexc.to_string e);
                          dump_forensics sched
                      in
                      guarded t (fun () -> Scheduler.run ~until:100000.0 t);
                      (* with a mirrored WAL: once quiescent (and synced),
                         the on-disk image must load cleanly and match the
                         in-memory record stream bit for bit, whatever the
                         batching policy did along the way *)
                      (match wal_path with
                      | Some path when not (Scheduler.is_crashed t) -> (
                          ignore (Wal.sync (Scheduler.wal t));
                          match Wal.load path with
                          | exception e ->
                              incr failures;
                              Format.printf "%s WAL-LOAD-EXCEPTION %s@." (repro ())
                                (Printexc.to_string e)
                          | report ->
                              if
                                report.Wal.anomalies <> []
                                || report.Wal.records <> Scheduler.wal_records t
                              then begin
                                incr failures;
                                Format.printf "%s WAL-DISK-DIVERGENCE@." (repro ())
                              end)
                      | Some _ | None -> ());
                      let t =
                        (* amnesia arm: the run crashed mid-log; recover it
                           with the coordinator records declared lost and
                           judge the recovered scheduler instead *)
                        if !amnesia && Scheduler.is_crashed t then begin
                          match
                            Scheduler.recover ~config ~amnesia:true
                              ~tracer:(mk_tracer ()) ~spec ~rms ~procs
                              (Scheduler.wal_records t)
                          with
                          | Error e ->
                              incr failures;
                              Format.printf "%s RECOVERY-ERROR %s@." (repro ()) e;
                              dump_forensics t;
                              t
                          | Ok t2 ->
                              guarded t2 (fun () -> Scheduler.run ~until:100000.0 t2);
                              t2
                        end
                        else t
                      in
                      let h = Scheduler.history t in
                      let ok_finished = Scheduler.finished t in
                      let ok_legal = Schedule.legal h in
                      let ok_pred = Criteria.pred h in
                      let ok_tokens =
                        List.for_all (fun rm -> Rm.prepared_tokens rm = []) rms
                      in
                      let injected = !inject_failure && !runs = 1 in
                      if injected || not (ok_finished && ok_legal && ok_pred && ok_tokens)
                      then begin
                        incr failures;
                        Format.printf "%s finished=%b legal=%b pred=%b tokens=%b%s@."
                          (repro ()) ok_finished ok_legal ok_pred ok_tokens
                          (if injected then " INJECTED-FAILURE" else "");
                        dump_forensics t
                      end;
                      (* pure message faults never change outcomes: the final
                         stores must equal a fault-free run of the same seed *)
                      if
                        msg_rate > 0.0 && fail_rate = 0.0 && outage_duty <= 0.0
                        && not !amnesia
                      then begin
                        let rms0 = Generator.rms params ~seed () in
                        let t0 = Scheduler.create ~config ~spec ~rms:rms0 () in
                        List.iteri
                          (fun i p -> Scheduler.submit t0 ~at:(0.4 *. float_of_int i) p)
                          procs;
                        guarded t0 (fun () -> Scheduler.run ~until:100000.0 t0);
                        let same =
                          List.for_all2
                            (fun rm rm0 ->
                              Store.equal_state (Rm.store rm) (Rm.store rm0))
                            rms rms0
                        in
                        if not same then begin
                          incr failures;
                          Format.printf "%s STORE-DIVERGENCE from fault-free twin@."
                            (repro ());
                          dump_forensics t
                        end
                      end;
                      Option.iter
                        (fun dir ->
                          Array.iter
                            (fun e ->
                              try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
                            (Sys.readdir dir);
                          try Unix.rmdir dir with Unix.Unix_error _ -> ())
                        wal_dir)
                    !msg_rates)
                !outages)
            !fail_rates)
        !modes)
    !seeds;
  Format.printf "stress: %d runs, %d failures@." !runs !failures;
  exit (if !failures = 0 then 0 else 1)

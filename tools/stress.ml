(* Randomized stress of the scheduler: many seeds, modes, failure rates
   and outage plans; checks termination, legality and PRED of every
   emitted history.  Every failing combination prints a one-line repro
   including the fault plan.

   dune exec tools/stress.exe -- \
     --seeds 41-120 --modes deferred,quasi --fail-rates 0.1 --outages 0.2 *)
open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Faults = Tpm_sim.Faults
module Prng = Tpm_sim.Prng
module Rm = Tpm_subsys.Rm

let mode_of_name = function
  | "conservative" -> Scheduler.Conservative
  | "deferred" -> Scheduler.Deferred
  | "quasi" -> Scheduler.Quasi
  | s -> raise (Arg.Bad (Printf.sprintf "unknown mode %S" s))

let split_commas s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let parse_floats s =
  List.map
    (fun x ->
      match float_of_string_opt x with
      | Some f -> f
      | None -> raise (Arg.Bad (Printf.sprintf "bad number %S" x)))
    (split_commas s)

(* "41-120" (inclusive range) or "3,7,11" *)
let parse_seeds s =
  let bad () = raise (Arg.Bad (Printf.sprintf "bad seed spec %S" s)) in
  let int x = match int_of_string_opt x with Some n -> n | None -> bad () in
  match String.index_opt s '-' with
  | Some i ->
      let lo = int (String.sub s 0 i) in
      let hi = int (String.sub s (i + 1) (String.length s - i - 1)) in
      if hi < lo then bad ();
      List.init (hi - lo + 1) (fun k -> lo + k)
  | None -> List.map int (split_commas s)

let seeds = ref (parse_seeds "41-120")
let modes = ref [ "conservative"; "deferred"; "quasi" ]
let fail_rates = ref [ 0.0; 0.1; 0.3 ]
let outages = ref [ 0.0 ]
let n_procs = ref 8
let horizon = ref 50.0

let speclist =
  [
    ( "--seeds",
      Arg.String (fun s -> seeds := parse_seeds s),
      "RANGE workload seeds, \"41-120\" or \"3,7,11\" (default 41-120)" );
    ( "--modes",
      Arg.String
        (fun s ->
          let l = split_commas s in
          List.iter (fun m -> ignore (mode_of_name m)) l;
          modes := l),
      "LIST scheduler modes among conservative,deferred,quasi (default all)" );
    ( "--fail-rates",
      Arg.String (fun s -> fail_rates := parse_floats s),
      "LIST per-invocation failure probabilities (default 0.0,0.1,0.3)" );
    ( "--outages",
      Arg.String (fun s -> outages := parse_floats s),
      "LIST outage duty cycles in [0,1); 0 disables the plan (default 0.0)" );
    ("--procs", Arg.Set_int n_procs, "N processes per run (default 8)");
    ( "--horizon",
      Arg.Set_float horizon,
      "T virtual-time span the random fault plans cover (default 50)" );
  ]

let () =
  Arg.parse speclist
    (fun s -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" s)))
    "stress [options]";
  let failures = ref 0 in
  let runs = ref 0 in
  List.iter
    (fun seed ->
      List.iter
        (fun mode_name ->
          let mode = mode_of_name mode_name in
          List.iter
            (fun fail_rate ->
              List.iter
                (fun outage_duty ->
                  incr runs;
                  let params =
                    { Generator.default_params with services = 8; conflict_density = 0.4 }
                  in
                  let rms = Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed () in
                  let faults =
                    if outage_duty <= 0.0 then Faults.none
                    else
                      Faults.random
                        (Prng.create (seed * 7919))
                        ~subsystems:(List.map Rm.name rms) ~horizon:!horizon ~outage_duty ()
                  in
                  let spec = Generator.spec params in
                  let config = { Scheduler.default_config with mode; seed } in
                  let t = Scheduler.create ~config ~faults ~spec ~rms () in
                  List.iteri
                    (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p)
                    (Generator.batch ~seed:(seed * 100) params ~n:!n_procs);
                  let repro () =
                    Printf.sprintf "seed=%d mode=%s fail=%.2f outage=%.2f plan=%s" seed
                      mode_name fail_rate outage_duty (Faults.to_string faults)
                  in
                  (try Scheduler.run ~until:100000.0 t
                   with e ->
                     incr failures;
                     Format.printf "%s EXCEPTION %s@." (repro ()) (Printexc.to_string e));
                  let h = Scheduler.history t in
                  let ok_finished = Scheduler.finished t in
                  let ok_legal = Schedule.legal h in
                  let ok_pred = Criteria.pred h in
                  if not (ok_finished && ok_legal && ok_pred) then begin
                    incr failures;
                    Format.printf "%s finished=%b legal=%b pred=%b@." (repro ()) ok_finished
                      ok_legal ok_pred
                  end)
                !outages)
            !fail_rates)
        !modes)
    !seeds;
  Format.printf "stress: %d runs, %d failures@." !runs !failures;
  exit (if !failures = 0 then 0 else 1)

(* Systematic interleaving explorer CLI (also reachable as `tpm explore`).

   Modes:
   - default: explore the named scenario(s), print stats, and on any
     oracle violation write the greedily-minimized choice trace to
     --trace-out and exit 1 (0 with --expect-violation, which inverts
     the exit sense for the mutation self-test).
   - --replay FILE: re-run a recorded trace; exit 0 iff it reproduces a
     violation (forensics are dumped).
   - --selftest: the `dune runtest` arm — exhausts the small built-in
     scenarios, cross-validates pruned against unpruned exploration,
     proves the Lemma-1 mutation is caught, and round-trips a minimized
     trace through a file.
   - --bench-json FILE: append the P13 state-count record. *)

module E = Tpm_explore.Explore

let usage () =
  print_string
    "explore [--list] [--scenario NAME]... [--no-prune] [--max-branches N]\n\
    \        [--trace-out FILE] [--expect-violation] [--replay FILE]\n\
    \        [--bench-json FILE] [--selftest] [--quiet]\n";
  exit 2

type opts = {
  mutable names : string list;
  mutable prune : bool;
  mutable max_branches : int;
  mutable trace_out : string;
  mutable expect_violation : bool;
  mutable replay : string option;
  mutable bench_json : string option;
  mutable selftest : bool;
  mutable quiet : bool;
}

let parse_args () =
  let o =
    {
      names = [];
      prune = true;
      max_branches = 20000;
      trace_out = "explore-trace.txt";
      expect_violation = false;
      replay = None;
      bench_json = None;
      selftest = false;
      quiet = false;
    }
  in
  let rec go = function
    | [] -> ()
    | "--list" :: _ ->
        List.iter
          (fun (s : E.scenario) -> Printf.printf "%-14s %s\n" s.name s.descr)
          E.scenarios;
        exit 0
    | "--scenario" :: n :: rest ->
        o.names <- o.names @ [ n ];
        go rest
    | "--no-prune" :: rest ->
        o.prune <- false;
        go rest
    | "--max-branches" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> o.max_branches <- v
        | _ -> usage ());
        go rest
    | "--trace-out" :: f :: rest ->
        o.trace_out <- f;
        go rest
    | "--expect-violation" :: rest ->
        o.expect_violation <- true;
        go rest
    | "--replay" :: f :: rest ->
        o.replay <- Some f;
        go rest
    | "--bench-json" :: f :: rest ->
        o.bench_json <- Some f;
        go rest
    | "--selftest" :: rest ->
        o.selftest <- true;
        go rest
    | "--quiet" :: rest ->
        o.quiet <- true;
        go rest
    | ("--help" | "-h") :: _ -> usage ()
    | a :: _ ->
        Printf.eprintf "explore: unknown argument %s\n" a;
        usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  o

let scenario_exn name =
  match E.find_scenario name with
  | Some s -> s
  | None ->
      Printf.eprintf "explore: unknown scenario %s (try --list)\n" name;
      exit 2

let pp_script s = "[" ^ String.concat "," (List.map string_of_int s) ^ "]"

let run_one o (sc : E.scenario) =
  let log = if o.quiet then fun _ -> () else fun m -> Printf.printf "  %s\n%!" m in
  let r = E.explore ~prune:o.prune ~max_branches:o.max_branches ~log sc in
  Printf.printf
    "%s: %d branches explored (depth <= %d), pruned %d symmetric / %d sleep / %d \
     visited, %d violating%s\n"
    sc.name r.stats.explored r.stats.max_depth r.stats.pruned_symmetry
    r.stats.pruned_sleep r.stats.pruned_visited (List.length r.found)
    (if r.stats.truncated then " [TRUNCATED by --max-branches]" else "");
  (match r.found with
  | [] -> ()
  | first :: _ ->
      List.iter
        (fun (f : E.found) ->
          Printf.printf "  VIOLATION at %s (minimized %s): %s\n" (pp_script f.script)
            (pp_script f.minimized)
            (String.concat "; " f.violations))
        r.found;
      E.save_trace ~path:o.trace_out sc first.minimized;
      Printf.printf "  minimized trace written to %s\n" o.trace_out;
      let out = E.run_branch sc ~script:first.minimized in
      print_string (Lazy.force out.forensics));
  r

let bench_record name ~pruned (r : E.report) elapsed =
  Printf.sprintf
    "    {\"scenario\": %S, \"pruned\": %b, \"explored\": %d, \"pruned_symmetry\": %d, \
     \"pruned_sleep\": %d, \"pruned_visited\": %d, \"max_depth\": %d, \"violations\": \
     %d, \"wall_s\": %.3f}"
    name pruned r.stats.explored r.stats.pruned_symmetry r.stats.pruned_sleep
    r.stats.pruned_visited r.stats.max_depth (List.length r.found) elapsed

let write_bench path records =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"P13 systematic interleaving exploration\",\n\
    \  \"runs\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" records);
  close_out oc;
  Printf.printf "bench record written to %s\n" path

let replay o file =
  match E.load_trace file with
  | Error e ->
      Printf.eprintf "explore: cannot read %s: %s\n" file e;
      exit 2
  | Ok (name, script) ->
      let sc = scenario_exn name in
      let out = E.run_branch sc ~script in
      Printf.printf "replay %s: scenario %s, script %s\n" file name (pp_script script);
      (match out.violations with
      | [] ->
          Printf.printf "no violation reproduced\n";
          exit 1
      | vs ->
          Printf.printf "reproduced: %s\n" (String.concat "; " vs);
          if not o.quiet then print_string (Lazy.force out.forensics);
          exit 0)

(* The `dune runtest` arm: exhaustive small-config exploration with every
   oracle clean, pruned-vs-unpruned cross-validation, and the Lemma-1
   mutation self-test with a trace-file round trip. *)
let selftest o =
  let failures = ref 0 in
  let check name cond =
    if not cond then begin
      incr failures;
      Printf.printf "selftest FAIL: %s\n" name
    end
    else if not o.quiet then Printf.printf "selftest ok: %s\n" name
  in
  (* 1. the 2-process scenario is exhaustible and every branch passes
     every oracle, pruned or not *)
  let lemma1 = scenario_exn "lemma1" in
  let rp = E.explore lemma1 in
  let ru = E.explore ~prune:false lemma1 in
  check "lemma1 exhaustive, zero violations (pruned)"
    ((not rp.stats.truncated) && rp.found = []);
  check "lemma1 exhaustive, zero violations (unpruned)"
    ((not ru.stats.truncated) && ru.found = []);
  check "pruning explores no more branches than the full tree"
    (rp.stats.explored <= ru.stats.explored);
  (* 2. three-process 2PC interleavings, pruned against unpruned *)
  let twopc3 = scenario_exn "twopc3" in
  let tp = E.explore twopc3 in
  let tu = E.explore ~prune:false twopc3 in
  check "twopc3 exhaustive, zero violations (pruned)"
    ((not tp.stats.truncated) && tp.found = []);
  check "twopc3 exhaustive, zero violations (unpruned)"
    ((not tu.stats.truncated) && tu.found = []);
  check "twopc3 pruning is effective"
    (tp.stats.explored < tu.stats.explored);
  (* 3. mutation self-test: with the Lemma-1 gate disabled the explorer
     must find a PRED violation, and its minimized trace must replay *)
  let mut = scenario_exn "lemma1-mut" in
  let rm = E.explore mut in
  check "mutation: explorer finds a violation" (rm.found <> []);
  check "mutation: the violation is a PRED violation"
    (List.exists
       (fun (f : E.found) -> List.mem "PRED violated" f.violations)
       rm.found);
  (match rm.found with
  | [] -> ()
  | f :: _ ->
      let out = E.run_branch mut ~script:f.minimized in
      check "mutation: minimized trace still violates" (out.violations <> []);
      let tmp = Filename.temp_file "explore" ".trace" in
      E.save_trace ~path:tmp mut f.minimized;
      (match E.load_trace tmp with
      | Error e -> check (Printf.sprintf "trace round-trip (%s)" e) false
      | Ok (name, script) ->
          check "trace round-trip: scenario name" (name = mut.E.name);
          let out2 = E.run_branch mut ~script in
          check "trace round-trip: replay reproduces the violation"
            (out2.violations <> []));
      Sys.remove tmp);
  (* 4. the unmutated configuration must NOT trip the mutation oracle *)
  check "no false positive without the mutation" (rp.found = []);
  (* 5. Section 3.6: the enforced weak order racing a group abort and
     in-doubt 2PC instances (plus crash points) — exhaustible, and every
     branch keeps the locals commit-order serializable on top of the
     usual oracle suite *)
  List.iter
    (fun name ->
      let sc = scenario_exn name in
      let r = E.explore sc in
      check
        (Printf.sprintf "%s exhaustive, zero violations" name)
        ((not r.stats.truncated) && r.found = []))
    [ "weak-abort"; "weak-indoubt"; "weak-indoubt-crash" ];
  if !failures = 0 then Printf.printf "explore selftest: all checks passed\n"
  else Printf.printf "explore selftest: %d FAILURES\n" !failures;
  exit (if !failures = 0 then 0 else 1)

let () =
  let o = parse_args () in
  match o.replay with
  | Some f -> replay o f
  | None ->
      if o.selftest then selftest o
      else begin
        let names =
          if o.names = [] then [ "lemma1"; "twopc3"; "twopc3-crash"; "weak-abort"; "weak-indoubt"; "weak-indoubt-crash" ]
          else o.names
        in
        let records = ref [] in
        let violating = ref false in
        List.iter
          (fun n ->
            let sc = scenario_exn n in
            let t0 = Sys.time () in
            let r = run_one o sc in
            let elapsed = Sys.time () -. t0 in
            if r.found <> [] then violating := true;
            records := bench_record n ~pruned:o.prune r elapsed :: !records;
            (* the bench record carries the unpruned baseline alongside *)
            if o.bench_json <> None && o.prune then begin
              let t1 = Sys.time () in
              let ru = E.explore ~prune:false ~max_branches:o.max_branches sc in
              records := bench_record n ~pruned:false ru (Sys.time () -. t1) :: !records
            end)
          names;
        (match o.bench_json with
        | Some path -> write_bench path (List.rev !records)
        | None -> ());
        let bad = !violating in
        exit (if o.expect_violation then if bad then 0 else 1 else if bad then 1 else 0)
      end

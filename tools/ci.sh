#!/bin/sh
# Build everything, run the full test suite (includes the crash-point and
# message-delivery sweeps), then a reduced randomized stress: outages,
# message faults (loss/dup/reorder with the fault-free-twin store check),
# and coordinator amnesia (cooperative termination).  Finally regenerate
# the committed reference bench output.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec tools/stress.exe -- --seeds 41-50 --outages 0.0,0.2
dune exec tools/stress.exe -- --seeds 41-50 --fail-rates 0.0,0.1 --msg-faults 0.05
dune exec tools/stress.exe -- --seeds 41-50 --modes deferred,quasi --fail-rates 0.1 --amnesia
# differential admission testing: incremental engine vs the string-based
# reference oracle, bit-identical decisions/edges/cycle-verdicts required
dune exec tools/stress.exe -- --seeds 41-60 --check-admission
dune exec tools/stress.exe -- --seeds 41-46 --modes deferred,quasi --fail-rates 0.1 --check-admission --amnesia
# perf smoke: admission throughput at the quick scales must stay within
# 5x of the recorded floor (~25k admissions/s at 32 processes)
dune exec bench/main.exe -- p11 --quick --min-throughput 5000
# full bench regenerates the reference output and bench/BENCH_P11.json
dune exec bench/main.exe > bench/bench_output.txt 2>&1

#!/bin/sh
# Build everything, run the full test suite (includes the crash-point and
# message-delivery sweeps), then a reduced randomized stress: outages,
# message faults (loss/dup/reorder with the fault-free-twin store check),
# and coordinator amnesia (cooperative termination).  Finally regenerate
# the committed reference bench output.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec tools/stress.exe -- --seeds 41-50 --outages 0.0,0.2
dune exec tools/stress.exe -- --seeds 41-50 --fail-rates 0.0,0.1 --msg-faults 0.05
dune exec tools/stress.exe -- --seeds 41-50 --modes deferred,quasi --fail-rates 0.1 --amnesia
# differential admission testing: incremental engine vs the string-based
# reference oracle, bit-identical decisions/edges/cycle-verdicts required
dune exec tools/stress.exe -- --seeds 41-60 --check-admission
dune exec tools/stress.exe -- --seeds 41-46 --modes deferred,quasi --fail-rates 0.1 --check-admission --amnesia
# forensics: a stress arm with the ring tracer enabled (failures would
# dump the last trace events + metrics snapshot into this log)
dune exec tools/stress.exe -- --seeds 41-45 --fail-rates 0.1 --trace-ring
# forensics self-test: inject an artificial invariant failure and assert
# the dump machinery actually fires (the run exits 1 by design)
out=$(dune exec tools/stress.exe -- --seeds 41 --modes deferred --fail-rates 0.0 \
        --trace-ring --inject-failure) && {
  echo "ci: injected failure did not fail the stress run"; exit 1; } || true
case "$out" in
  *"forensics: last trace events"*) ;;
  *) echo "ci: forensics dump missing from injected-failure output"; exit 1 ;;
esac
# systematic exploration: exhaust the built-in scenarios (also regenerates
# the P13 state-count record), then the mutation self-test — disabling the
# Lemma-1 commit deferral must yield a PRED violation whose minimized
# trace replays from the file
dune exec tools/explore.exe -- --quiet --bench-json bench/BENCH_P13.json
out=$(dune exec tools/explore.exe -- --quiet --scenario lemma1-mut \
        --expect-violation --trace-out _build/explore-mut.trace)
case "$out" in
  *"PRED violated"*) ;;
  *) echo "ci: Lemma-1 mutation did not produce a PRED violation"; exit 1 ;;
esac
out=$(dune exec tools/explore.exe -- --quiet --replay _build/explore-mut.trace)
case "$out" in
  *"reproduced:"*) ;;
  *) echo "ci: minimized mutation trace did not replay"; exit 1 ;;
esac
# disk-fault sweep: full byte-level axis (torn tails at every strided
# crash point, a bit flip at every byte of a multi-segment image, lying
# fsync windows) across all seed x mode combos; every fault must be
# tolerated as a torn tail or detected as corruption -- zero silent
# misreads, zero oracle violations
dune exec tools/crashsweep.exe -- --disk-only
# stress with the WAL on real disk under each sync policy; after each run
# the on-disk log must load clean and match the in-memory record stream
dune exec tools/stress.exe -- --seeds 41-45 --fail-rates 0.1 --sync-policy group:0.2
dune exec tools/stress.exe -- --seeds 41-43 --sync-policy each
# server-mode stress: open-loop arrivals against the bounded-admission
# server under every overload policy; checks shed accounting, drain, and
# that the final stores equal a closed-batch run of the admitted subset
dune exec tools/stress.exe -- --serve --seeds 41-48
# server crash sweep: kill the scheduler at EVERY server-loop step
# (arrival decisions, enqueues, deadline sheds, queue pumps, all four
# drain stages) for every policy, and recover through the full oracle
# suite replaying exactly the admitted (possibly degraded) processes
dune exec tools/crashsweep.exe -- --serve-only
# page-level crash sweep: crash between EVERY pair of buffer-pool page
# flushes (1-frame pools over ballasted stores, sharp + fuzzy checkpoints
# mid-run), assert the WAL rule on the surviving page files (no page LSN
# beyond the durable marker), recover every store through the
# checkpoint-bounded redo plan against a durable-replay twin, and probe
# the torn-page posture (fail-stop refuses, salvage + full redo repairs)
dune exec tools/crashsweep.exe -- --pages-only
# shard-differential: clustered workloads through Shard.run_parallel with
# the per-shard admission oracle on and 2 domains; checks per-shard
# invariants, decision equivalence with a single-engine run, and recovery
# of every shard from its own on-disk WAL ("wal.log.shard<i>")
dune exec tools/stress.exe -- --shards 4 --domains 2 --seeds 41-55 --procs 12 --check-admission
# mixed-churn: staggered submissions with random abort requests, the
# incrementally maintained latent base (dirty-set invalidation, patched
# topological order) cross-checked against the from-scratch algorithm at
# every time slice
dune exec tools/stress.exe -- --churn --seeds 41-55 --check-admission
# p16 smoke: sharded admission must hold p95 under 100us at 1k processes
# (8 conflict components), and beat the single engine's e2e throughput by
# >= 2x at the baseline scale; the per-shard differential oracle runs on
# 2 real domains inside the same smoke
dune exec bench/main.exe -- p16 --quick --max-p95-us 100 --min-speedup 2
# p15 smoke: under deep overload (>= 8x the admission window's capacity)
# every policy must keep pushing committed work — shed, never collapse —
# with the shed-accounting invariant exact at every measured point
# (offered = admitted + rejected + expired + degraded, queue drained)
dune exec bench/main.exe -- p15 --quick --min-goodput 0.3
# perf smoke: admission throughput at the quick scales must stay within
# 5x of the recorded floor (~25k admissions/s at 32 processes)
dune exec bench/main.exe -- p11 --quick --min-throughput 5000
# tracing-overhead smoke: the ring sink measures ~5-10% over the
# tracing-disabled baseline (the committed bench/BENCH_P12.json is the
# precise <=10% record); the smoke ceiling leaves headroom for the
# +/-6% run-to-run noise of shared hardware and exists to catch gross
# regressions such as an instrumentation site formatting eagerly again
dune exec bench/main.exe -- p12 --quick --max-overhead 0.20
# group-commit smoke: the storage-level axis must show batched fsyncs
# multiplying durable-commit throughput (batch-32 >= 2x fsync-per-record
# and above an absolute floor; measured ~210k rec/s vs the 20k floor)
dune exec bench/main.exe -- p14 --quick --min-throughput 20000
# p17 smoke: a pool at least as large as the dataset must stop paging
# (hit rate >= 95%; measured 100%), the bounded-redo oracle must hold at
# every pool size (always-on: rebuilt store equals the durable replay,
# no replayed record below the plan's bound), and the Tx read-set must
# stay linear (>= 100k reads/s in one transaction; measured ~1M)
dune exec bench/main.exe -- p17 --quick --min-hit-rate 0.95 --min-tx-reads 100000
# composite crash sweep at full coverage: crash at EVERY append while a
# grouped subprocess (Compose) is mid-flight under the enforced weak
# order, recover with the groups re-declared, and require the recovered
# subsystem histories commit-order serializable (runtest runs a strided
# slice; this arm exhausts all crash points for every seed)
dune exec tools/crashsweep.exe -- --composite-only
# p18 smoke: the headline — at the highest conflict density PRED with the
# subsystem-enforced weak order must out-throughput BOTH classical
# baselines (strict 2PL and TSO over whole-process transactions), the
# weak order must shorten the PRED makespan by >= 1.05x, and the bench
# must exercise the retriable re-invocation path (> 0 local restarts)
dune exec bench/main.exe -- p18 --quick --min-weak-speedup 1.05 --check-baselines
# full bench regenerates the reference output, bench/BENCH_P11.json,
# bench/BENCH_P12.json, bench/BENCH_P14.json, bench/BENCH_P15.json,
# bench/BENCH_P16.json, bench/BENCH_P17.json and bench/BENCH_P18.json
dune exec bench/main.exe > bench/bench_output.txt 2>&1

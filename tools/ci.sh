#!/bin/sh
# Build everything, run the full test suite (includes the crash-point
# sweep), then a reduced randomized stress with and without outages.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec tools/stress.exe -- --seeds 41-50 --outages 0.0,0.2

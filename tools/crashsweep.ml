(* Deterministic crash-point sweep: run a workload once to count its WAL
   appends and 2PC message deliveries, then re-run it crashing right after
   every k-th append AND right after every k-th message delivery (via the
   fault plan's crash triggers), recover from the log, finish, and assert
   on every crash position that

   - the crash fired exactly where scripted,
   - every process reaches a terminal state after recovery,
   - the recovered history is legal and prefix-reducible,
   - no prepared (in-doubt 2PC) invocation leaks at any subsystem,
   - recovery never contradicts a durable coordinator decision: an
     activity whose coordinator logged [Coord_committed] before the crash
     is re-delivered and committed, never aborted (presumed-abort
     soundness at every message-loss point),
   - the surviving subsystem stores are exactly explained by the recovered
     history: replaying it into fresh subsystems yields equal stores.

   Runs as part of `dune runtest` (see tools/dune); knobs are compiled in
   and kept small so the sweep stays fast. *)
open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Faults = Tpm_sim.Faults
module Rm = Tpm_subsys.Rm
module Service = Tpm_subsys.Service
module Store = Tpm_kv.Store
module Wal = Tpm_wal.Wal
module Obs = Tpm_obs.Obs

(* every sweep run carries a small ring tracer so a failing crash point
   dumps its last trace events + metrics snapshot straight into the CI log *)
let mk_tracer () = Obs.Tracer.create ~ring_capacity:256 ()

let params =
  {
    Generator.default_params with
    activities_min = 3;
    activities_max = 6;
    services = 6;
    conflict_density = 0.3;
    subsystems = 3;
  }

let horizon = 100000.0
let n_procs = 3
let fail_rate = 0.2
let seeds = [ 11; 12; 13 ]

let modes =
  [
    ("conservative", Scheduler.Conservative);
    ("deferred", Scheduler.Deferred);
    ("quasi", Scheduler.Quasi);
  ]

let fresh_rms seed = Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed ()
let procs_of seed = Generator.batch ~seed:(seed * 100) params ~n:n_procs

let submit_all t procs =
  List.iteri (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p) procs

(* Replay every occurrence of the history, in emission (= effect) order,
   into fresh subsystems; compensations re-invoke the declared inverse.
   The sweep's processes carry no invocation arguments, so the replayed
   invocations are argument-identical to the originals. *)
let replay_explains history rms ~seed =
  let reg = Generator.registry params in
  let fresh = Generator.rms params ~seed () in
  let find name l = List.find (fun rm -> Rm.name rm = name) l in
  let token = ref 0 in
  let ok = ref true in
  List.iter
    (function
      | Schedule.Act inst ->
          let a = Activity.instance_base inst in
          let service =
            if Activity.is_inverse inst then
              match (Service.Registry.find reg a.Activity.service).Service.compensation with
              | Service.Inverse_service inv -> inv
              | Service.No_compensation | Service.Snapshot_undo ->
                  failwith "crashsweep: history replay needs inverse services"
            else a.Activity.service
          in
          incr token;
          (match
             Rm.invoke (find a.Activity.subsystem fresh) ~token:!token ~service
               ~attempt:max_int ()
           with
          | Rm.Committed _ -> ()
          | Rm.Prepared _ | Rm.Failed | Rm.Blocked _ | Rm.Unavailable -> ok := false)
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ())
    (Schedule.events history);
  !ok
  && List.for_all
       (fun rm -> Store.equal_state (Rm.store rm) (Rm.store (find (Rm.name rm) fresh)))
       rms

(* one fault-free run to learn the total number of WAL appends and 2PC
   message deliveries — the two crash-point axes *)
let baseline ~seed ~mode =
  let t =
    Scheduler.create
      ~config:{ Scheduler.default_config with mode; seed }
      ~spec:(Generator.spec params) ~rms:(fresh_rms seed) ()
  in
  submit_all t (procs_of seed);
  Scheduler.run ~until:horizon t;
  if not (Scheduler.finished t) then
    failwith (Printf.sprintf "crashsweep: baseline seed=%d did not finish" seed);
  (List.length (Scheduler.wal_records t), Scheduler.msg_deliveries t)

(* (pid, act) pairs whose coordinator durably logged the commit decision
   before the crash: [Coord_begin] names the activity, [Coord_committed]
   seals its fate *)
let durable_commits records =
  let acts = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Coord_begin { cid; pid; act; _ } -> Hashtbl.replace acts cid (pid, act)
      | _ -> ())
    records;
  List.filter_map
    (function
      | Wal.Coord_committed { cid; _ } -> Hashtbl.find_opt acts cid
      | _ -> None)
    records
  |> List.sort_uniq compare

let aborted_after_recovery t2 pid act =
  List.exists
    (function
      | Wal.Prepared_decided { pid = p; act = a; commit = false } -> p = pid && a = act
      | _ -> false)
    (Scheduler.wal_records t2)

let forward_in_history h pid act =
  List.exists
    (function
      | Schedule.Act inst ->
          (not (Activity.is_inverse inst))
          && Activity.instance_proc inst = pid
          && (Activity.instance_base inst).Activity.id.Activity.act = act
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> false)
    (Schedule.events h)

let recover_and_check ~complain ~check ~config ~spec ~rms ~procs ~seed records =
  let durable = durable_commits records in
  match Scheduler.recover ~config ~tracer:(mk_tracer ()) ~spec ~rms ~procs records with
  | Error e -> complain ("recovery failed: " ^ e)
  | Ok t2 ->
      let failed = ref false in
      let check name cond =
        if not cond then failed := true;
        check name cond
      in
      Scheduler.run ~until:horizon t2;
      let h = Scheduler.history t2 in
      check "not finished after recovery" (Scheduler.finished t2);
      check "illegal recovered history" (Schedule.legal h);
      check "recovered history not PRED" (Criteria.pred h);
      check "leaked prepared invocation"
        (List.for_all (fun rm -> Rm.prepared_tokens rm = []) rms);
      check "stores not explained by recovered history" (replay_explains h rms ~seed);
      (* presumed-abort soundness: a decision the coordinator made durable
         must never be contradicted by recovery, however many messages
         were lost in the crash *)
      List.iter
        (fun (pid, act) ->
          check
            (Printf.sprintf "durably committed a_{%d,%d} aborted by recovery" pid act)
            (not (aborted_after_recovery t2 pid act));
          check
            (Printf.sprintf "durably committed a_{%d,%d} missing from history" pid act)
            (forward_in_history h pid act))
        durable;
      if !failed then Scheduler.forensics Format.std_formatter t2

let sweep ~seed ~mode_name ~mode =
  let appends, deliveries = baseline ~seed ~mode in
  let spec = Generator.spec params in
  let procs = procs_of seed in
  let config = { Scheduler.default_config with mode; seed } in
  let failures = ref 0 in
  (* axis 1: crash after every WAL append *)
  for k = 1 to appends do
    let complain name =
      incr failures;
      Format.printf "seed=%d mode=%s crash@%d: %s@." seed mode_name k name
    in
    let check name cond = if not cond then complain name in
    let rms = fresh_rms seed in
    let t =
      Scheduler.create ~config
        ~faults:(Faults.make ~crash_after_appends:k ())
        ~tracer:(mk_tracer ()) ~spec ~rms ()
    in
    submit_all t procs;
    Scheduler.run ~until:horizon t;
    let records = Scheduler.wal_records t in
    let pre_failed = ref false in
    let pre_check name cond =
      if not cond then pre_failed := true;
      check name cond
    in
    pre_check "crash trigger did not fire" (Scheduler.is_crashed t);
    pre_check "log longer than the crash point" (List.length records = k);
    if !pre_failed then Scheduler.forensics Format.std_formatter t;
    recover_and_check ~complain ~check ~config ~spec ~rms ~procs ~seed records
  done;
  (* axis 2: crash after every 2PC message delivery.  The trigger routes
     messages through the event queue, so the delivery count may differ
     slightly from the synchronous baseline; positions past the end simply
     never fire and the run must finish normally. *)
  for k = 1 to deliveries do
    let complain name =
      incr failures;
      Format.printf "seed=%d mode=%s crash-delivery@%d: %s@." seed mode_name k name
    in
    let check name cond = if not cond then complain name in
    let rms = fresh_rms seed in
    let t =
      Scheduler.create ~config
        ~faults:(Faults.make ~crash_after_deliveries:k ())
        ~tracer:(mk_tracer ()) ~spec ~rms ()
    in
    submit_all t procs;
    Scheduler.run ~until:horizon t;
    if Scheduler.is_crashed t then
      recover_and_check ~complain ~check ~config ~spec ~rms ~procs ~seed
        (Scheduler.wal_records t)
    else if not (Scheduler.finished t) then begin
      complain "no crash and not finished";
      Scheduler.forensics Format.std_formatter t
    end
  done;
  Format.printf
    "crashsweep: seed=%d mode=%s %d append + %d delivery crash points, %d failures@."
    seed mode_name appends deliveries !failures;
  !failures

let () =
  let failures =
    List.fold_left
      (fun acc seed ->
        List.fold_left
          (fun acc (mode_name, mode) -> acc + sweep ~seed ~mode_name ~mode)
          acc modes)
      0 seeds
  in
  if failures = 0 then Format.printf "crashsweep: all crash points recovered@."
  else Format.printf "crashsweep: %d FAILURES@." failures;
  exit (if failures = 0 then 0 else 1)

(* Deterministic crash-point sweep: run a workload once to count its WAL
   appends and 2PC message deliveries, then re-run it crashing right after
   every k-th append AND right after every k-th message delivery (via the
   fault plan's crash triggers), recover from the log, finish, and assert
   on every crash position that

   - the crash fired exactly where scripted,
   - every process reaches a terminal state after recovery,
   - the recovered history is legal and prefix-reducible,
   - no prepared (in-doubt 2PC) invocation leaks at any subsystem,
   - recovery never contradicts a durable coordinator decision: an
     activity whose coordinator logged [Coord_committed] before the crash
     is re-delivered and committed, never aborted (presumed-abort
     soundness at every message-loss point),
   - the surviving subsystem stores are exactly explained by the recovered
     history: replaying it into fresh subsystems yields equal stores.

   Runs as part of `dune runtest` (see tools/dune); knobs are compiled in
   and kept small so the sweep stays fast. *)
open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Faults = Tpm_sim.Faults
module Rm = Tpm_subsys.Rm
module Service = Tpm_subsys.Service
module Store = Tpm_kv.Store
module Wal = Tpm_wal.Wal
module Obs = Tpm_obs.Obs
module Compose = Tpm_composite.Compose
module Local = Tpm_composite.Local

(* every sweep run carries a small ring tracer so a failing crash point
   dumps its last trace events + metrics snapshot straight into the CI log *)
let mk_tracer () = Obs.Tracer.create ~ring_capacity:256 ()

let params =
  {
    Generator.default_params with
    activities_min = 3;
    activities_max = 6;
    services = 6;
    conflict_density = 0.3;
    subsystems = 3;
  }

let horizon = 100000.0
let n_procs = 3
let fail_rate = 0.2
let seeds = [ 11; 12; 13 ]

let modes =
  [
    ("conservative", Scheduler.Conservative);
    ("deferred", Scheduler.Deferred);
    ("quasi", Scheduler.Quasi);
  ]

let fresh_rms seed = Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed ()
let procs_of seed = Generator.batch ~seed:(seed * 100) params ~n:n_procs

let submit_all t procs =
  List.iteri (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p) procs

(* Replay every occurrence of the history, in emission (= effect) order,
   into fresh subsystems; compensations re-invoke the declared inverse.
   The sweep's processes carry no invocation arguments, so the replayed
   invocations are argument-identical to the originals. *)
let replay_explains history rms ~seed =
  let reg = Generator.registry params in
  let fresh = Generator.rms params ~seed () in
  let find name l = List.find (fun rm -> Rm.name rm = name) l in
  let token = ref 0 in
  let ok = ref true in
  List.iter
    (function
      | Schedule.Act inst ->
          let a = Activity.instance_base inst in
          let service =
            if Activity.is_inverse inst then
              match (Service.Registry.find reg a.Activity.service).Service.compensation with
              | Service.Inverse_service inv -> inv
              | Service.No_compensation | Service.Snapshot_undo ->
                  failwith "crashsweep: history replay needs inverse services"
            else a.Activity.service
          in
          incr token;
          (match
             Rm.invoke (find a.Activity.subsystem fresh) ~token:!token ~service
               ~attempt:max_int ()
           with
          | Rm.Committed _ -> ()
          | Rm.Prepared _ | Rm.Failed | Rm.Blocked _ | Rm.Unavailable -> ok := false)
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ())
    (Schedule.events history);
  !ok
  && List.for_all
       (fun rm -> Store.equal_state (Rm.store rm) (Rm.store (find (Rm.name rm) fresh)))
       rms

(* one fault-free run to learn the total number of WAL appends and 2PC
   message deliveries — the two crash-point axes *)
let baseline ~seed ~mode =
  let t =
    Scheduler.create
      ~config:{ Scheduler.default_config with mode; seed }
      ~spec:(Generator.spec params) ~rms:(fresh_rms seed) ()
  in
  submit_all t (procs_of seed);
  Scheduler.run ~until:horizon t;
  if not (Scheduler.finished t) then
    failwith (Printf.sprintf "crashsweep: baseline seed=%d did not finish" seed);
  (List.length (Scheduler.wal_records t), Scheduler.msg_deliveries t)

(* (pid, act) pairs whose coordinator durably logged the commit decision
   before the crash: [Coord_begin] names the activity, [Coord_committed]
   seals its fate *)
let durable_commits records =
  let acts = Hashtbl.create 8 in
  List.iter
    (function
      | Wal.Coord_begin { cid; pid; act; _ } -> Hashtbl.replace acts cid (pid, act)
      | _ -> ())
    records;
  List.filter_map
    (function
      | Wal.Coord_committed { cid; _ } -> Hashtbl.find_opt acts cid
      | _ -> None)
    records
  |> List.sort_uniq compare

let aborted_after_recovery t2 pid act =
  List.exists
    (function
      | Wal.Prepared_decided { pid = p; act = a; commit = false } -> p = pid && a = act
      | _ -> false)
    (Scheduler.wal_records t2)

let forward_in_history h pid act =
  List.exists
    (function
      | Schedule.Act inst ->
          (not (Activity.is_inverse inst))
          && Activity.instance_proc inst = pid
          && (Activity.instance_base inst).Activity.id.Activity.act = act
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> false)
    (Schedule.events h)

let recover_and_check ?(groups = []) ~complain ~check ~config ~spec ~rms ~procs ~seed records
    =
  let durable = durable_commits records in
  match Scheduler.recover ~config ~tracer:(mk_tracer ()) ~groups ~spec ~rms ~procs records with
  | Error e -> complain ("recovery failed: " ^ e)
  | Ok t2 ->
      let failed = ref false in
      let check name cond =
        if not cond then failed := true;
        check name cond
      in
      Scheduler.run ~until:horizon t2;
      let h = Scheduler.history t2 in
      check "not finished after recovery" (Scheduler.finished t2);
      check "illegal recovered history" (Schedule.legal h);
      check "recovered history not PRED" (Criteria.pred h);
      check "leaked prepared invocation"
        (List.for_all (fun rm -> Rm.prepared_tokens rm = []) rms);
      check "stores not explained by recovered history" (replay_explains h rms ~seed);
      (* under order enforcement the post-crash local schedules must stay
         commit-order serializable (vacuous when enforcement is off) *)
      check "recovered locals not commit-order serializable"
        (List.for_all
           (fun (_, l) -> Tpm_composite.Local.commit_order_serializable l)
           (Scheduler.local_histories t2));
      (* presumed-abort soundness: a decision the coordinator made durable
         must never be contradicted by recovery, however many messages
         were lost in the crash *)
      List.iter
        (fun (pid, act) ->
          check
            (Printf.sprintf "durably committed a_{%d,%d} aborted by recovery" pid act)
            (not (aborted_after_recovery t2 pid act));
          check
            (Printf.sprintf "durably committed a_{%d,%d} missing from history" pid act)
            (forward_in_history h pid act))
        durable;
      if !failed then Scheduler.forensics Format.std_formatter t2

let sweep ~seed ~mode_name ~mode =
  let appends, deliveries = baseline ~seed ~mode in
  let spec = Generator.spec params in
  let procs = procs_of seed in
  let config = { Scheduler.default_config with mode; seed } in
  let failures = ref 0 in
  (* axis 1: crash after every WAL append *)
  for k = 1 to appends do
    let complain name =
      incr failures;
      Format.printf "seed=%d mode=%s crash@%d: %s@." seed mode_name k name
    in
    let check name cond = if not cond then complain name in
    let rms = fresh_rms seed in
    let t =
      Scheduler.create ~config
        ~faults:(Faults.make ~crash_after_appends:k ())
        ~tracer:(mk_tracer ()) ~spec ~rms ()
    in
    submit_all t procs;
    Scheduler.run ~until:horizon t;
    let records = Scheduler.wal_records t in
    let pre_failed = ref false in
    let pre_check name cond =
      if not cond then pre_failed := true;
      check name cond
    in
    pre_check "crash trigger did not fire" (Scheduler.is_crashed t);
    pre_check "log longer than the crash point" (List.length records = k);
    if !pre_failed then Scheduler.forensics Format.std_formatter t;
    recover_and_check ~complain ~check ~config ~spec ~rms ~procs ~seed records
  done;
  (* axis 2: crash after every 2PC message delivery.  The trigger routes
     messages through the event queue, so the delivery count may differ
     slightly from the synchronous baseline; positions past the end simply
     never fire and the run must finish normally. *)
  for k = 1 to deliveries do
    let complain name =
      incr failures;
      Format.printf "seed=%d mode=%s crash-delivery@%d: %s@." seed mode_name k name
    in
    let check name cond = if not cond then complain name in
    let rms = fresh_rms seed in
    let t =
      Scheduler.create ~config
        ~faults:(Faults.make ~crash_after_deliveries:k ())
        ~tracer:(mk_tracer ()) ~spec ~rms ()
    in
    submit_all t procs;
    Scheduler.run ~until:horizon t;
    if Scheduler.is_crashed t then
      recover_and_check ~complain ~check ~config ~spec ~rms ~procs ~seed
        (Scheduler.wal_records t)
    else if not (Scheduler.finished t) then begin
      complain "no crash and not finished";
      Scheduler.forensics Format.std_formatter t
    end
  done;
  Format.printf
    "crashsweep: seed=%d mode=%s %d append + %d delivery crash points, %d failures@."
    seed mode_name appends deliveries !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* Axis 3: byte-level disk faults against the mirrored on-disk WAL.
   The workload runs with a real segmented log under it; the crash image
   is then damaged with scripted {!Faults.disk_fault} plans and reloaded.
   Contract: every fault is either tolerated as a torn tail (and the full
   recovery oracle suite still passes — the torn bytes change nothing) or
   detected as corruption; a load never silently misreads a record. *)

let with_tmp_wal f =
  let dir = Filename.temp_file "tpm_sweep" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f (Filename.concat dir "wal.log"))

let append_bytes path s =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

let last_segment path =
  let segs = Wal.segment_files path in
  List.nth segs (List.length segs - 1)

let file_size p =
  let ic = open_in_bin p in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

let rec subsequence sub full =
  match (sub, full) with
  | [], _ -> true
  | _, [] -> false
  | s :: sub', f :: full' ->
      if s = f then subsequence sub' full' else subsequence sub full'

let rec is_prefix sub full =
  match (sub, full) with
  | [], _ -> true
  | _, [] -> false
  | s :: sub', f :: full' -> s = f && is_prefix sub' full'

(* apply one declarative disk fault to the log's segment files *)
let apply_disk_fault ~path fault =
  let seg_file i = List.nth (Wal.segment_files path) i in
  match fault with
  | Faults.Torn_write { segment; byte } | Faults.Short_read { segment; byte } ->
      Wal.Chaos.truncate ~path:(seg_file segment) ~bytes:byte
  | Faults.Bit_flip { segment; byte; bit } ->
      Wal.Chaos.flip_bit ~path:(seg_file segment) ~byte ~bit
  | Faults.Truncate_segment { segment } -> Sys.remove (seg_file segment)

let disk_config mode seed sync =
  { Scheduler.default_config with mode; seed; wal_sync = sync; wal_segment_bytes = 256 }

(* partial-frame garbage a crash mid-append could leave at the tail *)
let torn_garbage k =
  match k mod 3 with
  | 0 -> "\x07\x03\x9a" (* less than a frame header *)
  | 1 -> "\x64\x00\x00\x00\xde\xad\xbe\xef" (* full header claiming 100 bytes, no payload *)
  | _ -> "\x32\x00\x00\x00\x01\x02\x03\x04junkjunk" (* header + partial payload *)

let disk_sweep ~seed ~mode_name ~mode ~stride ~flip_stride =
  let spec = Generator.spec params in
  let procs = procs_of seed in
  let failures = ref 0 in
  let config = disk_config mode seed Wal.Sync_each in
  let appends, _ = baseline ~seed ~mode in
  (* arm 1: torn write at every (strided) crash point — the garbage is
     tolerated, the records are untouched, and the full oracle suite
     holds after recovery from the loaded image *)
  let torn_points = ref 0 in
  let k = ref 1 in
  while !k <= appends do
    let kk = !k in
    incr torn_points;
    let complain name =
      incr failures;
      Format.printf "seed=%d mode=%s disk-torn@%d: %s@." seed mode_name kk name
    in
    let check name cond = if not cond then complain name in
    with_tmp_wal (fun path ->
        let rms = fresh_rms seed in
        let t =
          Scheduler.create ~config
            ~faults:(Faults.make ~crash_after_appends:kk ())
            ~tracer:(mk_tracer ()) ~spec ~rms ~wal_path:path ()
        in
        submit_all t procs;
        Scheduler.run ~until:horizon t;
        check "crash trigger did not fire" (Scheduler.is_crashed t);
        let mem = Scheduler.crash t in
        check "log longer than the crash point" (List.length mem = kk);
        append_bytes (last_segment path) (torn_garbage kk);
        match Wal.load path with
        | exception Wal.Corrupt _ -> complain "torn tail misclassified as corrupt"
        | report ->
            check "torn bytes altered the records" (report.Wal.records = mem);
            check "torn tail not reported"
              (match report.Wal.anomalies with [ Wal.Torn_tail _ ] -> true | _ -> false);
            recover_and_check ~complain ~check ~config ~spec ~rms ~procs ~seed
              report.Wal.records);
    k := !k + stride
  done;
  (* arm 2: bit flips over the (strided) bytes of a full run's image —
     every flip is detected (Corrupt, or a shorter torn tail of the final
     segment), never a silently mutated record; flips are involutive so
     the image is restored after each probe *)
  let flip_points = ref 0 in
  with_tmp_wal (fun path ->
      let rms = fresh_rms seed in
      let t = Scheduler.create ~config ~tracer:(mk_tracer ()) ~spec ~rms ~wal_path:path () in
      submit_all t procs;
      Scheduler.run ~until:horizon t;
      let mem = Scheduler.crash t in
      let segs = Wal.segment_files path in
      let n_segs = List.length segs in
      if n_segs < 2 then begin
        incr failures;
        Format.printf "seed=%d mode=%s disk-flip: image spans only %d segment(s)@." seed
          mode_name n_segs
      end;
      List.iteri
        (fun si seg_file ->
          let size = file_size seg_file in
          let b = ref 0 in
          while !b < size do
            incr flip_points;
            let byte = !b in
            let complain name =
              incr failures;
              Format.printf "seed=%d mode=%s disk-flip seg=%d byte=%d: %s@." seed mode_name
                si byte name
            in
            let fault = Faults.Bit_flip { segment = si; byte; bit = byte mod 8 } in
            apply_disk_fault ~path fault;
            (match Wal.load path with
            | exception Wal.Corrupt _ -> ()
            | report ->
                if not (subsequence report.Wal.records mem) then complain "silent misread";
                if
                  not
                    (List.length report.Wal.records < List.length mem
                    && si = n_segs - 1
                    && List.exists
                         (function Wal.Torn_tail _ -> true | _ -> false)
                         report.Wal.anomalies)
                then complain "flip escaped detection");
            (match Wal.load ~policy:Wal.Salvage path with
            | exception _ -> complain "salvage load must not raise"
            | r ->
                if not (subsequence r.Wal.records mem) then complain "salvage misread";
                if r.Wal.anomalies = [] then complain "salvage reported nothing");
            apply_disk_fault ~path fault;
            b := !b + flip_stride
          done)
        segs;
      (* destructive plans last: a short read of the final segment is the
         same image as a torn cut; a missing segment is detected damage *)
      let final = n_segs - 1 in
      let complain name =
        incr failures;
        Format.printf "seed=%d mode=%s disk-plan: %s@." seed mode_name name
      in
      apply_disk_fault ~path
        (Faults.Short_read { segment = final; byte = file_size (last_segment path) / 2 });
      (match Wal.load path with
      | exception Wal.Corrupt _ -> complain "short read of the tail must be tolerated"
      | report ->
          if not (subsequence report.Wal.records mem) then complain "short-read misread");
      apply_disk_fault ~path (Faults.Truncate_segment { segment = 0 });
      (match Wal.load path with
      | exception Wal.Corrupt _ -> ()
      | _ -> complain "missing first segment escaped fail-stop");
      match Wal.load ~policy:Wal.Salvage path with
      | exception _ -> complain "salvage of a gapped log must not raise"
      | r ->
          if
            not
              (List.exists
                 (function Wal.Missing_segment { segment = 0 } -> true | _ -> false)
                 r.Wal.anomalies)
          then complain "missing segment not reported";
          if not (subsequence r.Wal.records mem) then complain "gapped salvage misread");
  (* arm 3: a lying-fsync window under group commit — acknowledged batches
     vanish from the crash image; the image must stay clean, an honest
     prefix, and never longer than the honest durable marker *)
  let lie_ks = List.sort_uniq compare [ max 1 (appends / 3); max 2 (2 * appends / 3) ] in
  List.iter
    (fun kk ->
      let complain name =
        incr failures;
        Format.printf "seed=%d mode=%s disk-lie@%d: %s@." seed mode_name kk name
      in
      let check name cond = if not cond then complain name in
      with_tmp_wal (fun path ->
          let rms = fresh_rms seed in
          let config = disk_config mode seed (Wal.Group 0.15) in
          let t =
            Scheduler.create ~config
              ~faults:
                (Faults.make ~crash_after_appends:kk
                   ~lying_fsync:[ { Faults.from_ = 0.5; until_ = 2.0 } ]
                   ())
              ~tracer:(mk_tracer ()) ~spec ~rms ~wal_path:path ()
          in
          submit_all t procs;
          Scheduler.run ~until:horizon t;
          check "crash trigger did not fire" (Scheduler.is_crashed t);
          let stats = Wal.stats (Scheduler.wal t) in
          let mem = Scheduler.crash t in
          check "durable ran ahead of acked"
            (stats.Wal.durable_records <= stats.Wal.acked_records);
          match Wal.load path with
          | exception Wal.Corrupt _ -> complain "lying-fsync image must stay parseable"
          | report ->
              check "image not clean" (report.Wal.anomalies = []);
              check "image is not an honest prefix" (is_prefix report.Wal.records mem);
              check "image longer than the honest durable marker"
                (List.length report.Wal.records <= stats.Wal.durable_records);
              (* the honest prefix is a well-formed log: recovery accepts it
                 (store-level oracles don't apply — effects of acked-but-lost
                 records survive at the subsystems by construction) *)
              (match Scheduler.recover ~config ~spec ~rms ~procs report.Wal.records with
              | Error e -> complain ("recovery from lying-fsync image failed: " ^ e)
              | Ok t2 -> Scheduler.run ~until:horizon t2)))
    lie_ks;
  Format.printf
    "crashsweep: seed=%d mode=%s disk axis: %d torn + %d flip + %d lying-fsync points, %d \
     failures@."
    seed mode_name !torn_points !flip_points (List.length lie_ks) !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* Axis 4: crash at every server-loop step of an open-world serving run.
   The driver plays an open-loop arrival script into the bounded-admission
   server, runs partway, then drains — so the step counter walks through
   arrival decisions, enqueues, deadline sheds, queue pumps and all four
   drain stages.  A hook kills the scheduler at each step in turn; the
   recovered image must satisfy the full oracle suite, replaying exactly
   the processes the server admitted (degraded variants included — under
   [Degrade] the admitted process is not the offered one). *)

module Server = Tpm_server.Server

let serve_policies =
  [
    ("reject", Server.Reject);
    ("queue", Server.Queue);
    ("degrade", Server.Degrade);
  ]

let serve_config seed = { Scheduler.default_config with seed }
let serve_script seed = Generator.arrivals params ~seed:(seed * 100) ~rate:3.0 ~horizon:6.0

let make_server ~seed ~policy ~crash_at =
  let rms = fresh_rms seed in
  let sched =
    Scheduler.create ~config:(serve_config seed) ~tracer:(mk_tracer ())
      ~spec:(Generator.spec params) ~rms ()
  in
  let srv =
    Server.create
      ~config:
        {
          Server.default_config with
          policy;
          max_live = 2;
          queue_capacity = 4;
          default_deadline = 2.0;
          scan_period = 0.5;
        }
      sched
  in
  (match crash_at with
  | Some k ->
      Server.set_step_hook srv (fun ~stage:_ ~step ->
          if step = k then ignore (Scheduler.crash sched))
  | None -> ());
  (sched, srv, rms)

let serve_drive srv script =
  Server.play srv script;
  Server.run ~until:3.0 srv;
  Server.drain srv

let serve_sweep ~seed ~policy_name ~policy ~stride =
  let script = serve_script seed in
  let sched0, srv0, _ = make_server ~seed ~policy ~crash_at:None in
  serve_drive srv0 script;
  if not (Scheduler.finished sched0) then
    failwith (Printf.sprintf "crashsweep: server baseline seed=%d did not finish" seed);
  let nsteps = Server.steps srv0 in
  let failures = ref 0 in
  let points = ref 0 in
  let k = ref 1 in
  while !k <= nsteps do
    let kk = !k in
    incr points;
    let complain name =
      incr failures;
      Format.printf "seed=%d policy=%s serve-crash@%d: %s@." seed policy_name kk name
    in
    let check name cond = if not cond then complain name in
    let sched, srv, rms = make_server ~seed ~policy ~crash_at:(Some kk) in
    serve_drive srv script;
    check "crash trigger did not fire" (Scheduler.is_crashed sched);
    check "shed accounting violated at the crash point" (Server.accounting_ok srv);
    recover_and_check ~complain ~check ~config:(serve_config seed)
      ~spec:(Generator.spec params) ~rms ~procs:(Server.admitted_procs srv) ~seed
      (Scheduler.wal_records sched);
    k := !k + stride
  done;
  Format.printf
    "crashsweep: seed=%d policy=%s server axis: %d of %d crash points, %d failures@."
    seed policy_name !points nsteps !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* Axis 5: crash between any two page flushes of WAL-coordinated paged
   stores.  The subsystems run on buffer-pooled page files (1 frame, so
   eviction traffic is maximal) over an on-disk WAL, with a checkpoint
   mid-run so [Dirty_pages] snapshots bound redo.  A shared flush counter
   kills the scheduler right after the k-th page write; page files share
   the host's fate (frozen at the crash).  At every point:

   - no page on disk carries a page_lsn above the WAL's honest durable
     marker at the crash (the flush rule, asserted on the artifacts);
   - every page file reopens whole ([open_paged] reports no anomalies);
   - rebuilding each store as [open_paged] + {!Recovery.kv_redo} +
     {!Store.redo} yields exactly the full-durable-replay twin;
   - the redo plan replays only records at or past its [start_lsn], and
     across the sweep the checkpoint bound actually skips work.

   A torn-page arm then damages one flushed page per crash image: the
   [`Fail_stop] open refuses, the [`Salvage] open quarantines and
   reports, and a full-log redo still rebuilds the twin exactly. *)

module Bufpool = Tpm_kv.Bufpool
module Pager = Tpm_kv.Pager
module Recovery = Tpm_wal.Recovery

let page_path dir rm_name = Filename.concat dir (rm_name ^ ".pages")

(* a denser key universe than the other axes, over the smallest pages:
   each subsystem's store spans several pages while the pool holds one
   frame, so ordinary workload traffic churns through eviction flushes *)
let page_params = { params with Generator.services = 18; activities_min = 4; activities_max = 8 }
let page_procs seed = Generator.batch ~seed:(seed * 100) page_params ~n:4

let paged_rms seed dir =
  let reg = Generator.registry page_params in
  List.init page_params.Generator.subsystems (fun i ->
      let name = Printf.sprintf "ss%d" i in
      let store = Store.create_paged ~frames:1 ~page_size:128 (page_path dir name) in
      Rm.create ~name ~registry:reg
        ~fail_prob:(fun _ -> fail_rate)
        ~seed:(seed + i) ~store ())

let close_paged_rms rms =
  List.iter
    (fun rm ->
      match Store.bufpool (Rm.store rm) with
      | Some pool -> Pager.close (Bufpool.pager pool)
      | None -> ())
    rms

(* ballast: enough logged keys that each store outgrows its one-frame
   pool by an order of magnitude, so ordinary workload traffic pages.
   Loaded after WAL wiring, so every key is a Kv_write in the log and
   the durable-replay twin reproduces any prefix of it. *)
let fill_store store =
  for i = 0 to 29 do
    Store.set store
      (Printf.sprintf "fill%02d" i)
      (Tpm_kv.Value.Text (String.make 20 (Char.chr (Char.code 'a' + (i mod 26)))))
  done

let fill_rms rms = List.iter (fun rm -> fill_store (Rm.store rm)) rms

(* one paged run: load ballast, arm the flush trigger, drive the workload
   with checkpoints partway, return the crashed scheduler, its rms and
   the durable marker at the crash (max_int when no crash fired) *)
let page_run ~seed ~path ~crash_after_flushes =
  let dir = Filename.dirname path in
  let rms = paged_rms seed dir in
  let config = disk_config Scheduler.Conservative seed Wal.Sync_each in
  let t =
    Scheduler.create ~config ~tracer:(mk_tracer ()) ~spec:(Generator.spec page_params) ~rms
      ~wal_path:path ()
  in
  let flushes = ref 0 in
  let durable_at_crash = ref max_int in
  List.iter
    (fun rm ->
      match Store.bufpool (Rm.store rm) with
      | Some pool ->
          Bufpool.set_on_flush pool (fun _ ->
              incr flushes;
              if !flushes = crash_after_flushes then begin
                durable_at_crash := (Wal.stats (Scheduler.wal t)).Wal.durable_records;
                ignore (Scheduler.crash t)
              end)
      | None -> ())
    rms;
  (* the trigger is armed before the ballast load: churning 30 keys
     through a 1-frame pool is itself a long train of eviction flushes,
     every one of them a crash point *)
  fill_rms rms;
  if not (Scheduler.is_crashed t) then submit_all t (page_procs seed);
  (* two checkpoints partway — one sharp, one fuzzy — so the sweep hits
     crash points before, between, inside and after Dirty_pages snapshots *)
  Scheduler.run ~until:1.2 t;
  if not (Scheduler.is_crashed t) then Scheduler.checkpoint t;
  Scheduler.run ~until:2.5 t;
  if not (Scheduler.is_crashed t) then Scheduler.checkpoint_fuzzy t;
  Scheduler.run ~until:horizon t;
  (t, rms, !flushes, !durable_at_crash)

(* the full-durable-replay twin for one subsystem: every Kv_write in the
   crash image applied, in order, into a fresh in-memory store *)
let replay_twin ~rm_name image =
  let twin = Store.create () in
  List.iteri
    (fun i r ->
      match r with
      | Wal.Kv_write { rm; key; value } when String.equal rm rm_name ->
          Store.redo twin ~lsn:(i + 1) key value
      | _ -> ())
    image;
  twin

let page_sweep ~seed ~stride =
  let failures = ref 0 in
  let bounded_skips = ref 0 in
  let nflushes =
    with_tmp_wal (fun path ->
        let t, rms, flushes, _ = page_run ~seed ~path ~crash_after_flushes:0 in
        if not (Scheduler.finished t) then
          failwith (Printf.sprintf "crashsweep: paged baseline seed=%d did not finish" seed);
        close_paged_rms rms;
        flushes)
  in
  let points = ref 0 in
  let k = ref 1 in
  while !k <= nflushes do
    let kk = !k in
    incr points;
    let complain name =
      incr failures;
      Format.printf "seed=%d page-crash@%d: %s@." seed kk name
    in
    let check name cond = if not cond then complain name in
    with_tmp_wal (fun path ->
        let dir = Filename.dirname path in
        let t, rms, _, durable = page_run ~seed ~path ~crash_after_flushes:kk in
        check "crash trigger did not fire" (Scheduler.is_crashed t);
        let image = Scheduler.wal_records t in
        check "image longer than the durable marker" (List.length image <= durable);
        let recovered_stores =
          List.map
            (fun rm ->
              let name = Rm.name rm in
              let ppath = page_path dir name in
              (* the flush rule, on the artifacts: no page the crash left
                 on disk may carry an LSN past the honest durable marker *)
              let probe = Pager.open_ ppath in
              for pid = 0 to Pager.npages probe - 1 do
                match Pager.read_result probe pid with
                | Ok buf ->
                    check
                      (Printf.sprintf "%s page %d flushed ahead of durable marker" name pid)
                      (Pager.Page.lsn buf <= durable)
                | Error reason ->
                    complain (Printf.sprintf "%s page %d torn in crash image: %s" name pid reason)
              done;
              Pager.close probe;
              let recovered, anomalies = Store.open_paged ~frames:2 ppath in
              check
                (Printf.sprintf "%s reopened with anomalies" name)
                (anomalies = []);
              let plan = Recovery.kv_redo ~rm:name image in
              List.iter
                (fun (lsn, key, v) ->
                  check
                    (Printf.sprintf "%s redo plan reaches below its own bound" name)
                    (lsn >= plan.Recovery.start_lsn);
                  Store.redo recovered ~lsn key v)
                plan.Recovery.ops;
              (* work the checkpoint bound skipped: rm records strictly
                 below start_lsn never re-run *)
              List.iteri
                (fun i r ->
                  match r with
                  | Wal.Kv_write { rm = rm'; _ }
                    when String.equal rm' name && i + 1 < plan.Recovery.start_lsn ->
                      incr bounded_skips
                  | _ -> ())
                image;
              check
                (Printf.sprintf "%s rebuilt store diverges from full durable replay" name)
                (Store.equal_state recovered (replay_twin ~rm_name:name image));
              recovered)
            rms
        in
        (* no process-level recover_and_check here: a flush trigger fires
           mid-invocation, so the in-flight transaction's effects land in
           the frozen in-memory pools after the image was cut — phantom
           state a shared-fate crash would lose.  The durable-replay twin
           above is the store oracle for this axis; the process-level
           oracle suite runs where subsystems survive (axes 1-4). *)
        (* torn-page arm: damage one flushed page, then fail-stop must
           refuse, salvage must report, and full redo must still rebuild *)
        (match
           List.find_opt
             (fun rm ->
               let pgr = Pager.open_ (page_path dir (Rm.name rm)) in
               let n = Pager.npages pgr in
               Pager.close pgr;
               n > 0)
             rms
         with
        | None -> ()
        | Some rm ->
            let name = Rm.name rm in
            let ppath = page_path dir name in
            Wal.Chaos.flip_bit ~path:ppath ~byte:(16 + 40) ~bit:(kk mod 8);
            (match Store.open_paged ~policy:`Fail_stop ppath with
            | exception Pager.Corrupt_page _ -> ()
            | salvaged, _ ->
                complain "fail-stop open accepted a torn page";
                Option.iter (fun p -> Pager.close (Bufpool.pager p)) (Store.bufpool salvaged));
            (match Store.open_paged ~policy:`Salvage ppath with
            | exception e ->
                complain ("salvage open must not raise: " ^ Printexc.to_string e)
            | salvaged, anomalies ->
                check "torn page not reported by salvage" (anomalies <> []);
                (* redo bounded by the checkpoint snapshot cannot
                   resurrect a quarantined page's keys: salvage demands
                   the full log, from position 1 *)
                List.iteri
                  (fun i r ->
                    match r with
                    | Wal.Kv_write { rm = rm'; key; value } when String.equal rm' name ->
                        Store.redo salvaged ~lsn:(i + 1) key value
                    | _ -> ())
                  image;
                check "salvage + full redo diverges from durable replay"
                  (Store.equal_state salvaged (replay_twin ~rm_name:name image));
                Option.iter (fun p -> Pager.close (Bufpool.pager p)) (Store.bufpool salvaged)));
        List.iter
          (fun s -> Option.iter (fun p -> Pager.close (Bufpool.pager p)) (Store.bufpool s))
          recovered_stores;
        close_paged_rms rms);
    k := !k + stride
  done;
  if !points > 0 && !bounded_skips = 0 then begin
    incr failures;
    Format.printf "seed=%d page axis: checkpoint bound never skipped any redo work@." seed
  end;
  Format.printf
    "crashsweep: seed=%d page axis: %d of %d flush crash points, %d records skipped by the \
     checkpoint bound, %d failures@."
    seed !points nflushes !bounded_skips !failures;
  !failures

(* ------------------------------------------------------------------ *)
(* Composite axis: multi-level composition (subprocess groups) under
   the enforced weak order, crashed at every (strided) WAL append.  A
   crash mid-subprocess must replay consistently: recovery is handed the
   same group declarations, the recovered history passes the full oracle
   suite, and the surviving local schedules stay commit-order
   serializable. *)

let composite_procs =
  List.init n_procs (fun i ->
      let pid = i + 1 in
      let svc k = Printf.sprintf "svc%d" ((pid + k) mod params.Generator.services) in
      let ss k = Printf.sprintf "ss%d" ((pid + k) mod params.Generator.subsystems) in
      let act k service subsystem =
        Activity.make ~proc:pid ~act:k ~service ~kind:Activity.Compensatable ~subsystem ()
      in
      Process.make_exn ~pid
        ~activities:[ act 1 (svc 0) (ss 0); act 2 (svc 1) (ss 1); act 3 (svc 2) (ss 2) ]
        ~prec:[ (1, 2); (2, 3) ]
        ~pref:[])

let composite_groups =
  List.map
    (fun p -> (Process.pid p, [ { Compose.gname = "head"; members = [ 1; 2 ] } ]))
    composite_procs

let submit_all_grouped t procs =
  List.iteri
    (fun i p ->
      let groups = List.assoc (Process.pid p) composite_groups in
      Scheduler.submit t ~at:(0.4 *. float_of_int i) ~groups p)
    procs

let composite_sweep ~seed ~stride =
  let config =
    {
      Scheduler.default_config with
      mode = Scheduler.Deferred;
      seed;
      weak_order = true;
      order_enforcement = true;
    }
  in
  let spec = Generator.spec params in
  let procs = composite_procs in
  (* fault-free baseline: count the WAL appends (the crash axis) *)
  let t0 =
    Scheduler.create ~config ~spec ~rms:(fresh_rms seed) ~tracer:(mk_tracer ()) ()
  in
  submit_all_grouped t0 procs;
  Scheduler.run ~until:horizon t0;
  if not (Scheduler.finished t0) then
    failwith (Printf.sprintf "crashsweep: composite baseline seed=%d did not finish" seed);
  let appends = List.length (Scheduler.wal_records t0) in
  let failures = ref 0 in
  let points = ref 0 in
  let k = ref 1 in
  while !k <= appends do
    incr points;
    let complain name =
      incr failures;
      Format.printf "seed=%d composite crash@%d: %s@." seed !k name
    in
    let check name cond = if not cond then complain name in
    let rms = fresh_rms seed in
    let t =
      Scheduler.create ~config
        ~faults:(Faults.make ~crash_after_appends:!k ())
        ~tracer:(mk_tracer ()) ~spec ~rms ()
    in
    submit_all_grouped t procs;
    Scheduler.run ~until:horizon t;
    let records = Scheduler.wal_records t in
    check "crash trigger did not fire" (Scheduler.is_crashed t);
    recover_and_check ~groups:composite_groups ~complain ~check ~config ~spec ~rms ~procs
      ~seed records;
    k := !k + stride
  done;
  Format.printf "crashsweep: seed=%d composite axis: %d of %d crash points, %d failures@."
    seed !points appends !failures;
  !failures

let () =
  let disk_only = Array.exists (( = ) "--disk-only") Sys.argv in
  let serve_only = Array.exists (( = ) "--serve-only") Sys.argv in
  let pages_only = Array.exists (( = ) "--pages-only") Sys.argv in
  let composite_only = Array.exists (( = ) "--composite-only") Sys.argv in
  let failures =
    if disk_only then
      (* full-coverage disk sweep: every crash point, every byte *)
      List.fold_left
        (fun acc seed ->
          List.fold_left
            (fun acc (mode_name, mode) ->
              acc + disk_sweep ~seed ~mode_name ~mode ~stride:1 ~flip_stride:1)
            acc modes)
        0 seeds
    else if serve_only then
      (* full-coverage server sweep: every seed, every policy, every step *)
      List.fold_left
        (fun acc seed ->
          List.fold_left
            (fun acc (policy_name, policy) ->
              acc + serve_sweep ~seed ~policy_name ~policy ~stride:1)
            acc serve_policies)
        0 seeds
    else if pages_only then
      (* full-coverage page sweep: every seed, every flush crash point *)
      List.fold_left (fun acc seed -> acc + page_sweep ~seed ~stride:1) 0 seeds
    else if composite_only then
      (* full-coverage composite sweep: every seed, every crash point *)
      List.fold_left (fun acc seed -> acc + composite_sweep ~seed ~stride:1) 0 seeds
    else
      List.fold_left
        (fun acc seed ->
          List.fold_left
            (fun acc (mode_name, mode) -> acc + sweep ~seed ~mode_name ~mode)
            acc modes)
        0 seeds
      (* strided disk axis on one seed/mode keeps runtest fast; the full
         sweep runs behind [--disk-only] in CI *)
      + disk_sweep ~seed:11 ~mode_name:"conservative" ~mode:Scheduler.Conservative ~stride:2
          ~flip_stride:13
      (* strided server axis likewise; the full sweep runs behind
         [--serve-only] in CI *)
      + serve_sweep ~seed:11 ~policy_name:"queue" ~policy:Server.Queue ~stride:3
      + serve_sweep ~seed:12 ~policy_name:"degrade" ~policy:Server.Degrade ~stride:5
      (* strided page axis on one seed; the full sweep runs behind
         [--pages-only] in CI *)
      + page_sweep ~seed:11 ~stride:4
      (* strided composite axis: crash mid-subprocess under the enforced
         weak order, recover with the same group declarations *)
      + composite_sweep ~seed:11 ~stride:3
  in
  if failures = 0 then Format.printf "crashsweep: all crash points recovered@."
  else Format.printf "crashsweep: %d FAILURES@." failures;
  exit (if failures = 0 then 0 else 1)

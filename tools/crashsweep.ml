(* Deterministic crash-point sweep: run a workload once to count its WAL
   appends, then re-run it crashing right after every k-th append (via the
   fault plan's crash trigger), recover from the log, finish, and assert
   on every crash position that

   - the crash fired exactly where scripted (the log has k records),
   - every process reaches a terminal state after recovery,
   - the recovered history is legal and prefix-reducible,
   - no prepared (in-doubt 2PC) invocation leaks at any subsystem,
   - the surviving subsystem stores are exactly explained by the recovered
     history: replaying it into fresh subsystems yields equal stores.

   Runs as part of `dune runtest` (see tools/dune); knobs are compiled in
   and kept small so the sweep stays fast. *)
open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Faults = Tpm_sim.Faults
module Rm = Tpm_subsys.Rm
module Service = Tpm_subsys.Service
module Store = Tpm_kv.Store

let params =
  {
    Generator.default_params with
    activities_min = 3;
    activities_max = 6;
    services = 6;
    conflict_density = 0.3;
    subsystems = 3;
  }

let horizon = 100000.0
let n_procs = 3
let fail_rate = 0.2
let seeds = [ 11; 12; 13 ]

let modes =
  [
    ("conservative", Scheduler.Conservative);
    ("deferred", Scheduler.Deferred);
    ("quasi", Scheduler.Quasi);
  ]

let fresh_rms seed = Generator.rms params ~fail_prob:(fun _ -> fail_rate) ~seed ()
let procs_of seed = Generator.batch ~seed:(seed * 100) params ~n:n_procs

let submit_all t procs =
  List.iteri (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p) procs

(* Replay every occurrence of the history, in emission (= effect) order,
   into fresh subsystems; compensations re-invoke the declared inverse.
   The sweep's processes carry no invocation arguments, so the replayed
   invocations are argument-identical to the originals. *)
let replay_explains history rms ~seed =
  let reg = Generator.registry params in
  let fresh = Generator.rms params ~seed () in
  let find name l = List.find (fun rm -> Rm.name rm = name) l in
  let token = ref 0 in
  let ok = ref true in
  List.iter
    (function
      | Schedule.Act inst ->
          let a = Activity.instance_base inst in
          let service =
            if Activity.is_inverse inst then
              match (Service.Registry.find reg a.Activity.service).Service.compensation with
              | Service.Inverse_service inv -> inv
              | Service.No_compensation | Service.Snapshot_undo ->
                  failwith "crashsweep: history replay needs inverse services"
            else a.Activity.service
          in
          incr token;
          (match
             Rm.invoke (find a.Activity.subsystem fresh) ~token:!token ~service
               ~attempt:max_int ()
           with
          | Rm.Committed _ -> ()
          | Rm.Prepared _ | Rm.Failed | Rm.Blocked _ | Rm.Unavailable -> ok := false)
      | Schedule.Commit _ | Schedule.Abort _ | Schedule.Group_abort _ -> ())
    (Schedule.events history);
  !ok
  && List.for_all
       (fun rm -> Store.equal_state (Rm.store rm) (Rm.store (find (Rm.name rm) fresh)))
       rms

(* one fault-free run to learn the total number of WAL appends *)
let count_appends ~seed ~mode =
  let t =
    Scheduler.create
      ~config:{ Scheduler.default_config with mode; seed }
      ~spec:(Generator.spec params) ~rms:(fresh_rms seed) ()
  in
  submit_all t (procs_of seed);
  Scheduler.run ~until:horizon t;
  if not (Scheduler.finished t) then
    failwith (Printf.sprintf "crashsweep: baseline seed=%d did not finish" seed);
  List.length (Scheduler.wal_records t)

let sweep ~seed ~mode_name ~mode =
  let appends = count_appends ~seed ~mode in
  let spec = Generator.spec params in
  let procs = procs_of seed in
  let config = { Scheduler.default_config with mode; seed } in
  let failures = ref 0 in
  for k = 1 to appends do
    let complain name =
      incr failures;
      Format.printf "seed=%d mode=%s crash@%d: %s@." seed mode_name k name
    in
    let check name cond = if not cond then complain name in
    let rms = fresh_rms seed in
    let t =
      Scheduler.create ~config
        ~faults:(Faults.make ~crash_after_appends:k ())
        ~spec ~rms ()
    in
    submit_all t procs;
    Scheduler.run ~until:horizon t;
    let records = Scheduler.wal_records t in
    check "crash trigger did not fire" (Scheduler.is_crashed t);
    check "log longer than the crash point" (List.length records = k);
    match Scheduler.recover ~config ~spec ~rms ~procs records with
    | Error e -> complain ("recovery failed: " ^ e)
    | Ok t2 ->
        Scheduler.run ~until:horizon t2;
        let h = Scheduler.history t2 in
        check "not finished after recovery" (Scheduler.finished t2);
        check "illegal recovered history" (Schedule.legal h);
        check "recovered history not PRED" (Criteria.pred h);
        check "leaked prepared invocation"
          (List.for_all (fun rm -> Rm.prepared_tokens rm = []) rms);
        check "stores not explained by recovered history" (replay_explains h rms ~seed)
  done;
  Format.printf "crashsweep: seed=%d mode=%s %d crash points, %d failures@." seed
    mode_name appends !failures;
  !failures

let () =
  let failures =
    List.fold_left
      (fun acc seed ->
        List.fold_left
          (fun acc (mode_name, mode) -> acc + sweep ~seed ~mode_name ~mode)
          acc modes)
      0 seeds
  in
  if failures = 0 then Format.printf "crashsweep: all crash points recovered@."
  else Format.printf "crashsweep: %d FAILURES@." failures;
  exit (if failures = 0 then 0 else 1)

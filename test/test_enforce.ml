(* Section 3.6 end to end: the enforcement layer (per-subsystem local
   executors realizing the prescribed weak commit order), retriable
   re-invocation of dependent local transactions, prepared-overlap, and
   multi-level composition (subprocess groups admitted as one unit). *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Compose = Tpm_composite.Compose
module Local = Tpm_composite.Local
module Metrics = Tpm_sim.Metrics

let check = Alcotest.check

(* a conflict spec with every service's self/inverse pairs (physical
   soundness) plus the given explicit cross-service pairs *)
let spec_with params pairs =
  Conflict.union
    (Generator.spec { params with Generator.conflict_density = 0.0 })
    (Conflict.of_pairs pairs)

let single ~pid ~act ~service ?(kind = Activity.Compensatable) ~subsystem () =
  Activity.make ~proc:pid ~act ~service ~kind ~subsystem ()

let locals_cos t =
  List.for_all (fun (_, l) -> Local.commit_order_serializable l) (Scheduler.local_histories t)

(* -------------------------------------------------------------------- *)
(* Enforced weak order: overlapping executions, held local commits      *)
(* -------------------------------------------------------------------- *)

let overlap_setup ~order_enforcement ~weak_order =
  (* P1 runs a slow svc0, P2 a fast svc1 conflicting with it.  Under the
     enforced weak order P2 executes overlapping and its local commit is
     held until P1's; under the strong order P2 waits P1 out. *)
  let params = { Generator.default_params with services = 2; subsystems = 1 } in
  let rms = Generator.rms params () in
  let spec = spec_with params [ ("svc0", "svc1") ] in
  let config =
    {
      Scheduler.default_config with
      weak_order;
      order_enforcement;
      service_time = (fun s -> if s = "svc0" then 3.0 else 1.0);
    }
  in
  let t = Scheduler.create ~config ~spec ~rms () in
  let p1 =
    Process.make_exn ~pid:1
      ~activities:[ single ~pid:1 ~act:1 ~service:"svc0" ~subsystem:"ss0" () ]
      ~prec:[] ~pref:[]
  in
  let p2 =
    Process.make_exn ~pid:2
      ~activities:[ single ~pid:2 ~act:1 ~service:"svc1" ~subsystem:"ss0" () ]
      ~prec:[] ~pref:[]
  in
  Scheduler.submit t p1;
  Scheduler.submit t ~at:0.1 p2;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "PRED" true (Criteria.pred h);
  t

let test_enforced_overlap () =
  let t_strong = overlap_setup ~order_enforcement:false ~weak_order:false in
  let t_enf = overlap_setup ~order_enforcement:true ~weak_order:true in
  check Alcotest.bool "enforced weak order shortens the makespan" true
    (Scheduler.now t_enf < Scheduler.now t_strong);
  (* P2 finished executing first but its local commit was held for P1 *)
  check Alcotest.bool "a local commit was held" true (Scheduler.enforcement_held t_enf > 0);
  check Alcotest.bool "weak_commit_waits counted" true
    (Metrics.count (Scheduler.metrics t_enf) "weak_commit_waits" > 0)

let test_enforced_local_history () =
  let t = overlap_setup ~order_enforcement:true ~weak_order:true in
  match Scheduler.local_histories t with
  | [ (ss, l) ] ->
      check Alcotest.string "single subsystem" "ss0" ss;
      check Alcotest.int "both local transactions committed" 2
        (List.length (Local.committed l));
      check Alcotest.bool "commit-order serializable" true
        (Local.commit_order_serializable l);
      (* the subsystem realized the prescribed order: P1's transaction
         (opened first, id 1) commits before P2's (id 2) even though P2's
         invocation finished first *)
      let commits =
        List.filter_map (function Local.Commit x -> Some x | _ -> None) (Local.events l)
      in
      check (Alcotest.list Alcotest.int) "commit order follows the weak order" [ 1; 2 ]
        commits
  | ls -> Alcotest.failf "expected one local history, got %d" (List.length ls)

let test_disabled_no_histories () =
  let t = overlap_setup ~order_enforcement:false ~weak_order:true in
  check Alcotest.int "no local histories without enforcement" 0
    (List.length (Scheduler.local_histories t));
  check Alcotest.int "nothing held" 0 (Scheduler.enforcement_held t)

(* -------------------------------------------------------------------- *)
(* Retriable re-invocation: a predecessor's local abort restarts the    *)
(* dependent local transaction, not its process                         *)
(* -------------------------------------------------------------------- *)

let test_local_restart_on_pred_abort () =
  let params = { Generator.default_params with services = 2; subsystems = 1 } in
  (* every svc0 invocation fails: P1 (compensatable, no alternatives)
     retries transiently, degrades, and aborts -- while P2's conflicting
     svc1 invocation completed long ago and sits with its local commit
     held.  The abort must re-invoke P2's local transaction. *)
  let rms =
    Generator.rms params ~fail_prob:(fun s -> if s = "svc0" then 1.0 else 0.0) ()
  in
  let spec = spec_with params [ ("svc0", "svc1") ] in
  let config =
    { Scheduler.default_config with weak_order = true; order_enforcement = true }
  in
  let t = Scheduler.create ~config ~spec ~rms () in
  let p1 =
    Process.make_exn ~pid:1
      ~activities:[ single ~pid:1 ~act:1 ~service:"svc0" ~subsystem:"ss0" () ]
      ~prec:[] ~pref:[]
  in
  let p2 =
    Process.make_exn ~pid:2
      ~activities:[ single ~pid:2 ~act:1 ~service:"svc1" ~subsystem:"ss0" () ]
      ~prec:[] ~pref:[]
  in
  Scheduler.submit t p1;
  Scheduler.submit t ~at:0.1 p2;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "local transactions restarted" true
    (Metrics.count (Scheduler.metrics t) "local_restarts" > 0);
  (* P2 survived its predecessor's abort and committed *)
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "P2 committed" true
    (List.exists (fun a -> Activity.instance_proc a = 2) (Schedule.activities h));
  check Alcotest.bool "locals commit-order serializable" true (locals_cos t)

(* -------------------------------------------------------------------- *)
(* Prepared-overlap: a dependent may execute while its predecessor sits *)
(* prepared in 2PC; the local commit is held until the 2PC decision     *)
(* -------------------------------------------------------------------- *)

let prepared_setup ~order_enforcement =
  (* P0: svc0 then a long svc4 -- keeps P0 uncommitted until t=7.
     P1: svc3 (conflicts svc0, so P0 < P1) then a pivot svc1: with an
     uncommitted predecessor the Deferred mode prepares it, and the 2PC
     decision waits for P0's commit.
     P2: svc2 (conflicts svc1) submitted while P1's pivot is prepared. *)
  let params = { Generator.default_params with services = 5; subsystems = 1 } in
  let rms = Generator.rms params () in
  let spec = spec_with params [ ("svc3", "svc0"); ("svc1", "svc2") ] in
  let config =
    {
      Scheduler.default_config with
      weak_order = true;
      order_enforcement;
      service_time = (fun s -> if s = "svc4" then 6.0 else 1.0);
    }
  in
  let t = Scheduler.create ~config ~spec ~rms () in
  let p0 =
    Process.make_exn ~pid:1
      ~activities:
        [
          single ~pid:1 ~act:1 ~service:"svc0" ~subsystem:"ss0" ();
          single ~pid:1 ~act:2 ~service:"svc4" ~subsystem:"ss0" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[]
  in
  let p1 =
    Process.make_exn ~pid:2
      ~activities:
        [
          single ~pid:2 ~act:1 ~service:"svc3" ~subsystem:"ss0" ();
          single ~pid:2 ~act:2 ~service:"svc1" ~kind:Activity.Pivot ~subsystem:"ss0" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[]
  in
  let p2 =
    Process.make_exn ~pid:3
      ~activities:[ single ~pid:3 ~act:1 ~service:"svc2" ~subsystem:"ss0" () ]
      ~prec:[] ~pref:[]
  in
  Scheduler.submit t p0;
  Scheduler.submit t ~at:0.1 p1;
  Scheduler.submit t ~at:2.5 p2;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "PRED" true (Criteria.pred h);
  t

let test_prepared_overlap () =
  let t_wait = prepared_setup ~order_enforcement:false in
  let t_enf = prepared_setup ~order_enforcement:true in
  check Alcotest.bool "overlapping a prepared predecessor shortens the makespan" true
    (Scheduler.now t_enf < Scheduler.now t_wait);
  check Alcotest.bool "the dependent's local commit was held" true
    (Scheduler.enforcement_held t_enf > 0);
  check Alcotest.bool "locals commit-order serializable" true (locals_cos t_enf)

(* -------------------------------------------------------------------- *)
(* Multi-level composition: a subprocess admits as one unit             *)
(* -------------------------------------------------------------------- *)

let group_setup ~grouped =
  (* P1 = svc0 then svc1; P2 = svc2 conflicting with svc1, submitted
     while P1's first member runs.  With the group, admission claims the
     union footprint up front: P2 orders after P1, and the second member
     dispatches without re-admission even while P2's conflicting
     invocation is in flight. *)
  let params = { Generator.default_params with services = 3; subsystems = 1 } in
  let rms = Generator.rms params () in
  let spec = spec_with params [ ("svc1", "svc2") ] in
  let t = Scheduler.create ~spec ~rms () in
  let p1 =
    Process.make_exn ~pid:1
      ~activities:
        [
          single ~pid:1 ~act:1 ~service:"svc0" ~subsystem:"ss0" ();
          single ~pid:1 ~act:2 ~service:"svc1" ~subsystem:"ss0" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[]
  in
  let p2 =
    Process.make_exn ~pid:2
      ~activities:[ single ~pid:2 ~act:1 ~service:"svc2" ~subsystem:"ss0" () ]
      ~prec:[] ~pref:[]
  in
  let groups = if grouped then [ { Compose.gname = "sub"; members = [ 1; 2 ] } ] else [] in
  Scheduler.submit t ~groups p1;
  Scheduler.submit t ~at:0.5 p2;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "PRED" true (Criteria.pred h);
  t

let test_group_admits_as_unit () =
  let t_flat = group_setup ~grouped:false in
  let t_grp = group_setup ~grouped:true in
  check Alcotest.bool "one subprocess admission" true
    (Metrics.count (Scheduler.metrics t_grp) "subprocess_admissions" = 1);
  check Alcotest.int "no subprocess admission without groups" 0
    (Metrics.count (Scheduler.metrics t_flat) "subprocess_admissions");
  (* the claimed footprint orders P2 after the whole subprocess... *)
  (match Scheduler.serialization_order t_grp with
  | [ a; b ] ->
      check Alcotest.int "subprocess first" 1 a;
      check Alcotest.int "outsider second" 2 b
  | o -> Alcotest.failf "unexpected serialization order (%d procs)" (List.length o));
  (* ...whereas without the group the outsider interleaves ahead of the
     not-yet-occurred second member: unit admission changed the order *)
  match Scheduler.serialization_order t_flat with
  | [ a; b ] ->
      check Alcotest.int "outsider slips ahead without the group" 2 a;
      check Alcotest.int "flat process second" 1 b
  | o -> Alcotest.failf "unexpected flat serialization order (%d procs)" (List.length o)

let test_group_validation () =
  let p =
    Process.make_exn ~pid:1
      ~activities:
        [
          single ~pid:1 ~act:1 ~service:"a" ~subsystem:"ss0" ();
          single ~pid:1 ~act:2 ~service:"b" ~subsystem:"ss0" ();
          single ~pid:1 ~act:3 ~service:"c" ~subsystem:"ss0" ();
        ]
      ~prec:[ (1, 2); (2, 3) ]
      ~pref:[]
  in
  let ok gs = match Compose.validate p gs with Ok () -> true | Error _ -> false in
  check Alcotest.bool "convex prefix is valid" true
    (ok [ { Compose.gname = "g"; members = [ 1; 2 ] } ]);
  check Alcotest.bool "unknown member rejected" false
    (ok [ { Compose.gname = "g"; members = [ 1; 9 ] } ]);
  check Alcotest.bool "empty group rejected" false
    (ok [ { Compose.gname = "g"; members = [] } ]);
  check Alcotest.bool "overlapping groups rejected" false
    (ok
       [
         { Compose.gname = "g1"; members = [ 1; 2 ] };
         { Compose.gname = "g2"; members = [ 2; 3 ] };
       ]);
  check Alcotest.bool "non-convex group rejected" false
    (ok [ { Compose.gname = "g"; members = [ 1; 3 ] } ])

(* -------------------------------------------------------------------- *)
(* Differential: groups + enforcement under the Checked engine          *)
(* -------------------------------------------------------------------- *)

let test_checked_engine_groups_enforcement () =
  (* chains of three activities with the first two grouped, random
     conflicts, transient svc0 failures: the Checked engine fails the run
     on any Incremental/Reference divergence *)
  let params =
    { Generator.default_params with services = 6; subsystems = 2; conflict_density = 0.4 }
  in
  let rms =
    Generator.rms params ~fail_prob:(fun s -> if s = "svc0" then 0.4 else 0.0) ()
  in
  let spec = Generator.spec params in
  let config =
    {
      Scheduler.default_config with
      weak_order = true;
      order_enforcement = true;
      admission_engine = Scheduler.Checked;
    }
  in
  let t = Scheduler.create ~config ~spec ~rms () in
  let subsystem i = Printf.sprintf "ss%d" (i mod 2) in
  let proc pid =
    let svc k = Printf.sprintf "svc%d" ((pid + k) mod 6) in
    Process.make_exn ~pid
      ~activities:
        [
          single ~pid ~act:1 ~service:(svc 0) ~subsystem:(subsystem pid) ();
          single ~pid ~act:2 ~service:(svc 1) ~subsystem:(subsystem (pid + 1)) ();
          single ~pid ~act:3 ~service:(svc 2) ~subsystem:(subsystem (pid + 2)) ();
        ]
      ~prec:[ (1, 2); (2, 3) ]
      ~pref:[]
  in
  let groups = [ { Compose.gname = "head"; members = [ 1; 2 ] } ] in
  for pid = 1 to 6 do
    Scheduler.submit t ~at:(0.4 *. float_of_int pid) ~groups (proc pid)
  done;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "PRED" true (Criteria.pred h);
  check Alcotest.bool "locals commit-order serializable" true (locals_cos t);
  check Alcotest.bool "subprocess admissions recorded" true
    (Metrics.count (Scheduler.metrics t) "subprocess_admissions" > 0)

let suite =
  [
    Alcotest.test_case "enforced weak order overlaps executions" `Quick test_enforced_overlap;
    Alcotest.test_case "local history realizes the weak order" `Quick test_enforced_local_history;
    Alcotest.test_case "enforcement off keeps the legacy path" `Quick test_disabled_no_histories;
    Alcotest.test_case "predecessor abort re-invokes dependents" `Quick
      test_local_restart_on_pred_abort;
    Alcotest.test_case "dependents overlap prepared predecessors" `Quick test_prepared_overlap;
    Alcotest.test_case "subprocess admits as one unit" `Quick test_group_admits_as_unit;
    Alcotest.test_case "group validation" `Quick test_group_validation;
    Alcotest.test_case "checked engine: groups + enforcement" `Quick
      test_checked_engine_groups_enforcement;
  ]

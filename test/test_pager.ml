(* Unit and differential tests for the paged store: slotted pages, the
   buffer pool's pin/eviction/flush discipline, the WAL rule (no page
   flushed ahead of the honest durable marker), crash-reopen with
   page-LSN-guarded redo, and the kvstore version-counter regressions. *)

module Value = Tpm_kv.Value
module Store = Tpm_kv.Store
module Tx = Tpm_kv.Tx
module Pager = Tpm_kv.Pager
module Bufpool = Tpm_kv.Bufpool
module Wal = Tpm_wal.Wal
module Recovery = Tpm_wal.Recovery

let check = Alcotest.check
let value = Alcotest.testable Value.pp Value.equal

let tmp_file suffix =
  let path = Filename.temp_file "tpm_pager" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* ------------------------------------------------------------------ *)
(* Slotted page. *)

let test_page_slotted () =
  let b = Bytes.create 512 in
  Pager.Page.init b;
  check Alcotest.int "empty page has no slots" 0 (Pager.Page.nslots b);
  check Alcotest.bool "insert a" true (Pager.Page.insert b "a" "alpha");
  check Alcotest.bool "insert b" true (Pager.Page.insert b "b" "beta");
  check (Alcotest.option Alcotest.string) "find a" (Some "alpha") (Pager.Page.find b "a");
  check Alcotest.bool "replace a" true (Pager.Page.insert b "a" "ALPHA");
  check (Alcotest.option Alcotest.string) "replaced" (Some "ALPHA") (Pager.Page.find b "a");
  check Alcotest.int "replace keeps slot count" 2 (Pager.Page.nslots b);
  check Alcotest.bool "remove b" true (Pager.Page.remove b "b");
  check Alcotest.bool "remove absent" false (Pager.Page.remove b "b");
  check (Alcotest.option Alcotest.string) "b gone" None (Pager.Page.find b "b");
  Pager.Page.set_lsn b 42;
  check Alcotest.int "lsn round-trips" 42 (Pager.Page.lsn b);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "entries" [ ("a", "ALPHA") ]
    (List.sort compare (Pager.Page.entries b))

let test_page_compaction () =
  let b = Bytes.create 256 in
  Pager.Page.init b;
  (* fill the page, punch holes, then insert something that only fits
     after in-place compaction *)
  let payload = String.make 20 'x' in
  let n = ref 0 in
  while Pager.Page.insert b (Printf.sprintf "key%02d" !n) payload do
    incr n
  done;
  Alcotest.(check bool) "page filled" true (!n >= 5);
  for i = 0 to !n - 1 do
    if i mod 2 = 0 then ignore (Pager.Page.remove b (Printf.sprintf "key%02d" i))
  done;
  let big = String.make 30 'y' in
  check Alcotest.bool "insert after holes compacts" true (Pager.Page.insert b "big" big);
  check (Alcotest.option Alcotest.string) "compacted read" (Some big)
    (Pager.Page.find b "big");
  check (Alcotest.option Alcotest.string) "survivor intact" (Some payload)
    (Pager.Page.find b "key01")

let test_pager_roundtrip_and_corruption () =
  let path = tmp_file ".pages" in
  let pgr = Pager.create ~page_size:256 path in
  let p0 = Pager.alloc pgr and p1 = Pager.alloc pgr in
  let b = Bytes.create 256 in
  Pager.Page.init b;
  ignore (Pager.Page.insert b "k" "v");
  Pager.Page.set_lsn b 7;
  Pager.write pgr p1 b;
  (* p0 was allocated but never written: reads back empty (a hole) *)
  check Alcotest.int "hole page is empty" 0 (Pager.Page.nslots (Pager.read pgr p0));
  let back = Pager.read pgr p1 in
  check (Alcotest.option Alcotest.string) "written page reads back" (Some "v")
    (Pager.Page.find back "k");
  check Alcotest.int "page lsn persisted" 7 (Pager.Page.lsn back);
  Pager.close pgr;
  (* single flipped bit inside the page: a detected corruption, never a
     silent misread *)
  Wal.Chaos.flip_bit ~path ~byte:(16 + 256 + 40) ~bit:3;
  let pgr = Pager.open_ path in
  (match Pager.read_result pgr p1 with
  | Error reason -> check Alcotest.bool "crc reason" true (reason = "page crc mismatch")
  | Ok _ -> Alcotest.fail "bit flip went undetected");
  Pager.close pgr

(* ------------------------------------------------------------------ *)
(* Buffer pool discipline. *)

let test_bufpool_pin_and_eviction () =
  let path = tmp_file ".pages" in
  let pgr = Pager.create ~page_size:256 path in
  let pool = Bufpool.create ~frames:2 pgr in
  let pids = List.init 4 (fun _ -> Bufpool.alloc pool) in
  (* touch all four pages through a 2-frame pool: eviction must kick in,
     and clean evictions never write *)
  List.iter (fun pid -> Bufpool.with_page pool pid (fun _ -> ())) pids;
  let s = Bufpool.stats pool in
  check Alcotest.bool "evictions happened" true (s.Bufpool.evictions > 0);
  check Alcotest.int "clean evictions never flush" 0 s.Bufpool.flushes;
  check Alcotest.bool "residency bounded" true (s.Bufpool.resident <= 2);
  (* a pinned frame survives any pressure: pin p0, then fault every other
     page in; p0 must still be resident and the pool over-commits if it
     has to *)
  let p0 = List.hd pids in
  Bufpool.with_page pool p0 (fun _ ->
      List.iter (fun pid -> Bufpool.with_page pool pid (fun _ -> ())) (List.tl pids);
      check Alcotest.int "pinned while held" 1 (Bufpool.stats pool).Bufpool.pinned);
  check Alcotest.int "unpinned after release" 0 (Bufpool.stats pool).Bufpool.pinned;
  Pager.close pgr

let test_bufpool_flush_rule () =
  let path = tmp_file ".pages" in
  let pgr = Pager.create ~page_size:256 path in
  let pool = Bufpool.create ~frames:8 pgr in
  let durable = ref 0 and syncs = ref 0 in
  Bufpool.set_wal pool
    ~durable_lsn:(fun () -> !durable)
    ~force_durable:(fun () -> incr syncs);
  let pid = Bufpool.alloc pool in
  Bufpool.with_page_w pool pid ~lsn:5 (fun b -> ignore (Pager.Page.insert b "k" "v"));
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "dirty with rec_lsn"
    [ (pid, 5) ] (Bufpool.dirty_page_table pool);
  (* durable marker behind the page: flush must leave it dirty *)
  durable := 3;
  Bufpool.flush pool;
  check Alcotest.int "no flush ahead of durable" 0 (Bufpool.stats pool).Bufpool.flushes;
  check Alcotest.bool "still dirty" true (Bufpool.dirty_page_table pool <> []);
  (* marker catches up: now it may reach disk *)
  durable := 5;
  Bufpool.flush pool;
  check Alcotest.int "flushed once covered" 1 (Bufpool.stats pool).Bufpool.flushes;
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "clean after flush" []
    (Bufpool.dirty_page_table pool);
  check Alcotest.int "page lsn on disk" 5 (Pager.Page.lsn (Pager.read pgr pid));
  Pager.close pgr

let test_bufpool_lying_window_overflow () =
  let path = tmp_file ".pages" in
  let pgr = Pager.create ~page_size:256 path in
  let pool = Bufpool.create ~frames:1 pgr in
  let syncs = ref 0 in
  (* the marker never moves (a lying-fsync window): a 1-frame pool facing
     dirty pages must over-commit, never flush, never deadlock *)
  Bufpool.set_wal pool ~durable_lsn:(fun () -> 0) ~force_durable:(fun () -> incr syncs);
  for i = 1 to 6 do
    let pid = Bufpool.alloc pool in
    Bufpool.with_page_w pool pid ~lsn:i (fun b ->
        ignore (Pager.Page.insert b (string_of_int i) "v"))
  done;
  let s = Bufpool.stats pool in
  check Alcotest.int "nothing flushed" 0 s.Bufpool.flushes;
  check Alcotest.bool "over-committed" true (s.Bufpool.overflows > 0);
  check Alcotest.bool "eviction asked for syncs" true (!syncs > 0);
  check Alcotest.int "all six retained dirty" 6 s.Bufpool.dirty;
  check Alcotest.(option int) "min rec_lsn" (Some 1) (Bufpool.min_rec_lsn pool);
  Pager.close pgr

(* ------------------------------------------------------------------ *)
(* Store semantics: version regressions (effect-freeness, Definitions 1
   and 6) and backend equivalence. *)

let test_version_noop_neutral () =
  List.iter
    (fun s ->
      Store.set s "x" (Value.Int 7);
      let v = Store.version s in
      Store.set s "x" (Value.Int 7);
      check Alcotest.int "identical set is version-neutral" v (Store.version s);
      Store.delete s "absent";
      check Alcotest.int "absent delete is version-neutral" v (Store.version s);
      Store.set s "x" (Value.Int 8);
      check Alcotest.int "effective set bumps" (v + 1) (Store.version s);
      Store.delete s "x";
      check Alcotest.int "effective delete bumps" (v + 2) (Store.version s))
    [ Store.create (); Store.create_paged ~frames:2 ~page_size:256 (tmp_file ".pages") ]

let test_version_copy_restore () =
  let s = Store.create () in
  Store.set s "a" (Value.Int 1);
  Store.set s "b" (Value.Int 2);
  let c = Store.copy s in
  check Alcotest.int "copy is version-faithful" (Store.version s) (Store.version c);
  check Alcotest.bool "copy is content-equal" true (Store.equal_state s c);
  Store.set c "a" (Value.Int 9);
  check value "copy is detached" (Value.Int 1) (Store.get s "a");
  let v = Store.version s in
  Store.restore s (Store.snapshot s);
  check Alcotest.int "identical restore is version-neutral" v (Store.version s);
  Store.restore s [ ("a", Value.Int 5); ("a", Value.Int 6) ];
  check Alcotest.int "effective restore bumps exactly once" (v + 1) (Store.version s);
  check value "duplicate keys: last wins" (Value.Int 6) (Store.get s "a")

let test_paged_vs_mem_differential () =
  (* the same pseudo-random op stream against the hash table and against
     paged stores down to a single frame must agree at every step *)
  List.iter
    (fun frames ->
      let mem = Store.create () in
      let paged = Store.create_paged ~frames ~page_size:256 (tmp_file ".pages") in
      let rng = Random.State.make [| 0xBEEF + frames |] in
      for i = 0 to 400 do
        let key = Printf.sprintf "k%02d" (Random.State.int rng 40) in
        (match Random.State.int rng 10 with
        | 0 | 1 -> (
            Store.delete mem key;
            Store.delete paged key)
        | 2 ->
            let v = Value.Text (String.make (Random.State.int rng 60) 'p') in
            Store.set mem key v;
            Store.set paged key v
        | _ ->
            let v = Value.Int i in
            Store.set mem key v;
            Store.set paged key v);
        check value
          (Printf.sprintf "frames=%d step %d agree on %s" frames i key)
          (Store.get mem key) (Store.get paged key)
      done;
      check Alcotest.bool
        (Printf.sprintf "frames=%d final states equal" frames)
        true
        (Store.equal_state mem paged);
      check Alcotest.int
        (Printf.sprintf "frames=%d versions agree" frames)
        (Store.version mem) (Store.version paged))
    [ 1; 2; 7 ]

let test_tx_against_paged_store () =
  (* eviction mid-transaction: the tx touches far more keys than the pool
     holds frames, forcing faults while the tx buffers reads and writes *)
  let s = Store.create_paged ~frames:1 ~page_size:256 (tmp_file ".pages") in
  for i = 0 to 30 do
    Store.set s (Printf.sprintf "k%02d" i) (Value.Int i)
  done;
  let tx = Tx.begin_ s in
  for i = 0 to 30 do
    let k = Printf.sprintf "k%02d" i in
    check value "tx read through pool" (Value.Int i) (Tx.get tx k);
    if i mod 3 = 0 then Tx.set tx k (Value.Int (i * 100))
  done;
  check Alcotest.int "read set is sorted unique" 31 (List.length (Tx.read_set tx));
  check Alcotest.bool "read set sorted" true
    (let rs = Tx.read_set tx in
     List.sort String.compare rs = rs);
  Tx.commit tx;
  check value "committed through pool" (Value.Int 0) (Store.get s "k00");
  check value "committed write" (Value.Int 300) (Store.get s "k03");
  check Alcotest.bool "pool actually evicted" true
    (match Store.bufpool s with
    | Some pool -> (Bufpool.stats pool).Bufpool.evictions > 0
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Crash, reopen, page-LSN-guarded redo. *)

(* A stand-in scheduler WAL: an op log with a movable durable marker, so
   tests control exactly which prefix "survives" the crash. *)
let make_log () =
  let ops : (int * string * string option) list ref = ref [] in
  let durable = ref 0 in
  (ops, durable)

let connect store ops durable =
  Store.connect_wal store
    ~log:(fun key v ->
      ops := (List.length !ops + 1, key, v) :: !ops;
      List.length !ops)
    ~durable_lsn:(fun () -> !durable)
    ~force_durable:(fun () -> ())

let replay_into_mem ops upto =
  let m = Store.create () in
  List.iter (fun (lsn, k, v) -> if lsn <= upto then Store.redo m ~lsn k v) (List.rev ops);
  m

let test_open_paged_redo_roundtrip () =
  List.iter
    (fun frames ->
      let path = tmp_file ".pages" in
      let s = Store.create_paged ~frames ~page_size:256 path in
      let ops, durable = make_log () in
      connect s ops durable;
      let rng = Random.State.make [| 0xACE + frames |] in
      for i = 0 to 200 do
        let key = Printf.sprintf "k%02d" (Random.State.int rng 25) in
        if Random.State.int rng 5 = 0 then Store.delete s key
        else Store.set s key (Value.Int i);
        (* the marker trails the log by a random lag, so evictions flush
           some pages and are forbidden to flush others *)
        durable := max !durable (List.length !ops - Random.State.int rng 8)
      done;
      (* crash: everything past the durable marker is lost *)
      Store.freeze s;
      let survived = List.filter (fun (lsn, _, _) -> lsn <= !durable) (List.rev !ops) in
      (match Store.bufpool s with
      | Some pool -> Pager.close (Bufpool.pager pool)
      | None -> assert false);
      let recovered, anomalies = Store.open_paged ~frames path in
      check Alcotest.int "clean pages, no anomalies" 0 (List.length anomalies);
      let plan =
        Recovery.kv_redo ~rm:"s"
          (List.map (fun (_, k, v) -> Wal.Kv_write { rm = "s"; key = k; value = v }) survived)
      in
      List.iter (fun (lsn, k, v) -> Store.redo recovered ~lsn k v) plan.Recovery.ops;
      let expected = replay_into_mem !ops !durable in
      check Alcotest.bool
        (Printf.sprintf "frames=%d recovered = durable replay" frames)
        true
        (Store.equal_state recovered expected))
    [ 1; 3; 16 ]

let test_salvage_with_full_redo () =
  let path = tmp_file ".pages" in
  let s = Store.create_paged ~frames:4 ~page_size:256 path in
  let ops, durable = make_log () in
  connect s ops durable;
  for i = 0 to 60 do
    Store.set s (Printf.sprintf "k%02d" (i mod 20)) (Value.Int i);
    durable := List.length !ops
  done;
  Store.flush s;
  (match Store.bufpool s with
  | Some pool -> Pager.close (Bufpool.pager pool)
  | None -> assert false);
  (* tear one page: fail-stop refuses, salvage quarantines and reports,
     and a full-log redo restores every key exactly *)
  Wal.Chaos.flip_bit ~path ~byte:(16 + 30) ~bit:0;
  (match Store.open_paged ~policy:`Fail_stop path with
  | exception Pager.Corrupt_page _ -> ()
  | _ -> Alcotest.fail "fail-stop open accepted a torn page");
  let recovered, anomalies = Store.open_paged ~policy:`Salvage path in
  check Alcotest.bool "torn page reported" true (anomalies <> []);
  List.iter (fun (lsn, k, v) -> Store.redo recovered ~lsn k v) (List.rev !ops);
  let expected = replay_into_mem !ops !durable in
  check Alcotest.bool "salvage + full redo = expected" true
    (Store.equal_state recovered expected)

let test_kv_redo_bound () =
  let w k i = Wal.Kv_write { rm = "r"; key = k; value = Some (string_of_int i) } in
  (* no snapshot: redo starts at 1 *)
  let plan = Recovery.kv_redo ~rm:"r" [ w "a" 1; w "b" 2 ] in
  check Alcotest.int "no snapshot: start 1" 1 plan.Recovery.start_lsn;
  check Alcotest.int "all ops" 2 (List.length plan.Recovery.ops);
  (* snapshot with a dirty page: start at its min rec_lsn *)
  let records =
    [ w "a" 1; w "b" 2; Wal.Dirty_pages { rm = "r"; pages = [ (0, 2) ] }; w "c" 4 ]
  in
  let plan = Recovery.kv_redo ~rm:"r" records in
  check Alcotest.int "bounded by min rec_lsn" 2 plan.Recovery.start_lsn;
  check
    (Alcotest.list Alcotest.int)
    "ops at or past the bound" [ 2; 4 ]
    (List.map (fun (lsn, _, _) -> lsn) plan.Recovery.ops);
  (* empty table: everything before the snapshot is clean *)
  let records = [ w "a" 1; w "b" 2; Wal.Dirty_pages { rm = "r"; pages = [] }; w "c" 4 ] in
  let plan = Recovery.kv_redo ~rm:"r" records in
  check Alcotest.int "empty table: start at snapshot" 3 plan.Recovery.start_lsn;
  check Alcotest.int "one op left" 1 (List.length plan.Recovery.ops);
  (* records of other resource managers never leak into the plan *)
  let plan =
    Recovery.kv_redo ~rm:"r" [ Wal.Kv_write { rm = "other"; key = "x"; value = None } ]
  in
  check Alcotest.int "foreign rm filtered" 0 (List.length plan.Recovery.ops)

let suite =
  [
    Alcotest.test_case "slotted page basics" `Quick test_page_slotted;
    Alcotest.test_case "page compaction" `Quick test_page_compaction;
    Alcotest.test_case "pager roundtrip and corruption" `Quick test_pager_roundtrip_and_corruption;
    Alcotest.test_case "bufpool pin and eviction" `Quick test_bufpool_pin_and_eviction;
    Alcotest.test_case "bufpool flush rule" `Quick test_bufpool_flush_rule;
    Alcotest.test_case "lying window over-commits" `Quick test_bufpool_lying_window_overflow;
    Alcotest.test_case "no-op writes are version-neutral" `Quick test_version_noop_neutral;
    Alcotest.test_case "copy/restore version contract" `Quick test_version_copy_restore;
    Alcotest.test_case "paged = mem differential" `Quick test_paged_vs_mem_differential;
    Alcotest.test_case "tx across evictions" `Quick test_tx_against_paged_store;
    Alcotest.test_case "crash, reopen, bounded redo" `Quick test_open_paged_redo_roundtrip;
    Alcotest.test_case "salvage + full redo" `Quick test_salvage_with_full_redo;
    Alcotest.test_case "kv_redo bound" `Quick test_kv_redo_bound;
  ]

(* Unit tests for the simulation substrate: graphs, heap, PRNG,
   discrete-event engine and metrics. *)

open Tpm_core
module Heap = Tpm_sim.Heap
module Prng = Tpm_sim.Prng
module Des = Tpm_sim.Des
module Metrics = Tpm_sim.Metrics

let check = Alcotest.check

(* --- Digraph --- *)

let test_digraph_cycles () =
  let acyclic = Digraph.make ~nodes:[ 1; 2; 3 ] ~edges:[ (1, 2); (2, 3) ] in
  check Alcotest.bool "acyclic" false (Digraph.has_cycle acyclic);
  check Alcotest.(option (list int)) "topological order" (Some [ 1; 2; 3 ])
    (Digraph.topo_sort acyclic);
  let cyclic = Digraph.make ~nodes:[] ~edges:[ (1, 2); (2, 3); (3, 1) ] in
  check Alcotest.bool "cyclic" true (Digraph.has_cycle cyclic);
  check Alcotest.bool "no topological order" true (Digraph.topo_sort cyclic = None);
  match Digraph.find_cycle cyclic with
  | None -> Alcotest.fail "cycle not found"
  | Some cyc -> check Alcotest.int "cycle length" 3 (List.length cyc)

let test_digraph_reachable () =
  let g = Digraph.make ~nodes:[ 9 ] ~edges:[ (1, 2); (2, 3); (4, 2) ] in
  check Alcotest.bool "1 reaches 3" true (Digraph.reachable g 1 3);
  check Alcotest.bool "3 does not reach 1" false (Digraph.reachable g 3 1);
  check Alcotest.bool "isolated node" false (Digraph.reachable g 9 1);
  check Alcotest.bool "self not reachable without cycle" false (Digraph.reachable g 1 1);
  let loop = Digraph.make ~nodes:[] ~edges:[ (1, 2); (2, 1) ] in
  check Alcotest.bool "self reachable through cycle" true (Digraph.reachable loop 1 1)

let test_digraph_self_edges_dropped () =
  let g = Digraph.make ~nodes:[] ~edges:[ (1, 1); (1, 2) ] in
  check Alcotest.bool "self edge dropped" false (Digraph.has_cycle g);
  check Alcotest.int "one edge" 1 (List.length (Digraph.edges g))

let test_digraph_transitive_closure () =
  let g = Digraph.make ~nodes:[] ~edges:[ (1, 2); (2, 3) ] in
  check
    Alcotest.(list (pair int int))
    "closure" [ (1, 2); (1, 3); (2, 3) ]
    (List.sort compare (Digraph.transitive_closure g))

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k k) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (k, _) -> drain (k :: acc)
  in
  check Alcotest.(list (float 0.0)) "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (drain []);
  check Alcotest.bool "empty after drain" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~key:1.0 "first";
  Heap.push h ~key:1.0 "second";
  Heap.push h ~key:1.0 "third";
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  check Alcotest.(list string) "insertion order on equal keys" [ "first"; "second"; "third" ]
    [ x1; x2; x3 ]

(* Regression: [pop] used to leave the popped entry (and the swapped-down
   tail slot) reachable from the backing array, pinning arbitrarily large
   payloads until the slot happened to be overwritten.  The payloads are
   watched through weak pointers: after popping, a major GC must collect
   them while the remaining element stays alive. *)
let test_heap_pop_clears_slots () =
  let h = Heap.create () in
  let w = Weak.create 3 in
  List.iteri
    (fun i k ->
      let v = ref (k * 100) in
      Weak.set w i (Some v);
      Heap.push h ~key:(float_of_int k) v)
    [ 0; 1; 2 ];
  ignore (Heap.pop h);
  ignore (Heap.pop h);
  Gc.full_major ();
  check Alcotest.bool "popped payload 0 collected" false (Weak.check w 0);
  check Alcotest.bool "popped payload 1 collected" false (Weak.check w 1);
  check Alcotest.bool "remaining payload alive" true (Weak.check w 2);
  match Heap.pop h with
  | Some (_, v) -> check Alcotest.int "remaining value intact" 200 !v
  | None -> Alcotest.fail "heap lost its element"

(* --- Prng --- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let seq rng = List.init 20 (fun _ -> Prng.int rng 1000) in
  check Alcotest.(list int) "same seed, same stream" (seq a) (seq b);
  let c = Prng.create 43 in
  check Alcotest.bool "different seed, different stream" true (seq (Prng.create 42) <> seq c)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.fail "int out of bounds";
    let f = Prng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_prng_chance_extremes () =
  let rng = Prng.create 3 in
  for _ = 1 to 100 do
    if Prng.chance rng 0.0 then Alcotest.fail "chance 0 fired";
    if not (Prng.chance rng 1.0) then Alcotest.fail "chance 1 missed"
  done

let test_prng_split_independent () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.int a 100) in
  let ys = List.init 10 (fun _ -> Prng.int b 100) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 9 in
  let l = [ 1; 2; 3; 4; 5; 6 ] in
  let s = Prng.shuffle rng l in
  check Alcotest.(list int) "same elements" l (List.sort compare s)

(* --- Des --- *)

let test_des_ordering () =
  let sim = Des.create () in
  let log = ref [] in
  Des.at sim 2.0 (fun _ -> log := "b" :: !log);
  Des.at sim 1.0 (fun _ -> log := "a" :: !log);
  Des.at sim 3.0 (fun _ -> log := "c" :: !log);
  Des.run sim;
  check Alcotest.(list string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check (Alcotest.float 0.0) "clock at last event" 3.0 (Des.now sim)

let test_des_nested_scheduling () =
  let sim = Des.create () in
  let log = ref [] in
  Des.at sim 1.0 (fun sim ->
      log := "outer" :: !log;
      Des.after sim 0.5 (fun _ -> log := "inner" :: !log));
  Des.run sim;
  check Alcotest.(list string) "nested events run" [ "outer"; "inner" ] (List.rev !log);
  check (Alcotest.float 0.0) "clock advanced" 1.5 (Des.now sim)

let test_des_until () =
  let sim = Des.create () in
  let fired = ref 0 in
  Des.at sim 1.0 (fun _ -> incr fired);
  Des.at sim 5.0 (fun _ -> incr fired);
  Des.run ~until:2.0 sim;
  check Alcotest.int "only events before the horizon" 1 !fired;
  check Alcotest.int "event still pending" 1 (Des.pending sim);
  Des.run sim;
  check Alcotest.int "drained afterwards" 2 !fired

let test_des_rejects_past () =
  let sim = Des.create () in
  Des.at sim 1.0 (fun sim ->
      match Des.at sim 0.5 (fun _ -> ()) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "past scheduling accepted");
  Des.run sim

(* --- Metrics --- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m "a" ~by:2;
  Metrics.incr m "b";
  check Alcotest.int "a = 3" 3 (Metrics.count m "a");
  check Alcotest.int "unknown = 0" 0 (Metrics.count m "zzz");
  check Alcotest.(list (pair string int)) "counters sorted" [ ("a", 3); ("b", 1) ]
    (Metrics.counters m)

let test_metrics_series () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 1.0; 3.0; 2.0 ];
  check Alcotest.(list (float 0.0)) "chronological" [ 1.0; 3.0; 2.0 ] (Metrics.samples m "lat");
  check (Alcotest.float 0.001) "mean" 2.0 (Metrics.mean m "lat");
  check (Alcotest.float 0.001) "total" 6.0 (Metrics.total m "lat");
  check (Alcotest.float 0.001) "median" 2.0 (Metrics.quantile m "lat" 0.5);
  check (Alcotest.float 0.001) "max" 3.0 (Metrics.max_value m "lat")

(* Regression: [max_value] of an unknown/empty series returned
   [neg_infinity] (the fold seed); it now returns [nan] like [mean] and
   [quantile]. *)
let test_metrics_empty_series () =
  let m = Metrics.create () in
  check Alcotest.bool "max of empty is nan" true
    (Float.is_nan (Metrics.max_value m "none"));
  check Alcotest.bool "min of empty is nan" true
    (Float.is_nan (Metrics.min_value m "none"));
  check Alcotest.bool "quantile of empty is nan" true
    (Float.is_nan (Metrics.quantile m "none" 0.5));
  check Alcotest.bool "hquantile of empty is nan" true
    (Float.is_nan (Metrics.hquantile m "none" 0.5))

let suite =
  [
    Alcotest.test_case "digraph: cycles and topo" `Quick test_digraph_cycles;
    Alcotest.test_case "digraph: reachability" `Quick test_digraph_reachable;
    Alcotest.test_case "digraph: self edges" `Quick test_digraph_self_edges_dropped;
    Alcotest.test_case "digraph: transitive closure" `Quick test_digraph_transitive_closure;
    Alcotest.test_case "heap: ordering" `Quick test_heap_order;
    Alcotest.test_case "heap: FIFO on ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap: pop clears its slots" `Quick test_heap_pop_clears_slots;
    Alcotest.test_case "prng: determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng: bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng: chance extremes" `Quick test_prng_chance_extremes;
    Alcotest.test_case "prng: split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "prng: shuffle is a permutation" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "des: time ordering" `Quick test_des_ordering;
    Alcotest.test_case "des: nested scheduling" `Quick test_des_nested_scheduling;
    Alcotest.test_case "des: horizon" `Quick test_des_until;
    Alcotest.test_case "des: rejects the past" `Quick test_des_rejects_past;
    Alcotest.test_case "metrics: counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics: series" `Quick test_metrics_series;
    Alcotest.test_case "metrics: empty series are nan" `Quick test_metrics_empty_series;
  ]

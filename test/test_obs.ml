(* Unit tests of the observability layer: the tracer's ring buffer,
   sink fan-out against the virtual clock, the fixed-bucket histogram in
   Metrics, and the scheduler's admission explain payloads. *)

module Obs = Tpm_obs.Obs
module Metrics = Tpm_sim.Metrics
module Scheduler = Tpm_scheduler.Scheduler
module Cim = Tpm_workload.Cim
module Faults = Tpm_sim.Faults

let check = Alcotest.check

(* --- ring buffer --- *)

let note_texts events =
  List.map (function _, Obs.Note s -> Lazy.force s | _ -> "?") events

let test_ring_wraparound () =
  let tr = Obs.Tracer.create ~ring_capacity:4 () in
  for i = 1 to 10 do
    Obs.Tracer.emit tr (Obs.Note (lazy (string_of_int i)))
  done;
  check Alcotest.int "all emissions counted" 10 (Obs.Tracer.emitted tr);
  check Alcotest.(list string) "last cap events, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (note_texts (Obs.Tracer.recent tr));
  check Alcotest.(list string) "recent ~n keeps the newest" [ "9"; "10" ]
    (note_texts (Obs.Tracer.recent ~n:2 tr));
  check Alcotest.(list string) "~n larger than cap is clamped"
    [ "7"; "8"; "9"; "10" ]
    (note_texts (Obs.Tracer.recent ~n:99 tr))

let test_disabled_tracer_inert () =
  let tr = Obs.Tracer.disabled in
  Obs.Tracer.emit tr (Obs.Note (lazy "dropped"));
  check Alcotest.bool "not active" false (Obs.Tracer.active tr);
  check Alcotest.int "nothing counted" 0 (Obs.Tracer.emitted tr);
  check Alcotest.(list string) "nothing recorded" [] (note_texts (Obs.Tracer.recent tr))

(* --- sinks vs. the virtual clock --- *)

let test_sink_sees_virtual_clock () =
  let seen = ref [] in
  let sink = Obs.Sink.make (fun ts ev -> seen := (ts, ev) :: !seen) in
  let tr = Obs.Tracer.create ~ring_capacity:2 ~sinks:[ sink ] () in
  let now = ref 0.0 in
  Obs.Tracer.set_clock tr (fun () -> !now);
  Obs.Tracer.emit tr (Obs.Note (lazy "a"));
  now := 1.5;
  Obs.Tracer.emit tr (Obs.Note (lazy "b"));
  now := 7.25;
  Obs.Tracer.emit tr (Obs.Commit 3);
  let seen = List.rev !seen in
  check
    Alcotest.(list (float 0.0))
    "sink timestamps follow the clock" [ 0.0; 1.5; 7.25 ] (List.map fst seen);
  check Alcotest.int "sink saw every event" 3 (List.length seen);
  (* the ring (capacity 2) holds the same stamps for the newest events *)
  check
    Alcotest.(list (float 0.0))
    "ring agrees on the tail" [ 1.5; 7.25 ]
    (List.map fst (Obs.Tracer.recent tr))

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* the file sinks: one JSON object per line for JSONL; dispatch→occurrence
   pairs become complete spans ("ph":"X") in the Chrome export, with the
   process id as the timeline lane *)
let test_file_sinks () =
  let jsonl_path = Filename.temp_file "tpm_obs_test" ".jsonl" in
  let chrome_path = Filename.temp_file "tpm_obs_test" ".chrome.json" in
  let tr =
    Obs.Tracer.create ~ring_capacity:8
      ~sinks:[ Obs.Sink.jsonl jsonl_path; Obs.Sink.chrome chrome_path ]
      ()
  in
  let now = ref 1.0 in
  Obs.Tracer.set_clock tr (fun () -> !now);
  Obs.Tracer.emit tr
    (Obs.Dispatch { pid = 4; act = 2; service = "svc"; prepare_only = false });
  now := 3.5;
  Obs.Tracer.emit tr
    (Obs.Occurrence { pid = 4; act = 2; service = "svc"; inverse = false });
  Obs.Tracer.emit tr (Obs.Commit 4);
  Obs.Tracer.close tr;
  let jsonl = read_file jsonl_path in
  let chrome = read_file chrome_path in
  Sys.remove jsonl_path;
  Sys.remove chrome_path;
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  check Alcotest.int "one JSONL line per event" 3 (List.length lines);
  check Alcotest.bool "JSONL carries the virtual timestamp" true
    (contains ~needle:"\"ts\":1," (List.nth lines 0)
    && contains ~needle:"\"ts\":3.5," (List.nth lines 1));
  check Alcotest.bool "JSONL names the event kind" true
    (contains ~needle:"\"ev\":\"dispatch\"" (List.nth lines 0));
  check Alcotest.bool "chrome pairs dispatch/occurrence into a span" true
    (contains ~needle:"\"ph\":\"X\"" chrome);
  check Alcotest.bool "chrome span lives in the process lane" true
    (contains ~needle:"\"tid\":4" chrome);
  check Alcotest.bool "chrome span duration is the gap" true
    (contains ~needle:"\"dur\":2500000" chrome)

(* --- histogram buckets --- *)

let test_histogram_boundaries () =
  let m = Metrics.create () in
  (* 1.0 = 10^0 is an exact bucket bound; intervals are right-open, so
     the sample must land in [1.0, 10^0.25), not below it *)
  Metrics.observe m "s" 1.0;
  Metrics.observe m "s" 1e-12 (* underflow *);
  Metrics.observe m "s" 1e7 (* overflow *);
  match Metrics.hist_buckets m "s" with
  | [ (lo0, hi0, n0); (lo1, hi1, n1); (lo2, hi2, n2) ] ->
      check (Alcotest.float 0.0) "underflow lo" 0.0 lo0;
      check Alcotest.bool "underflow hi = 1e-9" true (abs_float (hi0 -. 1e-9) < 1e-18);
      check Alcotest.int "underflow count" 1 n0;
      check (Alcotest.float 0.0) "bucket holding 1.0 starts exactly at 1.0" 1.0 lo1;
      check Alcotest.bool "its hi is 10^0.25" true
        (abs_float (hi1 -. (10.0 ** 0.25)) < 1e-9);
      check Alcotest.int "unit count" 1 n1;
      check Alcotest.bool "overflow lo = 1e6" true (abs_float (lo2 -. 1e6) < 1e-3);
      check Alcotest.bool "overflow hi infinite" true (hi2 = infinity);
      check Alcotest.int "overflow count" 1 n2
  | buckets ->
      Alcotest.fail
        (Printf.sprintf "expected 3 non-empty buckets, got %d" (List.length buckets))

(* The bucketed estimate is the geometric midpoint of the bucket holding
   the exact nearest-rank sample, so it is within one half-bucket — a
   factor 10^0.125 ~ 1.334 — of the exact quantile. *)
let test_hquantile_tolerance () =
  let m = Metrics.create () in
  (* deterministic pseudo-random samples spanning [0.1, 10) — two decades *)
  let x = ref 123456789 in
  for _ = 1 to 1000 do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    let u = float_of_int !x /. float_of_int 0x40000000 in
    Metrics.observe m "lat" (0.1 *. (10.0 ** (2.0 *. u)))
  done;
  List.iter
    (fun q ->
      let exact = Metrics.quantile m "lat" q in
      let est = Metrics.hquantile m "lat" q in
      let ratio = est /. exact in
      if ratio < 0.74 || ratio > 1.34 then
        Alcotest.fail
          (Printf.sprintf "q=%.2f: hquantile %g vs exact %g (ratio %.3f)" q est
             exact ratio))
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]

(* --- admission explain payloads --- *)

let events_of t = List.map snd (Obs.Tracer.recent (Scheduler.tracer t))

let cim_setup ?(config = Scheduler.default_config) ?(faults = Faults.none) part =
  let parts = [ part ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let tracer = Obs.Tracer.create ~ring_capacity:4096 () in
  Scheduler.create ~config ~faults ~tracer ~spec ~rms ()

let test_explain_admit () =
  let t = cim_setup "p1" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"p1");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let admits =
    List.filter_map
      (function
        | Obs.Admission { decision = Obs.Invoke; reason; edges; _ } ->
            Some (reason, edges)
        | _ -> None)
      (events_of t)
  in
  check Alcotest.bool "at least one invoke admission" true (admits <> []);
  List.iter
    (fun (reason, edges) ->
      check Alcotest.bool "a lone process admits clear" true (reason = Obs.Clear);
      check Alcotest.bool "with no dependency edges" true (edges = []))
    admits

(* figure-1 scenario under Conservative mode: the production pivot has an
   uncommitted conflicting predecessor, so its admission is a Delay whose
   explain payload names the blocker *)
let test_explain_reject () =
  let config =
    {
      Scheduler.default_config with
      Scheduler.mode = Scheduler.Conservative;
      service_time = (fun s -> if s = "tech_doc:boiler" then 5.0 else 1.0);
    }
  in
  let t = cim_setup ~config "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let delays =
    List.filter_map
      (function
        | Obs.Admission { pid; decision = Obs.Delay blockers; reason; _ } ->
            Some (pid, blockers, reason)
        | _ -> None)
      (events_of t)
  in
  check Alcotest.bool "the production process was delayed" true
    (List.exists (fun (pid, _, _) -> pid = 2) delays);
  List.iter
    (fun (_, blockers, _) ->
      check Alcotest.bool "a delay names its blockers" true (blockers <> []))
    delays;
  check Alcotest.bool "at least one delay is the conservative wait" true
    (List.exists (fun (_, _, reason) -> reason = Obs.Conservative_wait) delays)

let test_explain_deflect () =
  let faults =
    Faults.make
      ~outages:[ Faults.outage ~subsystem:"testdb" ~from_:0.0 ~until_:1000.0 ]
      ()
  in
  let t = cim_setup ~faults "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "outage deflection traced with its flag" true
    (List.exists
       (function
         | Obs.Deflect { pid = 1; outage = true; _ } -> true
         | _ -> false)
       (events_of t))

let suite =
  [
    Alcotest.test_case "ring: wraparound keeps the newest" `Quick test_ring_wraparound;
    Alcotest.test_case "ring: disabled tracer is inert" `Quick test_disabled_tracer_inert;
    Alcotest.test_case "sink: timestamps follow the virtual clock" `Quick
      test_sink_sees_virtual_clock;
    Alcotest.test_case "sink: jsonl and chrome file exports" `Quick test_file_sinks;
    Alcotest.test_case "histogram: bucket boundaries" `Quick test_histogram_boundaries;
    Alcotest.test_case "histogram: hquantile within one bucket of exact" `Quick
      test_hquantile_tolerance;
    Alcotest.test_case "explain: clean admit" `Quick test_explain_admit;
    Alcotest.test_case "explain: conservative delay" `Quick test_explain_reject;
    Alcotest.test_case "explain: outage deflection" `Quick test_explain_deflect;
  ]

(* The message-driven, durably-logged, presumed-abort 2PC coordinator:
   fault-free record sequence, retransmission through loss, idempotence
   under duplication, the participant-side termination protocol, and the
   scheduler-level guarantee that a durable commit decision survives any
   crash or message loss.  Also the vote-collection fix of the legacy
   synchronous [Twopc.run] and the idempotence of [Recovery.analyze]
   under duplicated/reordered [Prepared_decided] records. *)

open Tpm_core
module Des = Tpm_sim.Des
module Bus = Tpm_sim.Bus
module Prng = Tpm_sim.Prng
module Faults = Tpm_sim.Faults
module Metrics = Tpm_sim.Metrics
module Wal = Tpm_wal.Wal
module Recovery = Tpm_wal.Recovery
module Twopc = Tpm_twopc.Twopc
module Coordinator = Tpm_twopc.Coordinator
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Value = Tpm_kv.Value
module Tx = Tpm_kv.Tx
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator

let check = Alcotest.check
let value = Alcotest.testable Value.pp Value.equal

let counter_registry () =
  let reg = Service.Registry.create () in
  Service.Registry.register reg
    (Service.make ~name:"incr" ~compensation:(Service.Inverse_service "decr")
       ~reads:[ "n" ] ~writes:[ "n" ]
       (fun tx ~args:_ ->
         let v =
           Value.int_exn (match Tx.get tx "n" with Value.Nil -> Value.Int 0 | v -> v)
         in
         Tx.set tx "n" (Value.Int (v + 1));
         Value.Int (v + 1)));
  Service.Registry.register reg
    (Service.make ~name:"decr" ~reads:[ "n" ] ~writes:[ "n" ]
       (fun tx ~args:_ ->
         let v =
           Value.int_exn (match Tx.get tx "n" with Value.Nil -> Value.Int 0 | v -> v)
         in
         Tx.set tx "n" (Value.Int (v - 1));
         Value.Int (v - 1)));
  reg

let prepared_rm ~name ~token =
  let rm = Rm.create ~name ~registry:(counter_registry ()) () in
  (match Rm.prepare rm ~token ~service:"incr" () with
  | Rm.Prepared _ -> ()
  | _ -> Alcotest.fail "prepare failed");
  rm

type world = {
  sim : Des.t;
  bus : Coordinator.msg Bus.t;
  coord : Coordinator.t;
  metrics : Metrics.t;
  records : Wal.record list ref;
}

let world ?faults ?retransmit_after ?inquiry_after rms =
  let sim = Des.create () in
  let metrics = Metrics.create () in
  let bus = Bus.create ~sim ~rng:(Prng.create 3) ~metrics ?faults () in
  let records = ref [] in
  let coord =
    Coordinator.create ~sim ~bus
      ~log:(fun r -> records := r :: !records)
      ~metrics ?retransmit_after ()
  in
  List.iter
    (fun rm -> Coordinator.Participant.attach ~sim ~bus ~rm ~metrics ?inquiry_after ())
    rms;
  { sim; bus; coord; metrics; records }

(* ------------------------------------------------------------------ *)
(* satellite: the legacy synchronous protocol logs every vote *)

let test_run_collects_all_votes () =
  let aborted = ref [] in
  let part id v =
    {
      Twopc.id;
      vote = (fun () -> v);
      commit = (fun () -> Alcotest.fail "commit after a refusal");
      abort = (fun () -> aborted := id :: !aborted);
    }
  in
  let log = ref [] in
  let d =
    Twopc.run
      ~on_log:(fun e -> log := e :: !log)
      [ part "a" true; part "b" false; part "c" true ]
  in
  check Alcotest.bool "aborted" true (d = Twopc.Aborted);
  let votes = List.filter (function Twopc.Voted _ -> true | _ -> false) !log in
  check Alcotest.int "every participant voted" 3 (List.length votes);
  check Alcotest.bool "the vote after the refusal was still collected" true
    (List.mem (Twopc.Voted ("c", true)) !log);
  check Alcotest.(list string) "all participants aborted" [ "a"; "b"; "c" ]
    (List.sort compare !aborted)

(* ------------------------------------------------------------------ *)
(* coordinator: fault-free WAL record sequence, synchronous completion *)

let test_fault_free_records () =
  let rm1 = prepared_rm ~name:"db1" ~token:1 in
  let rm2 = prepared_rm ~name:"db2" ~token:2 in
  let w = world [ rm1; rm2 ] in
  let decision = ref None in
  let cid =
    Coordinator.start w.coord ~pid:1 ~act:2
      ~participants:[ (rm1, 1); (rm2, 2) ]
      ~on_done:(fun ~commit -> decision := Some commit)
  in
  (* a fault-free bus delivers synchronously: the round completed inside
     [start], without the virtual clock moving *)
  check Alcotest.(option bool) "committed" (Some true) !decision;
  check Alcotest.int "no open instances" 0 (Coordinator.open_instances w.coord);
  (match List.rev !(w.records) with
  | [
   Wal.Coord_begin { cid = c1; pid = 1; act = 2; parts };
   Wal.Coord_committed { cid = c2; pid = 1 };
   Wal.Coord_forgotten { cid = c3; pid = 1 };
  ] ->
      check Alcotest.(list string) "participants logged" [ "db1"; "db2" ] parts;
      check Alcotest.(list int) "one cid throughout" [ cid; cid ] [ c2; c3 ];
      check Alcotest.int "begin cid" cid c1
  | rs ->
      Alcotest.failf "unexpected log: %a"
        (Format.pp_print_list Wal.pp_record) rs);
  Des.run w.sim;
  check Alcotest.(float 0.0) "clock never moved" 0.0 (Des.now w.sim);
  check value "rm1 committed" (Value.Int 1) (Store.get (Rm.store rm1) "n");
  check value "rm2 committed" (Value.Int 1) (Store.get (Rm.store rm2) "n")

(* a refused vote: presumed abort — no commit record is ever written *)
let test_fault_free_abort_unlogged () =
  let rm1 = prepared_rm ~name:"db1" ~token:1 in
  let rm2 = Rm.create ~name:"db2" ~registry:(counter_registry ()) () in
  (* rm2 holds no prepared token: it votes no *)
  let w = world [ rm1; rm2 ] in
  let decision = ref None in
  ignore
    (Coordinator.start w.coord ~pid:1 ~act:2
       ~participants:[ (rm1, 1); (rm2, 9) ]
       ~on_done:(fun ~commit -> decision := Some commit));
  Des.run w.sim;
  check Alcotest.(option bool) "aborted" (Some false) !decision;
  check Alcotest.bool "no Coord_committed for an abort" true
    (List.for_all
       (function Wal.Coord_committed _ -> false | _ -> true)
       !(w.records));
  check value "rm1 rolled back" Value.Nil (Store.get (Rm.store rm1) "n");
  check Alcotest.(list int) "nothing prepared" [] (Rm.prepared_tokens rm1)

(* ------------------------------------------------------------------ *)
(* retransmission drives the round through total early loss *)

let test_retransmit_through_loss () =
  let rm = prepared_rm ~name:"db" ~token:1 in
  (* everything the coordinator sends to db is lost before t=1.5: the
     initial PREPARE and its first retransmission die, the second
     retransmission (t=2) gets through *)
  let faults =
    Faults.make
      ~msg_faults:[ Faults.link_fault ~dst:"db" ~from_:0.0 ~until_:1.5 ~drop:1.0 () ]
      ()
  in
  let w = world ~faults [ rm ] in
  let decision = ref None in
  ignore
    (Coordinator.start w.coord ~pid:1 ~act:2 ~participants:[ (rm, 1) ]
       ~on_done:(fun ~commit -> decision := Some commit));
  Des.run w.sim;
  check Alcotest.(option bool) "committed despite loss" (Some true) !decision;
  check value "effects applied once" (Value.Int 1) (Store.get (Rm.store rm) "n");
  check Alcotest.bool "retransmissions counted" true
    (Metrics.count w.metrics "msg_retransmits" >= 2);
  check Alcotest.bool "drops counted" true (Metrics.count w.metrics "msg_dropped" >= 2);
  check Alcotest.bool "commit decision durable" true
    (List.exists
       (function Wal.Coord_committed _ -> true | _ -> false)
       !(w.records))

(* ------------------------------------------------------------------ *)
(* duplicating every message must not duplicate any effect *)

let test_duplicates_idempotent () =
  let rm = prepared_rm ~name:"db" ~token:1 in
  let faults =
    Faults.make ~msg_faults:(Faults.uniform_msg_faults ~dup:1.0 ~horizon:100.0 ()) ()
  in
  let w = world ~faults [ rm ] in
  let done_count = ref 0 in
  ignore
    (Coordinator.start w.coord ~pid:1 ~act:2 ~participants:[ (rm, 1) ]
       ~on_done:(fun ~commit ->
         incr done_count;
         check Alcotest.bool "committed" true commit));
  Des.run w.sim;
  check Alcotest.int "decision delivered exactly once" 1 !done_count;
  check value "exactly one increment" (Value.Int 1) (Store.get (Rm.store rm) "n");
  check Alcotest.bool "duplicates counted" true
    (Metrics.count w.metrics "msg_duplicated" > 0);
  check Alcotest.int "exactly one durable commit record" 1
    (List.length
       (List.filter
          (function Wal.Coord_committed _ -> true | _ -> false)
          !(w.records)))

(* ------------------------------------------------------------------ *)
(* termination protocol: an in-doubt participant pulls the decision by
   inquiry long before the (deliberately glacial) coordinator timer *)

let test_inquiry_pulls_decision () =
  let rm = prepared_rm ~name:"db" ~token:1 in
  let faults =
    Faults.make
      ~msg_faults:
        [
          (* the vote leaves at t=0 and is delayed into (0, 2) *)
          Faults.link_fault ~src:"db" ~dst:"coord" ~from_:0.0 ~until_:0.1 ~delay:2.0 ();
          (* every DECISION sent before t=3 is lost *)
          Faults.link_fault ~src:"coord" ~dst:"db" ~from_:0.5 ~until_:3.0 ~drop:1.0 ();
        ]
      ()
  in
  let w = world ~faults ~retransmit_after:50.0 ~inquiry_after:1.0 [ rm ] in
  let decision = ref None in
  ignore
    (Coordinator.start w.coord ~pid:1 ~act:2 ~participants:[ (rm, 1) ]
       ~on_done:(fun ~commit -> decision := Some commit));
  Des.run w.sim;
  check Alcotest.(option bool) "committed" (Some true) !decision;
  check value "effects applied" (Value.Int 1) (Store.get (Rm.store rm) "n");
  check Alcotest.bool "inquiries sent" true (Metrics.count w.metrics "msg_inquiries" >= 1);
  check Alcotest.bool "resolved via inquiry, not the 50-unit retransmission" true
    (Des.now w.sim < 10.0)

(* cooperative termination: a sibling's memory of the decision *)
let test_cooperative_decision () =
  let rm1 = Rm.create ~name:"db1" ~registry:(counter_registry ()) () in
  let rm2 = Rm.create ~name:"db2" ~registry:(counter_registry ()) () in
  let rms = [ rm1; rm2 ] in
  check Alcotest.bool "nobody remembers: presume abort" false
    (Coordinator.cooperative_decision ~rms ~cid:7);
  Rm.record_decision rm2 ~cid:7 ~commit:true;
  check Alcotest.bool "a sibling saw the commit" true
    (Coordinator.cooperative_decision ~rms ~cid:7);
  Rm.record_decision rm1 ~cid:8 ~commit:false;
  check Alcotest.bool "a remembered abort is not a commit" false
    (Coordinator.cooperative_decision ~rms ~cid:8)

(* ------------------------------------------------------------------ *)
(* satellite: Rm.is_prepared agrees with the token table *)

let test_is_prepared () =
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) () in
  check Alcotest.bool "nothing prepared" false (Rm.is_prepared rm ~token:1);
  ignore (Rm.prepare rm ~token:1 ~service:"incr" ());
  check Alcotest.bool "prepared" true (Rm.is_prepared rm ~token:1);
  check Alcotest.bool "agrees with prepared_tokens" true
    (List.mem 1 (Rm.prepared_tokens rm));
  Rm.commit_prepared rm ~token:1;
  check Alcotest.bool "gone after commit" false (Rm.is_prepared rm ~token:1);
  ignore (Rm.prepare rm ~token:2 ~service:"incr" ());
  Rm.abort_prepared rm ~token:2;
  check Alcotest.bool "gone after abort" false (Rm.is_prepared rm ~token:2)

(* ------------------------------------------------------------------ *)
(* scheduler level: a durable commit decision survives the crash even
   though the DECISION message never reached the participant *)

let sched_params =
  {
    Generator.default_params with
    activities_min = 3;
    activities_max = 6;
    services = 6;
    conflict_density = 0.3;
    subsystems = 3;
  }

let sched_config =
  { Scheduler.default_config with mode = Scheduler.Deferred; seed = 11 }

let sched_run ?faults () =
  let rms = Generator.rms sched_params ~fail_prob:(fun _ -> 0.2) ~seed:11 () in
  let procs = Generator.batch ~seed:1100 sched_params ~n:3 in
  let t =
    Scheduler.create ~config:sched_config ?faults ~spec:(Generator.spec sched_params)
      ~rms ()
  in
  List.iteri (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p) procs;
  Scheduler.run ~until:100000.0 t;
  (t, rms, procs)

(* index (1-based append position) of the first durable commit decision,
   and the activity it decides *)
let first_durable_commit records =
  let acts = Hashtbl.create 8 in
  let rec go i = function
    | [] -> Alcotest.fail "workload produced no Coord_committed record"
    | Wal.Coord_begin { cid; pid; act; _ } :: rest ->
        Hashtbl.replace acts cid (pid, act);
        go (i + 1) rest
    | Wal.Coord_committed { cid; _ } :: _ -> (i, Hashtbl.find acts cid)
    | _ :: rest -> go (i + 1) rest
  in
  go 1 records

let test_durable_commit_never_reversed () =
  let t0, _, _ = sched_run () in
  let k, (pid, act) = first_durable_commit (Scheduler.wal_records t0) in
  (* crash the instant the commit record hit the log: the decision is
     durable but no participant has seen it *)
  let faults = Faults.make ~crash_after_appends:k () in
  let t, rms, procs = sched_run ~faults () in
  check Alcotest.bool "crashed" true (Scheduler.is_crashed t);
  match
    Scheduler.recover ~config:sched_config ~spec:(Generator.spec sched_params) ~rms
      ~procs (Scheduler.wal_records t)
  with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
      Scheduler.run ~until:100000.0 t2;
      check Alcotest.bool "finished" true (Scheduler.finished t2);
      let h = Scheduler.history t2 in
      check Alcotest.bool "legal" true (Schedule.legal h);
      check Alcotest.bool "PRED" true (Criteria.pred h);
      let decided commit =
        List.exists
          (function
            | Wal.Prepared_decided { pid = p; act = a; commit = c } ->
                p = pid && a = act && c = commit
            | _ -> false)
          (Scheduler.wal_records t2)
      in
      check Alcotest.bool "re-delivered and committed" true (decided true);
      check Alcotest.bool "never aborted" false (decided false)

(* coordinator amnesia: recovery without the Coord_* records still
   terminates every process cleanly (cooperative termination or presumed
   abort), leaking no prepared token *)
let test_amnesia_recovery () =
  let t0, _, _ = sched_run () in
  let k, _ = first_durable_commit (Scheduler.wal_records t0) in
  let faults = Faults.make ~crash_after_appends:k () in
  let t, rms, procs = sched_run ~faults () in
  check Alcotest.bool "crashed" true (Scheduler.is_crashed t);
  match
    Scheduler.recover ~config:sched_config ~amnesia:true
      ~spec:(Generator.spec sched_params) ~rms ~procs (Scheduler.wal_records t)
  with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
      Scheduler.run ~until:100000.0 t2;
      check Alcotest.bool "finished" true (Scheduler.finished t2);
      check Alcotest.bool "legal" true (Schedule.legal (Scheduler.history t2));
      check Alcotest.bool "PRED" true (Criteria.pred (Scheduler.history t2));
      check Alcotest.bool "no leaked prepared token" true
        (List.for_all (fun rm -> Rm.prepared_tokens rm = []) rms)

(* ------------------------------------------------------------------ *)
(* satellite: Recovery.analyze is idempotent under duplicated and
   reordered Prepared_decided records *)

let test_analyze_dup_reorder () =
  let plan_string records =
    match Recovery.analyze ~procs:[ Fixtures.p1; Fixtures.p2 ] records with
    | Error e -> Alcotest.fail e
    | Ok plan -> Format.asprintf "%a" Recovery.pp plan
  in
  let decided = Wal.Prepared_decided { pid = 1; act = 2; commit = true } in
  let clean =
    [
      Wal.Process_registered 1;
      Wal.Invoked { pid = 1; act = 1 };
      Wal.Prepared { pid = 1; act = 2 };
      Wal.Process_registered 2;
      Wal.Invoked { pid = 2; act = 1 };
      decided;
    ]
  in
  let duplicated = clean @ [ decided; decided ] in
  let reordered =
    [
      Wal.Process_registered 1;
      Wal.Invoked { pid = 1; act = 1 };
      Wal.Prepared { pid = 1; act = 2 };
      decided;
      Wal.Process_registered 2;
      Wal.Invoked { pid = 2; act = 1 };
      decided;
    ]
  in
  let reference = plan_string clean in
  check Alcotest.string "duplicated decision records" reference
    (plan_string duplicated);
  check Alcotest.string "reordered decision records" reference
    (plan_string reordered)

let suite =
  [
    Alcotest.test_case "Twopc.run collects every vote" `Quick test_run_collects_all_votes;
    Alcotest.test_case "fault-free coordinator record sequence" `Quick
      test_fault_free_records;
    Alcotest.test_case "aborts are presumed, never logged" `Quick
      test_fault_free_abort_unlogged;
    Alcotest.test_case "retransmission drives through loss" `Quick
      test_retransmit_through_loss;
    Alcotest.test_case "duplicated messages are idempotent" `Quick
      test_duplicates_idempotent;
    Alcotest.test_case "inquiry termination protocol" `Quick test_inquiry_pulls_decision;
    Alcotest.test_case "cooperative termination decision" `Quick
      test_cooperative_decision;
    Alcotest.test_case "Rm.is_prepared" `Quick test_is_prepared;
    Alcotest.test_case "durable commit never reversed by recovery" `Quick
      test_durable_commit_never_reversed;
    Alcotest.test_case "coordinator amnesia recovery" `Quick test_amnesia_recovery;
    Alcotest.test_case "analyze under duplicated/reordered decisions" `Quick
      test_analyze_dup_reorder;
  ]

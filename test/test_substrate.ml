(* Unit tests for the substrates: store, transactions, locks, services,
   resource managers, and two-phase commit. *)

module Value = Tpm_kv.Value
module Store = Tpm_kv.Store
module Tx = Tpm_kv.Tx
module Locks = Tpm_kv.Locks
module Service = Tpm_subsys.Service
module Rm = Tpm_subsys.Rm

let check = Alcotest.check
let value = Alcotest.testable Value.pp Value.equal

let test_store_basics () =
  let s = Store.create () in
  check value "absent key is Nil" Value.Nil (Store.get s "x");
  Store.set s "x" (Value.Int 7);
  check value "read back" (Value.Int 7) (Store.get s "x");
  let v0 = Store.version s in
  Store.delete s "x";
  check value "deleted" Value.Nil (Store.get s "x");
  check Alcotest.bool "version bumped" true (Store.version s > v0)

let test_store_snapshot_restore () =
  let s = Store.create () in
  Store.set s "a" (Value.Int 1);
  Store.set s "b" (Value.Text "t");
  let snap = Store.snapshot s in
  Store.set s "a" (Value.Int 99);
  Store.delete s "b";
  Store.restore s snap;
  check value "a restored" (Value.Int 1) (Store.get s "a");
  check value "b restored" (Value.Text "t") (Store.get s "b")

let test_store_equal_state () =
  let a = Store.create () and b = Store.create () in
  Store.set a "k" (Value.Int 1);
  check Alcotest.bool "different" false (Store.equal_state a b);
  Store.set b "k" (Value.Int 1);
  check Alcotest.bool "equal" true (Store.equal_state a b)

let test_tx_commit_and_abort () =
  let s = Store.create () in
  Store.set s "x" (Value.Int 1);
  let tx = Tx.begin_ s in
  Tx.set tx "x" (Value.Int 2);
  Tx.set tx "y" (Value.Int 3);
  check value "read own write" (Value.Int 2) (Tx.get tx "x");
  check value "store unchanged before commit" (Value.Int 1) (Store.get s "x");
  Tx.commit tx;
  check value "committed x" (Value.Int 2) (Store.get s "x");
  check value "committed y" (Value.Int 3) (Store.get s "y");
  let tx2 = Tx.begin_ s in
  Tx.set tx2 "x" (Value.Int 42);
  Tx.abort tx2;
  check value "abort leaves store" (Value.Int 2) (Store.get s "x")

let test_tx_undo_entries () =
  let s = Store.create () in
  Store.set s "x" (Value.Int 1);
  let tx = Tx.begin_ s in
  Tx.set tx "x" (Value.Int 2);
  Tx.set tx "y" (Value.Int 3);
  Tx.commit tx;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string value))
    "pre-images captured"
    [ ("x", Value.Int 1); ("y", Value.Nil) ]
    (Tx.undo_entries tx)

let test_tx_terminated_raises () =
  let s = Store.create () in
  let tx = Tx.begin_ s in
  Tx.commit tx;
  Alcotest.check_raises "set after commit" (Invalid_argument "Tx.set: transaction terminated")
    (fun () -> Tx.set tx "x" Value.Nil)

let test_locks () =
  let l = Locks.create () in
  check Alcotest.bool "shared/shared ok" true
    (Locks.acquire l ~owner:1 ~mode:Locks.Shared "k" = Ok ()
    && Locks.acquire l ~owner:2 ~mode:Locks.Shared "k" = Ok ());
  (match Locks.acquire l ~owner:3 ~mode:Locks.Exclusive "k" with
  | Error owners -> check Alcotest.(list int) "blockers reported" [ 1; 2 ] owners
  | Ok () -> Alcotest.fail "exclusive over shared granted");
  Locks.release_all l ~owner:2;
  (* upgrade: sole shared holder may go exclusive *)
  check Alcotest.bool "upgrade" true (Locks.acquire l ~owner:1 ~mode:Locks.Exclusive "k" = Ok ());
  check Alcotest.bool "re-entrant" true (Locks.acquire l ~owner:1 ~mode:Locks.Shared "k" = Ok ());
  check Alcotest.(list string) "held by 1" [ "k" ] (Locks.held_by l ~owner:1)

let counter_registry () =
  let reg = Service.Registry.create () in
  Service.Registry.register reg
    (Service.make ~name:"incr" ~compensation:(Service.Inverse_service "decr")
       ~reads:[ "n" ] ~writes:[ "n" ]
       (fun tx ~args:_ ->
         let v = Value.int_exn (match Tx.get tx "n" with Value.Nil -> Value.Int 0 | v -> v) in
         Tx.set tx "n" (Value.Int (v + 1));
         Value.Int (v + 1)));
  Service.Registry.register reg
    (Service.make ~name:"decr" ~reads:[ "n" ] ~writes:[ "n" ]
       (fun tx ~args:_ ->
         let v = Value.int_exn (match Tx.get tx "n" with Value.Nil -> Value.Int 0 | v -> v) in
         Tx.set tx "n" (Value.Int (v - 1));
         Value.Int (v - 1)));
  Service.Registry.register reg
    (Service.make ~name:"read_n" ~reads:[ "n" ] (fun tx ~args:_ -> Tx.get tx "n"));
  Service.Registry.register reg
    (Service.make ~name:"set_flag" ~compensation:Service.Snapshot_undo ~writes:[ "flag" ]
       (fun tx ~args -> Tx.set tx "flag" args; Value.Bool true));
  reg

let test_registry_conflicts () =
  let reg = counter_registry () in
  let spec = Service.Registry.conflict_spec reg in
  check Alcotest.bool "incr conflicts decr" true
    (Tpm_core.Conflict.services_conflict spec "incr" "decr");
  check Alcotest.bool "incr conflicts read_n" true
    (Tpm_core.Conflict.services_conflict spec "incr" "read_n");
  check Alcotest.bool "incr self-conflicts" true
    (Tpm_core.Conflict.services_conflict spec "incr" "incr");
  check Alcotest.bool "read_n commutes with set_flag" false
    (Tpm_core.Conflict.services_conflict spec "read_n" "set_flag");
  check Alcotest.bool "read_n is effect-free" true (Tpm_core.Conflict.effect_free spec "read_n");
  check Alcotest.bool "incr is not effect-free" false (Tpm_core.Conflict.effect_free spec "incr")

let test_rm_invoke_and_compensate () =
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) () in
  (match Rm.invoke rm ~token:1 ~service:"incr" () with
  | Rm.Committed v -> check value "returned 1" (Value.Int 1) v
  | _ -> Alcotest.fail "invoke failed");
  (match Rm.invoke rm ~token:2 ~service:"incr" () with
  | Rm.Committed v -> check value "returned 2" (Value.Int 2) v
  | _ -> Alcotest.fail "invoke failed");
  (* semantic compensation via the inverse service *)
  (match Rm.compensate rm ~token:2 () with
  | Rm.Committed _ -> ()
  | _ -> Alcotest.fail "compensate failed");
  check value "counter back to 1" (Value.Int 1) (Store.get (Rm.store rm) "n")

let test_rm_snapshot_compensation () =
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) () in
  ignore (Rm.invoke rm ~token:5 ~service:"set_flag" ~args:(Value.Text "on") ());
  check value "flag set" (Value.Text "on") (Store.get (Rm.store rm) "flag");
  ignore (Rm.compensate rm ~token:5 ());
  check value "flag restored" Value.Nil (Store.get (Rm.store rm) "flag")

(* Regression: snapshot undo used to write its pre-images to the store
   without taking exclusive locks or consulting the outage plan, so it
   could silently clobber a key a concurrent prepared transaction held —
   both compensation paths must share the lock/outage discipline. *)
let test_rm_snapshot_undo_blocked_by_prepared_writer () =
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) () in
  ignore (Rm.invoke rm ~token:5 ~service:"set_flag" ~args:(Value.Text "on") ());
  (* a prepared writer holds the exclusive lock on "flag" *)
  (match Rm.prepare rm ~token:6 ~service:"set_flag" ~args:(Value.Text "off") () with
  | Rm.Prepared _ -> ()
  | _ -> Alcotest.fail "prepare failed");
  (match Rm.compensate rm ~token:5 () with
  | Rm.Blocked [ 6 ] -> ()
  | Rm.Committed _ -> Alcotest.fail "snapshot undo ignored the prepared writer's lock"
  | _ -> Alcotest.fail "expected Blocked [6]");
  check value "store untouched while blocked" (Value.Text "on") (Store.get (Rm.store rm) "flag");
  (* the undo log must survive a blocked attempt: retry once unblocked *)
  Rm.abort_prepared rm ~token:6;
  (match Rm.compensate rm ~token:5 () with
  | Rm.Committed _ -> ()
  | _ -> Alcotest.fail "retry after unblock failed");
  check value "flag restored" Value.Nil (Store.get (Rm.store rm) "flag")

let test_rm_snapshot_undo_respects_outage () =
  let faults =
    Tpm_sim.Faults.make ~outages:[ Tpm_sim.Faults.outage ~subsystem:"db" ~from_:2.0 ~until_:5.0 ] ()
  in
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) ~faults () in
  ignore (Rm.invoke rm ~token:5 ~service:"set_flag" ~args:(Value.Text "on") ~now:1.0 ());
  (match Rm.compensate rm ~token:5 ~now:3.0 () with
  | Rm.Unavailable -> ()
  | _ -> Alcotest.fail "snapshot undo ignored the outage window");
  check value "store untouched during outage" (Value.Text "on") (Store.get (Rm.store rm) "flag");
  (match Rm.compensate rm ~token:5 ~now:6.0 () with
  | Rm.Committed _ -> ()
  | _ -> Alcotest.fail "retry after the window failed");
  check value "flag restored" Value.Nil (Store.get (Rm.store rm) "flag")

let test_rm_failure_injection () =
  (* fail with certainty below the retry bound, succeed at the bound *)
  let rm =
    Rm.create ~name:"db" ~registry:(counter_registry ())
      ~fail_prob:(fun s -> if s = "incr" then 1.0 else 0.0)
      ~max_failures:3 ()
  in
  check Alcotest.bool "attempt 1 fails" true (Rm.invoke rm ~token:1 ~service:"incr" ~attempt:1 () = Rm.Failed);
  check Alcotest.bool "attempt 2 fails" true (Rm.invoke rm ~token:1 ~service:"incr" ~attempt:2 () = Rm.Failed);
  (match Rm.invoke rm ~token:1 ~service:"incr" ~attempt:3 () with
  | Rm.Committed _ -> ()
  | _ -> Alcotest.fail "guaranteed attempt failed");
  check value "exactly one increment" (Value.Int 1) (Store.get (Rm.store rm) "n")

let test_rm_prepare_blocks_conflicts () =
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) () in
  (match Rm.prepare rm ~token:1 ~service:"incr" () with
  | Rm.Prepared v -> check value "prepared result" (Value.Int 1) v
  | _ -> Alcotest.fail "prepare failed");
  check value "effects invisible before 2PC" Value.Nil (Store.get (Rm.store rm) "n");
  (match Rm.invoke rm ~token:2 ~service:"incr" () with
  | Rm.Blocked [ 1 ] -> ()
  | _ -> Alcotest.fail "conflicting invocation not blocked");
  Rm.commit_prepared rm ~token:1;
  check value "effects visible after commit" (Value.Int 1) (Store.get (Rm.store rm) "n");
  match Rm.invoke rm ~token:2 ~service:"incr" () with
  | Rm.Committed _ -> ()
  | _ -> Alcotest.fail "still blocked after commit"

let test_rm_prepare_abort_rolls_back () =
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) () in
  ignore (Rm.prepare rm ~token:1 ~service:"incr" ());
  Rm.abort_prepared rm ~token:1;
  check value "no effects" Value.Nil (Store.get (Rm.store rm) "n");
  check Alcotest.(list int) "nothing prepared" [] (Rm.prepared_tokens rm)

let test_rm_in_doubt_token_lookup () =
  let rm = Rm.create ~name:"db" ~registry:(counter_registry ()) () in
  ignore (Rm.prepare rm ~token:1 ~service:"incr" ());
  ignore (Rm.prepare rm ~token:2 ~service:"set_flag" ~args:(Value.Text "x") ());
  Rm.mark_in_doubt rm ~token:1 ~cid:10;
  Rm.mark_in_doubt rm ~token:2 ~cid:20;
  check (Alcotest.option Alcotest.int) "cid 10 -> token 1" (Some 1)
    (Rm.in_doubt_token rm ~cid:10);
  check (Alcotest.option Alcotest.int) "cid 20 -> token 2" (Some 2)
    (Rm.in_doubt_token rm ~cid:20);
  check (Alcotest.option Alcotest.int) "unknown cid" None (Rm.in_doubt_token rm ~cid:99);
  (* resolving one instance must not disturb the other's mapping *)
  ignore (Rm.resolve_prepared rm ~token:1 ~commit:true);
  check (Alcotest.option Alcotest.int) "resolved cid gone" None (Rm.in_doubt_token rm ~cid:10);
  check (Alcotest.option Alcotest.int) "other cid intact" (Some 2)
    (Rm.in_doubt_token rm ~cid:20)

let test_twopc_commit_and_abort () =
  let rm1 = Rm.create ~name:"db1" ~registry:(counter_registry ()) () in
  let rm2 = Rm.create ~name:"db2" ~registry:(counter_registry ()) () in
  ignore (Rm.prepare rm1 ~token:1 ~service:"incr" ());
  ignore (Rm.prepare rm2 ~token:2 ~service:"incr" ());
  let log = ref [] in
  let d =
    Tpm_twopc.Twopc.run
      ~on_log:(fun e -> log := e :: !log)
      [ Tpm_twopc.Twopc.participant_of_rm rm1 ~token:1;
        Tpm_twopc.Twopc.participant_of_rm rm2 ~token:2 ]
  in
  check Alcotest.bool "decision commit" true (d = Tpm_twopc.Twopc.Committed);
  check value "rm1 committed" (Value.Int 1) (Store.get (Rm.store rm1) "n");
  check value "rm2 committed" (Value.Int 1) (Store.get (Rm.store rm2) "n");
  check Alcotest.int "protocol log: begin, 2 votes, decision, done" 5 (List.length !log);
  (* a refusing participant forces a global abort *)
  let rm3 = Rm.create ~name:"db3" ~registry:(counter_registry ()) () in
  ignore (Rm.prepare rm3 ~token:9 ~service:"incr" ());
  let refusing =
    { Tpm_twopc.Twopc.id = "bad"; vote = (fun () -> false); commit = ignore; abort = ignore }
  in
  let d2 =
    Tpm_twopc.Twopc.run [ Tpm_twopc.Twopc.participant_of_rm rm3 ~token:9; refusing ]
  in
  check Alcotest.bool "decision abort" true (d2 = Tpm_twopc.Twopc.Aborted);
  check value "rm3 rolled back" Value.Nil (Store.get (Rm.store rm3) "n")

let test_twopc_empty_commits () =
  check Alcotest.bool "empty participant list commits" true
    (Tpm_twopc.Twopc.run [] = Tpm_twopc.Twopc.Committed)

let suite =
  [
    Alcotest.test_case "store basics" `Quick test_store_basics;
    Alcotest.test_case "store snapshot/restore" `Quick test_store_snapshot_restore;
    Alcotest.test_case "store state equality" `Quick test_store_equal_state;
    Alcotest.test_case "tx commit and abort" `Quick test_tx_commit_and_abort;
    Alcotest.test_case "tx undo entries" `Quick test_tx_undo_entries;
    Alcotest.test_case "tx terminated raises" `Quick test_tx_terminated_raises;
    Alcotest.test_case "lock table" `Quick test_locks;
    Alcotest.test_case "footprint-derived conflicts" `Quick test_registry_conflicts;
    Alcotest.test_case "rm invoke and semantic compensation" `Quick test_rm_invoke_and_compensate;
    Alcotest.test_case "rm snapshot compensation" `Quick test_rm_snapshot_compensation;
    Alcotest.test_case "snapshot undo blocked by a prepared writer" `Quick
      test_rm_snapshot_undo_blocked_by_prepared_writer;
    Alcotest.test_case "snapshot undo respects outage windows" `Quick
      test_rm_snapshot_undo_respects_outage;
    Alcotest.test_case "rm failure injection with retry bound" `Quick test_rm_failure_injection;
    Alcotest.test_case "prepared invocations block conflicts" `Quick test_rm_prepare_blocks_conflicts;
    Alcotest.test_case "prepared abort rolls back" `Quick test_rm_prepare_abort_rolls_back;
    Alcotest.test_case "in-doubt token lookup by cid" `Quick test_rm_in_doubt_token_lookup;
    Alcotest.test_case "two-phase commit" `Quick test_twopc_commit_and_abort;
    Alcotest.test_case "empty 2PC commits" `Quick test_twopc_empty_commits;
  ]

(* Sharded admission (DESIGN.md §13) and the incremental latent base:
   - property: the dirty-set-maintained latent base equals the
     from-scratch base after randomized mutation sequences (admissions,
     occurrences, aborts, group aborts) — [Scheduler.latent_self_check]
     at random points of real runs;
   - property: shard partitions are conflict-closed and cover the batch;
     sharded decision trajectories equal the single-engine trajectory on
     conflict-disjoint (clustered) workloads;
   - [Deps.compact] / [Scheduler.gc_deps] for parked cycle-closing edges;
   - the routing front door: ownership, spanning-submission deflection,
     component merge after drain, shed accounting. *)

open Tpm_core
module Deps = Tpm_scheduler.Deps
module Scheduler = Tpm_scheduler.Scheduler
module Shard = Tpm_scheduler.Shard
module Server = Tpm_server.Server
module Router = Tpm_server.Router
module Generator = Tpm_workload.Generator
module Prng = Tpm_sim.Prng

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 100_000)

let small_params =
  {
    Generator.default_params with
    services = 8;
    subsystems = 2;
    conflict_density = 0.3;
    activities_min = 2;
    activities_max = 5;
  }

(* ------------------------------------------------------------------ *)
(* Property: incremental latent base ≡ from-scratch base under churn *)

let latent_equiv_under_churn =
  QCheck.Test.make ~count:60
    ~name:"incremental latent base = from-scratch base under random churn"
    arb_seed (fun seed ->
      let rng = Prng.create (seed + 9) in
      let n = 4 + Prng.int rng 6 in
      let rms = Generator.rms small_params ~seed () in
      let spec = Generator.spec ~seed:(seed + 11) small_params in
      let t =
        Scheduler.create
          ~config:{ Scheduler.default_config with seed }
          ~spec ~rms ()
      in
      let procs = Generator.batch ~seed:(seed * 13) small_params ~n in
      List.iteri
        (fun i p -> Scheduler.submit t ~at:(0.7 *. float_of_int i) p)
        procs;
      (* run in slices; inject aborts (rollbacks, group aborts) and check
         the maintained base against the one-shot algorithm mid-flight,
         while admissions and occurrences churn the dirty set *)
      let horizon = 0.7 *. float_of_int n in
      let slices = 6 in
      for k = 1 to slices do
        let until = horizon *. float_of_int k /. float_of_int slices in
        Scheduler.run ~until t;
        if Prng.chance rng 0.4 then begin
          let victim = 1 + Prng.int rng n in
          if Scheduler.status t victim = Schedule.Active then
            Scheduler.request_abort t victim
        end;
        match Scheduler.latent_self_check t with
        | Ok () -> ()
        | Error msg -> QCheck.Test.fail_reportf "slice %d: %s" k msg
      done;
      Scheduler.run t;
      if not (Scheduler.finished t) then QCheck.Test.fail_report "did not finish";
      ignore (Scheduler.gc_deps t);
      match Scheduler.latent_self_check t with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "final: %s" msg)

(* ------------------------------------------------------------------ *)
(* Deps.compact / gc_deps (parked cycle-closing edges) *)

let deps_compact_drops_dead_parked () =
  let t = Deps.create () in
  List.iter (Deps.add_process t) [ 1; 2; 3 ];
  Deps.add_edge t 1 2;
  Deps.add_edge t 2 3;
  (* the rollback path inserts unchecked: 3 -> 1 parks as cycle-closing *)
  Deps.add_edge t 3 1;
  Alcotest.(check bool) "parked edge wedges admission" true (Deps.would_cycle t []);
  Alcotest.(check int) "live endpoints: nothing compacted" 0 (Deps.compact t);
  Alcotest.(check bool) "still wedged" true (Deps.would_cycle t []);
  Deps.mark_committed t 3;
  Alcotest.(check int) "one live endpoint: still kept" 0 (Deps.compact t);
  Deps.mark_committed t 1;
  Alcotest.(check int) "both endpoints terminated: dropped" 1 (Deps.compact t);
  Alcotest.(check bool) "admission unwedged" false (Deps.would_cycle t []);
  Alcotest.(check int) "idempotent" 0 (Deps.compact t)

let gc_deps_on_finished_run () =
  let rms = Generator.rms small_params ~seed:3 () in
  let spec = Generator.spec ~seed:7 small_params in
  let t = Scheduler.create ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.5 *. float_of_int i) p)
    (Generator.batch ~seed:21 small_params ~n:6);
  Scheduler.run t;
  Alcotest.(check bool) "finished" true (Scheduler.finished t);
  (* fault-free runs park nothing; the call must be a safe no-op *)
  Alcotest.(check int) "nothing parked" 0 (Scheduler.gc_deps t);
  match Scheduler.latent_self_check t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "latent base corrupted by gc: %s" msg

(* ------------------------------------------------------------------ *)
(* Partition properties *)

let no_cross_bucket_conflict spec buckets =
  let procs_of b = List.map snd b in
  let services p =
    List.sort_uniq compare
      (List.map (fun a -> (Process.find p a).Activity.service) (Process.activity_ids p))
  in
  List.iteri
    (fun i bi ->
      List.iteri
        (fun j bj ->
          if i < j then
            List.iter
              (fun p ->
                List.iter
                  (fun q ->
                    List.iter
                      (fun s ->
                        List.iter
                          (fun s' ->
                            if Conflict.services_conflict spec s s' then
                              Alcotest.failf
                                "buckets %d/%d conflict: P%d.%s ~ P%d.%s" i j
                                (Process.pid p) s (Process.pid q) s')
                          (services q))
                      (services p))
                  (procs_of bj))
              (procs_of bi))
        buckets)
    buckets

let partition_is_conflict_closed =
  QCheck.Test.make ~count:40
    ~name:"shard partition: conflict-closed buckets covering the batch" arb_seed
    (fun seed ->
      let rng = Prng.create (seed + 4) in
      let clusters = 2 + Prng.int rng 3 in
      let n = clusters + Prng.int rng 10 in
      let shards = 1 + Prng.int rng 4 in
      let spec, _, procs, _ = Generator.clustered ~seed small_params ~clusters ~n in
      let items = List.mapi (fun i p -> (0.3 *. float_of_int i, p)) procs in
      let buckets = Shard.partition ~shards ~spec items in
      (* coverage: every process in exactly one bucket *)
      let all = List.concat buckets in
      let pids l = List.sort compare (List.map (fun (_, p) -> Process.pid p) l) in
      if pids all <> pids items then QCheck.Test.fail_report "partition lost a process";
      if List.length buckets > shards then
        QCheck.Test.fail_report "more buckets than shards";
      no_cross_bucket_conflict spec buckets;
      (* determinism: partitioning again yields the same buckets *)
      let again = Shard.partition ~shards ~spec items in
      if List.map pids buckets <> List.map pids again then
        QCheck.Test.fail_report "partition not deterministic";
      true)

(* ------------------------------------------------------------------ *)
(* Shard equivalence: sharded ≡ single engine on conflict-disjoint load *)

let filtered_history sched pids =
  List.filter
    (fun ev ->
      let touches pid = List.mem pid pids in
      match ev with
      | Schedule.Act inst -> touches (Activity.instance_proc inst)
      | Schedule.Commit p | Schedule.Abort p -> touches p
      | Schedule.Group_abort ps -> List.exists touches ps)
    (Schedule.events (Scheduler.history sched))

let event_str ev = Format.asprintf "%a" Schedule.pp_event ev

let shard_equivalence =
  QCheck.Test.make ~count:25
    ~name:"sharded runs = single-engine run on conflict-disjoint workloads"
    arb_seed (fun seed ->
      let rng = Prng.create (seed + 5) in
      let clusters = 2 + Prng.int rng 2 in
      let n = 2 * clusters + Prng.int rng 8 in
      let shards = 1 + Prng.int rng clusters in
      let spec, make_rms, procs, _ =
        Generator.clustered ~seed small_params ~clusters ~n
      in
      let items = List.mapi (fun i p -> (0.5 *. float_of_int i, p)) procs in
      let config = { Scheduler.default_config with seed } in
      (* single engine over the whole batch *)
      let solo = Scheduler.create ~config ~spec ~rms:(make_rms ()) () in
      List.iter (fun (at, p) -> Scheduler.submit solo ~at p) items;
      Scheduler.run solo;
      if not (Scheduler.finished solo) then QCheck.Test.fail_report "solo not finished";
      (* sharded run, single domain (the decision-equivalence axis; the
         domain axis only changes who executes which bucket) *)
      let scheds = Shard.run_parallel ~shards ~domains:1 ~config ~spec ~make_rms items in
      List.iter
        (fun t ->
          if not (Scheduler.finished t) then QCheck.Test.fail_report "shard not finished")
        scheds;
      List.iter
        (fun t ->
          let pids = Schedule.proc_ids (Scheduler.history t) in
          let shard_events = List.map event_str (Schedule.events (Scheduler.history t)) in
          let solo_events = List.map event_str (filtered_history solo pids) in
          if shard_events <> solo_events then
            QCheck.Test.fail_reportf
              "histories diverge for pids [%s]:\nshard: %s\nsolo:  %s"
              (String.concat "," (List.map string_of_int pids))
              (String.concat " " shard_events)
              (String.concat " " solo_events))
        scheds;
      true)

let sharded_off_bit_identical () =
  (* shards = 1, domains = 1 must be the historical create/submit/run
     loop, bit for bit: same history, same final explorable state *)
  let params = small_params in
  let spec = Generator.spec ~seed:19 params in
  let make_rms () = Generator.rms params ~seed:3 () in
  let procs = Generator.batch ~seed:57 params ~n:8 in
  let items = List.mapi (fun i p -> (0.4 *. float_of_int i, p)) procs in
  let config = { Scheduler.default_config with seed = 5 } in
  let plain = Scheduler.create ~config ~spec ~rms:(make_rms ()) () in
  List.iter (fun (at, p) -> Scheduler.submit plain ~at p) items;
  Scheduler.run plain;
  match Shard.run_parallel ~shards:1 ~domains:1 ~config ~spec ~make_rms items with
  | [ sharded ] ->
      Alcotest.(check (list string))
        "identical histories"
        (List.map event_str (Schedule.events (Scheduler.history plain)))
        (List.map event_str (Schedule.events (Scheduler.history sharded)));
      Alcotest.(check string)
        "identical state fingerprints"
        (Scheduler.state_fingerprint plain)
        (Scheduler.state_fingerprint sharded)
  | l -> Alcotest.failf "expected 1 shard, got %d" (List.length l)

let sharded_checked_multi_domain () =
  (* the per-shard differential oracle stays valid under real domain
     parallelism: every admission of every shard is cross-checked against
     the reference engine, on 2 domains *)
  let clusters = 3 in
  let spec, make_rms, procs, _ =
    Generator.clustered ~seed:8 small_params ~clusters ~n:9
  in
  let items = List.mapi (fun i p -> (0.4 *. float_of_int i, p)) procs in
  let config =
    { Scheduler.default_config with seed = 2; admission_engine = Scheduler.Checked }
  in
  let scheds =
    Shard.run_parallel ~shards:clusters ~domains:2 ~config ~spec ~make_rms items
  in
  Alcotest.(check bool) "some shards ran" true (List.length scheds >= 1);
  List.iter
    (fun t -> Alcotest.(check bool) "shard finished" true (Scheduler.finished t))
    scheds;
  let total =
    List.fold_left
      (fun acc t -> acc + List.length (Schedule.proc_ids (Scheduler.history t)))
      0 scheds
  in
  Alcotest.(check int) "every process ran on exactly one shard" 9 total

(* ------------------------------------------------------------------ *)
(* Router: ownership, deflection, merge after drain, accounting *)

let router_fixture ?(server_config = Server.default_config) ?(shards = 2) () =
  let clusters = 2 in
  let spec, make_rms, procs, cluster_of =
    Generator.clustered ~seed:4 small_params ~clusters ~n:6
  in
  let make_scheduler () =
    Scheduler.create ~config:{ Scheduler.default_config with seed = 3 } ~spec
      ~rms:(make_rms ()) ()
  in
  let r = Router.create ~config:server_config ~shards ~spec ~make_scheduler () in
  (r, spec, procs, cluster_of)

let router_routes_by_component () =
  let r, spec, procs, _ = router_fixture () in
  let placed =
    List.filter_map
      (fun p ->
        match Router.offer r p with
        | Router.Deflected -> None
        | Router.Routed (s, d) -> (
            match d with
            | Server.Admitted | Server.Queued | Server.Degraded_admit _ ->
                Some (s, p)
            | Server.Rejected reason ->
                Alcotest.failf "P%d rejected: %s" (Process.pid p)
                  (Server.reason_label reason)))
      procs
  in
  Alcotest.(check bool) "some processes placed" true (placed <> []);
  (* the partition invariant while everything is live: processes placed on
     different shards share no conflicting services *)
  let buckets =
    List.init (Router.shards r) (fun s ->
        List.filter_map
          (fun (s', p) -> if s' = s then Some (0.0, p) else None)
          placed)
    |> List.filter (fun b -> b <> [])
  in
  no_cross_bucket_conflict spec buckets;
  Router.run r;
  Alcotest.(check bool) "accounting holds" true (Router.accounting_ok r);
  let c = Router.counters r in
  Alcotest.(check int) "every placement was offered" (List.length placed)
    c.Server.offered;
  List.iter
    (fun (s, p) ->
      let pid = Process.pid p in
      Alcotest.(check bool)
        (Printf.sprintf "P%d terminal on its shard" pid)
        true
        (Scheduler.status (Server.scheduler (Router.server r s)) pid
        <> Schedule.Active))
    placed

(* a process spanning the components of two existing activities *)
let spanning_proc ~pid (a : Activity.t) (b : Activity.t) =
  let a1 =
    Activity.make ~proc:pid ~act:1 ~service:a.Activity.service
      ~kind:Activity.Retriable ~subsystem:a.Activity.subsystem ()
  in
  let a2 =
    Activity.make ~proc:pid ~act:2 ~service:b.Activity.service
      ~kind:Activity.Retriable ~subsystem:b.Activity.subsystem ()
  in
  Process.make_exn ~pid ~activities:[ a1; a2 ] ~prec:[ (1, 2) ] ~pref:[]

let first_act p = Process.find p (List.hd (Process.activity_ids p))

let router_deflects_spanning_then_merges () =
  let r, _, procs, cluster_of = router_fixture () in
  (* occupy both shards with live processes from each cluster *)
  let p0 = List.find (fun p -> cluster_of (Process.pid p) = 0) procs in
  let p1 = List.find (fun p -> cluster_of (Process.pid p) = 1) procs in
  (match Router.offer r p0 with
  | Router.Routed (_, Server.Admitted) -> ()
  | other -> Alcotest.failf "p0: %s" (Router.route_label other));
  (match Router.offer r p1 with
  | Router.Routed (_, Server.Admitted) -> ()
  | other -> Alcotest.failf "p1: %s" (Router.route_label other));
  (* both owners live: a spanning submission must be deflected, never
     admitted with an invisible cross-shard edge *)
  (match Router.offer r (spanning_proc ~pid:100 (first_act p0) (first_act p1)) with
  | Router.Deflected -> ()
  | other -> Alcotest.failf "expected deflection, got %s" (Router.route_label other));
  Alcotest.(check int) "deflection counted" 1 (Router.deflected r);
  (* drain both clusters; the dead owners' claims can now merge *)
  Router.run r;
  (match Router.offer r (spanning_proc ~pid:101 (first_act p0) (first_act p1)) with
  | Router.Routed (_, Server.Admitted) -> ()
  | other ->
      Alcotest.failf "expected merged admit after drain, got %s"
        (Router.route_label other));
  Router.run r;
  Alcotest.(check bool) "accounting still holds" true (Router.accounting_ok r)

let router_parallel_run () =
  (* domain-parallel Router.run on disjoint shards reaches the same
     terminal statuses as the sequential drive *)
  let run ~domains =
    let r, _, procs, _ = router_fixture () in
    List.iter (fun p -> ignore (Router.offer r p)) procs;
    Router.run ~domains r;
    List.map
      (fun p ->
        let pid = Process.pid p in
        let status =
          List.find_map
            (fun s ->
              match Scheduler.status (Server.scheduler (Router.server r s)) pid with
              | Schedule.Active -> None
              | st -> Some st)
            (List.init (Router.shards r) Fun.id)
        in
        (pid, status))
      procs
  in
  let seq = run ~domains:1 and par = run ~domains:2 in
  List.iter2
    (fun (pid, a) (_, b) ->
      if a <> b then Alcotest.failf "P%d status differs across domain counts" pid)
    seq par

let suite =
  [
    QCheck_alcotest.to_alcotest latent_equiv_under_churn;
    Alcotest.test_case "deps: compact drops dead parked edges" `Quick
      deps_compact_drops_dead_parked;
    Alcotest.test_case "scheduler: gc_deps is a safe no-op when clean" `Quick
      gc_deps_on_finished_run;
    QCheck_alcotest.to_alcotest partition_is_conflict_closed;
    QCheck_alcotest.to_alcotest shard_equivalence;
    Alcotest.test_case "shards off: bit-identical to the plain loop" `Quick
      sharded_off_bit_identical;
    Alcotest.test_case "checked oracle per shard across 2 domains" `Quick
      sharded_checked_multi_domain;
    Alcotest.test_case "router: clusters pin to shards, all terminate" `Quick
      router_routes_by_component;
    Alcotest.test_case "router: spanning offer deflected, merged after drain" `Quick
      router_deflects_spanning_then_merges;
    Alcotest.test_case "router: parallel run matches sequential" `Quick
      router_parallel_run;
  ]

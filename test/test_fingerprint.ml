(* PR-10 bit-identity guard: with weak-order enforcement, multi-level
   composition, and the classical baselines all disabled (the default
   config), scheduler runs must be bit-identical to pre-PR behavior.
   The fingerprints below were captured at the commit preceding this PR
   over the crashsweep workload (3 modes x 2 seeds) and cover process
   outcomes, execution traces, attempt counts, per-subsystem stores,
   locks and logs. *)
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator

let params =
  {
    Generator.default_params with
    activities_min = 3;
    activities_max = 6;
    services = 6;
    conflict_density = 0.3;
    subsystems = 3;
  }

let golden =
  [
    ("conservative", 7, "P1:done(C),x[a_{1_1}^c;a_{1_2}^p;a_{1_3}^r;],e[a_{1_1}^c;a_{1_2}^p;a_{1_3}^r;],c[]|P2:done(C),x[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;a_{2_5}^c;a_{2_6}^c;],e[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;a_{2_5}^c;a_{2_6}^c;],c[]|P3:done(A),ab,x[a_{3_1}^c;a_{3_2}^c;a_{3_2}^-1;a_{3_1}^-1;],e[a_{3_1}^c;a_{3_2}^c;a_{3_2}^-1;a_{3_1}^-1;],c[]|P4:done(A),ab,x[],e[],c[]|rb[]at[1.1=1;1.2=1;1.3=1;2.1=1;2.2=1;2.3=1;2.4=1;2.5=1;2.6=1;3.1=1;3.2=1;]{ss0|k0=2|k3=2|p:|d:|k:|l:1000001,2000001,2000003,2000006,|c4}{ss1|k1=1|k4=1|p:|d:|k:|l:-3000003,1000002,2000005,|c4}{ss2|k2=2|k5=1|p:|d:|k:|l:-3000002,1000003,2000002,2000004,|c5}{next=1}bus[];q0");
    ("conservative", 21, "P1:done(A),ab,x[a_{1_1}^c;a_{1_1}^-1;],e[a_{1_1}^c;a_{1_1}^-1;],c[]|P2:done(C),x[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;],e[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;],c[]|P3:done(A),ab,x[],e[],c[]|P4:done(A),ab,x[],e[],c[]|rb[]at[1.1=2;2.1=1;2.2=1;2.3=1;2.4=1;]{ss0|k3=2|p:|d:|k:|l:2000002,2000003,|c2}{ss1|k4=1|p:|d:|k:|l:2000001,|c1}{ss2|k2=1|k5=0|p:|d:|k:|l:-1000002,2000004,|c3}{next=1}bus[];q0");
    ("deferred", 7, "P1:done(C),x[a_{1_1}^c;a_{1_2}^p;a_{1_3}^r;],e[a_{1_1}^c;a_{1_2}^p;a_{1_3}^r;],c[]|P2:done(C),x[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;a_{2_5}^c;a_{2_6}^c;],e[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;a_{2_5}^c;a_{2_6}^c;],c[]|P3:done(C),x[a_{3_1}^c;a_{3_2}^c;a_{3_3}^p;a_{3_4}^r;],e[a_{3_1}^c;a_{3_2}^c;a_{3_3}^p;a_{3_4}^r;],c[]|P4:done(C),x[a_{4_1}^p;a_{4_2}^r;],e[a_{4_1}^p;a_{4_2}^r;],c[]|rb[]at[1.1=1;1.2=1;1.3=1;2.1=1;2.2=1;2.3=1;2.4=1;2.5=1;2.6=1;3.1=1;3.2=1;3.3=1;3.4=1;4.1=1;4.2=1;]{ss0|k0=3|k3=4|p:|d:|k:1=true,2=true,4=true,|l:1000001,2000001,2000003,2000006,|c7}{ss1|k1=2|k4=1|p:|d:|k:|l:1000002,2000005,3000002,|c3}{ss2|k2=4|k5=1|p:|d:|k:3=true,|l:1000003,2000002,2000004,3000001,|c5}{next=5}bus[];q0");
    ("deferred", 21, "P1:done(C),x[a_{1_1}^c;a_{1_2}^p;a_{1_3}^c;a_{1_4}^c;],e[a_{1_1}^c;a_{1_2}^p;a_{1_3}^c;a_{1_4}^c;],c[]|P2:done(C),x[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;],e[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;],c[]|P3:done(C),x[a_{3_1}^p;a_{3_2}^c;a_{3_3}^c;a_{3_4}^c;],e[a_{3_1}^p;a_{3_2}^c;a_{3_3}^c;a_{3_4}^c;],c[]|P4:done(C),x[a_{4_1}^p;a_{4_2}^c;a_{4_3}^c;a_{4_4}^c;a_{4_5}^c;a_{4_6}^c;],e[a_{4_1}^p;a_{4_2}^c;a_{4_3}^c;a_{4_4}^c;a_{4_5}^c;a_{4_6}^c;],c[]|rb[]at[1.1=2;1.2=2;1.3=2;1.4=1;2.1=1;2.2=1;2.3=1;2.4=1;3.1=1;3.2=3;3.3=1;3.4=1;4.1=4;4.2=1;4.3=1;4.4=1;4.5=1;4.6=1;]{ss0|k0=2|k3=4|p:|d:|k:1=true,|l:1000003,1000004,2000002,2000003,3000004,|c6}{ss1|k1=3|k4=2|p:|d:|k:2=true,|l:2000001,3000003,4000004,4000006,|c5}{ss2|k2=2|k5=5|p:|d:|k:3=true,|l:1000001,2000004,3000002,4000002,4000003,4000005,|c7}{next=4}bus[];q0");
    ("quasi", 7, "P1:done(C),x[a_{1_1}^c;a_{1_2}^p;a_{1_3}^r;],e[a_{1_1}^c;a_{1_2}^p;a_{1_3}^r;],c[]|P2:done(C),x[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;a_{2_5}^c;a_{2_6}^c;],e[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;a_{2_5}^c;a_{2_6}^c;],c[]|P3:done(C),x[a_{3_1}^c;a_{3_2}^c;a_{3_3}^p;a_{3_4}^r;],e[a_{3_1}^c;a_{3_2}^c;a_{3_3}^p;a_{3_4}^r;],c[]|P4:done(C),x[a_{4_1}^p;a_{4_2}^r;],e[a_{4_1}^p;a_{4_2}^r;],c[]|rb[]at[1.1=1;1.2=1;1.3=1;2.1=1;2.2=1;2.3=1;2.4=1;2.5=1;2.6=1;3.1=1;3.2=1;3.3=1;3.4=1;4.1=1;4.2=1;]{ss0|k0=3|k3=4|p:|d:|k:1=true,2=true,4=true,|l:1000001,2000001,2000003,2000006,|c7}{ss1|k1=2|k4=1|p:|d:|k:|l:1000002,2000005,3000002,|c3}{ss2|k2=4|k5=1|p:|d:|k:3=true,|l:1000003,2000002,2000004,3000001,|c5}{next=5}bus[];q0");
    ("quasi", 21, "P1:done(C),x[a_{1_1}^c;a_{1_2}^p;a_{1_3}^c;a_{1_4}^c;],e[a_{1_1}^c;a_{1_2}^p;a_{1_3}^c;a_{1_4}^c;],c[]|P2:done(C),x[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;],e[a_{2_1}^c;a_{2_2}^c;a_{2_3}^c;a_{2_4}^c;],c[]|P3:done(C),x[a_{3_1}^p;a_{3_2}^c;a_{3_3}^c;a_{3_4}^c;],e[a_{3_1}^p;a_{3_2}^c;a_{3_3}^c;a_{3_4}^c;],c[]|P4:done(C),x[a_{4_1}^p;a_{4_2}^c;a_{4_3}^c;a_{4_4}^c;a_{4_5}^c;a_{4_6}^c;],e[a_{4_1}^p;a_{4_2}^c;a_{4_3}^c;a_{4_4}^c;a_{4_5}^c;a_{4_6}^c;],c[]|rb[]at[1.1=2;1.2=2;1.3=2;1.4=1;2.1=1;2.2=1;2.3=1;2.4=1;3.1=1;3.2=3;3.3=1;3.4=1;4.1=4;4.2=1;4.3=1;4.4=1;4.5=1;4.6=1;]{ss0|k0=2|k3=4|p:|d:|k:1=true,|l:1000003,1000004,2000002,2000003,3000004,|c6}{ss1|k1=3|k4=2|p:|d:|k:2=true,|l:2000001,3000003,4000004,4000006,|c5}{ss2|k2=2|k5=5|p:|d:|k:3=true,|l:1000001,2000004,3000002,4000002,4000003,4000005,|c7}{next=4}bus[];q0");
  ]

let run ~mode ~seed =
  let config = { Scheduler.default_config with mode; seed } in
  let rms = Generator.rms params ~fail_prob:(fun _ -> 0.2) ~seed () in
  let t = Scheduler.create ~config ~spec:(Generator.spec params) ~rms () in
  let procs = Generator.batch ~seed:(seed * 100) params ~n:4 in
  List.iteri (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p) procs;
  Scheduler.run ~until:100000.0 t;
  Scheduler.state_fingerprint t

let mode_of = function
  | "conservative" -> Scheduler.Conservative
  | "deferred" -> Scheduler.Deferred
  | "quasi" -> Scheduler.Quasi
  | m -> invalid_arg m

let test_bit_identity () =
  List.iter
    (fun (mode_name, seed, expect) ->
      Alcotest.check Alcotest.string
        (Printf.sprintf "%s seed=%d bit-identical to pre-PR run" mode_name seed)
        expect
        (run ~mode:(mode_of mode_name) ~seed))
    golden

let suite =
  [ Alcotest.test_case "default-config runs match pre-PR fingerprints" `Quick test_bit_identity ]

(* The classical baseline schedulers (strict 2PL, timestamp ordering)
   of the PR-10 comparison: protocol behavior on handcrafted conflict
   scenarios, and the differential oracle that their per-subsystem local
   schedules are commit-order serializable. *)

open Tpm_core
module Baseline = Tpm_baseline.Baseline
module Local = Tpm_composite.Local
module Generator = Tpm_workload.Generator
module Rm = Tpm_subsys.Rm
module Service = Tpm_subsys.Service
module Tx = Tpm_kv.Tx
module Value = Tpm_kv.Value

let check = Alcotest.check

let inc key tx ~args:_ =
  let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
  Tx.set tx key (Value.Int (v + 1));
  Value.Int (v + 1)

let dec key tx ~args:_ =
  let v = match Tx.get tx key with Value.Int n -> n | _ -> 0 in
  Tx.set tx key (Value.Int (v - 1));
  Value.Int (v - 1)

(* one subsystem "A" with self-conflicting compensatable services *)
let registry () =
  let reg = Service.Registry.create () in
  List.iter
    (fun name ->
      Service.Registry.register reg
        (Service.make ~name
           ~compensation:(Service.Inverse_service (name ^ "_undo"))
           ~writes:[ "k." ^ name ] (inc ("k." ^ name)));
      Service.Registry.register reg
        (Service.make ~name:(name ^ "_undo") ~writes:[ "k." ^ name ] (dec ("k." ^ name))))
    [ "s0"; "s1"; "s2" ];
  reg

let rms () = [ Rm.create ~name:"A" ~registry:(registry ()) () ]
let spec = Conflict.of_pairs [ ("s1", "s1"); ("s2", "s2") ]

let act ~proc ~act:n ~service =
  Activity.make ~proc ~act:n ~service ~kind:Activity.Compensatable ~subsystem:"A" ()

let seq pid services =
  let acts = List.mapi (fun i s -> act ~proc:pid ~act:(i + 1) ~service:s) services in
  let prec = List.init (List.length services - 1) (fun i -> (i + 1, i + 2)) in
  Process.make_exn ~pid ~activities:acts ~prec ~pref:[]

let all_cos r =
  List.for_all (fun (_, l) -> Local.commit_order_serializable l) r.Baseline.locals

(* 2PL serializes two directly conflicting one-activity processes: the
   second waits for the first's process commit, so the makespan is two
   full service times *)
let test_2pl_blocks () =
  let procs = [ seq 1 [ "s1" ]; seq 2 [ "s1" ] ] in
  let r = Baseline.run_2pl ~spec ~rms:(rms ()) ~service_time:1.0 procs in
  check Alcotest.bool "finished" true r.Baseline.finished;
  check Alcotest.int "both committed" 2 r.Baseline.committed;
  check Alcotest.int "no restarts" 0 r.Baseline.restarts;
  check (Alcotest.float 0.001) "serialized makespan" 2.0 r.Baseline.makespan;
  check Alcotest.bool "locals commit-order serializable" true (all_cos r)

(* TSO lets the same pair overlap (timestamps already order them):
   makespan is one service time, not two *)
let test_tso_overlaps () =
  let procs = [ seq 1 [ "s1" ]; seq 2 [ "s1" ] ] in
  let r = Baseline.run_tso ~spec ~rms:(rms ()) ~service_time:1.0 procs in
  check Alcotest.bool "finished" true r.Baseline.finished;
  check Alcotest.int "both committed" 2 r.Baseline.committed;
  check Alcotest.int "no aborts" 0 r.Baseline.validation_aborts;
  check (Alcotest.float 0.001) "overlapped makespan" 1.0 r.Baseline.makespan;
  check Alcotest.bool "locals commit-order serializable" true (all_cos r)

(* the classic crossed lock order: P1 takes s1 then s2, P2 takes s2 then
   s1 — strict 2PL deadlocks, the detector aborts the younger process,
   compensates its prefix and restarts it *)
let test_2pl_deadlock_victim () =
  let procs = [ seq 1 [ "s1"; "s2" ]; seq 2 [ "s2"; "s1" ] ] in
  let r = Baseline.run_2pl ~spec ~rms:(rms ()) ~service_time:1.0 procs in
  check Alcotest.bool "finished" true r.Baseline.finished;
  check Alcotest.int "both committed in the end" 2 r.Baseline.committed;
  check Alcotest.bool "deadlock detected" true (r.Baseline.deadlocks >= 1);
  check Alcotest.bool "victim restarted" true (r.Baseline.restarts >= 1);
  check Alcotest.bool "victim prefix compensated" true (r.Baseline.compensations >= 1);
  check Alcotest.bool "locals commit-order serializable" true (all_cos r)

(* out-of-order access under TSO: P1 (older stamp) reaches the contended
   service after the younger P2 already stamped it — wts validation
   aborts P1, which rolls back (compensating its first activity) and
   restarts with a fresh stamp *)
let test_tso_validation_abort () =
  let procs = [ seq 1 [ "s0"; "s1" ]; seq 2 [ "s1" ] ] in
  let r =
    Baseline.run_tso ~spec ~rms:(rms ()) ~service_time:1.0
      ~submit_at:(fun i -> if i = 0 then 0.0 else 0.1)
      procs
  in
  check Alcotest.bool "finished" true r.Baseline.finished;
  check Alcotest.int "both committed in the end" 2 r.Baseline.committed;
  check Alcotest.bool "validation abort fired" true (r.Baseline.validation_aborts >= 1);
  check Alcotest.bool "victim restarted" true (r.Baseline.restarts >= 1);
  check Alcotest.bool "victim prefix compensated" true (r.Baseline.compensations >= 1);
  check Alcotest.bool "locals commit-order serializable" true (all_cos r)

(* generator workloads through both protocols: everything terminates and
   every subsystem's local schedule is commit-order serializable *)
let params =
  {
    Generator.default_params with
    activities_min = 3;
    activities_max = 6;
    services = 6;
    conflict_density = 0.5;
    subsystems = 3;
  }

let run_generated kind ~seed ~fail =
  let spec = Generator.spec params in
  let rms = Generator.rms params ~fail_prob:(fun _ -> fail) ~seed () in
  let procs = Generator.batch ~seed:(seed * 100) params ~n:5 in
  Baseline.run kind ~spec ~rms ~submit_at:(fun i -> 0.3 *. float_of_int i) procs

let test_generated_smoke () =
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let r = run_generated kind ~seed ~fail:0.0 in
          check Alcotest.bool "finished" true r.Baseline.finished;
          check Alcotest.int "all terminal" 5 (r.Baseline.committed + r.Baseline.aborted);
          check Alcotest.bool "locals commit-order serializable" true (all_cos r))
        [ 3; 7 ])
    [ Baseline.Two_pl; Baseline.Tso ]

(* differential property: on random workloads (with injected invocation
   failures), both classical protocols produce per-subsystem local
   schedules that Local.commit_order_serializable accepts *)
let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 100_000)

let differential_prop kind name =
  QCheck.Test.make ~name ~count:60 arb_seed (fun seed ->
      let r = run_generated kind ~seed ~fail:0.1 in
      r.Baseline.finished && all_cos r)

let suite =
  [
    Alcotest.test_case "2PL serializes conflicting processes" `Quick test_2pl_blocks;
    Alcotest.test_case "TSO overlaps stamped conflicts" `Quick test_tso_overlaps;
    Alcotest.test_case "2PL deadlock detection and victim abort" `Quick
      test_2pl_deadlock_victim;
    Alcotest.test_case "TSO wts/rts validation abort" `Quick test_tso_validation_abort;
    Alcotest.test_case "generated workloads terminate" `Quick test_generated_smoke;
    QCheck_alcotest.to_alcotest
      (differential_prop Baseline.Two_pl "2PL locals are commit-order serializable");
    QCheck_alcotest.to_alcotest
      (differential_prop Baseline.Tso "TSO locals are commit-order serializable");
  ]

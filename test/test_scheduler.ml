(* Integration tests of the online PRED scheduler, including the CIM
   scenario of figure 1 (experiment E9). *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Cim = Tpm_workload.Cim
module Generator = Tpm_workload.Generator
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Value = Tpm_kv.Value

let check = Alcotest.check

let cim_setup ?(fail_prob = fun _ -> 0.0) ?(config = Scheduler.default_config) part =
  let parts = [ part ] in
  let rms = Cim.rms ~parts ~fail_prob () in
  let spec = Cim.spec ~parts in
  let t = Scheduler.create ~config ~spec ~rms () in
  (t, rms)

let find_rm rms name = List.find (fun rm -> Rm.name rm = name) rms

let event_pos s pred =
  let rec go i = function
    | [] -> None
    | ev :: rest -> if pred ev then Some i else go (i + 1) rest
  in
  go 0 (Schedule.events s)

let test_single_process_happy () =
  let t, rms = cim_setup "p1" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"p1");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "committed" true (Scheduler.status t 1 = Schedule.Committed);
  let h = Scheduler.history t in
  check Alcotest.bool "history legal" true (Schedule.legal h);
  check Alcotest.bool "history PRED" true (Criteria.pred h);
  let pdm = find_rm rms "pdm" in
  check Alcotest.bool "BOM written" true (Store.get (Rm.store pdm) "bom:p1" <> Value.Nil)

(* E9 — figure 1: construction and production in parallel.  The PRED
   scheduler must defer the production pivot until the construction
   process committed (paper, end of Section 3.5). *)
let test_cim_parallel_correct () =
  (* a slow technical documentation keeps the construction process alive
     while production catches up, exercising the deferred produce commit *)
  let config =
    {
      Scheduler.default_config with
      service_time = (fun s -> if s = "tech_doc:boiler" then 5.0 else 1.0);
    }
  in
  let t, rms = cim_setup ~config "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  (* submitted after the BOM exists, so the conflict is ordered P1 -> P2 *)
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "construction committed" true (Scheduler.status t 1 = Schedule.Committed);
  check Alcotest.bool "production committed" true (Scheduler.status t 2 = Schedule.Committed);
  let h = Scheduler.history t in
  check Alcotest.bool "history legal" true (Schedule.legal h);
  check Alcotest.bool "history serializable" true (Criteria.serializable h);
  check Alcotest.bool "history PRED" true (Criteria.pred h);
  (* the produce activity must not commit before C_1 *)
  let produce_pos =
    event_pos h (function
      | Schedule.Act (Activity.Forward a) -> a.Activity.service = "produce:boiler"
      | _ -> false)
  in
  let c1_pos = event_pos h (function Schedule.Commit 1 -> true | _ -> false) in
  (match (produce_pos, c1_pos) with
  | Some pp, Some cp ->
      check Alcotest.bool "produce commits after construction's commit" true (pp > cp)
  | _ -> Alcotest.fail "expected produce and C_1 in history");
  let productdb = find_rm rms "productdb" in
  check Alcotest.bool "part produced" true
    (Store.get (Rm.store productdb) "produced:boiler" = Value.Int 1)

(* Section 2.2: the construction test fails; the PDM entry is compensated
   and the production process — which read the BOM — must cascade. *)
let test_cim_test_failure_cascades () =
  (* the test activity is slow and fails only after production has read
     the BOM — the situation of Section 2.2 *)
  let config =
    {
      Scheduler.default_config with
      service_time = (fun s -> if s = "test:boiler" then 3.0 else 1.0);
    }
  in
  let t, rms =
    cim_setup ~config
      ~fail_prob:(fun s -> if s = "test:boiler" then 1.0 else 0.0)
      "boiler"
  in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.submit t ~at:2.2 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  (* construction terminates through its alternative (doc_drawing) *)
  check Alcotest.bool "construction committed via alternative" true
    (Scheduler.status t 1 = Schedule.Committed);
  (* production must not have produced anything *)
  check Alcotest.bool "production aborted" true (Scheduler.status t 2 = Schedule.Aborted);
  let h = Scheduler.history t in
  check Alcotest.bool "history legal" true (Schedule.legal h);
  check Alcotest.bool "history RED" true (Criteria.red h);
  let pdm = find_rm rms "pdm" in
  let productdb = find_rm rms "productdb" in
  let bizapp = find_rm rms "bizapp" in
  check Alcotest.bool "BOM compensated" true (Store.get (Rm.store pdm) "bom:boiler" = Value.Nil);
  check Alcotest.bool "nothing produced" true
    (Store.get (Rm.store productdb) "produced:boiler" = Value.Nil);
  check Alcotest.bool "material order cancelled" true
    (Store.get (Rm.store bizapp) "order:boiler" = Value.Nil);
  let docrepo = find_rm rms "docrepo" in
  check Alcotest.bool "drawing documented for reuse" true
    (Store.get (Rm.store docrepo) "drawing_doc:boiler" <> Value.Nil)

let test_cim_conservative_mode () =
  let config = { Scheduler.default_config with mode = Scheduler.Conservative } in
  let t, _ = cim_setup ~config "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.submit t ~at:0.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "both committed" true
    (Scheduler.status t 1 = Schedule.Committed && Scheduler.status t 2 = Schedule.Committed);
  check Alcotest.bool "history PRED" true (Criteria.pred (Scheduler.history t))

let test_deferred_overlaps_pivot_execution () =
  (* deferred mode lets the production pivot *execute* while construction
     is still running, committing it at 2PC time: makespan must not exceed
     the conservative one *)
  let run config =
    let t, _ = cim_setup ~config "boiler" in
    Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
    Scheduler.submit t ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
    Scheduler.run t;
    check Alcotest.bool "finished" true (Scheduler.finished t);
    Scheduler.now t
  in
  let t_deferred = run { Scheduler.default_config with mode = Scheduler.Deferred } in
  let t_conservative = run { Scheduler.default_config with mode = Scheduler.Conservative } in
  check Alcotest.bool "deferred is at least as fast" true (t_deferred <= t_conservative)

let test_independent_parts_parallel () =
  (* processes on distinct parts do not conflict: full parallelism *)
  let parts = [ "a"; "b"; "c"; "d" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let t = Scheduler.create ~spec ~rms () in
  List.iteri
    (fun i part ->
      Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:(i + 1) ~part))
    parts;
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  (* each construction takes 4 unit steps; with no conflicts the makespan
     equals one process's critical path *)
  check (Alcotest.float 0.001) "makespan equals critical path" 4.0 (Scheduler.now t);
  check Alcotest.bool "history PRED" true (Criteria.pred (Scheduler.history t))

let test_stall_resolution () =
  (* two processes with crossing conflicts: the scheduler must abort one
     victim instead of deadlocking *)
  let params =
    { Generator.default_params with services = 2; conflict_density = 1.0; subsystems = 1 }
  in
  let rms = Generator.rms params () in
  let spec = Generator.spec params in
  let mk pid s1 s2 =
    Process.make_exn ~pid
      ~activities:
        [
          Activity.make ~proc:pid ~act:1 ~service:s1 ~kind:Activity.Compensatable
            ~subsystem:"ss0" ();
          Activity.make ~proc:pid ~act:2 ~service:s2 ~kind:Activity.Compensatable
            ~subsystem:"ss0" ();
        ]
      ~prec:[ (1, 2) ] ~pref:[]
  in
  let t = Scheduler.create ~spec ~rms () in
  Scheduler.submit t (mk 1 "svc0" "svc1");
  Scheduler.submit t (mk 2 "svc1" "svc0");
  Scheduler.run t;
  check Alcotest.bool "finished despite crossing conflicts" true (Scheduler.finished t);
  check Alcotest.bool "at least one committed" true
    (Scheduler.status t 1 = Schedule.Committed || Scheduler.status t 2 = Schedule.Committed);
  let h = Scheduler.history t in
  check Alcotest.bool "history legal" true (Schedule.legal h);
  check Alcotest.bool "history RED" true (Criteria.red h)

let test_external_abort_b_rec () =
  let t, rms = cim_setup "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
  (* abort while the process is still compensatable (before produce at
     t=5): all effects must vanish *)
  Scheduler.request_abort t ~at:2.5 2;
  Scheduler.run t;
  check Alcotest.bool "aborted" true (Scheduler.status t 2 = Schedule.Aborted);
  let bizapp = find_rm rms "bizapp" in
  check Alcotest.bool "order gone" true (Store.get (Rm.store bizapp) "order:boiler" = Value.Nil);
  check Alcotest.bool "history RED" true (Criteria.red (Scheduler.history t))

let test_external_abort_f_rec_commits_forward () =
  let t, rms = cim_setup "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  (* abort after the pivot (test commits at t=3): forward recovery *)
  Scheduler.request_abort t ~at:3.5 1;
  Scheduler.run t;
  check Alcotest.bool "terminates committing (F-REC)" true
    (Scheduler.status t 1 = Schedule.Committed);
  let docrepo = find_rm rms "docrepo" in
  check Alcotest.bool "forward path executed" true
    (Store.get (Rm.store docrepo) "techdoc:boiler" <> Value.Nil)

let test_random_workload_pred () =
  (* a mixed random workload must terminate with a legal PRED history *)
  let params = { Generator.default_params with services = 8; conflict_density = 0.3 } in
  let rms = Generator.rms params () in
  let spec = Generator.spec params in
  let t = Scheduler.create ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
    (Generator.batch params ~n:6);
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "PRED" true (Criteria.pred h);
  (* the protocol additionally enforces full Proc-REC (Definition 11) *)
  check Alcotest.bool "Proc-REC" true (Criteria.process_recoverable h);
  check Alcotest.bool "Lemma 2 on the history" true (Criteria.lemma2_holds h)

let test_random_workload_with_failures () =
  let params = { Generator.default_params with services = 8; conflict_density = 0.2 } in
  let rms = Generator.rms params ~fail_prob:(fun _ -> 0.15) () in
  let spec = Generator.spec params in
  let t = Scheduler.create ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.5 *. float_of_int i) p)
    (Generator.batch ~seed:17 params ~n:6);
  Scheduler.run t;
  check Alcotest.bool "finished (guaranteed termination)" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "RED" true (Criteria.red h)

let suite =
  [
    Alcotest.test_case "single process happy path" `Quick test_single_process_happy;
    Alcotest.test_case "E9: CIM parallel execution is PRED" `Quick test_cim_parallel_correct;
    Alcotest.test_case "E9: CIM test failure cascades" `Quick test_cim_test_failure_cascades;
    Alcotest.test_case "conservative mode" `Quick test_cim_conservative_mode;
    Alcotest.test_case "deferred commit overlaps pivot execution" `Quick
      test_deferred_overlaps_pivot_execution;
    Alcotest.test_case "independent parts run fully parallel" `Quick test_independent_parts_parallel;
    Alcotest.test_case "stall resolution via victim abort" `Quick test_stall_resolution;
    Alcotest.test_case "external abort in B-REC" `Quick test_external_abort_b_rec;
    Alcotest.test_case "external abort in F-REC" `Quick test_external_abort_f_rec_commits_forward;
    Alcotest.test_case "random workload is PRED" `Quick test_random_workload_pred;
    Alcotest.test_case "random workload with failures" `Quick test_random_workload_with_failures;
  ]

let test_exact_admission_mode () =
  (* the "always consider the completed schedule" scheduler (Section 3.5):
     definitionally exact admission; histories must be PRED and every
     process must still terminate *)
  let params = { Generator.default_params with services = 8; conflict_density = 0.3 } in
  let rms = Generator.rms params () in
  let spec = Generator.spec params in
  let config = { Scheduler.default_config with exact_admission = true } in
  let t = Scheduler.create ~config ~spec ~rms () in
  List.iteri
    (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
    (Generator.batch ~seed:31 params ~n:5);
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  let h = Scheduler.history t in
  check Alcotest.bool "legal" true (Schedule.legal h);
  check Alcotest.bool "PRED" true (Criteria.pred h)

let exact_suite =
  [ Alcotest.test_case "exact-admission mode" `Quick test_exact_admission_mode ]

let suite = suite @ exact_suite

let test_quasi_mode_cim () =
  (* quasi-commit (figure 9): once construction passed its pivot (test),
     its pre-pivot compensations are off the table; production's pivot may
     commit without waiting for C_construction when no completion
     conflicts exist *)
  let config =
    {
      Scheduler.default_config with
      mode = Scheduler.Quasi;
      service_time = (fun s -> if s = "tech_doc:boiler" then 5.0 else 1.0);
    }
  in
  let t, _ = cim_setup ~config "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "both committed" true
    (Scheduler.status t 1 = Schedule.Committed && Scheduler.status t 2 = Schedule.Committed);
  let h = Scheduler.history t in
  check Alcotest.bool "history PRED" true (Criteria.pred h)

let test_weak_order_with_failures_cim () =
  let config = { Scheduler.default_config with weak_order = true } in
  let t, _ =
    cim_setup ~config ~fail_prob:(fun s -> if s = "test:boiler" then 1.0 else 0.0) "boiler"
  in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.submit t ~at:0.5 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "RED" true (Criteria.red (Scheduler.history t))

let test_metrics_surface () =
  let t, _ = cim_setup "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.run t;
  let m = Scheduler.metrics t in
  check Alcotest.int "one submission" 1 (Tpm_sim.Metrics.count m "submitted");
  check Alcotest.int "one commit" 1 (Tpm_sim.Metrics.count m "committed");
  check Alcotest.int "four activities" 4 (Tpm_sim.Metrics.count m "activities");
  check Alcotest.bool "latency observed" true
    (Tpm_sim.Metrics.samples m "latency" <> [])

let test_wal_records_cover_run () =
  let t, _ = cim_setup "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.run t;
  let records = Scheduler.wal_records t in
  check Alcotest.bool "registered logged" true
    (List.mem (Tpm_wal.Wal.Process_registered 1) records);
  check Alcotest.bool "commit logged" true
    (List.mem (Tpm_wal.Wal.Process_committed 1) records);
  check Alcotest.int "four invocations logged" 4
    (List.length
       (List.filter (function Tpm_wal.Wal.Invoked _ -> true | _ -> false) records))

let late_suite =
  [
    Alcotest.test_case "quasi mode on the CIM scenario" `Quick test_quasi_mode_cim;
    Alcotest.test_case "weak order with failures on CIM" `Quick test_weak_order_with_failures_cim;
    Alcotest.test_case "metrics surface" `Quick test_metrics_surface;
    Alcotest.test_case "WAL covers the run" `Quick test_wal_records_cover_run;
  ]

let suite = suite @ late_suite

(* --- fault injection: outages, backoff, timeouts, crash trigger --- *)

module Faults = Tpm_sim.Faults
module Metrics = Tpm_sim.Metrics

let cim_setup_faults ?config ?(faults = Faults.none) part =
  let parts = [ part ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let t = Scheduler.create ?config ~faults ~spec ~rms () in
  (t, rms)

let summary_of t = Format.asprintf "%a" Metrics.pp_summary (Scheduler.metrics t)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* An outage spanning the pivot's subsystem: the non-retriable test
   activity is deflected to the alternative branch (doc_drawing) instead
   of waiting for a window that outlives the process. *)
let test_outage_deflects_pivot () =
  let faults =
    Faults.make
      ~outages:[ Faults.outage ~subsystem:"testdb" ~from_:0.0 ~until_:1000.0 ]
      ()
  in
  let t, rms = cim_setup_faults ~faults "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "committed via the alternative branch" true
    (Scheduler.status t 1 = Schedule.Committed);
  let h = Scheduler.history t in
  check Alcotest.bool "history legal" true (Schedule.legal h);
  check Alcotest.bool "history RED" true (Criteria.red h);
  let pdm = find_rm rms "pdm" in
  let docrepo = find_rm rms "docrepo" in
  check Alcotest.bool "BOM compensated on the way to the alternative" true
    (Store.get (Rm.store pdm) "bom:boiler" = Value.Nil);
  check Alcotest.bool "alternative documented the drawing" true
    (Store.get (Rm.store docrepo) "drawing_doc:boiler" <> Value.Nil);
  check Alcotest.bool "deflection counted" true
    (Metrics.count (Scheduler.metrics t) "outage_deflections" >= 1);
  check Alcotest.bool "deflections in the metrics summary" true
    (contains ~needle:"outage_deflections" (summary_of t))

(* The ablation arm: with degradation off, the pivot polls through the
   outage with capped backoff and commits on the preferred path once the
   window closes. *)
let test_outage_wait_ablation () =
  let faults =
    Faults.make ~outages:[ Faults.outage ~subsystem:"testdb" ~from_:0.0 ~until_:30.0 ] ()
  in
  let config = { Scheduler.default_config with outage_degrade = false } in
  let t, rms = cim_setup_faults ~config ~faults "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "committed on the preferred path" true
    (Scheduler.status t 1 = Schedule.Committed);
  let docrepo = find_rm rms "docrepo" in
  check Alcotest.bool "tech doc written (preferred path)" true
    (Store.get (Rm.store docrepo) "techdoc:boiler" <> Value.Nil);
  check Alcotest.bool "outage polls counted" true
    (Metrics.count (Scheduler.metrics t) "unavailable" >= 1);
  check Alcotest.bool "run outlives the outage window" true (Scheduler.now t > 30.0)

(* A retriable activity keeps retrying past the outage (Definition 3
   guarantees its eventual success): no deflection, just backoff. *)
let test_retriable_rides_out_outage () =
  let faults =
    Faults.make ~outages:[ Faults.outage ~subsystem:"docrepo" ~from_:3.5 ~until_:20.0 ] ()
  in
  let t, rms = cim_setup_faults ~faults "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "committed on the preferred path" true
    (Scheduler.status t 1 = Schedule.Committed);
  let docrepo = find_rm rms "docrepo" in
  check Alcotest.bool "tech doc written after the outage" true
    (Store.get (Rm.store docrepo) "techdoc:boiler" <> Value.Nil);
  check Alcotest.bool "no deflection for retriables" true
    (Metrics.count (Scheduler.metrics t) "outage_deflections" = 0);
  check Alcotest.bool "retries counted" true
    (Metrics.count (Scheduler.metrics t) "retries" >= 1);
  check Alcotest.bool "retries in the metrics summary" true
    (contains ~needle:"retries" (summary_of t));
  check Alcotest.bool "run outlives the outage window" true (Scheduler.now t > 20.0)

(* A latency spike pushing the invocation past the client-side timeout:
   the attempt is abandoned, backed off, and eventually succeeds once the
   spike window closes. *)
let test_latency_spike_timeout () =
  let faults =
    Faults.make
      ~spikes:[ Faults.spike ~subsystem:"docrepo" ~from_:0.0 ~until_:50.0 ~factor:10.0 ]
      ()
  in
  let config = { Scheduler.default_config with invocation_timeout = Some 3.0 } in
  let t, rms = cim_setup_faults ~config ~faults "boiler" in
  Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
  Scheduler.run t;
  check Alcotest.bool "finished" true (Scheduler.finished t);
  check Alcotest.bool "committed" true (Scheduler.status t 1 = Schedule.Committed);
  let docrepo = find_rm rms "docrepo" in
  check Alcotest.bool "tech doc written after the spike" true
    (Store.get (Rm.store docrepo) "techdoc:boiler" <> Value.Nil);
  check Alcotest.bool "timeouts counted" true
    (Metrics.count (Scheduler.metrics t) "timeouts" >= 1);
  check Alcotest.bool "retries counted" true
    (Metrics.count (Scheduler.metrics t) "retries" >= 1);
  check Alcotest.bool "backoff waits observed" true
    (Metrics.samples (Scheduler.metrics t) "backoff_wait" <> [])

(* The scripted crash trigger: die right after the third WAL append, then
   recover from the truncated log. *)
let test_crash_trigger_fault_plan () =
  let faults = Faults.make ~crash_after_appends:3 () in
  let parts = [ "boiler" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let t = Scheduler.create ~faults ~spec ~rms () in
  let construction = Cim.construction ~pid:1 ~part:"boiler" in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  Scheduler.run t;
  check Alcotest.bool "crash trigger fired" true (Scheduler.is_crashed t);
  check Alcotest.int "log truncated exactly at the trigger" 3
    (List.length (Scheduler.wal_records t));
  check Alcotest.bool "not finished at the crash" false (Scheduler.finished t);
  match Scheduler.recover ~spec ~rms ~procs:[ construction ] (Scheduler.wal_records t) with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
      Scheduler.run t2;
      check Alcotest.bool "recovery finished" true (Scheduler.finished t2);
      let h = Scheduler.history t2 in
      check Alcotest.bool "recovered history legal" true (Schedule.legal h);
      check Alcotest.bool "recovered history RED" true (Criteria.red h)

(* Jittered backoff still comes from the seeded stream: two identical runs
   must agree event for event. *)
let test_jitter_is_deterministic () =
  let run () =
    let params = { Generator.default_params with services = 8; conflict_density = 0.3 } in
    let rms = Generator.rms params ~fail_prob:(fun _ -> 0.3) ~seed:5 () in
    let spec = Generator.spec params in
    let config =
      {
        Scheduler.default_config with
        seed = 5;
        backoff = { Scheduler.default_backoff with jitter = 0.4 };
      }
    in
    let t = Scheduler.create ~config ~spec ~rms () in
    List.iteri
      (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p)
      (Generator.batch ~seed:50 params ~n:5);
    Scheduler.run t;
    check Alcotest.bool "finished" true (Scheduler.finished t);
    (Scheduler.now t, List.length (Schedule.events (Scheduler.history t)))
  in
  let t1, e1 = run () in
  let t2, e2 = run () in
  check (Alcotest.float 0.0) "same makespan" t1 t2;
  check Alcotest.int "same event count" e1 e2

let fault_suite =
  [
    Alcotest.test_case "outage over the pivot deflects to the alternative" `Quick
      test_outage_deflects_pivot;
    Alcotest.test_case "outage wait-out ablation (no degradation)" `Quick
      test_outage_wait_ablation;
    Alcotest.test_case "retriable rides out an outage" `Quick test_retriable_rides_out_outage;
    Alcotest.test_case "latency spike hits the invocation timeout" `Quick
      test_latency_spike_timeout;
    Alcotest.test_case "scripted crash trigger and recovery" `Quick
      test_crash_trigger_fault_plan;
    Alcotest.test_case "jittered backoff is deterministic" `Quick test_jitter_is_deterministic;
  ]

let suite = suite @ fault_suite

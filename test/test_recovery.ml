(* Write-ahead log and crash recovery: log round-trips, recovery analysis,
   and full crash/recover cycles of the scheduler (the group abort of
   Definition 8 after a scheduler failure). *)

open Tpm_core
module Wal = Tpm_wal.Wal
module Recovery = Tpm_wal.Recovery
module Scheduler = Tpm_scheduler.Scheduler
module Generator = Tpm_workload.Generator
module Cim = Tpm_workload.Cim
module Rm = Tpm_subsys.Rm
module Store = Tpm_kv.Store
module Value = Tpm_kv.Value

let check = Alcotest.check

let rm_log path =
  List.iter Sys.remove (Wal.segment_files path);
  if Sys.file_exists path then Sys.remove path

let test_wal_roundtrip () =
  let path = Filename.temp_file "tpm_wal" ".log" in
  let wal = Wal.create ~path () in
  let records =
    [
      Wal.Process_registered 1;
      Wal.Invoked { pid = 1; act = 1 };
      Wal.Prepared { pid = 1; act = 2 };
      Wal.Prepared_decided { pid = 1; act = 2; commit = true };
      Wal.Compensated { pid = 1; act = 1 };
      Wal.Commit_requested 1;
      Wal.Process_committed 1;
      Wal.Checkpoint { committed = [ 1 ]; aborted = [] };
    ]
  in
  List.iter (Wal.append wal) records;
  Wal.close wal;
  check Alcotest.int "in-memory size" (List.length records) (Wal.size wal);
  let report = Wal.load path in
  check Alcotest.bool "file round-trip" true (report.Wal.records = records);
  check Alcotest.int "clean log has no anomalies" 0 (List.length report.Wal.anomalies);
  check Alcotest.int "every record has an extent" (List.length records)
    (List.length report.Wal.extents);
  rm_log path

(* Regression: [Wal.create] used to open the mirror with [open_out_bin],
   silently truncating — and thereby destroying — an existing log.  It must
   refuse unless the caller explicitly asks for a fresh log. *)
let test_create_refuses_existing_log () =
  let path = Filename.temp_file "tpm_wal_reopen" ".log" in
  let wal = Wal.create ~path () in
  Wal.append wal (Wal.Process_registered 1);
  Wal.close wal;
  (match Wal.create ~path () with
  | exception Invalid_argument _ -> ()
  | (_ : Wal.t) -> Alcotest.fail "reopening a nonempty log must be refused");
  check Alcotest.bool "refused create left the log intact" true
    (Wal.load_records path = [ Wal.Process_registered 1 ]);
  let wal2 = Wal.create ~path ~fresh:true () in
  Wal.append wal2 (Wal.Process_registered 2);
  Wal.close wal2;
  check Alcotest.bool "fresh:true starts over" true
    (Wal.load_records path = [ Wal.Process_registered 2 ]);
  rm_log path

(* The default sync policy must actually fsync: every append is durable the
   moment it returns, so a crash image (power loss) loses nothing. *)
let test_default_sync_is_durable () =
  let path = Filename.temp_file "tpm_wal_durable" ".log" in
  let records = [ Wal.Process_registered 1; Wal.Invoked { pid = 1; act = 1 } ] in
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) records;
  let st = Wal.stats wal in
  check Alcotest.int "one fsync per append" 2 st.Wal.fsyncs;
  check Alcotest.int "all records durable" 2 st.Wal.durable_records;
  Wal.crash_image wal;
  check Alcotest.bool "power loss loses nothing under Sync_each" true
    (Wal.load_records path = records);
  rm_log path;
  (* under No_sync the same crash image loses the buffered tail *)
  let path2 = Filename.temp_file "tpm_wal_nosync" ".log" in
  let wal2 = Wal.create ~path:path2 ~sync:Wal.No_sync () in
  List.iter (Wal.append wal2) records;
  check Alcotest.int "No_sync never fsyncs" 0 (Wal.stats wal2).Wal.fsyncs;
  Wal.crash_image wal2;
  check Alcotest.bool "power loss erases unsynced appends" true (Wal.load_records path2 = []);
  rm_log path2

let test_analyze_committed_process () =
  let p = Fixtures.p2 in
  let records =
    [
      Wal.Process_registered 2;
      Wal.Invoked { pid = 2; act = 1 };
      Wal.Invoked { pid = 2; act = 2 };
      Wal.Process_committed 2;
    ]
  in
  match Recovery.analyze ~procs:[ p ] records with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      check Alcotest.(list int) "committed" [ 2 ] plan.Recovery.committed;
      check Alcotest.int "no interrupted" 0 (List.length plan.Recovery.interrupted)

let test_analyze_interrupted_b_rec () =
  let p = Fixtures.p2 in
  let records =
    [
      Wal.Process_registered 2;
      Wal.Invoked { pid = 2; act = 1 };
      Wal.Invoked { pid = 2; act = 2 };
    ]
  in
  match Recovery.analyze ~procs:[ p ] records with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      match plan.Recovery.interrupted with
      | [ ip ] ->
          check Alcotest.bool "B-REC" true (ip.Recovery.state = Execution.B_rec);
          check Fixtures.instance_list "completion compensates in reverse"
            [ Fixtures.(Activity.Inverse (a2 2)); Fixtures.(Activity.Inverse (a2 1)) ]
            ip.Recovery.completion
      | _ -> Alcotest.fail "expected one interrupted process")

let test_analyze_interrupted_f_rec () =
  let p = Fixtures.p1 in
  let records =
    [
      Wal.Process_registered 1;
      Wal.Invoked { pid = 1; act = 1 };
      Wal.Invoked { pid = 1; act = 2 };
      Wal.Invoked { pid = 1; act = 3 };
    ]
  in
  match Recovery.analyze ~procs:[ p ] records with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      match plan.Recovery.interrupted with
      | [ ip ] ->
          check Alcotest.bool "F-REC" true (ip.Recovery.state = Execution.F_rec);
          check Fixtures.instance_list "forward completion (Example 2)"
            Fixtures.[ inv1 3; fwd1 5; fwd1 6 ]
            ip.Recovery.completion
      | _ -> Alcotest.fail "expected one interrupted process")

let test_analyze_in_doubt_trailing_prepared () =
  let p = Fixtures.p1 in
  let records =
    [
      Wal.Process_registered 1;
      Wal.Invoked { pid = 1; act = 1 };
      Wal.Prepared { pid = 1; act = 2 };
    ]
  in
  match Recovery.analyze ~procs:[ p ] records with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      match plan.Recovery.interrupted with
      | [ ip ] ->
          (* the trailing in-doubt pivot resolves to abort: backward recovery *)
          check Alcotest.(list int) "in-doubt resolved to abort" [ 2 ] ip.Recovery.in_doubt;
          check Alcotest.bool "B-REC" true (ip.Recovery.state = Execution.B_rec);
          check Fixtures.instance_list "completion" [ Fixtures.inv1 1 ] ip.Recovery.completion
      | _ -> Alcotest.fail "expected one interrupted process")

(* Regression: a Pending followed by later effects of the same process is
   still undecided.  An earlier revision resolved any non-final Pending to
   commit merely because later records followed it — with two concurrent
   prepares the first one's 2PC may be undecided when the second activity
   logs, and replaying it forward would resurrect an effect its subsystem
   presumes aborted. *)
let parallel_prepares =
  (* two parallel retriable (non-compensatable) activities — each gets its
     commit deferred through 2PC when a conflicting predecessor is still
     uncommitted, so both can be prepared-but-undecided at once *)
  Process.make_exn ~pid:7
    ~activities:
      [
        Fixtures.act ~proc:7 ~act:1 ~service:"w1" ~kind:Activity.Retriable;
        Fixtures.act ~proc:7 ~act:2 ~service:"w2" ~kind:Activity.Retriable;
      ]
    ~prec:[] ~pref:[]

let analyze_one records =
  match Recovery.analyze ~procs:[ parallel_prepares ] records with
  | Error e -> Alcotest.fail e
  | Ok plan -> (
      match plan.Recovery.interrupted with
      | [ ip ] -> ip
      | _ -> Alcotest.fail "expected one interrupted process")

let test_analyze_non_final_pending_presumed_abort () =
  (* a1 prepared (2PC undecided), then the parallel a2 logged its effect
     and the scheduler crashed *)
  let ip =
    analyze_one
      [
        Wal.Process_registered 7;
        Wal.Prepared { pid = 7; act = 1 };
        Wal.Invoked { pid = 7; act = 2 };
      ]
  in
  check Alcotest.(list int) "non-final pending presumed aborted" [ 1 ] ip.Recovery.in_doubt;
  check Alcotest.(list int) "no durable decision, nothing re-committed" []
    ip.Recovery.in_doubt_commit;
  check Fixtures.instance_list "only a2's effect survives"
    [ Activity.Forward (Process.find parallel_prepares 2) ]
    ip.Recovery.executed

let test_analyze_two_concurrent_prepares () =
  (* both activities prepared concurrently, neither decided: both presumed
     aborted, regardless of log order *)
  let ip =
    analyze_one
      [
        Wal.Process_registered 7;
        Wal.Prepared { pid = 7; act = 1 };
        Wal.Prepared { pid = 7; act = 2 };
      ]
  in
  check Alcotest.(list int) "both prepares presumed aborted" [ 1; 2 ] ip.Recovery.in_doubt;
  check Fixtures.instance_list "no surviving effects" [] ip.Recovery.executed;
  check Alcotest.bool "B-REC: nothing committed" true (ip.Recovery.state = Execution.B_rec)

let test_analyze_non_final_pending_durable_commit () =
  (* same shape, but a1's coordinator durably logged the commit decision:
     the pending resolves to commit and must be re-delivered *)
  let ip =
    analyze_one
      [
        Wal.Process_registered 7;
        Wal.Coord_begin { cid = 1; pid = 7; act = 1; parts = [ "A" ] };
        Wal.Prepared { pid = 7; act = 1 };
        Wal.Coord_committed { cid = 1; pid = 7 };
        Wal.Invoked { pid = 7; act = 2 };
      ]
  in
  check Alcotest.(list int) "durable decision re-committed" [ 1 ] ip.Recovery.in_doubt_commit;
  check Alcotest.(list int) "nothing presumed aborted" [] ip.Recovery.in_doubt;
  check Fixtures.instance_list "both effects survive"
    [
      Activity.Forward (Process.find parallel_prepares 1);
      Activity.Forward (Process.find parallel_prepares 2);
    ]
    ip.Recovery.executed

let test_analyze_missing_process () =
  let records = [ Wal.Process_registered 9; Wal.Invoked { pid = 9; act = 1 } ] in
  match Recovery.analyze ~procs:[] records with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for unregistered process"

(* Full crash/recovery cycle on the CIM scenario. *)
let test_crash_recovery_cim () =
  let parts = [ "boiler" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let t = Scheduler.create ~spec ~rms () in
  let construction = Cim.construction ~pid:1 ~part:"boiler" in
  let production = Cim.production ~pid:2 ~part:"boiler" in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of production;
  (* crash mid-flight: construction has committed design + pdm_entry + test *)
  Scheduler.run ~until:4.6 t;
  let records = Scheduler.crash t in
  check Alcotest.bool "not finished at crash" false (Scheduler.finished t);
  match Scheduler.recover ~spec ~rms ~procs:[ construction; production ] records with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
      Scheduler.run t2;
      check Alcotest.bool "recovery finished" true (Scheduler.finished t2);
      (* the recovered history replays the pre-crash events: it is the
         complete global schedule *)
      let stitched = Scheduler.history t2 in
      check Alcotest.bool "recovered schedule legal" true (Schedule.legal stitched);
      check Alcotest.bool "recovered schedule RED" true (Criteria.red stitched);
      (* construction was in F-REC: recovery finishes it forward *)
      check Alcotest.bool "construction recovered committing" true
        (Scheduler.status t2 1 = Schedule.Committed);
      let pdm = List.find (fun rm -> Rm.name rm = "pdm") rms in
      check Alcotest.bool "BOM present after forward recovery" true
        (Store.get (Rm.store pdm) "bom:boiler" <> Value.Nil)

(* Crash while a prepared (deferred-commit) invocation is in doubt. *)
let test_crash_with_in_doubt_prepared () =
  let parts = [ "boiler" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let config =
    {
      Scheduler.default_config with
      service_time = (fun s -> if s = "tech_doc:boiler" then 8.0 else 1.0);
    }
  in
  let t = Scheduler.create ~config ~spec ~rms () in
  let construction = Cim.construction ~pid:1 ~part:"boiler" in
  let production = Cim.production ~pid:2 ~part:"boiler" in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  Scheduler.submit t ~at:2.5 ~args_of:Cim.args_of production;
  (* by t=9 production prepared its pivot (produce) and waits for C_1 *)
  Scheduler.run ~until:9.0 t;
  let records = Scheduler.crash t in
  let productdb = List.find (fun rm -> Rm.name rm = "productdb") rms in
  let prepared_before = Rm.prepared_tokens productdb in
  check Alcotest.bool "a prepared invocation survives the crash" true (prepared_before <> []);
  match Scheduler.recover ~config ~spec ~rms ~procs:[ construction; production ] records with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
      check Alcotest.(list int) "in-doubt prepared resolved (aborted)" []
        (Rm.prepared_tokens productdb);
      Scheduler.run t2;
      check Alcotest.bool "recovery finished" true (Scheduler.finished t2);
      check Alcotest.bool "no part produced by the aborted pivot" true
        (Store.get (Rm.store productdb) "produced:boiler" = Value.Nil)

(* Random workloads: crash at an arbitrary point, recover, verify that
   every store key reflects exactly the net effects of the stitched
   schedule. *)
let test_crash_recovery_random () =
  List.iter
    (fun (seed, crash_at) ->
      let params = { Generator.default_params with services = 8; conflict_density = 0.25 } in
      let rms = Generator.rms params ~seed () in
      let spec = Generator.spec params in
      let config = { Scheduler.default_config with seed } in
      let t = Scheduler.create ~config ~spec ~rms () in
      let procs = Generator.batch ~seed:(seed * 10) params ~n:5 in
      List.iteri (fun i p -> Scheduler.submit t ~at:(0.3 *. float_of_int i) p) procs;
      Scheduler.run ~until:crash_at t;
      let records = Scheduler.crash t in
      match Scheduler.recover ~config ~spec ~rms ~procs records with
      | Error e -> Alcotest.fail e
      | Ok t2 ->
          Scheduler.run t2;
          check Alcotest.bool
            (Printf.sprintf "seed %d: recovery finished" seed)
            true (Scheduler.finished t2);
          let stitched = Scheduler.history t2 in
          check Alcotest.bool
            (Printf.sprintf "seed %d: recovered schedule RED" seed)
            true (Criteria.red stitched);
          (* net effects: every svcN forward adds 1 to kN, every inverse
             subtracts 1; stores must agree with the stitched schedule *)
          let net = Hashtbl.create 8 in
          List.iter
            (fun inst ->
              let svc = (Activity.instance_base inst).Activity.service in
              match String.index_opt svc '_' with
              | Some _ -> ()  (* inverse services only appear via compensate *)
              | None ->
                  let delta = if Activity.is_inverse inst then -1 else 1 in
                  let cur = Option.value ~default:0 (Hashtbl.find_opt net svc) in
                  Hashtbl.replace net svc (cur + delta))
            (Schedule.activities stitched);
          Hashtbl.iter
            (fun svc expected ->
              let idx = int_of_string (String.sub svc 3 (String.length svc - 3)) in
              let key = Printf.sprintf "k%d" idx in
              let total =
                List.fold_left
                  (fun acc rm ->
                    match Store.get (Rm.store rm) key with
                    | Value.Int n -> acc + n
                    | _ -> acc)
                  0 rms
              in
              check Alcotest.int
                (Printf.sprintf "seed %d: net effect on %s" seed key)
                expected total)
            net)
    [ (3, 2.5); (7, 4.0); (11, 6.5); (13, 1.0) ]

let suite =
  [
    Alcotest.test_case "wal file round-trip" `Quick test_wal_roundtrip;
    Alcotest.test_case "create refuses an existing log" `Quick test_create_refuses_existing_log;
    Alcotest.test_case "default sync policy is durable" `Quick test_default_sync_is_durable;
    Alcotest.test_case "analyze: committed process" `Quick test_analyze_committed_process;
    Alcotest.test_case "analyze: interrupted in B-REC" `Quick test_analyze_interrupted_b_rec;
    Alcotest.test_case "analyze: interrupted in F-REC" `Quick test_analyze_interrupted_f_rec;
    Alcotest.test_case "analyze: trailing in-doubt prepared" `Quick
      test_analyze_in_doubt_trailing_prepared;
    Alcotest.test_case "analyze: non-final pending presumed aborted" `Quick
      test_analyze_non_final_pending_presumed_abort;
    Alcotest.test_case "analyze: two concurrent prepares" `Quick
      test_analyze_two_concurrent_prepares;
    Alcotest.test_case "analyze: non-final pending with durable commit" `Quick
      test_analyze_non_final_pending_durable_commit;
    Alcotest.test_case "analyze: missing process definition" `Quick test_analyze_missing_process;
    Alcotest.test_case "crash/recovery on CIM" `Quick test_crash_recovery_cim;
    Alcotest.test_case "crash with in-doubt prepared" `Quick test_crash_with_in_doubt_prepared;
    Alcotest.test_case "crash/recovery on random workloads" `Quick test_crash_recovery_random;
  ]

(* --- checkpointing and log compaction --- *)

let test_compact_drops_closed_records () =
  let records =
    [
      Wal.Process_registered 1;
      Wal.Invoked { pid = 1; act = 1 };
      Wal.Process_committed 1;
      Wal.Process_registered 2;
      Wal.Invoked { pid = 2; act = 1 };
      Wal.Checkpoint { committed = [ 1 ]; aborted = [] };
      Wal.Invoked { pid = 2; act = 2 };
    ]
  in
  let compacted = Wal.compact records in
  check Alcotest.bool "P1's records dropped" true
    (not (List.mem (Wal.Invoked { pid = 1; act = 1 }) compacted));
  check Alcotest.bool "P2's records kept" true
    (List.mem (Wal.Invoked { pid = 2; act = 1 }) compacted
    && List.mem (Wal.Invoked { pid = 2; act = 2 }) compacted);
  check Alcotest.bool "checkpoint kept" true
    (List.exists (function Wal.Checkpoint _ -> true | _ -> false) compacted)

let test_compact_preserves_recovery_plan () =
  let parts = [ "boiler" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let construction = Cim.construction ~pid:1 ~part:"boiler" in
  let production = Cim.production ~pid:2 ~part:"boiler" in
  let t = Scheduler.create ~spec ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  (* construction commits around t=4; checkpoint it, then start production
     and crash it mid-flight *)
  Scheduler.run ~until:4.5 t;
  Scheduler.checkpoint t;
  Scheduler.submit t ~at:5.0 ~args_of:Cim.args_of production;
  Scheduler.run ~until:7.5 t;
  let records = Scheduler.crash t in
  let compacted = Wal.compact records in
  check Alcotest.bool "compaction shrinks the log" true
    (List.length compacted < List.length records);
  let procs = [ construction; production ] in
  match (Recovery.analyze ~procs records, Recovery.analyze ~procs compacted) with
  | Ok full, Ok small ->
      check Alcotest.(list int) "same committed" full.Recovery.committed small.Recovery.committed;
      check Alcotest.int "same interrupted count"
        (List.length full.Recovery.interrupted)
        (List.length small.Recovery.interrupted);
      List.iter2
        (fun (a : Recovery.process_plan) (b : Recovery.process_plan) ->
          check Alcotest.int "same pid" a.Recovery.pid b.Recovery.pid;
          check Fixtures.instance_list "same completion" a.Recovery.completion
            b.Recovery.completion)
        full.Recovery.interrupted small.Recovery.interrupted
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_recover_from_compacted_log () =
  let parts = [ "boiler" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let construction = Cim.construction ~pid:1 ~part:"boiler" in
  let production = Cim.production ~pid:2 ~part:"boiler" in
  let t = Scheduler.create ~spec ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  Scheduler.run ~until:4.5 t;
  Scheduler.checkpoint t;
  Scheduler.submit t ~at:5.0 ~args_of:Cim.args_of production;
  Scheduler.run ~until:7.5 t;
  let compacted = Wal.compact (Scheduler.crash t) in
  match Scheduler.recover ~spec ~rms ~procs:[ construction; production ] compacted with
  | Error e -> Alcotest.fail e
  | Ok t2 ->
      Scheduler.run t2;
      check Alcotest.bool "recovery finished" true (Scheduler.finished t2);
      check Alcotest.bool "construction still committed" true
        (Scheduler.status t2 1 = Schedule.Committed)

(* A crash can tear the final record of the mirrored log; load must return
   the intact prefix instead of failing.  Cut the real writer's bytes at
   two points inside the final frame: mid-payload and mid-header. *)
let test_load_tolerates_torn_tail () =
  let records =
    [
      Wal.Process_registered 1;
      Wal.Invoked { pid = 1; act = 1 };
      Wal.Prepared { pid = 1; act = 2 };
      Wal.Process_committed 1;
    ]
  in
  let kept = List.filteri (fun i _ -> i < 3) records in
  List.iter
    (fun cut_back ->
      let path = Filename.temp_file "tpm_wal_torn" ".log" in
      let wal = Wal.create ~path () in
      List.iter (Wal.append wal) records;
      Wal.close wal;
      let report = Wal.load path in
      let seg, off, len =
        List.nth report.Wal.extents (List.length report.Wal.extents - 1)
      in
      let seg_file = List.nth (Wal.segment_files path) seg in
      Wal.Chaos.truncate ~path:seg_file ~bytes:(off + len - cut_back);
      let torn = Wal.load path in
      check Alcotest.bool "torn tail dropped, prefix intact" true (torn.Wal.records = kept);
      check Alcotest.bool "classified as torn" true
        (match torn.Wal.anomalies with [ Wal.Torn_tail _ ] -> true | _ -> false);
      rm_log path)
    [ 3; (* mid-payload *) 11 (* header only partially present *) ]

(* Mid-log corruption is not a torn tail: load must refuse the log and name
   the damaged record instead of silently returning a truncated prefix (which
   recovery would then treat as a complete, shorter history). *)
let test_load_raises_on_midlog_corruption () =
  let records =
    [ Wal.Process_registered 1; Wal.Invoked { pid = 1; act = 1 }; Wal.Process_committed 1 ]
  in
  let path = Filename.temp_file "tpm_wal_corrupt" ".log" in
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) records;
  Wal.close wal;
  (* flip one payload bit of the second record in place *)
  let seg, off, _len = List.nth (Wal.load path).Wal.extents 1 in
  let seg_file = List.nth (Wal.segment_files path) seg in
  Wal.Chaos.flip_bit ~path:seg_file ~byte:(off + 8) ~bit:3;
  (match Wal.load path with
  | exception Wal.Corrupt { segment; index; _ } ->
      check Alcotest.int "damaged record named" 1 index;
      check Alcotest.int "damaged segment named" 0 segment
  | report ->
      Alcotest.fail
        (Printf.sprintf "expected Wal.Corrupt, got %d records"
           (List.length report.Wal.records)));
  (* salvage quarantines from the damage to the segment's end *)
  let salvaged = Wal.load ~policy:Wal.Salvage path in
  check Alcotest.bool "salvage keeps the intact prefix" true
    (salvaged.Wal.records = [ Wal.Process_registered 1 ]);
  check Alcotest.bool "salvage reports the corruption" true
    (List.exists
       (function Wal.Corrupt_record { index = 1; _ } -> true | _ -> false)
       salvaged.Wal.anomalies);
  check Alcotest.bool "salvage quarantined the damaged bytes" true
    (salvaged.Wal.quarantined_bytes > 0);
  rm_log path

(* The crash may land anywhere around a checkpoint; on every prefix of the
   log, compacting first must not change the recovery plan. *)
let test_compact_analyze_equivalent_on_all_prefixes () =
  let parts = [ "boiler" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let construction = Cim.construction ~pid:1 ~part:"boiler" in
  let production = Cim.production ~pid:2 ~part:"boiler" in
  let t = Scheduler.create ~spec ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  Scheduler.run ~until:4.5 t;
  Scheduler.checkpoint t;
  Scheduler.submit t ~at:5.0 ~args_of:Cim.args_of production;
  Scheduler.run t;
  Scheduler.checkpoint t;
  let records = Scheduler.crash t in
  let procs = [ construction; production ] in
  let n = List.length records in
  check Alcotest.bool "log spans two checkpoints" true
    (List.length (List.filter (function Wal.Checkpoint _ -> true | _ -> false) records) = 2);
  for len = 0 to n do
    let prefix = List.filteri (fun i _ -> i < len) records in
    match (Recovery.analyze ~procs prefix, Recovery.analyze ~procs (Wal.compact prefix)) with
    | Ok full, Ok small ->
        check Alcotest.(list int)
          (Printf.sprintf "prefix %d: same committed" len)
          full.Recovery.committed small.Recovery.committed;
        check Alcotest.(list int)
          (Printf.sprintf "prefix %d: same aborted" len)
          full.Recovery.aborted small.Recovery.aborted;
        check Alcotest.(list int)
          (Printf.sprintf "prefix %d: same interrupted pids" len)
          (List.map (fun (p : Recovery.process_plan) -> p.Recovery.pid)
             full.Recovery.interrupted)
          (List.map (fun (p : Recovery.process_plan) -> p.Recovery.pid)
             small.Recovery.interrupted);
        List.iter2
          (fun (a : Recovery.process_plan) (b : Recovery.process_plan) ->
            check Fixtures.instance_list
              (Printf.sprintf "prefix %d: same completion for P%d" len a.Recovery.pid)
              a.Recovery.completion b.Recovery.completion;
            check Alcotest.(list int)
              (Printf.sprintf "prefix %d: same in-doubt for P%d" len a.Recovery.pid)
              a.Recovery.in_doubt b.Recovery.in_doubt)
          full.Recovery.interrupted small.Recovery.interrupted
    | Error e, _ | _, Error e ->
        Alcotest.fail (Printf.sprintf "prefix %d: analyze failed: %s" len e)
  done

(* Property: compaction never changes the recovery plan.  Randomized
   workload logs, crashed at arbitrary points, with synthetic checkpoints
   spliced in at random positions — each checkpoint names exactly the
   processes the records before it closed, which is what
   [Scheduler.checkpoint] would have logged there. *)
let test_compact_analyze_random_checkpoints () =
  let rand = Random.State.make [| 0xC0FFEE |] in
  let splice cuts records =
    let rec go i ~committed ~aborted = function
      | [] -> if List.mem i cuts then [ Wal.Checkpoint { committed; aborted } ] else []
      | r :: rest ->
          let cp = if List.mem i cuts then [ Wal.Checkpoint { committed; aborted } ] else [] in
          let committed, aborted =
            match r with
            | Wal.Process_committed pid -> (pid :: committed, aborted)
            | Wal.Process_aborted pid -> (committed, pid :: aborted)
            | _ -> (committed, aborted)
          in
          cp @ (r :: go (i + 1) ~committed ~aborted rest)
    in
    go 0 ~committed:[] ~aborted:[] records
  in
  (* page-store records are invisible to process recovery: sprinkling
     Kv_write / Dirty_pages through the log must leave the analyze plan
     bit-identical, compacted or not *)
  let splice_kv rand records =
    List.concat_map
      (fun r ->
        let noise =
          match Random.State.int rand 6 with
          | 0 ->
              [ Wal.Kv_write { rm = "ss0"; key = "k"; value = Some "v" } ]
          | 1 -> [ Wal.Dirty_pages { rm = "ss0"; pages = [ (0, 1); (3, 2) ] } ]
          | _ -> []
        in
        noise @ [ r ])
      records
  in
  List.iter
    (fun seed ->
      let params = { Generator.default_params with services = 8; conflict_density = 0.3 } in
      let rms = Generator.rms params ~seed () in
      let spec = Generator.spec params in
      let config = { Scheduler.default_config with seed } in
      let t = Scheduler.create ~config ~spec ~rms () in
      let procs = Generator.batch ~seed:(seed * 17) params ~n:4 in
      List.iteri (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p) procs;
      Scheduler.run ~until:(1.0 +. Random.State.float rand 7.0) t;
      let organic = Scheduler.crash t in
      let n = List.length organic in
      for trial = 0 to 3 do
        let cuts = List.init 2 (fun _ -> Random.State.int rand (n + 1)) in
        let log = splice cuts organic |> splice_kv rand in
        let tag = Printf.sprintf "seed %d trial %d" seed trial in
        match (Recovery.analyze ~procs log, Recovery.analyze ~procs (Wal.compact log)) with
        | Ok full, Ok small ->
            check Alcotest.(list int) (tag ^ ": same committed")
              full.Recovery.committed small.Recovery.committed;
            check Alcotest.(list int) (tag ^ ": same aborted")
              full.Recovery.aborted small.Recovery.aborted;
            check Alcotest.(list int) (tag ^ ": same interrupted pids")
              (List.map (fun (p : Recovery.process_plan) -> p.Recovery.pid)
                 full.Recovery.interrupted)
              (List.map (fun (p : Recovery.process_plan) -> p.Recovery.pid)
                 small.Recovery.interrupted);
            List.iter2
              (fun (a : Recovery.process_plan) (b : Recovery.process_plan) ->
                check Fixtures.instance_list
                  (Printf.sprintf "%s: same completion for P%d" tag a.Recovery.pid)
                  a.Recovery.completion b.Recovery.completion;
                check Alcotest.(list int)
                  (Printf.sprintf "%s: same in-doubt for P%d" tag a.Recovery.pid)
                  a.Recovery.in_doubt b.Recovery.in_doubt)
              full.Recovery.interrupted small.Recovery.interrupted
        | Error e, _ | _, Error e -> Alcotest.fail (tag ^ ": analyze failed: " ^ e)
      done)
    [ 21; 23; 29; 31 ]

(* shared plan-equivalence assertion for the fuzzy-span property tests *)
let check_same_plan tag full small =
  check Alcotest.(list int) (tag ^ ": same committed") full.Recovery.committed
    small.Recovery.committed;
  check Alcotest.(list int) (tag ^ ": same aborted") full.Recovery.aborted
    small.Recovery.aborted;
  check
    Alcotest.(list int)
    (tag ^ ": same interrupted pids")
    (List.map (fun (p : Recovery.process_plan) -> p.Recovery.pid) full.Recovery.interrupted)
    (List.map (fun (p : Recovery.process_plan) -> p.Recovery.pid) small.Recovery.interrupted);
  List.iter2
    (fun (a : Recovery.process_plan) (b : Recovery.process_plan) ->
      check Fixtures.instance_list
        (Printf.sprintf "%s: same completion for P%d" tag a.Recovery.pid)
        a.Recovery.completion b.Recovery.completion;
      check
        Alcotest.(list int)
        (Printf.sprintf "%s: same in-doubt for P%d" tag a.Recovery.pid)
        a.Recovery.in_doubt b.Recovery.in_doubt)
    full.Recovery.interrupted small.Recovery.interrupted

let with_tmp_wal_dir f =
  let dir = Filename.temp_file "tpm_seg" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f (Filename.concat dir "wal.log"))

(* Property: fuzzy checkpoint spans — [Ckpt_begin]/[Ckpt_end] pairs whose
   span may cover records, other spans, and (on disk) segment boundaries —
   never change the recovery plan, whether the log is analyzed directly,
   compacted first, or round-tripped through a real segmented on-disk WAL.
   Spans are spliced at random positions, so across trials they land at,
   inside, and across segment boundaries of the tiny segments used here. *)
let test_compact_analyze_fuzzy_spans_segmented () =
  let rand = Random.State.make [| 0xF422 |] in
  let terminals_before records e =
    List.filteri (fun i _ -> i < e) records
    |> List.fold_left
         (fun (c, a) r ->
           match r with
           | Wal.Process_committed pid -> (pid :: c, a)
           | Wal.Process_aborted pid -> (c, pid :: a)
           | _ -> (c, a))
         ([], [])
  in
  let splice_span rand ~ckpt records =
    let n = List.length records in
    let b = Random.State.int rand (n + 1) in
    let e = b + Random.State.int rand (n + 1 - b) in
    let committed, aborted = terminals_before records e in
    let rec go i rs =
      let here =
        (if i = b then [ Wal.Ckpt_begin { ckpt } ] else [])
        @ if i = e then [ Wal.Ckpt_end { ckpt; committed; aborted } ] else []
      in
      match rs with [] -> here | r :: rest -> here @ (r :: go (i + 1) rest)
    in
    go 0 records
  in
  List.iter
    (fun seed ->
      let params = { Generator.default_params with services = 8; conflict_density = 0.3 } in
      let rms = Generator.rms params ~seed () in
      let spec = Generator.spec params in
      let config = { Scheduler.default_config with seed } in
      let t = Scheduler.create ~config ~spec ~rms () in
      let procs = Generator.batch ~seed:(seed * 17) params ~n:4 in
      List.iteri (fun i p -> Scheduler.submit t ~at:(0.4 *. float_of_int i) p) procs;
      Scheduler.run ~until:(1.0 +. Random.State.float rand 7.0) t;
      let organic = Scheduler.crash t in
      for trial = 0 to 3 do
        let log = splice_span rand ~ckpt:2 (splice_span rand ~ckpt:1 organic) in
        let tag = Printf.sprintf "seed %d trial %d" seed trial in
        (* memory: compaction preserves the plan across fuzzy spans *)
        (match (Recovery.analyze ~procs log, Recovery.analyze ~procs (Wal.compact log)) with
        | Ok full, Ok small -> check_same_plan tag full small
        | Error e, _ | _, Error e -> Alcotest.fail (tag ^ ": analyze failed: " ^ e));
        (* disk: the same log through a real segmented WAL, spans landing
           wherever the tiny segment size puts them *)
        with_tmp_wal_dir @@ fun path ->
        let wal = Wal.create ~path ~segment_bytes:160 ~sync:Wal.No_sync () in
        List.iter (Wal.append wal) log;
        Wal.close wal;
        check Alcotest.bool (tag ^ ": log spans several segments") true
          (List.length (Wal.segment_files path) >= 2);
        let report = Wal.load path in
        check Alcotest.int (tag ^ ": clean disk round-trip") 0
          (List.length report.Wal.anomalies);
        check Alcotest.bool (tag ^ ": records survive the disk round-trip") true
          (report.Wal.records = log);
        match
          ( Recovery.analyze ~procs report.Wal.records,
            Recovery.analyze ~procs (Wal.compact report.Wal.records) )
        with
        | Ok full, Ok small -> check_same_plan (tag ^ " (disk)") full small
        | Error e, _ | _, Error e -> Alcotest.fail (tag ^ ": disk analyze failed: " ^ e)
      done)
    [ 41; 43; 47 ]

(* Organic fuzzy checkpoint: [Scheduler.checkpoint_fuzzy] logs the
   begin/end span on the virtual clock while the workload keeps running
   inside it; a crash after the span must recover identically from the
   full and the compacted log, and a crash *inside* the span (end never
   logged) must leave the plan unchanged too. *)
let test_fuzzy_checkpoint_scheduler () =
  let parts = [ "boiler" ] in
  let rms = Cim.rms ~parts () in
  let spec = Cim.spec ~parts in
  let construction = Cim.construction ~pid:1 ~part:"boiler" in
  let production = Cim.production ~pid:2 ~part:"boiler" in
  let t = Scheduler.create ~spec ~rms () in
  Scheduler.submit t ~args_of:Cim.args_of construction;
  Scheduler.run ~until:4.5 t;
  Scheduler.checkpoint_fuzzy ~window:0.8 t;
  Scheduler.submit t ~at:5.0 ~args_of:Cim.args_of production;
  Scheduler.run t;
  let records = Scheduler.crash t in
  let begins = List.filter (function Wal.Ckpt_begin _ -> true | _ -> false) records in
  let ends =
    List.filter_map
      (function Wal.Ckpt_end { committed; _ } -> Some committed | _ -> None)
      records
  in
  check Alcotest.int "one fuzzy begin" 1 (List.length begins);
  (match ends with
  | [ committed ] ->
      check Alcotest.(list int) "end names the closed process" [ 1 ] committed
  | _ -> Alcotest.fail "expected exactly one Ckpt_end");
  let procs = [ construction; production ] in
  (* full vs compacted agree, and recovery from the compacted log finishes *)
  (match (Recovery.analyze ~procs records, Recovery.analyze ~procs (Wal.compact records)) with
  | Ok full, Ok small -> check_same_plan "organic fuzzy span" full small
  | Error e, _ | _, Error e -> Alcotest.fail ("analyze failed: " ^ e));
  (match Scheduler.recover ~spec ~rms ~procs (Wal.compact records) with
  | Ok t2 ->
      Scheduler.run t2;
      check Alcotest.bool "recovered run finishes both processes" true
        (Scheduler.finished t2)
  | Error e -> Alcotest.fail ("recover failed: " ^ e));
  (* crash inside the span: drop the Ckpt_end and every later record *)
  let inside =
    let n = ref 0 in
    List.filter
      (fun r ->
        (match r with Wal.Ckpt_end _ -> incr n | _ -> ());
        !n = 0)
      records
  in
  match (Recovery.analyze ~procs inside, Recovery.analyze ~procs (Wal.compact inside)) with
  | Ok full, Ok small -> check_same_plan "crash inside the span" full small
  | Error e, _ | _, Error e -> Alcotest.fail ("analyze failed inside span: " ^ e)

(* Group commit must change only durability batching, never the log
   contents: the record stream is identical across sync policies, and the
   batched policy reaches it with strictly fewer fsyncs. *)
let test_group_commit_scheduler () =
  let run_policy sync =
    with_tmp_wal_dir @@ fun path ->
    let parts = [ "boiler" ] in
    let rms = Cim.rms ~parts () in
    let spec = Cim.spec ~parts in
    let config = { Scheduler.default_config with wal_sync = sync } in
    let t = Scheduler.create ~config ~spec ~rms ~wal_path:path () in
    Scheduler.submit t ~args_of:Cim.args_of (Cim.construction ~pid:1 ~part:"boiler");
    Scheduler.submit t ~at:0.3 ~args_of:Cim.args_of (Cim.production ~pid:2 ~part:"boiler");
    Scheduler.run t;
    let stats = Wal.stats (Scheduler.wal t) in
    let records = Scheduler.crash t in
    let on_disk = Wal.load_records path in
    check Alcotest.bool "disk image matches memory after quiescent run" true
      (on_disk = records);
    (records, stats)
  in
  let each, each_stats = run_policy Wal.Sync_each in
  let group, group_stats = run_policy (Wal.Group 0.2) in
  check Alcotest.bool "identical record stream across sync policies" true (each = group);
  check Alcotest.bool "group commit coalesces fsyncs" true
    (group_stats.Wal.fsyncs < each_stats.Wal.fsyncs);
  check Alcotest.bool "some batch held more than one record" true
    (group_stats.Wal.max_batch > 1);
  check Alcotest.int "group commit loses nothing once quiescent"
    each_stats.Wal.durable_records group_stats.Wal.durable_records

let checkpoint_suite =
  [
    Alcotest.test_case "compact drops closed records" `Quick test_compact_drops_closed_records;
    Alcotest.test_case "compaction preserves the recovery plan" `Quick
      test_compact_preserves_recovery_plan;
    Alcotest.test_case "recover from a compacted log" `Quick test_recover_from_compacted_log;
    Alcotest.test_case "load tolerates a torn final record" `Quick test_load_tolerates_torn_tail;
    Alcotest.test_case "load raises on mid-log corruption" `Quick
      test_load_raises_on_midlog_corruption;
    Alcotest.test_case "compact/analyze agree on every crash prefix" `Quick
      test_compact_analyze_equivalent_on_all_prefixes;
    Alcotest.test_case "compact/analyze agree on random checkpointed logs" `Quick
      test_compact_analyze_random_checkpoints;
    Alcotest.test_case "fuzzy spans on segmented logs preserve the plan" `Quick
      test_compact_analyze_fuzzy_spans_segmented;
    Alcotest.test_case "scheduler fuzzy checkpoint crash/recover" `Quick
      test_fuzzy_checkpoint_scheduler;
    Alcotest.test_case "group commit: same log, fewer fsyncs" `Quick
      test_group_commit_scheduler;
  ]

let suite = suite @ checkpoint_suite

(* Exhaustive single-byte corruption fuzz of the CRC-framed segmented WAL.

   Record a multi-segment log once, then for EVERY byte offset of every
   segment (a) flip one bit in place and (b) truncate the segment at that
   offset, and load each mutated image.  The contract under test:

   - no load ever returns a record differing from one that was written
     (in salvage mode: the result is an order-preserving subsequence of
     the original records — damage only ever {e removes} records);
   - a truncation of the final segment is always classified as a torn
     tail (or loads clean, when the cut lands exactly on a frame
     boundary);
   - a bit flip is always detected — fail-stop load either raises
     {!Wal.Corrupt} or, when the flip lands in the final record's length
     prefix making it claim more bytes than remain, degrades to a torn
     tail.  It never silently returns the full original log with a
     mutated record inside. *)

module Wal = Tpm_wal.Wal

let check = Alcotest.check

(* a workload-shaped record mix, sized to roll across several segments *)
let base_records =
  List.concat_map
    (fun pid ->
      [
        Wal.Process_registered pid;
        Wal.Invoked { pid; act = 1 };
        Wal.Prepared { pid; act = 2 };
        Wal.Coord_begin { cid = pid; pid; act = 2; parts = [ "ss0"; "ss1" ] };
        Wal.Coord_committed { cid = pid; pid };
        Wal.Prepared_decided { pid; act = 2; commit = true };
        Wal.Coord_forgotten { cid = pid; pid };
        (* page-store records ride in the same stream: the corruption
           posture (detect, truncate or salvage, never misread) must
           hold for them too *)
        Wal.Kv_write
          { rm = Printf.sprintf "ss%d" (pid mod 2); key = Printf.sprintf "k%d" pid;
            value = (if pid mod 3 = 0 then None else Some (String.make pid 'v')) };
        Wal.Dirty_pages
          { rm = Printf.sprintf "ss%d" (pid mod 2); pages = [ (pid, pid * 3); (pid + 1, pid) ] };
        Wal.Process_committed pid;
      ])
    [ 1; 2; 3; 4; 5 ]

let write_log dir =
  let path = Filename.concat dir "wal.log" in
  let wal = Wal.create ~path ~segment_bytes:128 () in
  List.iter (Wal.append wal) base_records;
  Wal.close wal;
  path

let with_tmpdir f =
  let dir = Filename.temp_file "tpm_fuzz" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* is [sub] an order-preserving subsequence of [full]? *)
let rec subsequence sub full =
  match (sub, full) with
  | [], _ -> true
  | _, [] -> false
  | s :: sub', f :: full' -> if s = f then subsequence sub' full' else subsequence sub full'

let file_size p =
  let ic = open_in_bin p in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)

(* copy the recorded segments into a scratch dir for one mutation *)
let clone_log src_path dst_dir =
  let dst_path = Filename.concat dst_dir "wal.log" in
  List.iter
    (fun seg ->
      Wal.Chaos.copy ~src:seg ~dst:(Filename.concat dst_dir (Filename.basename seg)))
    (Wal.segment_files src_path);
  dst_path

let test_truncation_every_offset () =
  with_tmpdir @@ fun dir ->
  let path = write_log dir in
  let segs = Wal.segment_files path in
  let n_segs = List.length segs in
  check Alcotest.bool "log spans several segments" true (n_segs >= 3);
  let clean = Wal.load path in
  let frame_boundaries =
    (* per segment: the set of offsets where a frame starts or the tail ends *)
    Hashtbl.create 8
  in
  List.iter
    (fun (seg, off, len) ->
      Hashtbl.replace frame_boundaries (seg, off) ();
      Hashtbl.replace frame_boundaries (seg, off + len) ())
    clean.Wal.extents;
  List.iteri
    (fun seg_idx seg_file ->
      let size = file_size seg_file in
      let is_last = seg_idx = n_segs - 1 in
      for cut = 0 to size - 1 do
        with_tmpdir @@ fun scratch ->
        let mpath = clone_log path scratch in
        let mseg = List.nth (Wal.segment_files mpath) seg_idx in
        Wal.Chaos.truncate ~path:mseg ~bytes:cut;
        let tag = Printf.sprintf "truncate seg %d at %d" seg_idx cut in
        if is_last then begin
          (* final segment: always a tolerated torn tail (clean iff the
             cut lands on a frame boundary) *)
          let report = Wal.load mpath in
          check Alcotest.bool (tag ^ ": subsequence") true
            (subsequence report.Wal.records base_records);
          let on_boundary = Hashtbl.mem frame_boundaries (seg_idx, cut) in
          check Alcotest.bool
            (tag ^ ": torn iff mid-frame")
            (not on_boundary)
            (List.exists
               (function Wal.Torn_tail _ -> true | _ -> false)
               report.Wal.anomalies);
          (* every record whose frame lies fully below the cut survives *)
          let expected_prefix =
            List.length
              (List.filter
                 (fun (s, o, l) -> s < seg_idx || (s = seg_idx && o + l <= cut))
                 clean.Wal.extents)
          in
          check Alcotest.int (tag ^ ": exact prefix") expected_prefix
            (List.length report.Wal.records)
        end
        else begin
          (* non-final segment: damage.  Fail-stop refuses (except a cut
             exactly at the segment's full size, which is the clean image);
             salvage quarantines and resumes at the next segment. *)
          (match Wal.load mpath with
          | exception Wal.Corrupt _ -> ()
          | report ->
              check Alcotest.bool (tag ^ ": fail-stop accepted only clean") true
                (report.Wal.records = base_records));
          let salvage = Wal.load ~policy:Wal.Salvage mpath in
          check Alcotest.bool (tag ^ ": salvage subsequence") true
            (subsequence salvage.Wal.records base_records);
          check Alcotest.bool (tag ^ ": salvage classified the damage") true
            (cut = size
            || List.exists
                 (function
                   | Wal.Short_segment { segment; _ } | Wal.Corrupt_record { segment; _ } ->
                       segment = seg_idx
                   | _ -> false)
                 salvage.Wal.anomalies)
        end
      done)
    segs

let test_bitflip_every_byte () =
  with_tmpdir @@ fun dir ->
  let path = write_log dir in
  let segs = Wal.segment_files path in
  let n_segs = List.length segs in
  List.iteri
    (fun seg_idx seg_file ->
      let size = file_size seg_file in
      for byte = 0 to size - 1 do
        (* one bit per byte offset keeps the sweep quadratic-free; the CRC
           argument is bit-position independent *)
        let bit = byte mod 8 in
        with_tmpdir @@ fun scratch ->
        let mpath = clone_log path scratch in
        let mseg = List.nth (Wal.segment_files mpath) seg_idx in
        Wal.Chaos.flip_bit ~path:mseg ~byte ~bit;
        let tag = Printf.sprintf "flip seg %d byte %d bit %d" seg_idx byte bit in
        (* fail-stop: the flip must be detected — Corrupt, or a torn tail
           when a final-segment length prefix now overruns the remaining
           bytes.  Never the full log with a silently mutated record. *)
        (match Wal.load mpath with
        | exception Wal.Corrupt _ -> ()
        | report ->
            check Alcotest.bool (tag ^ ": no silent mutation") true
              (subsequence report.Wal.records base_records);
            check Alcotest.bool (tag ^ ": shorter only via torn tail") true
              (List.length report.Wal.records < List.length base_records
              && seg_idx = n_segs - 1
              && List.exists
                   (function Wal.Torn_tail _ -> true | _ -> false)
                   report.Wal.anomalies));
        (* salvage: still only ever a subsequence *)
        let salvage = Wal.load ~policy:Wal.Salvage mpath in
        check Alcotest.bool (tag ^ ": salvage subsequence") true
          (subsequence salvage.Wal.records base_records);
        check Alcotest.bool (tag ^ ": salvage flagged something") true
          (salvage.Wal.anomalies <> [])
      done)
    segs

let test_missing_segment () =
  with_tmpdir @@ fun dir ->
  let path = write_log dir in
  let n_segs = List.length (Wal.segment_files path) in
  check Alcotest.bool "several segments" true (n_segs >= 3);
  (* drop a middle segment entirely *)
  with_tmpdir @@ fun scratch ->
  let mpath = clone_log path scratch in
  let victim = List.nth (Wal.segment_files mpath) 1 in
  Sys.remove victim;
  (match Wal.load mpath with
  | exception Wal.Corrupt { segment; _ } -> check Alcotest.int "names the gap" 1 segment
  | _ -> Alcotest.fail "fail-stop must refuse a log with a missing segment");
  let salvage = Wal.load ~policy:Wal.Salvage mpath in
  check Alcotest.bool "salvage reports the gap" true
    (List.exists
       (function Wal.Missing_segment { segment } -> segment = 1 | _ -> false)
       salvage.Wal.anomalies);
  check Alcotest.bool "salvage keeps the other segments' records" true
    (subsequence salvage.Wal.records base_records
    && List.length salvage.Wal.records > 0)

let suite =
  [
    Alcotest.test_case "truncation at every byte offset" `Quick test_truncation_every_offset;
    Alcotest.test_case "bit flip at every byte offset" `Quick test_bitflip_every_byte;
    Alcotest.test_case "missing middle segment" `Quick test_missing_segment;
  ]

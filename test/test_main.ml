let () =
  Alcotest.run "tpm"
    [
      ("process", Test_process.suite);
      ("execution", Test_execution.suite);
      ("flex", Test_flex.suite);
      ("schedule", Test_schedule.suite);
      ("criteria", Test_criteria.suite);
      ("substrate", Test_substrate.suite);
      ("scheduler", Test_scheduler.suite);
      ("properties", Test_properties.suite);
      ("engine", Test_engine.suite);
      ("recovery", Test_recovery.suite);
      ("wal-corruption", Test_wal_corruption.suite);
      ("explore", Test_explore.suite);
      ("twopc-coord", Test_twopc_coord.suite);
      ("weak-order", Test_weak_order.suite);
      ("enforce", Test_enforce.suite);
      ("workloads", Test_workloads.suite);
      ("builder", Test_builder.suite);
      ("sim", Test_sim.suite);
      ("obs", Test_obs.suite);
      ("sot", Test_sot.suite);
      ("lang", Test_lang.suite);
      ("composite", Test_composite.suite);
      ("server", Test_server.suite);
      ("shard", Test_shard.suite);
      ("pager", Test_pager.suite);
      ("fingerprint", Test_fingerprint.suite);
      ("baseline", Test_baseline.suite);
    ]

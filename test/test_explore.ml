(* Systematic interleaving exploration (lib/explore): exhaustiveness on
   the small built-in scenarios, pruned-vs-unpruned cross-validation, the
   Lemma-1 mutation self-test, replay determinism and the passive
   strategy's bit-identity with the historical randomized behaviour. *)

module E = Tpm_explore.Explore
module Scheduler = Tpm_scheduler.Scheduler
module Schedule = Tpm_core.Schedule

let check = Alcotest.check

let scenario name =
  match E.find_scenario name with
  | Some s -> s
  | None -> Alcotest.fail ("unknown scenario " ^ name)

let test_lemma1_exhaustive_clean () =
  let r = E.explore (scenario "lemma1") in
  check Alcotest.bool "not truncated" false r.E.stats.E.truncated;
  check Alcotest.int "zero violations" 0 (List.length r.E.found);
  check Alcotest.bool "at least the root and the failure branch" true
    (r.E.stats.E.explored >= 2)

let test_pruned_agrees_with_unpruned () =
  let sc = scenario "twopc3" in
  let p = E.explore sc in
  let u = E.explore ~prune:false sc in
  check Alcotest.bool "pruned not truncated" false p.E.stats.E.truncated;
  check Alcotest.bool "unpruned not truncated" false u.E.stats.E.truncated;
  check Alcotest.int "pruned finds no violations" 0 (List.length p.E.found);
  check Alcotest.int "unpruned finds no violations" 0 (List.length u.E.found);
  check Alcotest.bool "pruning shrinks the tree" true
    (p.E.stats.E.explored < u.E.stats.E.explored)

let test_mutation_caught_with_replayable_trace () =
  let sc = scenario "lemma1-mut" in
  let r = E.explore sc in
  check Alcotest.bool "violation found" true (r.E.found <> []);
  check Alcotest.bool "it is a PRED violation" true
    (List.exists (fun (f : E.found) -> List.mem "PRED violated" f.E.violations) r.E.found);
  match r.E.found with
  | [] -> ()
  | f :: _ ->
      let out = E.run_branch sc ~script:f.E.minimized in
      check Alcotest.bool "minimized trace still violates" true (out.E.violations <> [])

let test_driven_replay_deterministic () =
  let sc = scenario "lemma1" in
  let a = E.run_branch sc ~script:[ 1 ] in
  let b = E.run_branch sc ~script:[ 1 ] in
  check Alcotest.int "same decision count" (List.length a.E.decisions)
    (List.length b.E.decisions);
  List.iter2
    (fun (da : Tpm_sim.Choice.decision) (db : Tpm_sim.Choice.decision) ->
      check Alcotest.string "same tag" da.tag db.tag;
      check Alcotest.int "same chosen" da.chosen db.chosen;
      check Alcotest.string "same fingerprint" da.fp db.fp)
    a.E.decisions b.E.decisions;
  check Alcotest.(list string) "same verdict" a.E.violations b.E.violations

(* The passive strategy must leave seeded runs bit-identical: two passive
   executions of the same scenario (same seed, fresh RMs) agree on the
   final model state and the produced history. *)
let test_passive_runs_bit_identical () =
  let sc = scenario "lemma1" in
  let run () =
    let rms = sc.E.make_rms () in
    let t = Scheduler.create ~config:sc.E.config ~spec:sc.E.spec ~rms () in
    List.iteri (fun i p -> Scheduler.submit t ~at:(sc.E.submit_at i) p) sc.E.procs;
    Scheduler.run t;
    ( Scheduler.state_fingerprint t,
      Format.asprintf "%a" Schedule.pp (Scheduler.history t) )
  in
  let fp1, h1 = run () in
  let fp2, h2 = run () in
  check Alcotest.string "same state fingerprint" fp1 fp2;
  check Alcotest.string "same history" h1 h2

let test_trace_file_round_trip () =
  let sc = scenario "lemma1" in
  let tmp = Filename.temp_file "tpm_explore" ".trace" in
  E.save_trace ~path:tmp sc [ 1 ];
  (match E.load_trace tmp with
  | Error e -> Alcotest.fail e
  | Ok (name, script) ->
      check Alcotest.string "scenario name" "lemma1" name;
      check Alcotest.(list int) "script survives" [ 1 ] script);
  Sys.remove tmp

let suite =
  [
    Alcotest.test_case "lemma1 exhaustive, all oracles clean" `Quick
      test_lemma1_exhaustive_clean;
    Alcotest.test_case "pruned agrees with unpruned" `Quick test_pruned_agrees_with_unpruned;
    Alcotest.test_case "Lemma-1 mutation caught, trace replayable" `Quick
      test_mutation_caught_with_replayable_trace;
    Alcotest.test_case "driven replay is deterministic" `Quick test_driven_replay_deterministic;
    Alcotest.test_case "passive runs are bit-identical" `Quick test_passive_runs_bit_identical;
    Alcotest.test_case "trace file round-trip" `Quick test_trace_file_round_trip;
  ]

(* The composite-systems layer of Section 3.6: local schedules,
   commit-order serializability and fork composition. *)

open Tpm_core
module Local = Tpm_composite.Local
module Fork = Tpm_composite.Fork

let check = Alcotest.check

let r tx item = Local.Op { tx; item; mode = `Read }
let w tx item = Local.Op { tx; item; mode = `Write }
let c tx = Local.Commit tx
let a tx = Local.Abort tx

let test_conflicts () =
  check Alcotest.bool "w/w conflict" true
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Write } { tx = 2; item = "x"; mode = `Write });
  check Alcotest.bool "r/w conflict" true
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Read } { tx = 2; item = "x"; mode = `Write });
  check Alcotest.bool "r/r commute" false
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Read } { tx = 2; item = "x"; mode = `Read });
  check Alcotest.bool "different items commute" false
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Write } { tx = 2; item = "y"; mode = `Write });
  check Alcotest.bool "same tx never conflicts" false
    (Local.ops_conflict { tx = 1; item = "x"; mode = `Write } { tx = 1; item = "x"; mode = `Write })

let test_serializability () =
  let ok = Local.make [ w 1 "x"; c 1; w 2 "x"; c 2 ] in
  check Alcotest.bool "serial is serializable" true (Local.serializable ok);
  let bad = Local.make [ r 1 "x"; r 2 "y"; w 2 "x"; w 1 "y"; c 1; c 2 ] in
  check Alcotest.bool "crossing updates are not serializable" false (Local.serializable bad);
  (* aborted transactions do not count *)
  let saved = Local.make [ r 1 "x"; r 2 "y"; w 2 "x"; w 1 "y"; a 1; c 2 ] in
  check Alcotest.bool "abort removes the cycle" true (Local.serializable saved)

let test_commit_order () =
  (* overlapping execution, commits in conflict order: the weak order at
     work *)
  let weak_ok = Local.make [ w 1 "x"; w 2 "x"; c 1; c 2 ] in
  check Alcotest.bool "serializable" true (Local.serializable weak_ok);
  check Alcotest.bool "commit-order serializable" true
    (Local.commit_order_serializable weak_ok);
  (* same overlap but commits inverted: serializable would still hold for
     a single conflict pair, commit-order does not *)
  let weak_bad = Local.make [ w 1 "x"; w 2 "x"; c 2; c 1 ] in
  check Alcotest.bool "commit order violated" false
    (Local.commit_order_serializable weak_bad)

let test_respects_weak_order () =
  let l = Local.make [ w 1 "x"; w 2 "x"; c 1; c 2 ] in
  check Alcotest.bool "prescribed (1,2) realized" true (Local.respects_weak_order l [ (1, 2) ]);
  check Alcotest.bool "prescribed (2,1) not realized" false
    (Local.respects_weak_order l [ (2, 1) ]);
  (* a pair with an uncommitted member is unconstrained *)
  let open_ = Local.make [ w 1 "x"; w 2 "x"; c 1 ] in
  check Alcotest.bool "open transaction unconstrained" true
    (Local.respects_weak_order open_ [ (2, 1) ])

let test_rejects_events_after_terminal () =
  match Local.make [ w 1 "x"; c 1; w 1 "y" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "event after commit accepted"

(* fork composition over the paper's S''_t1 (figure 7): both processes'
   conflicting activities at one subsystem, executed weakly overlapped *)
let test_fork_consistent () =
  let global =
    let fwd p n = Schedule.Act (Activity.Forward (Process.find p n)) in
    Schedule.make ~spec:Fixtures.spec ~procs:[ Fixtures.p1; Fixtures.p2 ]
      [ fwd Fixtures.p2 1; fwd Fixtures.p2 2; fwd Fixtures.p2 3; fwd Fixtures.p2 4;
        fwd Fixtures.p1 1; fwd Fixtures.p2 5; fwd Fixtures.p1 2; fwd Fixtures.p1 3 ]
  in
  let token_of (a : Activity.t) = (100 * a.Activity.id.Activity.proc) + a.Activity.id.Activity.act in
  (* all fixture activities live in the "default" subsystem; build a local
     schedule realizing the prescribed weak order: conflicting pairs
     (a21,a11) -> (201,101), (a24,a12) -> (204,102), (a25,a15): a15 not
     executed. Locals overlap but commit in order. *)
  let l =
    Local.make
      [
        w 201 "s"; c 201; w 202 "k"; c 202; w 203 "m"; c 203; w 204 "t"; c 204;
        w 101 "s"; w 205 "u"; c 101; c 205; w 102 "t"; c 102; w 103 "z"; c 103;
      ]
  in
  let f = { Fork.global; locals = [ ("default", l) ]; token_of } in
  check Alcotest.bool "weak order prescribed" true
    (List.mem (201, 101) (Fork.prescribed_weak_order f "default"));
  check Alcotest.bool "locals commit-order serializable" true
    (Fork.locals_commit_order_serializable f);
  check Alcotest.bool "weak order realized" true (Fork.weak_order_realized f);
  check Alcotest.bool "composite consistent" true (Fork.consistent f)

let test_fork_inconsistent_local () =
  let global =
    let fwd p n = Schedule.Act (Activity.Forward (Process.find p n)) in
    Schedule.make ~spec:Fixtures.spec ~procs:[ Fixtures.p1; Fixtures.p2 ]
      [ fwd Fixtures.p2 1; fwd Fixtures.p1 1 ]
  in
  let token_of (a : Activity.t) = (100 * a.Activity.id.Activity.proc) + a.Activity.id.Activity.act in
  (* the subsystem commits against the prescribed weak order (201, 101) *)
  let l = Local.make [ w 201 "s"; w 101 "s"; c 101; c 201 ] in
  let f = { Fork.global; locals = [ ("default", l) ]; token_of } in
  check Alcotest.bool "weak order violated" false (Fork.weak_order_realized f);
  check Alcotest.bool "composite inconsistent" false (Fork.consistent f)

(* PR-10 regression: the checker passes are item-indexed with one-shot
   commit-position tables — a 10k-event history must check in well under
   a second (the former all-pairs walks with per-pair list scans were
   quadratic at this size) *)
let test_large_history_fast () =
  let n_txs = 2000 in
  let evs =
    List.concat
      (List.init n_txs (fun i ->
           let tx = i + 1 in
           let item j = Printf.sprintf "i%d" ((i + j) mod 397) in
           [ r tx (item 0); w tx (item 1); r tx (item 2); w tx (item 3); c tx ]))
  in
  let l = Local.make evs in
  let t0 = Unix.gettimeofday () in
  ignore (Local.serializable l);
  ignore (Local.commit_order_serializable l);
  ignore (Local.respects_weak_order l (Local.conflict_pairs l));
  let dt = Unix.gettimeofday () -. t0 in
  check Alcotest.bool
    (Printf.sprintf "10k-event history checked in %.3fs" dt)
    true (dt < 1.0)

(* QCheck: the graph-based serializability checker agrees with the
   brute-force definition — some permutation of the committed
   transactions orders every conflicting committed operation pair *)

let gen_history seed =
  let rng = Tpm_sim.Prng.create seed in
  let n_txs = 2 + Tpm_sim.Prng.int rng 3 in
  let items = [| "x"; "y" |] in
  (* per-transaction event queues: 1-3 ops then a terminal *)
  let queues =
    Array.init n_txs (fun i ->
        let tx = i + 1 in
        let ops =
          List.init
            (1 + Tpm_sim.Prng.int rng 3)
            (fun _ ->
              let item = items.(Tpm_sim.Prng.int rng (Array.length items)) in
              let mode = if Tpm_sim.Prng.chance rng 0.6 then `Write else `Read in
              Local.Op { Local.tx; item; mode })
        in
        let terminal = if Tpm_sim.Prng.chance rng 0.8 then c tx else a tx in
        ref (ops @ [ terminal ]))
  in
  (* random fair merge preserving each transaction's order *)
  let evs = ref [] in
  let remaining = ref (Array.fold_left (fun n q -> n + List.length !q) 0 queues) in
  while !remaining > 0 do
    let i = Tpm_sim.Prng.int rng n_txs in
    match !(queues.(i)) with
    | [] -> ()
    | e :: rest ->
        queues.(i) := rest;
        evs := e :: !evs;
        decr remaining
  done;
  Local.make (List.rev !evs)

(* every ordered pair (t1, t2) of distinct committed transactions with a
   conflicting operation of t1 preceding one of t2 -- derived straight
   from the raw event list, independently of [Local.conflict_pairs] *)
let brute_conflict_pairs l =
  let committed = Local.committed l in
  let evs = Array.of_list (Local.events l) in
  let pairs = ref [] in
  Array.iteri
    (fun i e1 ->
      match e1 with
      | Local.Op o1 when List.mem o1.Local.tx committed ->
          for j = i + 1 to Array.length evs - 1 do
            match evs.(j) with
            | Local.Op o2
              when List.mem o2.Local.tx committed && Local.ops_conflict o1 o2 ->
                if not (List.mem (o1.Local.tx, o2.Local.tx) !pairs) then
                  pairs := (o1.Local.tx, o2.Local.tx) :: !pairs
            | _ -> ()
          done
      | _ -> ())
    evs;
  !pairs

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
        l

let brute_serializable l =
  let pairs = brute_conflict_pairs l in
  let before order t1 t2 =
    let rec idx n = function
      | [] -> max_int
      | x :: _ when x = t1 || x = t2 -> if x = t1 then n else max_int
      | _ :: rest -> idx (n + 1) rest
    in
    idx 0 order < max_int
  in
  List.exists
    (fun order -> List.for_all (fun (t1, t2) -> before order t1 t2) pairs)
    (permutations (Local.committed l))

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 100_000)

let prop_serializable_brute_force =
  QCheck.Test.make ~name:"serializable agrees with permutation brute force" ~count:300
    arb_seed (fun seed ->
      let l = gen_history seed in
      Local.serializable l = brute_serializable l)

let suite =
  [
    Alcotest.test_case "operation conflicts" `Quick test_conflicts;
    Alcotest.test_case "local serializability" `Quick test_serializability;
    Alcotest.test_case "commit-order serializability" `Quick test_commit_order;
    Alcotest.test_case "prescribed weak orders" `Quick test_respects_weak_order;
    Alcotest.test_case "terminal events close transactions" `Quick
      test_rejects_events_after_terminal;
    Alcotest.test_case "fork composition consistent" `Quick test_fork_consistent;
    Alcotest.test_case "fork composition violation detected" `Quick test_fork_inconsistent_local;
    Alcotest.test_case "10k-event history checks fast" `Quick test_large_history_fast;
    QCheck_alcotest.to_alcotest prop_serializable_brute_force;
  ]

(* The incremental admission engine's building blocks:
   - the compiled conflict bitmatrix agrees with the string-keyed spec
     (all pairs, self-conflicts, effect-free marks, late interning);
   - Pearce–Kelly dependency tracking ([Deps]) agrees with the
     from-scratch Digraph oracle on would-cycle verdicts and maintains a
     valid topological order across inserts, aborts and commits;
   - the indexed [Reduction.cancel_compensation_pairs] handles a
     1000-event schedule well under a second (the old implementation
     rescanned the interval per pair, quadratically). *)

open Tpm_core
module Deps = Tpm_scheduler.Deps
module Prng = Tpm_sim.Prng

let services = [| "s0"; "s1"; "s2"; "s3"; "s4"; "s5" |]

(* random spec over the fixed pool: conflict pairs (possibly reflexive)
   plus an effect-free subset *)
let spec_of_seed seed =
  let rng = Prng.create seed in
  let n_pairs = Prng.int rng 10 in
  let spec =
    Conflict.of_pairs
      (List.init n_pairs (fun _ ->
           ( services.(Prng.int rng (Array.length services)),
             services.(Prng.int rng (Array.length services)) )))
  in
  Array.fold_left
    (fun spec s -> if Prng.chance rng 0.3 then Conflict.declare_effect_free s spec else spec)
    spec services

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 100_000)

let compiled_agrees =
  QCheck.Test.make ~count:200 ~name:"compiled matrix agrees with the string spec"
    arb_seed (fun seed ->
      let spec = spec_of_seed seed in
      let c = Conflict.Compiled.make spec in
      (* every service of the pool, interned — some lazily, after [make] *)
      let ids = Array.map (fun s -> Conflict.Compiled.intern c s) services in
      Array.iteri
        (fun i s ->
          Array.iteri
            (fun j s' ->
              let expect = Conflict.services_conflict spec s s' in
              let got = Conflict.Compiled.conflict c ids.(i) ids.(j) in
              if got <> expect then
                QCheck.Test.fail_reportf "conflict(%s,%s): compiled %b, spec %b" s s'
                  got expect)
            services;
          if Conflict.Compiled.effect_free c ids.(i) <> Conflict.effect_free spec s then
            QCheck.Test.fail_reportf "effect_free(%s) disagrees" s;
          if Conflict.Compiled.name c ids.(i) <> s then
            QCheck.Test.fail_reportf "name(intern %s) <> %s" s s)
        services;
      (* row-based set test equals the pairwise disjunction *)
      let set = Tpm_core.Bitset.create () in
      Array.iteri (fun i _ -> if i mod 2 = 0 then Tpm_core.Bitset.set set ids.(i)) services;
      Array.iteri
        (fun i s ->
          let expect =
            Array.exists
              (fun j ->
                Tpm_core.Bitset.mem set ids.(j)
                && Conflict.services_conflict spec s services.(j))
              (Array.init (Array.length services) Fun.id)
          in
          let got = Tpm_core.Bitset.inter_nonempty (Conflict.Compiled.row c ids.(i)) set in
          if got <> expect then QCheck.Test.fail_reportf "row(%s) vs set disagrees" s)
        services;
      true)

(* ------------------------------------------------------------------ *)
(* Deps / Pearce–Kelly *)

let pk_agrees_with_oracle =
  QCheck.Test.make ~count:300
    ~name:"PK would_cycle and order agree with the Digraph oracle" arb_seed
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 6 in
      let t = Deps.create () in
      Deps.set_check t true (* every would_cycle self-checks vs the oracle *);
      for pid = 1 to n do
        Deps.add_process t pid
      done;
      let steps = 5 + Prng.int rng 25 in
      for _ = 1 to steps do
        let i = 1 + Prng.int rng n and j = 1 + Prng.int rng n in
        match Prng.int rng 10 with
        | 0 -> Deps.mark_aborted t i
        | 1 -> Deps.mark_committed t i
        | _ ->
            if i <> j then begin
              (* mirror the scheduler: check first, insert only safe edges
                 (the unchecked rollback path is exercised separately) *)
              if not (Deps.would_cycle t [ (i, j) ]) then Deps.add_edge t i j
            end;
            (* a random would-cycle batch, cross-checked by set_check *)
            let batch =
              List.init (Prng.int rng 3) (fun _ ->
                  (1 + Prng.int rng n, 1 + Prng.int rng n))
              |> List.filter (fun (a, b) -> a <> b)
            in
            ignore (Deps.would_cycle t batch)
      done;
      (* the maintained order topologically sorts the surviving edges *)
      if not (Deps.would_cycle t []) then begin
        let order = Deps.order t in
        let pos = Hashtbl.create 16 in
        List.iteri (fun k pid -> Hashtbl.replace pos pid k) order;
        List.iter
          (fun (i, j) ->
            match (Hashtbl.find_opt pos i, Hashtbl.find_opt pos j) with
            | Some pi, Some pj ->
                if pi >= pj then
                  QCheck.Test.fail_reportf "order violates edge %d->%d" i j
            | None, _ | _, None -> () (* aborted endpoint *))
          (Deps.edges t)
      end;
      true)

let parked_back_edge () =
  let t = Deps.create () in
  Deps.set_check t true;
  List.iter (Deps.add_process t) [ 1; 2; 3 ];
  Deps.add_edge t 1 2;
  Deps.add_edge t 2 3;
  (* the rollback path inserts unchecked: 3 -> 1 closes a cycle *)
  Deps.add_edge t 3 1;
  Alcotest.(check bool) "graph reports cyclic" true (Deps.would_cycle t []);
  Alcotest.(check bool) "any batch is cyclic" true (Deps.would_cycle t [ (1, 3) ]);
  (* aborting a participant clears the parked edge *)
  Deps.mark_aborted t 2;
  Alcotest.(check bool) "acyclic after abort" false (Deps.would_cycle t []);
  Alcotest.(check (list (pair int int))) "surviving edge retried into the DAG"
    [ (3, 1) ] (Deps.edges t)

let pk_preds_and_succs () =
  let t = Deps.create () in
  List.iter (Deps.add_process t) [ 1; 2; 3; 4 ];
  Deps.add_edge t 1 2;
  Deps.add_edge t 2 3;
  Deps.add_edge t 4 3;
  Alcotest.(check (list int)) "transitive live preds" [ 1; 2; 4 ]
    (Deps.uncommitted_preds t 3);
  Deps.mark_committed t 1;
  Alcotest.(check (list int)) "committed pred dropped" [ 2; 4 ]
    (Deps.uncommitted_preds t 3);
  Deps.mark_aborted t 4;
  Alcotest.(check (list int)) "aborted pred dropped" [ 2 ] (Deps.uncommitted_preds t 3);
  Alcotest.(check (list int)) "live succs of 2" [ 3 ] (Deps.live_succs t 2)

let pk_reorder_stress () =
  (* adversarial insertion order: edges always run against the current
     ord (each new source interned late), forcing PK reorders throughout *)
  let t = Deps.create () in
  Deps.set_check t true;
  let n = 200 in
  for pid = 1 to n do
    Deps.add_process t pid
  done;
  for i = n downto 2 do
    Alcotest.(check bool)
      (Printf.sprintf "edge %d->%d acyclic" i (i - 1))
      false
      (Deps.would_cycle t [ (i, i - 1) ]);
    Deps.add_edge t i (i - 1)
  done;
  Alcotest.(check (list int)) "order is n..1" (List.init n (fun k -> n - k)) (Deps.order t);
  Alcotest.(check bool) "closing edge would cycle" true (Deps.would_cycle t [ (1, n) ])

(* ------------------------------------------------------------------ *)
(* Reduction at scale *)

let reduction_1k_events () =
  let act ~proc ~act:n ~service =
    Activity.make ~proc ~act:n ~service ~kind:Activity.Compensatable ()
  in
  let p1 = Process.make_exn ~pid:1 ~activities:[ act ~proc:1 ~act:1 ~service:"x" ] ~prec:[] ~pref:[] in
  let p2 = Process.make_exn ~pid:2 ~activities:[ act ~proc:2 ~act:1 ~service:"y" ] ~prec:[] ~pref:[] in
  let spec = Conflict.of_pairs [ ("x", "y") ] in
  let a1 = Process.find p1 1 and b1 = Process.find p2 1 in
  (* 250 nested quadruples: the outer (x, x') pair is blocked by the inner
     conflicting (y, y') pair until the inner cancels — two fixpoint
     passes over 1000 events *)
  let events =
    List.concat
      (List.init 250 (fun _ ->
           [
             Schedule.Act (Activity.Forward a1);
             Schedule.Act (Activity.Forward b1);
             Schedule.Act (Activity.Inverse b1);
             Schedule.Act (Activity.Inverse a1);
           ]))
  in
  let s = Schedule.make ~spec ~procs:[ p1; p2 ] events in
  Alcotest.(check int) "1000 events" 1000 (Schedule.length s);
  let t0 = Sys.time () in
  let reduced = Reduction.cancel_compensation_pairs s in
  let dt = Sys.time () -. t0 in
  Alcotest.(check int) "everything cancels" 0 (Schedule.length reduced);
  if dt > 1.0 then
    Alcotest.failf "cancel_compensation_pairs took %.2fs on 1000 events (budget 1s)" dt

let suite =
  [
    QCheck_alcotest.to_alcotest compiled_agrees;
    QCheck_alcotest.to_alcotest pk_agrees_with_oracle;
    Alcotest.test_case "deps: parked cycle-closing edge" `Quick parked_back_edge;
    Alcotest.test_case "deps: preds/succs across terminals" `Quick pk_preds_and_succs;
    Alcotest.test_case "deps: adversarial reorder chain" `Quick pk_reorder_stress;
    Alcotest.test_case "reduction: 1000-event schedule in budget" `Quick
      reduction_1k_events;
  ]

(* The open-world server: overload policies, deadline shedding, circuit
   breakers, graceful drain, the deterministic-overload property and the
   wire protocol. *)

open Tpm_core
module Scheduler = Tpm_scheduler.Scheduler
module Server = Tpm_server.Server
module Generator = Tpm_workload.Generator
module Faults = Tpm_sim.Faults
module Choice = Tpm_sim.Choice
module Wal = Tpm_wal.Wal

let check = Alcotest.check

let params =
  {
    Generator.default_params with
    activities_min = 2;
    activities_max = 4;
    services = 10;
    subsystems = 2;
    conflict_density = 0.3;
  }

let make_server ?(policy = Server.Queue) ?(max_live = 4) ?(queue_capacity = 8)
    ?(deadline = 5.0) ?(saturation_limit = 2) ?(breaker_threshold = 3)
    ?(breaker_cooldown = 5.0) ?(seed = 1) ?faults ?choice ?(params = params) () =
  let spec = Generator.spec params in
  let rms = Generator.rms params () in
  let config = { Scheduler.default_config with seed } in
  let sched = Scheduler.create ~config ?faults ?choice ~spec ~rms () in
  let scfg =
    {
      Server.default_config with
      policy;
      max_live;
      queue_capacity;
      default_deadline = deadline;
      saturation_limit;
      breaker_threshold;
      breaker_cooldown;
    }
  in
  Server.create ~config:scfg sched

let single_retriable ~pid ~svc ~ss =
  let a =
    Activity.make ~proc:pid ~act:1 ~service:svc ~kind:Activity.Retriable ~subsystem:ss ()
  in
  Process.make_exn ~pid ~activities:[ a ] ~prec:[] ~pref:[]

let finish_accounting srv =
  check Alcotest.bool "accounting invariant" true (Server.accounting_ok srv);
  check Alcotest.int "queue drained" 0 (Server.queue_depth srv)

(* --- underload: everything admits and commits --- *)

let test_underload_admits_all () =
  let srv = make_server ~max_live:16 () in
  let script = Generator.arrivals params ~seed:4 ~rate:0.5 ~horizon:10.0 in
  check Alcotest.bool "script non-empty" true (script <> []);
  Server.play srv script;
  Server.run srv;
  let c = Server.counters srv in
  check Alcotest.int "offered = script" (List.length script) c.Server.offered;
  check Alcotest.int "all admitted" c.Server.offered c.Server.admitted;
  check Alcotest.int "none rejected" 0 c.Server.rejected;
  check Alcotest.int "none expired" 0 c.Server.expired;
  check Alcotest.bool "scheduler finished" true (Scheduler.finished (Server.scheduler srv));
  check Alcotest.bool "history PRED" true (Criteria.pred (Scheduler.history (Server.scheduler srv)));
  finish_accounting srv

(* --- Reject policy: overload fast-fails with a typed reason --- *)

let test_reject_policy_sheds () =
  let srv = make_server ~policy:Server.Reject ~max_live:2 () in
  let script = Generator.arrivals params ~seed:4 ~rate:10.0 ~horizon:4.0 in
  Server.play srv script;
  Server.run srv;
  let c = Server.counters srv in
  check Alcotest.bool "some rejected" true (c.Server.rejected > 0);
  check Alcotest.bool "some admitted" true (c.Server.admitted > 0);
  check Alcotest.int "queue never used" 0 (Server.queue_depth srv);
  check Alcotest.bool "window-full reason recorded" true
    (List.exists
       (fun l -> String.length l > 0 && String.index_opt l ':' <> None)
       (Server.decision_log srv));
  check Alcotest.bool "reject reasons typed" true
    (List.exists
       (fun l ->
         match String.index_opt l ' ' with
         | Some i -> String.sub l (i + 1) (String.length l - i - 1) = "reject:window-full"
         | None -> false)
       (Server.decision_log srv));
  finish_accounting srv

(* --- Queue policy: bounded queue, deadline-aware shedding --- *)

let test_queue_policy_bounds_and_expiry () =
  let srv = make_server ~policy:Server.Queue ~max_live:1 ~queue_capacity:4 ~deadline:2.0 () in
  let script = Generator.arrivals params ~seed:4 ~rate:10.0 ~horizon:3.0 in
  Server.play srv script;
  Server.run srv;
  let c = Server.counters srv in
  check Alcotest.bool "queue overflow rejects" true (c.Server.rejected > 0);
  check Alcotest.bool "deadline expiries" true (c.Server.expired > 0);
  check Alcotest.bool "some admitted" true (c.Server.admitted > 0);
  check Alcotest.bool "queue-full reason in log" true
    (List.exists
       (fun l ->
         match String.index_opt l ' ' with
         | Some i ->
             let d = String.sub l (i + 1) (String.length l - i - 1) in
             d = "reject:queue-full" || d = "reject:deadline-expired"
         | None -> false)
       (Server.decision_log srv));
  check Alcotest.bool "scheduler finished" true (Scheduler.finished (Server.scheduler srv));
  finish_accounting srv

(* --- Degrade policy: saturated preferred branch admits the fallback --- *)

let test_degrade_policy () =
  let params =
    { params with activities_min = 4; activities_max = 8; alt_prob = 0.9; conflict_density = 0.6 }
  in
  let srv = make_server ~params ~policy:Server.Degrade ~max_live:32 ~saturation_limit:1 () in
  let script = Generator.arrivals params ~seed:4 ~rate:6.0 ~horizon:5.0 in
  Server.play srv script;
  Server.run srv;
  let c = Server.counters srv in
  check Alcotest.bool "some degraded admits" true (c.Server.degraded > 0);
  (* some admitted variant is strictly smaller than what was offered *)
  let offered_sizes =
    List.map (fun (_, p) -> (Process.pid p, List.length (Process.activities p))) script
  in
  check Alcotest.bool "degraded variants are smaller" true
    (List.exists
       (fun p ->
         match List.assoc_opt (Process.pid p) offered_sizes with
         | Some n -> List.length (Process.activities p) < n
         | None -> false)
       (Server.admitted_procs srv));
  (* every admitted variant must itself be well-formed *)
  List.iter
    (fun p ->
      check Alcotest.bool "admitted variant well-formed" true
        (Result.is_ok (Flex.well_formed p)))
    (Server.admitted_procs srv);
  check Alcotest.bool "scheduler finished" true (Scheduler.finished (Server.scheduler srv));
  check Alcotest.bool "history PRED" true (Criteria.pred (Scheduler.history (Server.scheduler srv)));
  finish_accounting srv

(* --- circuit breaker: consecutive Unavailable opens, success closes --- *)

let test_breaker_opens_and_closes () =
  let faults =
    Faults.make
      ~outages:[ { Faults.out_subsystem = "ss0"; out_window = { Faults.from_ = 0.0; until_ = 50.0 } } ]
      ()
  in
  let srv =
    make_server ~policy:Server.Reject ~max_live:8 ~breaker_threshold:3 ~breaker_cooldown:100.0
      ~faults ()
  in
  (* P1 rides out the outage retrying (retriable): its consecutive
     Unavailable answers open ss0's breaker *)
  Server.submit_at srv ~at:0.0 (single_retriable ~pid:1 ~svc:"svc0" ~ss:"ss0");
  Server.run srv ~until:20.0;
  check Alcotest.string "breaker open mid-outage" "open" (Server.breaker_state srv "ss0");
  (* a fresh submission preferring ss0 fast-fails while the breaker is open *)
  let d = Server.offer srv (single_retriable ~pid:2 ~svc:"svc2" ~ss:"ss0") in
  check Alcotest.string "breaker fast-fail" "reject:breaker-open:ss0" (Server.decision_label d);
  (* ss1 is unaffected *)
  let d = Server.offer srv (single_retriable ~pid:3 ~svc:"svc1" ~ss:"ss1") in
  check Alcotest.string "other subsystem admits" "admit" (Server.decision_label d);
  (* the outage ends; P1's success closes the breaker again *)
  Server.run srv;
  check Alcotest.string "breaker closed after success" "closed" (Server.breaker_state srv "ss0");
  check Alcotest.bool "P1 committed" true
    (Scheduler.status (Server.scheduler srv) 1 = Schedule.Committed);
  let d = Server.offer srv (single_retriable ~pid:4 ~svc:"svc4" ~ss:"ss0") in
  check Alcotest.string "admits after close" "admit" (Server.decision_label d);
  Server.run srv;
  finish_accounting srv

let test_breaker_half_open_probe () =
  let faults =
    Faults.make
      ~outages:[ { Faults.out_subsystem = "ss0"; out_window = { Faults.from_ = 0.0; until_ = 50.0 } } ]
      ()
  in
  let srv =
    make_server ~policy:Server.Reject ~max_live:8 ~breaker_threshold:3 ~breaker_cooldown:5.0
      ~faults ()
  in
  Server.submit_at srv ~at:0.0 (single_retriable ~pid:1 ~svc:"svc0" ~ss:"ss0");
  Server.run srv ~until:30.0;
  (* the cooldown elapsed long ago: the next interested offer is the probe *)
  let d = Server.offer srv (single_retriable ~pid:2 ~svc:"svc2" ~ss:"ss0") in
  check Alcotest.string "half-open admits the probe" "admit" (Server.decision_label d);
  check Alcotest.string "state is half-open" "half-open" (Server.breaker_state srv "ss0");
  (* the probe fails (outage still on): the breaker reopens *)
  Server.run srv ~until:32.0;
  check Alcotest.string "probe failure reopens" "open" (Server.breaker_state srv "ss0");
  Server.run srv;
  check Alcotest.string "eventual success closes" "closed" (Server.breaker_state srv "ss0");
  finish_accounting srv

(* --- graceful drain --- *)

let test_drain () =
  let srv = make_server ~policy:Server.Queue ~max_live:1 ~queue_capacity:32 ~deadline:50.0 () in
  let script = Generator.arrivals params ~seed:4 ~rate:5.0 ~horizon:10.0 in
  Server.play srv script;
  Server.run srv ~until:4.0;
  check Alcotest.bool "queue backed up" true (Server.queue_depth srv > 0);
  Server.drain srv;
  check Alcotest.bool "draining" true (Server.draining srv);
  check Alcotest.int "queue flushed" 0 (Server.queue_depth srv);
  check Alcotest.bool "in-flight settled" true (Scheduler.finished (Server.scheduler srv));
  check Alcotest.int "wal sealed (nothing pending)" 0 (Wal.pending (Scheduler.wal (Server.scheduler srv)));
  let d = Server.offer srv (single_retriable ~pid:9999 ~svc:"svc0" ~ss:"ss0") in
  check Alcotest.string "intake stopped" "reject:draining" (Server.decision_label d);
  (* post-drain arrivals from the script (scheduled past 4.0) are shed *)
  finish_accounting srv;
  check Alcotest.bool "drain is idempotent" true
    (Server.drain srv;
     Server.accounting_ok srv)

(* --- deterministic overload: same seed + script => bit-identical log --- *)

let overload_run choice () =
  let faults =
    Faults.make
      ~outages:
        (Faults.periodic_outage ~subsystem:"ss0" ~period:5.0 ~duty:0.3 ~horizon:20.0 ())
      ()
  in
  let srv =
    make_server ~policy:Server.Queue ~max_live:2 ~queue_capacity:6 ~deadline:3.0 ~faults
      ?choice:(Some (choice ())) ()
  in
  let script = Generator.arrivals params ~seed:9 ~rate:4.0 ~horizon:15.0 in
  Server.play srv script;
  Server.run srv;
  (Server.decision_log srv, Server.counters srv, Server.steps srv)

let test_deterministic_overload_passive () =
  let run () = overload_run (fun () -> Choice.passive) () in
  let log1, c1, s1 = run () in
  let log2, c2, s2 = run () in
  check Alcotest.(list string) "decision logs bit-identical" log1 log2;
  check Alcotest.bool "counters identical" true (c1 = c2);
  check Alcotest.int "step counts identical" s1 s2;
  check Alcotest.bool "something was shed" true (c1.Server.rejected + c1.Server.expired > 0)

let test_deterministic_overload_driven () =
  let run () = overload_run (fun () -> Choice.driven ()) () in
  let log1, c1, s1 = run () in
  let log2, c2, s2 = run () in
  check Alcotest.(list string) "driven decision logs bit-identical" log1 log2;
  check Alcotest.bool "driven counters identical" true (c1 = c2);
  check Alcotest.int "driven step counts identical" s1 s2

(* --- 4x overload: shed, don't collapse --- *)

let test_overload_4x_sheds_not_collapses () =
  List.iter
    (fun policy ->
      let srv = make_server ~policy ~max_live:4 ~queue_capacity:8 ~deadline:4.0 () in
      (* service time 1.0, window 4 => capacity ~4/s against ~16/s offered *)
      let script = Generator.arrivals params ~seed:11 ~rate:16.0 ~horizon:8.0 in
      Server.play srv script;
      Server.run srv;
      let c = Server.counters srv in
      check Alcotest.bool
        (Server.policy_label policy ^ ": sheds under overload")
        true
        (c.Server.rejected + c.Server.expired + c.Server.degraded > 0);
      check Alcotest.bool
        (Server.policy_label policy ^ ": finished")
        true
        (Scheduler.finished (Server.scheduler srv));
      check Alcotest.bool
        (Server.policy_label policy ^ ": PRED holds")
        true
        (Criteria.pred (Scheduler.history (Server.scheduler srv)));
      check Alcotest.bool
        (Server.policy_label policy ^ ": accounting")
        true (Server.accounting_ok srv);
      check Alcotest.int
        (Server.policy_label policy ^ ": queue empty at quiescence")
        0 (Server.queue_depth srv))
    [ Server.Reject; Server.Queue; Server.Degrade ]

(* --- crash mid-serve, recover to a consistent state --- *)

let test_crash_mid_serve_recovers () =
  let spec = Generator.spec params in
  let rms = Generator.rms params () in
  let sched = Scheduler.create ~spec ~rms () in
  let srv =
    Server.create
      ~config:{ Server.default_config with policy = Server.Queue; max_live = 2 }
      sched
  in
  Server.set_step_hook srv (fun ~stage:_ ~step ->
      if step = 12 then ignore (Scheduler.crash sched));
  let script = Generator.arrivals params ~seed:4 ~rate:6.0 ~horizon:6.0 in
  Server.play srv script;
  Server.run srv;
  check Alcotest.bool "crashed" true (Scheduler.is_crashed sched);
  let records = Scheduler.wal_records sched in
  match
    Scheduler.recover ~spec ~rms ~procs:(Server.admitted_procs srv) records
  with
  | Error e -> Alcotest.failf "recovery failed: %s" e
  | Ok t2 ->
      Scheduler.run t2;
      check Alcotest.bool "recovered run finished" true (Scheduler.finished t2);
      check Alcotest.bool "recovered history PRED" true (Criteria.pred (Scheduler.history t2))

(* --- Lang front-end and the wire protocol --- *)

let test_offer_text () =
  let srv = make_server ~policy:Server.Reject ~max_live:8 () in
  let text =
    "process 101 {\n  1 svc0 retriable @ss0\n}\nprocess 102 {\n  1 svc1 retriable @ss1\n}\n"
  in
  (match Server.offer_text srv text with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok decisions ->
      check Alcotest.int "two decisions" 2 (List.length decisions);
      List.iter
        (fun (_, d) -> check Alcotest.string "admitted" "admit" (Server.decision_label d))
        decisions);
  (match Server.offer_text srv "process {" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed document accepted");
  (* a document naming an unknown subsystem is shed, not detonated *)
  (match Server.offer_text srv "process 103 {\n  1 svc0 retriable @nosuch\n}\n" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok [ (103, d) ] ->
      check Alcotest.string "unknown subsystem rejected" "reject:unknown-subsystem:nosuch"
        (Server.decision_label d)
  | Ok _ -> Alcotest.fail "expected one decision");
  Server.run srv;
  finish_accounting srv

let test_wire_protocol () =
  let srv = make_server ~policy:Server.Reject ~max_live:8 () in
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let doc = "process 1 {\n  1 svc0 retriable @ss0\n}\nprocess 2 {\n  1 svc1 retriable @ss1\n}\n.\n" in
  let n = Unix.write_substring client doc 0 (String.length doc) in
  check Alcotest.int "request written" (String.length doc) n;
  Unix.shutdown client Unix.SHUTDOWN_SEND;
  Server.handle_connection srv server;
  Unix.close server;
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec slurp () =
    match Unix.read client chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        slurp ()
  in
  slurp ();
  Unix.close client;
  let reply = Buffer.contents buf in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "decision line P1" true (contains "decision 1 admit" reply);
  check Alcotest.bool "decision line P2" true (contains "decision 2 admit" reply);
  check Alcotest.bool "status line P1" true (contains "status 1 committed" reply);
  check Alcotest.bool "status line P2" true (contains "status 2 committed" reply);
  check Alcotest.bool "counters line" true (contains "counters offered=2 admitted=2" reply);
  finish_accounting srv

let suite =
  [
    Alcotest.test_case "underload admits all" `Quick test_underload_admits_all;
    Alcotest.test_case "reject policy sheds" `Quick test_reject_policy_sheds;
    Alcotest.test_case "queue bounds and expiry" `Quick test_queue_policy_bounds_and_expiry;
    Alcotest.test_case "degrade policy" `Quick test_degrade_policy;
    Alcotest.test_case "breaker opens and closes" `Quick test_breaker_opens_and_closes;
    Alcotest.test_case "breaker half-open probe" `Quick test_breaker_half_open_probe;
    Alcotest.test_case "graceful drain" `Quick test_drain;
    Alcotest.test_case "deterministic overload (passive)" `Quick
      test_deterministic_overload_passive;
    Alcotest.test_case "deterministic overload (driven)" `Quick
      test_deterministic_overload_driven;
    Alcotest.test_case "4x overload sheds, not collapses" `Quick
      test_overload_4x_sheds_not_collapses;
    Alcotest.test_case "crash mid-serve recovers" `Quick test_crash_mid_serve_recovers;
    Alcotest.test_case "lang front-end" `Quick test_offer_text;
    Alcotest.test_case "wire protocol" `Quick test_wire_protocol;
  ]
